#!/bin/sh
# verifyd service smoke: the end-to-end CI lane for the verification job
# server and its persistent warm-start memo store.
#
# The script boots cmd/verifyd under the race detector, submits a
# 32-instance manifest job over HTTP, polls it to completion, and fetches
# the verdict document. It then checks the shard protocol (the merged
# verdicts of shard 0/2 and 1/2 reproduce the full job's byte for byte),
# kills the server with SIGTERM (the graceful-drain path), restarts it
# against the same store directory, resubmits the identical job, and
# asserts the warm start: strictly more memo hits than the first run,
# nonzero store hits, and a byte-identical verdict document (which now
# embeds the deterministic cost figures, so the restart identity also
# covers the cost ledger). A third boot with a one-slot queue drives the
# admission controller: with the runner occupied and the queue full, a
# further submission must shed with 503 + Retry-After, and intake must
# recover to 202 once the queue drains. Finally the server journals and
# every per-job spool journal must pass obscheck, and the /metrics plane
# must expose the muml_store_* and muml_verifyd_* families.
#
# Everything lands in VERIFYD_SMOKE_DIR so CI can upload the artifacts
# when the smoke fails. Usage: scripts/verifyd_smoke.sh (from the repo
# root; VERIFYD_SMOKE_DIR, VERIFYD_ADDR, and GO override the defaults).
set -eu

DIR="${VERIFYD_SMOKE_DIR:-/tmp/verifyd-smoke}"
ADDR="${VERIFYD_ADDR:-127.0.0.1:8491}"
GO="${GO:-go}"

rm -rf "$DIR"
mkdir -p "$DIR"

echo "verifyd-smoke: building verifyd (-race) and obscheck"
$GO build -race -o "$DIR/verifyd" ./cmd/verifyd
$GO build -o "$DIR/obscheck" ./cmd/obscheck

# 32 seeded wide-config instances: the wide alphabet makes each seed
# contribute distinct closure/product records, so the store has real
# content to warm-start from.
: > "$DIR/manifest.jsonl"
i=0
while [ "$i" -lt 32 ]; do
    echo "{\"seed\": $((1000 + i)), \"config\": \"wide\"}" >> "$DIR/manifest.jsonl"
    i=$((i + 1))
done

VERIFYD_PID=

start_verifyd() { # $1: run label; remaining args: extra verifyd flags
    label="$1"
    shift
    "$DIR/verifyd" -addr "$ADDR" -store "$DIR/store" -spool "$DIR/spool" \
        -journal "$DIR/server-$label.jsonl" "$@" \
        > "$DIR/verifyd-$label.out" 2> "$DIR/verifyd-$label.err" &
    VERIFYD_PID=$!
    # Poll readiness, not liveness: /readyz answers 200 only once the
    # server accepts jobs, which is the state the smoke actually needs.
    i=0
    while [ "$i" -lt 100 ]; do
        if curl -fsS "http://$ADDR/readyz" > /dev/null 2>&1; then return 0; fi
        if ! kill -0 "$VERIFYD_PID" 2> /dev/null; then
            echo "verifyd-smoke: verifyd ($label) exited during startup:" >&2
            cat "$DIR/verifyd-$label.err" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    echo "verifyd-smoke: verifyd ($label) never became ready" >&2
    exit 1
}

stop_verifyd() {
    kill -TERM "$VERIFYD_PID"
    if ! wait "$VERIFYD_PID"; then
        echo "verifyd-smoke: verifyd exited non-zero on SIGTERM" >&2
        exit 1
    fi
}

submit() { # $1: query string ("" or "?shard_count=2&shard_index=0"); prints job id
    curl -fsS -X POST --data-binary @"$DIR/manifest.jsonl" "http://$ADDR/jobs$1" \
        | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4
}

wait_done() { # $1: job id; prints the final status document
    i=0
    while [ "$i" -lt 300 ]; do
        status="$(curl -fsS "http://$ADDR/jobs/$1")"
        state="$(printf '%s' "$status" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)"
        case "$state" in
        done)
            printf '%s' "$status"
            return 0
            ;;
        failed | canceled)
            echo "verifyd-smoke: job $1 ended as $state: $status" >&2
            exit 1
            ;;
        esac
        sleep 0.2
        i=$((i + 1))
    done
    echo "verifyd-smoke: job $1 did not finish in time" >&2
    exit 1
}

field() { # $1: integer field name, $2: JSON document; prints the value
    printf '%s' "$2" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

# ---- run 1: cold store -----------------------------------------------------
start_verifyd run1

echo "verifyd-smoke: run 1: submitting the 32-instance manifest job"
job_full="$(submit "")"
status_full="$(wait_done "$job_full")"
hits1="$(field memo_hits "$status_full")"
misses1="$(field memo_misses "$status_full")"
curl -fsS "http://$ADDR/jobs/$job_full/verdicts" > "$DIR/verdicts-run1.ndjson"
[ -s "$DIR/verdicts-run1.ndjson" ] || { echo "verifyd-smoke: empty verdicts" >&2; exit 1; }
echo "verifyd-smoke: run 1: job $job_full done (memo $hits1 hits / $misses1 misses)"

# Cost attribution: the job status carries the aggregated ledger and the
# verdict lines carry the deterministic per-instance figures.
printf '%s' "$status_full" | grep -q '"cost":{' \
    || { echo "verifyd-smoke: job status without a cost block" >&2; exit 1; }
cpu_ns="$(field cpu_ns "$status_full")"
if [ -z "$cpu_ns" ] || [ "$cpu_ns" -eq 0 ]; then
    echo "verifyd-smoke: job cost ledger has no CPU time: $status_full" >&2
    exit 1
fi
grep -q '"cost":{"peak_states":' "$DIR/verdicts-run1.ndjson" \
    || { echo "verifyd-smoke: verdict lines lack cost figures" >&2; exit 1; }
if [ "$misses1" -eq 0 ]; then
    echo "verifyd-smoke: run 1 had no memo misses; the warm-start assertion would be vacuous" >&2
    exit 1
fi

echo "verifyd-smoke: run 1: shard 0/2 + 1/2 must merge to the full verdicts"
job_s0="$(submit "?shard_count=2&shard_index=0")"
job_s1="$(submit "?shard_count=2&shard_index=1")"
wait_done "$job_s0" > /dev/null
wait_done "$job_s1" > /dev/null
curl -fsS "http://$ADDR/jobs/$job_s0/verdicts" > "$DIR/verdicts-shard0.ndjson"
curl -fsS "http://$ADDR/jobs/$job_s1/verdicts" > "$DIR/verdicts-shard1.ndjson"
cat "$DIR/verdicts-shard0.ndjson" "$DIR/verdicts-shard1.ndjson" | LC_ALL=C sort > "$DIR/verdicts-merged.ndjson"
LC_ALL=C sort "$DIR/verdicts-run1.ndjson" > "$DIR/verdicts-run1-sorted.ndjson"
if ! cmp -s "$DIR/verdicts-merged.ndjson" "$DIR/verdicts-run1-sorted.ndjson"; then
    echo "verifyd-smoke: merged shard verdicts differ from the full job" >&2
    diff "$DIR/verdicts-run1-sorted.ndjson" "$DIR/verdicts-merged.ndjson" >&2 || true
    exit 1
fi

stop_verifyd

# ---- run 2: restarted process, warm store ----------------------------------
start_verifyd run2

echo "verifyd-smoke: run 2: resubmitting the identical job against the same store"
job2="$(submit "")"
status2="$(wait_done "$job2")"
hits2="$(field memo_hits "$status2")"
store_hits2="$(field store_hits "$status2")"
echo "verifyd-smoke: run 2: job $job2 done (memo $hits2 hits, store $store_hits2 hits)"

if [ "$hits2" -le "$hits1" ]; then
    echo "verifyd-smoke: warm start failed: run 2 memo hits $hits2 <= run 1 hits $hits1" >&2
    exit 1
fi
if [ "$store_hits2" -eq 0 ]; then
    echo "verifyd-smoke: restarted run never hit the on-disk store" >&2
    exit 1
fi

curl -fsS "http://$ADDR/jobs/$job2/verdicts" > "$DIR/verdicts-run2.ndjson"
if ! cmp -s "$DIR/verdicts-run1.ndjson" "$DIR/verdicts-run2.ndjson"; then
    echo "verifyd-smoke: verdicts changed across the restart" >&2
    diff "$DIR/verdicts-run1.ndjson" "$DIR/verdicts-run2.ndjson" >&2 || true
    exit 1
fi

curl -fsS "http://$ADDR/metrics" > "$DIR/metrics-run2.prom"
grep -Eq '^muml_store_hits_total [1-9]' "$DIR/metrics-run2.prom"
grep -q '^muml_store_misses_total' "$DIR/metrics-run2.prom"
grep -q '^muml_store_bytes_max' "$DIR/metrics-run2.prom"
grep -Eq '^muml_verifyd_jobs_done_total [1-9]' "$DIR/metrics-run2.prom"

stop_verifyd

# ---- run 3: admission control at the queue bound ---------------------------
start_verifyd run3 -queue 1

json_submit() { # $1: JSON body; prints job id
    curl -fsS -H 'Content-Type: application/json' -d "$1" "http://$ADDR/jobs" \
        | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4
}

echo "verifyd-smoke: run 3: occupying the runner and filling the one-slot queue"
slow_job="$(json_submit '{"gen":{"seed":100,"n":16,"config":"wide"},"workers":1}')"
i=0
state=""
while [ "$i" -lt 100 ]; do
    state="$(curl -fsS "http://$ADDR/jobs/$slow_job" | grep -o '"state":"[^"]*"' | head -1 | cut -d'"' -f4)"
    [ "$state" = running ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ "$state" != running ]; then
    echo "verifyd-smoke: run 3: slow job never started running (state: $state)" >&2
    exit 1
fi
queued_job="$(json_submit '{"scenarios":true}')"

echo "verifyd-smoke: run 3: overflow submission must shed with 503 + Retry-After"
overflow_code="$(curl -sS -o "$DIR/overflow-body.txt" -D "$DIR/overflow-headers.txt" \
    -w '%{http_code}' -H 'Content-Type: application/json' -d '{"scenarios":true}' \
    "http://$ADDR/jobs")"
if [ "$overflow_code" != 503 ]; then
    echo "verifyd-smoke: overflow submission got $overflow_code, want 503" >&2
    exit 1
fi
if ! grep -qi '^Retry-After:' "$DIR/overflow-headers.txt"; then
    echo "verifyd-smoke: overflow 503 carried no Retry-After header:" >&2
    cat "$DIR/overflow-headers.txt" >&2
    exit 1
fi

echo "verifyd-smoke: run 3: intake must recover to 202 once the queue drains"
wait_done "$slow_job" > /dev/null
wait_done "$queued_job" > /dev/null
recover_code="$(curl -sS -o /dev/null -w '%{http_code}' -H 'Content-Type: application/json' \
    -d '{"scenarios":true}' "http://$ADDR/jobs")"
if [ "$recover_code" != 202 ]; then
    echo "verifyd-smoke: post-drain submission got $recover_code, want 202" >&2
    exit 1
fi

stop_verifyd

echo "verifyd-smoke: validating server and per-job journals"
for journal in "$DIR"/server-*.jsonl "$DIR"/spool/*.jsonl; do
    "$DIR/obscheck" "$journal" > /dev/null
done

echo "verifyd-smoke: service, store warm start, shard merge, admission control, and journals ok"
