module muml

go 1.22
