// Package muml_test benchmarks every experiment of DESIGN.md §4: one
// benchmark per reproduced figure/listing/claim, plus the design-choice
// ablations of DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
package muml_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"muml/internal/automata"
	"muml/internal/batch"
	"muml/internal/conformance"
	"muml/internal/core"
	"muml/internal/crossing"
	"muml/internal/ctl"
	"muml/internal/experiments"
	"muml/internal/gen"
	"muml/internal/learning"
	"muml/internal/legacy"
	"muml/internal/obs"
	"muml/internal/railcab"
	"muml/internal/replay"
)

// BenchmarkInitialSynthesis (E1): building the initial model and its
// chaotic closure from the structural interface (Figs. 4(a), 4(b)).
func BenchmarkInitialSynthesis(b *testing.B) {
	iface := railcab.RearInterface(railcab.RearRoleName)
	universe := automata.Universe(automata.UniverseSingleton)
	for i := 0; i < b.N; i++ {
		a := automata.New(iface.Name, iface.Inputs, iface.Outputs)
		id := a.MustAddState("noConvoy::default")
		a.MarkInitial(id)
		model := automata.NewIncomplete(a)
		closure := automata.ChaoticClosure(model, universe)
		if closure.NumStates() != 4 {
			b.Fatal("unexpected closure size")
		}
	}
}

// BenchmarkContextFlatten (E2): flattening the front-role RTSC (Fig. 5).
func BenchmarkContextFlatten(b *testing.B) {
	for i := 0; i < b.N; i++ {
		front := railcab.FrontRole()
		if front.NumStates() != 4 {
			b.Fatal("unexpected front role size")
		}
	}
}

// BenchmarkIterationCheck (E3): one verification round — compose the
// context with the chaotic closure and check φ ∧ ¬δ (Listing 1.1).
func BenchmarkIterationCheck(b *testing.B) {
	iface := railcab.RearInterface(railcab.RearRoleName)
	a := automata.New(iface.Name, iface.Inputs, iface.Outputs)
	id := a.MustAddState("noConvoy::default")
	a.MarkInitial(id)
	model := automata.NewIncomplete(a)
	closure := automata.ChaoticClosure(model, automata.Universe(automata.UniverseSingleton))
	front := railcab.FrontRole()
	property := ctl.WeakenForChaos(railcab.Constraint())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := automata.Compose("system", front, closure)
		if err != nil {
			b.Fatal(err)
		}
		checker := ctl.NewChecker(sys)
		if !checker.Holds(property) {
			b.Fatal("weakened property should hold initially")
		}
		if checker.Holds(ctl.NoDeadlock()) {
			b.Fatal("initial closure should have deadlock hypotheses")
		}
	}
}

// BenchmarkRecordReplay (E4): the two-phase record/deterministic-replay
// pipeline on the correct shuttle (Listings 1.2/1.3).
func BenchmarkRecordReplay(b *testing.B) {
	iface := railcab.RearInterface(railcab.RearRoleName)
	comp := &railcab.CorrectShuttle{}
	inputs := []automata.SignalSet{
		automata.EmptySet,
		automata.NewSignalSet(railcab.StartConvoy),
		automata.EmptySet,
		automata.NewSignalSet(railcab.BreakConvoyAccepted),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := replay.Record(comp, iface, inputs)
		if _, _, err := replay.Replay(comp, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastConflict (E5): full synthesis run on the eager shuttle up
// to the fast conflict verdict (Fig. 6, Listing 1.4).
func BenchmarkFastConflict(b *testing.B) {
	benchmarkSynthesis(b, func() legacy.Component { return &railcab.EagerShuttle{} }, core.VerdictViolation)
}

// BenchmarkSynthesisToProof (E6): full synthesis run on the correct
// shuttle up to the proof (Fig. 7, Listing 1.5).
func BenchmarkSynthesisToProof(b *testing.B) {
	benchmarkSynthesis(b, func() legacy.Component { return &railcab.CorrectShuttle{} }, core.VerdictProven)
}

// BenchmarkConfirmedDeadlock (E4/E10): full synthesis run on the blocking
// shuttle up to the confirmed deadlock.
func BenchmarkConfirmedDeadlock(b *testing.B) {
	benchmarkSynthesis(b, func() legacy.Component { return &railcab.BlockingShuttle{} }, core.VerdictViolation)
}

func benchmarkSynthesis(b *testing.B, make func() legacy.Component, want core.Verdict) {
	b.Helper()
	front := railcab.FrontRole()
	iface := railcab.RearInterface(railcab.RearRoleName)
	for i := 0; i < b.N; i++ {
		synth, err := core.New(front, make(), iface, core.Options{Property: railcab.Constraint()})
		if err != nil {
			b.Fatal(err)
		}
		report, err := synth.Run()
		if err != nil {
			b.Fatal(err)
		}
		if report.Verdict != want {
			b.Fatalf("verdict = %v, want %v", report.Verdict, want)
		}
	}
}

// BenchmarkIncrementalVsRebuild: the same multi-iteration synthesis runs
// with the incremental (delta-patched) system construction and with the
// from-scratch rebuild it replaces. The incremental path is the default;
// the rebuild leg is the pre-incremental baseline.
func BenchmarkIncrementalVsRebuild(b *testing.B) {
	scenarios := []struct {
		name string
		run  func(b *testing.B, opts core.Options)
	}{
		{"railcab-proof", func(b *testing.B, opts core.Options) {
			front := railcab.FrontRole()
			iface := railcab.RearInterface(railcab.RearRoleName)
			opts.Property = railcab.Constraint()
			for i := 0; i < b.N; i++ {
				synth, err := core.New(front, &railcab.CorrectShuttle{}, iface, opts)
				if err != nil {
					b.Fatal(err)
				}
				report, err := synth.Run()
				if err != nil {
					b.Fatal(err)
				}
				if report.Verdict != core.VerdictProven {
					b.Fatal("expected proof")
				}
			}
		}},
		{"random-64-states", func(b *testing.B, opts core.Options) {
			rng := rand.New(rand.NewSource(64))
			sc := experiments.GenerateScenario(rng, 64, 2, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				synth, err := core.New(sc.Context, sc.Component, sc.Iface, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := synth.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	// Each leg runs with a private metrics registry and reports the
	// observability counters as per-op benchmark metrics alongside ns/op.
	instrumented := func(b *testing.B, opts core.Options, run func(*testing.B, core.Options)) {
		reg := obs.NewRegistry()
		automata.EnableObservability(nil, reg)
		defer automata.DisableObservability()
		opts.Metrics = reg
		run(b, opts)
		perOp := func(name string) float64 {
			return float64(reg.Counter(name).Value()) / float64(b.N)
		}
		b.ReportMetric(perOp("automata.product_patches"), "patches/op")
		b.ReportMetric(perOp("automata.product_rebuilds"), "rebuilds/op")
		b.ReportMetric(perOp("ctl.fixpoint_iters"), "fixpoint-iters/op")
		hits := reg.Counter("automata.intern_hits").Value()
		misses := reg.Counter("automata.intern_misses").Value()
		if hits+misses > 0 {
			b.ReportMetric(float64(hits)/float64(hits+misses), "intern-hit-rate")
		}
	}
	for _, sc := range scenarios {
		b.Run(sc.name+"/incremental", func(b *testing.B) {
			instrumented(b, core.Options{}, sc.run)
		})
		b.Run(sc.name+"/rebuild", func(b *testing.B) {
			instrumented(b, core.Options{DisableIncremental: true}, sc.run)
		})
	}
}

// BenchmarkSynthesisScaling (E7): synthesis effort over growing random
// legacy components.
func BenchmarkSynthesisScaling(b *testing.B) {
	for _, size := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("states=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(size)))
			sc := experiments.GenerateScenario(rng, size, 2, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				synth, err := core.New(sc.Context, sc.Component, sc.Iface, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := synth.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLStarVsContextGuided (E8): the same component learned by L*
// with a perfect oracle vs decided by the context-guided synthesis.
func BenchmarkLStarVsContextGuided(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	sc := experiments.GenerateScenario(rng, 16, 2, 3)
	universe := automata.Universe(automata.UniverseSingleton)

	b.Run("lstar-perfect-oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := learning.LearnComponent(
				sc.Component, sc.Iface, universe, learning.NewPerfectOracle(sc.Legacy), 256); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("context-guided-synthesis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth, err := core.New(sc.Context, sc.Component, sc.Iface, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := synth.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWMethodSuite (E9): W-method suite generation per assumed
// implementation bound.
func BenchmarkWMethodSuite(b *testing.B) {
	universe := automata.Universe(automata.UniverseSingleton)
	hyp := core.ExploreComponent(&railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName), universe, nil, 64)
	alphabet := conformance.InputAlphabet(hyp, universe)
	for gap := 0; gap <= 2; gap++ {
		bound := hyp.NumStates() + gap
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := conformance.Suite(hyp, alphabet, bound); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaultInjectionSweep (E10): verdict for one mutated scenario
// (synthesis + ground truth comparison).
func BenchmarkFaultInjectionSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	sc := experiments.MutateScenario(rng, experiments.GenerateScenario(rng, 8, 2, 3))
	for i := 0; i < b.N; i++ {
		synth, err := core.New(sc.Context, sc.Component, sc.Iface, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := synth.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatternVerification (E11): verifying the DistanceCoordination
// pattern (Fig. 1).
func BenchmarkPatternVerification(b *testing.B) {
	b.Run("synchronous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v, err := railcab.Pattern().Verify()
			if err != nil || !v.Satisfied {
				b.Fatalf("verify: %v satisfied=%v", err, v.Satisfied)
			}
		}
	})
	b.Run("delayed-connector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := railcab.DelayedPattern(1, false)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConvoySim (E12): the emergency braking kinematics.
func BenchmarkConvoySim(b *testing.B) {
	cfg := railcab.DefaultDynamics()
	for i := 0; i < b.N; i++ {
		res := railcab.EmergencyBrakeScenario(cfg, railcab.ModeNoConvoy, railcab.ModeConvoy)
		if !res.Collision {
			b.Fatal("expected collision")
		}
	}
}

// BenchmarkRefinementAlgorithms (ablation, DESIGN §5): the sound
// polynomial simulation check vs the exact subset-construction refinement
// decision.
func BenchmarkRefinementAlgorithms(b *testing.B) {
	universe := automata.Universe(automata.UniverseSingleton)
	impl := core.ExploreComponent(&railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName), universe, nil, 64)
	model := automata.NewIncomplete(impl.Clone("model"))
	spec := automata.ChaoticClosure(model, universe)

	b.Run("simulates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			automata.Simulates(impl, spec)
		}
	})
	b.Run("refines-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := automata.Refines(impl, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkChaosEncoding (ablation, DESIGN §5): the amended unknown-only
// closure vs the literal Definition 9 closure (which has more chaos
// transitions and never admits the proof).
func BenchmarkChaosEncoding(b *testing.B) {
	universe := automata.Universe(automata.UniverseSingleton)
	impl := core.ExploreComponent(&railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName), universe, nil, 64)
	model := automata.NewIncomplete(impl)

	b.Run("amended-unknown-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			automata.ChaoticClosure(model, universe)
		}
	})
	b.Run("literal-def9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			automata.ChaoticClosureLiteral(model, universe)
		}
	})
}

// BenchmarkMultiLegacy (extension, §7): parallel learning of two legacy
// components.
func BenchmarkMultiLegacy(b *testing.B) {
	ctxA := multiCoordinator()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMulti(ctxA,
			[]legacy.Component{newPonger("1"), newPonger("2")},
			[]legacy.Interface{pongerIface("1"), pongerIface("2")},
			core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		report, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if report.Verdict != core.VerdictProven {
			b.Fatal("expected proof")
		}
	}
}

// BenchmarkCrossingSynthesis (E13): the timed rail-crossing case study —
// clocks in the context, deadline property in CCTL.
func BenchmarkCrossingSynthesis(b *testing.B) {
	property := ctl.And(crossing.Constraint(), crossing.ClosureDeadline())
	b.Run("swift-proven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth, err := core.New(crossing.TrainRole(), crossing.SwiftGate(),
				crossing.GateInterface(), core.Options{Property: property})
			if err != nil {
				b.Fatal(err)
			}
			report, err := synth.Run()
			if err != nil || report.Verdict != core.VerdictProven {
				b.Fatalf("%v / %v", err, report)
			}
		}
	})
	b.Run("sluggish-violation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth, err := core.New(crossing.TrainRole(), crossing.SluggishGate(),
				crossing.GateInterface(), core.Options{Property: property})
			if err != nil {
				b.Fatal(err)
			}
			report, err := synth.Run()
			if err != nil || report.Verdict != core.VerdictViolation {
				b.Fatalf("%v / %v", err, report)
			}
		}
	})
}

// BenchmarkModelChecker: raw CCTL checking over the composed RailCab
// system (all operators exercised by the pattern property set).
func BenchmarkModelChecker(b *testing.B) {
	sys, err := railcab.Pattern().Compose()
	if err != nil {
		b.Fatal(err)
	}
	props := []ctl.Formula{
		railcab.Constraint(),
		ctl.NoDeadlock(),
		ctl.MustParse("AG (frontRole.convoy -> AF[1,8] frontRole.noConvoy or AG frontRole.convoy)"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker := ctl.NewChecker(sys)
		for _, p := range props {
			checker.Holds(p)
		}
	}
}

// --- helpers for BenchmarkMultiLegacy (mirrors internal/core tests) ---

func multiCoordinator() *automata.Automaton {
	c := automata.New("coordinator",
		automata.NewSignalSet("pong1", "pong2"),
		automata.NewSignalSet("ping1", "ping2"))
	c0 := c.MustAddState("askFirst")
	c1 := c.MustAddState("awaitFirst")
	c2 := c.MustAddState("askSecond")
	c3 := c.MustAddState("awaitSecond")
	c.MustAddTransition(c0, automata.Interact(nil, []automata.Signal{"ping1"}), c1)
	c.MustAddTransition(c1, automata.Interact([]automata.Signal{"pong1"}, nil), c2)
	c.MustAddTransition(c2, automata.Interact(nil, []automata.Signal{"ping2"}), c3)
	c.MustAddTransition(c3, automata.Interact([]automata.Signal{"pong2"}, nil), c0)
	c.MarkInitial(c0)
	return c
}

func newPonger(idx string) legacy.Component {
	ping := "ping" + idx
	pong := "pong" + idx
	return &legacy.FuncComponent{
		Name:    "service" + idx,
		Initial: "idle",
		Next: map[string]map[string]legacy.FuncStep{
			"idle": {
				"":   {To: "idle"},
				ping: {To: "got"},
			},
			"got": {
				"": {Out: []automata.Signal{automata.Signal(pong)}, To: "idle"},
			},
		},
	}
}

func pongerIface(idx string) legacy.Interface {
	return legacy.Interface{
		Name:    "service" + idx,
		Inputs:  automata.NewSignalSet(automata.Signal("ping" + idx)),
		Outputs: automata.NewSignalSet(automata.Signal("pong" + idx)),
	}
}

// BenchmarkBatchThroughput: the same 32-instance generated batch through
// the internal/batch pool sequentially and at GOMAXPROCS workers, each
// with a fresh shared memo cache. Per-op metrics report instances/sec and
// the cache hit rate; compare the legs (and the committed BENCH_batch.json
// regenerated by `experiments -batch`) for the parallel speedup. On a
// single-core runner the legs should be within noise of each other.
func BenchmarkBatchThroughput(b *testing.B) {
	const instances = 32
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts[1] = 8 // still exercise the stealing/cache paths
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var throughput, hitRate float64
			for i := 0; i < b.N; i++ {
				sum, err := batch.Verify(batch.GenItems(1, instances, gen.DefaultConfig()), batch.Options{
					Workers: workers,
					Memo:    automata.NewMemoCache(nil),
				})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Errored != 0 {
					b.Fatalf("%d instances errored", sum.Errored)
				}
				throughput = sum.Throughput()
				if total := sum.CacheHits + sum.CacheMisses; total > 0 {
					hitRate = float64(sum.CacheHits) / float64(total)
				}
			}
			b.ReportMetric(throughput, "instances/sec")
			b.ReportMetric(hitRate, "memo-hit-rate")
		})
	}
}
