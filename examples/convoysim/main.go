// Convoy simulation: the physical meaning of the DistanceCoordination
// pattern constraint. Two shuttles brake in an emergency under all four
// mode combinations; the combination forbidden by the constraint — rear
// in convoy (reduced gap) while the front believes noConvoy (full braking
// force) — is the one that ends in a rear-end collision.
//
// Run with:
//
//	go run ./examples/convoysim
package main

import (
	"fmt"
	"strings"

	"muml/internal/railcab"
)

func main() {
	cfg := railcab.DefaultDynamics()
	fmt.Printf("emergency braking from %.0f m/s; convoy gap %.0f m, normal gap %.0f m\n",
		cfg.CruiseSpeed, cfg.ConvoyGap, cfg.NormalGap)
	fmt.Printf("full brake %.1f m/s², reduced brake %.1f m/s², reaction delay %d steps\n\n",
		cfg.FullBrake, cfg.ReducedBrake, cfg.ReactionSteps)

	for _, row := range railcab.ModeTable(cfg) {
		marker := "   "
		if row.Forbidden {
			marker = "⚠️ "
		}
		fmt.Printf("%s%s\n", marker, row)
	}

	fmt.Println("\ngap trajectory for the forbidden combination (front=noConvoy, rear=convoy):")
	res := railcab.EmergencyBrakeScenario(cfg, railcab.ModeNoConvoy, railcab.ModeConvoy)
	printSparkline(res.Trajectory)
	fmt.Printf("collision after %d steps (%.1f s)\n",
		res.StopSteps, float64(res.StopSteps)*cfg.StepSeconds)

	fmt.Println("\ngap trajectory for the coordinated convoy (front=convoy, rear=convoy):")
	safe := railcab.EmergencyBrakeScenario(cfg, railcab.ModeConvoy, railcab.ModeConvoy)
	printSparkline(safe.Trajectory)
	fmt.Printf("both stopped after %d steps; minimum gap %.1f m\n", safe.StopSteps, safe.MinGap)
}

// printSparkline renders a gap trajectory as a coarse ASCII plot.
func printSparkline(gaps []float64) {
	max := 0.0
	for _, g := range gaps {
		if g > max {
			max = g
		}
	}
	if max == 0 {
		max = 1
	}
	const width = 60
	step := len(gaps)/width + 1
	var b strings.Builder
	for i := 0; i < len(gaps); i += step {
		g := gaps[i]
		if g <= 0 {
			b.WriteByte('X')
			continue
		}
		levels := []byte("▁▂▃▄▅▆▇█")
		idx := int(g / max * float64(len(levels)/3*3-1) / 3)
		if idx >= 8 {
			idx = 7
		}
		b.WriteString(string([]rune("▁▂▃▄▅▆▇█")[idx]))
	}
	fmt.Println(b.String())
}
