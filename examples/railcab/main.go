// RailCab walkthrough: the paper's complete running example. Three
// hand-written legacy rear-shuttle controllers are integrated against the
// frontRole context of Fig. 5 using the iterative verification+testing
// loop; the output reproduces the storyline of Figs. 4-7 and Listings
// 1.1-1.5.
//
// Run with:
//
//	go run ./examples/railcab
package main

import (
	"fmt"
	"os"

	"muml/internal/core"
	"muml/internal/legacy"
	"muml/internal/railcab"
	"muml/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// First verify the DistanceCoordination pattern itself (Fig. 1): the
	// roles, the constraint, and deadlock freedom.
	fmt.Println("== DistanceCoordination pattern (Fig. 1) ==")
	verification, err := railcab.Pattern().Verify()
	if err != nil {
		return err
	}
	fmt.Printf("pattern verified: %v (composed system: %d states)\n\n",
		verification.Satisfied, verification.System.NumStates())

	scenarios := []struct {
		name  string
		comp  legacy.Component
		story string
	}{
		{
			name: "correct shuttle",
			comp: &railcab.CorrectShuttle{},
			story: "follows the protocol — the loop learns the relevant behavior\n" +
				"and terminates with a PROOF of correct integration (Fig. 7)",
		},
		{
			name: "eager shuttle",
			comp: &railcab.EagerShuttle{},
			story: "enters convoy mode right after proposing — the constraint is\n" +
				"violated inside learned behavior: real conflict without a further\n" +
				"test (Fig. 6, Listing 1.4)",
		},
		{
			name: "blocking shuttle",
			comp: &railcab.BlockingShuttle{},
			story: "shuts down after requesting to break the convoy — a real\n" +
				"deadlock, confirmed by probing the context's offers (Listings 1.2/1.3)",
		},
	}

	for _, sc := range scenarios {
		fmt.Printf("== %s ==\n%s\n\n", sc.name, sc.story)
		synth, err := core.New(railcab.FrontRole(), sc.comp,
			railcab.RearInterface(railcab.RearRoleName),
			core.Options{Property: railcab.Constraint()})
		if err != nil {
			return err
		}
		report, err := synth.Run()
		if err != nil {
			return err
		}
		for _, it := range report.Iterations {
			status := "check failed"
			if it.Counterexample == nil {
				status = "both checks passed"
			}
			fmt.Printf("iteration %d: %s; test=%v; learned +%d states +%d transitions +%d refusals\n",
				it.Index, status, it.Test, it.Delta.States, it.Delta.Transitions, it.Delta.Blocked)
		}
		fmt.Printf("\nverdict: %v", report.Verdict)
		if report.Verdict == core.VerdictViolation {
			fmt.Printf(" — %v\nwitness (paper listing notation):\n%s", report.Kind, report.WitnessText)
		}
		fmt.Printf("\nfinal learned model:\n%s\n", trace.RenderModel(report.Model))
	}

	fmt.Println("== why the constraint matters: emergency braking (kinematics) ==")
	for _, row := range railcab.ModeTable(railcab.DefaultDynamics()) {
		fmt.Println(row)
	}
	return nil
}
