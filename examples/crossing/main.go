// Rail-crossing walkthrough: the timed case study. A train that cannot
// stop announces its approach and reaches the crossing exactly four time
// units later; a legacy gate controller must have the gate closed by then.
// The synthesis loop proves the fast controller safe and convicts the
// sluggish and stuck ones with real counterexamples — including the timed
// closure deadline expressed in CCTL.
//
// Run with:
//
//	go run ./examples/crossing
package main

import (
	"fmt"
	"os"

	"muml/internal/core"
	"muml/internal/crossing"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("train reaches the crossing exactly %d time units after announcing\n", crossing.ApproachTime)
	fmt.Printf("safety constraint: %s\n", crossing.Constraint())
	fmt.Printf("closure deadline:  %s\n\n", crossing.ClosureDeadline())

	scenarios := []struct {
		name string
		comp legacy.Component
	}{
		{"swift gate (closes in 2)", crossing.SwiftGate()},
		{"sluggish gate (closes in 6)", crossing.SluggishGate()},
		{"stuck gate (never closes)", crossing.StuckGate()},
	}
	for _, sc := range scenarios {
		fmt.Printf("== %s ==\n", sc.name)
		synth, err := core.New(crossing.TrainRole(), sc.comp, crossing.GateInterface(),
			core.Options{Property: ctl.And(crossing.Constraint(), crossing.ClosureDeadline())})
		if err != nil {
			return err
		}
		report, err := synth.Run()
		if err != nil {
			return err
		}
		fmt.Printf("verdict: %v", report.Verdict)
		if report.Verdict == core.VerdictViolation {
			fmt.Printf(" (%v)\nwitness:\n%s", report.Kind, report.WitnessText)
		}
		fmt.Printf("\nlearned gate model (%d iterations):\n%s\n",
			report.Stats.Iterations, trace.RenderModel(report.Model))
	}
	return nil
}
