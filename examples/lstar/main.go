// L* comparison: learn the correct rear-shuttle controller with Angluin's
// L* (the regular-inference baseline of Section 6) and contrast the
// query/test effort with the paper's context-guided synthesis, which needs
// no equivalence oracle and learns only context-relevant behavior.
//
// Run with:
//
//	go run ./examples/lstar
package main

import (
	"fmt"
	"os"

	"muml/internal/automata"
	"muml/internal/conformance"
	"muml/internal/core"
	"muml/internal/learning"
	"muml/internal/railcab"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	iface := railcab.RearInterface(railcab.RearRoleName)
	universe := automata.Universe(automata.UniverseSingleton)

	// Ground truth (white-box, evaluation only): the controller's full
	// behavior automaton via exhaustive exploration.
	truth := core.ExploreComponent(&railcab.CorrectShuttle{}, iface, universe, nil, 64)
	fmt.Printf("ground truth: %d states, %d transitions\n\n", truth.NumStates(), truth.NumTransitions())

	// 1. L* with a perfect equivalence oracle (idealized).
	model, statsPerfect, err := learning.LearnComponent(
		&railcab.CorrectShuttle{}, iface, universe, learning.NewPerfectOracle(truth), 64)
	if err != nil {
		return err
	}
	fmt.Println("L* with perfect equivalence oracle:")
	fmt.Printf("  learned %d states; %d membership queries, %d equivalence queries, %d resets\n\n",
		model.NumStates(), statsPerfect.MembershipQueries,
		statsPerfect.EquivalenceQueries, statsPerfect.Resets)

	// 2. L* with the practical W-method oracle (Vasilevskii/Chow): the
	// equivalence queries become conformance test suites.
	var statsW learning.Stats
	oracle := learning.NewComponentOracle(&railcab.CorrectShuttle{}, &statsW)
	wm := learning.NewWMethodOracle(oracle, truth.NumStates())
	learner := learning.NewLearner(oracle, conformance.InputAlphabet(truth, universe), &statsW)
	if _, err := learner.Learn(wm, 64); err != nil {
		return err
	}
	fmt.Println("L* with W-method equivalence oracle:")
	fmt.Printf("  %d membership queries, %d equivalence queries\n", statsW.MembershipQueries, statsW.EquivalenceQueries)
	for i, c := range wm.SuiteCosts {
		fmt.Printf("  suite %d: %d words, %d symbols\n", i, c.Words, c.TotalSymbols)
	}
	fmt.Println()

	// 3. The paper's context-guided synthesis: no equivalence oracle,
	// tests only what the context can exercise, and additionally returns
	// a verdict about the integration.
	synth, err := core.New(railcab.FrontRole(), &railcab.CorrectShuttle{}, iface,
		core.Options{Property: railcab.Constraint()})
	if err != nil {
		return err
	}
	report, err := synth.Run()
	if err != nil {
		return err
	}
	fmt.Println("context-guided synthesis (the paper's approach):")
	fmt.Printf("  verdict: %v after %d iterations\n", report.Verdict, report.Stats.Iterations)
	fmt.Printf("  %d counterexample tests + %d probes, %d resets, 0 equivalence queries\n",
		report.Stats.TestsRun, report.Stats.ProbesRun, report.Stats.ResetsUsed)
	fmt.Printf("  learned %d of %d states (only the context-relevant part)\n",
		report.Model.Automaton().NumStates(), truth.NumStates())
	return nil
}
