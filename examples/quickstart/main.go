// Quickstart: build two I/O automata, compose them per Definition 3 of
// the paper, and model check a CCTL property and deadlock freedom.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// A client that sends a request and waits for a grant.
	client := automata.New("client",
		automata.NewSignalSet("grant"),
		automata.NewSignalSet("request"))
	idle := client.MustAddState("idle")
	waiting := client.MustAddState("waiting")
	done := client.MustAddState("done")
	client.MustAddTransition(idle, automata.Interact(nil, []automata.Signal{"request"}), waiting)
	client.MustAddTransition(waiting, automata.Interaction{}, waiting) // patient
	client.MustAddTransition(waiting, automata.Interact([]automata.Signal{"grant"}, nil), done)
	client.MustAddTransition(done, automata.Interaction{}, done)
	client.MarkInitial(idle)
	client.LabelStatesByName()

	// A server that grants every request one time unit later — but only
	// once: the second request deadlocks it.
	server := automata.New("server",
		automata.NewSignalSet("request"),
		automata.NewSignalSet("grant"))
	ready := server.MustAddState("ready")
	busy := server.MustAddState("busy")
	spent := server.MustAddState("spent")
	server.MustAddTransition(ready, automata.Interact([]automata.Signal{"request"}, nil), busy)
	server.MustAddTransition(busy, automata.Interact(nil, []automata.Signal{"grant"}), spent)
	server.MustAddTransition(spent, automata.Interaction{}, spent)
	server.MarkInitial(ready)
	server.LabelStatesByName()

	// Synchronous parallel composition: sending and receiving happen in
	// the same discrete time step.
	system, err := automata.Compose("system", client, server)
	if err != nil {
		return err
	}
	fmt.Printf("composed system: %d states, %d transitions\n\n",
		system.NumStates(), system.NumTransitions())

	checker := ctl.NewChecker(system)

	// A bounded response property in CCTL: every request is granted
	// within 1..2 time units.
	response := ctl.MustParse("AG (client.waiting -> AF[1,2] client.done)")
	fmt.Printf("checking %s\n", response)
	res := checker.Check(response)
	fmt.Printf("  holds: %v\n\n", res.Holds)

	// Deadlock freedom holds for this closed system: the client is
	// satisfied after one grant and idles forever.
	fmt.Printf("checking %s\n", ctl.NoDeadlock())
	dead := checker.Check(ctl.NoDeadlock())
	fmt.Printf("  holds: %v\n\n", dead.Holds)

	// A property that fails, with a counterexample in the notation of the
	// paper's listings.
	never := ctl.MustParse("A[] not server.spent")
	fmt.Printf("checking %s\n", never)
	bad := checker.Check(never)
	fmt.Printf("  holds: %v\ncounterexample:\n%s",
		bad.Holds, trace.RenderCounterexample(system, bad.Counterexample))
	return nil
}
