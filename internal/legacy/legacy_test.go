package legacy

import (
	"testing"

	"muml/internal/automata"
)

func protoAutomaton(t *testing.T) *automata.Automaton {
	t.Helper()
	a := automata.New("proto", automata.NewSignalSet("req"), automata.NewSignalSet("ack"))
	idle := a.MustAddState("idle")
	busy := a.MustAddState("busy")
	a.MustAddTransition(idle, automata.Interact([]automata.Signal{"req"}, []automata.Signal{"ack"}), busy)
	a.MustAddTransition(busy, automata.Interaction{}, idle)
	a.MarkInitial(idle)
	return a
}

func TestInterfaceValidate(t *testing.T) {
	good := Interface{Name: "c", Inputs: automata.NewSignalSet("a"), Outputs: automata.NewSignalSet("b")}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Interface{}).Validate(); err == nil {
		t.Fatal("empty interface accepted")
	}
	bad := Interface{Name: "c", Inputs: automata.NewSignalSet("a"), Outputs: automata.NewSignalSet("a")}
	if err := bad.Validate(); err == nil {
		t.Fatal("overlapping alphabets accepted")
	}
}

func TestInterfacePortOf(t *testing.T) {
	i := Interface{Name: "c", Ports: map[automata.Signal]string{"a": "p"}}
	if got := i.PortOf("a"); got != "p" {
		t.Fatalf("PortOf = %q", got)
	}
	if got := i.PortOf("zz"); got != "" {
		t.Fatalf("PortOf unknown = %q", got)
	}
	var empty Interface
	if got := empty.PortOf("a"); got != "" {
		t.Fatalf("PortOf on nil map = %q", got)
	}
}

func TestAutomatonComponentStepAndReset(t *testing.T) {
	comp := MustWrapAutomaton(protoAutomaton(t))
	if got := comp.StateName(); got != "idle" {
		t.Fatalf("initial state = %q", got)
	}
	out, ok := comp.Step(automata.NewSignalSet("req"))
	if !ok || !out.Contains("ack") {
		t.Fatalf("Step = %v/%v", out, ok)
	}
	if got := comp.StateName(); got != "busy" {
		t.Fatalf("state after step = %q", got)
	}
	// Refusal keeps the state.
	if _, ok := comp.Step(automata.NewSignalSet("req")); ok {
		t.Fatal("busy state accepted req")
	}
	if got := comp.StateName(); got != "busy" {
		t.Fatal("refusal changed the state")
	}
	comp.Reset()
	if got := comp.StateName(); got != "idle" {
		t.Fatalf("state after reset = %q", got)
	}
}

func TestWrapAutomatonRejectsNondeterminism(t *testing.T) {
	a := protoAutomaton(t)
	idle := a.State("idle")
	// Same input, different output: not function-deterministic.
	a.MustAddTransition(idle, automata.Interact([]automata.Signal{"req"}, nil), idle)
	if _, err := WrapAutomaton(a); err == nil {
		t.Fatal("function-nondeterministic automaton accepted")
	}

	b := protoAutomaton(t)
	bidle := b.State("idle")
	// Same label, two successors.
	b.MustAddTransition(bidle, automata.Interact([]automata.Signal{"req"}, []automata.Signal{"ack"}), bidle)
	if _, err := WrapAutomaton(b); err == nil {
		t.Fatal("nondeterministic automaton accepted")
	}

	c := protoAutomaton(t)
	c.MarkInitial(c.State("busy"))
	if _, err := WrapAutomaton(c); err == nil {
		t.Fatal("two initial states accepted")
	}
}

func TestInitialStateName(t *testing.T) {
	comp := MustWrapAutomaton(protoAutomaton(t))
	// Move away from initial, then check InitialStateName resets.
	comp.Step(automata.NewSignalSet("req"))
	if got := InitialStateName(comp); got != "idle" {
		t.Fatalf("InitialStateName = %q", got)
	}
}

func TestFuncComponent(t *testing.T) {
	f := &FuncComponent{
		Name:    "f",
		Initial: "a",
		Next: map[string]map[string]FuncStep{
			"a": {"": {Out: []automata.Signal{"hello"}, To: "b"}},
			"b": {"x": {To: "a"}},
		},
	}
	f.Reset()
	out, ok := f.Step(automata.EmptySet)
	if !ok || !out.Contains("hello") {
		t.Fatalf("Step = %v/%v", out, ok)
	}
	if f.StateName() != "b" {
		t.Fatalf("state = %q", f.StateName())
	}
	if _, ok := f.Step(automata.EmptySet); ok {
		t.Fatal("undefined input accepted")
	}
	if _, ok := f.Step(automata.NewSignalSet("x")); !ok {
		t.Fatal("defined input refused")
	}
	states := f.States()
	if len(states) != 2 || states[0] != "a" || states[1] != "b" {
		t.Fatalf("States = %v", states)
	}
}

func TestFuncComponentUsableWithoutReset(t *testing.T) {
	f := &FuncComponent{Initial: "a", Next: map[string]map[string]FuncStep{}}
	if got := f.StateName(); got != "a" {
		t.Fatalf("StateName before Reset = %q", got)
	}
	if _, ok := f.Step(automata.EmptySet); ok {
		t.Fatal("empty table accepted a step")
	}
}
