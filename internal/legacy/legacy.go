// Package legacy provides the black-box harness around a legacy component:
// the deterministic reactive component abstraction, adapters, and the test
// executor that drives model-checking counterexamples against the real
// implementation (Section 4.2 and Section 5 of the paper).
//
// A legacy component is any deterministic implementation that reacts to
// one set of input signals per discrete time unit with one set of output
// signals. The synthesis loop never inspects its internals; state names
// are obtained only through the optional Introspector interface during
// deterministic replay (white-box probes, Section 5).
package legacy

import (
	"fmt"
	"sort"

	"muml/internal/automata"
)

// Component is a deterministic reactive implementation under integration.
//
// Determinism requirement (Section 4.3): for a given state and input set
// the component must always produce the same output set and successor
// state ("any non-determinism or pseudo non-determinism is excluded" in
// the safety-critical domain). The harness relies on this for learning and
// for deterministic replay.
type Component interface {
	// Reset returns the component to its initial state.
	Reset()
	// Step executes one time unit: the component consumes the input
	// signals and returns the produced output signals. accepted = false
	// means the component refuses to execute under this input (a blocked
	// interaction); the component's state must then be unchanged.
	Step(in automata.SignalSet) (out automata.SignalSet, accepted bool)
}

// Introspector is implemented by components that can report their current
// state name. It is only consulted during deterministic replay, where
// added instrumentation has no effect on the execution (Section 5).
type Introspector interface {
	// StateName returns the name of the current control state, e.g.
	// "noConvoy::default".
	StateName() string
}

// Interface is the structural interface description of a legacy component,
// the only information available before learning starts (Section 3).
type Interface struct {
	// Name of the component.
	Name string
	// Inputs and Outputs are the signal alphabets from the architectural
	// model (port and interface definitions).
	Inputs  automata.SignalSet
	Outputs automata.SignalSet
	// Ports maps each signal to the port it belongs to, for rendering
	// monitored events ("portName=rearRole").
	Ports map[automata.Signal]string
}

// PortOf returns the port name of a signal, or "" if unknown.
func (i Interface) PortOf(sig automata.Signal) string {
	if i.Ports == nil {
		return ""
	}
	return i.Ports[sig]
}

// Validate checks the interface description.
func (i Interface) Validate() error {
	if i.Name == "" {
		return fmt.Errorf("legacy: interface without component name")
	}
	if !i.Inputs.Disjoint(i.Outputs) {
		return fmt.Errorf("legacy: interface %q: inputs and outputs overlap: %v",
			i.Name, i.Inputs.Intersect(i.Outputs))
	}
	return nil
}

// AutomatonComponent wraps a function-deterministic automaton as a
// Component, for simulations and baselines. The automaton must have
// exactly one initial state and at most one transition per (state, input
// set) pair.
type AutomatonComponent struct {
	auto *automata.Automaton
	cur  automata.StateID
	init automata.StateID
}

var (
	_ Component    = (*AutomatonComponent)(nil)
	_ Introspector = (*AutomatonComponent)(nil)
)

// WrapAutomaton validates and wraps the automaton.
func WrapAutomaton(a *automata.Automaton) (*AutomatonComponent, error) {
	if len(a.Initial()) != 1 {
		return nil, fmt.Errorf("legacy: automaton %q must have exactly one initial state", a.Name())
	}
	for i := 0; i < a.NumStates(); i++ {
		seen := make(map[string]automata.Interaction)
		for _, t := range a.TransitionsFrom(automata.StateID(i)) {
			key := t.Label.In.Key()
			if prev, ok := seen[key]; ok && !prev.Equal(t.Label) {
				return nil, fmt.Errorf(
					"legacy: automaton %q is not function-deterministic at %q for input %v",
					a.Name(), a.StateName(automata.StateID(i)), t.Label.In)
			}
			seen[key] = t.Label
			if len(a.Successors(automata.StateID(i), t.Label)) != 1 {
				return nil, fmt.Errorf("legacy: automaton %q is nondeterministic at %q on %v",
					a.Name(), a.StateName(automata.StateID(i)), t.Label)
			}
		}
	}
	init := a.Initial()[0]
	return &AutomatonComponent{auto: a, cur: init, init: init}, nil
}

// MustWrapAutomaton is WrapAutomaton but panics on error.
func MustWrapAutomaton(a *automata.Automaton) *AutomatonComponent {
	c, err := WrapAutomaton(a)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset implements Component.
func (c *AutomatonComponent) Reset() { c.cur = c.init }

// Step implements Component.
func (c *AutomatonComponent) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	for _, t := range c.auto.TransitionsFrom(c.cur) {
		if t.Label.In.Equal(in) {
			c.cur = t.To
			return t.Label.Out, true
		}
	}
	return automata.EmptySet, false
}

// StateName implements Introspector.
func (c *AutomatonComponent) StateName() string { return c.auto.StateName(c.cur) }

// Automaton returns the wrapped automaton (for evaluation baselines that
// are allowed to peek, e.g. perfect equivalence oracles).
func (c *AutomatonComponent) Automaton() *automata.Automaton { return c.auto }

// InterfaceOf derives the structural interface of a wrapped automaton.
func (c *AutomatonComponent) InterfaceOf() Interface {
	return Interface{
		Name:    c.auto.Name(),
		Inputs:  c.auto.Inputs(),
		Outputs: c.auto.Outputs(),
	}
}

// InitialStateName determines the initial state name of a component by
// resetting it and reading the introspection probe; this corresponds to
// "determining the initial state s₀ of M_r" in Section 3. Components
// without introspection get the conventional name "s0".
func InitialStateName(c Component) string {
	c.Reset()
	if in, ok := c.(Introspector); ok {
		return in.StateName()
	}
	return "s0"
}

// FuncComponent builds a Component from a pure transition function over
// named states, for compact hand-written controllers in tests.
type FuncComponent struct {
	Name    string
	Initial string
	// Next maps (state, canonical input key) to (outputs, next state). A
	// missing entry means the interaction is refused.
	Next map[string]map[string]FuncStep

	cur string
}

// FuncStep is the reaction of a FuncComponent.
type FuncStep struct {
	Out []automata.Signal
	To  string
}

var (
	_ Component    = (*FuncComponent)(nil)
	_ Introspector = (*FuncComponent)(nil)
)

// Reset implements Component.
func (f *FuncComponent) Reset() { f.cur = f.Initial }

// Step implements Component.
func (f *FuncComponent) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if f.cur == "" {
		f.cur = f.Initial
	}
	step, ok := f.Next[f.cur][in.Key()]
	if !ok {
		return automata.EmptySet, false
	}
	f.cur = step.To
	return automata.NewSignalSet(step.Out...), true
}

// StateName implements Introspector.
func (f *FuncComponent) StateName() string {
	if f.cur == "" {
		return f.Initial
	}
	return f.cur
}

// States returns the state names of the FuncComponent, sorted, for test
// assertions.
func (f *FuncComponent) States() []string {
	seen := map[string]struct{}{f.Initial: {}}
	for s, steps := range f.Next {
		seen[s] = struct{}{}
		for _, st := range steps {
			seen[st.To] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
