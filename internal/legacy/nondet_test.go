package legacy

import (
	"testing"

	"muml/internal/automata"
)

func racyAutomaton(t *testing.T) *automata.Automaton {
	t.Helper()
	a := automata.New("racy", automata.NewSignalSet("a"), automata.NewSignalSet("x", "y"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MarkInitial(s0)
	in := automata.NewSignalSet("a")
	a.MustAddTransition(s0, automata.Interaction{In: in, Out: automata.NewSignalSet("x")}, s1)
	a.MustAddTransition(s0, automata.Interaction{In: in, Out: automata.NewSignalSet("y")}, s0)
	a.MustAddTransition(s1, automata.Interaction{In: in, Out: automata.EmptySet}, s0)
	return a
}

func TestFunctionDeterministic(t *testing.T) {
	racy := racyAutomaton(t)
	if FunctionDeterministic(racy) {
		t.Fatal("racy automaton classified as deterministic")
	}
	if _, err := WrapAutomaton(racy); err == nil {
		t.Fatal("WrapAutomaton must keep rejecting nondeterministic automata")
	}

	det := automata.New("det", automata.NewSignalSet("a"), automata.NewSignalSet("x"))
	s0 := det.MustAddState("s0")
	det.MarkInitial(s0)
	det.MustAddTransition(s0, automata.Interaction{In: automata.NewSignalSet("a"), Out: automata.NewSignalSet("x")}, s0)
	if !FunctionDeterministic(det) {
		t.Fatal("deterministic automaton misclassified")
	}
}

func TestNondetComponentFairness(t *testing.T) {
	c := MustWrapNondet(racyAutomaton(t))
	in := automata.NewSignalSet("a")

	// Two enabled branches at (s0, a); round-robin must alternate between
	// them across repeated visits, even across Reset.
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		c.Reset()
		out, ok := c.Step(in)
		if !ok {
			t.Fatalf("step %d refused", i)
		}
		seen[out.Key()]++
	}
	if seen[automata.NewSignalSet("x").Key()] != 3 || seen[automata.NewSignalSet("y").Key()] != 3 {
		t.Fatalf("unfair branch schedule: %v", seen)
	}

	// Refusals are deterministic: no transition under b anywhere.
	c.Reset()
	if _, ok := c.Step(automata.NewSignalSet("b")); ok {
		t.Fatal("undefined input accepted")
	}
	if c.StateName() != "s0" {
		t.Fatalf("refusal moved the component to %q", c.StateName())
	}
}

func TestNondetComponentIntrospection(t *testing.T) {
	c := MustWrapNondet(racyAutomaton(t))
	in := automata.NewSignalSet("a")
	c.Reset()
	out, ok := c.Step(in)
	if !ok {
		t.Fatal("step refused")
	}
	// Deterministic ordering: visit 0 at (s0, a) picks the branch with the
	// smallest output key ({x} < {y}), landing in s1.
	if !out.Equal(automata.NewSignalSet("x")) || c.StateName() != "s1" {
		t.Fatalf("first visit took out=%v state=%q, want x/s1", out, c.StateName())
	}
	if got := InitialStateName(c); got != "s0" {
		t.Fatalf("InitialStateName = %q", got)
	}
}
