package legacy

import (
	"fmt"
	"sort"

	"muml/internal/automata"
)

// This file relaxes the determinism requirement of Section 4.3: real legacy
// black boxes duplicate transitions, race outputs, and drop messages. A
// NondetComponent wraps such an automaton as a Component whose branch
// choices are *fair*: at each occurrence of a (state, input) pair within a
// run, the enabled transitions are cycled round-robin in a deterministic
// order, and the cycle counters survive Reset. The cursor is per
// occurrence — the n-th visit of a pair inside one run cycles independently
// of the m-th — because a single shared cursor can phase-lock: when every
// run visits a pair a multiple-of-degree number of times, the branch taken
// at a fixed position of a replayed prefix never changes, starving whole
// regions of the state space no matter how many replays run. Per-occurrence
// cycling guarantees that across the runs reaching any fixed position,
// every branch appears within the pair's branching degree — the
// complete-testing assumption ioco-based synthesis needs to observe the
// whole out-set with boundedly many repetitions (DESIGN.md §13).

// FunctionDeterministic reports whether the automaton satisfies the
// determinism requirement WrapAutomaton enforces: per (state, input set) at
// most one full interaction label, with exactly one successor.
func FunctionDeterministic(a *automata.Automaton) bool {
	for i := 0; i < a.NumStates(); i++ {
		seen := make(map[string]automata.Interaction)
		for _, t := range a.TransitionsFrom(automata.StateID(i)) {
			key := t.Label.In.Key()
			if prev, ok := seen[key]; ok && !prev.Equal(t.Label) {
				return false
			}
			seen[key] = t.Label
			if len(a.Successors(automata.StateID(i), t.Label)) != 1 {
				return false
			}
		}
	}
	return true
}

// NondetComponent wraps an arbitrary automaton — duplicate successors,
// output races, lossy branches — as a Component with fair round-robin
// branch resolution. Refusals stay deterministic: an input with no enabled
// transition at the current state is always refused, matching the
// per-(state, input) refusal model the probe layer relies on.
type NondetComponent struct {
	auto *automata.Automaton
	cur  automata.StateID
	init automata.StateID
	// turn holds the branch cursors of each (state, input-key), indexed by
	// the occurrence number of that pair within the current run; occ counts
	// the occurrences seen so far this run and is cleared by Reset. The
	// cursors deliberately survive Reset: at any fixed occurrence the
	// enabled branches cycle round-robin over the runs that reach it, so no
	// run length can phase-lock the choice made at a given step of a
	// replayed prefix.
	turn map[nondetKey][]int
	occ  map[nondetKey]int
}

type nondetKey struct {
	state automata.StateID
	inKey string
}

var (
	_ Component    = (*NondetComponent)(nil)
	_ Introspector = (*NondetComponent)(nil)
)

// WrapNondet wraps the automaton. Unlike WrapAutomaton it accepts any
// branching structure; only the single-initial-state requirement remains.
func WrapNondet(a *automata.Automaton) (*NondetComponent, error) {
	if len(a.Initial()) != 1 {
		return nil, fmt.Errorf("legacy: automaton %q must have exactly one initial state", a.Name())
	}
	init := a.Initial()[0]
	return &NondetComponent{
		auto: a, cur: init, init: init,
		turn: make(map[nondetKey][]int),
		occ:  make(map[nondetKey]int),
	}, nil
}

// MustWrapNondet is WrapNondet but panics on error.
func MustWrapNondet(a *automata.Automaton) *NondetComponent {
	c, err := WrapNondet(a)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset implements Component. The control state and the per-run occurrence
// counts reset; the fairness cursors persist across runs by design.
func (c *NondetComponent) Reset() {
	c.cur = c.init
	clear(c.occ)
}

// Step implements Component: collect the transitions enabled under the
// input, order them deterministically (by output key, then successor
// name), and take the one the fairness counter selects.
func (c *NondetComponent) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	var enabled []automata.Transition
	for _, t := range c.auto.TransitionsFrom(c.cur) {
		if t.Label.In.Equal(in) {
			enabled = append(enabled, t)
		}
	}
	if len(enabled) == 0 {
		return automata.EmptySet, false
	}
	sort.Slice(enabled, func(i, j int) bool {
		ki, kj := enabled[i].Label.Out.Key(), enabled[j].Label.Out.Key()
		if ki != kj {
			return ki < kj
		}
		return c.auto.StateName(enabled[i].To) < c.auto.StateName(enabled[j].To)
	})
	k := nondetKey{state: c.cur, inKey: in.Key()}
	d := c.occ[k]
	c.occ[k]++
	for len(c.turn[k]) <= d {
		c.turn[k] = append(c.turn[k], 0)
	}
	pick := enabled[c.turn[k][d]%len(enabled)]
	c.turn[k][d]++
	c.cur = pick.To
	return pick.Label.Out, true
}

// StateName implements Introspector.
func (c *NondetComponent) StateName() string { return c.auto.StateName(c.cur) }

// Automaton returns the wrapped automaton, for ground-truth oracles.
func (c *NondetComponent) Automaton() *automata.Automaton { return c.auto }

// InterfaceOf derives the structural interface of the wrapped automaton.
func (c *NondetComponent) InterfaceOf() Interface {
	return Interface{
		Name:    c.auto.Name(),
		Inputs:  c.auto.Inputs(),
		Outputs: c.auto.Outputs(),
	}
}
