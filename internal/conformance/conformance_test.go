package conformance

import (
	"testing"

	"muml/internal/automata"
)

// twoStateMachine: s0 -a/x-> s1, s1 -a/y-> s0, b refused everywhere.
func twoStateMachine(t *testing.T) *automata.Automaton {
	t.Helper()
	m := automata.New("m", automata.NewSignalSet("a", "b"), automata.NewSignalSet("x", "y"))
	s0 := m.MustAddState("s0")
	s1 := m.MustAddState("s1")
	m.MustAddTransition(s0, automata.Interact([]automata.Signal{"a"}, []automata.Signal{"x"}), s1)
	m.MustAddTransition(s1, automata.Interact([]automata.Signal{"a"}, []automata.Signal{"y"}), s0)
	m.MarkInitial(s0)
	return m
}

func alphabetAB() []automata.SignalSet {
	return []automata.SignalSet{
		automata.NewSignalSet("a"),
		automata.NewSignalSet("b"),
	}
}

func TestOutputsWithRefusals(t *testing.T) {
	m := twoStateMachine(t)
	a := automata.NewSignalSet("a")
	b := automata.NewSignalSet("b")
	outs := Outputs(m, Word{a, a, a})
	if outs[0] != "x" || outs[1] != "y" || outs[2] != "x" {
		t.Fatalf("outputs = %v", outs)
	}
	// Refusal sticks.
	outs = Outputs(m, Word{b, a})
	if outs[0] != Bottom || outs[1] != Bottom {
		t.Fatalf("outputs = %v", outs)
	}
}

func TestWordKeyDistinct(t *testing.T) {
	a := automata.NewSignalSet("a")
	b := automata.NewSignalSet("b")
	if (Word{a, b}).Key() == (Word{b, a}).Key() {
		t.Fatal("distinct words share a key")
	}
	if (Word{}).Key() == (Word{automata.EmptySet}).Key() {
		t.Fatal("empty word and one-empty-set word share a key")
	}
}

func TestStateCover(t *testing.T) {
	m := twoStateMachine(t)
	cover := StateCover(m, alphabetAB())
	if len(cover) != 2 {
		t.Fatalf("cover size = %d", len(cover))
	}
	if len(cover[m.State("s0")]) != 0 {
		t.Fatal("initial state access word not empty")
	}
	if len(cover[m.State("s1")]) != 1 {
		t.Fatalf("s1 access word = %v", cover[m.State("s1")])
	}
}

func TestCharacterizationSetDistinguishesAll(t *testing.T) {
	m := twoStateMachine(t)
	alphabet := alphabetAB()
	w := CharacterizationSet(m, alphabet)
	if len(w) == 0 {
		t.Fatal("empty characterization set for distinguishable states")
	}
	// Every pair of distinct states must differ on some w-word.
	s0, s1 := m.State("s0"), m.State("s1")
	distinguished := false
	for _, word := range w {
		o0 := OutputsFrom(m, s0, word)
		o1 := OutputsFrom(m, s1, word)
		for i := range o0 {
			if o0[i] != o1[i] {
				distinguished = true
			}
		}
	}
	if !distinguished {
		t.Fatal("characterization set fails to distinguish s0/s1")
	}
}

func TestCharacterizationSetSingleState(t *testing.T) {
	m := automata.New("one", automata.NewSignalSet("a"), automata.EmptySet)
	s := m.MustAddState("s")
	m.MustAddTransition(s, automata.Interact([]automata.Signal{"a"}, nil), s)
	m.MarkInitial(s)
	w := CharacterizationSet(m, []automata.SignalSet{automata.NewSignalSet("a")})
	if len(w) != 1 {
		t.Fatalf("singleton machine should get a fallback W, got %v", w)
	}
}

func TestSuiteDetectsFaultyImplementation(t *testing.T) {
	hyp := twoStateMachine(t)
	alphabet := alphabetAB()
	// Faulty implementation: three states, differs only at depth 2.
	impl := automata.New("impl", hyp.Inputs(), hyp.Outputs())
	i0 := impl.MustAddState("i0")
	i1 := impl.MustAddState("i1")
	i2 := impl.MustAddState("i2")
	a := automata.Interact([]automata.Signal{"a"}, []automata.Signal{"x"})
	ay := automata.Interact([]automata.Signal{"a"}, []automata.Signal{"y"})
	impl.MustAddTransition(i0, a, i1)
	impl.MustAddTransition(i1, ay, i2)
	impl.MustAddTransition(i2, ay, i0) // fault: should output x
	impl.MarkInitial(i0)

	suite, err := Suite(hyp, alphabet, 3)
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, w := range suite {
		e := Outputs(hyp, w)
		g := Outputs(impl, w)
		for i := range e {
			if e[i] != g[i] {
				caught = true
			}
		}
	}
	if !caught {
		t.Fatal("W-method suite missed the depth-3 fault")
	}
}

func TestSuiteCostGrowsWithBound(t *testing.T) {
	hyp := twoStateMachine(t)
	alphabet := alphabetAB()
	var prev int
	for _, maxStates := range []int{2, 3, 4, 5} {
		suite, err := Suite(hyp, alphabet, maxStates)
		if err != nil {
			t.Fatal(err)
		}
		c := Cost(suite)
		if c.TotalSymbols <= prev {
			t.Fatalf("suite cost did not grow: bound %d -> %d symbols (prev %d)",
				maxStates, c.TotalSymbols, prev)
		}
		prev = c.TotalSymbols
	}
}

func TestEquivalent(t *testing.T) {
	m := twoStateMachine(t)
	alphabet := alphabetAB()
	same := m.Clone("same")
	eq, _, err := Equivalent(m, same, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("identical machines not equivalent")
	}

	diff := m.Clone("diff")
	s1 := diff.State("s1")
	diff.MustAddTransition(s1, automata.Interact([]automata.Signal{"b"}, nil), s1)
	eq, w, err := Equivalent(m, diff, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("different machines reported equivalent")
	}
	// Distinguishing word: a then b (refusal difference at s1).
	if len(w) != 2 {
		t.Fatalf("distinguishing word = %v", w)
	}
}

func TestValidateMachine(t *testing.T) {
	m := twoStateMachine(t)
	if err := ValidateMachine(m); err != nil {
		t.Fatal(err)
	}
	s0 := m.State("s0")
	m.MustAddTransition(s0, automata.Interact([]automata.Signal{"a"}, []automata.Signal{"y"}), s0)
	if err := ValidateMachine(m); err == nil {
		t.Fatal("non-function-deterministic machine accepted")
	}
}

func TestInputAlphabet(t *testing.T) {
	m := twoStateMachine(t)
	inputs := InputAlphabet(m, automata.Universe(automata.UniverseSingleton))
	// ∅, {a}, {b}.
	if len(inputs) != 3 {
		t.Fatalf("alphabet = %v", inputs)
	}
}

func TestConcat(t *testing.T) {
	a := automata.NewSignalSet("a")
	b := automata.NewSignalSet("b")
	got := Concat(Word{a}, Word{}, Word{b, a})
	if len(got) != 3 || !got[0].Equal(a) || !got[2].Equal(a) {
		t.Fatalf("Concat = %v", got)
	}
}
