package conformance

import (
	"math/rand"
	"testing"

	"muml/internal/automata"
)

// TestWMethodCompleteness checks the Vasilevskii/Chow completeness theorem
// on random instances: a suite generated from the specification with bound
// l ≥ |implementation| detects every non-equivalent implementation within
// that bound.
func TestWMethodCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := []automata.SignalSet{
		automata.EmptySet,
		automata.NewSignalSet("a"),
		automata.NewSignalSet("b"),
	}
	detected, tested := 0, 0
	for i := 0; i < 120; i++ {
		spec := randomMachine(rng, 2+rng.Intn(3))
		impl := mutateMachine(rng, spec)
		eq, _, err := Equivalent(spec, impl, alphabet)
		if err != nil {
			t.Fatal(err)
		}
		if eq {
			continue // mutation did not change reachable behavior
		}
		tested++
		suite, err := Suite(spec, alphabet, impl.NumStates())
		if err != nil {
			t.Fatal(err)
		}
		caught := false
		for _, w := range suite {
			e := Outputs(spec, w)
			g := Outputs(impl, w)
			for k := range e {
				if e[k] != g[k] {
					caught = true
					break
				}
			}
			if caught {
				break
			}
		}
		if !caught {
			t.Fatalf("iteration %d: W-method suite missed a real difference\nspec:\n%s\nimpl:\n%s",
				i, spec.Dot(), impl.Dot())
		}
		detected++
	}
	if tested == 0 {
		t.Fatal("no behavior-changing mutations generated")
	}
	t.Logf("W-method completeness: %d/%d differing mutants detected", detected, tested)
}

// randomMachine builds a random function-deterministic machine over inputs
// {∅, a, b} and outputs {∅, x, y} where every state accepts at least ∅.
func randomMachine(rng *rand.Rand, states int) *automata.Automaton {
	m := automata.New("spec",
		automata.NewSignalSet("a", "b"),
		automata.NewSignalSet("x", "y"))
	for i := 0; i < states; i++ {
		m.MustAddState("s" + string(rune('0'+i)))
	}
	m.MarkInitial(0)
	inputs := []automata.SignalSet{
		automata.EmptySet, automata.NewSignalSet("a"), automata.NewSignalSet("b"),
	}
	outputs := []automata.SignalSet{
		automata.EmptySet, automata.NewSignalSet("x"), automata.NewSignalSet("y"),
	}
	for s := 0; s < states; s++ {
		for idx, in := range inputs {
			if idx > 0 && rng.Intn(3) == 0 {
				continue
			}
			label := automata.Interaction{In: in, Out: outputs[rng.Intn(len(outputs))]}
			m.MustAddTransition(automata.StateID(s), label, automata.StateID(rng.Intn(states)))
		}
	}
	return m
}

// mutateMachine flips one transition's output or target, or drops it.
func mutateMachine(rng *rand.Rand, spec *automata.Automaton) *automata.Automaton {
	ts := spec.Transitions()
	victim := ts[rng.Intn(len(ts))]
	impl := automata.New("impl", spec.Inputs(), spec.Outputs())
	for i := 0; i < spec.NumStates(); i++ {
		impl.MustAddState(spec.StateName(automata.StateID(i)))
	}
	impl.MarkInitial(spec.Initial()[0])
	outputs := []automata.SignalSet{
		automata.EmptySet, automata.NewSignalSet("x"), automata.NewSignalSet("y"),
	}
	for _, t := range ts {
		if t.From == victim.From && t.To == victim.To && t.Label.Equal(victim.Label) {
			switch rng.Intn(3) {
			case 0:
				continue // drop
			case 1:
				out := outputs[rng.Intn(len(outputs))]
				_ = impl.AddTransition(t.From, automata.Interaction{In: t.Label.In, Out: out}, t.To)
			default:
				to := automata.StateID(rng.Intn(spec.NumStates()))
				_ = impl.AddTransition(t.From, t.Label, to)
			}
			continue
		}
		_ = impl.AddTransition(t.From, t.Label, t.To)
	}
	return impl
}
