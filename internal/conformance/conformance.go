// Package conformance implements conformance testing for
// function-deterministic reactive machines: characterization sets, state
// and transition covers, the Vasilevskii/Chow W-method test suite, and
// exact equivalence checking.
//
// Section 6 of the paper discusses conformance testing as the standard way
// to realize the equivalence oracle of regular inference: per Vasilevskii,
// a complete suite has total length O(k²·l·|Σ|^(l−k+1)) where k is the
// hypothesis size and l the bound on the implementation size — exponential
// in l−k. The paper's approach avoids the equivalence oracle altogether;
// this package provides the baseline against which that saving is
// measured (experiments E8/E9).
//
// Machines are automata.Automaton values that are function-deterministic:
// at most one transition per (state, input set), with the output set a
// function of the input. Inputs not accepted in a state are refusals,
// observable as a distinguished ⊥ output after which the machine is
// considered stuck.
package conformance

import (
	"fmt"
	"strconv"
	"strings"

	"muml/internal/automata"
)

// Word is a sequence of input sets fed to a machine, one per time unit.
type Word []automata.SignalSet

// Key renders the word canonically for dedup maps. The length prefix
// keeps words of different lengths distinct even when they consist of
// empty input sets (whose set keys are empty strings).
func (w Word) Key() string {
	parts := make([]string, len(w)+1)
	parts[0] = strconv.Itoa(len(w))
	for i, in := range w {
		parts[i+1] = in.Key()
	}
	return strings.Join(parts, "|")
}

// Concat returns the concatenation of words.
func Concat(words ...Word) Word {
	var out Word
	for _, w := range words {
		out = append(out, w...)
	}
	return out
}

// Bottom is the observable output of a refused input; after a refusal the
// machine is treated as stuck and produces Bottom forever.
const Bottom = "⊥"

// OutputsFrom runs the word on the machine starting at the given state and
// returns the output keys, with Bottom from the first refusal onward.
func OutputsFrom(a *automata.Automaton, from automata.StateID, w Word) []string {
	outs := make([]string, len(w))
	cur := from
	stuck := false
	for i, in := range w {
		if stuck {
			outs[i] = Bottom
			continue
		}
		step, ok := stepDeterministic(a, cur, in)
		if !ok {
			outs[i] = Bottom
			stuck = true
			continue
		}
		outs[i] = step.Label.Out.Key()
		cur = step.To
	}
	return outs
}

// Outputs runs the word from the machine's single initial state.
func Outputs(a *automata.Automaton, w Word) []string {
	return OutputsFrom(a, a.Initial()[0], w)
}

func stepDeterministic(a *automata.Automaton, s automata.StateID, in automata.SignalSet) (automata.Transition, bool) {
	for _, t := range a.TransitionsFrom(s) {
		if t.Label.In.Equal(in) {
			return t, true
		}
	}
	return automata.Transition{}, false
}

// ValidateMachine checks the function-determinism requirement.
func ValidateMachine(a *automata.Automaton) error {
	if len(a.Initial()) != 1 {
		return fmt.Errorf("conformance: %q must have exactly one initial state", a.Name())
	}
	for i := 0; i < a.NumStates(); i++ {
		seen := make(map[string]struct{})
		for _, t := range a.TransitionsFrom(automata.StateID(i)) {
			key := t.Label.In.Key()
			if _, dup := seen[key]; dup {
				return fmt.Errorf("conformance: %q not function-deterministic at %q",
					a.Name(), a.StateName(automata.StateID(i)))
			}
			seen[key] = struct{}{}
		}
	}
	return nil
}

// InputAlphabet returns the distinct input sets of the universe over the
// machine's alphabets.
func InputAlphabet(a *automata.Automaton, universe automata.InteractionUniverse) []automata.SignalSet {
	seen := make(map[string]struct{})
	var out []automata.SignalSet
	for _, x := range universe.Enumerate(a.Inputs(), a.Outputs()) {
		if _, ok := seen[x.In.Key()]; ok {
			continue
		}
		seen[x.In.Key()] = struct{}{}
		out = append(out, x.In)
	}
	return out
}

// StateCover returns, for every reachable state, a shortest access word
// from the initial state (the P set). The initial state's word is ε.
func StateCover(a *automata.Automaton, alphabet []automata.SignalSet) map[automata.StateID]Word {
	cover := make(map[automata.StateID]Word)
	init := a.Initial()[0]
	cover[init] = Word{}
	queue := []automata.StateID{init}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for _, in := range alphabet {
			t, ok := stepDeterministic(a, s, in)
			if !ok {
				continue
			}
			if _, seen := cover[t.To]; seen {
				continue
			}
			access := make(Word, 0, len(cover[s])+1)
			access = append(access, cover[s]...)
			access = append(access, in)
			cover[t.To] = access
			queue = append(queue, t.To)
		}
	}
	return cover
}

// CharacterizationSet computes a W set: a set of words such that any two
// distinct reachable states produce different output sequences on at least
// one word. Words are found by BFS over state pairs (shortest
// distinguishing suffixes). Machines whose states are pairwise
// indistinguishable (e.g. single-state machines) yield a singleton set
// containing one alphabet letter, so suites still exercise outputs.
func CharacterizationSet(a *automata.Automaton, alphabet []automata.SignalSet) []Word {
	if err := ValidateMachine(a); err != nil {
		panic(err)
	}
	var words []Word
	seen := make(map[string]struct{})
	add := func(w Word) {
		key := w.Key()
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		words = append(words, w)
	}

	reachable := a.Reachable()
	var states []automata.StateID
	for i := 0; i < a.NumStates(); i++ {
		if reachable[i] {
			states = append(states, automata.StateID(i))
		}
	}
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			if w, ok := distinguishingWord(a, states[i], states[j], alphabet); ok {
				add(w)
			}
		}
	}
	if len(words) == 0 && len(alphabet) > 0 {
		add(Word{alphabet[0]})
	}
	return words
}

// distinguishingWord finds a shortest word on which the two states produce
// different outputs (including refusal differences), via BFS over pairs.
func distinguishingWord(a *automata.Automaton, s, t automata.StateID, alphabet []automata.SignalSet) (Word, bool) {
	type pair struct{ s, t automata.StateID }
	type entry struct {
		p pair
		w Word
	}
	visited := map[pair]struct{}{{s, t}: {}}
	queue := []entry{{p: pair{s, t}}}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, in := range alphabet {
			ts, okS := stepDeterministic(a, cur.p.s, in)
			tt, okT := stepDeterministic(a, cur.p.t, in)
			w := append(append(Word{}, cur.w...), in)
			if okS != okT {
				return w, true
			}
			if !okS {
				continue
			}
			if !ts.Label.Out.Equal(tt.Label.Out) {
				return w, true
			}
			next := pair{ts.To, tt.To}
			if next.s == next.t {
				continue
			}
			if _, seen := visited[next]; seen {
				continue
			}
			visited[next] = struct{}{}
			queue = append(queue, entry{p: next, w: w})
		}
	}
	return nil, false
}

// Suite generates the W-method conformance test suite for the hypothesis
// machine, valid against any implementation with at most maxStates states:
//
//	T = P · Σ^{≤ maxStates − n + 1} · W
//
// where P is the state cover, n the hypothesis size, and W the
// characterization set. The suite's total symbol length follows the
// Vasilevskii bound and grows as |Σ|^{maxStates−n+1}.
func Suite(hypothesis *automata.Automaton, alphabet []automata.SignalSet, maxStates int) ([]Word, error) {
	if err := ValidateMachine(hypothesis); err != nil {
		return nil, err
	}
	cover := StateCover(hypothesis, alphabet)
	n := len(cover)
	extra := maxStates - n
	if extra < 0 {
		extra = 0
	}
	w := CharacterizationSet(hypothesis, alphabet)

	// Middle parts: Σ^1 ∪ ... ∪ Σ^{extra+1}.
	middles := []Word{{}}
	var layered []Word
	current := []Word{{}}
	for depth := 0; depth <= extra; depth++ {
		var next []Word
		for _, m := range current {
			for _, in := range alphabet {
				next = append(next, append(append(Word{}, m...), in))
			}
		}
		layered = append(layered, next...)
		current = next
	}
	middles = append(middles, layered...)

	seen := make(map[string]struct{})
	var suite []Word
	for _, access := range cover {
		for _, mid := range middles {
			for _, suffix := range w {
				word := Concat(access, mid, suffix)
				if len(word) == 0 {
					continue
				}
				key := word.Key()
				if _, ok := seen[key]; ok {
					continue
				}
				seen[key] = struct{}{}
				suite = append(suite, word)
			}
		}
	}
	return suite, nil
}

// SuiteCost summarizes a suite for the Vasilevskii-bound experiment.
type SuiteCost struct {
	Words        int
	TotalSymbols int
}

// Cost measures a suite.
func Cost(suite []Word) SuiteCost {
	c := SuiteCost{Words: len(suite)}
	for _, w := range suite {
		c.TotalSymbols += len(w)
	}
	return c
}

// Equivalent checks exact equivalence of two function-deterministic
// machines over the alphabet (same outputs, same refusals, on every input
// word), returning a shortest distinguishing word when they differ.
func Equivalent(a, b *automata.Automaton, alphabet []automata.SignalSet) (bool, Word, error) {
	if err := ValidateMachine(a); err != nil {
		return false, nil, err
	}
	if err := ValidateMachine(b); err != nil {
		return false, nil, err
	}
	type pair struct{ s, t automata.StateID }
	start := pair{a.Initial()[0], b.Initial()[0]}
	visited := map[pair]struct{}{start: {}}
	type entry struct {
		p pair
		w Word
	}
	queue := []entry{{p: start}}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		for _, in := range alphabet {
			ta, okA := stepDeterministic(a, cur.p.s, in)
			tb, okB := stepDeterministic(b, cur.p.t, in)
			w := append(append(Word{}, cur.w...), in)
			if okA != okB {
				return false, w, nil
			}
			if !okA {
				continue
			}
			if !ta.Label.Out.Equal(tb.Label.Out) {
				return false, w, nil
			}
			next := pair{ta.To, tb.To}
			if _, seen := visited[next]; seen {
				continue
			}
			visited[next] = struct{}{}
			queue = append(queue, entry{p: next, w: w})
		}
	}
	return true, nil, nil
}
