package ctl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"muml/internal/automata"
)

// Parse parses a textual CCTL formula. The grammar (loosest binding
// first):
//
//	formula  := or ( "->" formula )?
//	or       := and ( ("or" | "||") and )*
//	and      := unary ( ("and" | "&&") unary )*
//	unary    := ("not" | "!") unary
//	         | ("AG"|"AF"|"EG"|"EF") bound? unary
//	         | ("AX"|"EX") unary
//	         | "A[]" unary | "E<>" unary            (UPPAAL-style aliases)
//	         | "A" "[" formula "U" formula "]"
//	         | "E" "[" formula "U" formula "]"
//	         | primary
//	bound    := "[" int "," int "]"
//	primary  := "true" | "false" | "deadlock" | ident | "(" formula ")"
//	ident    := letter (letter | digit | "." | ":" | "_" )*
//
// Identifiers denote atomic propositions, e.g. "rearRole.convoy" or
// "noConvoy::default". Example from the paper:
//
//	A[] not (rearRole.convoy and frontRole.noConvoy)
func Parse(input string) (Formula, error) {
	p := &parser{tokens: lex(input)}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("ctl: unexpected trailing input %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse but panics on error; for statically known formulas.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokInt
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokArrow
	tokAnd
	tokOr
	tokNot
	tokBoxAlias     // "A[]"
	tokDiamondAlias // "E<>"
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func lex(input string) []token {
	var tokens []token
	i := 0
	emit := func(kind tokenKind, text string) {
		tokens = append(tokens, token{kind: kind, text: text, pos: i})
	}
	for i < len(input) {
		ch := rune(input[i])
		switch {
		case unicode.IsSpace(ch):
			i++
		case strings.HasPrefix(input[i:], "A[]"):
			emit(tokBoxAlias, "A[]")
			i += 3
		case strings.HasPrefix(input[i:], "E<>"):
			emit(tokDiamondAlias, "E<>")
			i += 3
		case strings.HasPrefix(input[i:], "->"):
			emit(tokArrow, "->")
			i += 2
		case strings.HasPrefix(input[i:], "&&"):
			emit(tokAnd, "&&")
			i += 2
		case strings.HasPrefix(input[i:], "||"):
			emit(tokOr, "||")
			i += 2
		case ch == '!':
			emit(tokNot, "!")
			i++
		case ch == '(':
			emit(tokLParen, "(")
			i++
		case ch == ')':
			emit(tokRParen, ")")
			i++
		case ch == '[':
			emit(tokLBracket, "[")
			i++
		case ch == ']':
			emit(tokRBracket, "]")
			i++
		case ch == ',':
			emit(tokComma, ",")
			i++
		case unicode.IsDigit(ch):
			j := i
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			emit(tokInt, input[i:j])
			i = j
		case unicode.IsLetter(ch) || ch == '_':
			j := i
			for j < len(input) {
				c := rune(input[j])
				if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '.' || c == ':' || c == '_' {
					j++
					continue
				}
				break
			}
			word := input[i:j]
			switch word {
			case "and":
				emit(tokAnd, word)
			case "or":
				emit(tokOr, word)
			case "not":
				emit(tokNot, word)
			default:
				emit(tokIdent, word)
			}
			i = j
		default:
			emit(tokEOF, string(ch)) // lex error surfaces as parse error
			i = len(input)
		}
	}
	tokens = append(tokens, token{kind: tokEOF, text: "", pos: len(input)})
	return tokens
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token   { return p.tokens[p.pos] }
func (p *parser) next() token   { t := p.tokens[p.pos]; p.pos++; return t }
func (p *parser) atEnd() bool   { return p.peek().kind == tokEOF && p.peek().text == "" }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(n int) { p.pos = n }

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("ctl: expected %s at position %d, found %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseFormula() (Formula, error) {
	l, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokArrow {
		p.next()
		r, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return Implies(l, r), nil
	}
	return l, nil
}

func (p *parser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *parser) parseUnary() (Formula, error) {
	t := p.peek()
	switch t.kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case tokBoxAlias:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return AG(f), nil
	case tokDiamondAlias:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return EF(f), nil
	case tokIdent:
		switch t.text {
		case "AG", "AF", "EG", "EF":
			p.next()
			return p.parseBoundedTemporal(t.text)
		case "AX", "EX":
			p.next()
			f, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "AX" {
				return AX(f), nil
			}
			return EX(f), nil
		case "A", "E":
			// Try the until form A[ f U g ]; on failure fall back to an
			// atom named "A"/"E".
			mark := p.save()
			p.next()
			if u, err := p.parseUntil(t.text); err == nil {
				return u, nil
			}
			p.restore(mark)
		}
	}
	return p.parsePrimary()
}

func (p *parser) parseBoundedTemporal(op string) (Formula, error) {
	var bound *Bound
	if p.peek().kind == tokLBracket {
		p.next()
		lo, err := p.expect(tokInt, "lower bound")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, "comma"); err != nil {
			return nil, err
		}
		hi, err := p.expect(tokInt, "upper bound")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "]"); err != nil {
			return nil, err
		}
		loV, _ := strconv.Atoi(lo.text)
		hiV, _ := strconv.Atoi(hi.text)
		b := Bound{Lo: loV, Hi: hiV}
		if !b.Valid() {
			return nil, fmt.Errorf("ctl: invalid bound %s", b)
		}
		bound = &b
	}
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	switch op {
	case "AG":
		return &agNode{f: f, bound: bound}, nil
	case "AF":
		return &afNode{f: f, bound: bound}, nil
	case "EG":
		return &egNode{f: f, bound: bound}, nil
	default:
		return &efNode{f: f, bound: bound}, nil
	}
}

func (p *parser) parseUntil(quantifier string) (Formula, error) {
	if _, err := p.expect(tokLBracket, "["); err != nil {
		return nil, err
	}
	l, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	u := p.next()
	if u.kind != tokIdent || u.text != "U" {
		return nil, fmt.Errorf("ctl: expected U at position %d", u.pos)
	}
	r, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket, "]"); err != nil {
		return nil, err
	}
	if quantifier == "A" {
		return AU(l, r), nil
	}
	return EU(l, r), nil
}

func (p *parser) parsePrimary() (Formula, error) {
	t := p.next()
	switch t.kind {
	case tokLParen:
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		switch t.text {
		case "true":
			return True, nil
		case "false":
			return False, nil
		case "deadlock":
			return Deadlock, nil
		default:
			return Atom(automata.Proposition(t.text)), nil
		}
	default:
		return nil, fmt.Errorf("ctl: unexpected token %q at position %d", t.text, t.pos)
	}
}
