package ctl_test

import (
	"fmt"
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/gen"
)

// This file is the bitset-vs-legacy differential suite: over the
// internal/gen corpus (default and wide configurations) plus handcrafted
// structures, the bitset Checker must agree with the frozen Reference
// engine on every satisfaction set, verdict, counterexample, and witness —
// at every tested worker count. The extraction code is shared between the
// engines, so any disagreement pins the blame on the fixpoint rewrite.

var diffWorkerCounts = []int{1, 2, 8}

// diffFormulas builds the probe suite for a system: the instance property
// (when present), deadlock freedom, and one formula per operator family
// over the system's own propositions.
func diffFormulas(sys *automata.Automaton, property ctl.Formula) []ctl.Formula {
	props := sys.AllPropositions()
	atom := func(i int) ctl.Formula {
		if len(props) == 0 {
			return ctl.True
		}
		return ctl.Atom(props[i%len(props)])
	}
	p, q, r := atom(0), atom(1), atom(2)
	fs := []ctl.Formula{
		ctl.NoDeadlock(),
		ctl.EF(ctl.Deadlock),
		ctl.AG(p),
		ctl.EF(ctl.And(p, q)),
		ctl.AF(q),
		ctl.EG(p),
		ctl.AG(ctl.Implies(p, ctl.AFWithin(1, 3, q))),
		ctl.EFWithin(0, 4, q),
		ctl.AGWithin(0, 5, ctl.Not(ctl.Deadlock)),
		ctl.EGWithin(1, 4, ctl.Or(p, r)),
		ctl.AX(ctl.Or(p, ctl.Deadlock)),
		ctl.EX(q),
		ctl.AU(ctl.Not(q), p),
		ctl.EU(ctl.Not(p), q),
		ctl.Not(ctl.EF(ctl.And(p, q))),
		ctl.And(ctl.AG(ctl.Or(p, ctl.Not(p))), ctl.AF(ctl.Or(q, ctl.Deadlock))),
	}
	if property != nil {
		fs = append(fs, property)
	}
	return fs
}

func runsEqual(a, b *automata.Run) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.States) != len(b.States) || len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.States {
		if a.States[i] != b.States[i] {
			return false
		}
	}
	for i := range a.Steps {
		if !a.Steps[i].Equal(b.Steps[i]) {
			return false
		}
	}
	return true
}

func resultsEqual(a, b ctl.Result) bool {
	return a.Holds == b.Holds &&
		a.EndsInDeadlock == b.EndsInDeadlock &&
		a.RunWitnessed == b.RunWitnessed &&
		a.Explanation == b.Explanation &&
		runsEqual(a.Counterexample, b.Counterexample)
}

// diffOne cross-checks one system against the reference engine for every
// probe formula and worker count.
func diffOne(t *testing.T, label string, sys *automata.Automaton, property ctl.Formula) {
	t.Helper()
	ref := ctl.NewReference(sys)
	for _, workers := range diffWorkerCounts {
		checker := ctl.NewChecker(sys)
		checker.SetWorkers(workers)
		for _, f := range diffFormulas(sys, property) {
			ctxt := fmt.Sprintf("%s workers=%d formula=%s", label, workers, f)

			wantSat, gotSat := ref.Sat(f), checker.Sat(f)
			for s := range wantSat {
				if wantSat[s] != gotSat[s] {
					t.Fatalf("%s: Sat mismatch at state %s: ref=%v bitset=%v",
						ctxt, sys.StateName(automata.StateID(s)), wantSat[s], gotSat[s])
				}
			}
			if want, got := ref.Holds(f), checker.Holds(f); want != got {
				t.Fatalf("%s: Holds mismatch: ref=%v bitset=%v", ctxt, want, got)
			}

			wantRes, gotRes := ref.Check(f), checker.Check(f)
			if !resultsEqual(wantRes, gotRes) {
				t.Fatalf("%s: Check mismatch:\nref:    %+v\nbitset: %+v", ctxt, wantRes, gotRes)
			}

			wantMany, gotMany := ref.CheckMany(f, 3), checker.CheckMany(f, 3)
			if len(wantMany) != len(gotMany) {
				t.Fatalf("%s: CheckMany count mismatch: ref=%d bitset=%d",
					ctxt, len(wantMany), len(gotMany))
			}
			for i := range wantMany {
				if !resultsEqual(wantMany[i], gotMany[i]) {
					t.Fatalf("%s: CheckMany[%d] mismatch:\nref:    %+v\nbitset: %+v",
						ctxt, i, wantMany[i], gotMany[i])
				}
			}

			wantRun, wantErr := ref.Witness(f)
			gotRun, gotErr := checker.Witness(f)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: Witness error mismatch: ref=%v bitset=%v", ctxt, wantErr, gotErr)
			}
			if !runsEqual(wantRun, gotRun) {
				t.Fatalf("%s: Witness run mismatch:\nref:    %v\nbitset: %v", ctxt, wantRun, gotRun)
			}
		}
	}
}

func TestBitsetDifferentialGenCorpus(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		inst, err := gen.New(seed, gen.DefaultConfig())
		if err != nil {
			t.Fatalf("gen seed %d: %v", seed, err)
		}
		sys, err := inst.TrueComposition()
		if err != nil {
			t.Fatalf("compose seed %d: %v", seed, err)
		}
		diffOne(t, fmt.Sprintf("default/seed=%d states=%d", seed, sys.NumStates()), sys, inst.Property)
	}
}

func TestBitsetDifferentialWideCorpus(t *testing.T) {
	// WideConfig draws from >64 input/output signals, so interaction
	// alphabets exceed one machine word even though states stay modest.
	for seed := int64(1); seed <= 10; seed++ {
		inst, err := gen.New(seed, gen.WideConfig())
		if err != nil {
			t.Fatalf("gen wide seed %d: %v", seed, err)
		}
		sys, err := inst.TrueComposition()
		if err != nil {
			t.Fatalf("compose wide seed %d: %v", seed, err)
		}
		diffOne(t, fmt.Sprintf("wide/seed=%d states=%d", seed, sys.NumStates()), sys, inst.Property)
	}
}

// layeredAutomaton builds width×depth states arranged in layers, each
// state fanning out to a few states of the next layer. Large widths push
// frontier levels past the parallel-expansion threshold, so the worker
// merge paths are exercised, not just the sequential fallbacks.
func layeredAutomaton(width, depth int) *automata.Automaton {
	a := automata.New("layers", automata.NewSignalSet("x"), automata.EmptySet)
	x := automata.Interact([]automata.Signal{"x"}, nil)
	ids := make([][]automata.StateID, depth)
	for l := 0; l < depth; l++ {
		ids[l] = make([]automata.StateID, width)
		for w := 0; w < width; w++ {
			var labels []automata.Proposition
			if (l*31+w*7)%5 == 0 {
				labels = append(labels, "p")
			}
			if (l+w)%11 == 0 {
				labels = append(labels, "q")
			}
			ids[l][w] = a.MustAddState(fmt.Sprintf("l%dw%d", l, w), labels...)
		}
	}
	for l := 0; l+1 < depth; l++ {
		for w := 0; w < width; w++ {
			for k := 0; k < 3; k++ {
				to := ids[l+1][(w*5+k*13)%width]
				_ = a.AddTransition(ids[l][w], x, to)
			}
		}
	}
	// A back edge per stripe keeps part of the graph cyclic so EG/AF see
	// lassos, not just finite paths.
	for w := 0; w < width; w += 17 {
		_ = a.AddTransition(ids[depth-1][w], x, ids[0][w])
	}
	a.MarkInitial(ids[0][0])
	return a
}

func TestBitsetDifferentialLargeParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential corpus skipped in -short mode")
	}
	// 7200 states, frontier levels of ~1200: crosses both parallel
	// thresholds (sweeps ≥4096 states, frontiers ≥1024 states).
	sys := layeredAutomaton(1200, 6)
	diffOne(t, "layered/1200x6", sys, nil)
}

func TestBitsetDifferentialSmallShapes(t *testing.T) {
	shapes := map[string]*automata.Automaton{
		"layered-small": layeredAutomaton(5, 4),
		"single":        singleState(),
		"word-boundary": chainAutomaton(64),
		"word-spill":    chainAutomaton(65),
		"two-words":     chainAutomaton(130),
	}
	for name, sys := range shapes {
		diffOne(t, name, sys, nil)
	}
}

// chainAutomaton is a line of n states ending in a deadlock, sized to
// probe bitset tail-masking at and around word boundaries.
func chainAutomaton(n int) *automata.Automaton {
	a := automata.New("chain", automata.NewSignalSet("x"), automata.EmptySet)
	x := automata.Interact([]automata.Signal{"x"}, nil)
	ids := make([]automata.StateID, n)
	for i := 0; i < n; i++ {
		var labels []automata.Proposition
		if i%3 == 0 {
			labels = append(labels, "p")
		}
		if i == n-1 {
			labels = append(labels, "q")
		}
		ids[i] = a.MustAddState(fmt.Sprintf("c%d", i), labels...)
	}
	for i := 0; i+1 < n; i++ {
		a.MustAddTransition(ids[i], x, ids[i+1])
	}
	a.MarkInitial(ids[0])
	return a
}

func singleState() *automata.Automaton {
	a := automata.New("one", automata.EmptySet, automata.EmptySet)
	a.MustAddState("only", "p")
	a.MarkInitial(0)
	return a
}
