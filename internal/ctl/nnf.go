package ctl

import "muml/internal/automata"

// NNF converts the formula to negation normal form: negations are pushed
// down to atoms and the deadlock symbol using the CTL dualities
//
//	¬AX f = EX ¬f          ¬EX f = AX ¬f
//	¬AF f = EG ¬f          ¬EF f = AG ¬f
//	¬AG f = EF ¬f          ¬EG f = AF ¬f
//	¬A[f U g] = E[¬g U ¬f∧¬g] ∨ EG ¬g
//	¬E[f U g] = A[¬g U ¬f∧¬g] ∨ AG ¬g   (dually)
//
// Bounded F and G operators dualize with the same bound. Implications are
// rewritten to disjunctions. The dualities hold under the finite-maximal-
// path semantics implemented by Check (AX vacuous at deadlocks, EX false).
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, negated bool) Formula {
	switch n := f.(type) {
	case trueNode:
		if negated {
			return False
		}
		return True
	case falseNode:
		if negated {
			return True
		}
		return False
	case *atomNode:
		if negated {
			return &notNode{f: n}
		}
		return n
	case deadlockNode:
		if negated {
			return &notNode{f: n}
		}
		return n
	case *notNode:
		return nnf(n.f, !negated)
	case *andNode:
		if negated {
			return Or(nnf(n.l, true), nnf(n.r, true))
		}
		return And(nnf(n.l, false), nnf(n.r, false))
	case *orNode:
		if negated {
			return And(nnf(n.l, true), nnf(n.r, true))
		}
		return Or(nnf(n.l, false), nnf(n.r, false))
	case *impNode:
		// l → r ≡ ¬l ∨ r.
		return nnf(Or(Not(n.l), n.r), negated)
	case *axNode:
		if negated {
			return EX(nnf(n.f, true))
		}
		return AX(nnf(n.f, false))
	case *exNode:
		if negated {
			return AX(nnf(n.f, true))
		}
		return EX(nnf(n.f, false))
	case *afNode:
		if negated {
			return &egNode{f: nnf(n.f, true), bound: n.bound}
		}
		return &afNode{f: nnf(n.f, false), bound: n.bound}
	case *efNode:
		if negated {
			return &agNode{f: nnf(n.f, true), bound: n.bound}
		}
		return &efNode{f: nnf(n.f, false), bound: n.bound}
	case *agNode:
		if negated {
			return &efNode{f: nnf(n.f, true), bound: n.bound}
		}
		return &agNode{f: nnf(n.f, false), bound: n.bound}
	case *egNode:
		if negated {
			return &afNode{f: nnf(n.f, true), bound: n.bound}
		}
		return &egNode{f: nnf(n.f, false), bound: n.bound}
	case *auNode:
		if negated {
			nl, nr := nnf(n.l, true), nnf(n.r, true)
			return Or(EU(nr, And(nl, nr)), EG(nr))
		}
		return AU(nnf(n.l, false), nnf(n.r, false))
	case *euNode:
		if negated {
			nl, nr := nnf(n.l, true), nnf(n.r, true)
			return Or(AU(nr, And(nl, nr)), AG(nr))
		}
		return EU(nnf(n.l, false), nnf(n.r, false))
	default:
		return f
	}
}

// IsACTL reports whether the formula lies in the timed ACTL fragment used
// for role invariants and pattern constraints (Footnote 3): after NNF
// conversion only universal path quantifiers occur. Only ACTL formulas are
// compositional in the sense of Section 2.4.
func IsACTL(f Formula) bool {
	var universal func(Formula) bool
	universal = func(f Formula) bool {
		switch n := f.(type) {
		case *exNode, *efNode, *egNode, *euNode:
			return false
		case *notNode:
			return universal(n.f)
		case *andNode:
			return universal(n.l) && universal(n.r)
		case *orNode:
			return universal(n.l) && universal(n.r)
		case *axNode:
			return universal(n.f)
		case *afNode:
			return universal(n.f)
		case *agNode:
			return universal(n.f)
		case *auNode:
			return universal(n.l) && universal(n.r)
		default:
			return true
		}
	}
	return universal(NNF(f))
}

// WeakenForChaos applies the proposition-weakening trick of Section 2.7:
// in NNF, every positive atom p becomes (p ∨ χ) and every negated atom ¬p
// becomes (¬p ∨ χ), where χ is the chaos proposition carried by s_∀ and
// s_δ. The weakened formula treats chaotic states as satisfying every
// (positive or negative) literal, which is the efficient alternative to
// duplicating the chaos states for every proposition subset.
//
// The deadlock symbol δ is deliberately *not* weakened: deadlock freedom
// must still flag deadlocks inside the chaotic closure (s_δ), since those
// are exactly the unconfirmed refusal hypotheses the synthesis loop has to
// test.
func WeakenForChaos(f Formula) Formula {
	chaos := Atom(automata.ChaosProposition)
	var weaken func(Formula) Formula
	weaken = func(f Formula) Formula {
		switch n := f.(type) {
		case *atomNode:
			return Or(n, chaos)
		case *notNode:
			// NNF guarantees n.f is an atom or deadlock.
			if _, ok := n.f.(*atomNode); ok {
				return Or(n, chaos)
			}
			return n
		case *andNode:
			return And(weaken(n.l), weaken(n.r))
		case *orNode:
			return Or(weaken(n.l), weaken(n.r))
		case *axNode:
			return AX(weaken(n.f))
		case *exNode:
			return EX(weaken(n.f))
		case *afNode:
			return &afNode{f: weaken(n.f), bound: n.bound}
		case *efNode:
			return &efNode{f: weaken(n.f), bound: n.bound}
		case *agNode:
			return &agNode{f: weaken(n.f), bound: n.bound}
		case *egNode:
			return &egNode{f: weaken(n.f), bound: n.bound}
		case *auNode:
			return AU(weaken(n.l), weaken(n.r))
		case *euNode:
			return EU(weaken(n.l), weaken(n.r))
		default:
			return f
		}
	}
	return weaken(NNF(f))
}
