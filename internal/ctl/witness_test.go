package ctl

import (
	"testing"

	"muml/internal/automata"
)

func witnessWorld() *automata.Automaton {
	a := automata.New("w", automata.NewSignalSet("x", "y"), automata.EmptySet)
	s0 := a.MustAddState("s0", "start")
	s1 := a.MustAddState("s1", "mid")
	s2 := a.MustAddState("s2", "goal")
	s3 := a.MustAddState("s3", "off")
	x := automata.Interact([]automata.Signal{"x"}, nil)
	y := automata.Interact([]automata.Signal{"y"}, nil)
	a.MustAddTransition(s0, x, s1)
	a.MustAddTransition(s0, y, s3)
	a.MustAddTransition(s1, x, s2)
	a.MustAddTransition(s2, x, s2)
	a.MustAddTransition(s3, y, s2)
	a.MarkInitial(s0)
	return a
}

func TestWitnessEF(t *testing.T) {
	c := NewChecker(witnessWorld())
	run, err := c.Witness(EF(Atom("goal")).(Formula))
	if err != nil {
		t.Fatal(err)
	}
	if err := run.IsRunOf(c.Automaton()); err != nil {
		t.Fatal(err)
	}
	// Shortest path has 2 steps (via mid).
	if run.Len() != 2 {
		t.Fatalf("witness length = %d, want 2", run.Len())
	}
	last := run.States[len(run.States)-1]
	if !c.Automaton().HasLabel(last, "goal") {
		t.Fatal("witness does not end in goal")
	}
}

func TestWitnessBoundedEF(t *testing.T) {
	c := NewChecker(witnessWorld())
	// With window [3,3] only the off-route (y,y,...) arrives in time? No:
	// goal self-loops, so s0-x-s1-x-s2-x-s2 reaches goal at depth 3 too.
	run, err := c.Witness(EFWithin(3, 3, Atom("goal")))
	if err != nil {
		t.Fatal(err)
	}
	if run.Len() != 3 {
		t.Fatalf("witness length = %d, want 3", run.Len())
	}
}

func TestWitnessEX(t *testing.T) {
	c := NewChecker(witnessWorld())
	run, err := c.Witness(EX(Atom("mid")))
	if err != nil {
		t.Fatal(err)
	}
	if run.Len() != 1 {
		t.Fatalf("EX witness length = %d", run.Len())
	}
}

func TestWitnessEU(t *testing.T) {
	c := NewChecker(witnessWorld())
	// goal reachable via start/mid states only.
	run, err := c.Witness(EU(Or(Atom("start"), Atom("mid")), Atom("goal")))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range run.States[:len(run.States)-1] {
		if c.Automaton().HasLabel(s, "off") {
			t.Fatal("EU witness strays outside the via set")
		}
	}
}

func TestWitnessErrors(t *testing.T) {
	c := NewChecker(witnessWorld())
	if _, err := c.Witness(AG(Atom("goal"))); err == nil {
		t.Fatal("universal formula accepted for witness generation")
	}
	if _, err := c.Witness(EF(Atom("nonexistent"))); err == nil {
		t.Fatal("unsatisfiable EF produced a witness")
	}
	if _, err := c.Witness(EX(Atom("goal"))); err == nil {
		t.Fatal("EX with no satisfying successor produced a witness")
	}
}
