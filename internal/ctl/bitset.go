package ctl

import "math/bits"

// bitset is a fixed-width state set: bit i is state i. All word-wise
// operations assume both operands were sized for the same state count; the
// bits past the state count in the last word are kept at zero by the
// constructors and by tail masking in complement/fill, so popcounts and
// word comparisons never see ghost states.
type bitset []uint64

// wordsFor returns the number of 64-bit words covering n states.
func wordsFor(n int) int { return (n + 63) >> 6 }

// tailMask returns the valid-bit mask of the last word for n states
// (all-ones when n is a multiple of 64).
func tailMask(n int) uint64 {
	if r := n & 63; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

func newBitset(n int) bitset { return make(bitset, wordsFor(n)) }

func (b bitset) set(i int)       { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clearBit(i int)  { b[i>>6] &^= 1 << uint(i&63) }
func (b bitset) test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// copyFrom overwrites b with src (same length).
func (b bitset) copyFrom(src bitset) { copy(b, src) }

// zero clears every word.
func (b bitset) zero() { clear(b) }

// fill sets the first n bits and clears the rest.
func (b bitset) fill(n int) {
	if len(b) == 0 {
		return
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	b[len(b)-1] = tailMask(n)
}

// complementOf sets b to ¬src over n states, keeping the tail zero.
func (b bitset) complementOf(src bitset, n int) {
	for i := range b {
		b[i] = ^src[i]
	}
	if len(b) > 0 {
		b[len(b)-1] &= tailMask(n)
	}
}

func (b bitset) and(x bitset) {
	for i := range b {
		b[i] &= x[i]
	}
}

func (b bitset) or(x bitset) {
	for i := range b {
		b[i] |= x[i]
	}
}

func (b bitset) andNot(x bitset) {
	for i := range b {
		b[i] &^= x[i]
	}
}

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// equal reports word-wise equality (both operands same length, tails zero).
func (b bitset) equal(x bitset) bool {
	for i := range b {
		if b[i] != x[i] {
			return false
		}
	}
	return true
}

// appendSet appends the indices of set bits, in ascending order, to dst.
func (b bitset) appendSet(dst []int32) []int32 {
	for wi, w := range b {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// appendSetWord appends the indices encoded by one word at the given base.
func appendSetWord(dst []int32, w uint64, base int32) []int32 {
	for w != 0 {
		dst = append(dst, base+int32(bits.TrailingZeros64(w)))
		w &= w - 1
	}
	return dst
}
