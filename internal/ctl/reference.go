package ctl

import (
	"fmt"

	"muml/internal/automata"
)

// Reference is the frozen pre-bitset explicit-state checker: per-state
// []bool satisfaction sets, [][]Transition reverse adjacency, and
// sweep-to-stabilization greatest fixpoints. It exists as the differential
// oracle for the bitset Checker — the two must agree on every verdict,
// satisfaction set, counterexample, and witness — and as the baseline of
// the BENCH_ctl speedup measurements. It keeps the legacy scratch pools so
// benchmark comparisons measure the algorithms, not allocator noise. It
// has no context support and no instrumentation; production call sites use
// Checker.
type Reference struct {
	auto      *automata.Automaton
	sat       map[Formula][]bool
	pred      [][]automata.Transition // reverse adjacency, built lazily
	predBuilt bool

	boolPool [][]bool           // scratch layers for the bounded operators
	intPool  [][]int            // remaining-successor counters
	queue    []automata.StateID // reused BFS worklist
}

// NewReference creates a frozen legacy checker for the automaton.
func NewReference(a *automata.Automaton) *Reference {
	return &Reference{auto: a, sat: make(map[Formula][]bool)}
}

// Rebind points the reference checker at a changed automaton, dropping
// cached satisfaction sets but keeping buffer capacity (legacy behavior).
func (c *Reference) Rebind(a *automata.Automaton) {
	c.auto = a
	clear(c.sat)
	c.predBuilt = false
}

// Automaton returns the automaton under analysis.
func (c *Reference) Automaton() *automata.Automaton { return c.auto }

// canceled implements satEngine; the reference engine is never bounded by
// a context.
func (c *Reference) canceled() bool { return false }

// Holds reports whether the formula holds in every initial state.
func (c *Reference) Holds(f Formula) bool { return holdsOn(c, f) }

// FailingInitial returns an initial state violating the formula, if any.
func (c *Reference) FailingInitial(f Formula) (automata.StateID, bool) {
	return failingInitial(c, f)
}

// Check is the legacy-engine Check (same extraction code as Checker).
func (c *Reference) Check(f Formula) Result { return checkOn(c, f) }

// CheckMany is the legacy-engine CheckMany.
func (c *Reference) CheckMany(f Formula, max int) []Result { return checkManyOn(c, f, max) }

// Witness is the legacy-engine Witness.
func (c *Reference) Witness(f Formula) (*automata.Run, error) { return witnessOn(c, f) }

// getBool borrows an n-sized false-initialized scratch slice.
func (c *Reference) getBool(n int) []bool {
	if k := len(c.boolPool); k > 0 {
		buf := c.boolPool[k-1]
		c.boolPool = c.boolPool[:k-1]
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]bool, n)
}

func (c *Reference) putBool(buf []bool) {
	c.boolPool = append(c.boolPool, buf)
}

// getInt borrows an n-sized zero-initialized counter slice.
func (c *Reference) getInt(n int) []int {
	if k := len(c.intPool); k > 0 {
		buf := c.intPool[k-1]
		c.intPool = c.intPool[:k-1]
		if cap(buf) >= n {
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	return make([]int, n)
}

func (c *Reference) putInt(buf []int) {
	c.intPool = append(c.intPool, buf)
}

// Sat returns the satisfaction set of the formula as a boolean slice
// indexed by state ID, computed with the legacy per-state algorithms. The
// returned slice is shared with the cache and must not be mutated.
func (c *Reference) Sat(f Formula) []bool {
	if cached, ok := c.sat[f]; ok {
		return cached
	}
	var sat []bool
	n := c.auto.NumStates()
	switch node := f.(type) {
	case trueNode:
		sat = trues(n)
	case falseNode:
		sat = make([]bool, n)
	case deadlockNode:
		sat = make([]bool, n)
		for i := 0; i < n; i++ {
			sat[i] = c.auto.IsDeadlock(automata.StateID(i))
		}
	case *atomNode:
		sat = make([]bool, n)
		for i := 0; i < n; i++ {
			sat[i] = c.auto.HasLabel(automata.StateID(i), node.p)
		}
	case *notNode:
		inner := c.Sat(node.f)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = !inner[i]
		}
	case *andNode:
		l, r := c.Sat(node.l), c.Sat(node.r)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = l[i] && r[i]
		}
	case *orNode:
		l, r := c.Sat(node.l), c.Sat(node.r)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = l[i] || r[i]
		}
	case *impNode:
		l, r := c.Sat(node.l), c.Sat(node.r)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = !l[i] || r[i]
		}
	case *axNode:
		sat = c.preAll(c.Sat(node.f))
	case *exNode:
		sat = c.preSome(c.Sat(node.f))
	case *afNode:
		if node.bound != nil {
			sat = c.boundedAF(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedAF(c.Sat(node.f))
		}
	case *efNode:
		if node.bound != nil {
			sat = c.boundedEF(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedEF(c.Sat(node.f))
		}
	case *agNode:
		if node.bound != nil {
			sat = c.boundedAG(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedAG(c.Sat(node.f))
		}
	case *egNode:
		if node.bound != nil {
			sat = c.boundedEG(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedEG(c.Sat(node.f))
		}
	case *auNode:
		sat = c.unboundedAU(c.Sat(node.l), c.Sat(node.r))
	case *euNode:
		sat = c.unboundedEU(c.Sat(node.l), c.Sat(node.r))
	default:
		panic(fmt.Sprintf("ctl: unknown formula node %T", f))
	}
	c.sat[f] = sat
	return sat
}

// preAll returns {s | s has no successor, or all successors satisfy X}.
func (c *Reference) preAll(x []bool) []bool {
	n := c.auto.NumStates()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = true
		for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
			if !x[t.To] {
				out[i] = false
				break
			}
		}
	}
	return out
}

// preSome returns {s | some successor satisfies X}.
func (c *Reference) preSome(x []bool) []bool {
	n := c.auto.NumStates()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
			if x[t.To] {
				out[i] = true
				break
			}
		}
	}
	return out
}

// unboundedEF computes μX. f ∨ EX X by backward reachability.
func (c *Reference) unboundedEF(f []bool) []bool {
	out := cloneBools(f)
	c.buildPred()
	queue := c.queue[:0]
	for i, ok := range out {
		if ok {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			if !out[t.From] {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.queue = queue
	return out
}

// unboundedAF computes μX. f ∨ (¬deadlock ∧ AX X) with a worklist over
// remaining-successor counters.
func (c *Reference) unboundedAF(f []bool) []bool {
	n := c.auto.NumStates()
	out := cloneBools(f)
	remaining := c.getInt(n)
	c.buildPred()
	queue := c.queue[:0]
	for i := 0; i < n; i++ {
		remaining[i] = len(c.auto.TransitionsFrom(automata.StateID(i)))
		if out[i] {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			remaining[t.From]--
			if !out[t.From] && remaining[t.From] == 0 &&
				len(c.auto.TransitionsFrom(t.From)) > 0 {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.queue = queue
	c.putInt(remaining)
	return out
}

// unboundedAG computes νX. f ∧ AX X by sweeping to stabilization.
func (c *Reference) unboundedAG(f []bool) []bool {
	out := cloneBools(f)
	for changed := true; changed; {
		changed = false
		for i := range out {
			if !out[i] {
				continue
			}
			for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
				if !out[t.To] {
					out[i] = false
					changed = true
					break
				}
			}
		}
	}
	return out
}

// unboundedEG computes νX. f ∧ (deadlock ∨ EX X) by sweeping to
// stabilization.
func (c *Reference) unboundedEG(f []bool) []bool {
	out := cloneBools(f)
	for changed := true; changed; {
		changed = false
		for i := range out {
			if !out[i] {
				continue
			}
			s := automata.StateID(i)
			if c.auto.IsDeadlock(s) {
				continue
			}
			keep := false
			for _, t := range c.auto.TransitionsFrom(s) {
				if out[t.To] {
					keep = true
					break
				}
			}
			if !keep {
				out[i] = false
				changed = true
			}
		}
	}
	return out
}

// unboundedEU computes μX. g ∨ (f ∧ EX X).
func (c *Reference) unboundedEU(f, g []bool) []bool {
	out := cloneBools(g)
	c.buildPred()
	queue := c.queue[:0]
	for i, ok := range out {
		if ok {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			if !out[t.From] && f[t.From] {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.queue = queue
	return out
}

// unboundedAU computes μX. g ∨ (f ∧ ¬deadlock ∧ AX X).
func (c *Reference) unboundedAU(f, g []bool) []bool {
	n := c.auto.NumStates()
	out := cloneBools(g)
	remaining := c.getInt(n)
	c.buildPred()
	queue := c.queue[:0]
	for i := 0; i < n; i++ {
		remaining[i] = len(c.auto.TransitionsFrom(automata.StateID(i)))
		if out[i] {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			remaining[t.From]--
			if !out[t.From] && remaining[t.From] == 0 && f[t.From] &&
				len(c.auto.TransitionsFrom(t.From)) > 0 {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.queue = queue
	c.putInt(remaining)
	return out
}

// boundedAF computes AF[lo,hi] f by backward induction over remaining
// depth j = hi..0.
func (c *Reference) boundedAF(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := c.getBool(n)
	cur := c.getBool(n)
	for j := b.Hi; j >= 0; j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			if j >= b.Lo && f[i] {
				cur[i] = true
				continue
			}
			cur[i] = false
			if j < b.Hi && !c.auto.IsDeadlock(s) {
				all := true
				for _, t := range c.auto.TransitionsFrom(s) {
					if !next[t.To] {
						all = false
						break
					}
				}
				cur[i] = all
			}
		}
		cur, next = next, cur
	}
	out := cloneBools(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// boundedEF computes EF[lo,hi] f analogously.
func (c *Reference) boundedEF(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := c.getBool(n)
	cur := c.getBool(n)
	for j := b.Hi; j >= 0; j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			cur[i] = j >= b.Lo && f[i]
			if !cur[i] && j < b.Hi {
				for _, t := range c.auto.TransitionsFrom(s) {
					if next[t.To] {
						cur[i] = true
						break
					}
				}
			}
		}
		cur, next = next, cur
	}
	out := cloneBools(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// boundedAG computes AG[lo,hi] f.
func (c *Reference) boundedAG(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := fillTrue(c.getBool(n))
	cur := c.getBool(n)
	for j := b.Hi; j >= 0; j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			ok := j < b.Lo || f[i]
			if ok && j < b.Hi {
				for _, t := range c.auto.TransitionsFrom(s) {
					if !next[t.To] {
						ok = false
						break
					}
				}
			}
			cur[i] = ok
		}
		cur, next = next, cur
	}
	out := cloneBools(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// boundedEG computes EG[lo,hi] f.
func (c *Reference) boundedEG(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := fillTrue(c.getBool(n))
	cur := c.getBool(n)
	for j := b.Hi; j >= 0; j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			ok := j < b.Lo || f[i]
			if ok && j < b.Hi && !c.auto.IsDeadlock(s) {
				some := false
				for _, t := range c.auto.TransitionsFrom(s) {
					if next[t.To] {
						some = true
						break
					}
				}
				ok = some
			}
			cur[i] = ok
		}
		cur, next = next, cur
	}
	out := cloneBools(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// buildPred (re)builds the reverse adjacency the legacy way: per-state
// transition rows appended into reusable backing arrays.
func (c *Reference) buildPred() {
	if c.predBuilt {
		return
	}
	n := c.auto.NumStates()
	if cap(c.pred) < n {
		grown := make([][]automata.Transition, n)
		copy(grown, c.pred)
		c.pred = grown
	} else {
		c.pred = c.pred[:n]
	}
	for i := range c.pred {
		c.pred[i] = c.pred[i][:0]
	}
	for i := 0; i < n; i++ {
		for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
			c.pred[t.To] = append(c.pred[t.To], t)
		}
	}
	c.predBuilt = true
}
