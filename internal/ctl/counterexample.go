package ctl

import (
	"fmt"

	"muml/internal/automata"
)

// Result is the outcome of a verification request.
type Result struct {
	// Holds reports whether the formula held in every initial state.
	Holds bool
	// Counterexample is a witness run refuting the formula, when one could
	// be constructed (nil for satisfied formulas and for unsupported
	// formula shapes).
	Counterexample *automata.Run
	// EndsInDeadlock reports that the counterexample run's final state is
	// a deadlock state of the analyzed automaton.
	EndsInDeadlock bool
	// RunWitnessed reports that the counterexample run *by itself* proves
	// the violation: the violated (sub)formula at the end of the run is
	// propositional, so any system containing this run violates the
	// property. Violations of temporal subformulas (e.g. a bounded AF
	// failing because a path may stop early) additionally depend on which
	// continuations exist, so reproducing the run does not suffice —
	// crucial for the synthesis loop, where refusals of the closed model
	// copies are hypotheses until tested.
	RunWitnessed bool
	// Explanation describes why the final state of the counterexample
	// violates the property.
	Explanation string
}

// Check evaluates the formula over the automaton and, when it fails,
// attempts to construct a shortest counterexample run.
//
// Counterexamples are generated for the property shapes used by the
// synthesis loop and by Mechatronic UML pattern verification:
//
//   - conjunctions: the first failing conjunct is witnessed;
//   - AG f (including deadlock freedom AG ¬δ, invariants, and bounded
//     response AG(¬p ∨ AF[lo,hi] q)): a shortest path to a reachable state
//     violating f, extended with a violation suffix when f is temporal;
//   - AF / AF[lo,hi] / AX / AU at top level: a maximal path avoiding the
//     target.
//
// For other failing shapes Check reports Holds=false without a run.
func Check(a *automata.Automaton, f Formula) Result {
	return NewChecker(a).Check(f)
}

// Check is like the package-level Check but reuses the checker's caches.
func (c *Checker) Check(f Formula) Result {
	if c.Holds(f) {
		return Result{Holds: true}
	}
	res := Result{Holds: false}
	run, explanation, witnessed := c.counterexample(f)
	if run != nil {
		res.Counterexample = run
		res.Explanation = explanation
		res.RunWitnessed = witnessed
		last := run.States[len(run.States)-1]
		res.EndsInDeadlock = c.auto.IsDeadlock(last)
	}
	return res
}

// counterexample dispatches on the top-level formula shape. The third
// result reports whether the run alone witnesses the violation (see
// Result.RunWitnessed).
func (c *Checker) counterexample(f Formula) (*automata.Run, string, bool) {
	switch node := f.(type) {
	case *andNode:
		if !c.Holds(node.l) {
			return c.counterexample(node.l)
		}
		return c.counterexample(node.r)
	case *agNode:
		if node.bound == nil {
			return c.agCounterexample(node.f)
		}
	case *afNode, *axNode, *auNode:
		// Fall through to path-based witness from a failing initial state.
	case *notNode:
		// ¬EF f at the top level behaves like AG ¬f.
		if ef, ok := node.f.(*efNode); ok && ef.bound == nil {
			return c.agCounterexample(Not(ef.f))
		}
	}
	// Generic: start at a failing initial state and extend with the local
	// violation suffix if the shape is supported.
	q, ok := c.FailingInitial(f)
	if !ok {
		return nil, "", false
	}
	run := &automata.Run{States: []automata.StateID{q}}
	if c.extendViolation(run, f) {
		return run, fmt.Sprintf("state %q violates %s", c.auto.StateName(run.States[len(run.States)-1]), f), false
	}
	return run, fmt.Sprintf("initial state %q violates %s", c.auto.StateName(q), f), isPropositional(f)
}

// isPropositional reports whether the formula contains no temporal
// operators and no deadlock symbol: its violation at a state is witnessed
// by the state's labels alone.
func isPropositional(f Formula) bool {
	switch n := f.(type) {
	case trueNode, falseNode, *atomNode:
		return true
	case *notNode:
		return isPropositional(n.f)
	case *andNode:
		return isPropositional(n.l) && isPropositional(n.r)
	case *orNode:
		return isPropositional(n.l) && isPropositional(n.r)
	case *impNode:
		return isPropositional(n.l) && isPropositional(n.r)
	default:
		// deadlockNode and all temporal operators.
		return false
	}
}

// agCounterexample finds a shortest path from a failing initial state to a
// reachable state violating f, then appends f's violation suffix.
func (c *Checker) agCounterexample(f Formula) (*automata.Run, string, bool) {
	sat := c.Sat(f)
	n := c.auto.NumStates()
	parent := make([]automata.Transition, n)
	visited := make([]bool, n)
	var queue []automata.StateID

	for _, q := range c.auto.Initial() {
		if visited[q] {
			continue
		}
		visited[q] = true
		parent[q] = automata.Transition{From: automata.NoState}
		queue = append(queue, q)
	}
	target := automata.NoState
	for head := 0; head < len(queue) && target == automata.NoState; head++ {
		s := queue[head]
		if !sat[s] {
			target = s
			break
		}
		for _, t := range c.auto.TransitionsFrom(s) {
			if !visited[t.To] {
				visited[t.To] = true
				parent[t.To] = t
				queue = append(queue, t.To)
			}
		}
	}
	if target == automata.NoState {
		return nil, "", false
	}
	// Reconstruct the path.
	var rev []automata.Transition
	for s := target; parent[s].From != automata.NoState; s = parent[s].From {
		rev = append(rev, parent[s])
	}
	run := &automata.Run{}
	start := target
	if len(rev) > 0 {
		start = rev[len(rev)-1].From
	}
	run.States = append(run.States, start)
	for i := len(rev) - 1; i >= 0; i-- {
		run.Steps = append(run.Steps, rev[i].Label)
		run.States = append(run.States, rev[i].To)
	}
	explanation := fmt.Sprintf("state %q violates %s", c.auto.StateName(target), f)
	if c.extendViolation(run, f) {
		explanation = fmt.Sprintf("state %q violates %s (witness extended)", c.auto.StateName(target), f)
	}
	return run, explanation, isPropositional(f)
}

// extendViolation appends, to a run ending in a state violating f, a path
// suffix witnessing the violation of f. Returns false when no extension is
// needed (propositional f) or the shape is unsupported.
func (c *Checker) extendViolation(run *automata.Run, f Formula) bool {
	s := run.States[len(run.States)-1]
	switch node := f.(type) {
	case *orNode:
		// Both disjuncts fail; extend along whichever produces a suffix.
		if c.extendViolation(run, node.l) {
			return true
		}
		return c.extendViolation(run, node.r)
	case *andNode:
		if !c.Sat(node.l)[s] {
			return c.extendViolation(run, node.l)
		}
		return c.extendViolation(run, node.r)
	case *impNode:
		// l → r fails: l holds, r fails.
		return c.extendViolation(run, node.r)
	case *axNode:
		inner := c.Sat(node.f)
		for _, t := range c.auto.TransitionsFrom(s) {
			if !inner[t.To] {
				run.Steps = append(run.Steps, t.Label)
				run.States = append(run.States, t.To)
				c.extendViolation(run, node.f)
				return true
			}
		}
		return false
	case *afNode:
		if node.bound != nil {
			return c.extendBoundedAFViolation(run, node)
		}
		return c.extendAFViolation(run, node.f)
	case *auNode:
		// A violation of A[l U r] is a maximal path where r never holds
		// (possibly leaving l); approximate with the AF suffix for r.
		return c.extendAFViolation(run, node.r)
	default:
		return false
	}
}

// extendAFViolation extends the run along states violating AF f: follow
// successors that still violate AF f until a cycle or deadlock is reached.
func (c *Checker) extendAFViolation(run *automata.Run, f Formula) bool {
	af := c.Sat(AF(f))
	s := run.States[len(run.States)-1]
	onPath := map[automata.StateID]bool{s: true}
	extended := false
	for {
		if c.auto.IsDeadlock(s) {
			return extended
		}
		advanced := false
		var fallback *automata.Transition
		for _, t := range c.auto.TransitionsFrom(s) {
			if af[t.To] {
				continue
			}
			if onPath[t.To] {
				tt := t
				fallback = &tt
				continue
			}
			run.Steps = append(run.Steps, t.Label)
			run.States = append(run.States, t.To)
			onPath[t.To] = true
			s = t.To
			extended, advanced = true, true
			break
		}
		if !advanced {
			if fallback != nil {
				// Close the lasso loop once.
				run.Steps = append(run.Steps, fallback.Label)
				run.States = append(run.States, fallback.To)
				return true
			}
			return extended
		}
	}
}

// extendBoundedAFViolation extends the run with a path of at most bound.Hi
// steps along which f is never satisfied inside the window.
func (c *Checker) extendBoundedAFViolation(run *automata.Run, node *afNode) bool {
	b := *node.bound
	fSat := c.Sat(node.f)
	// Recompute the layered ok(·, j) table to follow a failing path.
	layers := make([][]bool, b.Hi+2)
	layers[b.Hi+1] = make([]bool, c.auto.NumStates())
	for j := b.Hi; j >= 0; j-- {
		layer := make([]bool, c.auto.NumStates())
		for i := range layer {
			s := automata.StateID(i)
			if j >= b.Lo && fSat[i] {
				layer[i] = true
				continue
			}
			if j < b.Hi && !c.auto.IsDeadlock(s) {
				all := true
				for _, t := range c.auto.TransitionsFrom(s) {
					if !layers[j+1][t.To] {
						all = false
						break
					}
				}
				layer[i] = all
			}
		}
		layers[j] = layer
	}
	s := run.States[len(run.States)-1]
	if layers[0][s] {
		return false // not actually violating
	}
	extended := false
	for j := 0; j < b.Hi; j++ {
		if c.auto.IsDeadlock(s) {
			return extended
		}
		moved := false
		for _, t := range c.auto.TransitionsFrom(s) {
			if !layers[j+1][t.To] {
				run.Steps = append(run.Steps, t.Label)
				run.States = append(run.States, t.To)
				s = t.To
				extended, moved = true, true
				break
			}
		}
		if !moved {
			return extended
		}
	}
	return extended
}
