package ctl

import (
	"fmt"

	"muml/internal/automata"
)

// satEngine is the narrow evaluator view that counterexample and witness
// extraction need. Both the bitset Checker and the frozen legacy Reference
// implement it, so the extraction paths below are shared code: any verdict
// or witness difference between the two engines is attributable to the
// satisfaction sets alone.
type satEngine interface {
	Sat(Formula) []bool
	Automaton() *automata.Automaton
	canceled() bool
}

// Result is the outcome of a verification request.
type Result struct {
	// Holds reports whether the formula held in every initial state.
	Holds bool
	// Counterexample is a witness run refuting the formula, when one could
	// be constructed (nil for satisfied formulas and for unsupported
	// formula shapes).
	Counterexample *automata.Run
	// EndsInDeadlock reports that the counterexample run's final state is
	// a deadlock state of the analyzed automaton.
	EndsInDeadlock bool
	// RunWitnessed reports that the counterexample run *by itself* proves
	// the violation: the violated (sub)formula at the end of the run is
	// propositional, so any system containing this run violates the
	// property. Violations of temporal subformulas (e.g. a bounded AF
	// failing because a path may stop early) additionally depend on which
	// continuations exist, so reproducing the run does not suffice —
	// crucial for the synthesis loop, where refusals of the closed model
	// copies are hypotheses until tested.
	RunWitnessed bool
	// Explanation describes why the final state of the counterexample
	// violates the property.
	Explanation string
}

// Check evaluates the formula over the automaton and, when it fails,
// attempts to construct a shortest counterexample run.
//
// Counterexamples are generated for the property shapes used by the
// synthesis loop and by Mechatronic UML pattern verification:
//
//   - conjunctions: the first failing conjunct is witnessed;
//   - AG f (including deadlock freedom AG ¬δ, invariants, and bounded
//     response AG(¬p ∨ AF[lo,hi] q)): a shortest path to a reachable state
//     violating f, extended with a violation suffix when f is temporal;
//   - AF / AF[lo,hi] / AX / AU at top level: a maximal path avoiding the
//     target.
//
// For other failing shapes Check reports Holds=false without a run.
func Check(a *automata.Automaton, f Formula) Result {
	return NewChecker(a).Check(f)
}

// Check is like the package-level Check but reuses the checker's caches.
func (c *Checker) Check(f Formula) Result {
	return checkOn(c, f)
}

// holdsOn reports whether the formula holds in every initial state,
// through the engine's Sat sets.
func holdsOn(e satEngine, f Formula) bool {
	sat := e.Sat(f)
	for _, q := range e.Automaton().Initial() {
		if !sat[q] {
			return false
		}
	}
	return true
}

// failingInitial returns an initial state violating the formula, if any.
func failingInitial(e satEngine, f Formula) (automata.StateID, bool) {
	sat := e.Sat(f)
	for _, q := range e.Automaton().Initial() {
		if !sat[q] {
			return q, true
		}
	}
	return automata.NoState, false
}

func checkOn(e satEngine, f Formula) Result {
	if holdsOn(e, f) {
		return Result{Holds: true}
	}
	res := Result{Holds: false}
	run, explanation, witnessed := counterexample(e, f)
	if run != nil {
		res.Counterexample = run
		res.Explanation = explanation
		res.RunWitnessed = witnessed
		last := run.States[len(run.States)-1]
		res.EndsInDeadlock = e.Automaton().IsDeadlock(last)
	}
	return res
}

// counterexample dispatches on the top-level formula shape. The third
// result reports whether the run alone witnesses the violation (see
// Result.RunWitnessed).
func counterexample(e satEngine, f Formula) (*automata.Run, string, bool) {
	switch node := f.(type) {
	case *andNode:
		if !holdsOn(e, node.l) {
			return counterexample(e, node.l)
		}
		return counterexample(e, node.r)
	case *agNode:
		if node.bound == nil {
			return agCounterexample(e, node.f)
		}
	case *afNode, *axNode, *auNode:
		// Fall through to path-based witness from a failing initial state.
	case *notNode:
		// ¬EF f at the top level behaves like AG ¬f.
		if ef, ok := node.f.(*efNode); ok && ef.bound == nil {
			return agCounterexample(e, Not(ef.f))
		}
	}
	// Generic: start at a failing initial state and extend with the local
	// violation suffix if the shape is supported.
	q, ok := failingInitial(e, f)
	if !ok {
		return nil, "", false
	}
	a := e.Automaton()
	run := &automata.Run{States: []automata.StateID{q}}
	if extendViolation(e, run, f) {
		return run, fmt.Sprintf("state %q violates %s", a.StateName(run.States[len(run.States)-1]), f), false
	}
	return run, fmt.Sprintf("initial state %q violates %s", a.StateName(q), f), isPropositional(f)
}

// isPropositional reports whether the formula contains no temporal
// operators and no deadlock symbol: its violation at a state is witnessed
// by the state's labels alone.
func isPropositional(f Formula) bool {
	switch n := f.(type) {
	case trueNode, falseNode, *atomNode:
		return true
	case *notNode:
		return isPropositional(n.f)
	case *andNode:
		return isPropositional(n.l) && isPropositional(n.r)
	case *orNode:
		return isPropositional(n.l) && isPropositional(n.r)
	case *impNode:
		return isPropositional(n.l) && isPropositional(n.r)
	default:
		// deadlockNode and all temporal operators.
		return false
	}
}

// agCounterexample finds a shortest path from a failing initial state to a
// reachable state violating f, then appends f's violation suffix.
func agCounterexample(e satEngine, f Formula) (*automata.Run, string, bool) {
	sat := e.Sat(f)
	a := e.Automaton()
	n := a.NumStates()
	parent := make([]automata.Transition, n)
	visited := make([]bool, n)
	var queue []automata.StateID

	for _, q := range a.Initial() {
		if visited[q] {
			continue
		}
		visited[q] = true
		parent[q] = automata.Transition{From: automata.NoState}
		queue = append(queue, q)
	}
	target := automata.NoState
	for head := 0; head < len(queue) && target == automata.NoState; head++ {
		s := queue[head]
		if !sat[s] {
			target = s
			break
		}
		for _, t := range a.TransitionsFrom(s) {
			if !visited[t.To] {
				visited[t.To] = true
				parent[t.To] = t
				queue = append(queue, t.To)
			}
		}
	}
	if target == automata.NoState {
		return nil, "", false
	}
	run := reconstructPath(target, parent)
	explanation := fmt.Sprintf("state %q violates %s", a.StateName(target), f)
	if extendViolation(e, run, f) {
		explanation = fmt.Sprintf("state %q violates %s (witness extended)", a.StateName(target), f)
	}
	return run, explanation, isPropositional(f)
}

// extendViolation appends, to a run ending in a state violating f, a path
// suffix witnessing the violation of f. Returns false when no extension is
// needed (propositional f) or the shape is unsupported.
func extendViolation(e satEngine, run *automata.Run, f Formula) bool {
	s := run.States[len(run.States)-1]
	switch node := f.(type) {
	case *orNode:
		// Both disjuncts fail; extend along whichever produces a suffix.
		if extendViolation(e, run, node.l) {
			return true
		}
		return extendViolation(e, run, node.r)
	case *andNode:
		if !e.Sat(node.l)[s] {
			return extendViolation(e, run, node.l)
		}
		return extendViolation(e, run, node.r)
	case *impNode:
		// l → r fails: l holds, r fails.
		return extendViolation(e, run, node.r)
	case *axNode:
		inner := e.Sat(node.f)
		for _, t := range e.Automaton().TransitionsFrom(s) {
			if !inner[t.To] {
				run.Steps = append(run.Steps, t.Label)
				run.States = append(run.States, t.To)
				extendViolation(e, run, node.f)
				return true
			}
		}
		return false
	case *afNode:
		if node.bound != nil {
			return extendBoundedAFViolation(e, run, node)
		}
		return extendAFViolation(e, run, node.f)
	case *auNode:
		// A violation of A[l U r] is a maximal path where r never holds
		// (possibly leaving l); approximate with the AF suffix for r.
		return extendAFViolation(e, run, node.r)
	default:
		return false
	}
}

// extendAFViolation extends the run along states violating AF f: follow
// successors that still violate AF f until a cycle or deadlock is reached.
func extendAFViolation(e satEngine, run *automata.Run, f Formula) bool {
	af := e.Sat(AF(f))
	a := e.Automaton()
	s := run.States[len(run.States)-1]
	onPath := map[automata.StateID]bool{s: true}
	extended := false
	for {
		if a.IsDeadlock(s) {
			return extended
		}
		advanced := false
		var fallback *automata.Transition
		for _, t := range a.TransitionsFrom(s) {
			if af[t.To] {
				continue
			}
			if onPath[t.To] {
				tt := t
				fallback = &tt
				continue
			}
			run.Steps = append(run.Steps, t.Label)
			run.States = append(run.States, t.To)
			onPath[t.To] = true
			s = t.To
			extended, advanced = true, true
			break
		}
		if !advanced {
			if fallback != nil {
				// Close the lasso loop once.
				run.Steps = append(run.Steps, fallback.Label)
				run.States = append(run.States, fallback.To)
				return true
			}
			return extended
		}
	}
}

// extendBoundedAFViolation extends the run with a path of at most bound.Hi
// steps along which f is never satisfied inside the window.
func extendBoundedAFViolation(e satEngine, run *automata.Run, node *afNode) bool {
	b := *node.bound
	fSat := e.Sat(node.f)
	a := e.Automaton()
	// Recompute the layered ok(·, j) table to follow a failing path.
	layers := make([][]bool, b.Hi+2)
	layers[b.Hi+1] = make([]bool, a.NumStates())
	for j := b.Hi; j >= 0; j-- {
		layer := make([]bool, a.NumStates())
		for i := range layer {
			s := automata.StateID(i)
			if j >= b.Lo && fSat[i] {
				layer[i] = true
				continue
			}
			if j < b.Hi && !a.IsDeadlock(s) {
				all := true
				for _, t := range a.TransitionsFrom(s) {
					if !layers[j+1][t.To] {
						all = false
						break
					}
				}
				layer[i] = all
			}
		}
		layers[j] = layer
	}
	s := run.States[len(run.States)-1]
	if layers[0][s] {
		return false // not actually violating
	}
	extended := false
	for j := 0; j < b.Hi; j++ {
		if a.IsDeadlock(s) {
			return extended
		}
		moved := false
		for _, t := range a.TransitionsFrom(s) {
			if !layers[j+1][t.To] {
				run.Steps = append(run.Steps, t.Label)
				run.States = append(run.States, t.To)
				s = t.To
				extended, moved = true, true
				break
			}
		}
		if !moved {
			return extended
		}
	}
	return extended
}
