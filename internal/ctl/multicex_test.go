package ctl

import (
	"testing"

	"muml/internal/automata"
)

// fanWorld: s0 branches to three violating states at different depths.
func fanWorld() *automata.Automaton {
	a := automata.New("fan", automata.NewSignalSet("x", "y", "z"), automata.EmptySet)
	s0 := a.MustAddState("s0", "ok")
	bad1 := a.MustAddState("bad1")
	bad2 := a.MustAddState("bad2")
	mid := a.MustAddState("mid", "ok")
	bad3 := a.MustAddState("bad3")
	x := automata.Interact([]automata.Signal{"x"}, nil)
	y := automata.Interact([]automata.Signal{"y"}, nil)
	z := automata.Interact([]automata.Signal{"z"}, nil)
	a.MustAddTransition(s0, x, bad1)
	a.MustAddTransition(s0, y, bad2)
	a.MustAddTransition(s0, z, mid)
	a.MustAddTransition(mid, z, bad3)
	a.MustAddTransition(bad1, x, bad1)
	a.MustAddTransition(bad2, x, bad2)
	a.MustAddTransition(bad3, x, bad3)
	a.MarkInitial(s0)
	return a
}

func TestCheckManyDistinctCounterexamples(t *testing.T) {
	c := NewChecker(fanWorld())
	results := c.CheckMany(MustParse("A[] ok"), 10)
	if len(results) != 3 {
		t.Fatalf("got %d counterexamples, want 3", len(results))
	}
	seen := make(map[automata.StateID]bool)
	for _, r := range results {
		if r.Holds || r.Counterexample == nil {
			t.Fatalf("bad result %+v", r)
		}
		if !r.RunWitnessed {
			t.Fatal("propositional violation must be run-witnessed")
		}
		last := r.Counterexample.States[len(r.Counterexample.States)-1]
		if seen[last] {
			t.Fatalf("duplicate violating state %v", last)
		}
		seen[last] = true
		if err := r.Counterexample.IsRunOf(c.Automaton()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckManyRespectsMax(t *testing.T) {
	c := NewChecker(fanWorld())
	results := c.CheckMany(MustParse("A[] ok"), 2)
	if len(results) != 2 {
		t.Fatalf("got %d counterexamples, want 2", len(results))
	}
	// max < 1 behaves like 1.
	if got := len(c.CheckMany(MustParse("A[] ok"), 0)); got != 1 {
		t.Fatalf("max=0 returned %d results", got)
	}
}

func TestCheckManyHoldsShortCircuits(t *testing.T) {
	c := NewChecker(fanWorld())
	results := c.CheckMany(MustParse("A[] true"), 5)
	if len(results) != 1 || !results[0].Holds {
		t.Fatalf("results = %+v", results)
	}
}

func TestCheckManyFallsBackForUnsupportedShapes(t *testing.T) {
	c := NewChecker(fanWorld())
	// Top-level AF is not an AG shape; fall back to the single Check.
	results := c.CheckMany(MustParse("AF nonexistent"), 5)
	if len(results) != 1 || results[0].Holds {
		t.Fatalf("results = %+v", results)
	}
}

func TestCheckManyConjunction(t *testing.T) {
	c := NewChecker(fanWorld())
	results := c.CheckMany(And(MustParse("A[] true"), MustParse("A[] ok")), 10)
	if len(results) != 3 {
		t.Fatalf("conjunction dispatch broken: %d results", len(results))
	}
}

func TestCheckManyDeadlockShape(t *testing.T) {
	a := automata.New("d", automata.NewSignalSet("x"), automata.EmptySet)
	s0 := a.MustAddState("s0")
	d1 := a.MustAddState("d1")
	d2 := a.MustAddState("d2")
	x := automata.Interact([]automata.Signal{"x"}, nil)
	a.MustAddTransition(s0, x, d1)
	a.MustAddTransition(s0, automata.Interaction{}, d2)
	a.MarkInitial(s0)
	c := NewChecker(a)
	results := c.CheckMany(NoDeadlock(), 10)
	if len(results) != 2 {
		t.Fatalf("got %d deadlock counterexamples, want 2", len(results))
	}
	for _, r := range results {
		if !r.EndsInDeadlock {
			t.Fatal("deadlock counterexample not flagged")
		}
		if r.RunWitnessed {
			t.Fatal("deadlock violations are refusal-dependent, not run-witnessed")
		}
	}
}
