package ctl

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the goroutine fan-out behind Checker.SetWorkers. Three
// shapes of work parallelize, each with a determinism argument:
//
//   - Word sweeps (atom evaluation, preAll/preSome, bounded layers, EG
//     counting) split the word range into contiguous per-worker chunks.
//     Every 64-state word is written by exactly one worker, so there are
//     no shared writes and the produced bitset is bit-identical to the
//     sequential sweep.
//
//   - Frontier expansion (EF/EU levels) gives each worker a private
//     discovery bitset; the main goroutine merges them in fixed worker
//     order after the level completes. The merged result is the set union,
//     which is order-independent, so the out set after every level is
//     identical at any worker count.
//
//   - Counter expansion (AF/AU levels) decrements the shared
//     remaining-successor counters with atomic adds. The transition from
//     1 to 0 is observed by exactly one worker, so each entering state is
//     claimed exactly once; claims are accumulated per worker and merged
//     in fixed worker order. The entered set per level is again exactly
//     the sequential one.
//
// Witness and counterexample extraction runs sequentially over the
// finished satisfaction sets, so runs are identical at any worker count.
//
// Checker.canceled is not goroutine-safe; parallel phases poll it only
// from the main goroutine, between levels and layers.

const (
	// parSweepMinStates gates chunked sweeps: below this state count the
	// goroutine dispatch costs more than the sweep.
	parSweepMinStates = 4096
	// parFrontierMin gates parallel frontier/counter expansion per level.
	parFrontierMin = 1024
)

// effWorkers resolves the configured worker count (0 = GOMAXPROCS).
func (c *Checker) effWorkers() int {
	if c.workers > 0 {
		return c.workers
	}
	return runtime.GOMAXPROCS(0)
}

// sweepWords runs fn over the word range [0, nWords), split into one
// contiguous chunk per worker when the automaton is large enough. fn must
// write only words inside its chunk.
func (c *Checker) sweepWords(nWords int, fn func(lo, hi int)) {
	w := c.effWorkers()
	if w <= 1 || c.n < parSweepMinStates || nWords < w {
		fn(0, nWords)
		return
	}
	chunk := (nWords + w - 1) / w
	var wg sync.WaitGroup
	chunks := int64(0)
	for lo := 0; lo < nWords; lo += chunk {
		hi := min(lo+chunk, nWords)
		wg.Add(1)
		chunks++
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	c.mParallelChunks.Add(chunks)
}

// expandFrontier advances one EF/EU level: every predecessor of a frontier
// state that is not yet in out (and passes the filter) enters out and the
// next frontier. Returns the next frontier; the spent frontier's backing
// array is recycled as the following level's buffer.
func (c *Checker) expandFrontier(out, filter bitset, frontier []int32) []int32 {
	next := c.next[:0]
	if c.effWorkers() > 1 && len(frontier) >= parFrontierMin {
		next = c.expandFrontierPar(out, filter, frontier, next)
	} else {
		csr := c.csr
		for _, s := range frontier {
			if c.canceled() {
				break
			}
			for _, p := range csr.Pred(int(s)) {
				if !out.test(int(p)) && (filter == nil || filter.test(int(p))) {
					out.set(int(p))
					next = append(next, p)
				}
			}
		}
	}
	c.next = frontier[:0]
	return next
}

func (c *Checker) expandFrontierPar(out, filter bitset, frontier, next []int32) []int32 {
	w := c.effWorkers()
	chunk := (len(frontier) + w - 1) / w
	locals := make([]bitset, 0, w)
	var wg sync.WaitGroup
	csr := c.csr
	for lo := 0; lo < len(frontier); lo += chunk {
		hi := min(lo+chunk, len(frontier))
		local := c.getBits()
		locals = append(locals, local)
		wg.Add(1)
		go func(seg []int32, local bitset) {
			defer wg.Done()
			for _, s := range seg {
				for _, p := range csr.Pred(int(s)) {
					// out and filter are frozen during the level; the
					// out test only prunes, dedup happens at merge.
					if !out.test(int(p)) && (filter == nil || filter.test(int(p))) {
						local.set(int(p))
					}
				}
			}
		}(frontier[lo:hi], local)
	}
	wg.Wait()
	c.mParallelChunks.Add(int64(len(locals)))
	// Merge in fixed worker order: add = newly discovered bits only, so a
	// state found by several workers enters next exactly once.
	for _, local := range locals {
		for wi, word := range local {
			add := word &^ out[wi]
			if add == 0 {
				continue
			}
			out[wi] |= add
			next = appendSetWord(next, add, int32(wi<<6))
		}
		c.putBits(local)
	}
	return next
}

// expandCounters advances one AF/AU level: each edge into a frontier state
// decrements its source's remaining-successor counter; a source whose
// counter reaches zero (and passes the filter) enters out and the next
// frontier. Deadlock states cannot enter: their counter is never
// decremented.
func (c *Checker) expandCounters(out, filter bitset, cnt []int32, frontier []int32) []int32 {
	next := c.next[:0]
	if c.effWorkers() > 1 && len(frontier) >= parFrontierMin {
		next = c.expandCountersPar(out, filter, cnt, frontier, next)
	} else {
		csr := c.csr
		for _, s := range frontier {
			if c.canceled() {
				break
			}
			for _, p := range csr.Pred(int(s)) {
				if cnt[p]--; cnt[p] == 0 && !out.test(int(p)) &&
					(filter == nil || filter.test(int(p))) {
					out.set(int(p))
					next = append(next, p)
				}
			}
		}
	}
	c.next = frontier[:0]
	return next
}

func (c *Checker) expandCountersPar(out, filter bitset, cnt []int32, frontier, next []int32) []int32 {
	w := c.effWorkers()
	chunk := (len(frontier) + w - 1) / w
	// Sized up front: workers write disjoint elements of a fixed-length
	// slice, so no append may reallocate it under them.
	lists := make([][]int32, (len(frontier)+chunk-1)/chunk)
	var wg sync.WaitGroup
	csr := c.csr
	li := 0
	for lo := 0; lo < len(frontier); lo += chunk {
		hi := min(lo+chunk, len(frontier))
		wg.Add(1)
		go func(seg []int32, li int) {
			defer wg.Done()
			var claimed []int32
			for _, s := range seg {
				for _, p := range csr.Pred(int(s)) {
					// The 1→0 transition is seen by exactly one worker,
					// so each state is claimed exactly once; out and
					// filter are frozen during the level.
					if atomic.AddInt32(&cnt[p], -1) == 0 && !out.test(int(p)) &&
						(filter == nil || filter.test(int(p))) {
						claimed = append(claimed, p)
					}
				}
			}
			lists[li] = claimed
		}(frontier[lo:hi], li)
		li++
	}
	wg.Wait()
	c.mParallelChunks.Add(int64(len(lists)))
	for _, claimed := range lists {
		for _, p := range claimed {
			out.set(int(p))
			next = append(next, p)
		}
	}
	return next
}
