package ctl

import (
	"context"
	"fmt"
	"math/bits"

	"muml/internal/automata"
	"muml/internal/obs"
)

// Checker evaluates CCTL formulas over one automaton (typically a parallel
// composition). Satisfaction sets are word-parallel bitsets ([]uint64 with
// bulk AND/OR/ANDNOT), the transition relation is walked through the
// automaton's CSR snapshot (contiguous forward and reverse adjacency), and
// the unbounded fixpoints are frontier-driven: each state is processed a
// constant number of times instead of once per stabilization sweep. The
// checker caches satisfaction sets per subformula, so evaluating several
// formulas over the same automaton reuses work, and it can be Rebound when
// the automaton changes, keeping its allocations across verification
// rounds. Frontier and sweep evaluation optionally fan out across
// goroutines (SetWorkers); verdicts and witnesses are identical at any
// worker count. The frozen pre-bitset engine survives as Reference for
// differential testing and benchmarking.
type Checker struct {
	auto *automata.Automaton
	csr  *automata.CSR // fetched lazily from auto; dropped on Rebind
	n    int           // csr.NumStates(), the width of every bitset

	sat      map[Formula]bitset // satisfaction sets, per subformula
	satBools map[Formula][]bool // []bool materializations for Sat callers

	deadlocks    bitset // states with no outgoing transitions
	deadlocksSet bool

	// workers is the goroutine fan-out for frontier and sweep evaluation:
	// 0 means GOMAXPROCS, 1 forces sequential evaluation.
	workers int

	bitsPool []bitset // scratch bitsets (bounded layers, worker-locals)
	intPool  [][]int32
	queue    []int32 // reused frontier worklists
	next     []int32

	// ctx, when non-nil, bounds the current evaluation: fixpoint loops
	// poll it (rate-limited by polls) and unwind early once it is done.
	// ctxErr latches the first observed error so partial satisfaction
	// sets are never cached and entry points can report the abort.
	ctx    context.Context
	ctxErr error
	polls  int

	// wordsScanned tallies bitset words produced by sweep and bounded
	// operators over this checker's lifetime, independent of the shared
	// registry counter: the registry aggregates across a whole batch,
	// while this field is the per-instance figure the cost ledger reads
	// via WordsScanned. Updated only between parallel regions, on the
	// coordinating goroutine.
	wordsScanned int64

	// Optional instrumentation (see Instrument); nil counters are no-ops,
	// so the uninstrumented checker pays one branch per update site.
	mFixpointIters  *obs.Counter   // work units inside fixpoint loops
	mStatesTouched  *obs.Counter   // states visited per operator evaluation
	mPoolHits       *obs.Counter   // scratch buffers served from the pools
	mPoolMisses     *obs.Counter   // scratch buffers freshly allocated
	mSatCacheHits   *obs.Counter   // Sat calls answered from the formula cache
	mChecks         *obs.Counter   // operator evaluations (Sat cache misses)
	mWordsScanned   *obs.Counter   // bitset words produced by sweep operators
	mFrontierStates *obs.Counter   // states expanded by frontier fixpoints
	mParallelChunks *obs.Counter   // chunks dispatched to worker goroutines
	hCheck          *obs.Histogram // wall time per context-bound evaluation
}

// NewChecker creates a checker for the automaton.
func NewChecker(a *automata.Automaton) *Checker {
	return &Checker{
		auto:     a,
		sat:      make(map[Formula]bitset),
		satBools: make(map[Formula][]bool),
	}
}

// Rebind points the checker at an automaton that has changed (grown in
// place or replaced). Cached satisfaction sets are dropped — they are
// indexed by state and stale after any mutation — but the scratch buffers
// and worklists keep their capacity, so repeated verification rounds over
// a growing system avoid most reallocation.
func (c *Checker) Rebind(a *automata.Automaton) {
	c.auto = a
	clear(c.sat)
	clear(c.satBools)
	c.csr = nil
	c.deadlocksSet = false
}

// Automaton returns the automaton under analysis.
func (c *Checker) Automaton() *automata.Automaton { return c.auto }

// SetWorkers sets the goroutine fan-out for frontier and sweep evaluation:
// 0 (the default) uses GOMAXPROCS, 1 forces sequential evaluation.
// Verdicts, witnesses, and counterexamples are identical at any setting.
func (c *Checker) SetWorkers(n int) { c.workers = n }

// ensure binds the CSR snapshot (and the state count every bitset is sized
// for). Fetched once per Rebind: the snapshot is only valid until the next
// structural mutation, which is exactly the cache contract of sat.
func (c *Checker) ensure() {
	if c.csr == nil {
		c.csr = c.auto.CSR()
		c.n = c.csr.NumStates()
	}
}

// ctxPollInterval rate-limits context polling inside fixpoint loops: one
// Err() call per this many work units keeps cancellation latency bounded
// without a syscall-adjacent check on every state visit.
const ctxPollInterval = 1024

// bind attaches a context to the checker for one evaluation. The first
// poll happens immediately, so an already-expired deadline aborts before
// any fixpoint work.
func (c *Checker) bind(ctx context.Context) {
	if ctx == context.Background() || ctx == context.TODO() {
		ctx = nil
	}
	c.ctx = ctx
	c.ctxErr = nil
	c.polls = 1
}

func (c *Checker) unbind() { c.ctx = nil }

// canceled reports whether the bound context is done. Sequential fixpoint
// loops call it once per work unit; the actual ctx.Err() poll runs every
// ctxPollInterval calls. With no bound context it is a single branch.
// Not goroutine-safe: parallel phases poll only from the main goroutine,
// between frontier levels or layer sweeps.
func (c *Checker) canceled() bool {
	if c.ctx == nil {
		return false
	}
	if c.ctxErr != nil {
		return true
	}
	if c.polls--; c.polls > 0 {
		return false
	}
	c.polls = ctxPollInterval
	if err := c.ctx.Err(); err != nil {
		c.ctxErr = err
		return true
	}
	return false
}

// HoldsCtx is Holds under a context: a deadline or cancellation aborts
// long fixpoints promptly and surfaces the context's error. Aborted
// evaluations leave no partial results in the satisfaction cache.
func (c *Checker) HoldsCtx(ctx context.Context, f Formula) (bool, error) {
	c.bind(ctx)
	defer c.unbind()
	defer c.hCheck.Span()()
	holds := c.Holds(f)
	if c.ctxErr != nil {
		return false, c.ctxErr
	}
	return holds, nil
}

// CheckCtx is Check under a context (see HoldsCtx).
func (c *Checker) CheckCtx(ctx context.Context, f Formula) (Result, error) {
	c.bind(ctx)
	defer c.unbind()
	defer c.hCheck.Span()()
	res := c.Check(f)
	if c.ctxErr != nil {
		return Result{}, c.ctxErr
	}
	return res, nil
}

// CheckManyCtx is CheckMany under a context (see HoldsCtx).
func (c *Checker) CheckManyCtx(ctx context.Context, f Formula, max int) ([]Result, error) {
	c.bind(ctx)
	defer c.unbind()
	defer c.hCheck.Span()()
	res := c.CheckMany(f, max)
	if c.ctxErr != nil {
		return nil, c.ctxErr
	}
	return res, nil
}

// Instrument registers the checker's effort counters in the registry:
// ctl.fixpoint_iters (states expanded or layer cells computed inside
// fixpoint computations), ctl.states_touched (states visited per operator
// evaluation), ctl.pool_hits / ctl.pool_misses (scratch-buffer pool
// behaviour), ctl.sat_cache_hits, ctl.operator_evals, plus the bitset
// engine's ctl.words_scanned (bitset words produced by sweep operators),
// ctl.frontier_states (states expanded by frontier fixpoints), and
// ctl.parallel_chunks (chunks dispatched to worker goroutines), and the
// ctl.check latency histogram (wall time of each context-bound
// evaluation, exposed as the muml_ctl_check_ns bucket family). A nil
// registry detaches the instrumentation.
func (c *Checker) Instrument(r *obs.Registry) {
	c.mFixpointIters = r.Counter("ctl.fixpoint_iters")
	c.mStatesTouched = r.Counter("ctl.states_touched")
	c.mPoolHits = r.Counter("ctl.pool_hits")
	c.mPoolMisses = r.Counter("ctl.pool_misses")
	c.mSatCacheHits = r.Counter("ctl.sat_cache_hits")
	c.mChecks = r.Counter("ctl.operator_evals")
	c.mWordsScanned = r.Counter("ctl.words_scanned")
	c.mFrontierStates = r.Counter("ctl.frontier_states")
	c.mParallelChunks = r.Counter("ctl.parallel_chunks")
	c.hCheck = r.Histogram("ctl.check")
}

// addWords records words produced by a sweep or bounded-layer operator in
// both the checker-local tally and the (batch-wide) registry counter.
func (c *Checker) addWords(n int64) {
	c.wordsScanned += n
	c.mWordsScanned.Add(n)
}

// WordsScanned returns the total bitset words this checker has produced
// across all evaluations — the deterministic model-checking effort figure
// of the cost ledger (identical across worker counts and memo states, see
// DESIGN.md §15).
func (c *Checker) WordsScanned() int64 { return c.wordsScanned }

// getBits borrows a zeroed bitset sized for the current automaton.
func (c *Checker) getBits() bitset {
	need := wordsFor(c.n)
	if k := len(c.bitsPool); k > 0 {
		buf := c.bitsPool[k-1]
		c.bitsPool = c.bitsPool[:k-1]
		if cap(buf) >= need {
			c.mPoolHits.Add(1)
			buf = buf[:need]
			buf.zero()
			return buf
		}
	}
	c.mPoolMisses.Add(1)
	return make(bitset, need)
}

func (c *Checker) putBits(b bitset) {
	c.bitsPool = append(c.bitsPool, b)
}

// getInts borrows an n-sized zero-initialized counter slice.
func (c *Checker) getInts(n int) []int32 {
	if k := len(c.intPool); k > 0 {
		buf := c.intPool[k-1]
		c.intPool = c.intPool[:k-1]
		if cap(buf) >= n {
			c.mPoolHits.Add(1)
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	c.mPoolMisses.Add(1)
	return make([]int32, n)
}

func (c *Checker) putInts(buf []int32) {
	c.intPool = append(c.intPool, buf)
}

// deadlockSet returns the bitset of deadlock states, built once per
// Rebind from the CSR out-degrees. The set is owned by the checker.
func (c *Checker) deadlockSet() bitset {
	if !c.deadlocksSet {
		need := wordsFor(c.n)
		if cap(c.deadlocks) >= need {
			c.deadlocks = c.deadlocks[:need]
			c.deadlocks.zero()
		} else {
			c.deadlocks = make(bitset, need)
		}
		for s := 0; s < c.n; s++ {
			if c.csr.OutDegree(s) == 0 {
				c.deadlocks.set(s)
			}
		}
		c.deadlocksSet = true
	}
	return c.deadlocks
}

// Holds reports whether the formula holds in every initial state
// (M ⊨ φ).
func (c *Checker) Holds(f Formula) bool {
	sat := c.satBits(f)
	for _, q := range c.auto.Initial() {
		if !sat.test(int(q)) {
			return false
		}
	}
	return true
}

// FailingInitial returns an initial state violating the formula, if any.
func (c *Checker) FailingInitial(f Formula) (automata.StateID, bool) {
	sat := c.satBits(f)
	for _, q := range c.auto.Initial() {
		if !sat.test(int(q)) {
			return q, true
		}
	}
	return automata.NoState, false
}

// Sat returns the satisfaction set of the formula as a boolean slice
// indexed by state ID, materialized from the bitset evaluation. The
// returned slice is shared with the cache and must not be mutated.
func (c *Checker) Sat(f Formula) []bool {
	if cached, ok := c.satBools[f]; ok {
		c.mSatCacheHits.Add(1)
		return cached
	}
	bs := c.satBits(f)
	out := make([]bool, c.n)
	for i := range out {
		out[i] = bs.test(i)
	}
	if c.ctxErr == nil {
		c.satBools[f] = out
	}
	return out
}

// satBits evaluates the formula's satisfaction set as a bitset, caching
// per subformula. The returned set is shared with the cache and must not
// be mutated.
func (c *Checker) satBits(f Formula) bitset {
	if cached, ok := c.sat[f]; ok {
		c.mSatCacheHits.Add(1)
		return cached
	}
	c.ensure()
	n := c.n
	if c.canceled() {
		// Unwind without caching: the zero set is wrong in general, but
		// every entry point checks ctxErr before trusting any result.
		return newBitset(n)
	}
	c.mChecks.Add(1)
	c.mStatesTouched.Add(int64(n))
	var sat bitset
	switch node := f.(type) {
	case trueNode:
		sat = newBitset(n)
		sat.fill(n)
	case falseNode:
		sat = newBitset(n)
	case deadlockNode:
		sat = newBitset(n)
		sat.copyFrom(c.deadlockSet())
	case *atomNode:
		sat = c.evalAtom(node.p)
	case *notNode:
		inner := c.satBits(node.f)
		sat = newBitset(n)
		sat.complementOf(inner, n)
	case *andNode:
		sat = newBitset(n)
		sat.copyFrom(c.satBits(node.l))
		sat.and(c.satBits(node.r))
	case *orNode:
		sat = newBitset(n)
		sat.copyFrom(c.satBits(node.l))
		sat.or(c.satBits(node.r))
	case *impNode:
		sat = newBitset(n)
		sat.complementOf(c.satBits(node.l), n)
		sat.or(c.satBits(node.r))
	case *axNode:
		sat = c.preAll(c.satBits(node.f))
	case *exNode:
		sat = c.preSome(c.satBits(node.f))
	case *afNode:
		if node.bound != nil {
			sat = c.boundedAF(c.satBits(node.f), *node.bound)
		} else {
			sat = c.unboundedAF(c.satBits(node.f))
		}
	case *efNode:
		if node.bound != nil {
			sat = c.boundedEF(c.satBits(node.f), *node.bound)
		} else {
			sat = c.unboundedEF(c.satBits(node.f))
		}
	case *agNode:
		if node.bound != nil {
			sat = c.boundedAG(c.satBits(node.f), *node.bound)
		} else {
			sat = c.unboundedAG(c.satBits(node.f))
		}
	case *egNode:
		if node.bound != nil {
			sat = c.boundedEG(c.satBits(node.f), *node.bound)
		} else {
			sat = c.unboundedEG(c.satBits(node.f))
		}
	case *auNode:
		sat = c.unboundedAU(c.satBits(node.l), c.satBits(node.r))
	case *euNode:
		sat = c.unboundedEU(c.satBits(node.l), c.satBits(node.r))
	default:
		panic(fmt.Sprintf("ctl: unknown formula node %T", f))
	}
	if c.ctxErr == nil {
		c.sat[f] = sat
	}
	return sat
}

// evalAtom builds the satisfaction word for an atomic proposition, one
// 64-state word at a time (chunk-parallel on large automata).
func (c *Checker) evalAtom(p automata.Proposition) bitset {
	n := c.n
	out := newBitset(n)
	c.sweepWords(len(out), func(lo, hi int) {
		for w := lo; w < hi; w++ {
			base := w << 6
			lim := min(64, n-base)
			var word uint64
			for k := 0; k < lim; k++ {
				if c.auto.HasLabel(automata.StateID(base+k), p) {
					word |= 1 << uint(k)
				}
			}
			out[w] = word
		}
	})
	c.addWords(int64(len(out)))
	return out
}

// preAll returns {s | s has no successor, or all successors satisfy X}:
// the AX predecessor operator with vacuous truth at deadlocks.
func (c *Checker) preAll(x bitset) bitset {
	n := c.n
	out := newBitset(n)
	csr := c.csr
	c.sweepWords(len(out), func(lo, hi int) {
		for w := lo; w < hi; w++ {
			base := w << 6
			lim := min(64, n-base)
			var word uint64
		states:
			for k := 0; k < lim; k++ {
				for _, t := range csr.Succ(base + k) {
					if !x.test(int(t)) {
						continue states
					}
				}
				word |= 1 << uint(k)
			}
			out[w] = word
		}
	})
	c.addWords(int64(len(out)))
	return out
}

// preSome returns {s | some successor satisfies X}: the EX predecessor
// operator (false at deadlocks).
func (c *Checker) preSome(x bitset) bitset {
	n := c.n
	out := newBitset(n)
	csr := c.csr
	c.sweepWords(len(out), func(lo, hi int) {
		for w := lo; w < hi; w++ {
			base := w << 6
			lim := min(64, n-base)
			var word uint64
			for k := 0; k < lim; k++ {
				for _, t := range csr.Succ(base + k) {
					if x.test(int(t)) {
						word |= 1 << uint(k)
						break
					}
				}
			}
			out[w] = word
		}
	})
	c.addWords(int64(len(out)))
	return out
}

// unboundedEF computes μX. f ∨ EX X by backward reachability: a
// level-synchronous frontier expansion over the reverse CSR. Each state
// enters the frontier at most once, so the fixpoint is O(n + m).
func (c *Checker) unboundedEF(f bitset) bitset {
	out := newBitset(c.n)
	out.copyFrom(f)
	c.frontierFixpoint(out, nil)
	return out
}

// unboundedEU computes μX. g ∨ (f ∧ EX X): backward reachability from g
// restricted to f-states.
func (c *Checker) unboundedEU(f, g bitset) bitset {
	out := newBitset(c.n)
	out.copyFrom(g)
	c.frontierFixpoint(out, f)
	return out
}

// frontierFixpoint grows out to the backward-reachable closure through
// filter-states (nil filter = unrestricted), expanding level by level.
func (c *Checker) frontierFixpoint(out, filter bitset) {
	frontier := out.appendSet(c.queue[:0])
	total := int64(0)
	for len(frontier) > 0 && !c.canceled() {
		total += int64(len(frontier))
		c.mFrontierStates.Add(int64(len(frontier)))
		frontier = c.expandFrontier(out, filter, frontier)
	}
	c.mFixpointIters.Add(total)
	c.queue = frontier
}

// unboundedAF computes μX. f ∨ (¬deadlock ∧ AX X): every maximal path
// reaches f. A state enters the set when its remaining-successor counter
// hits zero — i.e. when every outgoing transition leads into the set.
func (c *Checker) unboundedAF(f bitset) bitset {
	return c.counterFixpoint(f, nil)
}

// unboundedAU computes μX. g ∨ (f ∧ ¬deadlock ∧ AX X).
func (c *Checker) unboundedAU(f, g bitset) bitset {
	return c.counterFixpoint(g, f)
}

// counterFixpoint is the shared AF/AU least fixpoint: seed states are in;
// a non-seed state enters when all its successors have entered (counter
// reaches zero) and it passes the filter (nil = unrestricted). Deadlock
// states never enter via the counter: their counter starts at zero and is
// never decremented, and entry is triggered only by a decrement.
func (c *Checker) counterFixpoint(seed, filter bitset) bitset {
	n := c.n
	out := newBitset(n)
	out.copyFrom(seed)
	cnt := c.getInts(n)
	csr := c.csr
	for s := 0; s < n; s++ {
		cnt[s] = int32(csr.OutDegree(s))
	}
	frontier := out.appendSet(c.queue[:0])
	total := int64(0)
	for len(frontier) > 0 && !c.canceled() {
		total += int64(len(frontier))
		c.mFrontierStates.Add(int64(len(frontier)))
		frontier = c.expandCounters(out, filter, cnt, frontier)
	}
	c.mFixpointIters.Add(total)
	c.queue = frontier
	c.putInts(cnt)
	return out
}

// unboundedAG computes νX. f ∧ AX X. Under maximal-path semantics a
// deadlock state satisfying f satisfies AG f, and AG f ≡ ¬EF ¬f: a state
// violates AG f iff some ¬f state is reachable from it. Evaluating through
// the EF frontier makes AG O(n + m) instead of one sweep per
// stabilization round.
func (c *Checker) unboundedAG(f bitset) bitset {
	n := c.n
	nf := c.getBits()
	nf.complementOf(f, n)
	out := c.unboundedEF(nf)
	c.putBits(nf)
	out.complementOf(out, n)
	return out
}

// unboundedEG computes νX. f ∧ (deadlock ∨ EX X): some maximal path stays
// in f (a path ending in a deadlock is maximal). Greatest fixpoint by
// deletion: start from the f-states, count each candidate's successors
// inside the candidate set, and cascade removals of non-deadlock states
// whose count reaches zero. Each state is removed at most once, so the
// fixpoint is O(n + m).
func (c *Checker) unboundedEG(f bitset) bitset {
	n := c.n
	out := newBitset(n)
	out.copyFrom(f)
	csr := c.csr
	dead := c.deadlockSet()
	cnt := c.getInts(n)
	c.sweepWords(len(out), func(lo, hi int) {
		for w := lo; w < hi; w++ {
			base := int32(w << 6)
			for word := out[w]; word != 0; word &= word - 1 {
				s := int(base) + bits.TrailingZeros64(word)
				k := int32(0)
				for _, t := range csr.Succ(s) {
					if out.test(int(t)) {
						k++
					}
				}
				cnt[s] = k
			}
		}
	})
	c.addWords(int64(len(out)))
	removal := c.queue[:0]
	for wi, word := range out {
		base := int32(wi << 6)
		for ; word != 0; word &= word - 1 {
			s := base + int32(bits.TrailingZeros64(word))
			if cnt[s] == 0 && !dead.test(int(s)) {
				out.clearBit(int(s))
				removal = append(removal, s)
			}
		}
	}
	for head := 0; head < len(removal) && !c.canceled(); head++ {
		s := removal[head]
		for _, p := range csr.Pred(int(s)) {
			if !out.test(int(p)) {
				continue
			}
			if cnt[p]--; cnt[p] == 0 && !dead.test(int(p)) {
				out.clearBit(int(p))
				removal = append(removal, p)
			}
		}
	}
	c.mFixpointIters.Add(int64(len(removal)))
	c.queue = removal
	c.putInts(cnt)
	return out
}

// boundedAF computes AF[lo,hi] f by backward induction over remaining
// depth j = hi..0: ok(s,j) ⇔ (j ≥ lo ∧ f(s)) ∨ (j < hi ∧ ¬deadlock(s) ∧
// ∀succ ok(succ, j+1)). The result is ok(·, 0). Each layer is one
// word-chunked sweep: f and the deadlock set contribute whole words, and
// only the undecided bits scan their successor rows.
func (c *Checker) boundedAF(f bitset, b Bound) bitset {
	n := c.n
	next := c.getBits() // ok(·, j+1); starts as the unread j = hi layer input
	cur := c.getBits()
	dead := c.deadlockSet()
	csr := c.csr
	mask := tailMask(n)
	last := len(cur) - 1
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		jGeLo, jLtHi := j >= b.Lo, j < b.Hi
		c.sweepWords(len(cur), func(lo, hi int) {
			for w := lo; w < hi; w++ {
				var word uint64
				if jGeLo {
					word = f[w]
				}
				if jLtHi {
					cand := ^word &^ dead[w]
					if w == last {
						cand &= mask
					}
					base := w << 6
				states:
					for ; cand != 0; cand &= cand - 1 {
						k := bits.TrailingZeros64(cand)
						for _, t := range csr.Succ(base + k) {
							if !next.test(int(t)) {
								continue states
							}
						}
						word |= 1 << uint(k)
					}
				}
				cur[w] = word
			}
		})
		cur, next = next, cur // cur becomes scratch; next holds layer j
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	c.addWords(int64(b.Hi+1) * int64(len(cur)))
	out := newBitset(n)
	out.copyFrom(next)
	c.putBits(next)
	c.putBits(cur)
	return out
}

// boundedEF computes EF[lo,hi] f analogously: ex(s,j) ⇔ (j ≥ lo ∧ f(s)) ∨
// (j < hi ∧ ∃succ ex(succ, j+1)).
func (c *Checker) boundedEF(f bitset, b Bound) bitset {
	n := c.n
	next := c.getBits()
	cur := c.getBits()
	csr := c.csr
	mask := tailMask(n)
	last := len(cur) - 1
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		jGeLo, jLtHi := j >= b.Lo, j < b.Hi
		c.sweepWords(len(cur), func(lo, hi int) {
			for w := lo; w < hi; w++ {
				var word uint64
				if jGeLo {
					word = f[w]
				}
				if jLtHi {
					cand := ^word
					if w == last {
						cand &= mask
					}
					base := w << 6
					for ; cand != 0; cand &= cand - 1 {
						k := bits.TrailingZeros64(cand)
						for _, t := range csr.Succ(base + k) {
							if next.test(int(t)) {
								word |= 1 << uint(k)
								break
							}
						}
					}
				}
				cur[w] = word
			}
		})
		cur, next = next, cur
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	c.addWords(int64(b.Hi+1) * int64(len(cur)))
	out := newBitset(n)
	out.copyFrom(next)
	c.putBits(next)
	c.putBits(cur)
	return out
}

// boundedAG computes AG[lo,hi] f: ag(s,j) ⇔ (j < lo ∨ f(s)) ∧ (j ≥ hi ∨
// ∀succ ag(succ, j+1)). Paths ending before the window trivially satisfy
// the remainder.
func (c *Checker) boundedAG(f bitset, b Bound) bitset {
	n := c.n
	next := c.getBits()
	next.fill(n)
	cur := c.getBits()
	csr := c.csr
	mask := tailMask(n)
	last := len(cur) - 1
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		jLtLo, jLtHi := j < b.Lo, j < b.Hi
		c.sweepWords(len(cur), func(lo, hi int) {
			for w := lo; w < hi; w++ {
				var word uint64
				if jLtLo {
					word = ^uint64(0)
					if w == last {
						word = mask
					}
				} else {
					word = f[w]
				}
				if jLtHi {
					base := w << 6
				states:
					for cand := word; cand != 0; cand &= cand - 1 {
						k := bits.TrailingZeros64(cand)
						for _, t := range csr.Succ(base + k) {
							if !next.test(int(t)) {
								word &^= 1 << uint(k)
								continue states
							}
						}
					}
				}
				cur[w] = word
			}
		})
		cur, next = next, cur
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	c.addWords(int64(b.Hi+1) * int64(len(cur)))
	out := newBitset(n)
	out.copyFrom(next)
	c.putBits(next)
	c.putBits(cur)
	return out
}

// boundedEG computes EG[lo,hi] f: eg(s,j) ⇔ (j < lo ∨ f(s)) ∧ (j ≥ hi ∨
// deadlock(s) ∨ ∃succ eg(succ, j+1)).
func (c *Checker) boundedEG(f bitset, b Bound) bitset {
	n := c.n
	next := c.getBits()
	next.fill(n)
	cur := c.getBits()
	dead := c.deadlockSet()
	csr := c.csr
	mask := tailMask(n)
	last := len(cur) - 1
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		jLtLo, jLtHi := j < b.Lo, j < b.Hi
		c.sweepWords(len(cur), func(lo, hi int) {
			for w := lo; w < hi; w++ {
				var word uint64
				if jLtLo {
					word = ^uint64(0)
					if w == last {
						word = mask
					}
				} else {
					word = f[w]
				}
				if jLtHi {
					base := w << 6
					for cand := word &^ dead[w]; cand != 0; cand &= cand - 1 {
						k := bits.TrailingZeros64(cand)
						some := false
						for _, t := range csr.Succ(base + k) {
							if next.test(int(t)) {
								some = true
								break
							}
						}
						if !some {
							word &^= 1 << uint(k)
						}
					}
				}
				cur[w] = word
			}
		})
		cur, next = next, cur
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	c.addWords(int64(b.Hi+1) * int64(len(cur)))
	out := newBitset(n)
	out.copyFrom(next)
	c.putBits(next)
	c.putBits(cur)
	return out
}

func trues(n int) []bool {
	return fillTrue(make([]bool, n))
}

func fillTrue(x []bool) []bool {
	for i := range x {
		x[i] = true
	}
	return x
}

func cloneBools(x []bool) []bool {
	out := make([]bool, len(x))
	copy(out, x)
	return out
}
