package ctl

import (
	"context"
	"fmt"

	"muml/internal/automata"
	"muml/internal/obs"
)

// Checker evaluates CCTL formulas over one automaton (typically a parallel
// composition). It caches satisfaction sets per subformula, so evaluating
// several formulas over the same automaton reuses work. A checker can be
// Rebound when the automaton changes, keeping its allocations (predecessor
// lists, fixpoint buffers, worklists) across verification rounds.
type Checker struct {
	auto      *automata.Automaton
	sat       map[Formula][]bool
	pred      [][]automata.Transition // reverse adjacency, built lazily
	predBuilt bool

	boolPool [][]bool           // scratch layers for the bounded operators
	intPool  [][]int            // remaining-successor counters
	queue    []automata.StateID // reused BFS worklist

	// ctx, when non-nil, bounds the current evaluation: fixpoint loops
	// poll it (rate-limited by polls) and unwind early once it is done.
	// ctxErr latches the first observed error so partial satisfaction
	// sets are never cached and entry points can report the abort.
	ctx    context.Context
	ctxErr error
	polls  int

	// Optional instrumentation (see Instrument); nil counters are no-ops,
	// so the uninstrumented checker pays one branch per update site.
	mFixpointIters *obs.Counter // work units inside fixpoint loops
	mStatesTouched *obs.Counter // states visited per operator evaluation
	mPoolHits      *obs.Counter // scratch buffers served from the pools
	mPoolMisses    *obs.Counter // scratch buffers freshly allocated
	mSatCacheHits  *obs.Counter // Sat calls answered from the formula cache
	mChecks        *obs.Counter // operator evaluations (Sat cache misses)
}

// NewChecker creates a checker for the automaton.
func NewChecker(a *automata.Automaton) *Checker {
	return &Checker{auto: a, sat: make(map[Formula][]bool)}
}

// Rebind points the checker at an automaton that has changed (grown in
// place or replaced). Cached satisfaction sets are dropped — they are
// indexed by state and stale after any mutation — but the predecessor
// lists, scratch buffers, and worklists keep their capacity, so repeated
// verification rounds over a growing system avoid most reallocation.
func (c *Checker) Rebind(a *automata.Automaton) {
	c.auto = a
	clear(c.sat)
	c.predBuilt = false
}

// Automaton returns the automaton under analysis.
func (c *Checker) Automaton() *automata.Automaton { return c.auto }

// ctxPollInterval rate-limits context polling inside fixpoint loops: one
// Err() call per this many work units keeps cancellation latency bounded
// without a syscall-adjacent check on every state visit.
const ctxPollInterval = 1024

// bind attaches a context to the checker for one evaluation. The first
// poll happens immediately, so an already-expired deadline aborts before
// any fixpoint work.
func (c *Checker) bind(ctx context.Context) {
	if ctx == context.Background() || ctx == context.TODO() {
		ctx = nil
	}
	c.ctx = ctx
	c.ctxErr = nil
	c.polls = 1
}

func (c *Checker) unbind() { c.ctx = nil }

// canceled reports whether the bound context is done. Fixpoint loops call
// it once per work unit; the actual ctx.Err() poll runs every
// ctxPollInterval calls. With no bound context it is a single branch.
func (c *Checker) canceled() bool {
	if c.ctx == nil {
		return false
	}
	if c.ctxErr != nil {
		return true
	}
	if c.polls--; c.polls > 0 {
		return false
	}
	c.polls = ctxPollInterval
	if err := c.ctx.Err(); err != nil {
		c.ctxErr = err
		return true
	}
	return false
}

// HoldsCtx is Holds under a context: a deadline or cancellation aborts
// long fixpoints promptly and surfaces the context's error. Aborted
// evaluations leave no partial results in the satisfaction cache.
func (c *Checker) HoldsCtx(ctx context.Context, f Formula) (bool, error) {
	c.bind(ctx)
	defer c.unbind()
	holds := c.Holds(f)
	if c.ctxErr != nil {
		return false, c.ctxErr
	}
	return holds, nil
}

// CheckCtx is Check under a context (see HoldsCtx).
func (c *Checker) CheckCtx(ctx context.Context, f Formula) (Result, error) {
	c.bind(ctx)
	defer c.unbind()
	res := c.Check(f)
	if c.ctxErr != nil {
		return Result{}, c.ctxErr
	}
	return res, nil
}

// CheckManyCtx is CheckMany under a context (see HoldsCtx).
func (c *Checker) CheckManyCtx(ctx context.Context, f Formula, max int) ([]Result, error) {
	c.bind(ctx)
	defer c.unbind()
	res := c.CheckMany(f, max)
	if c.ctxErr != nil {
		return nil, c.ctxErr
	}
	return res, nil
}

// Instrument registers the checker's effort counters in the registry:
// ctl.fixpoint_iters (worklist pops and layer sweeps inside fixpoint
// computations), ctl.states_touched (states visited per operator
// evaluation), ctl.pool_hits / ctl.pool_misses (scratch-buffer pool
// behaviour), ctl.sat_cache_hits, and ctl.operator_evals. A nil registry
// detaches the instrumentation.
func (c *Checker) Instrument(r *obs.Registry) {
	c.mFixpointIters = r.Counter("ctl.fixpoint_iters")
	c.mStatesTouched = r.Counter("ctl.states_touched")
	c.mPoolHits = r.Counter("ctl.pool_hits")
	c.mPoolMisses = r.Counter("ctl.pool_misses")
	c.mSatCacheHits = r.Counter("ctl.sat_cache_hits")
	c.mChecks = r.Counter("ctl.operator_evals")
}

// getBool borrows an n-sized false-initialized scratch slice.
func (c *Checker) getBool(n int) []bool {
	if k := len(c.boolPool); k > 0 {
		buf := c.boolPool[k-1]
		c.boolPool = c.boolPool[:k-1]
		if cap(buf) >= n {
			c.mPoolHits.Add(1)
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	c.mPoolMisses.Add(1)
	return make([]bool, n)
}

func (c *Checker) putBool(buf []bool) {
	c.boolPool = append(c.boolPool, buf)
}

// getInt borrows an n-sized zero-initialized counter slice.
func (c *Checker) getInt(n int) []int {
	if k := len(c.intPool); k > 0 {
		buf := c.intPool[k-1]
		c.intPool = c.intPool[:k-1]
		if cap(buf) >= n {
			c.mPoolHits.Add(1)
			buf = buf[:n]
			clear(buf)
			return buf
		}
	}
	c.mPoolMisses.Add(1)
	return make([]int, n)
}

func (c *Checker) putInt(buf []int) {
	c.intPool = append(c.intPool, buf)
}

// Holds reports whether the formula holds in every initial state
// (M ⊨ φ).
func (c *Checker) Holds(f Formula) bool {
	sat := c.Sat(f)
	for _, q := range c.auto.Initial() {
		if !sat[q] {
			return false
		}
	}
	return true
}

// FailingInitial returns an initial state violating the formula, if any.
func (c *Checker) FailingInitial(f Formula) (automata.StateID, bool) {
	sat := c.Sat(f)
	for _, q := range c.auto.Initial() {
		if !sat[q] {
			return q, true
		}
	}
	return automata.NoState, false
}

// Sat returns the satisfaction set of the formula as a boolean slice
// indexed by state ID. The returned slice is shared with the cache and
// must not be mutated.
func (c *Checker) Sat(f Formula) []bool {
	if cached, ok := c.sat[f]; ok {
		c.mSatCacheHits.Add(1)
		return cached
	}
	var sat []bool
	n := c.auto.NumStates()
	if c.canceled() {
		// Unwind without caching: the zero set is wrong in general, but
		// every entry point checks ctxErr before trusting any result.
		return make([]bool, n)
	}
	c.mChecks.Add(1)
	c.mStatesTouched.Add(int64(n))
	switch node := f.(type) {
	case trueNode:
		sat = trues(n)
	case falseNode:
		sat = make([]bool, n)
	case deadlockNode:
		sat = make([]bool, n)
		for i := 0; i < n; i++ {
			sat[i] = c.auto.IsDeadlock(automata.StateID(i))
		}
	case *atomNode:
		sat = make([]bool, n)
		for i := 0; i < n; i++ {
			sat[i] = c.auto.HasLabel(automata.StateID(i), node.p)
		}
	case *notNode:
		inner := c.Sat(node.f)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = !inner[i]
		}
	case *andNode:
		l, r := c.Sat(node.l), c.Sat(node.r)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = l[i] && r[i]
		}
	case *orNode:
		l, r := c.Sat(node.l), c.Sat(node.r)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = l[i] || r[i]
		}
	case *impNode:
		l, r := c.Sat(node.l), c.Sat(node.r)
		sat = make([]bool, n)
		for i := range sat {
			sat[i] = !l[i] || r[i]
		}
	case *axNode:
		sat = c.preAll(c.Sat(node.f))
	case *exNode:
		sat = c.preSome(c.Sat(node.f))
	case *afNode:
		if node.bound != nil {
			sat = c.boundedAF(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedAF(c.Sat(node.f))
		}
	case *efNode:
		if node.bound != nil {
			sat = c.boundedEF(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedEF(c.Sat(node.f))
		}
	case *agNode:
		if node.bound != nil {
			sat = c.boundedAG(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedAG(c.Sat(node.f))
		}
	case *egNode:
		if node.bound != nil {
			sat = c.boundedEG(c.Sat(node.f), *node.bound)
		} else {
			sat = c.unboundedEG(c.Sat(node.f))
		}
	case *auNode:
		sat = c.unboundedAU(c.Sat(node.l), c.Sat(node.r))
	case *euNode:
		sat = c.unboundedEU(c.Sat(node.l), c.Sat(node.r))
	default:
		panic(fmt.Sprintf("ctl: unknown formula node %T", f))
	}
	if c.ctxErr == nil {
		c.sat[f] = sat
	}
	return sat
}

// preAll returns {s | s has no successor, or all successors satisfy X}:
// the AX predecessor operator with vacuous truth at deadlocks.
func (c *Checker) preAll(x []bool) []bool {
	n := c.auto.NumStates()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = true
		for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
			if !x[t.To] {
				out[i] = false
				break
			}
		}
	}
	return out
}

// preSome returns {s | some successor satisfies X}: the EX predecessor
// operator (false at deadlocks).
func (c *Checker) preSome(x []bool) []bool {
	n := c.auto.NumStates()
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
			if x[t.To] {
				out[i] = true
				break
			}
		}
	}
	return out
}

// unboundedEF computes μX. f ∨ EX X by backward reachability.
func (c *Checker) unboundedEF(f []bool) []bool {
	out := clone(f)
	c.buildPred()
	queue := c.queue[:0]
	for i, ok := range out {
		if ok {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue) && !c.canceled(); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			if !out[t.From] {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.mFixpointIters.Add(int64(len(queue)))
	c.queue = queue
	return out
}

// unboundedAF computes μX. f ∨ (¬deadlock ∧ AX X): every maximal path
// reaches f. Worklist: a state enters the set when f holds, or when it has
// successors and all of them are in the set.
func (c *Checker) unboundedAF(f []bool) []bool {
	n := c.auto.NumStates()
	out := clone(f)
	remaining := c.getInt(n) // successors not yet in the set
	c.buildPred()
	queue := c.queue[:0]
	for i := 0; i < n; i++ {
		remaining[i] = len(c.auto.TransitionsFrom(automata.StateID(i)))
		if out[i] {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue) && !c.canceled(); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			remaining[t.From]--
			if !out[t.From] && remaining[t.From] == 0 &&
				len(c.auto.TransitionsFrom(t.From)) > 0 {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.mFixpointIters.Add(int64(len(queue)))
	c.queue = queue
	c.putInt(remaining)
	return out
}

// unboundedAG computes νX. f ∧ AX X. Under maximal-path semantics a
// deadlock state satisfying f satisfies AG f.
func (c *Checker) unboundedAG(f []bool) []bool {
	out := clone(f)
	sweeps := int64(0)
	for changed := true; changed && !c.canceled(); {
		changed = false
		sweeps++
		for i := range out {
			if !out[i] {
				continue
			}
			for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
				if !out[t.To] {
					out[i] = false
					changed = true
					break
				}
			}
		}
	}
	c.mFixpointIters.Add(sweeps * int64(len(out)))
	return out
}

// unboundedEG computes νX. f ∧ (deadlock ∨ EX X): some maximal path stays
// in f (a path ending in a deadlock is maximal).
func (c *Checker) unboundedEG(f []bool) []bool {
	out := clone(f)
	sweeps := int64(0)
	for changed := true; changed && !c.canceled(); {
		changed = false
		sweeps++
		for i := range out {
			if !out[i] {
				continue
			}
			s := automata.StateID(i)
			if c.auto.IsDeadlock(s) {
				continue
			}
			keep := false
			for _, t := range c.auto.TransitionsFrom(s) {
				if out[t.To] {
					keep = true
					break
				}
			}
			if !keep {
				out[i] = false
				changed = true
			}
		}
	}
	c.mFixpointIters.Add(sweeps * int64(len(out)))
	return out
}

// unboundedEU computes μX. g ∨ (f ∧ EX X).
func (c *Checker) unboundedEU(f, g []bool) []bool {
	out := clone(g)
	c.buildPred()
	queue := c.queue[:0]
	for i, ok := range out {
		if ok {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue) && !c.canceled(); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			if !out[t.From] && f[t.From] {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.mFixpointIters.Add(int64(len(queue)))
	c.queue = queue
	return out
}

// unboundedAU computes μX. g ∨ (f ∧ ¬deadlock ∧ AX X).
func (c *Checker) unboundedAU(f, g []bool) []bool {
	n := c.auto.NumStates()
	out := clone(g)
	remaining := c.getInt(n)
	c.buildPred()
	queue := c.queue[:0]
	for i := 0; i < n; i++ {
		remaining[i] = len(c.auto.TransitionsFrom(automata.StateID(i)))
		if out[i] {
			queue = append(queue, automata.StateID(i))
		}
	}
	for head := 0; head < len(queue) && !c.canceled(); head++ {
		s := queue[head]
		for _, t := range c.pred[s] {
			remaining[t.From]--
			if !out[t.From] && remaining[t.From] == 0 && f[t.From] &&
				len(c.auto.TransitionsFrom(t.From)) > 0 {
				out[t.From] = true
				queue = append(queue, t.From)
			}
		}
	}
	c.mFixpointIters.Add(int64(len(queue)))
	c.queue = queue
	c.putInt(remaining)
	return out
}

// boundedAF computes AF[lo,hi] f by backward induction over remaining
// depth j = hi..0: ok(s,j) ⇔ (j ≥ lo ∧ f(s)) ∨ (j < hi ∧ ¬deadlock(s) ∧
// ∀succ ok(succ, j+1)). The result is ok(·, 0).
func (c *Checker) boundedAF(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := c.getBool(n) // ok(·, j+1); starts as j = hi layer input
	cur := c.getBool(n)
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			if j >= b.Lo && f[i] {
				cur[i] = true
				continue
			}
			cur[i] = false
			if j < b.Hi && !c.auto.IsDeadlock(s) {
				all := true
				for _, t := range c.auto.TransitionsFrom(s) {
					if !next[t.To] {
						all = false
						break
					}
				}
				cur[i] = all
			}
		}
		cur, next = next, cur // cur becomes scratch; next holds layer j
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	out := clone(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// boundedEF computes EF[lo,hi] f analogously: ex(s,j) ⇔ (j ≥ lo ∧ f(s)) ∨
// (j < hi ∧ ∃succ ex(succ, j+1)).
func (c *Checker) boundedEF(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := c.getBool(n)
	cur := c.getBool(n)
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			cur[i] = j >= b.Lo && f[i]
			if !cur[i] && j < b.Hi {
				for _, t := range c.auto.TransitionsFrom(s) {
					if next[t.To] {
						cur[i] = true
						break
					}
				}
			}
		}
		cur, next = next, cur
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	out := clone(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// boundedAG computes AG[lo,hi] f: ag(s,j) ⇔ (j < lo ∨ f(s)) ∧ (j ≥ hi ∨
// ∀succ ag(succ, j+1)). Paths ending before the window trivially satisfy
// the remainder.
func (c *Checker) boundedAG(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := fillTrue(c.getBool(n))
	cur := c.getBool(n)
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			ok := j < b.Lo || f[i]
			if ok && j < b.Hi {
				for _, t := range c.auto.TransitionsFrom(s) {
					if !next[t.To] {
						ok = false
						break
					}
				}
			}
			cur[i] = ok
		}
		cur, next = next, cur
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	out := clone(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// boundedEG computes EG[lo,hi] f: eg(s,j) ⇔ (j < lo ∨ f(s)) ∧ (j ≥ hi ∨
// deadlock(s) ∨ ∃succ eg(succ, j+1)).
func (c *Checker) boundedEG(f []bool, b Bound) []bool {
	n := c.auto.NumStates()
	next := fillTrue(c.getBool(n))
	cur := c.getBool(n)
	for j := b.Hi; j >= 0 && !c.canceled(); j-- {
		for i := 0; i < n; i++ {
			s := automata.StateID(i)
			ok := j < b.Lo || f[i]
			if ok && j < b.Hi && !c.auto.IsDeadlock(s) {
				some := false
				for _, t := range c.auto.TransitionsFrom(s) {
					if next[t.To] {
						some = true
						break
					}
				}
				ok = some
			}
			cur[i] = ok
		}
		cur, next = next, cur
	}
	c.mFixpointIters.Add(int64(b.Hi+1) * int64(n))
	out := clone(next)
	c.putBool(next)
	c.putBool(cur)
	return out
}

// buildPred (re)builds the reverse adjacency. After a Rebind the per-state
// rows keep their backing arrays, so rebuilding over a grown automaton
// mostly appends into existing capacity.
func (c *Checker) buildPred() {
	if c.predBuilt {
		return
	}
	n := c.auto.NumStates()
	if cap(c.pred) < n {
		grown := make([][]automata.Transition, n)
		copy(grown, c.pred)
		c.pred = grown
	} else {
		c.pred = c.pred[:n]
	}
	for i := range c.pred {
		c.pred[i] = c.pred[i][:0]
	}
	for i := 0; i < n; i++ {
		for _, t := range c.auto.TransitionsFrom(automata.StateID(i)) {
			c.pred[t.To] = append(c.pred[t.To], t)
		}
	}
	c.predBuilt = true
}

func trues(n int) []bool {
	return fillTrue(make([]bool, n))
}

func fillTrue(x []bool) []bool {
	for i := range x {
		x[i] = true
	}
	return x
}

func clone(x []bool) []bool {
	out := make([]bool, len(x))
	copy(out, x)
	return out
}
