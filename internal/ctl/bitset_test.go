package ctl

import (
	"math/rand"
	"testing"
)

func TestBitsetTailMasking(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 130} {
		b := newBitset(n)
		b.fill(n)
		if got := b.count(); got != n {
			t.Fatalf("fill(%d).count() = %d", n, got)
		}
		c := newBitset(n)
		c.complementOf(b, n)
		if got := c.count(); got != 0 {
			t.Fatalf("complement of full over %d states has %d bits", n, got)
		}
		c.complementOf(c, n) // in-place complement back to full
		if !c.equal(b) {
			t.Fatalf("in-place double complement over %d states not identity", n)
		}
	}
}

func TestBitsetOpsMatchBools(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		x, y := newBitset(n), newBitset(n)
		bx, by := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				x.set(i)
				bx[i] = true
			}
			if rng.Intn(2) == 0 {
				y.set(i)
				by[i] = true
			}
		}
		check := func(op string, got bitset, want func(a, b bool) bool) {
			t.Helper()
			for i := 0; i < n; i++ {
				if got.test(i) != want(bx[i], by[i]) {
					t.Fatalf("n=%d %s mismatch at bit %d", n, op, i)
				}
			}
		}
		z := newBitset(n)
		z.copyFrom(x)
		z.and(y)
		check("and", z, func(a, b bool) bool { return a && b })
		z.copyFrom(x)
		z.or(y)
		check("or", z, func(a, b bool) bool { return a || b })
		z.copyFrom(x)
		z.andNot(y)
		check("andNot", z, func(a, b bool) bool { return a && !b })

		want := 0
		for _, v := range bx {
			if v {
				want++
			}
		}
		if got := x.count(); got != want {
			t.Fatalf("count = %d, want %d", got, want)
		}

		var idx []int32
		idx = x.appendSet(idx)
		if len(idx) != want {
			t.Fatalf("appendSet returned %d indices, want %d", len(idx), want)
		}
		prev := int32(-1)
		for _, i := range idx {
			if i <= prev {
				t.Fatalf("appendSet not ascending: %d after %d", i, prev)
			}
			prev = i
			if !bx[i] {
				t.Fatalf("appendSet returned unset bit %d", i)
			}
		}

		x.clearBit(int(idx[0]))
		if x.test(int(idx[0])) {
			t.Fatal("clearBit did not clear")
		}
	}
}

// FuzzBitsetEquivalence cross-checks the bitset Checker against the frozen
// Reference engine on fuzzer-chosen formulas over small random automata,
// at a sequential and a parallel worker setting.
func FuzzBitsetEquivalence(f *testing.F) {
	for _, s := range []string{
		"AG p", "AF q", "E[p U q]", "A[p U q]", "EG p", "AG (p -> AF[1,3] q)",
		"E<> deadlock", "AX (p or deadlock)", "EG[0,4] not p", "A[] not q",
	} {
		f.Add(s, int64(1), uint8(5))
	}
	f.Fuzz(func(t *testing.T, input string, seed int64, states uint8) {
		if len(input) > 256 {
			return
		}
		formula, err := Parse(input)
		if err != nil {
			return
		}
		if maxBound(formula) > 32 {
			return // keep layered bounded-operator tables small
		}
		rng := rand.New(rand.NewSource(seed))
		a := randomLabeledAutomaton(rng, 2+int(states%8))
		ref := NewReference(a)
		want := ref.Sat(formula)
		for _, workers := range []int{1, 4} {
			checker := NewChecker(a)
			checker.SetWorkers(workers)
			got := checker.Sat(formula)
			for s := range want {
				if want[s] != got[s] {
					t.Fatalf("workers=%d: Sat(%s) differs at state %d: ref=%v bitset=%v\n%s",
						workers, formula, s, want[s], got[s], a.Dot())
				}
			}
			if rh, ch := ref.Holds(formula), checker.Holds(formula); rh != ch {
				t.Fatalf("workers=%d: Holds(%s) differs: ref=%v bitset=%v", workers, formula, rh, ch)
			}
		}
	})
}
