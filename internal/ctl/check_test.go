package ctl

import (
	"math/rand"
	"testing"

	"muml/internal/automata"
)

// lineWorld builds a linear automaton s0 -> s1 -> ... -> s(n-1), where the
// last state is a deadlock, with each state labeled "s<i>".
func lineWorld(n int) *automata.Automaton {
	a := automata.New("line", automata.NewSignalSet("t"), automata.EmptySet)
	step := automata.Interact([]automata.Signal{"t"}, nil)
	prev := a.MustAddState("s0", "s0")
	a.MarkInitial(prev)
	for i := 1; i < n; i++ {
		name := "s" + string(rune('0'+i))
		next := a.MustAddState(name, automata.Proposition(name))
		a.MustAddTransition(prev, step, next)
		prev = next
	}
	return a
}

// loopWorld builds s0 -> s1 -> s0 (a cycle) with labels.
func loopWorld() *automata.Automaton {
	a := automata.New("loop", automata.NewSignalSet("t"), automata.EmptySet)
	step := automata.Interact([]automata.Signal{"t"}, nil)
	s0 := a.MustAddState("s0", "even")
	s1 := a.MustAddState("s1", "odd")
	a.MustAddTransition(s0, step, s1)
	a.MustAddTransition(s1, step, s0)
	a.MarkInitial(s0)
	return a
}

// branchWorld: s0 branches to good (loops, labeled "goal") and to bad
// (loops, unlabeled).
func branchWorld() *automata.Automaton {
	a := automata.New("branch", automata.NewSignalSet("g", "b"), automata.EmptySet)
	g := automata.Interact([]automata.Signal{"g"}, nil)
	b := automata.Interact([]automata.Signal{"b"}, nil)
	s0 := a.MustAddState("s0")
	good := a.MustAddState("good", "goal")
	bad := a.MustAddState("bad")
	a.MustAddTransition(s0, g, good)
	a.MustAddTransition(s0, b, bad)
	a.MustAddTransition(good, g, good)
	a.MustAddTransition(bad, b, bad)
	a.MarkInitial(s0)
	return a
}

func TestCheckBooleanAndAtoms(t *testing.T) {
	a := lineWorld(3)
	c := NewChecker(a)
	tests := []struct {
		f    string
		want bool
	}{
		{"true", true},
		{"false", false},
		{"s0", true},
		{"s1", false},
		{"not s1", true},
		{"s0 or s1", true},
		{"s0 and s1", false},
		{"s1 -> false", true}, // vacuous at s0
		{"s0 -> s0", true},
	}
	for _, tt := range tests {
		if got := c.Holds(MustParse(tt.f)); got != tt.want {
			t.Errorf("Holds(%q) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestCheckTemporalOnLine(t *testing.T) {
	a := lineWorld(4) // s0 -> s1 -> s2 -> s3(deadlock)
	c := NewChecker(a)
	tests := []struct {
		f    string
		want bool
	}{
		{"EX s1", true},
		{"EX s2", false},
		{"AX s1", true},
		{"AF s3", true},
		{"AF[3,3] s3", true},
		{"AF[1,2] s3", false},
		{"AF[0,3] s2", true},
		{"EF s3", true},
		{"EF[2,2] s2", true},
		{"EF[2,2] s3", false},
		{"AG (s0 or s1 or s2 or s3)", true},
		{"AG s0", false},
		{"AG[0,0] s0", true},
		{"AG[1,1] s1", true},
		{"AG[1,1] s0", false},
		{"EG (not s3)", false}, // the only maximal path reaches s3
		{"E<> deadlock", true},
		{"A[(not s3) U s3]", true},
		{"E[(not s2) U s2]", true},
		{"A[s0 U s1]", true},
		{"A[s1 U s2]", false},
	}
	for _, tt := range tests {
		if got := c.Holds(MustParse(tt.f)); got != tt.want {
			t.Errorf("Holds(%q) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestCheckTemporalOnLoop(t *testing.T) {
	c := NewChecker(loopWorld())
	tests := []struct {
		f    string
		want bool
	}{
		{"AG (even or odd)", true},
		{"AG (not deadlock)", true},
		{"AF odd", true},
		{"EG (even or odd)", true},
		{"EG even", false},
		{"AF[1,1] odd", true},
		{"AF[2,2] odd", false}, // at step 2 the path is back at even
		{"AG[0,10] (even or odd)", true},
		{"A[even U odd]", true},
		{"E[even U odd]", true},
	}
	for _, tt := range tests {
		if got := c.Holds(MustParse(tt.f)); got != tt.want {
			t.Errorf("Holds(%q) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestCheckBranching(t *testing.T) {
	c := NewChecker(branchWorld())
	tests := []struct {
		f    string
		want bool
	}{
		{"EF goal", true},
		{"AF goal", false}, // the bad branch never reaches goal
		{"EG (not goal)", true},
		{"AG (not deadlock)", true},
		{"EX goal", true},
		{"AX goal", false},
		{"E[(not goal) U goal]", true},
		{"A[(not goal) U goal]", false},
	}
	for _, tt := range tests {
		if got := c.Holds(MustParse(tt.f)); got != tt.want {
			t.Errorf("Holds(%q) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestDeadlockSemantics(t *testing.T) {
	a := lineWorld(2) // s0 -> s1(deadlock)
	c := NewChecker(a)
	tests := []struct {
		f    string
		want bool
	}{
		{"E<> deadlock", true},
		{"AG not deadlock", false},
		{"AF deadlock", true},
		// AX is vacuously true at deadlocks: AG(AX true) holds, and so
		// does AG(AX false) restricted to s1... i.e. s1 satisfies AX false.
		{"AG (s1 -> AX false)", true},
		// EX is false at deadlocks.
		{"AG (s1 -> not (EX true))", true},
		// AF fails on paths that deadlock before reaching the target.
		{"AF nonexistent", false},
		// EG over a finite maximal path that stays in the labels.
		{"EG (s0 or s1)", true},
	}
	for _, tt := range tests {
		if got := c.Holds(MustParse(tt.f)); got != tt.want {
			t.Errorf("Holds(%q) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestCounterexampleForInvariant(t *testing.T) {
	a := lineWorld(4)
	res := Check(a, MustParse("AG not s2"))
	if res.Holds {
		t.Fatal("AG not s2 should fail")
	}
	if res.Counterexample == nil {
		t.Fatal("expected counterexample")
	}
	// Shortest path to s2 has 2 steps.
	if got := res.Counterexample.Len(); got != 2 {
		t.Fatalf("counterexample length = %d, want 2", got)
	}
	last := res.Counterexample.States[len(res.Counterexample.States)-1]
	if a.StateName(last) != "s2" {
		t.Fatalf("counterexample ends in %q", a.StateName(last))
	}
	if err := res.Counterexample.IsRunOf(a); err != nil {
		t.Fatalf("counterexample is not a run: %v", err)
	}
}

func TestCounterexampleForDeadlockFreedom(t *testing.T) {
	a := lineWorld(3)
	res := Check(a, NoDeadlock())
	if res.Holds {
		t.Fatal("line world has a deadlock")
	}
	if res.Counterexample == nil || !res.EndsInDeadlock {
		t.Fatalf("expected deadlock counterexample, got %+v", res)
	}
	last := res.Counterexample.States[len(res.Counterexample.States)-1]
	if !a.IsDeadlock(last) {
		t.Fatal("counterexample does not end in a deadlock state")
	}
}

func TestCounterexampleForBoundedResponse(t *testing.T) {
	// s0(trigger) -> s1 -> s2 -> s3(response): response needs 3 steps, so
	// AG(trigger -> AF[1,2] response) fails and the witness extends past
	// the trigger state.
	a := automata.New("resp", automata.NewSignalSet("t"), automata.EmptySet)
	step := automata.Interact([]automata.Signal{"t"}, nil)
	s0 := a.MustAddState("s0", "trigger")
	s1 := a.MustAddState("s1")
	s2 := a.MustAddState("s2")
	s3 := a.MustAddState("s3", "response")
	a.MustAddTransition(s0, step, s1)
	a.MustAddTransition(s1, step, s2)
	a.MustAddTransition(s2, step, s3)
	a.MustAddTransition(s3, step, s3)
	a.MarkInitial(s0)

	res := Check(a, MustParse("AG (trigger -> AF[1,2] response)"))
	if res.Holds {
		t.Fatal("bounded response should fail")
	}
	if res.Counterexample == nil {
		t.Fatal("expected counterexample")
	}
	// Witness: s0 plus an extension of up to 2 steps avoiding response.
	if res.Counterexample.Len() == 0 {
		t.Fatal("expected extended witness beyond the trigger state")
	}
	if err := res.Counterexample.IsRunOf(a); err != nil {
		t.Fatalf("counterexample invalid: %v", err)
	}

	// With a large enough window the property holds.
	if got := Check(a, MustParse("AG (trigger -> AF[1,3] response)")); !got.Holds {
		t.Fatal("AF[1,3] should hold")
	}
}

func TestCounterexampleForConjunction(t *testing.T) {
	a := lineWorld(3)
	res := Check(a, And(MustParse("AG s0 or AG not s1"), NoDeadlock()))
	if res.Holds || res.Counterexample == nil {
		t.Fatalf("expected counterexample, got %+v", res)
	}
}

func TestCounterexampleForTopLevelAF(t *testing.T) {
	c := NewChecker(branchWorld())
	res := c.Check(MustParse("AF goal"))
	if res.Holds {
		t.Fatal("AF goal should fail")
	}
	if res.Counterexample == nil {
		t.Fatal("expected counterexample path avoiding goal")
	}
	for _, s := range res.Counterexample.States {
		if c.Automaton().HasLabel(s, "goal") {
			t.Fatal("counterexample for AF passes through goal")
		}
	}
}

func TestCheckSatisfiedReturnsNoRun(t *testing.T) {
	res := Check(loopWorld(), MustParse("AG (even or odd)"))
	if !res.Holds || res.Counterexample != nil {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestNNFEquivalence checks on random automata that NNF preserves the
// satisfaction set — this exercises all duality rules including the
// deadlock-aware ones.
func TestNNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	formulas := []Formula{
		Not(AG(Atom("p"))),
		Not(AF(Atom("p"))),
		Not(EG(Atom("p"))),
		Not(EF(Atom("p"))),
		Not(AX(Atom("p"))),
		Not(EX(Atom("p"))),
		Not(AU(Atom("p"), Atom("q"))),
		Not(EU(Atom("p"), Atom("q"))),
		Not(AFWithin(1, 3, Atom("p"))),
		Not(EFWithin(0, 2, Atom("q"))),
		Not(AGWithin(1, 2, Atom("p"))),
		Not(EGWithin(0, 3, Atom("q"))),
		Not(Implies(Atom("p"), Atom("q"))),
	}
	for i := 0; i < 60; i++ {
		a := randomLabeledAutomaton(rng, 5)
		c := NewChecker(a)
		for _, f := range formulas {
			orig := c.Sat(f)
			nnf := c.Sat(NNF(f))
			for s := range orig {
				if orig[s] != nnf[s] {
					t.Fatalf("iteration %d: NNF changed semantics of %s at state %s (orig=%v nnf=%v)\n%s",
						i, f, a.StateName(automata.StateID(s)), orig[s], nnf[s], a.Dot())
				}
			}
		}
	}
}

func randomLabeledAutomaton(rng *rand.Rand, states int) *automata.Automaton {
	a := automata.New("rand", automata.NewSignalSet("x", "y"), automata.EmptySet)
	props := []automata.Proposition{"p", "q"}
	for i := 0; i < states; i++ {
		var labels []automata.Proposition
		for _, p := range props {
			if rng.Intn(2) == 0 {
				labels = append(labels, p)
			}
		}
		a.MustAddState("s"+string(rune('0'+i)), labels...)
	}
	a.MarkInitial(automata.StateID(rng.Intn(states)))
	labels := automata.Universe(automata.UniverseSingleton).Enumerate(a.Inputs(), a.Outputs())
	for s := 0; s < states; s++ {
		for _, x := range labels {
			if rng.Intn(3) == 0 {
				_ = a.AddTransition(automata.StateID(s), x, automata.StateID(rng.Intn(states)))
			}
		}
	}
	return a
}
