package ctl

import (
	"testing"

	"muml/internal/automata"
)

func TestFormulaStrings(t *testing.T) {
	tests := []struct {
		f    Formula
		want string
	}{
		{True, "true"},
		{False, "false"},
		{Deadlock, "deadlock"},
		{Atom("p"), "p"},
		{Not(Atom("p")), "not p"},
		{And(Atom("p"), Atom("q")), "p and q"},
		{Or(Atom("p"), Atom("q")), "p or q"},
		{Implies(Atom("p"), Atom("q")), "p -> q"},
		{AG(Atom("p")), "AG p"},
		{AFWithin(1, 5, Atom("p")), "AF[1,5] p"},
		{AU(Atom("p"), Atom("q")), "A[p U q]"},
		{EU(Atom("p"), Atom("q")), "E[p U q]"},
		{AX(EX(Atom("p"))), "AX (EX p)"},
		{NoDeadlock(), "AG (not deadlock)"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestAndOrEmpty(t *testing.T) {
	if And() != True {
		t.Fatal("And() should be True")
	}
	if Or() != False {
		t.Fatal("Or() should be False")
	}
}

func TestAtoms(t *testing.T) {
	f := AG(Or(Not(Atom("b")), AFWithin(1, 2, And(Atom("a"), Atom("c")))))
	got := Atoms(f)
	want := []automata.Proposition{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Atoms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Atoms = %v, want %v", got, want)
		}
	}
}

func TestBoundValid(t *testing.T) {
	if !(Bound{0, 0}).Valid() || !(Bound{1, 5}).Valid() {
		t.Fatal("valid bounds rejected")
	}
	if (Bound{-1, 2}).Valid() || (Bound{3, 2}).Valid() {
		t.Fatal("invalid bounds accepted")
	}
}

func TestMaxDelayShape(t *testing.T) {
	f := MaxDelay("p1", "p2", 4)
	want := "AG ((not p1) or (AF[1,4] p2))"
	if got := f.String(); got != want {
		t.Fatalf("MaxDelay = %q, want %q", got, want)
	}
	if !IsACTL(f) {
		t.Fatal("MaxDelay must be ACTL")
	}
}

func TestIsACTL(t *testing.T) {
	tests := []struct {
		f    Formula
		want bool
	}{
		{AG(Atom("p")), true},
		{AG(Not(Atom("p"))), true},
		{Not(EF(Atom("p"))), true}, // ¬EF p ≡ AG ¬p
		{EF(Atom("p")), false},
		{Not(AG(Atom("p"))), false}, // ≡ EF ¬p
		{AU(Atom("p"), Atom("q")), true},
		{EU(Atom("p"), Atom("q")), false},
		{AFWithin(1, 3, Atom("p")), true},
		{NoDeadlock(), true},
	}
	for _, tt := range tests {
		if got := IsACTL(tt.f); got != tt.want {
			t.Errorf("IsACTL(%s) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestNNF(t *testing.T) {
	tests := []struct {
		give Formula
		want string
	}{
		{Not(And(Atom("p"), Atom("q"))), "(not p) or (not q)"},
		{Not(Or(Atom("p"), Atom("q"))), "(not p) and (not q)"},
		{Not(AG(Atom("p"))), "EF (not p)"},
		{Not(EF(Atom("p"))), "AG (not p)"},
		{Not(AFWithin(1, 4, Atom("p"))), "EG[1,4] (not p)"},
		{Not(AX(Atom("p"))), "EX (not p)"},
		{Not(Not(Atom("p"))), "p"},
		{Implies(Atom("p"), Atom("q")), "(not p) or q"},
		{Not(True), "false"},
		{Not(False), "true"},
		{Not(Deadlock), "not deadlock"},
	}
	for _, tt := range tests {
		if got := NNF(tt.give).String(); got != tt.want {
			t.Errorf("NNF(%s) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestWeakenForChaos(t *testing.T) {
	f := AG(Not(And(Atom("a"), Atom("b"))))
	w := WeakenForChaos(f)
	want := "AG (((not a) or χ) or ((not b) or χ))"
	if got := w.String(); got != want {
		t.Fatalf("WeakenForChaos = %q, want %q", got, want)
	}
	// δ must not be weakened.
	d := WeakenForChaos(NoDeadlock())
	if got, want := d.String(), "AG (not deadlock)"; got != want {
		t.Fatalf("WeakenForChaos(¬δ) = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"A[] not (rearRole.convoy and frontRole.noConvoy)",
		"AG (p -> AF[1,5] q)",
		"E<> deadlock",
		"not deadlock",
		"A[p U q] or E[p U q]",
		"p && q || !r",
		"AG[0,3] safe",
		"EX p and AX q",
		"noConvoy::default",
		"true -> false",
	}
	for _, in := range inputs {
		f, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		// Round trip: re-parsing the rendering yields the same rendering.
		again, err := Parse(f.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", f.String(), err)
		}
		if again.String() != f.String() {
			t.Fatalf("round trip changed %q -> %q", f.String(), again.String())
		}
	}
}

func TestParseStructure(t *testing.T) {
	f := MustParse("A[] not (rearRole.convoy and frontRole.noConvoy)")
	ag, ok := f.(*agNode)
	if !ok {
		t.Fatalf("expected AG at top, got %T", f)
	}
	if _, ok := ag.f.(*notNode); !ok {
		t.Fatalf("expected Not below AG, got %T", ag.f)
	}
}

func TestParsePrecedence(t *testing.T) {
	// and binds tighter than or, or tighter than ->.
	f := MustParse("a or b and c -> d")
	if got, want := f.String(), "(a or (b and c)) -> d"; got != want {
		t.Fatalf("precedence: %q, want %q", got, want)
	}
}

func TestParseAtomNamedAorE(t *testing.T) {
	// "A" and "E" not followed by "[" parse as plain atoms.
	f := MustParse("A and E")
	if got, want := f.String(), "A and E"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(p",
		"p )",
		"AG[1] p",
		"AG[2,1] p",
		"A[p U",
		"p and",
		"@",
		"p # q",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}
