package ctl

import "muml/internal/automata"

// CheckMany evaluates the formula and, when it fails, returns up to max
// *distinct* counterexamples — shortest paths to distinct violating
// states. The paper's conclusion (§7) names exactly this as an
// optimization opportunity: "the interplay between the formal verification
// and the test could be improved when a number of counterexamples instead
// [of] only a single one could be derived from the model checker."
//
// Supported shapes are those of Check's counterexample generation; for
// other failing shapes at most the single Check counterexample is
// returned. Results share the semantics of Check (RunWitnessed etc.).
func (c *Checker) CheckMany(f Formula, max int) []Result {
	return checkManyOn(c, f, max)
}

func checkManyOn(e satEngine, f Formula, max int) []Result {
	if max < 1 {
		max = 1
	}
	if holdsOn(e, f) {
		return []Result{{Holds: true}}
	}
	inner, ok := topLevelAG(f, func(g Formula) bool { return holdsOn(e, g) })
	if !ok {
		return []Result{checkOn(e, f)}
	}

	sat := e.Sat(inner)
	a := e.Automaton()
	targetsFound := 0
	var results []Result

	// BFS once, collecting shortest paths to up to max distinct violating
	// states.
	n := a.NumStates()
	parent := make([]automata.Transition, n)
	visited := make([]bool, n)
	var queue []automata.StateID
	for _, q := range a.Initial() {
		if !visited[q] {
			visited[q] = true
			parent[q] = automata.Transition{From: automata.NoState}
			queue = append(queue, q)
		}
	}
	for head := 0; head < len(queue) && targetsFound < max && !e.canceled(); head++ {
		s := queue[head]
		if !sat[s] {
			run := reconstructPath(s, parent)
			witnessed := isPropositional(inner)
			extendViolation(e, run, inner)
			last := run.States[len(run.States)-1]
			results = append(results, Result{
				Holds:          false,
				Counterexample: run,
				RunWitnessed:   witnessed,
				EndsInDeadlock: a.IsDeadlock(last),
			})
			targetsFound++
			continue // don't explore past a violation
		}
		for _, t := range a.TransitionsFrom(s) {
			if !visited[t.To] {
				visited[t.To] = true
				parent[t.To] = t
				queue = append(queue, t.To)
			}
		}
	}
	if len(results) == 0 {
		return []Result{checkOn(e, f)}
	}
	return results
}

// topLevelAG unwraps the shapes CheckMany handles into the inner AG body:
// AG f, ¬EF f, and failing conjuncts of conjunctions.
func topLevelAG(f Formula, holds func(Formula) bool) (Formula, bool) {
	switch node := f.(type) {
	case *agNode:
		if node.bound == nil {
			return node.f, true
		}
	case *notNode:
		if ef, ok := node.f.(*efNode); ok && ef.bound == nil {
			return Not(ef.f), true
		}
	case *andNode:
		if !holds(node.l) {
			return topLevelAG(node.l, holds)
		}
		return topLevelAG(node.r, holds)
	}
	return nil, false
}

func reconstructPath(target automata.StateID, parent []automata.Transition) *automata.Run {
	var rev []automata.Transition
	for s := target; parent[s].From != automata.NoState; s = parent[s].From {
		rev = append(rev, parent[s])
	}
	run := &automata.Run{}
	start := target
	if len(rev) > 0 {
		start = rev[len(rev)-1].From
	}
	run.States = append(run.States, start)
	for i := len(rev) - 1; i >= 0; i-- {
		run.Steps = append(run.Steps, rev[i].Label)
		run.States = append(run.States, rev[i].To)
	}
	return run
}
