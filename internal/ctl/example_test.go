package ctl_test

import (
	"fmt"

	"muml/internal/automata"
	"muml/internal/ctl"
)

// ExampleParse shows the textual CCTL syntax, including the UPPAAL-style
// A[] alias used by the paper's pattern constraints and bounded operators.
func ExampleParse() {
	for _, input := range []string{
		"A[] not (rearRole.convoy and frontRole.noConvoy)",
		"AG (trigger -> AF[1,4] response)",
		"not deadlock",
	} {
		f, err := ctl.Parse(input)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("%s  (ACTL: %v)\n", f, ctl.IsACTL(f))
	}
	// Output:
	// AG (not (rearRole.convoy and frontRole.noConvoy))  (ACTL: true)
	// AG (trigger -> (AF[1,4] response))  (ACTL: true)
	// not deadlock  (ACTL: true)
}

// ExampleCheck model checks a bounded response property over a tiny
// system and prints the violation witness.
func ExampleCheck() {
	a := automata.New("sys", automata.NewSignalSet("go"), automata.EmptySet)
	s0 := a.MustAddState("request", "pending")
	s1 := a.MustAddState("working")
	s2 := a.MustAddState("served", "served")
	step := automata.Interact([]automata.Signal{"go"}, nil)
	a.MustAddTransition(s0, step, s1)
	a.MustAddTransition(s1, step, s2)
	a.MustAddTransition(s2, step, s2)
	a.MarkInitial(s0)

	res := ctl.Check(a, ctl.MustParse("AG (pending -> AF[1,1] served)"))
	fmt.Printf("holds: %v\n", res.Holds)
	res2 := ctl.Check(a, ctl.MustParse("AG (pending -> AF[1,2] served)"))
	fmt.Printf("with a 2-step window: %v\n", res2.Holds)
	// Output:
	// holds: false
	// with a 2-step window: true
}
