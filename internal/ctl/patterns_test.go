package ctl

import (
	"testing"

	"muml/internal/automata"
)

// patternWorld: request -> working -> served -> request (cycle), with an
// early-served shortcut gated by "granted".
func patternWorld() *automata.Automaton {
	a := automata.New("p", automata.NewSignalSet("t"), automata.EmptySet)
	step := automata.Interact([]automata.Signal{"t"}, nil)
	req := a.MustAddState("request", "request")
	grant := a.MustAddState("granted", "granted")
	served := a.MustAddState("served", "served")
	a.MustAddTransition(req, step, grant)
	a.MustAddTransition(grant, step, served)
	a.MustAddTransition(served, step, req)
	a.MarkInitial(req)
	return a
}

func TestPatternHelpers(t *testing.T) {
	c := NewChecker(patternWorld())
	tests := []struct {
		name string
		f    Formula
		want bool
	}{
		{"absence-holds", Absence(Atom("failure")), true},
		{"absence-fails", Absence(Atom("served")), false},
		{"universality-fails", Universality(Atom("request")), false},
		{"mutex-holds", MutualExclusion("request", "served"), true},
		{"response-holds", Response(Atom("request"), Atom("served"), 1, 2), true},
		{"response-too-tight", Response(Atom("request"), Atom("served"), 1, 1), false},
		{"minimal-delay-holds", MinimalDelay(Atom("request"), Atom("served"), 2), true},
		{"minimal-delay-too-strict", MinimalDelay(Atom("request"), Atom("served"), 3), false},
		{"minimal-delay-trivial", MinimalDelay(Atom("request"), Atom("served"), 1), true},
		{"precedence-holds", StatePrecedence("served", "granted"), true},
		{"precedence-fails", StatePrecedence("granted", "served"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Holds(tt.f); got != tt.want {
				t.Fatalf("Holds(%s) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestPatternHelpersAreACTL(t *testing.T) {
	helpers := []Formula{
		Absence(Atom("p")),
		Universality(Atom("p")),
		MutualExclusion("p", "q"),
		Response(Atom("p"), Atom("q"), 1, 4),
		MinimalDelay(Atom("p"), Atom("q"), 3),
		Precedence(Atom("p"), Atom("q")),
	}
	for _, f := range helpers {
		if !IsACTL(f) {
			t.Fatalf("%s is not ACTL", f)
		}
	}
}

func TestPrecedenceOnRailcabShape(t *testing.T) {
	// served must not be reachable without granted in between: break the
	// world with a shortcut and see Precedence fail.
	a := patternWorld()
	step := automata.Interact([]automata.Signal{"t"}, nil)
	// Shortcut: request -> served directly. (Second transition on the same
	// label makes it nondeterministic, which the checker handles.)
	a.MustAddTransition(a.State("request"), step, a.State("served"))
	c := NewChecker(a)
	if c.Holds(StatePrecedence("served", "granted")) {
		t.Fatal("precedence should fail with the shortcut")
	}
}
