package ctl

import "muml/internal/automata"

// This file provides specification-pattern helpers in the style of Dwyer,
// Avrunin, and Corbett's property patterns, restricted to the timed ACTL
// fragment that is compositional in the sense of Section 2.4. They cover
// the constraint forms that occur in Mechatronic UML pattern constraints
// and role invariants, so models can be annotated without hand-writing
// CCTL.

// Absence states that the proposition never holds: AG ¬p. The RailCab
// pattern constraint is an Absence over a conjunction.
func Absence(p Formula) Formula { return AG(Not(p)) }

// Universality states that the proposition always holds: AG p — the shape
// of the paper's role invariants.
func Universality(p Formula) Formula { return AG(p) }

// MutualExclusion states that the propositions never hold together:
// AG ¬(p ∧ q), e.g. A[] not (rearRole.convoy and frontRole.noConvoy).
func MutualExclusion(p, q automata.Proposition) Formula {
	return AG(Not(And(Atom(p), Atom(q))))
}

// Response states that every trigger is followed by the reaction within
// the window [lo, hi] — the paper's maximal-delay constraint family
// (Section 2.4): AG(trigger → AF[lo,hi] reaction). A path that deadlocks
// inside the window violates the property.
func Response(trigger, reaction Formula, lo, hi int) Formula {
	return AG(Implies(trigger, AFWithin(lo, hi, reaction)))
}

// MinimalDelay states that the reaction never occurs earlier than lo steps
// after the trigger: AG(trigger → AG[1,lo-1] ¬reaction). With lo ≤ 1 it is
// trivially true.
func MinimalDelay(trigger, reaction Formula, lo int) Formula {
	if lo <= 1 {
		return True
	}
	return AG(Implies(trigger, AGWithin(1, lo-1, Not(reaction))))
}

// Precedence states that the guard must hold strictly before any
// occurrence of the event: the event cannot occur while the guard has
// never held, expressed as A[(¬event) U (guard ∧ ¬event)] weakened to
// tolerate runs where neither ever occurs:
//
//	¬ E[ ¬guard U (event ∧ ¬guard) ]
//
// The result is ACTL after NNF.
func Precedence(event, guard Formula) Formula {
	return Not(EU(Not(guard), And(event, Not(guard))))
}

// StatePrecedence is Precedence over state propositions: the system is
// never in the event state unless it passed through the guard state
// first. For the RailCab example: rearRole.convoy is preceded by
// a state in which startConvoy was granted.
func StatePrecedence(event, guard automata.Proposition) Formula {
	return Precedence(Atom(event), Atom(guard))
}
