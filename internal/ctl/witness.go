package ctl

import (
	"fmt"

	"muml/internal/automata"
)

// Witness constructs, for a *satisfied* existential reachability formula,
// a run demonstrating it from some initial state:
//
//   - EF f (bounded or not): a shortest path to a state satisfying f;
//   - EX f: one step to a satisfying successor;
//   - E[g U f]: a shortest path to f through g-states.
//
// It returns an error for unsupported shapes or when the formula does not
// hold in any initial state. Universal formulas have counterexamples (see
// Check), not witnesses.
func (c *Checker) Witness(f Formula) (*automata.Run, error) {
	return witnessOn(c, f)
}

func witnessOn(e satEngine, f Formula) (*automata.Run, error) {
	a := e.Automaton()
	switch node := f.(type) {
	case *efNode:
		return reachWitness(a, e.Sat(node.f), nil, boundOrNil(node.bound))
	case *exNode:
		inner := e.Sat(node.f)
		for _, q := range a.Initial() {
			for _, t := range a.TransitionsFrom(q) {
				if inner[t.To] {
					return &automata.Run{
						States: []automata.StateID{q, t.To},
						Steps:  []automata.Interaction{t.Label},
					}, nil
				}
			}
		}
		return nil, fmt.Errorf("ctl: %s has no witness from the initial states", f)
	case *euNode:
		return reachWitness(a, e.Sat(node.r), e.Sat(node.l), nil)
	default:
		return nil, fmt.Errorf("ctl: witness generation not supported for %s", f)
	}
}

func boundOrNil(b *Bound) *Bound {
	if b == nil {
		return nil
	}
	bb := *b
	return &bb
}

// reachWitness BFSes from the initial states to a target-set state,
// optionally restricted to via-states and to a depth window.
func reachWitness(a *automata.Automaton, target []bool, via []bool, bound *Bound) (*automata.Run, error) {
	n := a.NumStates()
	// visited by (state, depth) only matters with bounds; without bounds
	// visit each state once.
	visited := make(map[entry]struct{})
	parent := make(map[entry]automata.Transition)
	parentEntry := make(map[entry]entry)
	var queue []entry

	inWindow := func(d int) bool {
		if bound == nil {
			return true
		}
		return d >= bound.Lo && d <= bound.Hi
	}
	maxDepth := n
	if bound != nil {
		maxDepth = bound.Hi
	}

	for _, q := range a.Initial() {
		e := entry{q, 0}
		visited[e] = struct{}{}
		queue = append(queue, e)
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if target[cur.s] && inWindow(cur.depth) {
			return buildRun(cur, parent, parentEntry), nil
		}
		if cur.depth >= maxDepth {
			continue
		}
		if via != nil && !via[cur.s] {
			continue
		}
		for _, t := range a.TransitionsFrom(cur.s) {
			next := entry{t.To, cur.depth + 1}
			if bound == nil {
				next.depth = 0 // collapse depths when unbounded
			}
			if _, seen := visited[next]; seen {
				continue
			}
			visited[next] = struct{}{}
			parent[next] = t
			parentEntry[next] = cur
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("ctl: no witness path found")
}

func buildRun(end entry, parent map[entry]automata.Transition, parentEntry map[entry]entry) *automata.Run {
	var rev []automata.Transition
	cur := end
	for {
		t, ok := parent[cur]
		if !ok {
			break
		}
		rev = append(rev, t)
		cur = parentEntry[cur]
	}
	run := &automata.Run{States: []automata.StateID{cur.s}}
	for i := len(rev) - 1; i >= 0; i-- {
		run.Steps = append(run.Steps, rev[i].Label)
		run.States = append(run.States, rev[i].To)
	}
	return run
}

// entry is shared between reachWitness and buildRun.
type entry struct {
	s     automata.StateID
	depth int
}
