// Package ctl implements the clocked CTL (CCTL) property language of
// Section 2.1 of the paper and an explicit-state model checker with
// counterexample generation over the discrete-time I/O automata of package
// automata.
//
// Constraints φ and invariants ψ are CCTL formulas over atomic
// propositions; discrete time maps one transition to one time unit, so
// bounded operators such as AF[1,d] quantify over transition counts. The
// special symbol δ (Deadlock) identifies states without outgoing
// transitions; M ⊨ ¬δ expresses deadlock freedom.
//
// Semantics over finite maximal paths: a path ending in a deadlock state is
// maximal. AG φ holds on such a path if every visited state satisfies φ;
// AF φ fails on it if no visited state satisfies φ. AX φ is vacuously true
// in a deadlock state; EX φ is false there.
package ctl

import (
	"fmt"
	"strings"

	"muml/internal/automata"
)

// Formula is a CCTL formula. Formulas are immutable trees built with the
// constructor functions of this package (Atom, And, AG, ...).
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Bound is a discrete-time interval [Lo, Hi] attached to F or G operators
// (CCTL). Both bounds are inclusive and count transitions.
type Bound struct {
	Lo, Hi int
}

func (b Bound) String() string { return fmt.Sprintf("[%d,%d]", b.Lo, b.Hi) }

// Valid reports whether the bound is well-formed.
func (b Bound) Valid() bool { return b.Lo >= 0 && b.Hi >= b.Lo }

type (
	trueNode  struct{}
	falseNode struct{}

	atomNode struct{ p automata.Proposition }

	deadlockNode struct{}

	notNode struct{ f Formula }

	andNode struct{ l, r Formula }
	orNode  struct{ l, r Formula }
	impNode struct{ l, r Formula }

	axNode struct{ f Formula }
	exNode struct{ f Formula }

	afNode struct {
		f     Formula
		bound *Bound
	}
	efNode struct {
		f     Formula
		bound *Bound
	}
	agNode struct {
		f     Formula
		bound *Bound
	}
	egNode struct {
		f     Formula
		bound *Bound
	}

	auNode struct{ l, r Formula }
	euNode struct{ l, r Formula }
)

func (trueNode) isFormula()     {}
func (falseNode) isFormula()    {}
func (*atomNode) isFormula()    {}
func (deadlockNode) isFormula() {}
func (*notNode) isFormula()     {}
func (*andNode) isFormula()     {}
func (*orNode) isFormula()      {}
func (*impNode) isFormula()     {}
func (*axNode) isFormula()      {}
func (*exNode) isFormula()      {}
func (*afNode) isFormula()      {}
func (*efNode) isFormula()      {}
func (*agNode) isFormula()      {}
func (*egNode) isFormula()      {}
func (*auNode) isFormula()      {}
func (*euNode) isFormula()      {}

// True is the formula satisfied by every state.
var True Formula = trueNode{}

// False is the formula satisfied by no state.
var False Formula = falseNode{}

// Deadlock is the special symbol δ: satisfied exactly by states without
// outgoing transitions.
var Deadlock Formula = deadlockNode{}

// Atom returns the atomic proposition p.
func Atom(p automata.Proposition) Formula { return &atomNode{p: p} }

// Not returns ¬f.
func Not(f Formula) Formula { return &notNode{f: f} }

// And returns the conjunction of the given formulas (True if none).
func And(fs ...Formula) Formula {
	if len(fs) == 0 {
		return True
	}
	acc := fs[0]
	for _, f := range fs[1:] {
		acc = &andNode{l: acc, r: f}
	}
	return acc
}

// Or returns the disjunction of the given formulas (False if none).
func Or(fs ...Formula) Formula {
	if len(fs) == 0 {
		return False
	}
	acc := fs[0]
	for _, f := range fs[1:] {
		acc = &orNode{l: acc, r: f}
	}
	return acc
}

// Implies returns l → r.
func Implies(l, r Formula) Formula { return &impNode{l: l, r: r} }

// AX returns AX f: f holds in every successor (vacuously true at
// deadlocks).
func AX(f Formula) Formula { return &axNode{f: f} }

// EX returns EX f: some successor satisfies f.
func EX(f Formula) Formula { return &exNode{f: f} }

// AF returns AF f: on every maximal path, f eventually holds.
func AF(f Formula) Formula { return &afNode{f: f} }

// AFWithin returns the CCTL bounded AF[lo,hi] f: on every maximal path, f
// holds at some step i with lo ≤ i ≤ hi. A path that deadlocks before
// satisfying f violates the formula.
func AFWithin(lo, hi int, f Formula) Formula { return &afNode{f: f, bound: &Bound{lo, hi}} }

// EF returns EF f: some path eventually satisfies f.
func EF(f Formula) Formula { return &efNode{f: f} }

// EFWithin returns EF[lo,hi] f.
func EFWithin(lo, hi int, f Formula) Formula { return &efNode{f: f, bound: &Bound{lo, hi}} }

// AG returns AG f: f holds on every reachable state of every path.
func AG(f Formula) Formula { return &agNode{f: f} }

// AGWithin returns AG[lo,hi] f: on every path, f holds at every step i with
// lo ≤ i ≤ hi that the path reaches.
func AGWithin(lo, hi int, f Formula) Formula { return &agNode{f: f, bound: &Bound{lo, hi}} }

// EG returns EG f: some maximal path satisfies f everywhere.
func EG(f Formula) Formula { return &egNode{f: f} }

// EGWithin returns EG[lo,hi] f.
func EGWithin(lo, hi int, f Formula) Formula { return &egNode{f: f, bound: &Bound{lo, hi}} }

// AU returns A[l U r]: on every maximal path, r eventually holds and l
// holds until then.
func AU(l, r Formula) Formula { return &auNode{l: l, r: r} }

// EU returns E[l U r].
func EU(l, r Formula) Formula { return &euNode{l: l, r: r} }

// NoDeadlock returns the deadlock-freedom constraint ¬δ, expressed as
// AG ¬deadlock so that counterexample generation produces a witness path.
func NoDeadlock() Formula { return AG(Not(Deadlock)) }

// MaxDelay returns the paper's example compositional constraint for a
// maximal message delay d (Section 2.4): AG(¬trigger ∨ AF[1,d] required).
func MaxDelay(trigger, required automata.Proposition, d int) Formula {
	return AG(Or(Not(Atom(trigger)), AFWithin(1, d, Atom(required))))
}

func (trueNode) String() string     { return "true" }
func (falseNode) String() string    { return "false" }
func (deadlockNode) String() string { return "deadlock" }
func (a *atomNode) String() string  { return string(a.p) }
func (n *notNode) String() string   { return "not " + paren(n.f) }
func (n *andNode) String() string   { return paren(n.l) + " and " + paren(n.r) }
func (n *orNode) String() string    { return paren(n.l) + " or " + paren(n.r) }
func (n *impNode) String() string   { return paren(n.l) + " -> " + paren(n.r) }
func (n *axNode) String() string    { return "AX " + paren(n.f) }
func (n *exNode) String() string    { return "EX " + paren(n.f) }
func (n *afNode) String() string    { return "AF" + boundStr(n.bound) + " " + paren(n.f) }
func (n *efNode) String() string    { return "EF" + boundStr(n.bound) + " " + paren(n.f) }
func (n *agNode) String() string    { return "AG" + boundStr(n.bound) + " " + paren(n.f) }
func (n *egNode) String() string    { return "EG" + boundStr(n.bound) + " " + paren(n.f) }
func (n *auNode) String() string    { return "A[" + n.l.String() + " U " + n.r.String() + "]" }
func (n *euNode) String() string    { return "E[" + n.l.String() + " U " + n.r.String() + "]" }

func boundStr(b *Bound) string {
	if b == nil {
		return ""
	}
	return b.String()
}

func paren(f Formula) string {
	switch f.(type) {
	case trueNode, falseNode, deadlockNode, *atomNode, *auNode, *euNode:
		return f.String()
	default:
		s := f.String()
		if strings.ContainsRune(s, ' ') {
			return "(" + s + ")"
		}
		return s
	}
}

// Atoms returns the set of propositions occurring in the formula (the
// label set ℒ(φ) of Section 2.1).
func Atoms(f Formula) []automata.Proposition {
	seen := make(map[automata.Proposition]struct{})
	var walk func(Formula)
	walk = func(f Formula) {
		switch n := f.(type) {
		case *atomNode:
			seen[n.p] = struct{}{}
		case *notNode:
			walk(n.f)
		case *andNode:
			walk(n.l)
			walk(n.r)
		case *orNode:
			walk(n.l)
			walk(n.r)
		case *impNode:
			walk(n.l)
			walk(n.r)
		case *axNode:
			walk(n.f)
		case *exNode:
			walk(n.f)
		case *afNode:
			walk(n.f)
		case *efNode:
			walk(n.f)
		case *agNode:
			walk(n.f)
		case *egNode:
			walk(n.f)
		case *auNode:
			walk(n.l)
			walk(n.r)
		case *euNode:
			walk(n.l)
			walk(n.r)
		}
	}
	walk(f)
	props := make([]automata.Proposition, 0, len(seen))
	for p := range seen {
		props = append(props, p)
	}
	sortProps(props)
	return props
}

func sortProps(ps []automata.Proposition) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
