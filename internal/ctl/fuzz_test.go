package ctl

import (
	"testing"

	"muml/internal/automata"
)

// FuzzParse ensures the formula parser never panics and that every
// successfully parsed formula round-trips through its rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"A[] not (rearRole.convoy and frontRole.noConvoy)",
		"AG (p -> AF[1,5] q)",
		"E<> deadlock",
		"A[p U q] or E[p U q]",
		"p && q || !r",
		"AG[0,3] safe",
		"((((p))))",
		"AF[9999999,9999999] p",
		"not not not p",
		"A and E",
		"", "(", ")", "[", "]", "U", "->", "A[", "E<>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := Parse(input)
		if err != nil {
			return
		}
		rendered := formula.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of %q does not re-parse: %v", rendered, input, err)
		}
		if again.String() != rendered {
			t.Fatalf("round trip unstable: %q -> %q", rendered, again.String())
		}
		// NNF must not panic and must stay renderable.
		_ = NNF(formula).String()
		_ = IsACTL(formula)
		_ = WeakenForChaos(formula).String()
	})
}

// FuzzCheck ensures the checker handles arbitrary parsed formulas over a
// fixed small system without panicking, and that NNF preserves the
// verdict.
func FuzzCheck(f *testing.F) {
	for _, s := range []string{
		"AG p", "AF q", "E[p U q]", "AX (p or deadlock)", "EG[0,4] not p",
	} {
		f.Add(s)
	}
	a := automata.New("sys", automata.NewSignalSet("x"), automata.EmptySet)
	s0 := a.MustAddState("s0", "p")
	s1 := a.MustAddState("s1", "q")
	x := automata.Interact([]automata.Signal{"x"}, nil)
	a.MustAddTransition(s0, x, s1)
	a.MustAddTransition(s1, x, s0)
	a.MustAddTransition(s1, automata.Interaction{}, s1)
	a.MarkInitial(s0)

	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 256 {
			return // bound formula size to keep bounded operators cheap
		}
		formula, err := Parse(input)
		if err != nil {
			return
		}
		if b := maxBound(formula); b > 64 {
			return // keep layered bounded-operator tables small
		}
		checker := NewChecker(a)
		got := checker.Holds(formula)
		nnf := checker.Holds(NNF(formula))
		if got != nnf {
			t.Fatalf("NNF changed verdict of %q: %v vs %v", formula, got, nnf)
		}
	})
}

func maxBound(f Formula) int {
	max := 0
	var walk func(Formula)
	consider := func(b *Bound) {
		if b != nil && b.Hi > max {
			max = b.Hi
		}
	}
	walk = func(f Formula) {
		switch n := f.(type) {
		case *notNode:
			walk(n.f)
		case *andNode:
			walk(n.l)
			walk(n.r)
		case *orNode:
			walk(n.l)
			walk(n.r)
		case *impNode:
			walk(n.l)
			walk(n.r)
		case *axNode:
			walk(n.f)
		case *exNode:
			walk(n.f)
		case *afNode:
			consider(n.bound)
			walk(n.f)
		case *efNode:
			consider(n.bound)
			walk(n.f)
		case *agNode:
			consider(n.bound)
			walk(n.f)
		case *egNode:
			consider(n.bound)
			walk(n.f)
		case *auNode:
			walk(n.l)
			walk(n.r)
		case *euNode:
			walk(n.l)
			walk(n.r)
		}
	}
	walk(f)
	return max
}
