package learning

import (
	"muml/internal/automata"
	"muml/internal/conformance"
	"muml/internal/legacy"
)

// PerfectOracle is an equivalence oracle with white-box access to the true
// behavior automaton of the system under learning. It answers equivalence
// queries exactly via a product search — the idealized oracle of Angluin's
// setting, unavailable in practice but useful as the lower bound in the
// baseline comparison.
type PerfectOracle struct {
	truth *automata.Automaton
}

var _ EquivalenceOracle = (*PerfectOracle)(nil)

// NewPerfectOracle builds the oracle from the ground-truth automaton.
func NewPerfectOracle(truth *automata.Automaton) *PerfectOracle {
	return &PerfectOracle{truth: truth}
}

// Counterexample implements EquivalenceOracle.
func (o *PerfectOracle) Counterexample(h *automata.Automaton, alphabet []automata.SignalSet) (Word, bool, error) {
	equal, w, err := conformance.Equivalent(h, o.truth, alphabet)
	if err != nil {
		return nil, false, err
	}
	if equal {
		return nil, false, nil
	}
	return w, true, nil
}

// WMethodOracle approximates the equivalence oracle by conformance
// testing: it generates the W-method suite for the hypothesis under an
// assumed bound on the implementation's state count and executes it
// against the component. This is the practical realization discussed in
// Section 6 (Vasilevskii/Chow); its cost is what the paper's approach
// avoids.
type WMethodOracle struct {
	oracle    OutputOracle
	maxStates int
	// SuiteCosts records the cost of every generated suite, for the E9
	// experiment.
	SuiteCosts []conformance.SuiteCost
}

var _ EquivalenceOracle = (*WMethodOracle)(nil)

// NewWMethodOracle builds the oracle; maxStates is the assumed upper bound
// on the implementation's state count.
func NewWMethodOracle(oracle OutputOracle, maxStates int) *WMethodOracle {
	return &WMethodOracle{oracle: oracle, maxStates: maxStates}
}

// Counterexample implements EquivalenceOracle.
func (o *WMethodOracle) Counterexample(h *automata.Automaton, alphabet []automata.SignalSet) (Word, bool, error) {
	suite, err := conformance.Suite(h, alphabet, o.maxStates)
	if err != nil {
		return nil, false, err
	}
	o.SuiteCosts = append(o.SuiteCosts, conformance.Cost(suite))
	for _, w := range suite {
		expected := conformance.Outputs(h, w)
		actual := o.oracle.Query(w)
		for i := range expected {
			if expected[i] != actual[i] {
				return w[:i+1], true, nil
			}
		}
	}
	return nil, false, nil
}

// LearnComponent is a convenience wrapper running the complete L* pipeline
// over a legacy component with the given equivalence strategy.
func LearnComponent(
	comp legacy.Component,
	iface legacy.Interface,
	universe automata.InteractionUniverse,
	equiv EquivalenceOracle,
	maxRounds int,
) (*automata.Automaton, Stats, error) {
	var stats Stats
	oracle := NewComponentOracle(comp, &stats)
	alphabet := distinctInputs(universe, iface)
	learner := NewLearner(oracle, alphabet, &stats)
	model, err := learner.Learn(equiv, maxRounds)
	return model, stats, err
}

func distinctInputs(universe automata.InteractionUniverse, iface legacy.Interface) []automata.SignalSet {
	seen := make(map[string]struct{})
	var out []automata.SignalSet
	for _, x := range universe.Enumerate(iface.Inputs, iface.Outputs) {
		key := x.In.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, x.In)
	}
	return out
}
