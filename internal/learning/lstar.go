// Package learning implements Angluin's L* regular inference algorithm
// [Angluin 1987] in its Mealy-machine variant, the classical baseline the
// paper compares against (Section 6, "Regular Inference").
//
// A Learner infers the reactive behavior of a black box from output
// queries (the Mealy analogue of membership queries) organized in an
// observation table, and asks an equivalence oracle to confirm each
// hypothesis or supply a counterexample. Partial machines (components that
// refuse inputs) are completed with a stuck semantics: a refusal outputs ⊥
// and every later input outputs ⊥ too.
//
// Complexity (Section 6): at most n equivalence queries and O(|Σ|·n²·m)
// membership queries, n the state count and m the longest counterexample.
// In contrast to the paper's context-guided synthesis the inferred model
// is an under-approximation until the final equivalence query succeeds,
// and equivalence itself needs conformance testing with cost exponential
// in the state-count gap (package conformance).
package learning

import (
	"fmt"
	"strings"

	"muml/internal/automata"
	"muml/internal/conformance"
	"muml/internal/legacy"
)

// Bottom is the stuck-completion output, re-exported from conformance.
const Bottom = conformance.Bottom

// Word is an input word, re-exported from conformance.
type Word = conformance.Word

// OutputOracle answers output queries: the outputs produced by the system
// under learning on an input word, with Bottom from the first refusal.
type OutputOracle interface {
	Query(w Word) []string
}

// EquivalenceOracle decides whether a hypothesis matches the system under
// learning, returning a counterexample word otherwise.
type EquivalenceOracle interface {
	Counterexample(h *automata.Automaton, alphabet []automata.SignalSet) (Word, bool, error)
}

// Stats counts the effort spent by the learner and its oracles.
type Stats struct {
	MembershipQueries  int
	EquivalenceQueries int
	Resets             int
	SymbolsExecuted    int
	Rounds             int
}

// ComponentOracle adapts a legacy component to an OutputOracle, counting
// queries.
type ComponentOracle struct {
	comp  legacy.Component
	stats *Stats
	cache map[string][]string
}

var _ OutputOracle = (*ComponentOracle)(nil)

// NewComponentOracle wraps the component. Queries are cached; the cache
// models the standard assumption that repeated membership queries are
// free.
func NewComponentOracle(comp legacy.Component, stats *Stats) *ComponentOracle {
	return &ComponentOracle{comp: comp, stats: stats, cache: make(map[string][]string)}
}

// Query implements OutputOracle.
func (o *ComponentOracle) Query(w Word) []string {
	key := w.Key()
	if cached, ok := o.cache[key]; ok {
		return cached
	}
	o.stats.MembershipQueries++
	o.stats.Resets++
	o.comp.Reset()
	outs := make([]string, len(w))
	stuck := false
	for i, in := range w {
		if stuck {
			outs[i] = Bottom
			continue
		}
		o.stats.SymbolsExecuted++
		out, ok := o.comp.Step(in)
		if !ok {
			outs[i] = Bottom
			stuck = true
			continue
		}
		outs[i] = out.Key()
	}
	o.cache[key] = outs
	return outs
}

// Learner runs L* over an output oracle.
type Learner struct {
	oracle   OutputOracle
	alphabet []automata.SignalSet
	stats    *Stats

	prefixes []Word // S, closed under prefixes of added rows
	suffixes []Word // E, initialized with single letters
}

// NewLearner prepares an L* learner over the given input alphabet.
func NewLearner(oracle OutputOracle, alphabet []automata.SignalSet, stats *Stats) *Learner {
	l := &Learner{oracle: oracle, alphabet: alphabet, stats: stats}
	l.prefixes = []Word{{}}
	for _, a := range alphabet {
		l.suffixes = append(l.suffixes, Word{a})
	}
	return l
}

// Learn runs the full L* loop: build a closed and consistent observation
// table, form a hypothesis, ask the equivalence oracle, refine on
// counterexamples; stops when the oracle accepts or maxRounds is hit.
func (l *Learner) Learn(equiv EquivalenceOracle, maxRounds int) (*automata.Automaton, error) {
	for round := 0; round < maxRounds; round++ {
		l.stats.Rounds++
		l.makeClosedAndConsistent()
		// Trim: dropping ⊥ (refusal) transitions can leave the stuck-sink
		// row unreachable; the reported hypothesis is the reachable part.
		hyp := l.hypothesis(fmt.Sprintf("hypothesis%d", round)).Trim(fmt.Sprintf("hypothesis%d", round))
		l.stats.EquivalenceQueries++
		cex, found, err := equiv.Counterexample(hyp, l.alphabet)
		if err != nil {
			return nil, fmt.Errorf("learning: equivalence oracle: %w", err)
		}
		if !found {
			return hyp, nil
		}
		l.addCounterexample(cex)
	}
	return nil, fmt.Errorf("learning: no stable hypothesis after %d rounds", maxRounds)
}

// row returns the table row of a prefix: concatenated outputs over all
// suffixes.
func (l *Learner) row(prefix Word) string {
	var parts []string
	for _, e := range l.suffixes {
		parts = append(parts, l.cell(prefix, e))
	}
	return strings.Join(parts, ";")
}

// cell returns the output sequence for suffix e after prefix s.
func (l *Learner) cell(prefix, e Word) string {
	outs := l.oracle.Query(conformance.Concat(prefix, e))
	return strings.Join(outs[len(prefix):], ",")
}

// makeClosedAndConsistent iterates the two L* table repairs.
func (l *Learner) makeClosedAndConsistent() {
	for {
		if l.closeTable() {
			continue
		}
		if l.makeConsistent() {
			continue
		}
		return
	}
}

// closeTable ensures every one-letter extension of a prefix has a
// representative row among the prefixes; returns true if it changed the
// table.
func (l *Learner) closeTable() bool {
	rows := make(map[string]struct{}, len(l.prefixes))
	for _, s := range l.prefixes {
		rows[l.row(s)] = struct{}{}
	}
	for _, s := range l.prefixes {
		for _, a := range l.alphabet {
			ext := conformance.Concat(s, Word{a})
			if _, ok := rows[l.row(ext)]; !ok {
				l.addPrefix(ext)
				return true
			}
		}
	}
	return false
}

// makeConsistent ensures prefixes with equal rows stay equal under every
// extension; adds a distinguishing suffix otherwise.
func (l *Learner) makeConsistent() bool {
	for i := 0; i < len(l.prefixes); i++ {
		for j := i + 1; j < len(l.prefixes); j++ {
			s1, s2 := l.prefixes[i], l.prefixes[j]
			if l.row(s1) != l.row(s2) {
				continue
			}
			for _, a := range l.alphabet {
				e1 := conformance.Concat(s1, Word{a})
				e2 := conformance.Concat(s2, Word{a})
				for _, e := range l.suffixes {
					if l.cell(e1, e) != l.cell(e2, e) {
						l.suffixes = append(l.suffixes, conformance.Concat(Word{a}, e))
						return true
					}
				}
			}
		}
	}
	return false
}

// addCounterexample adds all prefixes of the counterexample to S
// (Angluin's original treatment).
func (l *Learner) addCounterexample(cex Word) {
	for i := 1; i <= len(cex); i++ {
		l.addPrefix(append(Word{}, cex[:i]...))
	}
}

func (l *Learner) addPrefix(p Word) {
	key := p.Key()
	for _, existing := range l.prefixes {
		if existing.Key() == key {
			return
		}
	}
	l.prefixes = append(l.prefixes, p)
}

// hypothesis builds the Mealy automaton from the closed, consistent table.
// Transitions whose output is ⊥ model refusals and are omitted, yielding a
// partial (function-deterministic) automaton comparable with the learned
// models of the synthesis loop.
func (l *Learner) hypothesis(name string) *automata.Automaton {
	// Distinct rows become states; the empty prefix's row is initial.
	repr := make(map[string]Word)
	order := make([]string, 0, len(l.prefixes))
	for _, s := range l.prefixes {
		key := l.row(s)
		if _, ok := repr[key]; !ok {
			repr[key] = s
			order = append(order, key)
		}
	}
	outputs := collectOutputs(l)
	a := automata.New(name, inputsUnion(l.alphabet), outputs)
	ids := make(map[string]automata.StateID, len(order))
	for i, key := range order {
		ids[key] = a.MustAddState(fmt.Sprintf("q%d", i))
	}
	a.MarkInitial(ids[l.row(Word{})])
	for _, key := range order {
		s := repr[key]
		from := ids[key]
		for _, in := range l.alphabet {
			outKey := l.cell(s, Word{in})
			if outKey == Bottom {
				continue
			}
			toKey := l.row(conformance.Concat(s, Word{in}))
			label := automata.Interaction{In: in, Out: signalSetFromKey(outKey)}
			if len(a.Successors(from, label)) == 0 {
				a.MustAddTransition(from, label, ids[toKey])
			}
		}
	}
	return a
}

func collectOutputs(l *Learner) automata.SignalSet {
	out := automata.EmptySet
	for _, s := range l.prefixes {
		for _, in := range l.alphabet {
			key := l.cell(s, Word{in})
			if key == Bottom {
				continue
			}
			out = out.Union(signalSetFromKey(key))
		}
	}
	return out
}

func inputsUnion(alphabet []automata.SignalSet) automata.SignalSet {
	u := automata.EmptySet
	for _, in := range alphabet {
		u = u.Union(in)
	}
	return u
}

func signalSetFromKey(key string) automata.SignalSet {
	if key == "" {
		return automata.EmptySet
	}
	parts := strings.Split(key, ",")
	signals := make([]automata.Signal, len(parts))
	for i, p := range parts {
		signals[i] = automata.Signal(p)
	}
	return automata.NewSignalSet(signals...)
}
