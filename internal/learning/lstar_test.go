package learning

import (
	"math/rand"
	"testing"

	"muml/internal/automata"
	"muml/internal/conformance"
	"muml/internal/core"
	"muml/internal/legacy"
	"muml/internal/railcab"
)

func learnWithPerfectOracle(t *testing.T, comp legacy.Component, iface legacy.Interface, maxTruthStates int) (*automata.Automaton, *automata.Automaton, Stats) {
	t.Helper()
	universe := automata.Universe(automata.UniverseSingleton)
	truth := core.ExploreComponent(comp, iface, universe, nil, maxTruthStates)
	model, stats, err := LearnComponent(comp, iface, universe, NewPerfectOracle(truth), 64)
	if err != nil {
		t.Fatal(err)
	}
	return model, truth, stats
}

func TestLStarLearnsCorrectShuttle(t *testing.T) {
	iface := railcab.RearInterface("rear")
	model, truth, stats := learnWithPerfectOracle(t, &railcab.CorrectShuttle{}, iface, 16)
	alphabet := conformance.InputAlphabet(truth, automata.Universe(automata.UniverseSingleton))
	eq, w, err := conformance.Equivalent(model, truth, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("learned model differs from truth on %v\nmodel:\n%s\ntruth:\n%s", w, model.Dot(), truth.Dot())
	}
	if model.NumStates() != truth.NumStates() {
		t.Fatalf("learned %d states, truth has %d", model.NumStates(), truth.NumStates())
	}
	if stats.MembershipQueries == 0 || stats.EquivalenceQueries == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	t.Logf("L* learned %d states with %d membership / %d equivalence queries",
		model.NumStates(), stats.MembershipQueries, stats.EquivalenceQueries)
}

func TestLStarLearnsAllShuttles(t *testing.T) {
	comps := map[string]legacy.Component{
		"correct":  &railcab.CorrectShuttle{},
		"eager":    &railcab.EagerShuttle{},
		"blocking": &railcab.BlockingShuttle{},
	}
	iface := railcab.RearInterface("rear")
	for name, comp := range comps {
		t.Run(name, func(t *testing.T) {
			model, truth, _ := learnWithPerfectOracle(t, comp, iface, 16)
			alphabet := conformance.InputAlphabet(truth, automata.Universe(automata.UniverseSingleton))
			eq, w, err := conformance.Equivalent(model, truth, alphabet)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("learned model differs on %v", w)
			}
		})
	}
}

func TestLStarWithWMethodOracle(t *testing.T) {
	iface := railcab.RearInterface("rear")
	comp := &railcab.CorrectShuttle{}
	universe := automata.Universe(automata.UniverseSingleton)
	var stats Stats
	oracle := NewComponentOracle(comp, &stats)
	wm := NewWMethodOracle(oracle, 6)
	learner := NewLearner(oracle, distinctInputs(universe, iface), &stats)
	model, err := learner.Learn(wm, 64)
	if err != nil {
		t.Fatal(err)
	}
	truth := core.ExploreComponent(&railcab.CorrectShuttle{}, iface, universe, nil, 16)
	alphabet := conformance.InputAlphabet(truth, universe)
	eq, w, err := conformance.Equivalent(model, truth, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("W-method-learned model differs on %v", w)
	}
	if len(wm.SuiteCosts) == 0 {
		t.Fatal("no suite costs recorded")
	}
	t.Logf("W-method oracle: %d suites, last cost %+v; %d membership queries total",
		len(wm.SuiteCosts), wm.SuiteCosts[len(wm.SuiteCosts)-1], stats.MembershipQueries)
}

func TestLStarLearnsRandomMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	universe := automata.Universe(automata.UniverseSingleton)
	for i := 0; i < 15; i++ {
		truth := randomMealy(rng, 2+rng.Intn(5))
		comp := legacy.MustWrapAutomaton(truth)
		iface := legacy.Interface{Name: "m", Inputs: truth.Inputs(), Outputs: truth.Outputs()}
		model, _, err := LearnComponent(comp, iface, universe, NewPerfectOracle(truth), 128)
		if err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
		alphabet := conformance.InputAlphabet(truth, universe)
		eq, w, err := conformance.Equivalent(model, truth, alphabet)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("machine %d: differs on %v\ntruth:\n%s\nmodel:\n%s", i, w, truth.Dot(), model.Dot())
		}
	}
}

func TestComponentOracleStuckSemantics(t *testing.T) {
	var stats Stats
	oracle := NewComponentOracle(&railcab.CorrectShuttle{}, &stats)
	w := Word{
		automata.NewSignalSet(railcab.StartConvoy), // refused initially
		automata.EmptySet,
	}
	outs := oracle.Query(w)
	if outs[0] != Bottom || outs[1] != Bottom {
		t.Fatalf("outputs = %v", outs)
	}
	// Cache: repeated query costs nothing.
	before := stats.MembershipQueries
	oracle.Query(w)
	if stats.MembershipQueries != before {
		t.Fatal("cached query recounted")
	}
}

// randomMealy generates a random function-deterministic, input-complete
// automaton with distinguishable outputs.
func randomMealy(rng *rand.Rand, states int) *automata.Automaton {
	inputs := []automata.Signal{"a", "b"}
	outputs := []automata.Signal{"x", "y"}
	m := automata.New("truth", automata.NewSignalSet(inputs...), automata.NewSignalSet(outputs...))
	for i := 0; i < states; i++ {
		m.MustAddState("s" + string(rune('0'+i)))
	}
	m.MarkInitial(0)
	for s := 0; s < states; s++ {
		for _, in := range inputs {
			if rng.Intn(5) == 0 {
				continue // partial: refuse this input
			}
			var out []automata.Signal
			if rng.Intn(2) == 0 {
				out = []automata.Signal{outputs[rng.Intn(len(outputs))]}
			}
			label := automata.Interact([]automata.Signal{in}, out)
			m.MustAddTransition(automata.StateID(s), label, automata.StateID(rng.Intn(states)))
		}
	}
	return m
}
