// Package rtsc implements Real-Time Statecharts (RTSC), the behavioral
// modeling notation of Mechatronic UML, and their mapping onto the
// discrete-time I/O automata of package automata.
//
// The paper (Section 2) maps RTSC to I/O-interval structures and works with
// a simplified finite state transition model in which discrete time is
// mapped to single states and transitions: every transition takes exactly
// one time unit, justified by clock synchronization and the discreteness of
// the underlying platform. This package implements exactly that mapping:
//
//   - hierarchical states with initial substates (leaf configurations are
//     rendered as "parent::child", matching the paper's listings, e.g.
//     "noConvoy::default");
//   - discrete clocks with reset, lower/upper bound guards, and state
//     invariants (upper bounds on clocks);
//   - transitions with an optional trigger event (consumed input signal),
//     raised events (produced output signals), guards, and resets;
//   - flattening into an I/O automaton over (leaf state, clock valuation)
//     pairs, with one automaton transition per time unit; idle steps
//     advance clocks while the state invariant permits.
package rtsc

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"muml/internal/automata"
)

// Event names a message type received (trigger) or sent (raised event) by
// a statechart. Events become input/output signals of the flattened
// automaton.
type Event = automata.Signal

// Clock names a discrete clock. All clocks advance by one per time unit
// and can be reset to zero by transitions.
type Clock string

// CmpOp is a comparison operator in clock constraints.
type CmpOp int

// Comparison operators.
const (
	CmpLE CmpOp = iota + 1 // ≤
	CmpGE                  // ≥
	CmpEQ                  // =
	CmpLT                  // <
	CmpGT                  // >
)

func (op CmpOp) String() string {
	switch op {
	case CmpLE:
		return "<="
	case CmpGE:
		return ">="
	case CmpEQ:
		return "=="
	case CmpLT:
		return "<"
	case CmpGT:
		return ">"
	default:
		return "?"
	}
}

// Constraint is one conjunct of a clock guard or invariant: clock op bound.
type Constraint struct {
	Clock Clock
	Op    CmpOp
	Bound int
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %d", c.Clock, c.Op, c.Bound)
}

// holds evaluates the constraint under a valuation.
func (c Constraint) holds(v map[Clock]int) bool {
	val := v[c.Clock]
	switch c.Op {
	case CmpLE:
		return val <= c.Bound
	case CmpGE:
		return val >= c.Bound
	case CmpEQ:
		return val == c.Bound
	case CmpLT:
		return val < c.Bound
	case CmpGT:
		return val > c.Bound
	default:
		return false
	}
}

// State is one (possibly composite) statechart state.
type State struct {
	name      string
	parent    string // "" for top level
	initial   bool   // initial among its siblings
	urgent    bool   // no idle step permitted: time may not pass here
	invariant []Constraint
	children  []string
}

// Name returns the state's local name.
func (s *State) Name() string { return s.name }

// Transition is a statechart transition between (possibly composite)
// states.
type Transition struct {
	From    string
	To      string
	Trigger Event   // "" = no trigger (spontaneous/timed transition)
	Raise   []Event // events sent when firing
	Guard   []Constraint
	Resets  []Clock
	// After delays the transition until the source state has been
	// occupied for at least After time units (0 = no delay). It is sugar
	// for a guard over an implicit per-state clock that every entry into
	// the source state resets; Flatten expands it.
	After int
}

// Chart is a real-time statechart under construction.
type Chart struct {
	name   string
	states map[string]*State
	order  []string // insertion order for determinism
	trans  []Transition
	clocks map[Clock]struct{}
}

// NewChart creates an empty statechart with the given component name.
func NewChart(name string) *Chart {
	return &Chart{
		name:   name,
		states: make(map[string]*State),
		clocks: make(map[Clock]struct{}),
	}
}

// Name returns the chart's component name.
func (c *Chart) Name() string { return c.name }

// StateOption configures a state added with AddState.
type StateOption interface{ applyState(*State) }

type stateOptionFunc func(*State)

func (f stateOptionFunc) applyState(s *State) { f(s) }

// Initial marks the state as the initial state among its siblings (or at
// the top level).
func Initial() StateOption {
	return stateOptionFunc(func(s *State) { s.initial = true })
}

// Parent places the state inside the named composite state.
func Parent(name string) StateOption {
	return stateOptionFunc(func(s *State) { s.parent = name })
}

// Urgent forbids idle steps in the state: a transition must fire in the
// very next time unit or the configuration deadlocks.
func Urgent() StateOption {
	return stateOptionFunc(func(s *State) { s.urgent = true })
}

// Invariant adds a state invariant conjunct (typically clock ≤ bound). The
// configuration may only be occupied (and time may only pass) while the
// invariant holds.
func Invariant(clock Clock, op CmpOp, bound int) StateOption {
	return stateOptionFunc(func(s *State) {
		s.invariant = append(s.invariant, Constraint{Clock: clock, Op: op, Bound: bound})
	})
}

// AddState adds a state. State names must be unique chart-wide.
func (c *Chart) AddState(name string, opts ...StateOption) error {
	if name == "" || strings.Contains(name, "::") {
		return fmt.Errorf("rtsc: invalid state name %q", name)
	}
	if _, ok := c.states[name]; ok {
		return fmt.Errorf("rtsc: duplicate state %q", name)
	}
	st := &State{name: name}
	for _, o := range opts {
		o.applyState(st)
	}
	c.states[name] = st
	c.order = append(c.order, name)
	for _, inv := range st.invariant {
		c.clocks[inv.Clock] = struct{}{}
	}
	return nil
}

// MustAddState is AddState but panics on error.
func (c *Chart) MustAddState(name string, opts ...StateOption) {
	if err := c.AddState(name, opts...); err != nil {
		panic(err)
	}
}

// TransOption configures a transition added with AddTransition.
type TransOption interface{ applyTrans(*Transition) }

type transOptionFunc func(*Transition)

func (f transOptionFunc) applyTrans(t *Transition) { f(t) }

// Trigger sets the consumed event.
func Trigger(e Event) TransOption {
	return transOptionFunc(func(t *Transition) { t.Trigger = e })
}

// Raise adds produced events.
func Raise(events ...Event) TransOption {
	return transOptionFunc(func(t *Transition) { t.Raise = append(t.Raise, events...) })
}

// Guard adds a guard conjunct.
func Guard(clock Clock, op CmpOp, bound int) TransOption {
	return transOptionFunc(func(t *Transition) {
		t.Guard = append(t.Guard, Constraint{Clock: clock, Op: op, Bound: bound})
	})
}

// Reset adds clock resets performed when the transition fires.
func Reset(clocks ...Clock) TransOption {
	return transOptionFunc(func(t *Transition) { t.Resets = append(t.Resets, clocks...) })
}

// After delays the transition until its source state has been occupied for
// at least d time units — the statechart "after(d)" trigger. Expanded by
// Flatten into a guard over an implicit clock reset on every entry into
// the source state.
func After(d int) TransOption {
	return transOptionFunc(func(t *Transition) { t.After = d })
}

// AddTransition adds a transition between two named states.
func (c *Chart) AddTransition(from, to string, opts ...TransOption) error {
	if _, ok := c.states[from]; !ok {
		return fmt.Errorf("rtsc: unknown source state %q", from)
	}
	if _, ok := c.states[to]; !ok {
		return fmt.Errorf("rtsc: unknown target state %q", to)
	}
	t := Transition{From: from, To: to}
	for _, o := range opts {
		o.applyTrans(&t)
	}
	for _, g := range t.Guard {
		c.clocks[g.Clock] = struct{}{}
	}
	for _, r := range t.Resets {
		c.clocks[r] = struct{}{}
	}
	c.trans = append(c.trans, t)
	return nil
}

// MustAddTransition is AddTransition but panics on error.
func (c *Chart) MustAddTransition(from, to string, opts ...TransOption) {
	if err := c.AddTransition(from, to, opts...); err != nil {
		panic(err)
	}
}

// Validate checks well-formedness: child links consistent, exactly one
// initial state per composite level and at the top, no guard/invariant
// cycles through undefined states.
func (c *Chart) Validate() error {
	if len(c.states) == 0 {
		return errors.New("rtsc: chart has no states")
	}
	// Build children lists and check parents exist.
	for _, name := range c.order {
		st := c.states[name]
		st.children = nil
	}
	for _, name := range c.order {
		st := c.states[name]
		if st.parent == "" {
			continue
		}
		p, ok := c.states[st.parent]
		if !ok {
			return fmt.Errorf("rtsc: state %q has unknown parent %q", name, st.parent)
		}
		p.children = append(p.children, name)
	}
	// Detect parent cycles.
	for _, name := range c.order {
		seen := map[string]bool{}
		for cur := name; cur != ""; cur = c.states[cur].parent {
			if seen[cur] {
				return fmt.Errorf("rtsc: parent cycle through %q", cur)
			}
			seen[cur] = true
		}
	}
	// Exactly one initial state at top level and inside every composite.
	if _, err := c.initialChild(""); err != nil {
		return err
	}
	for _, name := range c.order {
		if len(c.states[name].children) > 0 {
			if _, err := c.initialChild(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// initialChild returns the unique initial state among the children of
// parent ("" = top level).
func (c *Chart) initialChild(parent string) (string, error) {
	var found []string
	for _, name := range c.order {
		st := c.states[name]
		if st.parent == parent && st.initial {
			found = append(found, name)
		}
	}
	scope := parent
	if scope == "" {
		scope = "top level"
	}
	if len(found) == 0 {
		return "", fmt.Errorf("rtsc: no initial state in %s", scope)
	}
	if len(found) > 1 {
		return "", fmt.Errorf("rtsc: multiple initial states in %s: %v", scope, found)
	}
	return found[0], nil
}

// leafOf descends through initial substates to the leaf configuration
// entered when the named state is the transition target.
func (c *Chart) leafOf(name string) (string, error) {
	cur := name
	for len(c.states[cur].children) > 0 {
		next, err := c.initialChild(cur)
		if err != nil {
			return "", err
		}
		cur = next
	}
	return cur, nil
}

// path returns the ancestor chain of a state from outermost to the state
// itself.
func (c *Chart) path(name string) []string {
	var rev []string
	for cur := name; cur != ""; cur = c.states[cur].parent {
		rev = append(rev, cur)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// qualifiedName renders a leaf configuration as "outer::inner::leaf",
// matching the paper's listings ("noConvoy::default"). A top-level leaf is
// just its own name.
func (c *Chart) qualifiedName(leaf string) string {
	return strings.Join(c.path(leaf), "::")
}

// Clocks returns the clocks used by the chart, sorted.
func (c *Chart) Clocks() []Clock {
	out := make([]Clock, 0, len(c.clocks))
	for cl := range c.clocks {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
