package rtsc

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
)

func TestChartValidation(t *testing.T) {
	c := NewChart("c")
	if err := c.Validate(); err == nil {
		t.Fatal("empty chart accepted")
	}
	c.MustAddState("a", Initial())
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.MustAddState("b", Initial())
	if err := c.Validate(); err == nil {
		t.Fatal("two top-level initial states accepted")
	}
}

func TestChartRejectsBadNames(t *testing.T) {
	c := NewChart("c")
	if err := c.AddState(""); err == nil {
		t.Fatal("empty state name accepted")
	}
	if err := c.AddState("a::b"); err == nil {
		t.Fatal("name containing :: accepted")
	}
	c.MustAddState("a")
	if err := c.AddState("a"); err == nil {
		t.Fatal("duplicate state accepted")
	}
}

func TestChartRejectsUnknownStatesInTransitions(t *testing.T) {
	c := NewChart("c")
	c.MustAddState("a", Initial())
	if err := c.AddTransition("a", "ghost"); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := c.AddTransition("ghost", "a"); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestChartUnknownParent(t *testing.T) {
	c := NewChart("c")
	c.MustAddState("a", Initial(), Parent("ghost"))
	if err := c.Validate(); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestChartCompositeNeedsInitialChild(t *testing.T) {
	c := NewChart("c")
	c.MustAddState("outer", Initial())
	c.MustAddState("inner1", Parent("outer"))
	c.MustAddState("inner2", Parent("outer"))
	if err := c.Validate(); err == nil {
		t.Fatal("composite without initial child accepted")
	}
}

func TestFlattenSimpleProtocol(t *testing.T) {
	c := NewChart("role")
	c.MustAddState("idle", Initial())
	c.MustAddState("busy")
	c.MustAddTransition("idle", "busy", Trigger("req"), Raise("ack"))
	c.MustAddTransition("busy", "idle", Raise("done"))

	a, err := c.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Inputs().Contains("req") {
		t.Fatalf("inputs = %v", a.Inputs())
	}
	if !a.Outputs().Contains("ack") || !a.Outputs().Contains("done") {
		t.Fatalf("outputs = %v", a.Outputs())
	}
	// Two configuration states (no clocks).
	if got := a.NumStates(); got != 2 {
		t.Fatalf("NumStates = %d, want 2", got)
	}
	idle := a.State("idle")
	if idle == automata.NoState {
		t.Fatalf("flattened state names: want plain 'idle'")
	}
	// idle has the triggered transition plus an idle step.
	if got := len(a.TransitionsFrom(idle)); got != 2 {
		t.Fatalf("transitions from idle = %d, want 2", got)
	}
}

func TestFlattenHierarchyNaming(t *testing.T) {
	// Reproduces the "noConvoy::default" naming of the paper's listings.
	c := NewChart("shuttle")
	c.MustAddState("noConvoy", Initial())
	c.MustAddState("default", Initial(), Parent("noConvoy"))
	c.MustAddState("wait", Parent("noConvoy"))
	c.MustAddState("convoy")
	c.MustAddTransition("default", "wait", Raise("convoyProposal"))
	c.MustAddTransition("wait", "convoy", Trigger("startConvoy"))
	c.MustAddTransition("convoy", "noConvoy", Trigger("breakConvoy"))

	a, err := c.Flatten(WithStateLabels())
	if err != nil {
		t.Fatal(err)
	}
	def := a.State("noConvoy::default")
	if def == automata.NoState {
		t.Fatalf("expected state noConvoy::default, have %v", a.Dot())
	}
	// Ancestor labels: the composite's substates carry the composite's
	// proposition, so "shuttle.noConvoy" holds in noConvoy::wait.
	wait := a.State("noConvoy::wait")
	if !a.HasLabel(wait, "shuttle.noConvoy") {
		t.Fatalf("labels of wait = %v", a.Labels(wait))
	}
	if !a.HasLabel(wait, "shuttle.noConvoy::wait") {
		t.Fatalf("missing qualified label: %v", a.Labels(wait))
	}
	// Entering the composite re-enters its initial child.
	convoy := a.State("convoy")
	var reenter bool
	for _, tr := range a.TransitionsFrom(convoy) {
		if tr.Label.In.Contains("breakConvoy") && a.StateName(tr.To) == "noConvoy::default" {
			reenter = true
		}
	}
	if !reenter {
		t.Fatal("transition to composite did not enter its initial leaf")
	}
}

func TestFlattenAncestorTransitions(t *testing.T) {
	// A transition from the composite fires from any of its leaves.
	c := NewChart("c")
	c.MustAddState("grp", Initial())
	c.MustAddState("a", Initial(), Parent("grp"))
	c.MustAddState("b", Parent("grp"))
	c.MustAddState("out")
	c.MustAddTransition("a", "b", Raise("go"))
	c.MustAddTransition("grp", "out", Trigger("abort"))

	a := c.MustFlatten()
	for _, leaf := range []string{"grp::a", "grp::b"} {
		s := a.State(leaf)
		found := false
		for _, tr := range a.TransitionsFrom(s) {
			if tr.Label.In.Contains("abort") && a.StateName(tr.To) == "out" {
				found = true
			}
		}
		if !found {
			t.Fatalf("abort not available from %s", leaf)
		}
	}
}

func TestFlattenClocksAndInvariants(t *testing.T) {
	// A state that must be left within 2 time units (invariant t ≤ 2) and
	// a guard requiring at least 1 unit: the flattened automaton is the
	// timing skeleton of an I/O-interval structure.
	c := NewChart("timer")
	c.MustAddState("wait", Initial(), Invariant("t", CmpLE, 2))
	c.MustAddState("fired")
	c.MustAddTransition("wait", "fired", Guard("t", CmpGE, 1), Raise("fire"), Reset("t"))
	c.MustAddTransition("fired", "fired")

	a, err := c.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// wait@t=0 --idle--> wait@t=1 --idle--> wait@t=2 (invariant edge) and
	// firing available from t=0 (guard t≥1 evaluated *before* the step?
	// No: guard over current valuation; from t=0 guard fails).
	w0 := a.State("wait@t=0")
	if w0 == automata.NoState {
		t.Fatalf("missing wait@t=0; states:\n%s", a.Dot())
	}
	for _, tr := range a.TransitionsFrom(w0) {
		if tr.Label.Out.Contains("fire") {
			t.Fatal("guard t>=1 must not be enabled at t=0")
		}
	}
	w1 := a.State("wait@t=1")
	fireable := false
	for _, tr := range a.TransitionsFrom(w1) {
		if tr.Label.Out.Contains("fire") {
			fireable = true
		}
	}
	if !fireable {
		t.Fatal("guard t>=1 must be enabled at t=1")
	}
	// At t=2 the invariant forbids idling (t would become 3): only the
	// fire transition remains.
	w2 := a.State("wait@t=2")
	if w2 == automata.NoState {
		t.Fatal("missing wait@t=2")
	}
	for _, tr := range a.TransitionsFrom(w2) {
		if tr.Label.Out.IsEmpty() && tr.Label.In.IsEmpty() {
			t.Fatal("idle step allowed although invariant would be violated")
		}
	}
}

func TestFlattenUrgentState(t *testing.T) {
	c := NewChart("u")
	c.MustAddState("s", Initial(), Urgent())
	c.MustAddState("d")
	c.MustAddTransition("s", "d", Raise("now"))
	c.MustAddTransition("d", "d")
	a := c.MustFlatten()
	s := a.State("s")
	for _, tr := range a.TransitionsFrom(s) {
		if tr.Label.In.IsEmpty() && tr.Label.Out.IsEmpty() {
			t.Fatal("urgent state has an idle step")
		}
	}
}

func TestFlattenRejectsTriggerRaiseOverlap(t *testing.T) {
	c := NewChart("c")
	c.MustAddState("a", Initial())
	c.MustAddTransition("a", "a", Trigger("x"), Raise("x"))
	if _, err := c.Flatten(); err == nil {
		t.Fatal("event used as both trigger and raise accepted")
	}
}

func TestFlattenDeterministicTimerBound(t *testing.T) {
	// Model-check a deadline on the flattened chart: with invariant t ≤ 1
	// the fire transition must be taken from t = 1 at the latest, so
	// "fired" is reached at step 2 on every path.
	c := NewChart("timer")
	c.MustAddState("wait", Initial(), Invariant("t", CmpLE, 1))
	c.MustAddState("fired")
	c.MustAddTransition("wait", "fired", Guard("t", CmpGE, 1), Raise("fire"))
	c.MustAddTransition("fired", "fired")
	a := c.MustFlatten(WithStateLabels())

	res := ctl.Check(a, ctl.MustParse("AF[1,2] timer.fired"))
	if !res.Holds {
		t.Fatalf("deadline violated: %+v", res)
	}
	if ctl.Check(a, ctl.MustParse("AF[1,1] timer.fired")).Holds {
		t.Fatal("AF[1,1] should fail (firing may happen at t=2)")
	}
}

func TestConnectorDelivery(t *testing.T) {
	conn := ConnectorSpec{
		Name:   "link",
		Routes: []Route{{Src: "m_snd", Dst: "m_rcv"}},
		Delay:  2,
	}
	a, err := conn.Build()
	if err != nil {
		t.Fatal(err)
	}
	// idle + 2 holding states.
	if got := a.NumStates(); got != 3 {
		t.Fatalf("NumStates = %d, want 3", got)
	}
	idle := a.State("idle")
	var hold automata.StateID = automata.NoState
	for _, tr := range a.TransitionsFrom(idle) {
		if tr.Label.In.Contains("m_snd") {
			hold = tr.To
		}
	}
	if hold == automata.NoState {
		t.Fatal("no accept transition")
	}
	// Exactly delay-1 internal steps then delivery.
	steps := 0
	cur := hold
	for {
		ts := a.TransitionsFrom(cur)
		if len(ts) != 1 {
			t.Fatalf("holding state with %d transitions", len(ts))
		}
		if ts[0].Label.Out.Contains("m_rcv") {
			break
		}
		steps++
		cur = ts[0].To
	}
	if steps != 1 {
		t.Fatalf("internal steps = %d, want 1 (delay 2)", steps)
	}
}

func TestConnectorLossyAndPatient(t *testing.T) {
	a := ConnectorSpec{
		Name:    "lossy",
		Routes:  []Route{{Src: "s", Dst: "d"}},
		Delay:   1,
		Lossy:   true,
		Patient: true,
	}.MustBuild()
	idle := a.State("idle")
	// Lossy: accepting may stay in idle.
	lossDrop := false
	for _, tr := range a.TransitionsFrom(idle) {
		if tr.Label.In.Contains("s") && tr.To == idle {
			lossDrop = true
		}
	}
	if !lossDrop {
		t.Fatal("lossy connector lacks drop transition")
	}
	// Patient: the delivering state has a waiting self-loop.
	holding := a.State("holding_s_1")
	wait := false
	for _, tr := range a.TransitionsFrom(holding) {
		if tr.To == holding && tr.Label.In.IsEmpty() && tr.Label.Out.IsEmpty() {
			wait = true
		}
	}
	if !wait {
		t.Fatal("patient connector lacks waiting self-loop")
	}
}

func TestConnectorValidation(t *testing.T) {
	if _, err := (ConnectorSpec{Name: "c", Routes: []Route{{Src: "a", Dst: "b"}}, Delay: 0}).Build(); err == nil {
		t.Fatal("zero delay accepted")
	}
	if _, err := (ConnectorSpec{Name: "c", Delay: 1}).Build(); err == nil {
		t.Fatal("no routes accepted")
	}
	if _, err := (ConnectorSpec{Name: "c", Routes: []Route{{Src: "a", Dst: "a"}}, Delay: 1}).Build(); err == nil {
		t.Fatal("non-renaming route accepted")
	}
}

func TestQualifiedNameRendering(t *testing.T) {
	c := NewChart("x")
	c.MustAddState("outer", Initial())
	c.MustAddState("mid", Initial(), Parent("outer"))
	c.MustAddState("leaf", Initial(), Parent("mid"))
	if got := c.qualifiedName("leaf"); got != "outer::mid::leaf" {
		t.Fatalf("qualifiedName = %q", got)
	}
	if !strings.HasPrefix(c.qualifiedName("outer"), "outer") {
		t.Fatal("top-level name broken")
	}
}

func TestClocksSorted(t *testing.T) {
	c := NewChart("c")
	c.MustAddState("a", Initial(), Invariant("z", CmpLE, 1))
	c.MustAddTransition("a", "a", Guard("b", CmpGE, 1), Reset("m"))
	got := c.Clocks()
	if len(got) != 3 || got[0] != "b" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("Clocks = %v", got)
	}
}
