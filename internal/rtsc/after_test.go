package rtsc

import (
	"testing"

	"muml/internal/ctl"
)

func TestAfterDelaysTransition(t *testing.T) {
	// blink: on -- after(3) --> off -- after(2) --> on.
	c := NewChart("blink")
	c.MustAddState("on", Initial())
	c.MustAddState("off")
	c.MustAddTransition("on", "off", After(3), Raise("dim"))
	c.MustAddTransition("off", "on", After(2), Raise("wake"))

	a, err := c.Flatten(WithStateLabels())
	if err != nil {
		t.Fatal(err)
	}
	checker := ctl.NewChecker(a)
	// The first dim can happen no earlier than step 3 and no later than it
	// is enabled forever (no invariant): it *may* happen at exactly 3.
	if checker.Holds(ctl.MustParse("AG[0,2] blink.off")) {
		t.Fatal("off reachable too early?")
	}
	if !checker.Holds(ctl.MustParse("AG[0,2] blink.on")) {
		t.Fatalf("off reached before after(3) elapsed:\n%s", a.Dot())
	}
	if !checker.Holds(ctl.MustParse("E<> blink.off")) {
		t.Fatal("off never reached")
	}
}

func TestAfterWithDeadlineInvariant(t *testing.T) {
	// after(2) plus invariant @on ≤ 2 forces the guard to fire from
	// @on = 2, so off is entered at exactly step 3 (the firing transition
	// itself consumes one time unit).
	c := NewChart("strict")
	c.MustAddState("on", Initial(), Invariant("@on", CmpLE, 2))
	c.MustAddState("off")
	c.MustAddTransition("on", "off", After(2), Raise("dim"))
	c.MustAddTransition("off", "off")

	a, err := c.Flatten(WithStateLabels())
	if err != nil {
		t.Fatal(err)
	}
	checker := ctl.NewChecker(a)
	if !checker.Holds(ctl.MustParse("AF[3,3] strict.off")) {
		t.Fatalf("switch not forced at exactly 2:\n%s", a.Dot())
	}
	if !checker.Holds(ctl.NoDeadlock()) {
		t.Fatal("strict chart deadlocked")
	}
}

func TestAfterEntryClockResetOnReentry(t *testing.T) {
	// The delay applies per visit: entering on again restarts the count.
	c := NewChart("cycle")
	c.MustAddState("on", Initial(), Invariant("@on", CmpLE, 2))
	c.MustAddState("off", Invariant("@off", CmpLE, 1))
	c.MustAddTransition("on", "off", After(2), Raise("dim"))
	c.MustAddTransition("off", "on", After(1), Raise("wake"))

	a, err := c.Flatten(WithStateLabels())
	if err != nil {
		t.Fatal(err)
	}
	checker := ctl.NewChecker(a)
	// Strict alternation: on occupies 3 steps (fires from @on=2), off
	// occupies 2 steps (fires from @off=1) — a period of 5.
	if !checker.Holds(ctl.MustParse("AG (cycle.off -> AF[5,5] cycle.off)")) {
		t.Fatalf("re-entry did not restart the after clock:\n%s", a.Dot())
	}
	if !checker.Holds(ctl.NoDeadlock()) {
		t.Fatal("cycle deadlocked")
	}
}

func TestAfterInternalTransitionsKeepClock(t *testing.T) {
	// A composite with an internal child switch: the after(3) exit from
	// the composite counts from entering the composite, not from the
	// internal move.
	c := NewChart("comp")
	c.MustAddState("grp", Initial(), Invariant("@grp", CmpLE, 3))
	c.MustAddState("a", Initial(), Parent("grp"))
	c.MustAddState("b", Parent("grp"))
	c.MustAddState("out")
	c.MustAddTransition("a", "b", Raise("inner"))
	c.MustAddTransition("grp", "out", After(3), Raise("exit"))
	c.MustAddTransition("out", "out")

	a, err := c.Flatten(WithStateLabels())
	if err != nil {
		t.Fatal(err)
	}
	checker := ctl.NewChecker(a)
	// Regardless of the internal a→b move, the exit fires from @grp=3 on
	// every path (invariant forces it, after() delays it), entering out
	// at step 4.
	if !checker.Holds(ctl.MustParse("AF[4,4] comp.out")) {
		t.Fatalf("internal transition disturbed the after clock:\n%s", a.Dot())
	}
}
