package rtsc

import (
	"fmt"
	"sort"
	"strings"

	"muml/internal/automata"
)

// FlattenOption configures Flatten.
type FlattenOption interface{ applyFlatten(*flattenConfig) }

type flattenOptionFunc func(*flattenConfig)

func (f flattenOptionFunc) applyFlatten(c *flattenConfig) { f(c) }

type flattenConfig struct {
	labelStates bool
	clockCap    int
}

// WithStateLabels labels every flattened state with "chart.state"
// propositions for the leaf and each of its ancestors, so pattern
// constraints such as "frontRole.noConvoy" apply to all substates of
// noConvoy.
func WithStateLabels() FlattenOption {
	return flattenOptionFunc(func(c *flattenConfig) { c.labelStates = true })
}

// WithClockCap overrides the automatic clock value cap (default: one above
// the largest constant the clock is compared against).
func WithClockCap(cap int) FlattenOption {
	return flattenOptionFunc(func(c *flattenConfig) { c.clockCap = cap })
}

// Flatten maps the statechart to a discrete-time I/O automaton:
//
//   - automaton states are pairs (leaf configuration, clock valuation),
//     named "outer::leaf" or "outer::leaf@c=2" when clocks are present;
//   - every automaton transition consumes one time unit: firing a chart
//     transition consumes its trigger (input), produces its raised events
//     (outputs), resets its clocks, and advances all other clocks by one;
//   - an idle step (no I/O) advances all clocks by one and is available
//     unless the state is urgent or the invariant would be violated;
//   - transitions inherited from ancestor states fire from any descendant
//     leaf; composite targets are entered down to their initial leaves;
//   - clock values are capped at one above the largest compared constant
//     (larger values are indistinguishable), keeping the automaton finite.
//
// The input alphabet is the set of trigger events; the output alphabet the
// set of raised events.
func (c *Chart) Flatten(opts ...FlattenOption) (*automata.Automaton, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cfg := flattenConfig{clockCap: -1}
	for _, o := range opts {
		o.applyFlatten(&cfg)
	}

	c.expandAfter()
	clocks := c.Clocks()
	caps := c.clockCaps(clocks, cfg.clockCap)

	var inputs, outputs []automata.Signal
	for _, t := range c.trans {
		if t.Trigger != "" {
			inputs = append(inputs, t.Trigger)
		}
		outputs = append(outputs, t.Raise...)
	}
	a := automata.New(c.name, automata.NewSignalSet(inputs...), automata.NewSignalSet(outputs...))
	if !a.Inputs().Disjoint(a.Outputs()) {
		return nil, fmt.Errorf("rtsc: %q: events %v are both triggered and raised",
			c.name, a.Inputs().Intersect(a.Outputs()))
	}

	type config struct {
		leaf string
		val  string // canonical clock valuation key
	}
	ids := make(map[config]automata.StateID)
	var queue []struct {
		cfg config
		v   map[Clock]int
	}

	addConfig := func(leaf string, v map[Clock]int) automata.StateID {
		key := config{leaf: leaf, val: valKey(clocks, v)}
		if id, ok := ids[key]; ok {
			return id
		}
		name := c.qualifiedName(leaf)
		if len(clocks) > 0 {
			name += "@" + key.val
		}
		var labels []automata.Proposition
		if cfg.labelStates {
			for _, anc := range c.path(leaf) {
				labels = append(labels, automata.Proposition(c.name+"."+anc))
			}
			labels = append(labels, automata.Proposition(c.name+"."+c.qualifiedName(leaf)))
			labels = dedupe(labels)
		}
		id := a.MustAddState(name, labels...)
		ids[key] = id
		queue = append(queue, struct {
			cfg config
			v   map[Clock]int
		}{key, cloneVal(v)})
		return id
	}

	initLeafTop, err := c.initialChild("")
	if err != nil {
		return nil, err
	}
	initLeaf, err := c.leafOf(initLeafTop)
	if err != nil {
		return nil, err
	}
	initVal := make(map[Clock]int, len(clocks))
	a.MarkInitial(addConfig(initLeaf, initVal))

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		from := ids[cur.cfg]
		leaf := cur.cfg.leaf
		v := cur.v

		ancestors := make(map[string]bool)
		for _, anc := range c.path(leaf) {
			ancestors[anc] = true
		}

		// Chart transitions applicable at this leaf.
		for _, t := range c.trans {
			if !ancestors[t.From] {
				continue
			}
			if !allHold(t.Guard, v) {
				continue
			}
			targetLeaf, err := c.leafOf(t.To)
			if err != nil {
				return nil, err
			}
			next := advance(clocks, v, caps, t.Resets)
			if !c.invariantHolds(targetLeaf, next) {
				continue
			}
			label := automata.Interaction{Out: automata.NewSignalSet(t.Raise...)}
			if t.Trigger != "" {
				label.In = automata.NewSignalSet(t.Trigger)
			}
			to := addConfig(targetLeaf, next)
			// Two chart transitions may flatten to the same automaton
			// transition (e.g. from different ancestors); ignore dupes.
			_ = a.AddTransition(from, label, to)
		}

		// Idle step.
		if !c.states[leaf].urgent && !c.anyAncestorUrgent(leaf) {
			next := advance(clocks, v, caps, nil)
			if c.invariantHolds(leaf, next) {
				to := addConfig(leaf, next)
				_ = a.AddTransition(from, automata.Interaction{}, to)
			}
		}
	}
	return a, nil
}

// MustFlatten is Flatten but panics on error.
func (c *Chart) MustFlatten(opts ...FlattenOption) *automata.Automaton {
	a, err := c.Flatten(opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// expandAfter rewrites every After(d) annotation into a guard over an
// implicit per-source-state clock ("@<state>") that is reset by every
// transition entering the source state (directly, via an ancestor target
// whose initial descent passes through it, or via a descendant target).
// Idempotent: After fields are cleared once expanded.
func (c *Chart) expandAfter() {
	type need struct{ state string }
	var needed []need
	for i := range c.trans {
		if c.trans[i].After > 0 {
			needed = append(needed, need{state: c.trans[i].From})
		}
	}
	if len(needed) == 0 {
		return
	}
	entryClock := func(state string) Clock { return Clock("@" + state) }

	// Ensure children lists are current for leafOf/path.
	if err := c.Validate(); err != nil {
		// Flatten will surface the validation error; leave charts as-is.
		return
	}
	for _, n := range needed {
		clock := entryClock(n.state)
		c.clocks[clock] = struct{}{}
		for i := range c.trans {
			t := &c.trans[i]
			if t.After > 0 && t.From == n.state {
				t.Guard = append(t.Guard, Constraint{Clock: clock, Op: CmpGE, Bound: t.After})
			}
			// Reset the entry clock whenever the transition *enters* the
			// annotated state: its target configuration passes through
			// the state and its source lies outside (or it is an explicit
			// self-transition on the state, which per UML semantics exits
			// and re-enters). Transitions between descendants of the
			// state are internal and keep the clock running.
			leaf, err := c.leafOf(t.To)
			if err != nil {
				continue
			}
			entersTarget := false
			for _, anc := range c.path(leaf) {
				if anc == n.state {
					entersTarget = true
				}
			}
			if !entersTarget {
				continue
			}
			sourceInside := false
			for _, anc := range c.path(t.From) {
				if anc == n.state {
					sourceInside = true
				}
			}
			if !sourceInside || t.From == n.state {
				t.Resets = append(t.Resets, clock)
			}
		}
	}
	for i := range c.trans {
		c.trans[i].After = 0
	}
}

// invariantHolds checks the invariants of the leaf and all its ancestors.
func (c *Chart) invariantHolds(leaf string, v map[Clock]int) bool {
	for _, anc := range c.path(leaf) {
		if !allHold(c.states[anc].invariant, v) {
			return false
		}
	}
	return true
}

func (c *Chart) anyAncestorUrgent(leaf string) bool {
	for _, anc := range c.path(leaf) {
		if c.states[anc].urgent {
			return true
		}
	}
	return false
}

// clockCaps computes, per clock, the cap beyond which values are
// indistinguishable: one above the largest constant it is compared to.
func (c *Chart) clockCaps(clocks []Clock, override int) map[Clock]int {
	caps := make(map[Clock]int, len(clocks))
	for _, cl := range clocks {
		caps[cl] = 0
	}
	consider := func(cs []Constraint) {
		for _, con := range cs {
			if con.Bound > caps[con.Clock] {
				caps[con.Clock] = con.Bound
			}
		}
	}
	for _, t := range c.trans {
		consider(t.Guard)
	}
	for _, name := range c.order {
		consider(c.states[name].invariant)
	}
	for _, cl := range clocks {
		caps[cl]++
		if override >= 0 {
			caps[cl] = override
		}
	}
	return caps
}

func allHold(cs []Constraint, v map[Clock]int) bool {
	for _, con := range cs {
		if !con.holds(v) {
			return false
		}
	}
	return true
}

// advance returns the valuation after one time unit with the given resets
// applied (resets win over the increment: a reset clock reads 0 in the
// target state).
func advance(clocks []Clock, v map[Clock]int, caps map[Clock]int, resets []Clock) map[Clock]int {
	next := make(map[Clock]int, len(clocks))
	for _, cl := range clocks {
		val := v[cl] + 1
		if val > caps[cl] {
			val = caps[cl]
		}
		next[cl] = val
	}
	for _, cl := range resets {
		next[cl] = 0
	}
	return next
}

func cloneVal(v map[Clock]int) map[Clock]int {
	out := make(map[Clock]int, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

func valKey(clocks []Clock, v map[Clock]int) string {
	parts := make([]string, len(clocks))
	for i, cl := range clocks {
		parts[i] = fmt.Sprintf("%s=%d", cl, v[cl])
	}
	return strings.Join(parts, ",")
}

func dedupe(ps []automata.Proposition) []automata.Proposition {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
