package rtsc

import (
	"fmt"

	"muml/internal/automata"
)

// Route describes one message type carried by a connector: it is consumed
// under the source name and delivered under the destination name. Distinct
// names are required because the connector's input and output alphabets
// must be disjoint.
type Route struct {
	Src automata.Signal
	Dst automata.Signal
}

// ConnectorSpec describes the QoS characteristics of a connector (channel)
// between two roles. Per Section 2 of the paper, connectors are modeled as
// explicit automata so that channel delay and reliability take part in
// verification.
type ConnectorSpec struct {
	// Name of the connector component.
	Name string
	// Routes carried by the connector (capacity is one message in flight).
	Routes []Route
	// Delay in time units between the send step and the delivery step.
	// Must be at least 1: synchronous (zero-delay) communication is
	// expressed by composing the roles directly without a connector.
	Delay int
	// Lossy adds a nondeterministic alternative in which an accepted
	// message is dropped instead of delivered.
	Lossy bool
	// Patient allows the connector to postpone delivery beyond Delay
	// (modeling a channel with a lower bound only). Without it the
	// delivery must be taken exactly after Delay units, and a receiver
	// unable to take it blocks the channel (visible as a deadlock).
	Patient bool
}

// Build generates the connector automaton: an idle state plus one state
// per (route, remaining units) pair. The connector accepts at most one
// message at a time; sends arriving while a message is in flight are
// refused (the sender blocks), which is the capacity-one channel of the
// paper's example protocols.
func (spec ConnectorSpec) Build() (*automata.Automaton, error) {
	if spec.Delay < 1 {
		return nil, fmt.Errorf("rtsc: connector %q: delay must be ≥ 1", spec.Name)
	}
	if len(spec.Routes) == 0 {
		return nil, fmt.Errorf("rtsc: connector %q: no routes", spec.Name)
	}
	var ins, outs []automata.Signal
	for _, r := range spec.Routes {
		if r.Src == r.Dst {
			return nil, fmt.Errorf("rtsc: connector %q: route %q must rename the signal", spec.Name, r.Src)
		}
		ins = append(ins, r.Src)
		outs = append(outs, r.Dst)
	}
	a := automata.New(spec.Name, automata.NewSignalSet(ins...), automata.NewSignalSet(outs...))
	if err := validateAlphabets(a, spec.Name); err != nil {
		return nil, err
	}

	idle := a.MustAddState("idle")
	a.MarkInitial(idle)
	a.MustAddTransition(idle, automata.Interaction{}, idle)

	for _, r := range spec.Routes {
		accept := automata.Interaction{In: automata.NewSignalSet(r.Src)}
		deliver := automata.Interaction{Out: automata.NewSignalSet(r.Dst)}

		// holding states: remaining = Delay .. 1.
		prev := idle
		for remaining := spec.Delay; remaining >= 1; remaining-- {
			name := fmt.Sprintf("holding_%s_%d", r.Src, remaining)
			st := a.MustAddState(name)
			if remaining == spec.Delay {
				a.MustAddTransition(idle, accept, st)
				if spec.Lossy {
					// The message may be dropped on acceptance.
					_ = a.AddTransition(idle, accept, idle)
				}
			} else {
				a.MustAddTransition(prev, automata.Interaction{}, st)
			}
			prev = st
		}
		a.MustAddTransition(prev, deliver, idle)
		if spec.Patient {
			a.MustAddTransition(prev, automata.Interaction{}, prev)
		}
	}
	return a, nil
}

// MustBuild is Build but panics on error.
func (spec ConnectorSpec) MustBuild() *automata.Automaton {
	a, err := spec.Build()
	if err != nil {
		panic(err)
	}
	return a
}

func validateAlphabets(a *automata.Automaton, name string) error {
	if !a.Inputs().Disjoint(a.Outputs()) {
		return fmt.Errorf("rtsc: connector %q: source and destination signals overlap: %v",
			name, a.Inputs().Intersect(a.Outputs()))
	}
	return nil
}
