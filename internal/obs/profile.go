package obs

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling hooks: opt-in runtime/pprof capture plus per-phase pprof
// labels, so CPU samples of a long sweep attribute to the loop phase
// (compose / check / replay / probe) they were taken in and flamegraphs
// stay readable across hundreds of iterations.

// StartCPUProfile begins writing a CPU profile to the file and returns a
// stop function that finishes the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures a heap profile (after a GC, so the live set is
// accurate) to the file.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// WithPhase runs f with the pprof label phase=name attached to the
// goroutine, so profile samples taken inside attribute to the phase.
func WithPhase(name string, f func() error) error {
	var err error
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) {
		err = f()
	})
	return err
}
