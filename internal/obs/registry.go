package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the span/counter half of the subsystem: a Registry
// of named instruments, each nil-safe so that uninstrumented code paths
// pay only a nil check. Instruments are hierarchical by naming convention:
// dotted prefixes group related measures ("ctl.fixpoint_iters",
// "core.check") and the rendered table sorts by full name, so a snapshot
// reads as a tree.

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Safe on a nil counter and from concurrent
// goroutines.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value (heap bytes, goroutine count,
// an overload flag) — unlike MaxGauge it moves in both directions. The
// zero value is ready to use; a nil *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value. Safe on a nil gauge and from concurrent
// goroutines.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// MaxGauge tracks the maximum value observed. A nil *MaxGauge discards
// updates.
type MaxGauge struct {
	v atomic.Int64
}

// Observe raises the gauge to n if n exceeds the current maximum.
func (g *MaxGauge) Observe(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the maximum observed so far (0 for a nil gauge).
func (g *MaxGauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates wall-clock durations of a repeated span: total time
// and observation count. A nil *Timer discards updates.
type Timer struct {
	count   atomic.Int64
	totalNS atomic.Int64
}

// Observe adds one measured duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.totalNS.Add(d.Nanoseconds())
}

// Span starts a measurement; call the returned func to record the elapsed
// time. On a nil timer the returned func is a no-op and no clock is read.
func (t *Timer) Span() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.totalNS.Load())
}

// Registry is an expvar-style namespace of counters, max-gauges, and
// timers. Instruments are created on first lookup and live for the
// registry's lifetime; hot paths fetch their instrument once and then
// update it lock-free. A nil *Registry hands out nil instruments, so an
// uninstrumented stack composes without branches at the call sites.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*MaxGauge
	levels     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*MaxGauge),
		levels:     make(map[string]*Gauge),
		timers:     make(map[string]*Timer),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// MaxGauge returns the named max-gauge, creating it if needed.
func (r *Registry) MaxGauge(name string) *MaxGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &MaxGauge{}
		r.gauges[name] = g
	}
	return g
}

// Gauge returns the named settable gauge, creating it if needed (nil on a
// nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.levels[name]
	if !ok {
		g = &Gauge{}
		r.levels[name] = g
	}
	return g
}

// Timer returns the named timer, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it if needed (nil on a
// nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Metric is one instrument's snapshot value.
type Metric struct {
	Name string `json:"name"`
	// Kind is "counter", "gauge", "max", "timer", or "histogram".
	Kind  string `json:"kind"`
	Value int64  `json:"value"` // count for counters/timers/histograms, level for gauges
	// TotalNS is the accumulated duration (timers and histograms only).
	TotalNS int64 `json:"total_ns,omitempty"`
	// Buckets holds per-bucket observation counts (histograms only), the
	// last entry being the overflow bucket; boundaries are the package-wide
	// HistogramBounds.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's current value, sorted by name then
// kind — a total, deterministic order, which the Prometheus renderer's
// first-wins collision handling relies on. Safe on a nil registry
// (returns nil).
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.levels)+len(r.timers)+len(r.histograms))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "max", Value: g.Value()})
	}
	for name, g := range r.levels {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, t := range r.timers {
		out = append(out, Metric{Name: name, Kind: "timer", Value: t.Count(), TotalNS: t.Total().Nanoseconds()})
	}
	for name, h := range r.histograms {
		buckets := h.Buckets()
		var count int64
		for _, c := range buckets {
			count += c
		}
		out = append(out, Metric{Name: name, Kind: "histogram", Value: count, TotalNS: h.SumNS(), Buckets: buckets})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// RenderTable formats the snapshot as an aligned summary table (the
// -metrics flag output).
func (r *Registry) RenderTable() string {
	snap := r.Snapshot()
	if len(snap) == 0 {
		return "(no metrics recorded)\n"
	}
	width := 0
	for _, m := range snap {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	var b strings.Builder
	for _, m := range snap {
		switch m.Kind {
		case "histogram":
			total := time.Duration(m.TotalNS).Round(time.Microsecond)
			p50 := time.Duration(HistogramQuantile(m.Buckets, 50)).Round(time.Microsecond)
			p99 := time.Duration(HistogramQuantile(m.Buckets, 99)).Round(time.Microsecond)
			fmt.Fprintf(&b, "%-*s  %10d obs    total %-12s p50≤%s p99≤%s\n", width, m.Name, m.Value, total, p50, p99)
		case "timer":
			total := time.Duration(m.TotalNS).Round(time.Microsecond)
			avg := time.Duration(0)
			if m.Value > 0 {
				avg = time.Duration(m.TotalNS / m.Value).Round(time.Microsecond)
			}
			fmt.Fprintf(&b, "%-*s  %10d spans  total %-12s avg %s\n", width, m.Name, m.Value, total, avg)
		case "max":
			fmt.Fprintf(&b, "%-*s  %10d (max)\n", width, m.Name, m.Value)
		case "gauge":
			fmt.Fprintf(&b, "%-*s  %10d (gauge)\n", width, m.Name, m.Value)
		default:
			fmt.Fprintf(&b, "%-*s  %10d\n", width, m.Name, m.Value)
		}
	}
	return b.String()
}
