package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Tests for the observability plane: trace/span validation, the
// Prometheus exposition, the Chrome trace export, and journal analytics.

func TestValidateJSONLSpanInvariants(t *testing.T) {
	bad := map[string]string{
		"span is its own parent": `{"seq":1,"kind":"iteration_start","iter":0,"trace":"r","span":3,"parent":3}`,
		"duplicate span": `{"seq":1,"kind":"iteration_start","iter":0,"trace":"r","span":3}` + "\n" +
			`{"seq":2,"kind":"iteration_start","iter":1,"trace":"r","span":3}`,
		"parent never opened": `{"seq":1,"kind":"check_result","iter":0,"trace":"r","parent":9}`,
		"trace differs from parent": `{"seq":1,"kind":"iteration_start","iter":0,"trace":"r","span":3}` + "\n" +
			`{"seq":2,"kind":"check_result","iter":0,"trace":"other","parent":3}`,
		"timestamp runs backwards": `{"seq":1,"kind":"note","iter":-1,"t_ns":100}` + "\n" +
			`{"seq":2,"kind":"note","iter":-1,"t_ns":99}`,
		"negative timestamp": `{"seq":1,"kind":"note","iter":-1,"t_ns":-1}`,
	}
	for name, journal := range bad {
		if _, err := ValidateJSONL(strings.NewReader(journal)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}

	// Violations must name the first offending sequence number so
	// obscheck can pinpoint the record.
	_, err := ValidateJSONL(strings.NewReader(
		`{"seq":1,"kind":"iteration_start","iter":0,"trace":"r","span":3}` + "\n" +
			`{"seq":5,"kind":"check_result","iter":0,"trace":"r","parent":8}`))
	if err == nil || !strings.Contains(err.Error(), "seq 5") {
		t.Errorf("violation does not name the offending seq: %v", err)
	}

	good := `{"seq":1,"kind":"batch_start","iter":-1,"trace":"batch","span":1,"t_ns":10}` + "\n" +
		`{"seq":2,"kind":"iteration_start","iter":0,"trace":"run","span":2,"t_ns":20}` + "\n" +
		`{"seq":3,"kind":"check_result","iter":0,"trace":"run","parent":2,"dur_ns":5,"t_ns":30}` + "\n" +
		`{"seq":4,"kind":"cex_classified","iter":0,"trace":"run","span":3,"parent":2,"t_ns":40}` + "\n" +
		`{"seq":5,"kind":"replay_step","iter":0,"trace":"run","parent":3,"t_ns":50}` + "\n" +
		`{"seq":6,"kind":"instance_done","iter":-1,"trace":"batch","parent":1,"dur_ns":7,"t_ns":60}` + "\n"
	if n, err := ValidateJSONL(strings.NewReader(good)); err != nil || n != 6 {
		t.Errorf("valid span tree: n=%d err=%v", n, err)
	}
}

func TestJournalStampsSpansAndTimestamps(t *testing.T) {
	var sink MemorySink
	j := NewJournal(&sink)
	if s1, s2 := j.NewSpan(), j.NewSpan(); s1 == 0 || s2 == 0 || s1 == s2 {
		t.Fatalf("NewSpan gave %d then %d, want distinct non-zero IDs", s1, s2)
	}
	j.Emit(Event{Kind: KindNote, Iter: -1})
	time.Sleep(time.Millisecond)
	j.Emit(Event{Kind: KindNote, Iter: -1})
	events := sink.Events()
	if events[0].TNS <= 0 || events[1].TNS <= events[0].TNS {
		t.Fatalf("emission timestamps not strictly advancing: %d then %d", events[0].TNS, events[1].TNS)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("batch.instances").Add(64)
	r.MaxGauge("ctl.peak_states").Observe(1024)
	r.Timer("core.check").Observe(1500 * time.Millisecond)
	r.Timer("core.check").Observe(500 * time.Millisecond)
	r.Histogram("core.check").Observe(1500 * time.Millisecond)
	r.Histogram("core.check").Observe(500 * time.Millisecond)
	// Sanitize collision: both flatten to muml_a_b_total; "a.b" sorts
	// before "a_b" ('.' < '_'), so the first claims the family and the
	// second is skipped entirely.
	r.Counter("a.b").Add(1)
	r.Counter("a_b").Add(2)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	want.WriteString(`# TYPE muml_a_b_total counter
muml_a_b_total 1
# TYPE muml_batch_instances_total counter
muml_batch_instances_total 64
# TYPE muml_core_check_ns histogram
`)
	// 500ms and 1500ms land in the buckets bounded by 2^29 and 2^31 ns.
	var cum int64
	for _, bound := range HistogramBounds {
		if bound >= 500*1000*1000 && cum == 0 {
			cum = 1
		}
		if bound >= 1500*1000*1000 && cum == 1 {
			cum = 2
		}
		fmt.Fprintf(&want, "muml_core_check_ns_bucket{le=\"%d\"} %d\n", bound, cum)
	}
	want.WriteString(`muml_core_check_ns_bucket{le="+Inf"} 2
muml_core_check_ns_sum 2000000000
muml_core_check_ns_count 2
# TYPE muml_core_check_spans_total counter
muml_core_check_spans_total 2
# TYPE muml_core_check_seconds_total counter
muml_core_check_seconds_total 2
# TYPE muml_ctl_peak_states_max gauge
muml_ctl_peak_states_max 1024
`)
	if got := buf.String(); got != want.String() {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want.String())
	}

	// Empty and nil snapshots are valid (empty) expositions.
	buf.Reset()
	if err := WritePrometheus(&buf, nil); err != nil || buf.Len() != 0 {
		t.Errorf("nil snapshot: err=%v out=%q", err, buf.String())
	}
}

func TestWriteChromeTraceSchema(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindIterationStart, Iter: 0, Trace: "run", Span: 2, TNS: 1000},
		{Seq: 2, Kind: KindCheckResult, Iter: 0, Trace: "run", Parent: 2, DurNS: 4000, TNS: 6000,
			N: map[string]int64{"property_holds": 1}},
		{Seq: 3, Kind: KindInstanceDone, Iter: -1, Trace: "batch", Parent: 1, DurNS: 2000, TNS: 9000,
			N: map[string]int64{"worker": 3}, S: map[string]string{"name": "gen-1", "listing": "a\nb"}},
		{Seq: 4, Kind: KindNote, Iter: -1}, // unstamped legacy event
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}

	// The export must round-trip as the documented JSON object format.
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.Unit)
	}

	phases := map[string]int{}
	for _, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		switch ph {
		case "M":
			continue
		case "X":
			if ev["dur"].(float64) <= 0 {
				t.Errorf("complete event without duration: %v", ev)
			}
		case "i":
			if ev["s"] != "t" {
				t.Errorf("instant event without thread scope: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
		if ts := ev["ts"].(float64); ts < 0 {
			t.Errorf("negative timestamp %v in %v", ts, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("event without pid: %v", ev)
		}
	}
	// Two distinct traces plus the untraced note → three process_name
	// metadata records; one X slice per duration event, instants for the
	// rest.
	if phases["M"] != 3 || phases["X"] != 2 || phases["i"] != 2 {
		t.Errorf("phase counts %v, want M:3 X:2 i:2", phases)
	}

	// The check_result slice must start at t_ns-dur_ns and the worker
	// thread must carry instance_done.
	var sawCheck, sawInstance bool
	for _, ev := range file.TraceEvents {
		switch ev["name"] {
		case "check_result":
			sawCheck = true
			if ev["ts"].(float64) != 2.0 { // (6000-4000)ns = 2µs
				t.Errorf("check_result ts = %v, want 2", ev["ts"])
			}
		case "instance_done":
			sawInstance = true
			if ev["tid"].(float64) != 4 { // worker 3 → tid 4
				t.Errorf("instance_done tid = %v, want 4", ev["tid"])
			}
			args := ev["args"].(map[string]any)
			if args["name"] != "gen-1" {
				t.Errorf("instance_done args missing name: %v", args)
			}
			if _, ok := args["listing"]; ok {
				t.Errorf("multi-line string leaked into trace args: %v", args)
			}
		}
	}
	if !sawCheck || !sawInstance {
		t.Fatalf("missing slices: check=%v instance=%v", sawCheck, sawInstance)
	}
}

func TestAnalyzePhases(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: KindIterationStart, Iter: 0, Trace: "run"},
		{Seq: 2, Kind: KindProductRebuilt, Iter: 0, Trace: "run", DurNS: 100},
		{Seq: 3, Kind: KindClosurePatched, Iter: 0, Trace: "run", DurNS: 300},
		{Seq: 4, Kind: KindCheckResult, Iter: 0, Trace: "run", DurNS: 1000},
		{Seq: 5, Kind: KindIterationStart, Iter: 1, Trace: "run"},
		{Seq: 6, Kind: KindCheckResult, Iter: 1, Trace: "run", DurNS: 3000},
		{Seq: 7, Kind: KindVerdict, Iter: 1, Trace: "run", S: map[string]string{"verdict": "proven"}},
		{Seq: 8, Kind: KindInstanceDone, Iter: -1, Trace: "batch", DurNS: 9000,
			S: map[string]string{"name": "alpha", "verdict": "proven"}},
		{Seq: 9, Kind: KindInstanceDone, Iter: -1, Trace: "batch", DurNS: 5000,
			S: map[string]string{"name": "beta", "verdict": "violation"}},
		{Seq: 10, Kind: KindInstanceDone, Iter: -1, Trace: "batch", DurNS: 1000,
			S: map[string]string{"name": "gamma"}},
	}
	s := Analyze(events, 2)
	if s.Events != 10 || s.Iterations != 2 || s.Traces != 2 {
		t.Fatalf("events=%d iterations=%d traces=%d", s.Events, s.Iterations, s.Traces)
	}
	compose := s.Phases["compose"]
	if compose.Count != 2 || compose.TotalNS != 400 || compose.MinNS != 100 || compose.MaxNS != 300 {
		t.Errorf("compose stats %+v", compose)
	}
	check := s.Phases["check"]
	if check.P50NS != 1000 || check.P99NS != 3000 {
		t.Errorf("check percentiles %+v", check)
	}
	if s.Verdicts["proven"] != 2 || s.Verdicts["violation"] != 1 || s.Verdicts["error"] != 1 {
		t.Errorf("verdicts %v", s.Verdicts)
	}
	if len(s.Slowest) != 2 || s.Slowest[0].Name != "alpha" || s.Slowest[1].Name != "beta" {
		t.Errorf("slowest %v", s.Slowest)
	}

	var buf bytes.Buffer
	s.RenderText(&buf)
	for _, want := range []string{"compose", "check", "proven 2", "alpha", "instance_done"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report misses %q:\n%s", want, buf.String())
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    int
		want int64
	}{{50, 50}, {90, 90}, {99, 100}, {100, 100}, {1, 10}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("p%d = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile([]int64{42}, 99); got != 42 {
		t.Errorf("singleton p99 = %d", got)
	}
}

func TestDiffText(t *testing.T) {
	a := Analyze([]Event{
		{Seq: 1, Kind: KindCheckResult, Iter: 0, DurNS: 1000},
		{Seq: 2, Kind: KindVerdict, Iter: 0, S: map[string]string{"verdict": "proven"}},
	}, 5)
	b := Analyze([]Event{
		{Seq: 1, Kind: KindCheckResult, Iter: 0, DurNS: 2000},
		{Seq: 2, Kind: KindVerdict, Iter: 0, S: map[string]string{"verdict": "violation"}},
	}, 5)
	var buf bytes.Buffer
	DiffText(&buf, a, b)
	out := buf.String()
	for _, want := range []string{"check", "2.00x", "CHANGED", "proven 1→0", "violation 0→1"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff misses %q:\n%s", want, out)
		}
	}
}
