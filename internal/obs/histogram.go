package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// This file implements the live latency-distribution half of the metrics
// registry: a fixed-bucket histogram with log-spaced (power-of-two)
// nanosecond boundaries and one atomic counter per bucket. Timers answer
// "how much total time, how many spans"; histograms answer "what is p99
// right now" — the question a long-running verification service gets
// asked by its operators. The bucket boundaries are shared with the
// offline journal analytics (analyze.go), so a live /metrics quantile and
// a journalstat percentile over the same run land in the same bucket.

// histMinExp/histMaxExp bound the bucket ladder: the first bucket covers
// everything up to 2^histMinExp ns (~1µs, below the resolution anything
// in the synthesis loop cares about), the last finite boundary is
// 2^histMaxExp ns (~69s, past every per-instance deadline in use);
// slower observations land in the overflow bucket.
const (
	histMinExp = 10 // 2^10 ns = 1.024µs
	histMaxExp = 36 // 2^36 ns ≈ 68.7s
)

// HistogramBounds are the inclusive upper bounds of the finite buckets,
// in nanoseconds: 2^10, 2^11, …, 2^36. Bucket i covers
// (HistogramBounds[i-1], HistogramBounds[i]]; bucket 0 also absorbs
// everything at or below its bound. One extra overflow bucket (+Inf)
// follows the last finite one.
var HistogramBounds = func() []int64 {
	b := make([]int64, histMaxExp-histMinExp+1)
	for i := range b {
		b[i] = 1 << (histMinExp + i)
	}
	return b
}()

// NumHistogramBuckets is the total bucket count including the overflow
// (+Inf) bucket.
var NumHistogramBuckets = len(HistogramBounds) + 1

// BucketIndex maps a duration in nanoseconds onto its bucket. Boundaries
// are powers of two, so the lookup is one bit-length instruction, not a
// binary search — cheap enough for every hot-path observation.
func BucketIndex(ns int64) int {
	if ns <= 1<<histMinExp {
		return 0
	}
	i := bits.Len64(uint64(ns-1)) - histMinExp // ceil(log2(ns)) - histMinExp
	if i >= len(HistogramBounds) {
		return len(HistogramBounds) // overflow bucket
	}
	return i
}

// Histogram is a lock-free fixed-bucket latency histogram. Like the other
// registry instruments the zero value is ready to use and a nil
// *Histogram discards all updates, so uninstrumented paths pay only a nil
// check.
type Histogram struct {
	counts [histMaxExp - histMinExp + 2]atomic.Int64
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveNS(d.Nanoseconds())
}

// ObserveNS records one duration given in nanoseconds. Safe on a nil
// histogram and from concurrent goroutines.
func (h *Histogram) ObserveNS(ns int64) {
	if h == nil {
		return
	}
	h.counts[BucketIndex(ns)].Add(1)
	h.sumNS.Add(ns)
}

// ObserveNSCount records n observations of the same nanosecond value in
// one update — the bulk form the runtime sampler uses to fold a
// runtime/metrics bucket delta (potentially thousands of scheduling
// latencies per tick) into the ladder without a per-observation loop.
// Safe on a nil histogram; non-positive n is ignored.
func (h *Histogram) ObserveNSCount(ns, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.counts[BucketIndex(ns)].Add(n)
	h.sumNS.Add(ns * n)
}

// Span starts a measurement; call the returned func to record the
// elapsed time. On a nil histogram the returned func is a no-op and no
// clock is read.
func (h *Histogram) Span() func() {
	if h == nil {
		return func() {}
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// Buckets returns a copy of the per-bucket counts (not cumulative), the
// last entry being the overflow bucket. Nil on a nil histogram.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the number of observations (0 for a nil histogram). It is
// derived from the bucket counters so that Count always equals the sum of
// Buckets, even against concurrent observers.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// SumNS returns the accumulated nanoseconds.
func (h *Histogram) SumNS() int64 {
	if h == nil {
		return 0
	}
	return h.sumNS.Load()
}

// HistogramQuantile computes the nearest-rank q-th percentile (0 < q ≤
// 100) from per-bucket counts, returning the upper bound of the bucket the
// rank falls into — the same answer a Prometheus histogram_quantile gives
// up to interpolation. An observation that matched bucket i yields
// HistogramBounds[i], so a live quantile and the offline nearest-rank
// percentile of the same sample agree to within one bucket width. The
// overflow bucket reports the last finite bound. Returns 0 on an empty
// histogram.
func HistogramQuantile(buckets []int64, q int) int64 {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := (total*int64(q) + 99) / 100 // ceil(total*q/100)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= rank {
			if i >= len(HistogramBounds) {
				return HistogramBounds[len(HistogramBounds)-1]
			}
			return HistogramBounds[i]
		}
	}
	return HistogramBounds[len(HistogramBounds)-1]
}
