package obs

import (
	"fmt"
	"sync"
	"time"
)

// Overload is a hysteretic admission controller: it watches heap pressure
// (fed by the RuntimeSampler) and queue depth (fed by the service's
// submit/dequeue paths) and latches an overloaded state that the HTTP
// plane turns into 503 + Retry-After on intake and a failing /readyz.
// Load is shed *before* the process OOMs — a verification job accepted
// under memory pressure would only die slower and take the server's other
// jobs with it.
//
// Two independent watermark pairs drive the state, each optional:
//
//   - heap: enter at HeapHighBytes of live heap, exit at HeapLowBytes
//   - queue: enter at QueueHigh queued jobs, exit at QueueLow
//
// Entry is an OR over the enabled signals, exit an AND over their low
// watermarks, so the state cannot flap across a single boundary.
// Transitions journal overload_enter (with the triggering reason) and
// overload_exit (with the overloaded duration), and the runtime.overload
// gauge exports the state as muml_runtime_overload 0/1.
//
// A nil *Overload is a disabled controller: observations are discarded
// and Active always reports false, so servers without configured
// watermarks wire it unconditionally.
type Overload struct {
	opts OverloadOptions

	mu        sync.Mutex
	heapBytes int64
	queue     int
	active    bool
	reason    string
	enteredAt time.Time

	gauge *Gauge
}

// OverloadOptions configure NewOverload. A zero or negative high
// watermark disables that signal; a low watermark above its high (or
// unset) snaps to the high value, giving plain threshold behaviour.
type OverloadOptions struct {
	// HeapHighBytes/HeapLowBytes are the live-heap watermarks.
	HeapHighBytes, HeapLowBytes int64
	// QueueHigh/QueueLow are the queue-depth watermarks.
	QueueHigh, QueueLow int
	// Journal receives overload_enter/overload_exit transition events.
	Journal *Journal
	// Registry receives the runtime.overload state gauge.
	Registry *Registry
}

// NewOverload returns a controller, or nil (the disabled controller) when
// no watermark is enabled.
func NewOverload(o OverloadOptions) *Overload {
	if o.HeapHighBytes <= 0 && o.QueueHigh <= 0 {
		return nil
	}
	if o.HeapHighBytes > 0 && (o.HeapLowBytes <= 0 || o.HeapLowBytes > o.HeapHighBytes) {
		o.HeapLowBytes = o.HeapHighBytes
	}
	if o.QueueHigh > 0 && (o.QueueLow < 0 || o.QueueLow > o.QueueHigh) {
		o.QueueLow = o.QueueHigh
	}
	return &Overload{opts: o, gauge: o.Registry.Gauge("runtime.overload")}
}

// ObserveHeap feeds the controller a live-heap reading (typically from
// RuntimeSamplerOptions.OnSample) and re-evaluates the state.
func (o *Overload) ObserveHeap(bytes int64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.heapBytes = bytes
	o.evaluate()
	o.mu.Unlock()
}

// ObserveQueue feeds the controller the current intake queue depth and
// re-evaluates the state.
func (o *Overload) ObserveQueue(depth int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.queue = depth
	o.evaluate()
	o.mu.Unlock()
}

// Active reports the current state and, when overloaded, the reason that
// tripped it. Safe on a nil controller (never overloaded).
func (o *Overload) Active() (bool, string) {
	if o == nil {
		return false, ""
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.active, o.reason
}

// evaluate applies the watermarks to the latest observations; the caller
// holds mu.
func (o *Overload) evaluate() {
	if !o.active {
		reason := ""
		switch {
		case o.opts.HeapHighBytes > 0 && o.heapBytes >= o.opts.HeapHighBytes:
			reason = fmt.Sprintf("heap %d >= high watermark %d bytes", o.heapBytes, o.opts.HeapHighBytes)
		case o.opts.QueueHigh > 0 && o.queue >= o.opts.QueueHigh:
			reason = fmt.Sprintf("queue depth %d >= high watermark %d", o.queue, o.opts.QueueHigh)
		}
		if reason == "" {
			return
		}
		o.active, o.reason, o.enteredAt = true, reason, time.Now()
		o.gauge.Set(1)
		if j := o.opts.Journal; j.Enabled() {
			j.Emit(Event{Kind: KindOverloadEnter, Iter: -1,
				S: map[string]string{"reason": reason},
				N: map[string]int64{"heap_live_bytes": o.heapBytes, "queue_depth": int64(o.queue)}})
		}
		return
	}
	if o.opts.HeapHighBytes > 0 && o.heapBytes > o.opts.HeapLowBytes {
		return
	}
	if o.opts.QueueHigh > 0 && o.queue > o.opts.QueueLow {
		return
	}
	o.active, o.reason = false, ""
	o.gauge.Set(0)
	if j := o.opts.Journal; j.Enabled() {
		j.Emit(Event{Kind: KindOverloadExit, Iter: -1,
			DurNS: time.Since(o.enteredAt).Nanoseconds(),
			N:     map[string]int64{"heap_live_bytes": o.heapBytes, "queue_depth": int64(o.queue)}})
	}
}
