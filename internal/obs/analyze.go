package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file aggregates decoded journals into the offline analytics
// behind cmd/journalstat: per-phase latency distributions (p50/p90/p99
// by nearest rank), event-kind counts, verdict tallies, and the top-k
// slowest batch instances, plus a two-journal diff for regression
// triage. Phases map onto the duration-carrying event kinds: "compose"
// covers closure_patched and product_rebuilt, "check" covers
// check_result, "replay" and "probe" the black-box test halves, and
// "instance" the whole-instance instance_done durations of a batch.

// PhaseStats is the latency distribution of one phase.
type PhaseStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
	P50NS   int64 `json:"p50_ns"`
	P90NS   int64 `json:"p90_ns"`
	P99NS   int64 `json:"p99_ns"`
	// Buckets is the same fixed log-spaced distribution the live
	// obs.Histogram instruments export on /metrics (boundaries in
	// HistogramBounds, last entry overflow), so an offline journal
	// percentile and a scraped live quantile land in the same bucket.
	Buckets []int64 `json:"buckets,omitempty"`
}

// SlowInstance names one batch instance and its duration.
type SlowInstance struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// InstanceCost names one batch instance and the cost-ledger figures it
// carried on its instance_done event.
type InstanceCost struct {
	Name       string `json:"name"`
	CPUNS      int64  `json:"cpu_ns"`
	AllocBytes int64  `json:"alloc_bytes"`
	PeakStates int64  `json:"peak_states"`
	CTLWords   int64  `json:"ctl_words"`
}

// CostStats aggregates the resource cost ledger of a journal: the sums
// of the per-instance cost_* fields on instance_done events (or, for
// journals that carry only job-level cost_report events, the report
// totals) plus the top-k instances by CPU and by attributed allocation.
// Journals without any cost fields yield a nil CostStats, keeping old
// reports byte-identical.
type CostStats struct {
	Instances  int   `json:"instances"`
	Reports    int   `json:"reports"`
	CPUNS      int64 `json:"cpu_ns"`
	AllocBytes int64 `json:"alloc_bytes"`
	PeakStates int64 `json:"peak_states"`
	CTLWords   int64 `json:"ctl_words"`
	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`

	TopCPU   []InstanceCost `json:"top_cpu,omitempty"`
	TopAlloc []InstanceCost `json:"top_alloc,omitempty"`
}

// JournalStats is the aggregate of one or more journals.
type JournalStats struct {
	Events     int                   `json:"events"`
	Traces     int                   `json:"traces"`
	Iterations int                   `json:"iterations"`
	Kinds      map[string]int        `json:"kinds"`
	Phases     map[string]PhaseStats `json:"phases"`
	// Verdicts tallies run verdicts ("proven", "violation") from verdict
	// events and per-instance verdicts from instance_done events;
	// errored instances count under "error".
	Verdicts map[string]int `json:"verdicts"`
	// Slowest lists the top-k slowest batch instances, longest first.
	Slowest []SlowInstance `json:"slowest,omitempty"`
	// Cost is the journal's aggregated resource ledger, nil when the
	// journal predates cost accounting.
	Cost *CostStats `json:"cost,omitempty"`
}

// phaseOf maps an event kind onto its analysis phase ("" = unphased).
func phaseOf(k EventKind) string {
	switch k {
	case KindClosurePatched, KindProductRebuilt:
		return "compose"
	case KindCheckResult:
		return "check"
	case KindReplayStep:
		return "replay"
	case KindProbeResult:
		return "probe"
	case KindInstanceDone:
		return "instance"
	default:
		return ""
	}
}

// Analyze aggregates events (from one journal or several concatenated
// ones) into JournalStats, keeping the topK slowest instances.
func Analyze(events []Event, topK int) *JournalStats {
	s := &JournalStats{
		Events:   len(events),
		Kinds:    make(map[string]int),
		Phases:   make(map[string]PhaseStats),
		Verdicts: make(map[string]int),
	}
	durs := make(map[string][]int64)
	traces := make(map[string]bool)
	var slow []SlowInstance
	var costs []InstanceCost
	var cost CostStats
	var reportCost CostStats
	for _, e := range events {
		s.Kinds[string(e.Kind)]++
		if e.Trace != "" {
			traces[e.Trace] = true
		}
		if e.Kind == KindIterationStart {
			s.Iterations++
		}
		if p := phaseOf(e.Kind); p != "" {
			durs[p] = append(durs[p], e.DurNS)
		}
		switch e.Kind {
		case KindVerdict:
			s.Verdicts[e.S["verdict"]]++
		case KindInstanceDone:
			v := e.S["verdict"]
			if v == "" {
				v = "error"
			}
			s.Verdicts[v]++
			name := e.S["name"]
			if name == "" {
				name = fmt.Sprintf("#%d", e.N["index"])
			}
			slow = append(slow, SlowInstance{Name: name, DurNS: e.DurNS})
			// Journals from before cost accounting have no cost_* fields;
			// their absence (not a zero value) keeps Cost nil.
			if _, ok := e.N["cost_cpu_ns"]; ok {
				ic := InstanceCost{
					Name:       name,
					CPUNS:      e.N["cost_cpu_ns"],
					AllocBytes: e.N["cost_alloc_bytes"],
					PeakStates: e.N["cost_peak_states"],
					CTLWords:   e.N["cost_ctl_words"],
				}
				costs = append(costs, ic)
				cost.Instances++
				cost.CPUNS += ic.CPUNS
				cost.AllocBytes += ic.AllocBytes
				cost.PeakStates += ic.PeakStates
				cost.CTLWords += ic.CTLWords
				cost.MemoHits += e.N["cost_memo_hits"]
				cost.MemoMisses += e.N["cost_memo_misses"]
			}
		case KindCostReport:
			reportCost.Reports++
			reportCost.Instances += int(e.N["instances"])
			reportCost.CPUNS += e.N["cpu_ns"]
			reportCost.AllocBytes += e.N["alloc_bytes"]
			reportCost.PeakStates += e.N["peak_states"]
			reportCost.CTLWords += e.N["ctl_words"]
			reportCost.MemoHits += e.N["memo_hits"]
			reportCost.MemoMisses += e.N["memo_misses"]
		}
	}
	s.Traces = len(traces)
	for phase, d := range durs {
		s.Phases[phase] = distill(d)
	}
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].DurNS > slow[j].DurNS })
	if topK > 0 && len(slow) > topK {
		slow = slow[:topK]
	}
	s.Slowest = slow

	switch {
	case cost.Instances > 0:
		// Instance-level ledgers win; a cost_report in the same journal is
		// their (redundant) sum, so only its presence is recorded.
		cost.Reports = reportCost.Reports
		cost.TopCPU = topCostBy(costs, topK, func(c InstanceCost) int64 { return c.CPUNS })
		cost.TopAlloc = topCostBy(costs, topK, func(c InstanceCost) int64 { return c.AllocBytes })
		s.Cost = &cost
	case reportCost.Reports > 0:
		// Server journals carry job-level cost_report events only (the
		// instance ledgers live in the per-job spool journals).
		s.Cost = &reportCost
	}
	return s
}

// topCostBy returns the k largest entries by the given figure, ties
// broken by input order.
func topCostBy(costs []InstanceCost, k int, by func(InstanceCost) int64) []InstanceCost {
	sorted := append([]InstanceCost(nil), costs...)
	sort.SliceStable(sorted, func(i, j int) bool { return by(sorted[i]) > by(sorted[j]) })
	if k > 0 && len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// distill computes the distribution of one phase's durations.
func distill(durs []int64) PhaseStats {
	sorted := append([]int64(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st := PhaseStats{Count: int64(len(sorted)), Buckets: make([]int64, NumHistogramBuckets)}
	for _, d := range sorted {
		st.TotalNS += d
		st.Buckets[BucketIndex(d)]++
	}
	st.MinNS = sorted[0]
	st.MaxNS = sorted[len(sorted)-1]
	st.P50NS = percentile(sorted, 50)
	st.P90NS = percentile(sorted, 90)
	st.P99NS = percentile(sorted, 99)
	return st
}

// percentile is the nearest-rank percentile of an ascending-sorted
// sample.
func percentile(sorted []int64, p int) int64 {
	rank := (len(sorted)*p + 99) / 100 // ceil(n*p/100)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// RenderText writes the human-readable report (the journalstat default
// output format).
func (s *JournalStats) RenderText(w io.Writer) {
	fmt.Fprintf(w, "events %d  traces %d  iterations %d\n", s.Events, s.Traces, s.Iterations)

	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "\n%-10s %7s %12s %12s %12s %12s %12s\n",
			"phase", "count", "total", "p50", "p90", "p99", "max")
		for _, phase := range sortedKeys(s.Phases) {
			st := s.Phases[phase]
			fmt.Fprintf(w, "%-10s %7d %12s %12s %12s %12s %12s\n",
				phase, st.Count, ns(st.TotalNS), ns(st.P50NS), ns(st.P90NS), ns(st.P99NS), ns(st.MaxNS))
		}
	}

	if len(s.Verdicts) > 0 {
		parts := make([]string, 0, len(s.Verdicts))
		for _, v := range sortedKeys(s.Verdicts) {
			parts = append(parts, fmt.Sprintf("%s %d", v, s.Verdicts[v]))
		}
		fmt.Fprintf(w, "\nverdicts: %s\n", strings.Join(parts, ", "))
	}

	if len(s.Slowest) > 0 {
		fmt.Fprintf(w, "\nslowest instances:\n")
		for i, inst := range s.Slowest {
			fmt.Fprintf(w, "  %2d. %-28s %s\n", i+1, inst.Name, ns(inst.DurNS))
		}
	}

	fmt.Fprintf(w, "\nevent counts:\n")
	for _, kind := range sortedKeys(s.Kinds) {
		fmt.Fprintf(w, "  %-18s %7d\n", kind, s.Kinds[kind])
	}
}

// RenderCost writes the human-readable cost-ledger section (journalstat
// -cost). A nil receiver (journal without cost accounting) says so
// instead of rendering zeros.
func (c *CostStats) RenderCost(w io.Writer) {
	if c == nil {
		fmt.Fprintf(w, "no cost data in journal (predates cost accounting?)\n")
		return
	}
	fmt.Fprintf(w, "cost: %d instances", c.Instances)
	if c.Reports > 0 {
		fmt.Fprintf(w, " (%d cost reports)", c.Reports)
	}
	fmt.Fprintf(w, "\n  cpu %s  alloc %s  peak states %d  ctl words %d  memo %d hits / %d misses\n",
		ns(c.CPUNS), bytesIEC(c.AllocBytes), c.PeakStates, c.CTLWords, c.MemoHits, c.MemoMisses)
	if len(c.TopCPU) > 0 {
		fmt.Fprintf(w, "\ntop instances by cpu:\n")
		for i, ic := range c.TopCPU {
			fmt.Fprintf(w, "  %2d. %-28s cpu %-12s alloc %-10s states %-8d words %d\n",
				i+1, ic.Name, ns(ic.CPUNS), bytesIEC(ic.AllocBytes), ic.PeakStates, ic.CTLWords)
		}
	}
	if len(c.TopAlloc) > 0 {
		fmt.Fprintf(w, "\ntop instances by allocation:\n")
		for i, ic := range c.TopAlloc {
			fmt.Fprintf(w, "  %2d. %-28s alloc %-10s cpu %-12s states %-8d words %d\n",
				i+1, ic.Name, bytesIEC(ic.AllocBytes), ns(ic.CPUNS), ic.PeakStates, ic.CTLWords)
		}
	}
}

// bytesIEC renders a byte count compactly with binary units.
func bytesIEC(v int64) string {
	const unit = 1024
	if v < unit {
		return fmt.Sprintf("%dB", v)
	}
	div, exp := int64(unit), 0
	for n := v / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(v)/float64(div), "KMGTPE"[exp])
}

// DiffText writes a phase-by-phase comparison of two aggregated journals
// (regression triage: a is the baseline, b the candidate).
func DiffText(w io.Writer, a, b *JournalStats) {
	fmt.Fprintf(w, "%-10s %16s %16s %8s   %16s %16s %8s\n",
		"phase", "total(a)", "total(b)", "ratio", "p50(a)", "p50(b)", "ratio")
	phases := map[string]bool{}
	for p := range a.Phases {
		phases[p] = true
	}
	for p := range b.Phases {
		phases[p] = true
	}
	for _, phase := range sortedKeys(phases) {
		pa, pb := a.Phases[phase], b.Phases[phase]
		fmt.Fprintf(w, "%-10s %16s %16s %8s   %16s %16s %8s\n",
			phase, ns(pa.TotalNS), ns(pb.TotalNS), ratio(pa.TotalNS, pb.TotalNS),
			ns(pa.P50NS), ns(pb.P50NS), ratio(pa.P50NS, pb.P50NS))
	}

	verdicts := map[string]bool{}
	for v := range a.Verdicts {
		verdicts[v] = true
	}
	for v := range b.Verdicts {
		verdicts[v] = true
	}
	if len(verdicts) > 0 {
		parts := make([]string, 0, len(verdicts))
		changed := false
		for _, v := range sortedKeys(verdicts) {
			ca, cb := a.Verdicts[v], b.Verdicts[v]
			if ca != cb {
				changed = true
			}
			parts = append(parts, fmt.Sprintf("%s %d→%d", v, ca, cb))
		}
		status := "unchanged"
		if changed {
			status = "CHANGED"
		}
		fmt.Fprintf(w, "verdicts (%s): %s\n", status, strings.Join(parts, ", "))
	}
	fmt.Fprintf(w, "events: %d→%d, iterations: %d→%d\n",
		a.Events, b.Events, a.Iterations, b.Iterations)
}

func ratio(a, b int64) string {
	if a == 0 {
		if b == 0 {
			return "—"
		}
		return "+∞"
	}
	return fmt.Sprintf("%.2fx", float64(b)/float64(a))
}

// ns renders a nanosecond count compactly (µs precision).
func ns(v int64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}
