package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the main module's version (or
// "devel" when not built from a tagged module) and the Go toolchain. The
// /metrics endpoint exposes it as the muml_build_info gauge and
// journalstat prints the matching line, so a scraped exposition and an
// analyzed journal are both attributable to a build.
func BuildInfo() (version, goVersion string) {
	version = "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	return version, runtime.Version()
}

// WriteBuildInfoProm renders the muml_build_info gauge (constant value 1,
// identity carried in labels) in Prometheus text exposition format.
func WriteBuildInfoProm(w io.Writer) error {
	version, goVersion := BuildInfo()
	_, err := fmt.Fprintf(w,
		"# TYPE muml_build_info gauge\nmuml_build_info{version=%q,goversion=%q} 1\n",
		version, goVersion)
	return err
}

// BuildInfoLine is the human-readable counterpart of the muml_build_info
// gauge, printed by journalstat -format text.
func BuildInfoLine() string {
	version, goVersion := BuildInfo()
	return fmt.Sprintf("muml_build_info: version=%s goversion=%s", version, goVersion)
}
