package obs

import (
	"fmt"
	"math"
	"runtime/metrics"
	"time"
)

// This file is the resource half of the observability plane: a sampler
// goroutine over the runtime/metrics interface that turns the Go
// runtime's own accounting — heap live/goal, GC cycles and pauses,
// goroutine count, scheduling latency, total allocation — into the
// muml_runtime_* metric families on /metrics and periodic
// resource_sample journal events. Long-running services (cmd/verifyd)
// and lingering batch runs use it to see memory pressure building
// before the process OOMs; the Overload admission controller
// (overload.go) consumes the same samples.
//
// Every runtime/metrics read is guarded by a KindBad check, so a metric
// missing from the running toolchain degrades to zero instead of
// panicking; heap live falls back from /gc/heap/live:bytes (go1.21+) to
// the always-present /memory/classes/heap/objects:bytes.

// DefaultSampleInterval is the sampling period services use unless
// overridden (-sample-interval).
const DefaultSampleInterval = time.Second

// Runtime metric names, with the heap-live fallback pair first.
const (
	rmHeapLive     = "/gc/heap/live:bytes"
	rmHeapObjects  = "/memory/classes/heap/objects:bytes"
	rmHeapGoal     = "/gc/heap/goal:bytes"
	rmGCCycles     = "/gc/cycles/total:gc-cycles"
	rmGoroutines   = "/sched/goroutines:goroutines"
	rmAllocBytes   = "/gc/heap/allocs:bytes"
	rmGCPauses     = "/gc/pauses:seconds"
	rmSchedLatency = "/sched/latencies:seconds"
)

// ResourceSample is one reading of the runtime, as delivered to the
// OnSample hook and journaled as a resource_sample event. Byte and cycle
// totals are cumulative since process start; the rate and pause fields
// cover the interval since the previous sample.
type ResourceSample struct {
	// HeapLiveBytes is the live heap (bytes surviving the last GC, plus
	// allocation since), HeapGoalBytes the size the pacer is steering to.
	HeapLiveBytes int64
	HeapGoalBytes int64
	// Goroutines is the current goroutine count.
	Goroutines int64
	// GCCycles is the cumulative completed-GC count.
	GCCycles int64
	// AllocBytes is the cumulative total of heap allocation.
	AllocBytes int64
	// AllocRateBPS is the allocation rate over the last interval
	// (bytes/second).
	AllocRateBPS int64
	// GCPauseNS is the total stop-the-world pause time accrued during the
	// last interval.
	GCPauseNS int64
}

// RuntimeSamplerOptions configure StartRuntimeSampler. Journal, Registry,
// and OnSample are each optional (and nil-safe); Interval defaults to one
// second.
type RuntimeSamplerOptions struct {
	// Interval is the sampling period (default 1s when non-positive).
	Interval time.Duration
	// Journal receives one resource_sample event per tick.
	Journal *Journal
	// Registry receives the runtime.* instruments: heap_live_bytes,
	// heap_goal_bytes, goroutines, and alloc_rate_bps gauges; gc_cycles
	// and alloc_bytes counters; gc_pause and sched_latency histograms.
	Registry *Registry
	// OnSample, when non-nil, observes every sample after the instruments
	// are updated — the hook the verifyd admission controller hangs off.
	// It runs on the sampler goroutine and must not block.
	OnSample func(ResourceSample)
}

// RuntimeSampler periodically reads the Go runtime's own metrics and
// re-exports them through the obs plane. Stop terminates the goroutine
// after one final sample, so even a short-lived run journals at least
// two resource_sample events (the initial one taken synchronously by
// StartRuntimeSampler, and the final one).
type RuntimeSampler struct {
	opts    RuntimeSamplerOptions
	samples []metrics.Sample

	gHeapLive  *Gauge
	gHeapGoal  *Gauge
	gGoroutine *Gauge
	gAllocRate *Gauge
	cGCCycles  *Counter
	cAlloc     *Counter
	hGCPause   *Histogram
	hSchedLat  *Histogram

	// prev* carry the cumulative readings of the previous tick, so counter
	// instruments advance by deltas and rates have a base.
	prevAlloc    int64
	prevGCCycles int64
	prevPause    []uint64
	prevSched    []uint64
	prevAt       time.Time

	stop chan struct{}
	done chan struct{}
}

// StartRuntimeSampler takes an immediate first sample and then samples
// every Interval until Stop. Returns nil only if the runtime exposes
// none of the sampled metrics (which no supported toolchain does).
func StartRuntimeSampler(o RuntimeSamplerOptions) *RuntimeSampler {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	s := &RuntimeSampler{
		opts: o,
		samples: []metrics.Sample{
			{Name: rmHeapLive},
			{Name: rmHeapObjects},
			{Name: rmHeapGoal},
			{Name: rmGCCycles},
			{Name: rmGoroutines},
			{Name: rmAllocBytes},
			{Name: rmGCPauses},
			{Name: rmSchedLatency},
		},
		gHeapLive:  o.Registry.Gauge("runtime.heap_live_bytes"),
		gHeapGoal:  o.Registry.Gauge("runtime.heap_goal_bytes"),
		gGoroutine: o.Registry.Gauge("runtime.goroutines"),
		gAllocRate: o.Registry.Gauge("runtime.alloc_rate_bps"),
		cGCCycles:  o.Registry.Counter("runtime.gc_cycles"),
		cAlloc:     o.Registry.Counter("runtime.alloc_bytes"),
		hGCPause:   o.Registry.Histogram("runtime.gc_pause"),
		hSchedLat:  o.Registry.Histogram("runtime.sched_latency"),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

// Stop takes one final sample and terminates the sampler goroutine,
// blocking until it has exited. Safe on a nil sampler and idempotent is
// not required — callers stop exactly once (defer).
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sample()
		case <-s.stop:
			s.sample()
			return
		}
	}
}

// sample reads the runtime, updates the instruments by delta, journals a
// resource_sample event, and invokes the OnSample hook.
func (s *RuntimeSampler) sample() {
	metrics.Read(s.samples)
	now := time.Now()
	byName := make(map[string]*metrics.Sample, len(s.samples))
	for i := range s.samples {
		byName[s.samples[i].Name] = &s.samples[i]
	}

	out := ResourceSample{
		HeapLiveBytes: readUint(byName[rmHeapLive]),
		HeapGoalBytes: readUint(byName[rmHeapGoal]),
		Goroutines:    readUint(byName[rmGoroutines]),
		GCCycles:      readUint(byName[rmGCCycles]),
		AllocBytes:    readUint(byName[rmAllocBytes]),
	}
	if out.HeapLiveBytes == 0 {
		out.HeapLiveBytes = readUint(byName[rmHeapObjects])
	}

	first := s.prevAt.IsZero()
	if !first {
		if dt := now.Sub(s.prevAt).Seconds(); dt > 0 {
			out.AllocRateBPS = int64(float64(out.AllocBytes-s.prevAlloc) / dt)
		}
	}
	out.GCPauseNS = s.foldHistogram(byName[rmGCPauses], &s.prevPause, s.hGCPause)
	s.foldHistogram(byName[rmSchedLatency], &s.prevSched, s.hSchedLat)

	s.gHeapLive.Set(out.HeapLiveBytes)
	s.gHeapGoal.Set(out.HeapGoalBytes)
	s.gGoroutine.Set(out.Goroutines)
	s.gAllocRate.Set(out.AllocRateBPS)
	if d := out.GCCycles - s.prevGCCycles; d > 0 && !first {
		s.cGCCycles.Add(d)
	} else if first {
		s.cGCCycles.Add(out.GCCycles)
	}
	if d := out.AllocBytes - s.prevAlloc; d > 0 && !first {
		s.cAlloc.Add(d)
	} else if first {
		s.cAlloc.Add(out.AllocBytes)
	}
	s.prevAlloc = out.AllocBytes
	s.prevGCCycles = out.GCCycles
	s.prevAt = now

	if j := s.opts.Journal; j.Enabled() {
		j.Emit(Event{Kind: KindResourceSample, Iter: -1, N: map[string]int64{
			"heap_live_bytes": out.HeapLiveBytes,
			"heap_goal_bytes": out.HeapGoalBytes,
			"goroutines":      out.Goroutines,
			"gc_cycles":       out.GCCycles,
			"alloc_bytes":     out.AllocBytes,
			"alloc_rate_bps":  out.AllocRateBPS,
			"gc_pause_ns":     out.GCPauseNS,
		}})
	}
	if s.opts.OnSample != nil {
		s.opts.OnSample(out)
	}
}

// foldHistogram advances a cumulative runtime/metrics Float64Histogram
// into an obs.Histogram: new counts per runtime bucket are observed at
// the bucket's upper bound (in nanoseconds), so the exported ladder is
// conservative the same way Prometheus quantiles are. Returns the
// nanosecond-weighted total of this tick's new observations.
func (s *RuntimeSampler) foldHistogram(sample *metrics.Sample, prev *[]uint64, h *Histogram) int64 {
	if sample == nil || sample.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	fh := sample.Value.Float64Histogram()
	if fh == nil {
		return 0
	}
	var total int64
	grew := len(*prev) != len(fh.Counts)
	for i, c := range fh.Counts {
		var d uint64
		if grew {
			d = c
		} else if c >= (*prev)[i] {
			d = c - (*prev)[i]
		}
		if d == 0 {
			continue
		}
		ns := bucketUpperNS(fh.Buckets, i)
		h.ObserveNSCount(ns, int64(d))
		total += ns * int64(d)
	}
	if grew {
		*prev = make([]uint64, len(fh.Counts))
	}
	copy(*prev, fh.Counts)
	return total
}

// bucketUpperNS converts runtime bucket i's upper bound (seconds, possibly
// +Inf) to nanoseconds; an infinite bound reports the finite lower bound
// instead so the fold never produces an unrepresentable value.
func bucketUpperNS(bounds []float64, i int) int64 {
	// Buckets has len(Counts)+1 entries; bucket i spans bounds[i]..bounds[i+1].
	up := bounds[i+1]
	if math.IsInf(up, +1) {
		up = bounds[i]
	}
	if math.IsInf(up, -1) || up < 0 {
		return 0
	}
	return int64(up * 1e9)
}

// readUint extracts a uint64-kinded sample as int64 (0 when the metric is
// unsupported by the running toolchain).
func readUint(sample *metrics.Sample) int64 {
	if sample == nil || sample.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	v := sample.Value.Uint64()
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// allocSamples is the one-metric read ReadAllocBytes performs; the slice
// is recreated per call because runtime/metrics writes into it and the
// callers are concurrent batch workers.
func allocSamples() []metrics.Sample {
	return []metrics.Sample{{Name: rmAllocBytes}}
}

// ReadAllocBytes returns the cumulative heap allocation of the process in
// bytes — the base measure of the per-instance cost ledger
// (internal/batch). The counter is process-global and monotonic;
// attributing it to one instance among W concurrent workers divides the
// window's delta by W (see DESIGN.md §15 for the tolerance this implies).
func ReadAllocBytes() int64 {
	s := allocSamples()
	metrics.Read(s)
	return readUint(&s[0])
}

// String renders a sample compactly for debug surfaces.
func (r ResourceSample) String() string {
	return fmt.Sprintf("heap %d/%d B, %d goroutines, gc %d, alloc %d B (%d B/s)",
		r.HeapLiveBytes, r.HeapGoalBytes, r.Goroutines, r.GCCycles, r.AllocBytes, r.AllocRateBPS)
}
