package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// JSONLSink writes one JSON object per event, one event per line — the
// machine-readable journal behind the -journal flag. Lines conform to the
// schema checked by ValidateJSONL, so `obscheck` (and the Makefile's
// obs-smoke gate) can verify a captured journal byte-for-byte.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer // underlying closer, if any
	err error
}

// NewJSONLSink wraps a writer. If the writer is also an io.Closer it is
// closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit encodes the event as one JSON line. Encoding errors are sticky and
// reported by Close.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(data); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Close flushes buffered lines and closes the underlying writer.
func (s *JSONLSink) Close() error {
	flushErr := s.w.Flush()
	var closeErr error
	if s.c != nil {
		closeErr = s.c.Close()
	}
	switch {
	case s.err != nil:
		return s.err
	case flushErr != nil:
		return flushErr
	default:
		return closeErr
	}
}

// TextSink renders events human-readably, one line per event with sorted
// payload fields; multi-line string payloads (paper-style trace listings)
// are printed indented underneath, so `legint -verbose` output stays
// recognizable.
type TextSink struct {
	w io.Writer
	// Indent is prepended to every emitted line.
	Indent string
}

// NewTextSink wraps a writer.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

func (s *TextSink) Emit(e Event) {
	var b strings.Builder
	b.WriteString(s.Indent)
	fmt.Fprintf(&b, "#%04d %-16s", e.Seq, e.Kind)
	if e.Iter >= 0 {
		fmt.Fprintf(&b, " iter=%d", e.Iter)
	}
	if e.DurNS > 0 {
		fmt.Fprintf(&b, " dur=%s", time.Duration(e.DurNS).Round(time.Microsecond))
	}
	for _, k := range sortedKeys(e.N) {
		fmt.Fprintf(&b, " %s=%d", k, e.N[k])
	}
	var blocks []string
	for _, k := range sortedKeys(e.S) {
		v := e.S[k]
		if strings.Contains(v, "\n") {
			blocks = append(blocks, k)
			continue
		}
		fmt.Fprintf(&b, " %s=%s", k, v)
	}
	b.WriteByte('\n')
	for _, k := range blocks {
		fmt.Fprintf(&b, "%s  %s:\n", s.Indent, k)
		for _, line := range strings.Split(strings.TrimRight(e.S[k], "\n"), "\n") {
			b.WriteString(s.Indent)
			b.WriteString("    ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	io.WriteString(s.w, b.String())
}

// MemorySink collects emitted events in order; intended for tests.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything emitted so far, in emission order.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// TeeSink forwards each event to several sinks in order.
type TeeSink []Sink

func (t TeeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}

// Close closes every member sink that supports it, returning the first
// error.
func (t TeeSink) Close() error {
	var first error
	for _, s := range t {
		if c, ok := s.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func sortedKeys[V any](m map[string]V) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
