package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexEdges(t *testing.T) {
	last := len(HistogramBounds) - 1
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 0},
		{1 << histMinExp, 0},          // exactly the first bound
		{1<<histMinExp + 1, 1},        // just past it
		{1 << (histMinExp + 1), 1},    // exactly the second bound
		{1<<(histMinExp+1) + 1, 2},    // just past the second bound
		{1 << histMaxExp, last},       // exactly the last finite bound
		{1<<histMaxExp + 1, last + 1}, // overflow
		{int64(1) << 62, last + 1},    // deep overflow
	}
	for _, c := range cases {
		if got := BucketIndex(c.ns); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every finite bucket's bound must itself map into that bucket —
	// bounds are inclusive upper bounds.
	for i, bound := range HistogramBounds {
		if got := BucketIndex(bound); got != i {
			t.Errorf("BucketIndex(bound %d) = %d, want %d", bound, got, i)
		}
	}
}

func TestHistogramObserveCountSum(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond)
	h.ObserveNS(3_000_000)
	h.Span()() // ~0ns span, lands in bucket 0
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := h.SumNS(); got < 5_000_000 {
		t.Errorf("SumNS = %d, want >= 5ms", got)
	}
	buckets := h.Buckets()
	if len(buckets) != NumHistogramBuckets {
		t.Fatalf("Buckets len = %d, want %d", len(buckets), NumHistogramBuckets)
	}
	var sum int64
	for _, c := range buckets {
		sum += c
	}
	if sum != h.Count() {
		t.Errorf("bucket sum %d != Count %d", sum, h.Count())
	}
}

func TestNilHistogramInert(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveNS(42)
	h.Span()()
	if h.Count() != 0 || h.SumNS() != 0 || h.Buckets() != nil {
		t.Error("nil histogram holds state")
	}
	var r *Registry
	if r.Histogram("x") != nil {
		t.Error("nil registry handed out a non-nil histogram")
	}
}

func TestHistogramQuantile(t *testing.T) {
	if got := HistogramQuantile(nil, 50); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	var h Histogram
	for i := 0; i < 99; i++ {
		h.ObserveNS(10_000) // bucket bound 2^14 = 16384
	}
	h.ObserveNS(1 << 40) // overflow
	b := h.Buckets()
	if got, want := HistogramQuantile(b, 50), int64(16384); got != want {
		t.Errorf("p50 = %d, want %d", got, want)
	}
	if got, want := HistogramQuantile(b, 99), int64(16384); got != want {
		t.Errorf("p99 = %d, want %d", got, want)
	}
	// The 100th percentile rank lands in the overflow bucket, which
	// reports the last finite bound.
	if got, want := HistogramQuantile(b, 100), HistogramBounds[len(HistogramBounds)-1]; got != want {
		t.Errorf("p100 = %d, want %d", got, want)
	}
}

// TestLiveAndOfflineQuantilesAgree pins the contract between the live
// /metrics histograms and the journalstat offline percentiles: both sides
// bucket with BucketIndex over HistogramBounds, so for any sample the
// offline nearest-rank percentile and the live quantile land in the same
// bucket (agreement within one bucket width).
func TestLiveAndOfflineQuantilesAgree(t *testing.T) {
	durs := []int64{
		900, 12_000, 47_000, 180_000, 950_000, 1_100_000, 4_700_000,
		22_000_000, 130_000_000, 890_000_000, 2_400_000_000, 11_000_000_000,
	}
	var h Histogram
	events := make([]Event, 0, len(durs))
	for i, d := range durs {
		h.ObserveNS(d)
		events = append(events, Event{Seq: uint64(i + 1), Kind: KindCheckResult, Iter: i, DurNS: d})
	}
	stats := Analyze(events, 0)
	offline, ok := stats.Phases["check"]
	if !ok {
		t.Fatal("no check phase in offline stats")
	}
	live := h.Buckets()
	for i := range live {
		if live[i] != offline.Buckets[i] {
			t.Fatalf("bucket %d: live %d != offline %d", i, live[i], offline.Buckets[i])
		}
	}
	for q, offNS := range map[int]int64{50: offline.P50NS, 90: offline.P90NS, 99: offline.P99NS} {
		liveQ := HistogramQuantile(live, q)
		if offNS > liveQ {
			t.Errorf("p%d: offline %d exceeds live bucket bound %d", q, offNS, liveQ)
		}
		if BucketIndex(offNS) != BucketIndex(liveQ) {
			t.Errorf("p%d: offline %d (bucket %d) and live %d (bucket %d) disagree by more than one bucket",
				q, offNS, BucketIndex(offNS), liveQ, BucketIndex(liveQ))
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNS(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("Count = %d, want %d", got, workers*per)
	}
}

func TestValidateHistogramSnapshotEvents(t *testing.T) {
	valid := `{"seq":1,"kind":"histogram_snapshot","iter":-1,"s":{"name":"core.check"},"n":{"count":3,"sum_ns":5000,"b03":2,"b27":1}}`
	if n, err := ValidateJSONL(strings.NewReader(valid)); err != nil || n != 1 {
		t.Errorf("valid snapshot: n=%d err=%v", n, err)
	}
	invalid := map[string]string{
		"missing name":    `{"seq":1,"kind":"histogram_snapshot","iter":-1,"n":{"count":0}}`,
		"count mismatch":  `{"seq":1,"kind":"histogram_snapshot","iter":-1,"s":{"name":"x"},"n":{"count":2,"b00":3}}`,
		"negative bucket": `{"seq":1,"kind":"histogram_snapshot","iter":-1,"s":{"name":"x"},"n":{"count":-1,"b01":-1}}`,
	}
	for name, line := range invalid {
		if _, err := ValidateJSONL(strings.NewReader(line)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}
