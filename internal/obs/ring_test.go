package obs

import (
	"sync"
	"testing"
	"time"
)

func note(seq uint64) Event {
	return Event{Seq: seq, Kind: KindNote, Iter: -1}
}

func TestRingTailWraparound(t *testing.T) {
	s := NewRingSink(4)
	if s.Len() != 0 || s.Tail(10) != nil {
		t.Fatal("fresh ring not empty")
	}
	for i := uint64(1); i <= 6; i++ {
		s.Emit(note(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	tail := s.Tail(10)
	if len(tail) != 4 {
		t.Fatalf("Tail(10) len = %d, want 4", len(tail))
	}
	for i, e := range tail {
		if want := uint64(i + 3); e.Seq != want {
			t.Errorf("tail[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if short := s.Tail(2); len(short) != 2 || short[0].Seq != 5 || short[1].Seq != 6 {
		t.Errorf("Tail(2) = %+v, want seqs 5,6", short)
	}
	if s.Tail(0) != nil {
		t.Error("Tail(0) not nil")
	}
}

func TestRingDefaultSize(t *testing.T) {
	s := NewRingSink(0)
	for i := uint64(1); i <= DefaultRingSize+1; i++ {
		s.Emit(note(i))
	}
	if s.Len() != DefaultRingSize {
		t.Errorf("Len = %d, want %d", s.Len(), DefaultRingSize)
	}
}

func TestRingSubscribeReplayThenLive(t *testing.T) {
	s := NewRingSink(8)
	for i := uint64(1); i <= 3; i++ {
		s.Emit(note(i))
	}
	tail, ch, cancel := s.Subscribe(2, 4)
	if len(tail) != 2 || tail[0].Seq != 2 || tail[1].Seq != 3 {
		t.Fatalf("replay tail = %+v, want seqs 2,3", tail)
	}
	s.Emit(note(4))
	select {
	case e := <-ch:
		if e.Seq != 4 {
			t.Errorf("live event seq = %d, want 4", e.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("live event never arrived")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel open after cancel")
	}
	cancel() // idempotent
	s.Emit(note(5))
	if s.Dropped() != 0 {
		t.Errorf("Dropped = %d after clean cancel, want 0", s.Dropped())
	}
}

func TestRingDropsSlowSubscriber(t *testing.T) {
	s := NewRingSink(8)
	_, ch, cancel := s.Subscribe(0, 1)
	s.Emit(note(1)) // fills the buffer
	s.Emit(note(2)) // overflows: subscriber dropped, channel closed
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped())
	}
	if e, ok := <-ch; !ok || e.Seq != 1 {
		t.Errorf("buffered event = %+v ok=%v, want seq 1", e, ok)
	}
	if _, ok := <-ch; ok {
		t.Error("channel open after emitter drop")
	}
	cancel() // safe after the emitter already dropped us
	s.Emit(note(3))
	if s.Len() != 3 {
		t.Errorf("ring stopped recording after drop: Len = %d", s.Len())
	}
}

func TestNilRingInert(t *testing.T) {
	var s *RingSink
	s.Emit(note(1))
	if s.Len() != 0 || s.Dropped() != 0 || s.Tail(5) != nil {
		t.Error("nil ring holds state")
	}
	tail, ch, cancel := s.Subscribe(4, 4)
	if tail != nil {
		t.Error("nil ring replayed events")
	}
	if _, ok := <-ch; ok {
		t.Error("nil ring's channel not closed")
	}
	cancel()
}

// TestRingEmitNeverBlocks hammers the ring from concurrent emitters while
// subscribers come, go, and fall behind; run with -race. The emitters
// must finish regardless of subscriber behavior.
func TestRingEmitNeverBlocks(t *testing.T) {
	s := NewRingSink(16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					s.Emit(note(uint64(w*500 + i + 1)))
				}
			}(w)
		}
		wg.Wait()
	}()

	// One subscriber that never reads (must be dropped, not block the
	// emitters) and one that reads until closed or canceled.
	_, _, cancelSlow := s.Subscribe(0, 1)
	defer cancelSlow()
	_, ch, cancel := s.Subscribe(4, 8)
	defer cancel()
	go func() {
		for range ch {
		}
	}()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("emitters blocked")
	}
	if s.Dropped() == 0 {
		t.Error("slow subscriber was never dropped")
	}
}
