// Package obs is the observability subsystem of the synthesis stack: a
// structured event journal, a lightweight metrics registry (counters,
// max-gauges, timers), and profiling hooks. It has no dependencies outside
// the standard library and — crucially — is built so that a *disabled*
// journal or registry costs next to nothing: every entry point is nil-safe
// (methods on nil receivers return immediately, without allocating), so
// instrumented code guards hot paths with a single predictable branch.
//
// The journal records the verify–test–learn loop as typed events
// (iteration_start, check_result, cex_classified, replay_step,
// probe_result, learn_delta, closure_patched, product_rebuilt, verdict)
// with monotonic sequence numbers and wall-clock durations, the way
// model-checking-driven black-box testing work reports per-query cost.
// Two sinks ship with the package: a JSONL backend for machine analysis
// (one event per line, schema-validated by ValidateJSONL) and a
// human-readable text backend that keeps `legint -verbose` output
// recognizable, including the paper-style trace listings carried as event
// payloads.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EventKind names the type of a journal event.
type EventKind string

// The event taxonomy of the synthesis loop (DESIGN.md §7). An event's kind
// determines which payload fields are meaningful; unknown kinds are
// rejected by ValidateJSONL.
const (
	// KindIterationStart opens one loop iteration: model sizes before
	// learning (n: model_states, model_transitions, model_blocked).
	KindIterationStart EventKind = "iteration_start"
	// KindClosurePatched reports that this iteration's verification system
	// was produced by delta-patching the previous one (n: closure_states,
	// system_states).
	KindClosurePatched EventKind = "closure_patched"
	// KindProductRebuilt reports a from-scratch system construction
	// (s: reason — why patching was not possible).
	KindProductRebuilt EventKind = "product_rebuilt"
	// KindCheckResult is the model-checking outcome of one iteration
	// (n: property_holds, deadlock_free, system_states; dur_ns).
	KindCheckResult EventKind = "check_result"
	// KindCexClassified classifies a counterexample before testing
	// (s: kind, trace; n: in_learned_part, run_witnessed, length).
	KindCexClassified EventKind = "cex_classified"
	// KindReplayStep documents one record/replay execution against the
	// black box (s: trace — the paper-style listing; n: periods,
	// blocked_at, diverged).
	KindReplayStep EventKind = "replay_step"
	// KindProbeResult is one deadlock-confirmation probe (s: state, input,
	// output; n: accepted).
	KindProbeResult EventKind = "probe_result"
	// KindLearnDelta is what one iteration's learning added
	// (n: states, transitions, blocked).
	KindLearnDelta EventKind = "learn_delta"
	// KindIocoMerge is one divergent-but-allowed observation folded into
	// the learned fragment by the nondeterministic path (s: state, input,
	// observed, recorded; n: period, allowed).
	KindIocoMerge EventKind = "ioco_merge"
	// KindVerdict closes a run (s: verdict, kind, trace; n: iterations).
	KindVerdict EventKind = "verdict"
	// KindComposeLevel is one BFS level of an n-ary composition frontier
	// (n: level, frontier, parallel).
	KindComposeLevel EventKind = "compose_level"
	// KindBatchStart opens a batch-verification run (n: instances, workers,
	// deadline_ns).
	KindBatchStart EventKind = "batch_start"
	// KindInstanceDone closes one batch instance (s: name, verdict, error;
	// n: index, worker, timed_out, panicked, iterations; dur_ns).
	KindInstanceDone EventKind = "instance_done"
	// KindCacheHit is one memoization-cache hit: an interned-automaton
	// fingerprint key resolved to a previously solved sub-problem
	// (s: op; n: key_a, key_b, hits).
	KindCacheHit EventKind = "cache_hit"
	// KindJobSubmitted records one job accepted by a verification service
	// (s: job, source, shard; n: instances, queue_depth).
	KindJobSubmitted EventKind = "job_submitted"
	// KindJobDone closes one service job (s: job, state, error; n:
	// instances, proven, violations, errored, memo_hits, memo_misses;
	// dur_ns).
	KindJobDone EventKind = "job_done"
	// KindStoreHit is one persistent-memo-store read that returned a valid
	// record (s: op, key; n: key_a, key_b, bytes).
	KindStoreHit EventKind = "store_hit"
	// KindStoreMiss is one persistent-memo-store read that found no record
	// (s: op, key; n: key_a, key_b).
	KindStoreMiss EventKind = "store_miss"
	// KindStoreEvict is one record removed from the persistent memo store
	// (s: key, reason — "corrupt" for a failed integrity check, "size" for
	// the LRU capacity sweep; n: bytes).
	KindStoreEvict EventKind = "store_evict"
	// KindResourceSample is one periodic reading of the Go runtime taken
	// by the RuntimeSampler (n: heap_live_bytes, heap_goal_bytes,
	// goroutines, gc_cycles, alloc_bytes, alloc_rate_bps, gc_pause_ns —
	// cumulative where named so, deltas where rates).
	KindResourceSample EventKind = "resource_sample"
	// KindCostReport aggregates the per-instance cost ledgers of one batch
	// or job (s: job — when emitted by a service; n: instances, cpu_ns,
	// alloc_bytes, peak_states, ctl_words, memo_hits, memo_misses).
	KindCostReport EventKind = "cost_report"
	// KindOverloadEnter marks the admission controller tripping: the
	// process sheds load until the exit event (s: reason; n:
	// heap_live_bytes, queue_depth).
	KindOverloadEnter EventKind = "overload_enter"
	// KindOverloadExit marks recovery from overload (n: heap_live_bytes,
	// queue_depth; dur_ns — time spent overloaded).
	KindOverloadExit EventKind = "overload_exit"
	// KindHistogramSnapshot is the final state of one latency histogram,
	// emitted when a run's observability surfaces close (s: name; n:
	// count, sum_ns, and per-bucket counts b00..b27 over HistogramBounds —
	// zero buckets are omitted, and count equals the sum of the bucket
	// fields).
	KindHistogramSnapshot EventKind = "histogram_snapshot"
	// KindNote is a freeform progress note (s: text).
	KindNote EventKind = "note"
)

// KnownKinds is the closed set of event kinds accepted by the JSONL schema.
var KnownKinds = map[EventKind]bool{
	KindIterationStart:    true,
	KindClosurePatched:    true,
	KindProductRebuilt:    true,
	KindCheckResult:       true,
	KindCexClassified:     true,
	KindReplayStep:        true,
	KindProbeResult:       true,
	KindLearnDelta:        true,
	KindIocoMerge:         true,
	KindVerdict:           true,
	KindComposeLevel:      true,
	KindBatchStart:        true,
	KindInstanceDone:      true,
	KindCacheHit:          true,
	KindJobSubmitted:      true,
	KindJobDone:           true,
	KindStoreHit:          true,
	KindStoreMiss:         true,
	KindStoreEvict:        true,
	KindResourceSample:    true,
	KindCostReport:        true,
	KindOverloadEnter:     true,
	KindOverloadExit:      true,
	KindHistogramSnapshot: true,
	KindNote:              true,
}

// Event is one journal record. The payload is split into integer fields
// (N) and string fields (S) so that a JSONL round trip reproduces the
// value exactly (no float64 widening). Iter is -1 for events not scoped to
// a loop iteration.
//
// Events carry causal identity (DESIGN.md §10): Trace groups all events
// of one synthesis instance, Span marks events that open a span (an
// iteration, a counterexample's test section), and Parent points at the
// enclosing span, so a journal reconstructs as a span tree and exports as
// a Chrome trace (WriteChromeTrace). All three are optional — events from
// untraced emitters (compose_level, cache_hit) simply leave them zero.
type Event struct {
	// Seq is the monotonic sequence number, assigned by the Journal at
	// emission; the first emitted event has Seq 1.
	Seq  uint64    `json:"seq"`
	Kind EventKind `json:"kind"`
	// Iter is the loop iteration the event belongs to, or -1.
	Iter int `json:"iter"`
	// TNS is the emission timestamp in nanoseconds since the journal was
	// opened (monotonic clock), stamped by Journal.Emit; 0 on events that
	// never passed through a journal.
	TNS int64 `json:"t_ns,omitempty"`
	// DurNS is the wall-clock duration covered by the event, if any.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Trace identifies the synthesis instance the event belongs to; it is
	// constant across all events of one instance.
	Trace string `json:"trace,omitempty"`
	// Span, when non-zero, is the journal-unique ID of the span this
	// event opens (allocated by Journal.NewSpan); later events reference
	// it via Parent.
	Span uint64 `json:"span,omitempty"`
	// Parent, when non-zero, is the enclosing span's ID. The opening
	// event always precedes its children in the journal.
	Parent uint64 `json:"parent,omitempty"`
	// N holds integer payload fields (sizes, counts, booleans as 0/1).
	N map[string]int64 `json:"n,omitempty"`
	// S holds string payload fields (reasons, verdicts, rendered traces).
	S map[string]string `json:"s,omitempty"`
}

// Sink receives emitted events. Implementations need not be goroutine-safe:
// the Journal serializes emissions.
type Sink interface {
	Emit(e Event)
}

// Journal assigns monotonic sequence numbers and forwards events to a
// sink. A nil *Journal is a valid, disabled journal: Emit on it is a
// single branch, and Enabled reports false so callers can skip payload
// construction entirely.
//
// Journal is safe for concurrent use — the parallel ComposeAll frontier
// and any future concurrent phases emit through the same mutex, so sinks
// observe a strictly increasing sequence.
type Journal struct {
	mu    sync.Mutex
	seq   uint64
	spans atomic.Uint64
	epoch time.Time
	sink  Sink
}

// NewJournal wraps a sink. A nil sink yields a disabled journal.
func NewJournal(sink Sink) *Journal {
	if sink == nil {
		return nil
	}
	return &Journal{sink: sink, epoch: time.Now()}
}

// Enabled reports whether emitted events reach a sink. Guard expensive
// payload construction (rendered traces, size counts) behind this.
func (j *Journal) Enabled() bool { return j != nil }

// Emit assigns the next sequence number, stamps the emission timestamp
// (nanoseconds since the journal was opened, monotonic — so timestamps
// are non-decreasing across the file), and forwards the event. Safe on a
// nil journal and from concurrent goroutines.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	e.TNS = time.Since(j.epoch).Nanoseconds()
	j.sink.Emit(e)
	j.mu.Unlock()
}

// NewSpan allocates a journal-unique span ID (0 on a disabled journal,
// where it is never emitted anyway). Span IDs are independent of sequence
// numbers: an emitter may allocate one before knowing how many events the
// span will cover.
func (j *Journal) NewSpan() uint64 {
	if j == nil {
		return 0
	}
	return j.spans.Add(1)
}

// Seq returns the sequence number of the most recently emitted event
// (0 when nothing was emitted or the journal is disabled).
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Close flushes and closes the underlying sink if it supports it.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
