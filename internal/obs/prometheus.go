package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Registry snapshot in the Prometheus text exposition
// format (version 0.0.4), served by the HTTP /metrics endpoint
// (internal/obs/httpd). Instrument names map to the muml_* namespace with
// dots flattened to underscores: the counter "batch.instances" becomes
// muml_batch_instances_total, the max-gauge "ctl.peak_states" becomes
// muml_ctl_peak_states_max, the settable gauge "runtime.goroutines"
// becomes the bare muml_runtime_goroutines, a timer "core.check" becomes the pair
// muml_core_check_spans_total / muml_core_check_seconds_total, and a
// histogram "core.check" becomes the muml_core_check_ns family
// (_bucket{le="…"} / _sum / _count, boundaries from HistogramBounds).
//
// Sanitization can collide ("ctl.check" and "ctl_check" both map to
// muml_ctl_check_*); a family is rendered once, first wins, so the
// exposition never carries the duplicate # TYPE or sample lines that
// Prometheus rejects. The snapshot is sorted by instrument name, which
// makes first-wins deterministic.

// WritePrometheus renders the snapshot as Prometheus text exposition.
// A nil or empty snapshot renders nothing, which is a valid exposition.
func WritePrometheus(w io.Writer, snap []Metric) error {
	var b strings.Builder
	seen := make(map[string]bool, len(snap))
	// claim reserves every family name a metric would emit; if any is
	// already taken by an earlier (same- or different-kind) instrument the
	// whole metric is skipped, keeping the exposition free of duplicates.
	claim := func(names ...string) bool {
		for _, n := range names {
			if seen[n] {
				return false
			}
		}
		for _, n := range names {
			seen[n] = true
		}
		return true
	}
	for _, m := range snap {
		base := "muml_" + promSanitize(m.Name)
		switch m.Kind {
		case "counter":
			if claim(base + "_total") {
				writePromFamily(&b, base+"_total", "counter", strconv.FormatInt(m.Value, 10))
			}
		case "max":
			if claim(base + "_max") {
				writePromFamily(&b, base+"_max", "gauge", strconv.FormatInt(m.Value, 10))
			}
		case "gauge":
			if claim(base) {
				writePromFamily(&b, base, "gauge", strconv.FormatInt(m.Value, 10))
			}
		case "timer":
			if claim(base+"_spans_total", base+"_seconds_total") {
				writePromFamily(&b, base+"_spans_total", "counter", strconv.FormatInt(m.Value, 10))
				seconds := float64(m.TotalNS) / 1e9
				writePromFamily(&b, base+"_seconds_total", "counter",
					strconv.FormatFloat(seconds, 'g', -1, 64))
			}
		case "histogram":
			if claim(base + "_ns") {
				writePromHistogram(&b, base+"_ns", m)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePromFamily(b *strings.Builder, name, typ, value string) {
	fmt.Fprintf(b, "# TYPE %s %s\n%s %s\n", name, typ, name, value)
}

// writePromHistogram renders one histogram family: cumulative _bucket
// series over HistogramBounds plus +Inf, then _sum and _count. The _count
// and +Inf samples are the sum of the snapshot's buckets, so the family
// is internally consistent even if the instrument moved on since.
func writePromHistogram(b *strings.Builder, name string, m Metric) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum int64
	for i, bound := range HistogramBounds {
		var c int64
		if i < len(m.Buckets) {
			c = m.Buckets[i]
		}
		cum += c
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
	}
	if len(m.Buckets) > len(HistogramBounds) {
		cum += m.Buckets[len(HistogramBounds)]
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %d\n", name, m.TotalNS)
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}

// promSanitize maps an instrument name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_]; anything else (the dots of the registry's
// hierarchy, mostly) becomes an underscore.
func promSanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
