package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Registry snapshot in the Prometheus text exposition
// format (version 0.0.4), served by the HTTP /metrics endpoint
// (internal/obs/httpd). Instrument names map to the muml_* namespace with
// dots flattened to underscores: the counter "batch.instances" becomes
// muml_batch_instances_total, the max-gauge "ctl.peak_states" becomes
// muml_ctl_peak_states_max, and a timer "core.check" becomes the pair
// muml_core_check_spans_total / muml_core_check_seconds_total.

// WritePrometheus renders the snapshot as Prometheus text exposition.
// A nil or empty snapshot renders nothing, which is a valid exposition.
func WritePrometheus(w io.Writer, snap []Metric) error {
	var b strings.Builder
	for _, m := range snap {
		base := "muml_" + promSanitize(m.Name)
		switch m.Kind {
		case "counter":
			writePromFamily(&b, base+"_total", "counter", strconv.FormatInt(m.Value, 10))
		case "max":
			writePromFamily(&b, base+"_max", "gauge", strconv.FormatInt(m.Value, 10))
		case "timer":
			writePromFamily(&b, base+"_spans_total", "counter", strconv.FormatInt(m.Value, 10))
			seconds := float64(m.TotalNS) / 1e9
			writePromFamily(&b, base+"_seconds_total", "counter",
				strconv.FormatFloat(seconds, 'g', -1, 64))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePromFamily(b *strings.Builder, name, typ, value string) {
	fmt.Fprintf(b, "# TYPE %s %s\n%s %s\n", name, typ, name, value)
}

// promSanitize maps an instrument name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_]; anything else (the dots of the registry's
// hierarchy, mostly) becomes an underscore.
func promSanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
