package obs

import (
	"sync"
)

// RingSink is the flight recorder of the live plane: a bounded ring that
// keeps the last N journal events in memory and fans them out to live
// subscribers. It composes with the JSONL file sink through TeeSink, so a
// run can persist its full journal while the HTTP plane serves the recent
// tail (/journal/tail) and a server-sent-event stream (/events).
//
// Emit never blocks: a subscriber whose buffered channel is full is
// dropped (its channel closed) rather than stalling the journal's emit
// path — the journal mutex is held during Emit, so one slow SSE client
// must never be able to pause the synthesis loop.
type RingSink struct {
	mu      sync.Mutex
	buf     []Event
	next    int // next write position
	full    bool
	nextID  int
	subs    map[int]chan Event
	dropped int64
}

// DefaultRingSize is the ring capacity used when NewRingSink is given a
// non-positive size.
const DefaultRingSize = 512

// NewRingSink returns a ring keeping the last n events (DefaultRingSize
// when n <= 0).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &RingSink{buf: make([]Event, n), subs: make(map[int]chan Event)}
}

// Emit records the event in the ring and offers it to every subscriber.
// A subscriber that cannot take it immediately is dropped: its channel is
// closed and it must re-subscribe (the /events handler turns this into a
// client disconnect).
func (s *RingSink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.buf[s.next] = e
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	for id, ch := range s.subs {
		select {
		case ch <- e:
		default:
			delete(s.subs, id)
			close(ch)
			s.dropped++
		}
	}
	s.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (s *RingSink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Dropped reports how many subscribers have been disconnected for falling
// behind.
func (s *RingSink) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Tail returns the most recent min(n, held) events, oldest first. Safe on
// a nil ring (returns nil).
func (s *RingSink) Tail(n int) []Event {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tailLocked(n)
}

func (s *RingSink) tailLocked(n int) []Event {
	held := s.next
	if s.full {
		held = len(s.buf)
	}
	if n > held {
		n = held
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := s.next - n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

// Subscribe registers a live listener with the given channel buffer
// (minimum 1) and atomically returns the current tail of up to replay
// events, so the listener sees recent history followed by a gap-free live
// stream. The returned cancel function detaches the subscriber; it is
// safe to call after the emitter has already dropped it. The channel is
// closed either by cancel or by the emitter on overflow — a closed
// channel tells the consumer it fell behind.
func (s *RingSink) Subscribe(replay, buffer int) (tail []Event, ch <-chan Event, cancel func()) {
	if buffer < 1 {
		buffer = 1
	}
	c := make(chan Event, buffer)
	if s == nil {
		close(c)
		return nil, c, func() {}
	}
	s.mu.Lock()
	tail = s.tailLocked(replay)
	id := s.nextID
	s.nextID++
	s.subs[id] = c
	s.mu.Unlock()
	return tail, c, func() {
		s.mu.Lock()
		if cur, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(cur)
		}
		s.mu.Unlock()
	}
}
