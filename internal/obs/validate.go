package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// This file defines the JSONL journal schema and its validator, used by
// cmd/obscheck and the Makefile's obs-smoke gate: every line must decode
// into an Event with no unknown fields, carry a known kind, an iteration
// of -1 or greater, a non-negative duration, and sequence numbers must be
// strictly increasing across the file. On top of the per-event checks the
// validator enforces the causal-trace invariants of DESIGN.md §10: span
// IDs are unique, a parent span must have been opened by an earlier
// event, the trace ID is constant within a span tree, and emission
// timestamps never go backwards. Violations report the offending event's
// sequence number so cmd/obscheck pinpoints the first bad record.

// jsonlValidator carries the cross-event state of one validation pass.
type jsonlValidator struct {
	prevSeq uint64
	prevTNS int64
	// spanTrace maps every opened span to the trace of its opening event.
	spanTrace map[uint64]string
}

// DecodeJSONL parses a JSONL journal into its events, enforcing the
// schema. It fails on the first invalid line, reporting its 1-based line
// number.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	v := &jsonlValidator{spanTrace: make(map[uint64]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("journal line %d: empty line", line)
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("journal line %d: trailing data after event", line)
		}
		if err := v.validate(e); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ValidateJSONL checks a JSONL journal against the schema and returns the
// number of valid events.
func ValidateJSONL(r io.Reader) (int, error) {
	events, err := DecodeJSONL(r)
	return len(events), err
}

func (v *jsonlValidator) validate(e Event) error {
	if e.Seq <= v.prevSeq {
		return fmt.Errorf("seq %d: not greater than predecessor %d", e.Seq, v.prevSeq)
	}
	if !KnownKinds[e.Kind] {
		return fmt.Errorf("seq %d: unknown event kind %q", e.Seq, e.Kind)
	}
	if e.Iter < -1 {
		return fmt.Errorf("seq %d: invalid iteration %d", e.Seq, e.Iter)
	}
	if e.DurNS < 0 {
		return fmt.Errorf("seq %d: negative duration %d", e.Seq, e.DurNS)
	}
	if e.TNS < 0 {
		return fmt.Errorf("seq %d: negative timestamp %d", e.Seq, e.TNS)
	}
	if e.TNS != 0 && e.TNS < v.prevTNS {
		return fmt.Errorf("seq %d: timestamp %d precedes predecessor's %d", e.Seq, e.TNS, v.prevTNS)
	}
	if e.Span != 0 {
		if e.Span == e.Parent {
			return fmt.Errorf("seq %d: span %d is its own parent", e.Seq, e.Span)
		}
		if _, dup := v.spanTrace[e.Span]; dup {
			return fmt.Errorf("seq %d: span %d already opened by an earlier event", e.Seq, e.Span)
		}
	}
	if e.Parent != 0 {
		owner, ok := v.spanTrace[e.Parent]
		if !ok {
			return fmt.Errorf("seq %d: parent span %d not opened by an earlier event", e.Seq, e.Parent)
		}
		if owner != e.Trace {
			return fmt.Errorf("seq %d: trace %q differs from parent span %d's trace %q",
				e.Seq, e.Trace, e.Parent, owner)
		}
	}
	switch e.Kind {
	case KindResourceSample:
		// A live process always has at least the sampler goroutine itself.
		if e.N["goroutines"] < 1 {
			return fmt.Errorf("seq %d: resource_sample with %d goroutines", e.Seq, e.N["goroutines"])
		}
		if e.N["heap_live_bytes"] < 0 || e.N["alloc_bytes"] < 0 {
			return fmt.Errorf("seq %d: resource_sample with negative byte counts", e.Seq)
		}
	case KindCostReport:
		for _, k := range []string{"instances", "cpu_ns", "alloc_bytes", "peak_states", "ctl_words"} {
			if e.N[k] < 0 {
				return fmt.Errorf("seq %d: cost_report field %s negative (%d)", e.Seq, k, e.N[k])
			}
		}
	case KindOverloadEnter:
		if e.S["reason"] == "" {
			return fmt.Errorf("seq %d: overload_enter without a reason", e.Seq)
		}
	}
	if e.Kind == KindHistogramSnapshot {
		if e.S["name"] == "" {
			return fmt.Errorf("seq %d: histogram_snapshot without an instrument name", e.Seq)
		}
		var sum int64
		for k, n := range e.N {
			if len(k) == 3 && k[0] == 'b' && k[1] >= '0' && k[1] <= '9' && k[2] >= '0' && k[2] <= '9' {
				if n < 0 {
					return fmt.Errorf("seq %d: histogram_snapshot bucket %s negative (%d)", e.Seq, k, n)
				}
				sum += n
			}
		}
		if sum != e.N["count"] {
			return fmt.Errorf("seq %d: histogram_snapshot bucket sum %d != count %d", e.Seq, sum, e.N["count"])
		}
	}
	if e.Span != 0 {
		v.spanTrace[e.Span] = e.Trace
	}
	v.prevSeq = e.Seq
	if e.TNS != 0 {
		v.prevTNS = e.TNS
	}
	return nil
}
