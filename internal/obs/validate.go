package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// This file defines the JSONL journal schema and its validator, used by
// cmd/obscheck and the Makefile's obs-smoke gate: every line must decode
// into an Event with no unknown fields, carry a known kind, an iteration
// of -1 or greater, a non-negative duration, and sequence numbers must be
// strictly increasing across the file.

// DecodeJSONL parses a JSONL journal into its events, enforcing the
// schema. It fails on the first invalid line, reporting its 1-based line
// number.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	var prevSeq uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("journal line %d: empty line", line)
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("journal line %d: trailing data after event", line)
		}
		if err := validateEvent(e, prevSeq); err != nil {
			return nil, fmt.Errorf("journal line %d: %w", line, err)
		}
		prevSeq = e.Seq
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// ValidateJSONL checks a JSONL journal against the schema and returns the
// number of valid events.
func ValidateJSONL(r io.Reader) (int, error) {
	events, err := DecodeJSONL(r)
	return len(events), err
}

func validateEvent(e Event, prevSeq uint64) error {
	if e.Seq <= prevSeq {
		return fmt.Errorf("sequence %d not greater than predecessor %d", e.Seq, prevSeq)
	}
	if !KnownKinds[e.Kind] {
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	if e.Iter < -1 {
		return fmt.Errorf("invalid iteration %d", e.Iter)
	}
	if e.DurNS < 0 {
		return fmt.Errorf("negative duration %d", e.DurNS)
	}
	return nil
}
