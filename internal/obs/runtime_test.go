package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("runtime.goroutines")
	g.Set(7)
	g.Add(3)
	if g.Value() != 10 {
		t.Fatalf("Value = %d, want 10", g.Value())
	}
	if r.Gauge("runtime.goroutines") != g {
		t.Error("second lookup returned a different gauge")
	}

	found := false
	for _, m := range r.Snapshot() {
		if m.Name == "runtime.goroutines" && m.Kind == "gauge" {
			found = true
			if m.Value != 10 {
				t.Errorf("snapshot value = %d, want 10", m.Value)
			}
		}
	}
	if !found {
		t.Error("gauge missing from snapshot")
	}

	var buf bytes.Buffer
	WritePrometheus(&buf, r.Snapshot())
	if !strings.Contains(buf.String(), "muml_runtime_goroutines 10") {
		t.Errorf("exposition missing bare gauge sample:\n%s", buf.String())
	}

	var nilReg *Registry
	ng := nilReg.Gauge("x")
	ng.Set(1) // must not panic
	ng.Add(1)
	if ng.Value() != 0 {
		t.Error("nil-registry gauge holds state")
	}
}

func TestRuntimeSampler(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(NewJSONLSink(&buf))
	r := NewRegistry()

	var mu sync.Mutex
	var seen []ResourceSample
	s := StartRuntimeSampler(RuntimeSamplerOptions{
		Interval: 10 * time.Millisecond,
		Journal:  j,
		Registry: r,
		OnSample: func(rs ResourceSample) {
			mu.Lock()
			seen = append(seen, rs)
			mu.Unlock()
		},
	})
	time.Sleep(35 * time.Millisecond)
	s.Stop()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	n := len(seen)
	first := seen[0]
	mu.Unlock()
	// One immediate sample, at least one tick, one final sample on Stop.
	if n < 3 {
		t.Fatalf("%d samples after 35ms at 10ms interval, want >= 3", n)
	}
	if first.HeapLiveBytes <= 0 || first.Goroutines <= 0 || first.AllocBytes <= 0 {
		t.Errorf("implausible first sample: %+v", first)
	}

	if _, err := ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("sampler journal does not validate: %v", err)
	}
	events, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, e := range events {
		if e.Kind == KindResourceSample {
			samples++
			if e.N["goroutines"] <= 0 {
				t.Errorf("resource_sample without goroutines: %+v", e)
			}
		}
	}
	if samples != n {
		t.Errorf("%d resource_sample events, %d OnSample calls", samples, n)
	}

	if g := r.Gauge("runtime.heap_live_bytes").Value(); g <= 0 {
		t.Errorf("heap gauge = %d after sampling", g)
	}
	// The alloc counter is seeded with the cumulative total, so it tracks
	// bytes since process start, not since sampler start.
	if c := r.Counter("runtime.alloc_bytes").Value(); c < first.AllocBytes {
		t.Errorf("alloc counter = %d, below first cumulative sample %d", c, first.AllocBytes)
	}

	var nilSampler *RuntimeSampler
	nilSampler.Stop() // must not panic
}

func TestReadAllocBytesMonotonic(t *testing.T) {
	a := ReadAllocBytes()
	if a <= 0 {
		t.Fatalf("ReadAllocBytes = %d, want > 0", a)
	}
	waste := make([][]byte, 64)
	for i := range waste {
		waste[i] = make([]byte, 4096)
	}
	_ = waste
	if b := ReadAllocBytes(); b < a {
		t.Errorf("ReadAllocBytes went backwards: %d then %d", a, b)
	}
}

func TestOverloadHysteresis(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(NewJSONLSink(&buf))
	r := NewRegistry()
	o := NewOverload(OverloadOptions{
		HeapHighBytes: 1000, HeapLowBytes: 500,
		QueueHigh: 4, QueueLow: 2,
		Journal: j, Registry: r,
	})
	if o == nil {
		t.Fatal("controller disabled despite watermarks")
	}
	if active, _ := o.Active(); active {
		t.Fatal("fresh controller active")
	}

	// Below both high watermarks (heap below even the low one, so heap
	// never blocks the AND-exit later): stays inactive.
	o.ObserveHeap(400)
	o.ObserveQueue(3)
	if active, _ := o.Active(); active {
		t.Fatal("active below the high watermarks")
	}

	// Queue trips it; heap staying low must not clear it (exit is an AND
	// over low watermarks of the *enabled* signals, and queue is still up).
	o.ObserveQueue(4)
	if active, reason := o.Active(); !active || !strings.Contains(reason, "queue") {
		t.Fatalf("Active = %v %q after queue hit high", active, reason)
	}
	if g := r.Gauge("runtime.overload").Value(); g != 1 {
		t.Errorf("overload gauge = %d, want 1", g)
	}

	// Between low and high: hysteresis holds the state.
	o.ObserveQueue(3)
	if active, _ := o.Active(); !active {
		t.Fatal("cleared above the low watermark")
	}

	// At the low watermark with heap also low: exits.
	o.ObserveQueue(2)
	if active, _ := o.Active(); active {
		t.Fatal("still active at both low watermarks")
	}
	if g := r.Gauge("runtime.overload").Value(); g != 0 {
		t.Errorf("overload gauge = %d after exit, want 0", g)
	}

	// Heap alone trips and clears it too.
	o.ObserveHeap(1000)
	if active, reason := o.Active(); !active || !strings.Contains(reason, "heap") {
		t.Fatalf("Active = %v %q after heap hit high", active, reason)
	}
	o.ObserveHeap(500)
	if active, _ := o.Active(); active {
		t.Fatal("heap overload did not clear at the low watermark")
	}

	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("overload journal does not validate: %v", err)
	}
	events, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, string(e.Kind))
		if e.Kind == KindOverloadExit && e.DurNS <= 0 {
			t.Errorf("overload_exit without duration: %+v", e)
		}
	}
	want := []string{"overload_enter", "overload_exit", "overload_enter", "overload_exit"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Errorf("journal kinds = %v, want %v", kinds, want)
	}
}

func TestValidateResourceAndCostKinds(t *testing.T) {
	good := strings.Join([]string{
		`{"seq":1,"kind":"resource_sample","iter":-1,"n":{"goroutines":9,"heap_live_bytes":1,"alloc_bytes":2}}`,
		`{"seq":2,"kind":"overload_enter","iter":-1,"s":{"reason":"queue depth 4 >= high watermark 4"},"n":{"queue_depth":4}}`,
		`{"seq":3,"kind":"overload_exit","iter":-1,"dur_ns":5,"n":{"queue_depth":1}}`,
		`{"seq":4,"kind":"cost_report","iter":-1,"s":{"job":"job-1"},"n":{"instances":2,"cpu_ns":10,"alloc_bytes":20,"peak_states":3,"ctl_words":4}}`,
	}, "\n") + "\n"
	if n, err := ValidateJSONL(strings.NewReader(good)); err != nil || n != 4 {
		t.Fatalf("resource/cost journal: n=%d err=%v", n, err)
	}
	bad := map[string]string{
		"sample without goroutines": `{"seq":1,"kind":"resource_sample","iter":-1,"n":{"heap_live_bytes":1}}`,
		"negative heap":             `{"seq":1,"kind":"resource_sample","iter":-1,"n":{"goroutines":1,"heap_live_bytes":-1}}`,
		"enter without reason":      `{"seq":1,"kind":"overload_enter","iter":-1}`,
		"negative cost":             `{"seq":1,"kind":"cost_report","iter":-1,"n":{"cpu_ns":-1}}`,
	}
	for name, line := range bad {
		if _, err := ValidateJSONL(strings.NewReader(line)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestOverloadDisabledAndNil(t *testing.T) {
	if o := NewOverload(OverloadOptions{}); o != nil {
		t.Error("no watermarks should yield a nil controller")
	}
	var o *Overload
	o.ObserveHeap(1 << 40)
	o.ObserveQueue(1 << 20)
	if active, reason := o.Active(); active || reason != "" {
		t.Error("nil controller reported overload")
	}
}

func TestOverloadLowDefaultsToHigh(t *testing.T) {
	// Unset low watermarks snap to the high value: plain thresholds.
	o := NewOverload(OverloadOptions{HeapHighBytes: 100})
	o.ObserveHeap(100)
	if active, _ := o.Active(); !active {
		t.Fatal("not active at the high watermark")
	}
	o.ObserveHeap(101)
	if active, _ := o.Active(); !active {
		t.Fatal("cleared above the (defaulted) low watermark")
	}
	o.ObserveHeap(99)
	if active, _ := o.Active(); active {
		t.Fatal("still active below the defaulted low watermark")
	}
}
