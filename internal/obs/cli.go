package obs

import (
	"fmt"
	"io"
	"os"
)

// RunOptions describe the export surfaces a command opens from its
// flags before starting a synthesis run.
type RunOptions struct {
	// JournalPath, when non-empty, writes the JSONL event journal to
	// this file ("-journal out.jsonl").
	JournalPath string
	// Extra is an additional sink fed alongside the JSONL file —
	// typically a TextSink on stdout for -verbose.
	Extra Sink
	// Metrics allocates a Registry for span timers and counters
	// ("-metrics").
	Metrics bool
	// CPUProfile and MemProfile name pprof output files; the CPU
	// profile runs from OpenRun until Close, the heap profile is
	// written at Close.
	CPUProfile string
	MemProfile string
}

// Run bundles the opened surfaces. Journal and Registry are nil when
// the corresponding option was off — both are nil-safe throughout, so
// callers pass them along unconditionally.
type Run struct {
	Journal  *Journal
	Registry *Registry

	jsonl      *JSONLSink
	stopCPU    func() error
	memProfile string
}

// OpenRun opens every surface requested by o. The caller must Close
// the returned Run (even on error paths after a successful open).
func OpenRun(o RunOptions) (*Run, error) {
	r := &Run{memProfile: o.MemProfile}
	var sinks TeeSink
	if o.JournalPath != "" {
		f, err := os.Create(o.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("obs: open journal: %w", err)
		}
		r.jsonl = NewJSONLSink(f)
		sinks = append(sinks, r.jsonl)
	}
	if o.Extra != nil {
		sinks = append(sinks, o.Extra)
	}
	switch len(sinks) {
	case 0:
	case 1:
		r.Journal = NewJournal(sinks[0])
	default:
		r.Journal = NewJournal(sinks)
	}
	if o.Metrics {
		r.Registry = NewRegistry()
	}
	if o.CPUProfile != "" {
		stop, err := StartCPUProfile(o.CPUProfile)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.stopCPU = stop
	}
	return r, nil
}

// Close stops the CPU profile, writes the heap profile, and flushes
// and closes the journal file. It returns the first error encountered
// but always attempts every step.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var first error
	if r.stopCPU != nil {
		if err := r.stopCPU(); err != nil && first == nil {
			first = err
		}
		r.stopCPU = nil
	}
	if r.memProfile != "" {
		if err := WriteHeapProfile(r.memProfile); err != nil && first == nil {
			first = err
		}
		r.memProfile = ""
	}
	if r.jsonl != nil {
		if err := r.jsonl.Close(); err != nil && first == nil {
			first = err
		}
		r.jsonl = nil
	}
	return first
}

// DumpMetrics renders the registry snapshot to w (no-op without
// -metrics).
func (r *Run) DumpMetrics(w io.Writer) {
	if r == nil || r.Registry == nil {
		return
	}
	fmt.Fprint(w, r.Registry.RenderTable())
}
