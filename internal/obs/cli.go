package obs

import (
	"fmt"
	"io"
	"os"
)

// RunOptions describe the export surfaces a command opens from its
// flags before starting a synthesis run.
type RunOptions struct {
	// JournalPath, when non-empty, writes the JSONL event journal to
	// this file ("-journal out.jsonl").
	JournalPath string
	// Extra is an additional sink fed alongside the JSONL file —
	// typically a TextSink on stdout for -verbose.
	Extra Sink
	// Metrics allocates a Registry for span timers and counters
	// ("-metrics").
	Metrics bool
	// RingSize, when positive, keeps the last RingSize journal events in
	// an in-memory flight recorder (Run.Ring) fed alongside the other
	// sinks — the data source behind the HTTP /events and /journal/tail
	// endpoints.
	RingSize int
	// CPUProfile and MemProfile name pprof output files; the CPU
	// profile runs from OpenRun until Close, the heap profile is
	// written at Close.
	CPUProfile string
	MemProfile string
}

// Run bundles the opened surfaces. Journal and Registry are nil when
// the corresponding option was off — both are nil-safe throughout, so
// callers pass them along unconditionally.
type Run struct {
	Journal  *Journal
	Registry *Registry
	// Ring is the in-memory flight recorder (nil unless RingSize was set).
	Ring *RingSink

	jsonl      *JSONLSink
	stopCPU    func() error
	memProfile string
}

// OpenRun opens every surface requested by o. The caller must Close
// the returned Run (even on error paths after a successful open).
func OpenRun(o RunOptions) (*Run, error) {
	r := &Run{memProfile: o.MemProfile}
	var sinks TeeSink
	if o.JournalPath != "" {
		f, err := os.Create(o.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("obs: open journal: %w", err)
		}
		r.jsonl = NewJSONLSink(f)
		sinks = append(sinks, r.jsonl)
	}
	if o.Extra != nil {
		sinks = append(sinks, o.Extra)
	}
	if o.RingSize > 0 {
		r.Ring = NewRingSink(o.RingSize)
		sinks = append(sinks, r.Ring)
	}
	switch len(sinks) {
	case 0:
	case 1:
		r.Journal = NewJournal(sinks[0])
	default:
		r.Journal = NewJournal(sinks)
	}
	if o.Metrics {
		r.Registry = NewRegistry()
	}
	if o.CPUProfile != "" {
		stop, err := StartCPUProfile(o.CPUProfile)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.stopCPU = stop
	}
	return r, nil
}

// Close stops the CPU profile, writes the heap profile, and flushes
// and closes the journal file. It returns the first error encountered
// but always attempts every step.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	r.emitHistogramSnapshots()
	var first error
	if r.stopCPU != nil {
		if err := r.stopCPU(); err != nil && first == nil {
			first = err
		}
		r.stopCPU = nil
	}
	if r.memProfile != "" {
		if err := WriteHeapProfile(r.memProfile); err != nil && first == nil {
			first = err
		}
		r.memProfile = ""
	}
	if r.jsonl != nil {
		if err := r.jsonl.Close(); err != nil && first == nil {
			first = err
		}
		r.jsonl = nil
	}
	return first
}

// emitHistogramSnapshots journals the final state of every non-empty
// latency histogram as histogram_snapshot events, so an offline journal
// carries the same distributions the live /metrics endpoint was serving.
// Runs without both a journal and a registry skip this silently.
func (r *Run) emitHistogramSnapshots() {
	if r.Journal == nil || r.Registry == nil {
		return
	}
	for _, m := range r.Registry.Snapshot() {
		if m.Kind != "histogram" || m.Value == 0 {
			continue
		}
		n := map[string]int64{"sum_ns": m.TotalNS}
		var count int64
		for i, c := range m.Buckets {
			if c == 0 {
				continue
			}
			n[fmt.Sprintf("b%02d", i)] = c
			count += c
		}
		n["count"] = count
		r.Journal.Emit(Event{Kind: KindHistogramSnapshot, Iter: -1,
			S: map[string]string{"name": m.Name}, N: n})
	}
}

// DumpMetrics renders the registry snapshot to w (no-op without
// -metrics).
func (r *Run) DumpMetrics(w io.Writer) {
	if r == nil || r.Registry == nil {
		return
	}
	fmt.Fprint(w, r.Registry.RenderTable())
}
