package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	want := []Event{
		{Kind: KindIterationStart, Iter: 0, N: map[string]int64{"model_states": 1}},
		{Kind: KindProductRebuilt, Iter: 0, DurNS: 12345,
			N: map[string]int64{"closure_states": 4, "system_states": 10},
			S: map[string]string{"reason": "initial-build"}},
		{Kind: KindReplayStep, Iter: 1, N: map[string]int64{"blocked_at": -1},
			S: map[string]string{"trace": "[CurrentState] name=\"noConvoy\"\nline two\n"}},
		{Kind: KindVerdict, Iter: 3, S: map[string]string{"verdict": "proven"}},
	}

	var buf bytes.Buffer
	j := NewJournal(NewJSONLSink(&buf))
	for _, e := range want {
		j.Emit(e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	var prevTNS int64
	for i := range want {
		want[i].Seq = uint64(i + 1)
		// Emit stamps the monotonic journal clock; it must never run
		// backwards within one journal.
		if got[i].TNS < prevTNS {
			t.Errorf("event %d: t_ns %d ran backwards (previous %d)", i, got[i].TNS, prevTNS)
		}
		prevTNS = got[i].TNS
		want[i].TNS = got[i].TNS
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJournalSequenceMonotonicUnderConcurrency(t *testing.T) {
	var sink MemorySink
	j := NewJournal(&sink)

	const goroutines = 8
	const perGoroutine = 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				j.Emit(Event{Kind: KindComposeLevel, Iter: -1, N: map[string]int64{"level": int64(i)}})
			}
		}(g)
	}
	wg.Wait()

	events := sink.Events()
	if len(events) != goroutines*perGoroutine {
		t.Fatalf("got %d events, want %d", len(events), goroutines*perGoroutine)
	}
	// Emission and sequence assignment happen under one lock, so the sink
	// must observe exactly 1..n in order.
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if j.Seq() != uint64(len(events)) {
		t.Fatalf("journal seq = %d, want %d", j.Seq(), len(events))
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"unknown kind":   `{"seq":1,"kind":"bogus","iter":-1}`,
		"unknown field":  `{"seq":1,"kind":"note","iter":-1,"extra":true}`,
		"zero seq":       `{"seq":0,"kind":"note","iter":-1}`,
		"bad iter":       `{"seq":1,"kind":"note","iter":-2}`,
		"negative dur":   `{"seq":1,"kind":"note","iter":-1,"dur_ns":-5}`,
		"non-increasing": "{\"seq\":1,\"kind\":\"note\",\"iter\":-1}\n{\"seq\":1,\"kind\":\"note\",\"iter\":-1}",
		"not json":       `nope`,
	}
	for name, line := range cases {
		if _, err := ValidateJSONL(strings.NewReader(line)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	if n, err := ValidateJSONL(strings.NewReader(
		"{\"seq\":2,\"kind\":\"note\",\"iter\":-1}\n{\"seq\":9,\"kind\":\"verdict\",\"iter\":0}\n")); err != nil || n != 2 {
		t.Errorf("valid journal with seq gaps: n=%d err=%v", n, err)
	}
}

func TestNilJournalAndRegistryAreInert(t *testing.T) {
	var j *Journal
	if j.Enabled() {
		t.Fatal("nil journal reports enabled")
	}
	j.Emit(Event{Kind: KindNote}) // must not panic
	if j.Seq() != 0 {
		t.Fatal("nil journal has a sequence")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if NewJournal(nil) != nil {
		t.Fatal("NewJournal(nil) should be the disabled journal")
	}

	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.MaxGauge("x")
	g.Observe(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	tm := r.Timer("x")
	tm.Observe(time.Second)
	tm.Span()()
	if tm.Count() != 0 || tm.Total() != 0 {
		t.Fatal("nil timer holds a value")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Counter("b.count").Add(4)
	r.MaxGauge("a.peak").Observe(10)
	r.MaxGauge("a.peak").Observe(6)
	r.Timer("c.span").Observe(2 * time.Millisecond)

	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, m := range snap {
		names[i] = m.Name
	}
	if !reflect.DeepEqual(names, []string{"a.peak", "b.count", "c.span"}) {
		t.Fatalf("snapshot order %v", names)
	}
	if snap[0].Value != 10 || snap[1].Value != 7 || snap[2].Value != 1 {
		t.Fatalf("snapshot values %+v", snap)
	}
	if snap[2].TotalNS != (2 * time.Millisecond).Nanoseconds() {
		t.Fatalf("timer total %d", snap[2].TotalNS)
	}
	if !strings.Contains(r.RenderTable(), "b.count") {
		t.Fatal("rendered table misses a metric")
	}
}

func TestMaxGaugeConcurrent(t *testing.T) {
	g := NewRegistry().MaxGauge("peak")
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Observe(int64(i))
		}(i)
	}
	wg.Wait()
	if g.Value() != 99 {
		t.Fatalf("max = %d, want 99", g.Value())
	}
}

func TestTextSinkRendersPayload(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(NewTextSink(&buf))
	j.Emit(Event{Kind: KindCheckResult, Iter: 2, DurNS: int64(3 * time.Millisecond),
		N: map[string]int64{"property_holds": 1}})
	j.Emit(Event{Kind: KindReplayStep, Iter: 2,
		S: map[string]string{"trace": "line one\nline two\n"}})
	out := buf.String()
	for _, want := range []string{"check_result", "iter=2", "property_holds=1", "line one", "line two"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output misses %q:\n%s", want, out)
		}
	}
}

func TestTeeSinkFansOut(t *testing.T) {
	var a, b MemorySink
	j := NewJournal(TeeSink{&a, &b})
	j.Emit(Event{Kind: KindNote, Iter: -1, S: map[string]string{"text": "hi"}})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("tee delivered %d/%d events", len(a.Events()), len(b.Events()))
	}
}

func TestValidateJSONLAcceptsServiceAndStoreKinds(t *testing.T) {
	// The verifyd job-lifecycle and persistent-store events must pass the
	// validator: obscheck gates the smoke lanes on it.
	journal := strings.Join([]string{
		`{"seq":1,"kind":"job_submitted","iter":-1,"s":{"job":"job-1","source":"gen(seed=1,n=8)"},"n":{"instances":8,"queue_depth":1}}`,
		`{"seq":2,"kind":"store_miss","iter":-1,"s":{"op":"compose","key":"compose-0-0.memo"}}`,
		`{"seq":3,"kind":"store_hit","iter":-1,"s":{"op":"compose","key":"compose-0-0.memo"},"n":{"bytes":120}}`,
		`{"seq":4,"kind":"store_evict","iter":-1,"s":{"key":"compose-0-0.memo","reason":"size"},"n":{"bytes":120}}`,
		`{"seq":5,"kind":"job_done","iter":-1,"dur_ns":12,"s":{"job":"job-1","state":"done"},"n":{"memo_hits":3}}`,
	}, "\n") + "\n"
	if n, err := ValidateJSONL(strings.NewReader(journal)); err != nil || n != 5 {
		t.Fatalf("service/store journal: n=%d err=%v", n, err)
	}
}
