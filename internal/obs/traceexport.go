package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file exports a journal as Chrome trace-event JSON, loadable in
// chrome://tracing and Perfetto (ui.perfetto.dev) for flamegraph-style
// phase attribution. Duration-carrying events (check_result, replay_step,
// closure_patched, instance_done, ...) become complete ("X") slices;
// everything else becomes an instant ("i") marker. Processes map to trace
// IDs, threads to worker IDs where present, so a concurrent batch renders
// as one row per worker and a single synthesis run as one nested
// timeline.

// chromeTraceFile is the JSON Object Format of the Trace Event
// specification — the envelope Perfetto and chrome://tracing accept.
type chromeTraceFile struct {
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// chromeTraceEvent is one entry of the trace; ts and dur are in
// microseconds per the format.
type chromeTraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the events as Chrome trace-event JSON. Events
// stamped by a Journal use their real emission timestamps (a duration
// event is drawn as [t_ns-dur_ns, t_ns]); events from journals predating
// timestamps are laid out back to back per timeline so the export stays
// loadable.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTraceFile{DisplayTimeUnit: "ms", TraceEvents: []chromeTraceEvent{}}
	pids := map[string]int64{}
	cursors := map[[2]int64]int64{} // (pid, tid) -> synthetic clock for unstamped events
	for _, e := range events {
		pid, ok := pids[e.Trace]
		if !ok {
			pid = int64(len(pids) + 1)
			pids[e.Trace] = pid
			name := e.Trace
			if name == "" {
				name = "(untraced)"
			}
			out.TraceEvents = append(out.TraceEvents, chromeTraceEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": name},
			})
		}
		tid := int64(1)
		if w, ok := e.N["worker"]; ok {
			tid = w + 1
		}

		start := e.TNS - e.DurNS
		if e.TNS == 0 {
			key := [2]int64{pid, tid}
			start = cursors[key]
			cursors[key] = start + e.DurNS
		} else if start < 0 {
			start = 0
		}

		ev := chromeTraceEvent{
			Name:  string(e.Kind),
			Cat:   string(e.Kind),
			PID:   pid,
			TID:   tid,
			TS:    float64(start) / 1e3,
			Args:  traceArgs(e),
			Phase: "i",
			Scope: "t",
		}
		if e.DurNS > 0 {
			ev.Phase = "X"
			ev.Scope = ""
			ev.Dur = float64(e.DurNS) / 1e3
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	return nil
}

// traceArgs collects the event payload that is useful inside the trace
// viewer's detail pane: sequence, iteration, span identity, every integer
// field, and short single-line string fields (rendered multi-line trace
// listings would bloat the export and are available in the journal).
func traceArgs(e Event) map[string]any {
	args := map[string]any{"seq": e.Seq}
	if e.Iter >= 0 {
		args["iter"] = e.Iter
	}
	if e.Span != 0 {
		args["span"] = e.Span
	}
	if e.Parent != 0 {
		args["parent"] = e.Parent
	}
	for k, v := range e.N {
		args[k] = v
	}
	for k, v := range e.S {
		if len(v) <= 120 && !strings.Contains(v, "\n") {
			args[k] = v
		}
	}
	return args
}
