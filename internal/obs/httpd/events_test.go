package httpd

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"muml/internal/obs"
)

// readDataLine scans the SSE stream for the next `data:` line and returns
// its payload, skipping ids, comments, and blank separators.
func readDataLine(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended: %v", err)
		}
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "data:"); ok {
			return strings.TrimSpace(rest)
		}
	}
}

func TestEventsStreamReplayThenLive(t *testing.T) {
	ring := obs.NewRingSink(16)
	j := obs.NewJournal(ring)
	j.Emit(obs.Event{Kind: obs.KindNote, Iter: -1, S: map[string]string{"text": "replayed"}})

	srv, err := Start("127.0.0.1:0", Options{Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+srv.Addr()+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}

	r := bufio.NewReader(resp.Body)
	var replayed obs.Event
	if err := json.Unmarshal([]byte(readDataLine(t, r)), &replayed); err != nil {
		t.Fatalf("replayed event not JSON: %v", err)
	}
	if replayed.S["text"] != "replayed" {
		t.Errorf("replay tail = %+v, want the pre-subscribe event", replayed)
	}

	// The handler has flushed the replay, so its subscription is live.
	j.Emit(obs.Event{Kind: obs.KindNote, Iter: -1, S: map[string]string{"text": "live"}})
	var live obs.Event
	if err := json.Unmarshal([]byte(readDataLine(t, r)), &live); err != nil {
		t.Fatalf("live event not JSON: %v", err)
	}
	if live.S["text"] != "live" || live.Seq <= replayed.Seq {
		t.Errorf("live event = %+v, want text=live after seq %d", live, replayed.Seq)
	}
}

// TestEventsDropsSlowClientWithoutBlockingEmit is the backpressure
// contract of the live plane (run with -race): a client that cannot keep
// up is disconnected by the emitter, and the journal's Emit path is never
// blocked by it.
func TestEventsDropsSlowClientWithoutBlockingEmit(t *testing.T) {
	oldBuf := sseBuffer
	sseBuffer = 1
	defer func() { sseBuffer = oldBuf }()

	ring := obs.NewRingSink(32)
	j := obs.NewJournal(ring)
	srv, err := Start("127.0.0.1:0", Options{Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The handler flushes (empty) replay before we get response headers,
	// so its subscription exists by now. Flood the journal faster than
	// the handler's one-slot buffer can drain; Emit must stay
	// non-blocking and eventually drop the subscriber.
	done := make(chan int)
	go func() {
		emitted := 0
		for i := 0; i < 10000 && ring.Dropped() == 0; i++ {
			j.Emit(obs.Event{Kind: obs.KindNote, Iter: -1})
			emitted++
		}
		done <- emitted
	}()
	var emitted int
	select {
	case emitted = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("journal emission blocked by a slow /events client")
	}
	if ring.Dropped() == 0 {
		t.Fatalf("slow client never dropped after %d events", emitted)
	}

	// The server tells the client why before closing the stream.
	deadline := time.Now().Add(5 * time.Second)
	r := bufio.NewReader(resp.Body)
	for {
		if time.Now().After(deadline) {
			t.Fatal("stream did not end after drop")
		}
		line, err := r.ReadString('\n')
		if strings.Contains(line, "dropped (slow consumer)") {
			break
		}
		if err != nil {
			t.Fatalf("stream ended without drop notice: %v", err)
		}
	}
}

// TestEventsFanOutConcurrentEmitters runs several SSE clients against a
// journal hammered by concurrent emitters (run with -race): every client
// must observe a strictly increasing seq stream with no duplicates, and
// every emitter must finish regardless of client pace.
func TestEventsFanOutConcurrentEmitters(t *testing.T) {
	const (
		emitters  = 4
		perEmit   = 200
		clients   = 3
		wantTotal = emitters * perEmit
	)
	// Size the per-client buffer to the full stream: this test is about
	// every client seeing every event in order, not the drop path (covered
	// by TestEventsDropsSlowClientWithoutBlockingEmit).
	oldBuf := sseBuffer
	sseBuffer = wantTotal + 16
	defer func() { sseBuffer = oldBuf }()

	ring := obs.NewRingSink(wantTotal + 1)
	j := obs.NewJournal(ring)
	srv, err := Start("127.0.0.1:0", Options{Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Connect all clients before the first emit so no one needs replay to
	// see the full stream.
	type clientRun struct {
		seqs []uint64
		err  error
	}
	results := make(chan clientRun, clients)
	ready := make(chan struct{}, clients)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for c := 0; c < clients; c++ {
		go func() {
			var run clientRun
			defer func() { results <- run }()
			req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+srv.Addr()+"/events", nil)
			resp, err := http.DefaultTransport.RoundTrip(req)
			if err != nil {
				run.err = err
				ready <- struct{}{}
				return
			}
			defer resp.Body.Close()
			ready <- struct{}{}
			r := bufio.NewReader(resp.Body)
			for len(run.seqs) < wantTotal {
				var e obs.Event
				if err := json.Unmarshal([]byte(readData(r, &run.err)), &e); run.err != nil {
					return
				} else if err != nil {
					run.err = err
					return
				}
				run.seqs = append(run.seqs, e.Seq)
			}
		}()
	}
	for c := 0; c < clients; c++ {
		<-ready
	}

	var wg sync.WaitGroup
	for w := 0; w < emitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEmit; i++ {
				j.Emit(obs.Event{Kind: obs.KindNote, Iter: -1})
			}
		}()
	}
	wg.Wait()

	for c := 0; c < clients; c++ {
		run := <-results
		if run.err != nil {
			t.Fatalf("client %d: %v", c, run.err)
		}
		if len(run.seqs) != wantTotal {
			t.Fatalf("client %d: saw %d events, want %d", c, len(run.seqs), wantTotal)
		}
		for i := 1; i < len(run.seqs); i++ {
			if run.seqs[i] <= run.seqs[i-1] {
				t.Fatalf("client %d: seq %d after %d at position %d", c, run.seqs[i], run.seqs[i-1], i)
			}
		}
	}
}

// readData reads the next SSE data payload, recording stream errors in
// *errp (the concurrent variant of readDataLine, which t.Fatals and so
// must not run off the test goroutine).
func readData(r *bufio.Reader, errp *error) string {
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			*errp = err
			return ""
		}
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "data:"); ok {
			return strings.TrimSpace(rest)
		}
	}
}

func TestJournalTail(t *testing.T) {
	ring := obs.NewRingSink(8)
	j := obs.NewJournal(ring)
	for i := 0; i < 5; i++ {
		j.Emit(obs.Event{Kind: obs.KindNote, Iter: -1})
	}
	srv, err := Start("127.0.0.1:0", Options{Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ctype := get(t, base+"/journal/tail?n=2")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type %q", ctype)
	}
	var events []obs.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("not a JSON array: %v: %s", err, body)
	}
	if len(events) != 2 || events[0].Seq != 4 || events[1].Seq != 5 {
		t.Errorf("tail = %+v, want seqs 4,5", events)
	}

	body, _ = get(t, base+"/journal/tail")
	if err := json.Unmarshal([]byte(body), &events); err != nil || len(events) != 5 {
		t.Errorf("default tail: err=%v len=%d, want 5", err, len(events))
	}

	resp, err := http.Get(base + "/journal/tail?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", resp.StatusCode)
	}
}
