// Package httpd serves the live observability plane of a running
// verification command over HTTP (the -http flag on batchverify, mbt,
// and experiments):
//
//	/metrics       Prometheus text exposition of the obs.Registry
//	               (including muml_build_info and histogram families)
//	/progress      JSON snapshot of the run's progress source
//	/events        Server-Sent Events tail of the live journal
//	/journal/tail  JSON snapshot of the flight-recorder ring (?n=)
//	/healthz       liveness probe ("ok" while the process runs)
//	/readyz        readiness probe (503 + reason while draining or
//	               overloaded; see Options.Ready)
//	/debug/pprof/  the standard net/http/pprof handlers
//
// The server binds eagerly (Start fails fast on a bad address) and
// serves from a background goroutine until Close. It holds no run state
// of its own — the data endpoints pull from the snapshot sources handed
// in via Options, so a request always observes a consistent
// point-in-time view no matter how the run is progressing.
//
// /events fans the journal out per client through a buffered channel; a
// client that cannot keep up is disconnected by the emitter rather than
// ever blocking the journal's emit path (see obs.RingSink).
package httpd

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"muml/internal/obs"
)

// Options name the data sources behind the endpoints. All are optional:
// a nil Registry serves an empty (valid) exposition, a nil Progress
// serves an empty JSON object, a nil Events turns /events and
// /journal/tail into 404s.
type Options struct {
	// Registry backs /metrics.
	Registry *obs.Registry
	// Progress backs /progress; it must be safe to call from concurrent
	// request handlers and should return a JSON-serializable snapshot.
	Progress func() any
	// Events backs /events (live SSE stream) and /journal/tail (ring
	// snapshot).
	Events *obs.RingSink
	// Extra, when non-nil, receives every request no built-in endpoint
	// claims — the hook cmd/verifyd uses to mount its job API on the same
	// plane. Built-in paths win; a nil Extra keeps the default 404.
	Extra http.Handler
	// Ready, when non-nil, backs /readyz: it reports whether the process
	// wants traffic and, when it does not, why (draining, overloaded). A
	// nil Ready makes /readyz identical to /healthz — always ready.
	Ready func() (bool, string)
}

// sseReplay bounds how much ring history a fresh /events subscriber is
// sent before the live stream begins, and sseBuffer is the per-client
// fan-out buffer: a client more than sseBuffer events behind is dropped.
// Variables (not consts) so the backpressure tests can shrink them.
var (
	sseReplay = 64
	sseBuffer = 256
)

// sseHeartbeat is the idle keep-alive interval of the /events stream;
// the comment frames it emits also surface dead connections to the
// server side.
const sseHeartbeat = 15 * time.Second

// Server is a live observability endpoint bound to one address.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (host:port; an empty port picks a free one) and
// serves the observability endpoints until Close.
func Start(addr string, o Options) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Ready != nil {
			if ok, reason := o.Ready(); !ok {
				if reason == "" {
					reason = "not ready"
				}
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, reason)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteBuildInfoProm(w)
		obs.WritePrometheus(w, o.Registry.Snapshot())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap any = struct{}{}
		if o.Progress != nil {
			snap = o.Progress()
		}
		enc := json.NewEncoder(w)
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(w, r, o.Events)
	})
	mux.HandleFunc("/journal/tail", func(w http.ResponseWriter, r *http.Request) {
		serveJournalTail(w, r, o.Events)
	})
	if o.Extra != nil {
		mux.Handle("/", o.Extra)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpd: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// serveEvents streams the journal as Server-Sent Events: a replay of the
// ring's recent tail, then the live feed. Each event is one `id:`/`data:`
// record carrying the JSONL encoding. The handler returns when the client
// goes away, the server shuts down, or the subscriber is dropped for
// falling behind — the drop happens on the emitter side without ever
// blocking it.
func serveEvents(w http.ResponseWriter, r *http.Request, ring *obs.RingSink) {
	if ring == nil {
		http.NotFound(w, r)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	tail, ch, cancel := ring.Subscribe(sseReplay, sseBuffer)
	defer cancel()
	for _, e := range tail {
		if writeSSE(w, e) != nil {
			return
		}
	}
	flusher.Flush()

	// dropped tells the client why the stream ends when the emitter
	// disconnected it: it fell more than sseBuffer events behind and may
	// reconnect to resync from the replay tail.
	dropped := func() {
		fmt.Fprintf(w, ": dropped (slow consumer)\n\n")
		flusher.Flush()
	}
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				dropped()
				return
			}
			if writeSSE(w, e) != nil {
				return
			}
			// Drain whatever queued up before flushing once, so a burst is
			// not one syscall per event.
			for drained := true; drained; {
				select {
				case e, ok := <-ch:
					if !ok {
						dropped()
						return
					}
					if writeSSE(w, e) != nil {
						return
					}
				default:
					drained = false
				}
			}
			flusher.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, e obs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, data)
	return err
}

// serveJournalTail serves the last n ring events (?n=, default 64) as a
// JSON array, oldest first.
func serveJournalTail(w http.ResponseWriter, r *http.Request, ring *obs.RingSink) {
	if ring == nil {
		http.NotFound(w, r)
		return
	}
	n := 64
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	events := ring.Tail(n)
	if events == nil {
		events = []obs.Event{}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(events); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Addr returns the bound address (useful with a ":0" listen address).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close drains in-flight requests briefly, then tears the server down.
// Safe on a nil server. Streaming /events handlers do not count as
// drainable — after the grace period the underlying connections are
// closed, which unblocks them.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
