// Package httpd serves the live observability plane of a running
// verification command over HTTP (the -http flag on batchverify, mbt,
// and experiments):
//
//	/metrics       Prometheus text exposition of the obs.Registry
//	/progress      JSON snapshot of the run's progress source
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard net/http/pprof handlers
//
// The server binds eagerly (Start fails fast on a bad address) and
// serves from a background goroutine until Close. It holds no run state
// of its own — both data endpoints pull from the snapshot sources handed
// in via Options, so a request always observes a consistent
// point-in-time view no matter how the run is progressing.
package httpd

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"muml/internal/obs"
)

// Options name the data sources behind the endpoints. Both are optional:
// a nil Registry serves an empty (valid) exposition, a nil Progress
// serves an empty JSON object.
type Options struct {
	// Registry backs /metrics.
	Registry *obs.Registry
	// Progress backs /progress; it must be safe to call from concurrent
	// request handlers and should return a JSON-serializable snapshot.
	Progress func() any
}

// Server is a live observability endpoint bound to one address.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start binds addr (host:port; an empty port picks a free one) and
// serves the observability endpoints until Close.
func Start(addr string, o Options) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, o.Registry.Snapshot())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap any = struct{}{}
		if o.Progress != nil {
			snap = o.Progress()
		}
		enc := json.NewEncoder(w)
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpd: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with a ":0" listen address).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close drains in-flight requests briefly, then tears the server down.
// Safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
