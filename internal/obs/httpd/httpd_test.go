package httpd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"muml/internal/obs"
)

func get(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("batch.instances").Add(7)
	var done atomic.Int64
	srv, err := Start("127.0.0.1:0", Options{
		Registry: reg,
		Progress: func() any {
			return struct {
				Done int64 `json:"done"`
			}{Done: done.Load()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ctype := get(t, base+"/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/healthz content type %q", ctype)
	}

	body, ctype = get(t, base+"/metrics")
	if !strings.Contains(body, "muml_batch_instances_total 7") {
		t.Errorf("/metrics misses the counter:\n%s", body)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}

	done.Store(42)
	body, ctype = get(t, base+"/progress")
	var snap struct {
		Done int64 `json:"done"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v: %s", err, body)
	}
	if snap.Done != 42 {
		t.Errorf("/progress done = %d, want 42", snap.Done)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/progress content type %q", ctype)
	}

	body, _ = get(t, base+"/debug/pprof/cmdline")
	if body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServerDefaultsAndClose(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	// A nil registry serves only the build-info gauge (a valid
	// exposition); a nil progress source is an empty JSON object; a nil
	// ring turns the journal endpoints into 404s.
	body, _ := get(t, base+"/metrics")
	if !strings.Contains(body, "muml_build_info{") || strings.Contains(body, "muml_batch") {
		t.Errorf("/metrics with nil registry = %q", body)
	}
	body, _ = get(t, base+"/progress")
	if strings.TrimSpace(body) != "{}" {
		t.Errorf("/progress with nil source = %q", body)
	}
	for _, path := range []string{"/events", "/journal/tail"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with nil ring: status %d, want 404", path, resp.StatusCode)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 500 * time.Millisecond}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}

	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Error("nil server is not inert")
	}
}

// TestReadyz covers the liveness/readiness split: nil Ready makes
// /readyz identical to /healthz; a Ready source flips it to 503 with
// the reported reason while /healthz stays 200.
func TestReadyz(t *testing.T) {
	var ready atomic.Bool
	var reason atomic.Value
	ready.Store(true)
	reason.Store("")
	srv, err := Start("127.0.0.1:0", Options{
		Ready: func() (bool, string) { return ready.Load(), reason.Load().(string) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ctype := get(t, base+"/readyz")
	if strings.TrimSpace(body) != "ok" || !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/readyz while ready = %q (%s)", body, ctype)
	}

	check503 := func(wantReason string) {
		t.Helper()
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/readyz while not ready: status %d, want 503", resp.StatusCode)
		}
		if !strings.Contains(string(b), wantReason) {
			t.Errorf("/readyz body %q does not carry reason %q", b, wantReason)
		}
	}
	ready.Store(false)
	reason.Store("draining")
	check503("draining")
	// An empty reason still yields a useful body.
	reason.Store("")
	check503("not ready")

	// Liveness is unaffected by readiness.
	if body, _ := get(t, base+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz while not ready = %q", body)
	}

	// Without a Ready source, /readyz always answers ok.
	srv2, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if body, _ := get(t, "http://"+srv2.Addr()+"/readyz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/readyz with nil Ready = %q", body)
	}
}

func TestStartFailsFastOnBadAddress(t *testing.T) {
	if _, err := Start("256.0.0.1:bogus", Options{}); err == nil {
		t.Fatal("Start accepted an unusable address")
	}
}

func TestProgressConsistentUnderConcurrentWrites(t *testing.T) {
	// The /progress handler must always serve a decodable, internally
	// consistent snapshot while the source is being updated concurrently
	// (run with -race to catch unsynchronized access).
	type snap struct {
		Done  int64 `json:"done"`
		Twice int64 `json:"twice"`
	}
	var mu struct {
		ch   chan struct{}
		done atomic.Int64
	}
	mu.ch = make(chan struct{})
	srv, err := Start("127.0.0.1:0", Options{
		Progress: func() any {
			d := mu.done.Load()
			return snap{Done: d, Twice: 2 * d}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	go func() {
		for i := 0; i < 500; i++ {
			mu.done.Add(1)
		}
		close(mu.ch)
	}()

	base := "http://" + srv.Addr()
	for i := 0; i < 20; i++ {
		body, _ := get(t, base+"/progress")
		var s snap
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatalf("iteration %d: %v: %s", i, err, body)
		}
		if s.Twice != 2*s.Done {
			t.Fatalf("iteration %d: torn snapshot %+v", i, s)
		}
	}
	<-mu.ch
	body, _ := get(t, base+"/progress")
	if want := fmt.Sprintf(`{"done":500,"twice":1000}`); strings.TrimSpace(body) != want {
		t.Errorf("final snapshot %q, want %q", body, want)
	}
}
