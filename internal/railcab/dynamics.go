package railcab

import (
	"fmt"
	"math"
)

// This file provides the kinematic substrate behind the pattern
// constraint: a discrete-time longitudinal dynamics simulation of two
// shuttles on the same track. It makes the safety argument of the paper's
// application example measurable: in convoy mode the rear shuttle closes
// up to the reduced convoy gap and the front shuttle restricts itself to
// reduced braking force; if the front shuttle believes it is *not* in a
// convoy (mode mismatch — exactly what the pattern constraint forbids) it
// brakes with full force during an emergency and the rear shuttle's
// delayed reaction leads to a rear-end collision.

// Mode is a shuttle coordination mode.
type Mode int

// Coordination modes.
const (
	ModeNoConvoy Mode = iota + 1
	ModeConvoy
)

func (m Mode) String() string {
	if m == ModeConvoy {
		return "convoy"
	}
	return "noConvoy"
}

// DynamicsConfig holds the physical parameters of the simulation. All
// units are SI; one simulation step is StepSeconds.
type DynamicsConfig struct {
	StepSeconds float64
	// CruiseSpeed both shuttles travel at initially (m/s).
	CruiseSpeed float64
	// FullBrake and ReducedBrake are deceleration magnitudes (m/s²). A
	// convoy-mode front shuttle may only use ReducedBrake so that the
	// follower can react in time.
	FullBrake    float64
	ReducedBrake float64
	// ConvoyGap is the reduced distance held in convoy mode; NormalGap the
	// distance held otherwise (m).
	ConvoyGap float64
	NormalGap float64
	// ReactionSteps is the follower's reaction delay in steps.
	ReactionSteps int
}

// DefaultDynamics returns parameters in the RailCab ballpark (shuttles at
// 30 m/s ≈ 108 km/h).
func DefaultDynamics() DynamicsConfig {
	return DynamicsConfig{
		StepSeconds:   0.1,
		CruiseSpeed:   30,
		FullBrake:     5,
		ReducedBrake:  2,
		ConvoyGap:     10,
		NormalGap:     120,
		ReactionSteps: 8,
	}
}

// ShuttleState is the kinematic state of one shuttle.
type ShuttleState struct {
	Position float64 // m along the track
	Speed    float64 // m/s
}

// SimResult is the outcome of an emergency braking scenario.
type SimResult struct {
	Collision bool
	// MinGap is the smallest front-rear distance observed (negative if
	// they collided).
	MinGap float64
	// StopSteps is the number of steps until both shuttles stood still.
	StopSteps int
	// Trajectory records the gap per step for plotting.
	Trajectory []float64
}

// EmergencyBrakeScenario simulates an emergency stop of the front shuttle:
//
//   - frontMode determines the front shuttle's braking force: full in
//     noConvoy mode, reduced in convoy mode (its role invariant);
//   - rearMode determines the initial gap: the reduced convoy gap in
//     convoy mode, the normal gap otherwise — and the rear shuttle always
//     brakes with full force (its role invariant), after its reaction
//     delay.
//
// The mode combination forbidden by the pattern constraint — rear in
// convoy (small gap), front in noConvoy (full braking) — is exactly the
// one that produces a collision under the default parameters.
func EmergencyBrakeScenario(cfg DynamicsConfig, frontMode, rearMode Mode) SimResult {
	gap := cfg.NormalGap
	if rearMode == ModeConvoy {
		gap = cfg.ConvoyGap
	}
	frontBrake := cfg.FullBrake
	if frontMode == ModeConvoy {
		frontBrake = cfg.ReducedBrake
	}

	front := ShuttleState{Position: gap, Speed: cfg.CruiseSpeed}
	rear := ShuttleState{Position: 0, Speed: cfg.CruiseSpeed}

	res := SimResult{MinGap: gap}
	for step := 0; ; step++ {
		// Front brakes from step 0; rear from ReactionSteps on.
		front = integrate(front, frontBrake, cfg.StepSeconds)
		rearBrake := 0.0
		if step >= cfg.ReactionSteps {
			rearBrake = cfg.FullBrake
		}
		rear = integrate(rear, rearBrake, cfg.StepSeconds)

		g := front.Position - rear.Position
		res.Trajectory = append(res.Trajectory, g)
		if g < res.MinGap {
			res.MinGap = g
		}
		if g <= 0 {
			res.Collision = true
			res.StopSteps = step + 1
			return res
		}
		if front.Speed == 0 && rear.Speed == 0 {
			res.StopSteps = step + 1
			return res
		}
		if step > 100000 {
			// Defensive bound; unreachable with sane parameters.
			res.StopSteps = step
			return res
		}
	}
}

// integrate advances one shuttle one step under the given deceleration.
func integrate(s ShuttleState, brake, dt float64) ShuttleState {
	speed := math.Max(0, s.Speed-brake*dt)
	// Trapezoidal position update.
	s.Position += (s.Speed + speed) / 2 * dt
	s.Speed = speed
	return s
}

// ModeTable runs the emergency scenario for all four mode combinations and
// reports which ones are safe; the unsafe ones must be exactly the ones
// the pattern constraint forbids.
func ModeTable(cfg DynamicsConfig) []ModeOutcome {
	var out []ModeOutcome
	for _, front := range []Mode{ModeNoConvoy, ModeConvoy} {
		for _, rear := range []Mode{ModeNoConvoy, ModeConvoy} {
			res := EmergencyBrakeScenario(cfg, front, rear)
			out = append(out, ModeOutcome{
				FrontMode: front,
				RearMode:  rear,
				Forbidden: rear == ModeConvoy && front == ModeNoConvoy,
				Result:    res,
			})
		}
	}
	return out
}

// ModeOutcome is one row of the mode/safety table.
type ModeOutcome struct {
	FrontMode, RearMode Mode
	// Forbidden reports whether the pattern constraint forbids this
	// combination.
	Forbidden bool
	Result    SimResult
}

func (o ModeOutcome) String() string {
	status := "safe"
	if o.Result.Collision {
		status = "COLLISION"
	}
	return fmt.Sprintf("front=%s rear=%s forbidden=%v minGap=%.1fm %s",
		o.FrontMode, o.RearMode, o.Forbidden, o.Result.MinGap, status)
}
