package railcab

import (
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
)

func TestFrontRoleShape(t *testing.T) {
	front := FrontRole()
	// Fig. 5: noConvoy(default, answer), convoy(cruise, break).
	for _, name := range []string{"noConvoy::default", "noConvoy::answer", "convoy::cruise", "convoy::break"} {
		if front.State(name) == automata.NoState {
			t.Fatalf("missing state %q in front role:\n%s", name, front.Dot())
		}
	}
	// Labels cover the composite states.
	if !front.HasLabel(front.State("noConvoy::answer"), "frontRole.noConvoy") {
		t.Fatal("answer lacks frontRole.noConvoy label")
	}
	if !front.HasLabel(front.State("convoy::break"), "frontRole.convoy") {
		t.Fatal("break lacks frontRole.convoy label")
	}
	if err := front.Validate(); err != nil {
		t.Fatal(err)
	}
	// Urgent answer state: no idle step.
	for _, tr := range front.TransitionsFrom(front.State("noConvoy::answer")) {
		if tr.Label.In.IsEmpty() && tr.Label.Out.IsEmpty() {
			t.Fatal("urgent answer state has an idle step")
		}
	}
}

func TestPatternVerifies(t *testing.T) {
	v, err := Pattern().Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfied {
		for _, f := range v.Failures {
			t.Logf("failure: %s\n%s", f, f.Result.Explanation)
		}
		t.Fatal("DistanceCoordination pattern must verify (Fig. 1)")
	}
}

func TestDelayedPatternRevealsBreakWindow(t *testing.T) {
	// With an explicit delaying connector the pattern constraint is
	// genuinely violated: the front role leaves convoy mode the moment it
	// sends breakConvoyAccepted, but the message is still in flight, so
	// the rear role is still in convoy — exactly the transient hazard the
	// QoS modeling of Section 2.2 exists to uncover. The synchronous
	// pattern hides this window (TestPatternVerifies); the delayed one
	// must expose it.
	p, err := DelayedPattern(1, false)
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	var constraintViolated bool
	for _, f := range v.Failures {
		if f.Description == "pattern constraint" {
			constraintViolated = true
			if f.Result.Counterexample == nil {
				t.Fatal("violation without counterexample")
			}
		}
	}
	if !constraintViolated {
		t.Fatal("delayed pattern failed to expose the break-convoy delivery window")
	}

	// Entering a convoy is safe even with delay: the rear commits only
	// after startConvoy is delivered, at which point the front is already
	// in convoy mode. Restricting the check to the entry phase (break
	// messages removed from the roles) must verify.
	entry, err := DelayedEntryPattern(1)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := entry.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ve.Failures {
		if f.Description == "pattern constraint" {
			t.Fatalf("entry-only delayed pattern violated the constraint:\n%s", f.Result.Explanation)
		}
	}
}

func TestRearRoleRefinesItself(t *testing.T) {
	rear := RearRole()
	ok, cex, err := automata.Refines(rear, rear)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("rear role does not refine itself: %v", cex)
	}
}

func TestControllersAreDeterministicComponents(t *testing.T) {
	comps := map[string]legacy.Component{
		"correct":  &CorrectShuttle{},
		"eager":    &EagerShuttle{},
		"blocking": &BlockingShuttle{},
	}
	for name, comp := range comps {
		t.Run(name, func(t *testing.T) {
			// Determinism: two runs over the same inputs agree.
			inputs := []automata.SignalSet{
				automata.EmptySet,
				automata.NewSignalSet(StartConvoy),
				automata.EmptySet,
				automata.NewSignalSet(BreakConvoyAccepted),
			}
			run := func() ([]string, []string) {
				comp.Reset()
				var outs, states []string
				for _, in := range inputs {
					out, ok := comp.Step(in)
					if !ok {
						outs = append(outs, "<blocked>")
						break
					}
					outs = append(outs, out.Key())
					states = append(states, comp.(legacy.Introspector).StateName())
				}
				return outs, states
			}
			o1, s1 := run()
			o2, s2 := run()
			if len(o1) != len(o2) {
				t.Fatal("runs differ in length")
			}
			for i := range o1 {
				if o1[i] != o2[i] || (i < len(s1) && s1[i] != s2[i]) {
					t.Fatalf("nondeterministic at step %d", i)
				}
			}
		})
	}
}

func TestCorrectShuttleWalksProtocol(t *testing.T) {
	s := &CorrectShuttle{}
	s.Reset()
	out, ok := s.Step(automata.EmptySet)
	if !ok || !out.Contains(ConvoyProposal) {
		t.Fatalf("step1 = %v/%v", out, ok)
	}
	if _, ok := s.Step(automata.NewSignalSet(StartConvoy)); !ok {
		t.Fatal("startConvoy refused")
	}
	if s.StateName() != "convoy::cruise" {
		t.Fatalf("state = %q", s.StateName())
	}
	out, ok = s.Step(automata.EmptySet)
	if !ok || !out.Contains(BreakConvoyProposal) {
		t.Fatalf("break proposal = %v/%v", out, ok)
	}
	if _, ok := s.Step(automata.NewSignalSet(BreakConvoyAccepted)); !ok {
		t.Fatal("breakConvoyAccepted refused")
	}
	if s.StateName() != "noConvoy::default" {
		t.Fatalf("state = %q", s.StateName())
	}
	// Rejected break keeps the convoy.
	s.Reset()
	s.Step(automata.EmptySet)
	s.Step(automata.NewSignalSet(StartConvoy))
	s.Step(automata.EmptySet)
	if _, ok := s.Step(automata.NewSignalSet(BreakConvoyProposalRejected)); !ok {
		t.Fatal("breakConvoyProposalRejected refused")
	}
	if s.StateName() != "convoy::cruise" {
		t.Fatalf("state after rejected break = %q", s.StateName())
	}
}

func TestEagerShuttleEntersConvoyPrematurely(t *testing.T) {
	s := &EagerShuttle{}
	s.Reset()
	out, ok := s.Step(automata.EmptySet)
	if !ok || !out.Contains(ConvoyProposal) {
		t.Fatalf("step = %v/%v", out, ok)
	}
	if s.StateName() != "convoy" {
		t.Fatalf("eager shuttle should be in convoy immediately, is in %q", s.StateName())
	}
	// It backs off on rejection.
	if _, ok := s.Step(automata.NewSignalSet(ConvoyProposalRejected)); !ok {
		t.Fatal("rejection refused")
	}
	if s.StateName() != "noConvoy" {
		t.Fatalf("state = %q", s.StateName())
	}
}

func TestBlockingShuttleTerminates(t *testing.T) {
	s := &BlockingShuttle{}
	s.Reset()
	s.Step(automata.EmptySet)                  // propose
	s.Step(automata.NewSignalSet(StartConvoy)) // convoy
	out, ok := s.Step(automata.EmptySet)       // break proposal + shutdown
	if !ok || !out.Contains(BreakConvoyProposal) {
		t.Fatalf("break = %v/%v", out, ok)
	}
	if s.StateName() != "terminated" {
		t.Fatalf("state = %q", s.StateName())
	}
	for _, in := range []automata.SignalSet{
		automata.EmptySet,
		automata.NewSignalSet(BreakConvoyAccepted),
		automata.NewSignalSet(BreakConvoyProposalRejected),
	} {
		if _, ok := s.Step(in); ok {
			t.Fatalf("terminated shuttle accepted %v", in)
		}
	}
}

func TestConstraintIsACTL(t *testing.T) {
	if !ctl.IsACTL(Constraint()) {
		t.Fatal("pattern constraint must be ACTL")
	}
}

func TestRearInterface(t *testing.T) {
	iface := RearInterface("rear")
	if err := iface.Validate(); err != nil {
		t.Fatal(err)
	}
	if iface.PortOf(ConvoyProposal) != RearRoleName {
		t.Fatal("port attribution missing")
	}
	if !iface.Inputs.Contains(StartConvoy) || !iface.Outputs.Contains(ConvoyProposal) {
		t.Fatal("alphabet directions wrong")
	}
}
