package railcab

import (
	"muml/internal/automata"
	"muml/internal/legacy"
)

// The legacy rear-shuttle controllers below are deliberately hand-written
// reactive state machines, not derived from any Mechatronic UML model —
// they play the role of the independently developed legacy components the
// paper integrates. All are deterministic (Section 4.3): the reaction to a
// given input in a given state is a function.

// CorrectShuttle is a rear-shuttle controller that follows the
// DistanceCoordination protocol: it proposes a convoy, waits for the
// decision, and — once in a convoy — proposes to break it and waits for
// the decision. Integration of this controller is provably correct; the
// synthesis loop terminates with a proof (Fig. 7 / Listing 1.5).
type CorrectShuttle struct {
	state string
}

var (
	_ legacy.Component    = (*CorrectShuttle)(nil)
	_ legacy.Introspector = (*CorrectShuttle)(nil)
)

// Correct controller state names (reported through introspection during
// deterministic replay, hence part of the learned models).
const (
	stDefault   = "noConvoy::default"
	stWait      = "noConvoy::wait"
	stCruise    = "convoy::cruise"
	stBreakWait = "convoy::breakWait"
)

// Reset implements legacy.Component.
func (s *CorrectShuttle) Reset() { s.state = stDefault }

// StateName implements legacy.Introspector.
func (s *CorrectShuttle) StateName() string {
	if s.state == "" {
		return stDefault
	}
	return s.state
}

// Step implements legacy.Component.
func (s *CorrectShuttle) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if s.state == "" {
		s.state = stDefault
	}
	switch s.state {
	case stDefault:
		if in.IsEmpty() {
			// Energy optimization: always seek a convoy partner.
			s.state = stWait
			return automata.NewSignalSet(ConvoyProposal), true
		}
	case stWait:
		switch {
		case in.IsEmpty():
			return automata.EmptySet, true // keep waiting
		case in.Equal(automata.NewSignalSet(ConvoyProposalRejected)):
			s.state = stDefault
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(StartConvoy)):
			s.state = stCruise
			return automata.EmptySet, true
		}
	case stCruise:
		if in.IsEmpty() {
			// The route segment with convoy benefit ends; ask to leave.
			s.state = stBreakWait
			return automata.NewSignalSet(BreakConvoyProposal), true
		}
	case stBreakWait:
		switch {
		case in.IsEmpty():
			return automata.EmptySet, true // keep waiting
		case in.Equal(automata.NewSignalSet(BreakConvoyProposalRejected)):
			s.state = stCruise
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(BreakConvoyAccepted)):
			s.state = stDefault
			return automata.EmptySet, true
		}
	}
	return automata.EmptySet, false
}

// EagerShuttle is a faulty rear-shuttle controller: after sending a
// convoyProposal it immediately reduces the distance — it switches to
// convoy mode without waiting for the startConvoy confirmation. This is
// the conflicting behavior of Fig. 6: the pattern constraint
// A[] not (rearRole.convoy and frontRole.noConvoy) is violated, and the
// violation lies entirely in learned behavior, so the loop reports a real
// conflict without a further test (Listing 1.4, "fast conflict
// detection").
type EagerShuttle struct {
	state string
}

var (
	_ legacy.Component    = (*EagerShuttle)(nil)
	_ legacy.Introspector = (*EagerShuttle)(nil)
)

const (
	stEagerNoConvoy = "noConvoy"
	stEagerConvoy   = "convoy"
)

// Reset implements legacy.Component.
func (s *EagerShuttle) Reset() { s.state = stEagerNoConvoy }

// StateName implements legacy.Introspector.
func (s *EagerShuttle) StateName() string {
	if s.state == "" {
		return stEagerNoConvoy
	}
	return s.state
}

// Step implements legacy.Component.
func (s *EagerShuttle) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if s.state == "" {
		s.state = stEagerNoConvoy
	}
	switch s.state {
	case stEagerNoConvoy:
		if in.IsEmpty() {
			// BUG: reduces the distance while proposing, assuming consent.
			s.state = stEagerConvoy
			return automata.NewSignalSet(ConvoyProposal), true
		}
	case stEagerConvoy:
		switch {
		case in.IsEmpty():
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(ConvoyProposalRejected)):
			s.state = stEagerNoConvoy
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(StartConvoy)):
			return automata.EmptySet, true // already there
		}
	}
	return automata.EmptySet, false
}

// BlockingShuttle is a faulty rear-shuttle controller that follows the
// protocol up to the convoy, then requests to break it and immediately
// shuts down its coordination task: in the terminated state it refuses
// every interaction, including the empty time step. The front role, whose
// break-handling state is urgent, can neither accept nor reject the break
// proposal — a real deadlock, which the synthesis loop confirms by
// testing (the blocking state of Listings 1.2/1.3).
type BlockingShuttle struct {
	state string
}

var (
	_ legacy.Component    = (*BlockingShuttle)(nil)
	_ legacy.Introspector = (*BlockingShuttle)(nil)
)

const stTerminated = "terminated"

// Reset implements legacy.Component.
func (s *BlockingShuttle) Reset() { s.state = stDefault }

// StateName implements legacy.Introspector.
func (s *BlockingShuttle) StateName() string {
	if s.state == "" {
		return stDefault
	}
	return s.state
}

// Step implements legacy.Component.
func (s *BlockingShuttle) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if s.state == "" {
		s.state = stDefault
	}
	switch s.state {
	case stDefault:
		if in.IsEmpty() {
			s.state = stWait
			return automata.NewSignalSet(ConvoyProposal), true
		}
	case stWait:
		switch {
		case in.IsEmpty():
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(ConvoyProposalRejected)):
			s.state = stDefault
			return automata.EmptySet, true
		case in.Equal(automata.NewSignalSet(StartConvoy)):
			s.state = stCruise
			return automata.EmptySet, true
		}
	case stCruise:
		if in.IsEmpty() {
			// BUG: fire-and-forget break request, then shut down.
			s.state = stTerminated
			return automata.NewSignalSet(BreakConvoyProposal), true
		}
	case stTerminated:
		return automata.EmptySet, false
	}
	return automata.EmptySet, false
}
