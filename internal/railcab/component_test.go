package railcab

import (
	"testing"

	"muml/internal/automata"
	"muml/internal/muml"
	"muml/internal/rtsc"
)

// TestShuttleComponentConformsToBothRoles reproduces the paper's modeling
// requirement: "the shuttle component must conform to the
// DistanceCoordination pattern and has to operate as both a rearRole and a
// frontRole as it may follow, or be followed by, another shuttle." Each
// port must refine its role (Definition 4) and satisfy the role invariant.
func TestShuttleComponentConformsToBothRoles(t *testing.T) {
	p := Pattern()
	shuttle := &muml.Component{
		Name: "shuttle",
		Ports: []muml.Port{
			{Role: FrontRoleName, Behavior: FrontRole()},
			{Role: RearRoleName, Behavior: RearRole()},
		},
	}
	if err := shuttle.VerifyAgainst(p); err != nil {
		t.Fatalf("shuttle component does not conform: %v", err)
	}
}

// TestRestrictedRearPortDoesNotRefine documents a defining property of the
// paper's refinement notion (Definition 4): unlike plain simulation, it
// also forbids *dropping* interactions the role offers. A port that never
// proposes to break a convoy introduces a refusal of breakConvoyProposal
// at cruise that no same-trace run of the role matches (condition 2), so
// it is NOT a refinement — this is precisely what makes deadlock freedom
// compositional (Lemma 1): partners may rely on the role's readiness.
func TestRestrictedRearPortDoesNotRefine(t *testing.T) {
	c := rtsc.NewChart(RearRoleName)
	c.MustAddState("noConvoy", rtsc.Initial())
	c.MustAddState("default", rtsc.Initial(), rtsc.Parent("noConvoy"))
	c.MustAddState("wait", rtsc.Parent("noConvoy"))
	c.MustAddState("convoy")
	c.MustAddState("cruise", rtsc.Initial(), rtsc.Parent("convoy"))
	c.MustAddTransition("default", "wait", rtsc.Raise(ConvoyProposal))
	c.MustAddTransition("wait", "default", rtsc.Trigger(ConvoyProposalRejected))
	c.MustAddTransition("wait", "convoy", rtsc.Trigger(StartConvoy))
	// Once in the convoy it stays (idle loop only): the breakWait branch
	// of the role is never exercised.
	restricted := c.MustFlatten(rtsc.WithStateLabels())

	ok, cex, err := automata.Refines(restricted, RearRole())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("dropping the break-convoy offer must break refinement (condition 2 of Definition 4)")
	}
	if len(cex) == 0 {
		t.Fatal("expected a counterexample trace")
	}

	shuttle := &muml.Component{
		Name:  "restrictedShuttle",
		Ports: []muml.Port{{Role: RearRoleName, Behavior: restricted}},
	}
	if err := shuttle.VerifyAgainst(Pattern()); err == nil {
		t.Fatal("restricted shuttle accepted despite the readiness violation")
	}
}

// TestEagerPortViolatesRefinement shows the flip side: the eager behavior
// (convoy entered without startConvoy) is not a refinement of the rear
// role, so the conformance check of the modeling layer rejects it even
// before any legacy-integration testing.
func TestEagerPortViolatesRefinement(t *testing.T) {
	eager := automata.New(RearRoleName, FrontToRear(), RearToFront())
	noConvoy := eager.MustAddState("noConvoy", "rearRole.noConvoy")
	convoy := eager.MustAddState("convoy", "rearRole.convoy")
	eager.MustAddTransition(noConvoy,
		automata.Interact(nil, []automata.Signal{ConvoyProposal}), convoy)
	eager.MustAddTransition(convoy,
		automata.Interact([]automata.Signal{ConvoyProposalRejected}, nil), noConvoy)
	eager.MarkInitial(noConvoy)

	shuttle := &muml.Component{
		Name:  "eagerShuttle",
		Ports: []muml.Port{{Role: RearRoleName, Behavior: eager}},
	}
	if err := shuttle.VerifyAgainst(Pattern()); err == nil {
		t.Fatal("eager port accepted as a refinement of the rear role")
	}
}
