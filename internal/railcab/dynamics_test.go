package railcab

import "testing"

func TestForbiddenModeCombinationCollides(t *testing.T) {
	cfg := DefaultDynamics()
	res := EmergencyBrakeScenario(cfg, ModeNoConvoy, ModeConvoy)
	if !res.Collision {
		t.Fatalf("forbidden mode combination did not collide: minGap=%.2f", res.MinGap)
	}
}

func TestConsistentConvoyModesAreSafe(t *testing.T) {
	cfg := DefaultDynamics()
	res := EmergencyBrakeScenario(cfg, ModeConvoy, ModeConvoy)
	if res.Collision {
		t.Fatalf("convoy/convoy collided: minGap=%.2f", res.MinGap)
	}
	if res.MinGap <= 0 {
		t.Fatalf("minGap = %.2f", res.MinGap)
	}
}

func TestNoConvoyModesAreSafe(t *testing.T) {
	cfg := DefaultDynamics()
	for _, rear := range []Mode{ModeNoConvoy} {
		for _, front := range []Mode{ModeNoConvoy, ModeConvoy} {
			res := EmergencyBrakeScenario(cfg, front, rear)
			if res.Collision {
				t.Fatalf("front=%v rear=%v collided at normal gap", front, rear)
			}
		}
	}
}

func TestModeTableMatchesConstraint(t *testing.T) {
	// The pattern constraint forbids exactly the mode combinations that
	// collide: collision ⇒ forbidden and forbidden ⇒ collision under the
	// default parameters.
	for _, row := range ModeTable(DefaultDynamics()) {
		if row.Result.Collision != row.Forbidden {
			t.Fatalf("mode table mismatch: %s", row)
		}
	}
}

func TestSimulationTerminatesAndRecords(t *testing.T) {
	res := EmergencyBrakeScenario(DefaultDynamics(), ModeConvoy, ModeConvoy)
	if res.StopSteps == 0 || len(res.Trajectory) != res.StopSteps {
		t.Fatalf("trajectory bookkeeping: stop=%d len=%d", res.StopSteps, len(res.Trajectory))
	}
}

func TestModeStrings(t *testing.T) {
	if ModeConvoy.String() != "convoy" || ModeNoConvoy.String() != "noConvoy" {
		t.Fatal("mode strings")
	}
}
