// Package railcab models the paper's running example: the RailCab shuttle
// convoy coordination (Section "Application Example").
//
// Autonomous shuttles reduce air-resistance energy losses by forming
// convoys with small distances. Convoy operation is safety-critical: the
// front shuttle of a convoy must not brake with full force, and the
// controlling software must guarantee that the rear shuttle is never in
// convoy mode while the front shuttle is in noConvoy mode (the pattern
// constraint of Fig. 1):
//
//	A[] not (rearRole.convoy and frontRole.noConvoy)
//
// The package provides the DistanceCoordination pattern (frontRole,
// rearRole, connector), the front-role context automaton of Fig. 5, and
// three hand-written legacy rear-shuttle controllers (deliberately not
// derived from the models):
//
//   - CorrectShuttle: follows the protocol; the synthesis loop ends with a
//     proof of correct integration (Listing 1.5, Fig. 7);
//   - EagerShuttle: enters convoy mode right after proposing, without
//     waiting for startConvoy — the conflict of Fig. 6 / Listing 1.4;
//   - BlockingShuttle: shuts down after requesting to break the convoy,
//     refusing every further interaction — a real deadlock that the loop
//     confirms by testing (the "blocking state" of Listings 1.2/1.3).
package railcab

import (
	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/muml"
	"muml/internal/rtsc"
)

// Message types of the DistanceCoordination pattern.
const (
	// Rear → front.
	ConvoyProposal      automata.Signal = "convoyProposal"
	BreakConvoyProposal automata.Signal = "breakConvoyProposal"
	// Front → rear.
	ConvoyProposalRejected      automata.Signal = "convoyProposalRejected"
	StartConvoy                 automata.Signal = "startConvoy"
	BreakConvoyProposalRejected automata.Signal = "breakConvoyProposalRejected"
	BreakConvoyAccepted         automata.Signal = "breakConvoyAccepted"
)

// Role and component names.
const (
	FrontRoleName = "frontRole"
	RearRoleName  = "rearRole"
)

// RearToFront returns the signals sent by the rear shuttle.
func RearToFront() automata.SignalSet {
	return automata.NewSignalSet(ConvoyProposal, BreakConvoyProposal)
}

// FrontToRear returns the signals sent by the front shuttle.
func FrontToRear() automata.SignalSet {
	return automata.NewSignalSet(
		ConvoyProposalRejected, StartConvoy, BreakConvoyProposalRejected, BreakConvoyAccepted)
}

// Constraint returns the pattern constraint of Fig. 1.
func Constraint() ctl.Formula {
	return ctl.MustParse("A[] not (rearRole.convoy and frontRole.noConvoy)")
}

// FrontRoleChart builds the front-role real-time statechart of Fig. 5.
// The answering and break-handling states are urgent: the front shuttle
// decides within one period, which is how the hard real-time deadlines of
// the speed control units enter the discrete model.
//
// The role starts in noConvoy and enters the answer substate when a
// convoyProposal arrives; it nondeterministically rejects the proposal or
// starts the convoy. In convoy mode it remains until a breakConvoyProposal
// arrives, which it nondeterministically rejects or accepts.
func FrontRoleChart() *rtsc.Chart {
	c := rtsc.NewChart(FrontRoleName)
	c.MustAddState("noConvoy", rtsc.Initial())
	c.MustAddState("default", rtsc.Initial(), rtsc.Parent("noConvoy"))
	c.MustAddState("answer", rtsc.Parent("noConvoy"), rtsc.Urgent())
	c.MustAddState("convoy")
	c.MustAddState("cruise", rtsc.Initial(), rtsc.Parent("convoy"))
	c.MustAddState("break", rtsc.Parent("convoy"), rtsc.Urgent())

	c.MustAddTransition("default", "answer", rtsc.Trigger(ConvoyProposal))
	c.MustAddTransition("answer", "default", rtsc.Raise(ConvoyProposalRejected))
	c.MustAddTransition("answer", "convoy", rtsc.Raise(StartConvoy))
	c.MustAddTransition("cruise", "break", rtsc.Trigger(BreakConvoyProposal))
	c.MustAddTransition("break", "cruise", rtsc.Raise(BreakConvoyProposalRejected))
	c.MustAddTransition("break", "noConvoy", rtsc.Raise(BreakConvoyAccepted))
	return c
}

// FrontRole flattens the front-role chart with state labels
// ("frontRole.noConvoy" holds in both noConvoy substates). This automaton
// is the known behavioral model of the context (Fig. 5).
func FrontRole() *automata.Automaton {
	return FrontRoleChart().MustFlatten(rtsc.WithStateLabels())
}

// RearRoleChart builds the rear-role protocol: the specification a correct
// rear shuttle must refine.
func RearRoleChart() *rtsc.Chart {
	c := rtsc.NewChart(RearRoleName)
	c.MustAddState("noConvoy", rtsc.Initial())
	c.MustAddState("default", rtsc.Initial(), rtsc.Parent("noConvoy"))
	c.MustAddState("wait", rtsc.Parent("noConvoy"))
	c.MustAddState("convoy")
	c.MustAddState("cruise", rtsc.Initial(), rtsc.Parent("convoy"))
	c.MustAddState("breakWait", rtsc.Parent("convoy"))

	c.MustAddTransition("default", "wait", rtsc.Raise(ConvoyProposal))
	c.MustAddTransition("wait", "default", rtsc.Trigger(ConvoyProposalRejected))
	c.MustAddTransition("wait", "convoy", rtsc.Trigger(StartConvoy))
	c.MustAddTransition("cruise", "breakWait", rtsc.Raise(BreakConvoyProposal))
	c.MustAddTransition("breakWait", "cruise", rtsc.Trigger(BreakConvoyProposalRejected))
	c.MustAddTransition("breakWait", "noConvoy", rtsc.Trigger(BreakConvoyAccepted))
	return c
}

// RearRole flattens the rear-role protocol with state labels.
func RearRole() *automata.Automaton {
	return RearRoleChart().MustFlatten(rtsc.WithStateLabels())
}

// Pattern assembles the DistanceCoordination pattern of Fig. 1 with
// synchronous (direct) role communication. The role invariants about
// braking force are represented on the mode level: the rear role must be
// in convoy mode only after a startConvoy, which the pattern constraint
// captures; the braking-force consequences are modeled in the kinematics
// simulation (see Dynamics).
func Pattern() *muml.Pattern {
	return &muml.Pattern{
		Name: "DistanceCoordination",
		Roles: []muml.Role{
			{
				Name:     FrontRoleName,
				Behavior: FrontRole(),
				// The front shuttle may only leave noConvoy mode by
				// explicitly starting a convoy; answering a proposal keeps
				// it in noConvoy (full braking remains allowed until the
				// convoy is committed).
				Invariant: ctl.MustParse("A[] (frontRole.noConvoy or frontRole.convoy)"),
			},
			{
				Name:     RearRoleName,
				Behavior: RearRole(),
				// The rear shuttle brakes with full power unless in
				// convoy mode; mode-wise it is always in a defined mode.
				Invariant: ctl.MustParse("A[] (rearRole.noConvoy or rearRole.convoy)"),
			},
		},
		Constraint: Constraint(),
	}
}

// DelayedPattern is the pattern with an explicit wireless-link connector
// of the given delay (and optional loss), exercising the QoS modeling of
// Section 2.2. Role behaviors are renamed onto the connector's channel
// signals.
func DelayedPattern(delay int, lossy bool) (*muml.Pattern, error) {
	// Rear side sends *_snd; front receives *_rcv, and vice versa.
	rearRen := map[automata.Signal]automata.Signal{
		ConvoyProposal:              ConvoyProposal + "_snd",
		BreakConvoyProposal:         BreakConvoyProposal + "_snd",
		ConvoyProposalRejected:      ConvoyProposalRejected + "_rcv",
		StartConvoy:                 StartConvoy + "_rcv",
		BreakConvoyProposalRejected: BreakConvoyProposalRejected + "_rcv",
		BreakConvoyAccepted:         BreakConvoyAccepted + "_rcv",
	}
	frontRen := map[automata.Signal]automata.Signal{
		ConvoyProposal:              ConvoyProposal + "_rcv",
		BreakConvoyProposal:         BreakConvoyProposal + "_rcv",
		ConvoyProposalRejected:      ConvoyProposalRejected + "_snd",
		StartConvoy:                 StartConvoy + "_snd",
		BreakConvoyProposalRejected: BreakConvoyProposalRejected + "_snd",
		BreakConvoyAccepted:         BreakConvoyAccepted + "_snd",
	}
	front, err := FrontRole().Rename(FrontRoleName, frontRen)
	if err != nil {
		return nil, err
	}
	rear, err := RearRole().Rename(RearRoleName, rearRen)
	if err != nil {
		return nil, err
	}
	var routes []rtsc.Route
	for _, sig := range append(RearToFront().Signals(), FrontToRear().Signals()...) {
		routes = append(routes, rtsc.Route{Src: sig + "_snd", Dst: sig + "_rcv"})
	}
	conn, err := rtsc.ConnectorSpec{
		Name:    "wirelessLink",
		Routes:  routes,
		Delay:   delay,
		Lossy:   lossy,
		Patient: true,
	}.Build()
	if err != nil {
		return nil, err
	}
	return &muml.Pattern{
		Name: "DistanceCoordinationDelayed",
		Roles: []muml.Role{
			{Name: FrontRoleName, Behavior: front},
			{Name: RearRoleName, Behavior: rear},
		},
		Connectors: []*automata.Automaton{conn},
		Constraint: Constraint(),
	}, nil
}

// DelayedEntryPattern is the convoy-*entry* phase of the protocol with an
// explicit connector of the given delay: proposal, rejection, and start,
// but no break messages. Unlike the full DelayedPattern — whose
// break-convoy handshake genuinely violates the mode-consistency
// constraint while breakConvoyAccepted is in flight — the entry phase is
// safe under any delay: the rear role commits to convoy mode only after
// startConvoy is delivered, at which point the front role has long been in
// convoy mode.
func DelayedEntryPattern(delay int) (*muml.Pattern, error) {
	front := rtsc.NewChart(FrontRoleName)
	front.MustAddState("noConvoy", rtsc.Initial())
	front.MustAddState("default", rtsc.Initial(), rtsc.Parent("noConvoy"))
	front.MustAddState("answer", rtsc.Parent("noConvoy"), rtsc.Urgent())
	front.MustAddState("convoy")
	front.MustAddTransition("default", "answer", rtsc.Trigger(ConvoyProposal+"_rcv"))
	front.MustAddTransition("answer", "default", rtsc.Raise(ConvoyProposalRejected+"_snd"))
	front.MustAddTransition("answer", "convoy", rtsc.Raise(StartConvoy+"_snd"))
	front.MustAddTransition("convoy", "convoy")

	rear := rtsc.NewChart(RearRoleName)
	rear.MustAddState("noConvoy", rtsc.Initial())
	rear.MustAddState("default", rtsc.Initial(), rtsc.Parent("noConvoy"))
	rear.MustAddState("wait", rtsc.Parent("noConvoy"))
	rear.MustAddState("convoy")
	rear.MustAddTransition("default", "wait", rtsc.Raise(ConvoyProposal+"_snd"))
	rear.MustAddTransition("wait", "default", rtsc.Trigger(ConvoyProposalRejected+"_rcv"))
	rear.MustAddTransition("wait", "convoy", rtsc.Trigger(StartConvoy+"_rcv"))
	rear.MustAddTransition("convoy", "convoy")

	routes := []rtsc.Route{
		{Src: ConvoyProposal + "_snd", Dst: ConvoyProposal + "_rcv"},
		{Src: ConvoyProposalRejected + "_snd", Dst: ConvoyProposalRejected + "_rcv"},
		{Src: StartConvoy + "_snd", Dst: StartConvoy + "_rcv"},
	}
	conn, err := rtsc.ConnectorSpec{
		Name:    "wirelessLink",
		Routes:  routes,
		Delay:   delay,
		Patient: true,
	}.Build()
	if err != nil {
		return nil, err
	}
	return &muml.Pattern{
		Name: "DistanceCoordinationEntry",
		Roles: []muml.Role{
			{Name: FrontRoleName, Behavior: front.MustFlatten(rtsc.WithStateLabels())},
			{Name: RearRoleName, Behavior: rear.MustFlatten(rtsc.WithStateLabels())},
		},
		Connectors: []*automata.Automaton{conn},
		Constraint: Constraint(),
	}, nil
}

// RearInterface is the structural interface description of a legacy rear
// shuttle — the only a-priori knowledge of the synthesis loop (Section 3).
func RearInterface(name string) legacy.Interface {
	ports := make(map[automata.Signal]string)
	for _, sig := range append(RearToFront().Signals(), FrontToRear().Signals()...) {
		ports[sig] = RearRoleName
	}
	return legacy.Interface{
		Name:    name,
		Inputs:  FrontToRear(),
		Outputs: RearToFront(),
		Ports:   ports,
	}
}
