package core

import (
	"fmt"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// ExploreComponent exhaustively explores a deterministic component by
// breadth-first search over its reachable states, returning its full
// behavior automaton. Every probe is a fresh reset-and-replay execution,
// so only the Component interface (plus introspection for state names) is
// required.
//
// This is NOT part of the synthesis approach — the whole point of the
// paper is to avoid exhaustive exploration. It exists as the ground-truth
// oracle for evaluation (checking that verdicts are never false, measuring
// how much behavior the context-guided loop did not need to learn) and as
// the target for the L* baseline comparison.
//
// maxStates bounds the exploration; exceeding it panics, as that indicates
// a misconfigured experiment rather than a runtime condition.
func ExploreComponent(
	comp legacy.Component,
	iface legacy.Interface,
	universe automata.InteractionUniverse,
	labeler func(string) []automata.Proposition,
	maxStates int,
) *automata.Automaton {
	inputs := distinctInputs(universe, iface)
	a := automata.New(iface.Name, iface.Inputs, iface.Outputs)

	type node struct {
		name string
		path []automata.SignalSet
	}
	initName := legacy.InitialStateName(comp)
	var initLabels []automata.Proposition
	if labeler != nil {
		initLabels = labeler(initName)
	}
	init := a.MustAddState(initName, initLabels...)
	a.MarkInitial(init)

	queue := []node{{name: initName}}
	visited := map[string]bool{initName: true}

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		from := a.State(cur.name)
		for _, in := range inputs {
			out, after, ok := probePath(comp, cur.path, in)
			if !ok {
				continue
			}
			to := a.State(after)
			if to == automata.NoState {
				if a.NumStates() >= maxStates {
					panic(fmt.Sprintf("core: ExploreComponent exceeded %d states", maxStates))
				}
				var labels []automata.Proposition
				if labeler != nil {
					labels = labeler(after)
				}
				to = a.MustAddState(after, labels...)
			}
			label := automata.Interaction{In: in, Out: out}
			if len(a.Successors(from, label)) == 0 {
				a.MustAddTransition(from, label, to)
			}
			if !visited[after] {
				visited[after] = true
				path := make([]automata.SignalSet, 0, len(cur.path)+1)
				path = append(path, cur.path...)
				path = append(path, in)
				queue = append(queue, node{name: after, path: path})
			}
		}
	}
	return a
}

// probePath resets the component, replays the input path, and performs one
// probe step.
func probePath(comp legacy.Component, path []automata.SignalSet, in automata.SignalSet) (automata.SignalSet, string, bool) {
	comp.Reset()
	for _, step := range path {
		if _, ok := comp.Step(step); !ok {
			return automata.EmptySet, "", false
		}
	}
	out, ok := comp.Step(in)
	if !ok {
		return automata.EmptySet, "", false
	}
	name := "s0"
	if intro, isIntro := comp.(legacy.Introspector); isIntro {
		name = intro.StateName()
	}
	return out, name, true
}

// distinctInputs extracts the distinct input sets of the universe.
func distinctInputs(universe automata.InteractionUniverse, iface legacy.Interface) []automata.SignalSet {
	seen := make(map[string]struct{})
	var out []automata.SignalSet
	for _, x := range universe.Enumerate(iface.Inputs, iface.Outputs) {
		key := x.In.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, x.In)
	}
	return out
}
