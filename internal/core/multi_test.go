package core

import (
	"testing"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// multiContext builds a coordinator that polls two independent services in
// sequence: send ping1, await pong1, send ping2, await pong2, repeat.
func multiContext() *automata.Automaton {
	c := automata.New("coordinator",
		automata.NewSignalSet("pong1", "pong2"),
		automata.NewSignalSet("ping1", "ping2"))
	c0 := c.MustAddState("askFirst")
	c1 := c.MustAddState("awaitFirst")
	c2 := c.MustAddState("askSecond")
	c3 := c.MustAddState("awaitSecond")
	c.MustAddTransition(c0, automata.Interact(nil, []automata.Signal{"ping1"}), c1)
	c.MustAddTransition(c1, automata.Interact([]automata.Signal{"pong1"}, nil), c2)
	c.MustAddTransition(c2, automata.Interact(nil, []automata.Signal{"ping2"}), c3)
	c.MustAddTransition(c3, automata.Interact([]automata.Signal{"pong2"}, nil), c0)
	c.MarkInitial(c0)
	return c
}

// ponger is a deterministic service answering ping with pong one step
// later; when mute it swallows the ping and never answers.
type ponger struct {
	idx   string
	mute  bool
	state string
}

var _ legacy.Component = (*ponger)(nil)
var _ legacy.Introspector = (*ponger)(nil)

func (p *ponger) Reset()            { p.state = "idle" }
func (p *ponger) StateName() string { return p.state }

func (p *ponger) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if p.state == "" {
		p.state = "idle"
	}
	ping := automata.NewSignalSet(automata.Signal("ping" + p.idx))
	switch p.state {
	case "idle":
		if in.IsEmpty() {
			return automata.EmptySet, true
		}
		if in.Equal(ping) {
			p.state = "got"
			return automata.EmptySet, true
		}
	case "got":
		if in.IsEmpty() {
			if p.mute {
				return automata.EmptySet, true // never answers
			}
			p.state = "idle"
			return automata.NewSignalSet(automata.Signal("pong" + p.idx)), true
		}
	}
	return automata.EmptySet, false
}

func pongIface(idx string) legacy.Interface {
	return legacy.Interface{
		Name:    "service" + idx,
		Inputs:  automata.NewSignalSet(automata.Signal("ping" + idx)),
		Outputs: automata.NewSignalSet(automata.Signal("pong" + idx)),
	}
}

func TestMultiSynthesisProvesTwoComponents(t *testing.T) {
	m, err := NewMulti(multiContext(),
		[]legacy.Component{&ponger{idx: "1"}, &ponger{idx: "2"}},
		[]legacy.Interface{pongIface("1"), pongIface("2")},
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v (%v) after %d iterations", report.Verdict, report.Kind, report.Iterations)
	}
	if len(report.Models) != 2 {
		t.Fatalf("models = %d", len(report.Models))
	}
	for i, model := range report.Models {
		if model.Automaton().NumTransitions() == 0 {
			t.Fatalf("component %d learned nothing", i)
		}
	}
	t.Logf("multi-component proof after %d iterations; learned %d+%d states",
		report.Iterations, report.Models[0].Automaton().NumStates(), report.Models[1].Automaton().NumStates())
}

func TestMultiSynthesisFindsDeadlockInSecondComponent(t *testing.T) {
	m, err := NewMulti(multiContext(),
		[]legacy.Component{&ponger{idx: "1"}, &ponger{idx: "2", mute: true}},
		[]legacy.Interface{pongIface("1"), pongIface("2")},
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictViolation || report.Kind != ViolationDeadlock {
		t.Fatalf("verdict = %v/%v, want violation/deadlock", report.Verdict, report.Kind)
	}
	if report.Witness == nil || report.WitnessText == "" {
		t.Fatal("missing witness")
	}
}

func TestMultiRejectsSharedComponentSignals(t *testing.T) {
	_, err := NewMulti(multiContext(),
		[]legacy.Component{&ponger{idx: "1"}, &ponger{idx: "1"}},
		[]legacy.Interface{pongIface("1"), pongIface("1")},
		Options{})
	if err == nil {
		t.Fatal("components with shared signals accepted")
	}
}

func TestMultiRequiresMatchingLists(t *testing.T) {
	_, err := NewMulti(multiContext(),
		[]legacy.Component{&ponger{idx: "1"}},
		[]legacy.Interface{pongIface("1"), pongIface("2")},
		Options{})
	if err == nil {
		t.Fatal("mismatched lists accepted")
	}
	_, err = NewMulti(multiContext(), nil, nil, Options{})
	if err == nil {
		t.Fatal("empty lists accepted")
	}
}
