package core

import (
	"fmt"
	"strings"
	"time"

	"muml/internal/automata"
	"muml/internal/obs"
	"muml/internal/replay"
)

// The nondeterministic counterexample path (DESIGN.md §13). The paper's
// loop (Section 4.3) excludes nondeterminism: one replay either reproduces
// the hypothesized run or refutes it, and a single divergence is learned
// as the function of the state. A black box that duplicates, races, or
// drops breaks both halves — a divergent replay neither reproduces nor
// refutes, it merely shows *one* element of the out-set. Following ioco,
// this path:
//
//   - re-executes a counterexample up to Options.NondetAttempts times,
//     merging every observed run into the learned fragment with
//     LearnNondet (divergent-but-allowed branches become ioco_merge
//     events, not failures);
//   - counts fair visits per learned (state, input): one visit per
//     observed run that steps through the pair. The component model's
//     per-occurrence round-robin schedule advances the pair's
//     first-occurrence cursor exactly once per such run, cycling every
//     duplicate branch within branching-degree consecutive visits, so
//     after Options.NondetCompleteness visits the out-set and successor
//     set there are complete — unobserved outputs become refusals and
//     learned labels are settled, removing their chaos escapes from the
//     next closure (the complete-testing assumption realized by
//     legacy.NondetComponent);
//   - confirms deadlocks by per-offer out-set sampling at the real final
//     state instead of one deterministic probe.
//
// Input refusals stay decisive: the component model refuses per (state,
// input) deterministically, so one refusal refutes all output hypotheses
// under that input, exactly as in the deterministic path.

// nondetVisitKey identifies one fairly-scheduled (state, input) pair of
// the learned fragment, in the component's state namespace.
type nondetVisitKey struct {
	state string
	inKey string
}

// nondetVisit is the counter behind a key. Every observed run that steps
// through a key counts as exactly one visit, and every real execution —
// replay attempts and probe tries alike — is observed and learned. Each
// such run advances the key's first-occurrence round-robin cursor exactly
// once (a run's first visit of a pair is occurrence zero by definition),
// so NondetCompleteness consecutive visits provably cycle through every
// duplicate branch of the component model. Deeper occurrences within one
// run carry no cycling guarantee — a single long run can repeat one
// branch at every depth — which is why repeat visits inside a run do not
// count toward maturity.
type nondetVisit struct {
	n       int
	in      automata.SignalSet
	matured bool
}

// openCopyDeadlocked reports whether the open-copy sibling of the given
// product state — each closed-copy part (s,0) swapped for its (s,1) — is
// also a deadlock state of the composition. Learned transitions enter both
// copies of their target, so along a chaos-avoiding run the sibling is
// reachable whenever the original is; a missing sibling therefore reads as
// not-certified rather than as certified.
func openCopyDeadlocked(sys *automata.Automaton, final automata.StateID) bool {
	// The closure is the last factor of the product, so the copy suffix
	// sits at the end of the composed state name (e.g. "c0|s0·0").
	name := sys.StateName(final)
	if !strings.HasSuffix(name, automata.ChaosClosedSuffix) {
		// The final state already assumes arbitrary further behavior.
		return sys.IsDeadlock(final)
	}
	sib := sys.State(strings.TrimSuffix(name, automata.ChaosClosedSuffix) + automata.ChaosOpenSuffix)
	return sib != automata.NoState && sys.IsDeadlock(sib)
}

// testCounterexampleNondet is the nondeterministic counterpart of
// testCounterexample.
func (s *Synthesizer) testCounterexampleNondet(sys *automata.Automaton, cex *automata.Run, kind ViolationKind, it *Iteration, cexSpan uint64) (bool, error) {
	// A counterexample that never visits a chaotic state can be certified
	// by the model alone, without replay: every transition on such a run
	// is a learned transition — behavior that was actually observed — so
	// the run is a real path of the integrated system. The one thing such
	// a run may still hypothesize is a *refusal*: a path that violates the
	// property by stopping early (a deadlock end state) relies on the
	// absence of further behavior, which at a closed copy (s,0) is an
	// untested assumption. That reliance is always at the final state —
	// path-existential violations need no refusals along the way — and it
	// is discharged exactly when the open-copy sibling of the final state
	// is deadlocked too: then even assuming arbitrary further behavior,
	// nothing composes with the context beyond the certified blocks.
	//
	// Replay could not confirm these runs anyway: the fair round-robin
	// schedule never resolves the same duplicate branch the same way
	// twice in a row, so a run that takes one branch at two separate
	// visits of the same (state, input) is unrealizable per-execution
	// even though each transition is real.
	if runAvoidsChaos(sys, cex) {
		final := cex.States[len(cex.States)-1]
		reliesOnDeadlock := kind == ViolationDeadlock || sys.IsDeadlock(final)
		if !reliesOnDeadlock || openCopyDeadlocked(sys, final) {
			if kind == ViolationDeadlock {
				it.Test = TestConfirmedDeadlock
			} else {
				it.Test = TestRealizable
			}
			if j := s.opts.Journal; j.Enabled() {
				j.Emit(obs.Event{Kind: obs.KindNote, Iter: it.Index,
					Trace: s.opts.TraceID, Parent: cexSpan,
					S: map[string]string{"note": "counterexample certified: all transitions learned, no chaotic state visited"}})
			}
			return true, nil
		}
	}

	proj, err := sys.ProjectRun(*cex, s.iface.Name)
	if err != nil {
		return false, fmt.Errorf("core: project counterexample: %w", err)
	}
	inputs := make([]automata.SignalSet, len(proj.Steps))
	outputs := make([]automata.SignalSet, len(proj.Steps))
	for i, step := range proj.Steps {
		inputs[i] = step.In
		outputs[i] = step.Out
	}
	// The recording is synthesized from the projection instead of taped
	// from a live execution: the hypothesized run itself is the divergence
	// baseline the ioco check needs. This also keeps every real execution
	// inside ReplayNondet, where it is observed, learned, and counted — a
	// live Record pass monitors messages only (no state probes), so its
	// scheduler turns would be invisible to the fair-visit counters and
	// shift the round-robin phase out from under the completeness budget.
	rec := replay.Recording{Iface: s.iface, Inputs: inputs, Outputs: outputs, BlockedAt: -1}
	it.Recording = &rec

	for attempt := 0; attempt < s.opts.NondetAttempts; attempt++ {
		if err := s.runCtx().Err(); err != nil {
			return false, fmt.Errorf("core: nondet test aborted: %w", err)
		}
		replayStart := time.Now()
		s.stats.TestsRun++
		s.stats.ResetsUsed++
		trace, observed, divs, err := replay.ReplayNondet(s.comp, rec, s.model)
		if err != nil {
			return false, fmt.Errorf("core: nondet replay failed: %w", err)
		}
		for _, d := range divs {
			if !d.Allowed {
				// The fragment explicitly refutes what the component just
				// did: a learned refusal (completeness block) was wrong,
				// which falsifies the fairness assumption or the
				// completeness budget. Surface it instead of merging.
				return false, fmt.Errorf("core: observation contradicts learned refusal: %s", d)
			}
		}
		if attempt == 0 {
			it.ReplayTrace = &trace
		}
		if err := s.learnObservationNondet(observed, it); err != nil {
			return false, err
		}
		replayDur := time.Since(replayStart)
		it.ReplayDuration += replayDur
		s.stats.ReplayTime += replayDur
		s.tReplay.Observe(replayDur)
		s.hReplay.Observe(replayDur)
		if j := s.opts.Journal; j.Enabled() {
			j.Emit(obs.Event{Kind: obs.KindReplayStep, Iter: it.Index, DurNS: int64(replayDur),
				Trace: s.opts.TraceID, Parent: cexSpan,
				N: map[string]int64{
					"periods":    int64(len(observed.Steps)),
					"blocked_at": int64(rec.BlockedAt),
					"diverged":   int64(len(divs)),
					"attempt":    int64(attempt),
				}, S: map[string]string{"trace": trace.Render()}})
			for _, d := range divs {
				recorded := d.Recorded.String()
				if d.RecordedRefused {
					recorded = "refused"
				}
				observedStr := d.Observed.String()
				if d.ObservedRefused {
					observedStr = "refused"
				}
				j.Emit(obs.Event{Kind: obs.KindIocoMerge, Iter: it.Index,
					Trace: s.opts.TraceID, Parent: cexSpan,
					N: map[string]int64{
						"period":  int64(d.Period),
						"allowed": b2i(d.Allowed),
					}, S: map[string]string{
						"state":    d.State,
						"input":    d.Input.String(),
						"observed": observedStr,
						"recorded": recorded,
					}})
			}
		}

		if _, full := s.matchProjection(proj, observed); full {
			final := cex.States[len(cex.States)-1]
			if kind != ViolationDeadlock && !sys.IsDeadlock(final) {
				it.Test = TestRealizable
				return true, nil
			}
			finalState := observed.Initial
			if n := len(observed.Steps); n > 0 {
				finalState = observed.Steps[n-1].To
			}
			return s.probeDeadlockNondet(sys, cex, inputs, finalState, it, cexSpan)
		}
	}

	// The attempts budget is spent without reproducing the run. Whatever
	// the attempts did observe has been merged, and matured (state, input)
	// pairs have been settled or refuted along the way — the next closure
	// shrinks accordingly.
	//
	// A deadlock-relying counterexample can still be decided: ProbeNondet
	// re-executes the input plan itself, so sampling the context's offers
	// at the final state does not require one of the attempts above to
	// have realized the full run — which correlated branch cursors can
	// prevent forever (the cursor of a downstream pair may advance an
	// exact multiple of its degree between successive runs that reach
	// it). The probe needs a real final state to re-find; a chaotic
	// projection has none.
	if kind == ViolationDeadlock || sys.IsDeadlock(cex.States[len(cex.States)-1]) {
		name := proj.StateNames[len(proj.StateNames)-1]
		if name != automata.ChaosAllState && name != automata.ChaosDeltaState &&
			s.model.Automaton().State(name) != automata.NoState {
			return s.probeDeadlockNondet(sys, cex, inputs, name, it, cexSpan)
		}
	}
	it.Test = TestDiverged
	return false, nil
}

// matchProjection measures how far an observed run reproduces the
// counterexample's projection onto the component. A step matches when its
// output equals the projected output and — where the projection names a
// learned (non-chaotic) state — the introspected successor matches too.
// Chaotic expected states are wildcards: the projection's impl leaf holds
// no real name there.
func (s *Synthesizer) matchProjection(proj automata.ProjectedRun, observed automata.ObservedRun) (int, bool) {
	n := 0
	for i := range proj.Steps {
		if i >= len(observed.Steps) {
			break
		}
		step := observed.Steps[i]
		if !step.Label.Out.Equal(proj.Steps[i].Out) {
			break
		}
		if exp := proj.StateNames[i+1]; exp != automata.ChaosAllState && exp != automata.ChaosDeltaState && step.To != exp {
			break
		}
		n++
	}
	return n, n == len(proj.Steps) && observed.Blocked == nil
}

// learnObservationNondet merges an observed run using LearnNondet and
// counts its fair visits. Unlike the deterministic learnObservation there
// is no function-refusal expansion — observing (s, A, B) refutes nothing
// about (s, A, B') when outputs race — but a refusal still refutes every
// output hypothesis under its input, because refusals are per-(state,
// input) deterministic in the component model.
func (s *Synthesizer) learnObservationNondet(observed automata.ObservedRun, it *Iteration) error {
	run := observed
	run.Blocked = nil
	delta, err := s.model.LearnNondet(run, s.opts.Labeler)
	if err != nil {
		return fmt.Errorf("core: learn (nondet): %w", err)
	}
	s.accumulate(delta, it)
	if observed.Blocked != nil {
		final := run.Initial
		if n := len(run.Steps); n > 0 {
			final = run.Steps[n-1].To
		}
		if err := s.blockAllOutputs(final, observed.Blocked.In, it); err != nil {
			return err
		}
	}
	// Visits are counted only after the whole run is in the model, so a
	// maturity triggered by an early step already sees branches the same
	// run revealed later.
	return s.noteFairVisits(run, it)
}

// noteFairVisits advances the fair-visit counter of every (state, input)
// the run stepped through — once per pair, however often the run revisited
// it — and settles each pair whose counter reaches the completeness
// budget.
func (s *Synthesizer) noteFairVisits(run automata.ObservedRun, it *Iteration) error {
	cur := run.Initial
	seen := make(map[nondetVisitKey]bool)
	for _, step := range run.Steps {
		k := nondetVisitKey{state: cur, inKey: step.Label.In.Key()}
		cur = step.To
		if seen[k] {
			continue
		}
		seen[k] = true
		v := s.nondetVisits[k]
		if v == nil {
			v = &nondetVisit{in: step.Label.In}
			s.nondetVisits[k] = v
		}
		v.n++
		if !v.matured && v.n >= s.opts.NondetCompleteness {
			v.matured = true
			if err := s.settleInput(k.state, v.in, it); err != nil {
				return err
			}
		}
	}
	return nil
}

// settleInput certifies (state, input) as out- and successor-complete:
// after NondetCompleteness fair visits every duplicate branch under the
// input has appeared, so unobserved outputs become refusals (T̄) and each
// learned label is settled — both remove chaos hypotheses from the next
// closure. A branch surfacing after its label was refuted falsifies the
// budget and is surfaced by LearnNondet as a contradiction.
func (s *Synthesizer) settleInput(state string, in automata.SignalSet, it *Iteration) error {
	id := s.model.Automaton().State(state)
	if id == automata.NoState {
		return nil
	}
	for _, x := range s.opts.Universe.Enumerate(s.iface.Inputs, s.iface.Outputs) {
		if !x.In.Equal(in) {
			continue
		}
		if len(s.model.Automaton().Successors(id, x)) > 0 {
			if !s.model.IsSettled(id, x) {
				if err := s.model.SettleLabel(id, x); err != nil {
					return err
				}
				it.Delta.Settled++
			}
			continue
		}
		if s.model.IsBlocked(id, x) {
			continue
		}
		if err := s.model.Block(id, x); err != nil {
			return err
		}
		it.Delta.Blocked++
		it.Delta.NewBlocked = append(it.Delta.NewBlocked, automata.BlockedEntry{State: id, Label: x})
		s.stats.RefusalsLearned++
	}
	return nil
}

// probeDeadlockNondet tests a composed deadlock against a
// nondeterministic component: for every interaction the context offers at
// the end of the counterexample, the out-set of the component at the real
// final state is checked against the learned model and then sampled until
// either the matching output appears (the offer is jointly possible —
// deadlock refuted) or the input is refused (decisive — refusals are per
// (state, input) deterministic). A sampling budget that runs dry decides
// nothing and refutes the claim conservatively; the sampled runs are
// learned, so fair-visit maturity converges the model until the deadlock
// is either certified chaos-free or gone.
func (s *Synthesizer) probeDeadlockNondet(sys *automata.Automaton, cex *automata.Run, inputs []automata.SignalSet, final string, it *Iteration, cexSpan uint64) (bool, error) {
	probeStart := time.Now()
	defer func() {
		d := time.Since(probeStart)
		it.ProbeDuration += d
		s.stats.ProbeTime += d
		s.tProbe.Observe(d)
		s.hProbe.Observe(d)
	}()
	ctxState, err := s.contextStateAt(sys, cex.States[len(cex.States)-1])
	if err != nil {
		return false, err
	}
	// A synthetic recording: ProbeNondet only needs the input plan (its
	// prefix re-executions follow actual behavior, not recorded outputs).
	recProbe := replay.Recording{Iface: s.iface, Inputs: inputs, BlockedAt: -1}

	jointPossible := false
	refused := make(map[string]bool)             // input key -> refused at final
	outsSeen := make(map[string]map[string]bool) // input key -> output keys sampled
	samples := make(map[string]int)              // input key -> accepted samples
	decided := make(map[string]bool)             // inKey|wantKey -> handled

	for _, offer := range s.context.TransitionsFrom(ctxState) {
		if !offer.Label.Out.SubsetOf(s.iface.Inputs) {
			continue
		}
		in := offer.Label.Out
		want := offer.Label.In.Intersect(s.iface.Outputs)
		key := in.Key() + "|" + want.Key()
		if decided[key] {
			continue
		}
		decided[key] = true
		if refused[in.Key()] {
			continue
		}
		if outsSeen[in.Key()][want.Key()] {
			jointPossible = true
			continue
		}
		// Model first: a learned transition at the final state matching
		// the offer is behavior that was actually observed, so the joint
		// step is possible without drawing a single sample.
		if id := s.model.Automaton().State(final); id != automata.NoState {
			if len(s.model.Automaton().Successors(id, automata.Interaction{In: in, Out: want})) > 0 {
				jointPossible = true
				continue
			}
		}
		for samples[in.Key()] < s.opts.NondetCompleteness {
			if err := s.runCtx().Err(); err != nil {
				return false, fmt.Errorf("core: nondet probe aborted: %w", err)
			}
			probeOne := time.Now()
			result, runs, reached, err := replay.ProbeNondet(s.comp, recProbe, in, final, s.opts.NondetAttempts)
			probeOneDur := time.Since(probeOne)
			if err != nil {
				return false, fmt.Errorf("core: nondet probe: %w", err)
			}
			for _, r := range runs {
				s.stats.ResetsUsed++
				if err := s.learnObservationNondet(r, it); err != nil {
					return false, err
				}
			}
			if !reached {
				// The final state did not recur within the try budget; the
				// offer stays undecided, which conservatively refutes the
				// deadlock claim for this iteration.
				jointPossible = true
				break
			}
			it.Probes = append(it.Probes, result)
			s.stats.ProbesRun++
			if j := s.opts.Journal; j.Enabled() {
				j.Emit(obs.Event{Kind: obs.KindProbeResult, Iter: it.Index, DurNS: int64(probeOneDur),
					Trace: s.opts.TraceID, Parent: cexSpan,
					N: map[string]int64{
						"accepted":  b2i(result.Accepted),
						"quiescent": b2i(result.Quiescent),
					}, S: map[string]string{
						"state":  result.State,
						"input":  result.Input.String(),
						"output": result.Output.String(),
						"after":  result.After,
					}})
			}
			if !result.Accepted {
				// Refusals are deterministic per (state, input): decisive.
				refused[in.Key()] = true
				break
			}
			if outsSeen[in.Key()] == nil {
				outsSeen[in.Key()] = make(map[string]bool)
			}
			outsSeen[in.Key()][result.Output.Key()] = true
			samples[in.Key()]++
			if result.Output.Equal(want) {
				jointPossible = true
				break
			}
		}
		if !refused[in.Key()] && !outsSeen[in.Key()][want.Key()] {
			// The budget ran out without the matching output or an input
			// refusal. Sampling is not fair here — the prefix re-execution
			// that reaches the final state can phase-lock the round-robin
			// schedule and starve a real branch — so exhaustion decides
			// nothing: the offer stays open, which refutes the deadlock
			// claim for this iteration. The sampled runs were learned, so
			// fair-visit maturity will either surface the missing output
			// or certify its refusal, at which point the counterexample is
			// confirmed model-based (chaos-free certification) instead.
			jointPossible = true
		}
	}

	if jointPossible {
		it.Test = TestDiverged
		return false, nil
	}
	it.Test = TestConfirmedDeadlock
	return true, nil
}
