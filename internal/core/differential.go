package core

import (
	"fmt"
)

// EquivalentReports checks that two synthesis runs followed the same
// trajectory: same verdict, same iteration count, and per iteration the
// same check outcomes, counterexamples, test outcomes, learned deltas, and
// system sizes. Used by the differential tests to assert that the
// incremental (patched) pipeline is observationally identical to the
// from-scratch one; construction-strategy fields (Patched, durations,
// patch/rebuild stats) are deliberately not compared.
func EquivalentReports(got, want *Report) error {
	if got.Verdict != want.Verdict || got.Kind != want.Kind {
		return fmt.Errorf("verdict %v/%v, want %v/%v", got.Verdict, got.Kind, want.Verdict, want.Kind)
	}
	if got.WitnessText != want.WitnessText {
		return fmt.Errorf("witness differs:\n--- got\n%s\n--- want\n%s", got.WitnessText, want.WitnessText)
	}
	if len(got.Iterations) != len(want.Iterations) {
		return fmt.Errorf("%d iterations, want %d", len(got.Iterations), len(want.Iterations))
	}
	for i := range want.Iterations {
		g, w := &got.Iterations[i], &want.Iterations[i]
		if g.ModelStates != w.ModelStates || g.ModelTransitions != w.ModelTransitions || g.ModelBlocked != w.ModelBlocked {
			return fmt.Errorf("iteration %d: model size (%d,%d,%d), want (%d,%d,%d)", i,
				g.ModelStates, g.ModelTransitions, g.ModelBlocked,
				w.ModelStates, w.ModelTransitions, w.ModelBlocked)
		}
		if g.ClosureStates != w.ClosureStates || g.SystemStates != w.SystemStates {
			return fmt.Errorf("iteration %d: closure/system sizes (%d,%d), want (%d,%d)", i,
				g.ClosureStates, g.SystemStates, w.ClosureStates, w.SystemStates)
		}
		if g.PropertyHolds != w.PropertyHolds || g.DeadlockFree != w.DeadlockFree {
			return fmt.Errorf("iteration %d: checks (%v,%v), want (%v,%v)", i,
				g.PropertyHolds, g.DeadlockFree, w.PropertyHolds, w.DeadlockFree)
		}
		if g.CounterexampleText != w.CounterexampleText {
			return fmt.Errorf("iteration %d: counterexample differs:\n--- got\n%s\n--- want\n%s",
				i, g.CounterexampleText, w.CounterexampleText)
		}
		if g.CexInLearnedPart != w.CexInLearnedPart || g.CexRunWitnessed != w.CexRunWitnessed {
			return fmt.Errorf("iteration %d: counterexample classification (%v,%v), want (%v,%v)", i,
				g.CexInLearnedPart, g.CexRunWitnessed, w.CexInLearnedPart, w.CexRunWitnessed)
		}
		if g.Test != w.Test {
			return fmt.Errorf("iteration %d: test outcome %v, want %v", i, g.Test, w.Test)
		}
		if g.Delta.States != w.Delta.States || g.Delta.Transitions != w.Delta.Transitions || g.Delta.Blocked != w.Delta.Blocked {
			return fmt.Errorf("iteration %d: delta (%d,%d,%d), want (%d,%d,%d)", i,
				g.Delta.States, g.Delta.Transitions, g.Delta.Blocked,
				w.Delta.States, w.Delta.Transitions, w.Delta.Blocked)
		}
		if len(g.Probes) != len(w.Probes) {
			return fmt.Errorf("iteration %d: %d probes, want %d", i, len(g.Probes), len(w.Probes))
		}
	}
	s, ws := got.Stats, want.Stats
	if s.TestsRun != ws.TestsRun || s.ProbesRun != ws.ProbesRun ||
		s.StatesLearned != ws.StatesLearned || s.TransitionsLearned != ws.TransitionsLearned ||
		s.RefusalsLearned != ws.RefusalsLearned || s.PeakSystemStates != ws.PeakSystemStates {
		return fmt.Errorf("stats diverge: %+v, want %+v", s, ws)
	}
	return nil
}
