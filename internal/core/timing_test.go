package core

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/obs"
	"muml/internal/railcab"
	"muml/internal/rtsc"
)

// patientFront is the front role with a *non-urgent* break state: it may
// postpone the break-convoy decision indefinitely. Used to exercise
// bounded-response (CCTL) properties in the synthesis loop.
func patientFront() *automata.Automaton {
	c := rtsc.NewChart(railcab.FrontRoleName)
	c.MustAddState("noConvoy", rtsc.Initial())
	c.MustAddState("default", rtsc.Initial(), rtsc.Parent("noConvoy"))
	c.MustAddState("answer", rtsc.Parent("noConvoy"), rtsc.Urgent())
	c.MustAddState("convoy")
	c.MustAddState("cruise", rtsc.Initial(), rtsc.Parent("convoy"))
	c.MustAddState("break", rtsc.Parent("convoy")) // NOT urgent: may stall
	c.MustAddTransition("default", "answer", rtsc.Trigger(railcab.ConvoyProposal))
	c.MustAddTransition("answer", "default", rtsc.Raise(railcab.ConvoyProposalRejected))
	c.MustAddTransition("answer", "convoy", rtsc.Raise(railcab.StartConvoy))
	c.MustAddTransition("cruise", "break", rtsc.Trigger(railcab.BreakConvoyProposal))
	c.MustAddTransition("break", "cruise", rtsc.Raise(railcab.BreakConvoyProposalRejected))
	c.MustAddTransition("break", "noConvoy", rtsc.Raise(railcab.BreakConvoyAccepted))
	return c.MustFlatten(rtsc.WithStateLabels())
}

// breakDeadline requires the rear shuttle's break request to be decided
// within 3 time units: a compositional CCTL bounded-response constraint
// (the maximal-delay pattern of Section 2.4).
func breakDeadline() ctl.Formula {
	return ctl.MustParse("AG (rearRole.convoy::breakWait -> AF[1,3] not rearRole.convoy::breakWait)")
}

func TestBoundedResponseProvenWithUrgentContext(t *testing.T) {
	// With the paper's urgent front role the break decision arrives in the
	// very next period, so the deadline holds and the loop proves it
	// together with the mode constraint.
	synth, err := New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: ctl.And(railcab.Constraint(), breakDeadline())})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v/%v after %d iterations\n%s",
			report.Verdict, report.Kind, report.Stats.Iterations, report.WitnessText)
	}
}

func TestBoundedResponseViolatedByPatientContext(t *testing.T) {
	// A front role that may stall the break decision violates the deadline
	// — and since the stalling path consists of learned (real) rear-role
	// behavior plus context idling, the violation must surface as a real
	// constraint counterexample.
	synth, err := New(patientFront(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: breakDeadline()})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictViolation || report.Kind != ViolationConstraint {
		t.Fatalf("verdict = %v/%v, want violation/constraint", report.Verdict, report.Kind)
	}
	// The witness stalls inside convoy::breakWait.
	if !strings.Contains(report.WitnessText, "breakWait") {
		t.Fatalf("witness does not show the stalled break:\n%s", report.WitnessText)
	}
}

func TestSkipDeadlockCheck(t *testing.T) {
	// With the deadlock check disabled, the blocking shuttle's termination
	// is invisible (it violates no mode constraint) and the loop proves
	// the constraint alone.
	synth, err := New(railcab.FrontRole(), &railcab.BlockingShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: railcab.Constraint(), SkipDeadlockCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v/%v", report.Verdict, report.Kind)
	}
}

func TestJournalReceivesProgress(t *testing.T) {
	var sink obs.MemorySink
	synth, err := New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{
			Property: railcab.Constraint(),
			Journal:  obs.NewJournal(&sink),
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synth.Run(); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("journal never received an event")
	}
	if got := events[len(events)-1].Kind; got != obs.KindVerdict {
		t.Fatalf("last event kind = %v, want %v", got, obs.KindVerdict)
	}
}

func TestMaxIterationsExceeded(t *testing.T) {
	synth, err := New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: railcab.Constraint(), MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synth.Run(); err == nil {
		t.Fatal("expected iteration-budget error")
	}
}

func TestModelAccessorExposesLearnedState(t *testing.T) {
	synth, err := New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: railcab.Constraint()})
	if err != nil {
		t.Fatal(err)
	}
	if synth.Model().Automaton().NumStates() != 1 {
		t.Fatal("initial model should hold only the initial state")
	}
	if _, err := synth.Run(); err != nil {
		t.Fatal(err)
	}
	if synth.Model().Automaton().NumStates() < 4 {
		t.Fatal("model not updated by Run")
	}
}

// TestExploreComponentBounds verifies the maxStates guard.
func TestExploreComponentBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when exceeding maxStates")
		}
	}()
	ExploreComponent(&railcab.CorrectShuttle{}, railcab.RearInterface(railcab.RearRoleName),
		automata.Universe(automata.UniverseSingleton), nil, 2)
}
