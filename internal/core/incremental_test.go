package core

import (
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/railcab"
)

// runDifferential executes the synthesis twice — incrementally with
// per-iteration patch verification, and with incremental construction
// disabled — and asserts the two runs are observationally identical.
// It returns the incremental report for scenario-specific assertions.
func runDifferential(t *testing.T, comp func() legacy.Component, opts Options) *Report {
	t.Helper()
	incOpts := opts
	incOpts.CheckIncremental = true
	synth, err := New(railcab.FrontRole(), comp(),
		railcab.RearInterface(railcab.RearRoleName), incOpts)
	if err != nil {
		t.Fatal(err)
	}
	incremental, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}

	scratchOpts := opts
	scratchOpts.DisableIncremental = true
	synth, err = New(railcab.FrontRole(), comp(),
		railcab.RearInterface(railcab.RearRoleName), scratchOpts)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}

	if err := EquivalentReports(incremental, scratch); err != nil {
		t.Fatalf("incremental run diverges from from-scratch run: %v", err)
	}
	assertIncrementalStats(t, incremental)
	return incremental
}

// assertIncrementalStats checks the construction accounting: every
// iteration is either a patch or a rebuild, the first iteration is the one
// rebuild, and multi-iteration runs take the incremental path on at least
// 80% of iterations.
func assertIncrementalStats(t *testing.T, report *Report) {
	t.Helper()
	s := report.Stats
	if s.ProductPatches+s.ProductRebuilds != s.Iterations {
		t.Fatalf("patches(%d) + rebuilds(%d) != iterations(%d)",
			s.ProductPatches, s.ProductRebuilds, s.Iterations)
	}
	if s.ProductRebuilds != 1 {
		t.Fatalf("expected exactly the initial rebuild, got %d rebuilds over %d iterations",
			s.ProductRebuilds, s.Iterations)
	}
	for i, it := range report.Iterations {
		if want := i > 0; it.Patched != want {
			t.Fatalf("iteration %d: Patched = %v, want %v", i, it.Patched, want)
		}
	}
	// The ≥80% criterion is only satisfiable once the run is long enough
	// to amortize the mandatory initial build; shorter runs are covered by
	// the stricter rebuilds==1 check above.
	if s.Iterations >= 5 {
		if frac := float64(s.ProductPatches) / float64(s.Iterations); frac < 0.8 {
			t.Fatalf("incremental path taken on %.0f%% of iterations, want >= 80%%", frac*100)
		}
	}
}

func TestIncrementalMatchesRebuildProvenRun(t *testing.T) {
	report := runDifferential(t,
		func() legacy.Component { return &railcab.CorrectShuttle{} },
		Options{Property: railcab.Constraint()})
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v/%v", report.Verdict, report.Kind)
	}
	if report.Stats.Iterations < 2 {
		t.Fatalf("scenario too shallow to exercise patching: %d iterations", report.Stats.Iterations)
	}
}

func TestIncrementalMatchesRebuildConstraintViolation(t *testing.T) {
	report := runDifferential(t,
		func() legacy.Component { return &railcab.EagerShuttle{} },
		Options{Property: railcab.Constraint()})
	if report.Verdict != VerdictViolation || report.Kind != ViolationConstraint {
		t.Fatalf("verdict = %v/%v, want violation/constraint", report.Verdict, report.Kind)
	}
}

func TestIncrementalMatchesRebuildDeadlockViolation(t *testing.T) {
	report := runDifferential(t,
		func() legacy.Component { return &railcab.BlockingShuttle{} },
		Options{Property: railcab.Constraint()})
	if report.Verdict != VerdictViolation || report.Kind != ViolationDeadlock {
		t.Fatalf("verdict = %v/%v, want violation/deadlock", report.Verdict, report.Kind)
	}
}

func TestIncrementalMatchesRebuildBoundedResponse(t *testing.T) {
	runDifferential(t,
		func() legacy.Component { return &railcab.CorrectShuttle{} },
		Options{Property: ctl.And(railcab.Constraint(), breakDeadline())})
}

func TestIncrementalMatchesRebuildCounterexampleBatch(t *testing.T) {
	runDifferential(t,
		func() legacy.Component { return &railcab.CorrectShuttle{} },
		Options{Property: railcab.Constraint(), CounterexampleBatch: 3})
}

func TestIncrementalMatchesRebuildPowerSetUniverse(t *testing.T) {
	// The power-set universe produces wider chaos fans and different
	// refusal patterns; the patch must track them identically.
	runDifferential(t,
		func() legacy.Component { return &railcab.CorrectShuttle{} },
		Options{
			Property: railcab.Constraint(),
			Universe: automata.Universe(automata.UniversePowerSet),
		})
}
