package core

import (
	"testing"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// nondetHarness builds a request/acknowledge pair: the component consumes
// req and answers ack or nak; the context sends req and accepts the given
// replies.
func nondetIface() legacy.Interface {
	return legacy.Interface{
		Name:    "impl",
		Inputs:  automata.NewSignalSet("req"),
		Outputs: automata.NewSignalSet("ack", "nak"),
	}
}

func nondetContext(t *testing.T, accepts ...string) *automata.Automaton {
	t.Helper()
	ctx := automata.New("ctx", automata.NewSignalSet("ack", "nak"), automata.NewSignalSet("req"))
	c0 := ctx.MustAddState("c0")
	ctx.MarkInitial(c0)
	for _, sig := range accepts {
		ctx.MustAddTransition(c0, automata.Interaction{
			In:  automata.NewSignalSet(automata.Signal(sig)),
			Out: automata.NewSignalSet("req"),
		}, c0)
	}
	return ctx
}

func TestNondetOutputRaceProven(t *testing.T) {
	// The component races ack/nak on every req; the context accepts both.
	// Every resolution of the race forms a joint step, so the integration
	// is deadlock-free — but only the nondet path can see that: the
	// deterministic replay hard-fails on the first divergent re-execution.
	a := automata.New("impl", automata.NewSignalSet("req"), automata.NewSignalSet("ack", "nak"))
	s0 := a.MustAddState("s0")
	a.MarkInitial(s0)
	req := automata.NewSignalSet("req")
	a.MustAddTransition(s0, automata.Interaction{In: req, Out: automata.NewSignalSet("ack")}, s0)
	a.MustAddTransition(s0, automata.Interaction{In: req, Out: automata.NewSignalSet("nak")}, s0)

	s, err := New(nondetContext(t, "ack", "nak"), legacy.MustWrapNondet(a), nondetIface(), Options{Nondet: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v/%v, want proven", report.Verdict, report.Kind)
	}
	// Both race branches must have been merged into the learned fragment.
	m := report.Model.Automaton()
	id := m.State("s0")
	if id == automata.NoState {
		t.Fatal("initial state not learned")
	}
	var outs []string
	for _, tr := range m.TransitionsFrom(id) {
		outs = append(outs, tr.Label.Out.Key())
	}
	if len(outs) < 2 {
		t.Fatalf("merged branches = %v, want both ack and nak", outs)
	}
	t.Logf("proven after %d iterations, %d merges into %d transitions",
		report.Stats.Iterations, report.Stats.TransitionsLearned, m.NumTransitions())
}

func TestNondetDuplicateSuccessorDeadlock(t *testing.T) {
	// Duplicate successors under an identical label: req/ack stays in s0
	// or moves to s1, where the only reply is nak — which the context
	// refuses to accept. The composed state (c0, s1) is a real deadlock,
	// and confirming it requires sampling the out-set at s1 rather than a
	// single deterministic probe.
	a := automata.New("impl", automata.NewSignalSet("req"), automata.NewSignalSet("ack", "nak"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MarkInitial(s0)
	req := automata.NewSignalSet("req")
	ack := automata.Interaction{In: req, Out: automata.NewSignalSet("ack")}
	a.MustAddTransition(s0, ack, s0)
	a.MustAddTransition(s0, ack, s1)
	a.MustAddTransition(s1, automata.Interaction{In: req, Out: automata.NewSignalSet("nak")}, s0)

	s, err := New(nondetContext(t, "ack"), legacy.MustWrapNondet(a), nondetIface(), Options{Nondet: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictViolation || report.Kind != ViolationDeadlock {
		t.Fatalf("verdict = %v/%v, want violation/deadlock", report.Verdict, report.Kind)
	}
	last := report.Iterations[len(report.Iterations)-1]
	if last.Test != TestConfirmedDeadlock {
		t.Fatalf("final test outcome = %v, want confirmed-deadlock", last.Test)
	}
	t.Logf("deadlock confirmed after %d iterations with %d probes",
		report.Stats.Iterations, report.Stats.ProbesRun)
}

func TestNondetDeterministicComponentStillWorks(t *testing.T) {
	// A deterministic component under the nondet path must reach the same
	// verdict as the deterministic path — ioco collapses to equality when
	// out-sets are singletons.
	a := automata.New("impl", automata.NewSignalSet("req"), automata.NewSignalSet("ack", "nak"))
	s0 := a.MustAddState("s0")
	a.MarkInitial(s0)
	a.MustAddTransition(s0, automata.Interaction{In: automata.NewSignalSet("req"), Out: automata.NewSignalSet("ack")}, s0)

	s, err := New(nondetContext(t, "ack"), legacy.MustWrapNondet(a), nondetIface(), Options{Nondet: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v/%v, want proven", report.Verdict, report.Kind)
	}
}
