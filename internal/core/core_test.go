package core

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/railcab"
)

func newRailcabSynth(t *testing.T, comp legacy.Component, opts Options) *Synthesizer {
	t.Helper()
	if opts.Property == nil {
		opts.Property = railcab.Constraint()
	}
	s, err := New(railcab.FrontRole(), comp, railcab.RearInterface(railcab.RearRoleName), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCorrectShuttleIsProven(t *testing.T) {
	s := newRailcabSynth(t, &railcab.CorrectShuttle{}, Options{})
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v (%v), want proven; iterations=%d",
			report.Verdict, report.Kind, len(report.Iterations))
	}
	// The proof must not require learning the whole component: the
	// correct shuttle has 4 states, all relevant here, but the wait-state
	// idling (a real behavior) is never exercised because the urgent
	// context never lets it matter. At minimum, learning happened.
	if report.Stats.StatesLearned == 0 || report.Stats.TransitionsLearned == 0 {
		t.Fatalf("stats = %+v: expected learning to happen", report.Stats)
	}
	// The learned model must be observation conforming in spirit: its
	// final automaton is deterministic and consistent.
	if !report.Model.Deterministic() {
		t.Fatal("final model not deterministic")
	}
	if err := report.Model.Consistent(); err != nil {
		t.Fatal(err)
	}
	t.Logf("proven after %d iterations, learned %d states / %d transitions / %d refusals, peak |system|=%d",
		report.Stats.Iterations, report.Stats.StatesLearned,
		report.Stats.TransitionsLearned, report.Stats.RefusalsLearned, report.Stats.PeakSystemStates)
}

func TestCorrectShuttleDoesNotLearnIrrelevantBehavior(t *testing.T) {
	// The paper's central claim: only context-relevant behavior is
	// learned. The correct shuttle can idle in noConvoy::wait (a real
	// transition), but the urgent front role never offers a step in which
	// that idling synchronizes, so the loop must finish without learning
	// it.
	s := newRailcabSynth(t, &railcab.CorrectShuttle{}, Options{})
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v", report.Verdict)
	}
	a := report.Model.Automaton()
	wait := a.State("noConvoy::wait")
	if wait == automata.NoState {
		t.Fatal("wait state should have been learned")
	}
	for _, tr := range a.TransitionsFrom(wait) {
		if tr.Label.In.IsEmpty() && tr.Label.Out.IsEmpty() {
			t.Fatal("idle transition at wait was learned although the context never exercises it")
		}
	}
}

func TestEagerShuttleFastConflictDetection(t *testing.T) {
	s := newRailcabSynth(t, &railcab.EagerShuttle{}, Options{})
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictViolation || report.Kind != ViolationConstraint {
		t.Fatalf("verdict = %v/%v, want violation/constraint", report.Verdict, report.Kind)
	}
	// Fast conflict detection: the final iteration decided without a
	// test, from learned behavior alone (Listing 1.4).
	last := report.Iterations[len(report.Iterations)-1]
	if last.Test != TestNotRun {
		t.Fatalf("final iteration ran a test (%v); expected fast conflict detection", last.Test)
	}
	if !last.CexInLearnedPart {
		t.Fatal("conflict counterexample claimed to involve chaos states")
	}
	if report.Witness == nil || report.WitnessText == "" {
		t.Fatal("missing witness")
	}
	// The witness ends in the conflicting mode combination.
	sys := report.WitnessSystem
	final := report.Witness.States[len(report.Witness.States)-1]
	if !sys.HasLabel(final, "rearRole.convoy") || !sys.HasLabel(final, "frontRole.noConvoy") {
		t.Fatalf("witness final labels = %v", sys.Labels(final))
	}
	t.Logf("conflict found after %d iterations:\n%s", report.Stats.Iterations, report.WitnessText)
}

func TestBlockingShuttleConfirmedDeadlock(t *testing.T) {
	s := newRailcabSynth(t, &railcab.BlockingShuttle{}, Options{})
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictViolation || report.Kind != ViolationDeadlock {
		t.Fatalf("verdict = %v/%v, want violation/deadlock", report.Verdict, report.Kind)
	}
	last := report.Iterations[len(report.Iterations)-1]
	if last.Test != TestConfirmedDeadlock {
		t.Fatalf("final test outcome = %v, want confirmed-deadlock", last.Test)
	}
	if len(last.Probes) == 0 {
		t.Fatal("deadlock confirmed without probing the context offers")
	}
	for _, p := range last.Probes {
		if p.Accepted {
			// Accepted probes are fine only if they cannot form a joint
			// step; the blocking shuttle refuses everything when
			// terminated.
			t.Fatalf("terminated shuttle accepted probe %v", p.Input)
		}
	}
	t.Logf("deadlock confirmed after %d iterations, %d probes", report.Stats.Iterations, report.Stats.ProbesRun)
}

func TestVerdictsHaveNoFalseness(t *testing.T) {
	// Cross-validate the verdicts against ground truth: wrap each
	// controller's true automaton (reconstructed by exhaustive
	// exploration) and model check the full composition directly.
	controllers := []struct {
		name string
		comp legacy.Component
		want Verdict
	}{
		{"correct", &railcab.CorrectShuttle{}, VerdictProven},
		{"eager", &railcab.EagerShuttle{}, VerdictViolation},
		{"blocking", &railcab.BlockingShuttle{}, VerdictViolation},
	}
	for _, tc := range controllers {
		t.Run(tc.name, func(t *testing.T) {
			s := newRailcabSynth(t, tc.comp, Options{})
			report, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if report.Verdict != tc.want {
				t.Fatalf("verdict = %v, want %v", report.Verdict, tc.want)
			}
			// Ground truth: explore the real component exhaustively into
			// an automaton and verify directly.
			truth := ExploreComponent(tc.comp, railcab.RearInterface(railcab.RearRoleName),
				automata.Universe(automata.UniverseSingleton), QualifiedLabeler(railcab.RearRoleName), 64)
			sys, err := automata.Compose("truth", railcab.FrontRole(), truth)
			if err != nil {
				t.Fatal(err)
			}
			checker := ctl.NewChecker(sys)
			holds := checker.Holds(railcab.Constraint()) && checker.Holds(ctl.NoDeadlock())
			if holds != (report.Verdict == VerdictProven) {
				t.Fatalf("synthesis verdict %v contradicts ground truth holds=%v", report.Verdict, holds)
			}
		})
	}
}

func TestLearnedModelConformsToImplementation(t *testing.T) {
	// Every learned transition and refusal must be real behavior of the
	// implementation (observation conformance, Definition 10) — this is
	// what makes the abstractions safe (Theorem 1).
	comps := []legacy.Component{
		&railcab.CorrectShuttle{}, &railcab.EagerShuttle{}, &railcab.BlockingShuttle{},
	}
	for _, comp := range comps {
		s := newRailcabSynth(t, comp, Options{})
		report, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		truth := ExploreComponent(comp, railcab.RearInterface(railcab.RearRoleName),
			automata.Universe(automata.UniverseSingleton), QualifiedLabeler(railcab.RearRoleName), 64)
		if err := report.Model.ObservationConforming(truth); err != nil {
			t.Fatalf("learned model not conforming: %v", err)
		}
	}
}

func TestProvenModelIsSmallerThanFullBehavior(t *testing.T) {
	// The proof must not require exploring the entire interaction
	// universe: far fewer tests than the exhaustive product.
	s := newRailcabSynth(t, &railcab.CorrectShuttle{}, Options{})
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	universeSize := len(automata.Universe(automata.UniverseSingleton).
		Enumerate(railcab.FrontToRear(), railcab.RearToFront()))
	full := report.Model.Automaton().NumStates() * universeSize
	learnedFacts := report.Model.Automaton().NumTransitions() + report.Model.NumBlocked()
	if learnedFacts >= full {
		t.Fatalf("learned %d facts, exhaustive exploration would be %d — no savings", learnedFacts, full)
	}
}

func TestOptionsValidation(t *testing.T) {
	front := railcab.FrontRole()
	iface := railcab.RearInterface(railcab.RearRoleName)
	if _, err := New(nil, &railcab.CorrectShuttle{}, iface, Options{}); err == nil {
		t.Fatal("nil context accepted")
	}
	if _, err := New(front, nil, iface, Options{}); err == nil {
		t.Fatal("nil component accepted")
	}
	badIface := iface
	badIface.Name = ""
	if _, err := New(front, &railcab.CorrectShuttle{}, badIface, Options{}); err == nil {
		t.Fatal("invalid interface accepted")
	}
	// Non-ACTL property.
	if _, err := New(front, &railcab.CorrectShuttle{}, iface, Options{
		Property: ctl.EF(ctl.Atom("x")),
	}); err == nil {
		t.Fatal("non-ACTL property accepted")
	}
	// Overlapping alphabets.
	clash := automata.New("clash", iface.Inputs, automata.EmptySet)
	id := clash.MustAddState("s")
	clash.MarkInitial(id)
	if _, err := New(clash, &railcab.CorrectShuttle{}, iface, Options{}); err == nil {
		t.Fatal("overlapping alphabets accepted")
	}
}

func TestQualifiedLabeler(t *testing.T) {
	l := QualifiedLabeler("rearRole")
	got := l("convoy::breakWait")
	if len(got) != 2 || got[0] != "rearRole.convoy" || got[1] != "rearRole.convoy::breakWait" {
		t.Fatalf("labels = %v", got)
	}
	if got := l("simple"); len(got) != 1 || got[0] != "rearRole.simple" {
		t.Fatalf("labels = %v", got)
	}
}

func TestDeadlockOnlyMode(t *testing.T) {
	// Property nil: only deadlock freedom is established.
	s, err := New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName), Options{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v", report.Verdict)
	}
}

func TestIterationListingsRendered(t *testing.T) {
	s := newRailcabSynth(t, &railcab.CorrectShuttle{}, Options{})
	report, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sawTrace := false
	for _, it := range report.Iterations {
		if it.ReplayTrace != nil {
			text := it.ReplayTrace.Render()
			if strings.Contains(text, "[CurrentState]") {
				sawTrace = true
			}
		}
	}
	if !sawTrace {
		t.Fatal("no replay trace rendered in listing format")
	}
}
