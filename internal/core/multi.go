package core

import (
	"fmt"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/replay"
	"muml/internal/trace"
)

// MultiSynthesizer extends the synthesis loop to several legacy components
// learned in parallel — the extension sketched in the paper's conclusion
// (Section 7): "the approach can be extended to multiple legacy
// components, by using the parallel combination of multiple behavioral
// models; the iterative synthesis will then improve all these models in
// parallel."
//
// Each iteration checks M_a^c ‖ chaos(M₁) ‖ … ‖ chaos(Mₖ); counterexamples
// are projected onto every component and all observations learned at once.
// The components must communicate only with the context, not with each
// other (pairwise disjoint alphabets), which keeps deadlock confirmation
// probes per-component.
type MultiSynthesizer struct {
	context *automata.Automaton
	comps   []legacy.Component
	ifaces  []legacy.Interface
	opts    Options

	models []*automata.Incomplete
	stats  Stats

	// checker is reused across iterations (see Synthesizer.checker); the
	// multi-component pipeline always rebuilds the product from scratch,
	// but rebinding still amortizes the checker's internal buffers.
	checker      *ctl.Checker
	weakProperty ctl.Formula
	noDeadlock   ctl.Formula
}

// MultiReport is the outcome of a multi-component synthesis run.
type MultiReport struct {
	Verdict    Verdict
	Kind       ViolationKind
	Iterations int
	// Models holds the final learned model per component (same order as
	// the interfaces passed to NewMulti).
	Models  []*automata.Incomplete
	Witness *automata.Run
	// WitnessText renders the witness in listing style.
	WitnessText string
	Stats       Stats
}

// NewMulti prepares a multi-component synthesizer.
func NewMulti(context *automata.Automaton, comps []legacy.Component, ifaces []legacy.Interface, opts Options) (*MultiSynthesizer, error) {
	if len(comps) == 0 || len(comps) != len(ifaces) {
		return nil, fmt.Errorf("core: need matching component and interface lists")
	}
	if err := context.Validate(); err != nil {
		return nil, fmt.Errorf("core: context: %w", err)
	}
	for i := range ifaces {
		if err := ifaces[i].Validate(); err != nil {
			return nil, err
		}
		for j := i + 1; j < len(ifaces); j++ {
			if !ifaces[i].Inputs.Union(ifaces[i].Outputs).
				Disjoint(ifaces[j].Inputs.Union(ifaces[j].Outputs)) {
				return nil, fmt.Errorf(
					"core: components %q and %q share signals; multi-component learning requires them to communicate only with the context",
					ifaces[i].Name, ifaces[j].Name)
			}
		}
	}
	o := opts.withDefaults("")
	if o.Property != nil && !ctl.IsACTL(o.Property) {
		return nil, fmt.Errorf("core: property %s is not ACTL", o.Property)
	}

	m := &MultiSynthesizer{context: context, comps: comps, ifaces: ifaces, opts: o}
	if o.Property != nil {
		m.weakProperty = ctl.WeakenForChaos(o.Property)
	}
	m.noDeadlock = ctl.NoDeadlock()
	for i, comp := range comps {
		init := legacy.InitialStateName(comp)
		m.stats.ResetsUsed++
		a := automata.New(ifaces[i].Name, ifaces[i].Inputs, ifaces[i].Outputs)
		labeler := o.Labeler
		if labeler == nil {
			labeler = QualifiedLabeler(ifaces[i].Name)
		}
		id := a.MustAddState(init, labeler(init)...)
		a.MarkInitial(id)
		m.models = append(m.models, automata.NewIncomplete(a))
	}
	return m, nil
}

// Run executes the parallel synthesis until a verdict is reached.
func (m *MultiSynthesizer) Run() (*MultiReport, error) {
	for iter := 0; iter < m.opts.MaxIterations; iter++ {
		done, report, progress, err := m.step(iter)
		if err != nil {
			return nil, err
		}
		if done {
			report.Iterations = iter + 1
			report.Models = m.models
			m.stats.Iterations = iter + 1
			report.Stats = m.stats
			return report, nil
		}
		if !progress {
			return nil, fmt.Errorf("core: multi-component iteration %d made no progress", iter)
		}
	}
	return nil, fmt.Errorf("core: no verdict after %d iterations", m.opts.MaxIterations)
}

func (m *MultiSynthesizer) step(iter int) (bool, *MultiReport, bool, error) {
	parts := make([]*automata.Automaton, 0, len(m.models)+1)
	parts = append(parts, m.context)
	for _, model := range m.models {
		parts = append(parts, automata.ChaoticClosure(model, m.opts.Universe))
	}
	sys, err := automata.ComposeAll("system", parts...)
	if err != nil {
		return false, nil, false, err
	}
	if sys.NumStates() > m.stats.PeakSystemStates {
		m.stats.PeakSystemStates = sys.NumStates()
	}
	m.stats.ProductRebuilds++
	if m.checker == nil {
		m.checker = ctl.NewChecker(sys)
	} else {
		m.checker.Rebind(sys)
	}
	checker := m.checker

	var cex *automata.Run
	kind := ViolationNone
	runWitnessed := false
	if m.weakProperty != nil {
		if res := checker.Check(m.weakProperty); !res.Holds {
			cex = res.Counterexample
			kind = ViolationConstraint
			runWitnessed = res.RunWitnessed
		}
	}
	if cex == nil && !m.opts.SkipDeadlockCheck {
		if res := checker.Check(m.noDeadlock); !res.Holds {
			cex = res.Counterexample
			kind = ViolationDeadlock
		}
	}
	if cex == nil {
		return true, &MultiReport{Verdict: VerdictProven, Kind: ViolationNone}, true, nil
	}

	if kind == ViolationConstraint && runAvoidsChaos(sys, cex) && runWitnessed {
		return true, &MultiReport{
			Verdict:     VerdictViolation,
			Kind:        ViolationConstraint,
			Witness:     cex,
			WitnessText: trace.RenderCounterexample(sys, cex),
		}, true, nil
	}

	// Test the counterexample against every component; learn everything.
	progress := false
	allComplete := true
	recordings := make([]replay.Recording, len(m.comps))
	observations := make([]automata.ObservedRun, len(m.comps))
	for i := range m.comps {
		proj, err := sys.ProjectRun(*cex, m.ifaces[i].Name)
		if err != nil {
			return false, nil, false, err
		}
		inputs := make([]automata.SignalSet, len(proj.Steps))
		expected := make([]automata.SignalSet, len(proj.Steps))
		for k, step := range proj.Steps {
			inputs[k] = step.In
			expected[k] = step.Out
		}
		rec := replay.Record(m.comps[i], m.ifaces[i], inputs)
		m.stats.TestsRun++
		m.stats.ResetsUsed += 2
		_, observed, err := replay.Replay(m.comps[i], rec)
		if err != nil {
			return false, nil, false, err
		}
		recordings[i] = rec
		observations[i] = observed
		delta, err := m.learnOne(i, observed)
		if err != nil {
			return false, nil, false, err
		}
		if !delta.Empty() {
			progress = true
		}
		if !rec.Completed() {
			allComplete = false
			continue
		}
		for k := range rec.Outputs {
			if !rec.Outputs[k].Equal(expected[k]) {
				allComplete = false
				break
			}
		}
	}

	if !allComplete {
		return false, nil, progress, nil
	}
	final := cex.States[len(cex.States)-1]
	if kind != ViolationDeadlock && !sys.IsDeadlock(final) {
		// The run is real and witnesses the violation by itself.
		return true, &MultiReport{
			Verdict:     VerdictViolation,
			Kind:        kind,
			Witness:     cex,
			WitnessText: trace.RenderCounterexample(sys, cex),
		}, true, nil
	}

	// The violation rests on the run being inextensible. Probe each
	// component against the context's offers at the final state; the stop
	// is real iff no offer can form a joint step with all components'
	// reactions simultaneously.
	confirmed, probeProgress, err := m.probeDeadlock(sys, cex, recordings, observations)
	if err != nil {
		return false, nil, false, err
	}
	if confirmed {
		reportKind := kind
		if reportKind == ViolationNone {
			reportKind = ViolationDeadlock
		}
		return true, &MultiReport{
			Verdict:     VerdictViolation,
			Kind:        reportKind,
			Witness:     cex,
			WitnessText: trace.RenderCounterexample(sys, cex),
		}, true, nil
	}
	return false, nil, progress || probeProgress, nil
}

func (m *MultiSynthesizer) probeDeadlock(sys *automata.Automaton, cex *automata.Run, recs []replay.Recording, observations []automata.ObservedRun) (bool, bool, error) {
	partsAll := sys.StateParts(cex.States[len(cex.States)-1])
	n := len(m.context.Leaves())
	ctxState := m.context.StateByParts(partsAll[:n])
	if ctxState == automata.NoState {
		return false, false, fmt.Errorf("core: cannot resolve context state for probing")
	}

	progress := false
	jointPossible := false
	type probeKey struct {
		comp int
		in   string
	}
	cache := make(map[probeKey]replay.ProbeResult)
	for _, offer := range m.context.TransitionsFrom(ctxState) {
		ok := true
		var combinedOut automata.SignalSet
		for i := range m.comps {
			in := offer.Label.Out.Intersect(m.ifaces[i].Inputs)
			key := probeKey{comp: i, in: in.Key()}
			result, cached := cache[key]
			if !cached {
				var err error
				result, err = replay.Probe(m.comps[i], recs[i], in)
				if err != nil {
					return false, false, err
				}
				cache[key] = result
				m.stats.ProbesRun++
				m.stats.ResetsUsed++
				if delta, err := m.learnProbeOne(i, observations[i], result); err != nil {
					return false, false, err
				} else if !delta.Empty() {
					progress = true
				}
			}
			if !result.Accepted {
				ok = false
				break
			}
			combinedOut = combinedOut.Union(result.Output)
		}
		if !ok {
			continue
		}
		// Everything the context sends must be consumed by some component,
		// and the context's expected inputs must match the combined
		// component outputs.
		consumed := automata.EmptySet
		for i := range m.ifaces {
			consumed = consumed.Union(offer.Label.Out.Intersect(m.ifaces[i].Inputs))
		}
		if !offer.Label.Out.Equal(consumed) {
			continue
		}
		if offer.Label.In.Intersect(allOutputs(m.ifaces)).Equal(combinedOut) {
			jointPossible = true
		}
	}
	return !jointPossible, progress, nil
}

func (m *MultiSynthesizer) learnOne(i int, observed automata.ObservedRun) (automata.LearnDelta, error) {
	labeler := m.opts.Labeler
	if labeler == nil {
		labeler = QualifiedLabeler(m.ifaces[i].Name)
	}
	var total automata.LearnDelta
	blocked := observed.Blocked
	run := observed
	run.Blocked = nil
	delta, err := m.models[i].Learn(run, labeler)
	if err != nil {
		return total, err
	}
	total = delta
	final := run.Initial
	if len(run.Steps) > 0 {
		final = run.Steps[len(run.Steps)-1].To
	}
	if blocked != nil {
		n, err := m.blockAll(i, final, blocked.In)
		if err != nil {
			return total, err
		}
		total.Blocked += n
	}
	if !m.opts.PaperLiteralLearning {
		cur := run.Initial
		for _, step := range run.Steps {
			n, err := m.blockOthers(i, cur, step.Label)
			if err != nil {
				return total, err
			}
			total.Blocked += n
			cur = step.To
		}
	}
	m.stats.StatesLearned += total.States
	m.stats.TransitionsLearned += total.Transitions
	m.stats.RefusalsLearned += total.Blocked
	return total, nil
}

func (m *MultiSynthesizer) learnProbeOne(i int, prefix automata.ObservedRun, result replay.ProbeResult) (automata.LearnDelta, error) {
	var total automata.LearnDelta
	final := prefix.Initial
	if len(prefix.Steps) > 0 {
		final = prefix.Steps[len(prefix.Steps)-1].To
	}
	if result.Accepted {
		labeler := m.opts.Labeler
		if labeler == nil {
			labeler = QualifiedLabeler(m.ifaces[i].Name)
		}
		run := prefix
		run.Blocked = nil
		run.Steps = append(append([]automata.ObservedStep(nil), prefix.Steps...), automata.ObservedStep{
			Label: automata.Interaction{In: result.Input, Out: result.Output},
			To:    result.After,
		})
		delta, err := m.models[i].Learn(run, labeler)
		if err != nil {
			return total, err
		}
		total = delta
		if !m.opts.PaperLiteralLearning {
			n, err := m.blockOthers(i, final, automata.Interaction{In: result.Input, Out: result.Output})
			if err != nil {
				return total, err
			}
			total.Blocked += n
		}
	} else {
		n, err := m.blockAll(i, final, result.Input)
		if err != nil {
			return total, err
		}
		total.Blocked += n
	}
	m.stats.StatesLearned += total.States
	m.stats.TransitionsLearned += total.Transitions
	m.stats.RefusalsLearned += total.Blocked
	return total, nil
}

func (m *MultiSynthesizer) blockOthers(i int, state string, observed automata.Interaction) (int, error) {
	id := m.models[i].Automaton().State(state)
	if id == automata.NoState {
		return 0, fmt.Errorf("core: unknown learned state %q", state)
	}
	n := 0
	for _, x := range m.opts.Universe.Enumerate(m.ifaces[i].Inputs, m.ifaces[i].Outputs) {
		if !x.In.Equal(observed.In) || x.Out.Equal(observed.Out) {
			continue
		}
		if m.models[i].IsBlocked(id, x) || len(m.models[i].Automaton().Successors(id, x)) > 0 {
			continue
		}
		if err := m.models[i].Block(id, x); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (m *MultiSynthesizer) blockAll(i int, state string, in automata.SignalSet) (int, error) {
	id := m.models[i].Automaton().State(state)
	if id == automata.NoState {
		return 0, fmt.Errorf("core: unknown learned state %q", state)
	}
	n := 0
	for _, x := range m.opts.Universe.Enumerate(m.ifaces[i].Inputs, m.ifaces[i].Outputs) {
		if !x.In.Equal(in) {
			continue
		}
		if m.models[i].IsBlocked(id, x) || len(m.models[i].Automaton().Successors(id, x)) > 0 {
			continue
		}
		if err := m.models[i].Block(id, x); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func allOutputs(ifaces []legacy.Interface) automata.SignalSet {
	out := automata.EmptySet
	for _, i := range ifaces {
		out = out.Union(i.Outputs)
	}
	return out
}
