package core

import (
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
)

// chattyContext sends x, then z, then idles forever; states are labeled.
func chattyContext() *automata.Automaton {
	c := automata.New("chatty", automata.NewSignalSet("y"), automata.NewSignalSet("x", "z"))
	c0 := c.MustAddState("c0")
	c1 := c.MustAddState("c1")
	c2 := c.MustAddState("c2")
	c3 := c.MustAddState("c3")
	c.MustAddTransition(c0, automata.Interact(nil, []automata.Signal{"x"}), c1)
	c.MustAddTransition(c1, automata.Interact(nil, []automata.Signal{"z"}), c2)
	c.MustAddTransition(c2, automata.Interact([]automata.Signal{"y"}, nil), c3)
	c.MustAddTransition(c3, automata.Interaction{}, c3)
	c.MarkInitial(c0)
	c.LabelStatesByName()
	return c
}

// oneShot accepts a single x and then refuses everything — in particular
// the z the context sends next, so longer counterexample plans block
// mid-way, exercising the blocked-recording learning path (Definition 12
// via refusal expansion).
type oneShot struct{ state string }

var _ legacy.Component = (*oneShot)(nil)
var _ legacy.Introspector = (*oneShot)(nil)

func (o *oneShot) Reset()            { o.state = "fresh" }
func (o *oneShot) StateName() string { return o.state }
func (o *oneShot) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	if o.state == "" {
		o.state = "fresh"
	}
	if o.state == "fresh" && in.Equal(automata.NewSignalSet("x")) {
		o.state = "spent"
		return automata.EmptySet, true
	}
	return automata.EmptySet, false
}

func oneShotIface() legacy.Interface {
	return legacy.Interface{
		Name:    "oneShot",
		Inputs:  automata.NewSignalSet("x", "z"),
		Outputs: automata.NewSignalSet("y"),
	}
}

func TestRefusalsLearnedThroughProbes(t *testing.T) {
	// A structural property of the loop worth pinning down: because the
	// chaos-weakened property is satisfied at s_all and (s,0)-deadlocks
	// precede s_delta ones in the shortest-counterexample search, every
	// tested plan consists solely of already-learned (real) steps —
	// refusal hypotheses are only ever decided by final-state *probes*,
	// never by a recording blocking mid-plan.
	property := ctl.MustParse("AG (chatty.c1 -> AF[1,2] chatty.c3)")
	synth, err := New(chattyContext(), &oneShot{}, oneShotIface(), Options{Property: property})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictViolation {
		t.Fatalf("verdict = %v/%v, want a violation", report.Verdict, report.Kind)
	}
	for _, it := range report.Iterations {
		if it.Recording != nil && !it.Recording.Completed() {
			t.Fatal("a plan blocked mid-replay although plans should be all-real")
		}
	}
	if report.Stats.ProbesRun == 0 {
		t.Fatal("no probes were run")
	}
	// The refusals of the spent state were established by the probes.
	spent := report.Model.Automaton().State("spent")
	if spent == automata.NoState {
		t.Fatal("spent state not learned")
	}
	if len(report.Model.BlockedAt(spent)) == 0 {
		t.Fatal("refusals of the spent state not recorded in T̄")
	}
}

func TestPaperLiteralStillConvictsEagerShuttle(t *testing.T) {
	// Fast conflict detection only needs learned transitions, so even the
	// paper-literal learning rule convicts the eager shuttle.
	synth, err := New(chattyContext(), &oneShot{}, oneShotIface(), Options{PaperLiteralLearning: true})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The one-shot component's deadlock is confirmed by probing even
	// under literal learning (the probes themselves establish refusals).
	if report.Verdict != VerdictViolation || report.Kind != ViolationDeadlock {
		t.Fatalf("verdict = %v/%v", report.Verdict, report.Kind)
	}
}

func TestBatchedCounterexamplesPreserveVerdicts(t *testing.T) {
	for _, batch := range []int{1, 2, 8} {
		synth, err := New(chattyContext(), &oneShot{}, oneShotIface(),
			Options{CounterexampleBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		report, err := synth.Run()
		if err != nil {
			t.Fatal(err)
		}
		if report.Verdict != VerdictViolation || report.Kind != ViolationDeadlock {
			t.Fatalf("batch=%d: verdict = %v/%v", batch, report.Verdict, report.Kind)
		}
	}
}

// refusingPonger never even accepts its ping — used to reach the
// multi-component refusal-learning path.
type refusingPonger struct{}

var _ legacy.Component = refusingPonger{}

func (refusingPonger) Reset() {}
func (refusingPonger) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	return automata.EmptySet, in.IsEmpty()
}

func TestMultiConfirmsRefusingComponent(t *testing.T) {
	m, err := NewMulti(multiContext(),
		[]legacy.Component{&ponger{idx: "1"}, refusingPonger{}},
		[]legacy.Interface{pongIface("1"), pongIface("2")},
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	report, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictViolation || report.Kind != ViolationDeadlock {
		t.Fatalf("verdict = %v/%v", report.Verdict, report.Kind)
	}
	// The refusing component's T̄ must record the refusal of ping2.
	model2 := report.Models[1]
	init := model2.Automaton().Initial()[0]
	if len(model2.BlockedAt(init)) == 0 {
		t.Fatal("refusal of ping2 not learned into T̄")
	}
}
