// Package core implements the paper's primary contribution: the iterative
// behavior synthesis that combines compositional formal verification and
// counterexample-guided testing to decide whether a black-box legacy
// component integrates correctly into a Mechatronic UML context
// (Sections 3-5).
//
// Given an abstract context model M_a^c and a deterministic legacy
// implementation M_r with known structural interface, the loop maintains a
// series of incomplete automata M_l^i whose chaotic closures M_a^i =
// chaos(M_l^i) are safe abstractions of M_r (Theorem 1). Each iteration:
//
//  1. model checks M_a^c ‖ M_a^i ⊨ φ ∧ ¬δ; success proves the property
//     for the real system M_r^c ‖ M_r (Lemma 5) — verdict Proven;
//  2. a constraint counterexample that never visits the chaotic states is
//     already a real run of the integrated system (Lemma 6) — verdict
//     Violation, without any test ("fast conflict detection", Fig. 6);
//  3. otherwise the counterexample is executed against the legacy
//     component using record/replay (Section 5); the enriched observation
//     is merged into M_l^{i+1} by learn (Definitions 11-12, Lemma 7), and
//     deadlock hypotheses at the end of the run are probed against the
//     context's offered interactions — all refused means the deadlock is
//     real (verdict Violation), otherwise the loop continues.
//
// Termination for finite deterministic components follows the argument of
// Theorem 2: every non-confirming test strictly grows the learned
// knowledge (states, transitions, or refusals).
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/obs"
	"muml/internal/replay"
	"muml/internal/trace"
)

// Verdict is the outcome of the synthesis loop.
type Verdict int

// Verdicts.
const (
	// VerdictProven: the property and deadlock freedom hold for the
	// integrated system (Lemma 5).
	VerdictProven Verdict = iota + 1
	// VerdictViolation: a real counterexample of the integrated system
	// was found (Lemma 6) — never a false negative.
	VerdictViolation
)

func (v Verdict) String() string {
	switch v {
	case VerdictProven:
		return "proven"
	case VerdictViolation:
		return "violation"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// ViolationKind distinguishes what a violation witnesses.
type ViolationKind int

// Violation kinds.
const (
	// ViolationNone is reported with VerdictProven.
	ViolationNone ViolationKind = iota
	// ViolationConstraint: the property φ is violated by a real run.
	ViolationConstraint
	// ViolationDeadlock: the integrated system reaches a real deadlock.
	ViolationDeadlock
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationNone:
		return "none"
	case ViolationConstraint:
		return "constraint violation"
	case ViolationDeadlock:
		return "deadlock"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Options configure the synthesizer.
type Options struct {
	// Property is the constraint φ to establish (timed ACTL). May be nil
	// to check deadlock freedom only.
	Property ctl.Formula
	// Context, when non-nil, bounds the whole run: its deadline or
	// cancellation aborts long fixpoints inside the model checker and the
	// composition BFS promptly, and Run returns an error wrapping the
	// context's error (errors.Is-matchable against
	// context.DeadlineExceeded / context.Canceled). A nil or background
	// context leaves the run unbounded at zero overhead.
	Context context.Context
	// Memo, when non-nil, memoizes chaotic closures and compositions by
	// structural fingerprint, shared safely across concurrent synthesis
	// runs (see automata.MemoCache). Identical sub-problems — notably the
	// iteration-0 closure of instances sharing an initial model — are then
	// solved once per batch.
	Memo *automata.MemoCache
	// SkipDeadlockCheck disables the ¬δ check (not recommended; deadlock
	// freedom is what makes role invariants compositional, Section 2.4).
	SkipDeadlockCheck bool
	// Universe bounds the interactions considered possible for the legacy
	// component. Defaults to the singleton universe (at most one message
	// per direction per step), matching RTSC step semantics.
	Universe automata.InteractionUniverse
	// MaxIterations bounds the loop (default 1000).
	MaxIterations int
	// CounterexampleBatch asks the model checker for up to this many
	// distinct counterexamples per verification round and tests them all
	// before re-verifying — the optimization named in the paper's
	// conclusion (§7). Default 1 (the paper's base algorithm).
	CounterexampleBatch int
	// PaperLiteralLearning restricts learning to the paper's Definitions
	// 11-12: only observed transitions and observed blockings are
	// recorded. By default the loop additionally exploits that the
	// implementation's reaction to an input is a function of the state
	// (Section 4.3 excludes any nondeterminism): observing (s, A, B)
	// refutes every (s, A, B') with B' ≠ B. Without that rule a chaos
	// hypothesis (s, A, B) whose real reaction B' is already known would
	// never be eliminated and the loop can cycle; enable this flag only
	// for the paper-literal ablation.
	PaperLiteralLearning bool
	// Labeler assigns propositions to learned state names. Defaults to
	// QualifiedLabeler(interface name).
	Labeler func(state string) []automata.Proposition
	// DisableIncremental forces a from-scratch chaotic closure and
	// composition every iteration instead of patching the previous
	// iteration's system (the pre-incremental behavior; kept for
	// benchmarking and as an escape hatch).
	DisableIncremental bool
	// CheckIncremental validates every incrementally patched system
	// against a from-scratch rebuild and fails the run on divergence.
	// Expensive; intended for differential tests.
	CheckIncremental bool
	// Journal receives the structured event stream of the run: one
	// iteration_start per round, the build decision (closure_patched or
	// product_rebuilt with its reason), check_result, and — when a
	// counterexample is tested — cex_classified, replay_step,
	// probe_result, and learn_delta, closed by a single verdict event.
	// Events carry causal identity: each iteration_start opens a span,
	// its round's events parent to it, and the test section of each
	// counterexample nests under the cex_classified span, so the journal
	// reconstructs as a span tree (DESIGN.md §10). Nil disables
	// journaling; every emission site is guarded so a disabled journal
	// costs one branch and no allocation.
	Journal *obs.Journal
	// TraceID names this run's trace in the journal; all events of the
	// run carry it. Defaults to the component interface's name.
	TraceID string
	// Metrics, when non-nil, receives the run's span timers
	// (core.compose, core.check, core.replay, core.probe) and the bound
	// checker's ctl.* counters. Callers typically also pass the same
	// registry to automata.EnableObservability and
	// replay.EnableObservability.
	Metrics *obs.Registry
	// PhaseProfiling attaches pprof goroutine labels (phase=compose,
	// phase=check, phase=test) around the corresponding sections so CPU
	// profiles captured with obs.StartCPUProfile attribute samples to
	// loop phases.
	PhaseProfiling bool
	// Nondet switches counterexample classification to the ioco-based
	// nondeterministic path (DESIGN.md §13): replay follows the
	// component's actual behavior, divergent-but-allowed observations are
	// merged into the learned fragment (journaled as ioco_merge), and only
	// out-set escapes — outputs the fragment explicitly refutes, or
	// hypotheses missed across a completeness budget of fair
	// re-executions — decide verdicts. Requires a component with a fair
	// branch schedule (e.g. legacy.NondetComponent). Off by default; the
	// deterministic path is untouched when false.
	Nondet bool
	// NondetAttempts bounds how many record/replay re-executions one
	// counterexample is given to reproduce the hypothesized run before the
	// iteration concludes with what it learned (default 48).
	NondetAttempts int
	// NondetCompleteness is the complete-testing budget: a hypothesized
	// output at a (state, input) is refuted only after this many fair
	// visits produced something else, and a deadlock offer is dismissed
	// only after this many accepted probes without the matching output
	// (default 8; must exceed the component's branching degree per
	// (state, input) pair).
	NondetCompleteness int
}

func (o *Options) withDefaults(ifaceName string) Options {
	out := *o
	if out.Universe == nil {
		out.Universe = automata.Universe(automata.UniverseSingleton)
	}
	if out.MaxIterations == 0 {
		out.MaxIterations = 1000
	}
	if out.CounterexampleBatch < 1 {
		out.CounterexampleBatch = 1
	}
	if out.Labeler == nil {
		out.Labeler = QualifiedLabeler(ifaceName)
	}
	if out.TraceID == "" {
		out.TraceID = ifaceName
	}
	if out.NondetAttempts == 0 {
		out.NondetAttempts = 48
	}
	if out.NondetCompleteness == 0 {
		out.NondetCompleteness = 8
	}
	return out
}

// QualifiedLabeler labels a state named "a::b" with the propositions
// "prefix.a" and "prefix.a::b", so that pattern constraints over composite
// states ("rearRole.convoy") hold in all substates, mirroring
// rtsc.WithStateLabels.
func QualifiedLabeler(prefix string) func(string) []automata.Proposition {
	return func(state string) []automata.Proposition {
		var props []automata.Proposition
		segments := strings.Split(state, "::")
		for i := range segments {
			props = append(props, automata.Proposition(prefix+"."+strings.Join(segments[:i+1], "::")))
		}
		return props
	}
}

// TestOutcome classifies what happened when a counterexample was executed
// against the legacy component.
type TestOutcome int

// Test outcomes.
const (
	// TestNotRun: the iteration needed no test (verification passed, or
	// the conflict was already decided inside learned behavior).
	TestNotRun TestOutcome = iota
	// TestDiverged: the implementation's observable behavior departed
	// from the hypothesized counterexample; the observation was learned.
	TestDiverged
	// TestConfirmedDeadlock: every interaction the context offers at the
	// end of the counterexample is refused or unmatched — the deadlock is
	// real.
	TestConfirmedDeadlock
	// TestRealizable: the counterexample trace was fully reproduced on
	// the implementation and witnesses the violation by itself; the
	// violation is confirmed.
	TestRealizable
)

func (t TestOutcome) String() string {
	switch t {
	case TestNotRun:
		return "not-run"
	case TestDiverged:
		return "diverged"
	case TestConfirmedDeadlock:
		return "confirmed-deadlock"
	case TestRealizable:
		return "realizable"
	default:
		return fmt.Sprintf("TestOutcome(%d)", int(t))
	}
}

// Iteration records one round of the loop for reporting and for
// regenerating the paper's listings.
type Iteration struct {
	Index int

	// Model sizes before this iteration's learning.
	ModelStates, ModelTransitions, ModelBlocked int
	// ClosureStates and SystemStates measure the verification problem.
	ClosureStates, SystemStates int

	// PropertyHolds and DeadlockFree are the check outcomes.
	PropertyHolds, DeadlockFree bool

	// Counterexample of the failing check (nil when both hold).
	Counterexample *automata.Run
	// CounterexampleText is the rendered composed-run listing.
	CounterexampleText string
	// CexInLearnedPart reports that the counterexample never visits
	// chaotic states.
	CexInLearnedPart bool
	// CexRunWitnessed reports that the counterexample run by itself proves
	// the violation (propositional violation at its end); see
	// ctl.Result.RunWitnessed.
	CexRunWitnessed bool

	Test TestOutcome
	// Recording and ReplayTrace document the test (Listings 1.2/1.3).
	Recording   *replay.Recording
	ReplayTrace *replay.Trace
	// Probes document the deadlock confirmation attempts.
	Probes []replay.ProbeResult

	// Delta is what this iteration's learning added.
	Delta automata.LearnDelta

	// Patched reports that this iteration's system was produced by
	// patching the previous iteration's closure and product in place
	// (false on the first iteration and on rebuild fallbacks).
	Patched bool
	// BuildReason names why the system was patched or rebuilt
	// ("delta-patch", "initial-build", "garbage-threshold", ...); see
	// automata.IncrementalSystem.LastDecision.
	BuildReason string
	// Per-phase wall-clock durations of this iteration. TestDuration
	// covers the whole counterexample-execution section; ReplayDuration
	// (record + deterministic replay + learning) and ProbeDuration
	// (deadlock-confirmation probes) break out its two black-box parts.
	ComposeDuration, CheckDuration, TestDuration time.Duration
	ReplayDuration, ProbeDuration                time.Duration
}

// Stats aggregates effort measures across the run.
type Stats struct {
	Iterations         int
	TestsRun           int
	ProbesRun          int
	ResetsUsed         int // component resets (≈ test executions incl. replays)
	StatesLearned      int
	TransitionsLearned int
	RefusalsLearned    int
	PeakSystemStates   int
	// CTLWordsScanned is the model-checking effort of the run: bitset
	// words produced by the checker's sweep and bounded operators,
	// deterministic for a given problem regardless of worker count or
	// memo warm-start (the cost ledger's effort figure, DESIGN.md §15).
	CTLWordsScanned int64

	// ProductPatches and ProductRebuilds count how each iteration's
	// verification system was obtained: by patching the previous
	// iteration's closure and product, or by building from scratch (the
	// first iteration always rebuilds).
	ProductPatches  int
	ProductRebuilds int
	// Cumulative wall-clock time per phase across all iterations.
	// TestTime covers the whole test phase; ReplayTime (record/replay
	// executions and learning) and ProbeTime (deadlock-confirmation
	// probes) split out the black-box effort the paper argues dominates
	// on real targets, so ReplayTime+ProbeTime ≤ TestTime.
	ComposeTime time.Duration
	CheckTime   time.Duration
	TestTime    time.Duration
	ReplayTime  time.Duration
	ProbeTime   time.Duration
}

// Report is the final result of a synthesis run.
type Report struct {
	Verdict    Verdict
	Kind       ViolationKind
	Property   ctl.Formula
	Iterations []Iteration
	// Witness is the real counterexample run over the final composed
	// system (for violations).
	Witness *automata.Run
	// WitnessSystem is the composed automaton the witness runs over.
	WitnessSystem *automata.Automaton
	// WitnessText is the rendered witness.
	WitnessText string
	// Model is the final learned incomplete automaton M_l^n.
	Model *automata.Incomplete
	Stats Stats
}

// Synthesizer drives the iterative behavior synthesis for one legacy
// component in one context.
type Synthesizer struct {
	context *automata.Automaton
	comp    legacy.Component
	iface   legacy.Interface
	opts    Options

	model *automata.Incomplete
	stats Stats

	// inc carries the composed system across iterations; nil until the
	// first iteration, or permanently when unsupported/disabled.
	inc            *automata.IncrementalSystem
	incUnsupported bool
	// pending is the learn delta accumulated since the last system
	// construction, consumed by the next Apply.
	pending automata.LearnDelta

	// nondetVisits persists fair-visit counters per learned (state, input)
	// across iterations of the nondeterministic path (nil otherwise). The
	// component's round-robin schedule cycles every duplicate branch of a
	// (state, input) within branching-degree consecutive visits, so after
	// Options.NondetCompleteness observed visits the out-set and successor
	// set there are complete: unobserved outputs become refusals and
	// learned labels become settled (chaos escapes removed).
	nondetVisits map[nondetVisitKey]*nondetVisit

	// checker is reused (rebound) across iterations so its predecessor
	// lists and fixpoint buffers amortize over the run.
	checker *ctl.Checker
	// weakProperty and noDeadlock are built once so the checker's
	// per-formula satisfaction cache is keyed by stable pointers.
	weakProperty ctl.Formula
	noDeadlock   ctl.Formula

	// Per-phase span timers and latency histograms registered in
	// Options.Metrics (nil and therefore inert when no registry is
	// configured). Timers carry totals; histograms carry the live
	// distribution the /metrics endpoint exposes as _bucket families.
	tCompose, tCheck, tReplay, tProbe *obs.Timer
	hCompose, hCheck, hReplay, hProbe *obs.Histogram
}

// New validates the inputs and prepares the initial model M_l^0 of
// Section 3: the single known initial state (determined by resetting the
// component and reading its probe) with empty T and T̄; its chaotic
// closure is the initial safe abstraction M_a^0 (Lemma 4, Fig. 4).
func New(context *automata.Automaton, comp legacy.Component, iface legacy.Interface, opts Options) (*Synthesizer, error) {
	if context == nil || comp == nil {
		return nil, errors.New("core: context and component are required")
	}
	if err := iface.Validate(); err != nil {
		return nil, err
	}
	if err := context.Validate(); err != nil {
		return nil, fmt.Errorf("core: context: %w", err)
	}
	if !context.Inputs().Disjoint(iface.Inputs) || !context.Outputs().Disjoint(iface.Outputs) {
		return nil, fmt.Errorf("core: context and component alphabets must be composable (I∩I' = O∩O' = ∅)")
	}
	o := opts.withDefaults(iface.Name)
	if o.Property != nil && !ctl.IsACTL(o.Property) {
		return nil, fmt.Errorf("core: property %s is not ACTL; only ACTL is compositional (Section 2.4)", o.Property)
	}

	s := &Synthesizer{context: context, comp: comp, iface: iface, opts: o}
	s.tCompose = o.Metrics.Timer("core.compose")
	s.tCheck = o.Metrics.Timer("core.check")
	s.tReplay = o.Metrics.Timer("core.replay")
	s.tProbe = o.Metrics.Timer("core.probe")
	s.hCompose = o.Metrics.Histogram("core.compose")
	s.hCheck = o.Metrics.Histogram("core.check")
	s.hReplay = o.Metrics.Histogram("core.replay")
	s.hProbe = o.Metrics.Histogram("core.probe")
	if o.Property != nil {
		s.weakProperty = ctl.WeakenForChaos(o.Property)
	}
	s.noDeadlock = ctl.NoDeadlock()
	if o.Nondet {
		// Merged branches violate the single-successor invariant the
		// delta-patching machinery relies on; the nondet path always
		// rebuilds the closure and product from scratch.
		s.incUnsupported = true
		s.nondetVisits = make(map[nondetVisitKey]*nondetVisit)
	}
	init := legacy.InitialStateName(comp)
	s.stats.ResetsUsed++
	a := automata.New(iface.Name, iface.Inputs, iface.Outputs)
	id := a.MustAddState(init, o.Labeler(init)...)
	a.MarkInitial(id)
	s.model = automata.NewIncomplete(a)
	return s, nil
}

// Model returns the current learned incomplete automaton M_l^i.
func (s *Synthesizer) Model() *automata.Incomplete { return s.model }

// runCtx returns the run's bound context (Background when none was given).
func (s *Synthesizer) runCtx() context.Context {
	if s.opts.Context != nil {
		return s.opts.Context
	}
	return context.Background()
}

// Run executes iterations until a verdict is reached.
func (s *Synthesizer) Run() (*Report, error) {
	report := &Report{Property: s.opts.Property}
	noProgress := 0
	for i := 0; i < s.opts.MaxIterations; i++ {
		if err := s.runCtx().Err(); err != nil {
			return nil, fmt.Errorf("core: run aborted before iteration %d: %w", i, err)
		}
		it, done, err := s.step(i, report)
		if err != nil {
			return nil, err
		}
		report.Iterations = append(report.Iterations, *it)
		if done {
			report.Model = s.model
			s.stats.Iterations = len(report.Iterations)
			if s.checker != nil {
				s.stats.CTLWordsScanned = s.checker.WordsScanned()
			}
			report.Stats = s.stats
			return report, nil
		}
		if it.Delta.Empty() && it.Test != TestNotRun {
			// In nondeterministic mode an iteration may legitimately learn
			// nothing while its fair-visit counters mature toward the
			// completeness budget; the budget itself bounds how long that
			// can go on.
			noProgress++
			if !s.opts.Nondet || noProgress > s.opts.NondetCompleteness {
				return nil, fmt.Errorf(
					"core: iteration %d made no progress (counterexample not confirmed, nothing learned); "+
						"disable PaperLiteralLearning or widen the universe", i)
			}
		} else {
			noProgress = 0
		}
	}
	return nil, fmt.Errorf("core: no verdict after %d iterations", s.opts.MaxIterations)
}

// step performs one iteration. It fills the report's verdict fields when
// done.
func (s *Synthesizer) step(index int, report *Report) (*Iteration, bool, error) {
	it := &Iteration{
		Index:            index,
		ModelStates:      s.model.Automaton().NumStates(),
		ModelTransitions: s.model.Automaton().NumTransitions(),
		ModelBlocked:     s.model.NumBlocked(),
	}
	// iterSpan is the iteration's span: the round's events parent to it.
	var iterSpan uint64
	if j := s.opts.Journal; j.Enabled() {
		iterSpan = j.NewSpan()
		j.Emit(obs.Event{Kind: obs.KindIterationStart, Iter: index,
			Trace: s.opts.TraceID, Span: iterSpan,
			N: map[string]int64{
				"model_states":      int64(it.ModelStates),
				"model_transitions": int64(it.ModelTransitions),
				"model_blocked":     int64(it.ModelBlocked),
			}})
	}

	composeStart := time.Now()
	var sys *automata.Automaton
	if err := s.phase("compose", func() error {
		var err error
		sys, err = s.buildSystem(it)
		return err
	}); err != nil {
		return nil, false, err
	}
	it.ComposeDuration = time.Since(composeStart)
	s.stats.ComposeTime += it.ComposeDuration
	s.tCompose.Observe(it.ComposeDuration)
	s.hCompose.Observe(it.ComposeDuration)
	if it.SystemStates > s.stats.PeakSystemStates {
		s.stats.PeakSystemStates = it.SystemStates
	}
	if j := s.opts.Journal; j.Enabled() {
		k := obs.KindProductRebuilt
		if it.Patched {
			k = obs.KindClosurePatched
		}
		j.Emit(obs.Event{Kind: k, Iter: index, DurNS: int64(it.ComposeDuration),
			Trace: s.opts.TraceID, Parent: iterSpan,
			N: map[string]int64{
				"closure_states": int64(it.ClosureStates),
				"system_states":  int64(it.SystemStates),
			}, S: map[string]string{"reason": it.BuildReason}})
	}

	checkStart := time.Now()
	var results []ctl.Result
	var kind ViolationKind
	if err := s.phase("check", func() error {
		if s.checker == nil {
			s.checker = ctl.NewChecker(sys)
			s.checker.Instrument(s.opts.Metrics)
		} else {
			s.checker.Rebind(sys)
		}
		checker := s.checker

		// Property check with chaos weakening (Section 2.7). With a
		// counterexample batch > 1 several distinct violations are tested
		// per round (the §7 optimization).
		it.PropertyHolds = true
		if s.weakProperty != nil {
			many, err := checker.CheckManyCtx(s.runCtx(), s.weakProperty, s.opts.CounterexampleBatch)
			if err != nil {
				return fmt.Errorf("core: check aborted: %w", err)
			}
			if !many[0].Holds {
				it.PropertyHolds = false
				results = many
				kind = ViolationConstraint
			}
		}
		// Deadlock freedom.
		it.DeadlockFree = true
		if results == nil && !s.opts.SkipDeadlockCheck {
			many, err := checker.CheckManyCtx(s.runCtx(), s.noDeadlock, s.opts.CounterexampleBatch)
			if err != nil {
				return fmt.Errorf("core: check aborted: %w", err)
			}
			if !many[0].Holds {
				it.DeadlockFree = false
				results = many
				kind = ViolationDeadlock
			}
		}
		return nil
	}); err != nil {
		return nil, false, err
	}
	it.CheckDuration = time.Since(checkStart)
	s.stats.CheckTime += it.CheckDuration
	s.tCheck.Observe(it.CheckDuration)
	s.hCheck.Observe(it.CheckDuration)
	if j := s.opts.Journal; j.Enabled() {
		j.Emit(obs.Event{Kind: obs.KindCheckResult, Iter: index, DurNS: int64(it.CheckDuration),
			Trace: s.opts.TraceID, Parent: iterSpan,
			N: map[string]int64{
				"property_holds":  b2i(it.PropertyHolds),
				"deadlock_free":   b2i(it.DeadlockFree),
				"system_states":   int64(sys.NumStates()),
				"counterexamples": int64(len(results)),
			}})
	}

	if results == nil {
		// Both checks passed: M_a^c ‖ M_a^i ⊨ φ ∧ ¬δ, hence the property
		// holds for the real integrated system (Lemma 5).
		report.Verdict = VerdictProven
		report.Kind = ViolationNone
		s.emitVerdict(index, iterSpan, VerdictProven, ViolationNone, "checks-passed")
		return it, true, nil
	}

	testStart := time.Now()
	defer func() {
		it.TestDuration = time.Since(testStart)
		s.stats.TestTime += it.TestDuration
	}()
	for idx, res := range results {
		cex := res.Counterexample
		if cex == nil {
			continue
		}
		if idx == 0 {
			it.Counterexample = cex
			it.CounterexampleText = trace.RenderCounterexample(sys, cex)
			it.CexInLearnedPart = runAvoidsChaos(sys, cex)
			it.CexRunWitnessed = res.RunWitnessed
		}
		// cexSpan scopes this counterexample's test section: the
		// replay_step and probe_result events nest under it.
		var cexSpan uint64
		if j := s.opts.Journal; j.Enabled() {
			text := it.CounterexampleText
			if idx != 0 {
				text = trace.RenderCounterexample(sys, cex)
			}
			cexSpan = j.NewSpan()
			j.Emit(obs.Event{Kind: obs.KindCexClassified, Iter: index,
				Trace: s.opts.TraceID, Span: cexSpan, Parent: iterSpan,
				N: map[string]int64{
					"batch_index":     int64(idx),
					"length":          int64(cex.Len()),
					"in_learned_part": b2i(runAvoidsChaos(sys, cex)),
					"run_witnessed":   b2i(res.RunWitnessed),
				}, S: map[string]string{"kind": kind.String(), "trace": text}})
		}

		if kind == ViolationConstraint && runAvoidsChaos(sys, cex) && res.RunWitnessed {
			// Fast conflict detection: the violation lies entirely in
			// learned (= observed, real) behavior *and* is witnessed by
			// the run alone (a propositional violation), so it is a real
			// conflict without any further test (Listing 1.4). Temporal
			// violations — e.g. a bounded response failing because a
			// closed-copy state might refuse the continuation —
			// additionally rest on refusal hypotheses and are tested even
			// when no chaotic state is visited.
			it.Test = TestNotRun
			report.Verdict = VerdictViolation
			report.Kind = ViolationConstraint
			report.Witness = cex
			report.WitnessSystem = sys
			report.WitnessText = trace.RenderCounterexample(sys, cex)
			s.emitVerdict(index, iterSpan, VerdictViolation, ViolationConstraint, "fast-conflict")
			return it, true, nil
		}

		var confirmed bool
		if err := s.phase("test", func() error {
			var err error
			if s.opts.Nondet {
				confirmed, err = s.testCounterexampleNondet(sys, cex, kind, it, cexSpan)
			} else {
				confirmed, err = s.testCounterexample(sys, cex, kind, it, cexSpan)
			}
			return err
		}); err != nil {
			return nil, false, err
		}
		if confirmed {
			report.Verdict = VerdictViolation
			report.Kind = kind
			report.Witness = cex
			report.WitnessSystem = sys
			report.WitnessText = trace.RenderCounterexample(sys, cex)
			s.emitVerdict(index, iterSpan, VerdictViolation, kind, "test-confirmed")
			return it, true, nil
		}
	}
	if j := s.opts.Journal; j.Enabled() {
		j.Emit(obs.Event{Kind: obs.KindLearnDelta, Iter: index,
			Trace: s.opts.TraceID, Parent: iterSpan,
			N: map[string]int64{
				"states":      int64(it.Delta.States),
				"transitions": int64(it.Delta.Transitions),
				"blocked":     int64(it.Delta.Blocked),
			}})
	}
	s.pending.Merge(it.Delta)
	return it, false, nil
}

// phase runs f, attaching a pprof goroutine label when PhaseProfiling is
// enabled so CPU samples attribute to the loop phase they serve.
func (s *Synthesizer) phase(name string, f func() error) error {
	if s.opts.PhaseProfiling {
		return obs.WithPhase(name, f)
	}
	return f()
}

func (s *Synthesizer) emitVerdict(index int, iterSpan uint64, v Verdict, kind ViolationKind, reason string) {
	if j := s.opts.Journal; j.Enabled() {
		j.Emit(obs.Event{Kind: obs.KindVerdict, Iter: index,
			Trace: s.opts.TraceID, Parent: iterSpan,
			S: map[string]string{
				"verdict": v.String(),
				"kind":    kind.String(),
				"reason":  reason,
			}})
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// buildSystem produces this iteration's verification system M_a^c ‖
// chaos(M_l^i) — incrementally patched from the previous iteration's
// system when possible, built from scratch otherwise — and fills the
// iteration's size fields.
func (s *Synthesizer) buildSystem(it *Iteration) (*automata.Automaton, error) {
	if !s.opts.DisableIncremental && !s.incUnsupported {
		if s.inc == nil {
			inc, err := automata.NewIncrementalSystemWith(s.runCtx(), s.context, s.model, s.opts.Universe, s.opts.Memo)
			switch {
			case errors.Is(err, automata.ErrIncrementalUnsupported):
				s.incUnsupported = true
			case err != nil:
				return nil, fmt.Errorf("core: compose: %w", err)
			default:
				s.inc = inc
				s.stats.ProductRebuilds++
			}
		} else {
			patched, err := s.inc.Apply(s.pending)
			if err != nil {
				return nil, fmt.Errorf("core: incremental compose: %w", err)
			}
			if patched {
				it.Patched = true
				s.stats.ProductPatches++
			} else {
				s.stats.ProductRebuilds++
			}
		}
		if s.inc != nil {
			_, it.BuildReason = s.inc.LastDecision()
			s.pending = automata.LearnDelta{}
			if s.opts.CheckIncremental {
				if err := s.inc.Verify(); err != nil {
					return nil, fmt.Errorf("core: incremental system diverged: %w", err)
				}
			}
			it.ClosureStates = s.inc.Closure().NumStates()
			// The patched product may hold unreachable retraction garbage;
			// report the size a from-scratch composition would have.
			it.SystemStates = s.inc.ReachableStates()
			return s.inc.System(), nil
		}
	}

	s.pending = automata.LearnDelta{}
	var closure *automata.Automaton
	var err error
	if s.opts.Nondet {
		it.BuildReason = "nondet"
		closure, err = automata.ChaoticClosureNondetCtx(s.runCtx(), s.model, s.opts.Universe)
	} else {
		if s.incUnsupported {
			it.BuildReason = "incremental-unsupported"
		} else {
			it.BuildReason = "incremental-disabled"
		}
		closure, err = automata.ChaoticClosureCtx(s.runCtx(), s.model, s.opts.Universe, s.opts.Memo)
	}
	if err != nil {
		return nil, fmt.Errorf("core: closure: %w", err)
	}
	it.ClosureStates = closure.NumStates()
	sys, err := automata.ComposeCtx(s.runCtx(), "system", s.context, closure, s.opts.Memo)
	if err != nil {
		return nil, fmt.Errorf("core: compose: %w", err)
	}
	it.SystemStates = sys.NumStates()
	s.stats.ProductRebuilds++
	return sys, nil
}

// testCounterexample executes the counterexample against the legacy
// component (Section 4.2 / Section 5) and learns from the observations.
// It reports whether the counterexample was confirmed as real. cexSpan is
// the journal span of the counterexample's cex_classified event; the
// replay and probe events nest under it.
func (s *Synthesizer) testCounterexample(sys *automata.Automaton, cex *automata.Run, kind ViolationKind, it *Iteration, cexSpan uint64) (bool, error) {
	proj, err := sys.ProjectRun(*cex, s.iface.Name)
	if err != nil {
		return false, fmt.Errorf("core: project counterexample: %w", err)
	}
	inputs := make([]automata.SignalSet, len(proj.Steps))
	for i, step := range proj.Steps {
		inputs[i] = step.In
	}

	// Record with minimal probes, then replay with full instrumentation
	// (Section 5).
	replayStart := time.Now()
	rec := replay.Record(s.comp, s.iface, inputs)
	s.stats.TestsRun++
	s.stats.ResetsUsed += 2
	trace, observed, err := replay.Replay(s.comp, rec)
	if err != nil {
		return false, fmt.Errorf("core: deterministic replay failed: %w", err)
	}
	it.Recording = &rec
	it.ReplayTrace = &trace

	if err := s.learnObservation(observed, it); err != nil {
		return false, err
	}
	replayDur := time.Since(replayStart)
	it.ReplayDuration += replayDur
	s.stats.ReplayTime += replayDur
	s.tReplay.Observe(replayDur)
	s.hReplay.Observe(replayDur)
	if j := s.opts.Journal; j.Enabled() {
		j.Emit(obs.Event{Kind: obs.KindReplayStep, Iter: it.Index, DurNS: int64(replayDur),
			Trace: s.opts.TraceID, Parent: cexSpan,
			N: map[string]int64{
				"periods":    int64(len(rec.Outputs)),
				"blocked_at": int64(rec.BlockedAt),
			}, S: map[string]string{"trace": trace.Render()}})
	}

	// Divergence: blocked early, or outputs departing from the
	// counterexample's projection.
	diverged := !rec.Completed()
	for i := range rec.Outputs {
		if !rec.Outputs[i].Equal(proj.Steps[i].Out) {
			diverged = true
			break
		}
	}
	if diverged {
		it.Test = TestDiverged
		return false, nil
	}

	final := cex.States[len(cex.States)-1]
	if kind != ViolationDeadlock && !sys.IsDeadlock(final) {
		// The full counterexample run is real behavior and it does not
		// depend on any refusal hypothesis (its violation window elapsed
		// within the trace): the violation is confirmed.
		it.Test = TestRealizable
		return true, nil
	}

	// The violation rests on the run being inextensible (a composed
	// deadlock — either the δ check itself, or a temporal violation whose
	// witness path stops early). Probe every interaction the context
	// offers at the end of the run: the stop is real iff no offer can
	// form a joint step with the implementation's deterministic reaction.
	return s.probeDeadlock(sys, cex, rec, observed, it, cexSpan)
}

// probeDeadlock checks whether the composed deadlock at the end of the
// counterexample is real. For each distinct input the context would hand
// to the component at its final state, the executor replays the prefix and
// performs one probe step (Section 5's replay makes the repeated
// re-execution deterministic); the reactions are learned.
func (s *Synthesizer) probeDeadlock(sys *automata.Automaton, cex *automata.Run, rec replay.Recording, observed automata.ObservedRun, it *Iteration, cexSpan uint64) (bool, error) {
	probeStart := time.Now()
	defer func() {
		d := time.Since(probeStart)
		it.ProbeDuration += d
		s.stats.ProbeTime += d
		s.tProbe.Observe(d)
		s.hProbe.Observe(d)
	}()
	ctxState, err := s.contextStateAt(sys, cex.States[len(cex.States)-1])
	if err != nil {
		return false, err
	}
	finalState := observed.Initial
	if n := len(observed.Steps); n > 0 {
		finalState = observed.Steps[n-1].To
	}

	jointPossible := false
	probed := make(map[string]replay.ProbeResult)
	for _, offer := range s.context.TransitionsFrom(ctxState) {
		// The component's input under this offer is what the context
		// sends; the offer is only realizable if everything the context
		// sends reaches the component.
		if !offer.Label.Out.SubsetOf(s.iface.Inputs) {
			continue
		}
		in := offer.Label.Out
		result, ok := probed[in.Key()]
		if !ok {
			var err error
			probeOne := time.Now()
			result, err = replay.Probe(s.comp, rec, in)
			probeOneDur := time.Since(probeOne)
			if err != nil {
				return false, fmt.Errorf("core: probe: %w", err)
			}
			probed[in.Key()] = result
			it.Probes = append(it.Probes, result)
			s.stats.ProbesRun++
			s.stats.ResetsUsed++
			if j := s.opts.Journal; j.Enabled() {
				j.Emit(obs.Event{Kind: obs.KindProbeResult, Iter: it.Index, DurNS: int64(probeOneDur),
					Trace: s.opts.TraceID, Parent: cexSpan,
					N: map[string]int64{
						"accepted": b2i(result.Accepted),
					}, S: map[string]string{
						"state":  result.State,
						"input":  result.Input.String(),
						"output": result.Output.String(),
						"after":  result.After,
					}})
			}
			if err := s.learnProbe(observed, result, finalState, it); err != nil {
				return false, err
			}
		}
		// Joint step condition of Definition 3: the context's expected
		// inputs from the component must equal the component's outputs.
		if result.Accepted && offer.Label.In.Intersect(s.iface.Outputs).Equal(result.Output) {
			jointPossible = true
		}
	}

	if jointPossible {
		it.Test = TestDiverged
		return false, nil
	}
	it.Test = TestConfirmedDeadlock
	return true, nil
}

// learnObservation merges a full observed run into the model, including
// function-refusal expansion when enabled.
//
// Note: with the default single-component pipeline the Blocked branch is
// defensive — counterexample plans consist solely of already-learned
// steps (the chaos-weakened property is satisfied at s_∀, and (s,0)
// deadlocks precede s_δ ones in the shortest-counterexample search), so
// recordings never block mid-plan; refusal hypotheses are decided by the
// final-state probes instead. The branch matters for callers feeding
// externally constructed plans.
func (s *Synthesizer) learnObservation(observed automata.ObservedRun, it *Iteration) error {
	// When the component blocked an input entirely, every output
	// hypothesis under that input is refuted.
	if observed.Blocked != nil && !s.opts.PaperLiteralLearning {
		base := *observed.Blocked
		run := observed
		run.Blocked = nil
		delta, err := s.model.Learn(run, s.opts.Labeler)
		if err != nil {
			return fmt.Errorf("core: learn: %w", err)
		}
		s.accumulate(delta, it)
		final := run.Initial
		if n := len(run.Steps); n > 0 {
			final = run.Steps[n-1].To
		}
		return s.blockAllOutputs(final, base.In, it)
	}

	delta, err := s.model.Learn(observed, s.opts.Labeler)
	if err != nil {
		return fmt.Errorf("core: learn: %w", err)
	}
	s.accumulate(delta, it)

	if !s.opts.PaperLiteralLearning {
		// Each observed (state, A, B) refutes every (state, A, B') with
		// B' ≠ B.
		cur := observed.Initial
		for _, step := range observed.Steps {
			if err := s.blockOtherOutputs(cur, step.Label, it); err != nil {
				return err
			}
			cur = step.To
		}
	}
	return nil
}

// learnProbe merges one probe reaction (prefix + one step) into the model.
func (s *Synthesizer) learnProbe(prefix automata.ObservedRun, result replay.ProbeResult, finalState string, it *Iteration) error {
	if result.Accepted {
		run := prefix
		run.Blocked = nil
		run.Steps = append(append([]automata.ObservedStep(nil), prefix.Steps...), automata.ObservedStep{
			Label: automata.Interaction{In: result.Input, Out: result.Output},
			To:    result.After,
		})
		delta, err := s.model.Learn(run, s.opts.Labeler)
		if err != nil {
			return fmt.Errorf("core: learn probe: %w", err)
		}
		s.accumulate(delta, it)
		if !s.opts.PaperLiteralLearning {
			return s.blockOtherOutputs(finalState, automata.Interaction{In: result.Input, Out: result.Output}, it)
		}
		return nil
	}
	if !s.opts.PaperLiteralLearning {
		return s.blockAllOutputs(finalState, result.Input, it)
	}
	// Paper-literal learning: record the single refused hypothesis (the
	// empty-output variant stands for the offered interaction).
	run := prefix
	blocked := automata.Interaction{In: result.Input}
	run.Blocked = &blocked
	delta, err := s.model.Learn(run, s.opts.Labeler)
	if err != nil {
		return fmt.Errorf("core: learn refusal: %w", err)
	}
	s.accumulate(delta, it)
	return nil
}

// blockOtherOutputs records, at the named state, refusals of every
// universe interaction sharing the observed input but differing in output.
func (s *Synthesizer) blockOtherOutputs(state string, observed automata.Interaction, it *Iteration) error {
	id := s.model.Automaton().State(state)
	if id == automata.NoState {
		return fmt.Errorf("core: unknown learned state %q", state)
	}
	for _, x := range s.opts.Universe.Enumerate(s.iface.Inputs, s.iface.Outputs) {
		if !x.In.Equal(observed.In) || x.Out.Equal(observed.Out) {
			continue
		}
		if s.model.IsBlocked(id, x) || len(s.model.Automaton().Successors(id, x)) > 0 {
			continue
		}
		if err := s.model.Block(id, x); err != nil {
			return err
		}
		it.Delta.Blocked++
		it.Delta.NewBlocked = append(it.Delta.NewBlocked, automata.BlockedEntry{State: id, Label: x})
		s.stats.RefusalsLearned++
	}
	return nil
}

// blockAllOutputs records refusals of every universe interaction with the
// given input at the named state (the component refused the input
// entirely).
func (s *Synthesizer) blockAllOutputs(state string, in automata.SignalSet, it *Iteration) error {
	id := s.model.Automaton().State(state)
	if id == automata.NoState {
		return fmt.Errorf("core: unknown learned state %q", state)
	}
	for _, x := range s.opts.Universe.Enumerate(s.iface.Inputs, s.iface.Outputs) {
		if !x.In.Equal(in) {
			continue
		}
		if s.model.IsBlocked(id, x) || len(s.model.Automaton().Successors(id, x)) > 0 {
			continue
		}
		if err := s.model.Block(id, x); err != nil {
			return err
		}
		it.Delta.Blocked++
		it.Delta.NewBlocked = append(it.Delta.NewBlocked, automata.BlockedEntry{State: id, Label: x})
		s.stats.RefusalsLearned++
	}
	return nil
}

// contextStateAt resolves the context automaton's own state matching the
// context leaves of a composed system state.
func (s *Synthesizer) contextStateAt(sys *automata.Automaton, composed automata.StateID) (automata.StateID, error) {
	return ContextStateAt(s.context, sys, composed)
}

// ContextStateAt resolves the context automaton's own state matching the
// context leaves of a composed system state. Exported for the model-based
// soundness oracle (internal/mbt), which independently re-derives the
// context's offers at the end of a violation witness to confirm a reported
// deadlock against the ground-truth component.
func ContextStateAt(context, sys *automata.Automaton, composed automata.StateID) (automata.StateID, error) {
	parts := sys.StateParts(composed)
	n := len(context.Leaves())
	if len(parts) < n {
		return automata.NoState, fmt.Errorf("core: composed state lacks context provenance")
	}
	id := context.StateByParts(parts[:n])
	if id == automata.NoState {
		return automata.NoState, fmt.Errorf("core: no context state with parts %v", parts[:n])
	}
	return id, nil
}

func (s *Synthesizer) accumulate(delta automata.LearnDelta, it *Iteration) {
	it.Delta.Merge(delta)
	s.stats.StatesLearned += delta.States
	s.stats.TransitionsLearned += delta.Transitions
	s.stats.RefusalsLearned += delta.Blocked
}

// runAvoidsChaos reports whether the run never visits a chaotic closure
// state.
func runAvoidsChaos(sys *automata.Automaton, r *automata.Run) bool {
	for _, st := range r.States {
		if automata.IsChaosState(sys, st) {
			return false
		}
	}
	return true
}
