package core

import "testing"

func TestVerdictString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{VerdictProven, "proven"},
		{VerdictViolation, "violation"},
		{Verdict(0), "Verdict(0)"},
		{Verdict(99), "Verdict(99)"},
		{Verdict(-1), "Verdict(-1)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(c.v), got, c.want)
		}
	}
}

func TestViolationKindString(t *testing.T) {
	cases := []struct {
		k    ViolationKind
		want string
	}{
		{ViolationNone, "none"},
		{ViolationConstraint, "constraint violation"},
		{ViolationDeadlock, "deadlock"},
		{ViolationKind(42), "ViolationKind(42)"},
		{ViolationKind(-3), "ViolationKind(-3)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("ViolationKind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestTestOutcomeString(t *testing.T) {
	cases := []struct {
		o    TestOutcome
		want string
	}{
		{TestNotRun, "not-run"},
		{TestDiverged, "diverged"},
		{TestConfirmedDeadlock, "confirmed-deadlock"},
		{TestRealizable, "realizable"},
		{TestOutcome(7), "TestOutcome(7)"},
		{TestOutcome(-1), "TestOutcome(-1)"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("TestOutcome(%d).String() = %q, want %q", int(c.o), got, c.want)
		}
	}
}

func TestB2i(t *testing.T) {
	if got := b2i(true); got != 1 {
		t.Errorf("b2i(true) = %d, want 1", got)
	}
	if got := b2i(false); got != 0 {
		t.Errorf("b2i(false) = %d, want 0", got)
	}
}
