package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"muml/internal/legacy"
	"muml/internal/obs"
	"muml/internal/railcab"
)

// TestJournalGoldenRailCabCorrect pins the event-kind sequence of the
// full RailCab correct-shuttle proof: the journal is part of the tool's
// observable surface, and the order of kinds (not the timings) is
// deterministic for a deterministic component. Regenerate with
// OBS_UPDATE_GOLDEN=1 go test ./internal/core -run Golden.
func TestJournalGoldenRailCabCorrect(t *testing.T) {
	var sink obs.MemorySink
	synth, err := New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: railcab.Constraint(), Journal: obs.NewJournal(&sink)})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictProven {
		t.Fatalf("verdict = %v, want proven", report.Verdict)
	}

	var buf bytes.Buffer
	for i, e := range sink.Events() {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		fmt.Fprintf(&buf, "%d %s\n", e.Iter, e.Kind)
	}

	golden := filepath.Join("testdata", "railcab_correct_events.golden")
	if os.Getenv("OBS_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("event sequence diverged from %s\ngot:\n%swant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestJournalEventsValidate runs every built-in shuttle scenario with a
// JSONL journal and passes the output through the schema validator —
// the same check `make obs-smoke` performs on the CLI.
func TestJournalEventsValidate(t *testing.T) {
	for name, comp := range map[string]func() legacy.Component{
		"correct":  func() legacy.Component { return &railcab.CorrectShuttle{} },
		"eager":    func() legacy.Component { return &railcab.EagerShuttle{} },
		"blocking": func() legacy.Component { return &railcab.BlockingShuttle{} },
	} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			j := obs.NewJournal(obs.NewJSONLSink(&buf))
			synth, err := New(railcab.FrontRole(), comp(),
				railcab.RearInterface(railcab.RearRoleName),
				Options{Property: railcab.Constraint(), Journal: j})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := synth.Run(); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			n, err := obs.ValidateJSONL(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("journal is empty")
			}
		})
	}
}

// TestTestTimeSplit checks that the replay/probe split is populated and
// bounded by the aggregate test time.
func TestTestTimeSplit(t *testing.T) {
	synth, err := New(railcab.FrontRole(), &railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: railcab.Constraint()})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := report.Stats
	if st.ReplayTime <= 0 || st.ProbeTime <= 0 {
		t.Fatalf("split times not populated: replay=%v probe=%v", st.ReplayTime, st.ProbeTime)
	}
	if st.ReplayTime+st.ProbeTime > st.TestTime {
		t.Fatalf("replay+probe (%v) exceeds test time (%v)",
			st.ReplayTime+st.ProbeTime, st.TestTime)
	}
	var itReplay, itProbe int64
	for _, it := range report.Iterations {
		itReplay += it.ReplayDuration.Nanoseconds()
		itProbe += it.ProbeDuration.Nanoseconds()
	}
	if itReplay != st.ReplayTime.Nanoseconds() || itProbe != st.ProbeTime.Nanoseconds() {
		t.Fatal("per-iteration durations do not sum to the aggregate stats")
	}
}

// TestJournalSpanTree checks the causal-trace model of DESIGN.md §10 on
// a run that exercises counterexamples: every event carries the run's
// trace ID, each iteration opens a span that parents its compose/check/
// learn/verdict events, and each counterexample opens a nested span that
// parents its replay and probe events.
func TestJournalSpanTree(t *testing.T) {
	var sink obs.MemorySink
	synth, err := New(railcab.FrontRole(), &railcab.EagerShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: railcab.Constraint(), Journal: obs.NewJournal(&sink),
			TraceID: "span-tree-test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synth.Run(); err != nil {
		t.Fatal(err)
	}

	spanKind := map[uint64]obs.EventKind{} // opener of each span
	var iterSpans, cexSpans int
	for _, e := range sink.Events() {
		if e.Trace != "span-tree-test" {
			t.Fatalf("seq %d (%s): trace %q, want run trace", e.Seq, e.Kind, e.Trace)
		}
		if e.Span != 0 {
			if _, dup := spanKind[e.Span]; dup {
				t.Fatalf("seq %d: span %d reopened", e.Seq, e.Span)
			}
			spanKind[e.Span] = e.Kind
		}
		switch e.Kind {
		case obs.KindIterationStart:
			iterSpans++
			if e.Span == 0 || e.Parent != 0 {
				t.Fatalf("iteration_start seq %d: span=%d parent=%d, want root span", e.Seq, e.Span, e.Parent)
			}
		case obs.KindCexClassified:
			cexSpans++
			if e.Span == 0 || spanKind[e.Parent] != obs.KindIterationStart {
				t.Fatalf("cex_classified seq %d: span=%d, parent %d opened by %q, want iteration_start",
					e.Seq, e.Span, e.Parent, spanKind[e.Parent])
			}
		case obs.KindClosurePatched, obs.KindProductRebuilt, obs.KindCheckResult,
			obs.KindLearnDelta, obs.KindVerdict:
			if spanKind[e.Parent] != obs.KindIterationStart {
				t.Fatalf("%s seq %d: parent %d opened by %q, want iteration_start",
					e.Kind, e.Seq, e.Parent, spanKind[e.Parent])
			}
		case obs.KindReplayStep, obs.KindProbeResult:
			if spanKind[e.Parent] != obs.KindCexClassified {
				t.Fatalf("%s seq %d: parent %d opened by %q, want cex_classified",
					e.Kind, e.Seq, e.Parent, spanKind[e.Parent])
			}
		}
	}
	if iterSpans == 0 || cexSpans == 0 {
		t.Fatalf("run did not exercise the tree: %d iteration spans, %d cex spans", iterSpans, cexSpans)
	}
}

// TestJournalPhaseTotalsMatchStats is the journalstat acceptance check:
// aggregating the journal's per-phase durations must reproduce the
// compose/check/replay totals the report's Stats carry, and the
// per-probe durations must stay within the aggregate probe time (which
// also covers probe bookkeeping outside the individual probe calls).
func TestJournalPhaseTotalsMatchStats(t *testing.T) {
	var sink obs.MemorySink
	synth, err := New(railcab.FrontRole(), &railcab.BlockingShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		Options{Property: railcab.Constraint(), Journal: obs.NewJournal(&sink)})
	if err != nil {
		t.Fatal(err)
	}
	report, err := synth.Run()
	if err != nil {
		t.Fatal(err)
	}

	stats := obs.Analyze(sink.Events(), 0)
	for phase, want := range map[string]int64{
		"compose": report.Stats.ComposeTime.Nanoseconds(),
		"check":   report.Stats.CheckTime.Nanoseconds(),
		"replay":  report.Stats.ReplayTime.Nanoseconds(),
	} {
		if got := stats.Phases[phase].TotalNS; got != want {
			t.Errorf("%s: journal total %d ns, stats %d ns", phase, got, want)
		}
	}
	probe := stats.Phases["probe"]
	if probe.Count == 0 {
		t.Fatal("blocking shuttle run emitted no probe_result events")
	}
	if probe.TotalNS > report.Stats.ProbeTime.Nanoseconds() {
		t.Errorf("probe: journal total %d ns exceeds stats %d ns",
			probe.TotalNS, report.Stats.ProbeTime.Nanoseconds())
	}
}
