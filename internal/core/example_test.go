package core_test

import (
	"fmt"

	"muml/internal/core"
	"muml/internal/railcab"
)

// Example runs the paper's synthesis loop on the faulty eager shuttle: the
// pattern constraint is violated inside learned behavior, so the conflict
// is real and found without a confirming test (Fig. 6 / Listing 1.4).
func Example() {
	synth, err := core.New(
		railcab.FrontRole(),
		&railcab.EagerShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		core.Options{Property: railcab.Constraint()},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	report, err := synth.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("verdict: %v (%v) after %d iterations\n",
		report.Verdict, report.Kind, report.Stats.Iterations)
	fmt.Printf("final iteration tested the implementation: %v\n",
		report.Iterations[len(report.Iterations)-1].Test != core.TestNotRun)
	// Output:
	// verdict: violation (constraint violation) after 2 iterations
	// final iteration tested the implementation: false
}

// Example_proven runs the loop on the correct shuttle to a proof of
// correct integration (Fig. 7).
func Example_proven() {
	synth, err := core.New(
		railcab.FrontRole(),
		&railcab.CorrectShuttle{},
		railcab.RearInterface(railcab.RearRoleName),
		core.Options{Property: railcab.Constraint()},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	report, err := synth.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("verdict: %v\n", report.Verdict)
	fmt.Printf("learned states: %d\n", report.Model.Automaton().NumStates())
	// Output:
	// verdict: proven
	// learned states: 4
}
