package automata

import "testing"

// FuzzDecodeJSON ensures the JSON decoder never panics on malformed input
// and that everything it accepts re-encodes and decodes to an equivalent
// automaton.
func FuzzDecodeJSON(f *testing.F) {
	seeds := []string{
		`{"name":"m","inputs":["x"],"outputs":["y"],"states":[{"name":"s"}],"transitions":[{"from":"s","in":["x"],"out":["y"],"to":"s"}],"initial":["s"]}`,
		`{"name":"m","states":[{"name":"s","labels":["p"]}],"initial":["s"]}`,
		`{}`, `[]`, `null`, `{"name":1}`, `{"name":"m","initial":["ghost"]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeJSON(data)
		if err != nil {
			return
		}
		out, err := EncodeJSON(a)
		if err != nil {
			t.Fatalf("accepted automaton fails to encode: %v", err)
		}
		back, err := DecodeJSON(out)
		if err != nil {
			t.Fatalf("own encoding rejected: %v\n%s", err, out)
		}
		if back.NumStates() != a.NumStates() || back.NumTransitions() != a.NumTransitions() {
			t.Fatal("round trip changed structure")
		}
		ok, _, err := Refines(a, back)
		if err == nil && !ok {
			t.Fatal("round trip changed behavior")
		}
	})
}
