package automata

import (
	"math/rand"
	"testing"
)

func TestLearnRegularRun(t *testing.T) {
	m := NewIncomplete(New("model", NewSignalSet("req"), NewSignalSet("ack")))
	req := Interact([]Signal{"req"}, []Signal{"ack"})

	delta, err := m.Learn(ObservedRun{
		Initial: "idle",
		Steps: []ObservedStep{
			{Label: req, To: "serving"},
			{Label: Interaction{}, To: "idle"},
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if delta.States != 2 || delta.Transitions != 2 || delta.Blocked != 0 {
		t.Fatalf("delta = %+v", delta)
	}
	a := m.Automaton()
	if a.State("idle") == NoState || a.State("serving") == NoState {
		t.Fatal("states not learned")
	}
	if len(a.Initial()) != 1 || a.Initial()[0] != a.State("idle") {
		t.Fatal("initial state not learned")
	}

	// Learning the same run again adds nothing.
	delta, err = m.Learn(ObservedRun{
		Initial: "idle",
		Steps:   []ObservedStep{{Label: req, To: "serving"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("re-learning added %+v", delta)
	}
}

func TestLearnBlockedRun(t *testing.T) {
	m := NewIncomplete(New("model", NewSignalSet("req"), EmptySet))
	req := Interact([]Signal{"req"}, nil)
	blocked := req
	delta, err := m.Learn(ObservedRun{Initial: "idle", Blocked: &blocked}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Blocked != 1 || delta.States != 1 {
		t.Fatalf("delta = %+v", delta)
	}
	if !m.IsBlocked(m.Automaton().State("idle"), req) {
		t.Fatal("blocked entry not learned")
	}
	// Blocking again is idempotent.
	delta, err = m.Learn(ObservedRun{Initial: "idle", Blocked: &blocked}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("re-learning blocked entry added %+v", delta)
	}
}

func TestLearnConflictWithBlockedEntry(t *testing.T) {
	m := NewIncomplete(New("model", NewSignalSet("req"), EmptySet))
	req := Interact([]Signal{"req"}, nil)
	blocked := req
	if _, err := m.Learn(ObservedRun{Initial: "idle", Blocked: &blocked}, nil); err != nil {
		t.Fatal(err)
	}
	// Observing the same interaction succeed contradicts the recorded
	// refusal — the implementation would be nondeterministic.
	_, err := m.Learn(ObservedRun{
		Initial: "idle",
		Steps:   []ObservedStep{{Label: req, To: "other"}},
	}, nil)
	if err == nil {
		t.Fatal("contradictory observation accepted")
	}
}

func TestLearnConflictingSuccessor(t *testing.T) {
	m := NewIncomplete(New("model", NewSignalSet("req"), EmptySet))
	req := Interact([]Signal{"req"}, nil)
	if _, err := m.Learn(ObservedRun{
		Initial: "idle",
		Steps:   []ObservedStep{{Label: req, To: "a"}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Deterministic implementations cannot reach a different state on the
	// same interaction.
	_, err := m.Learn(ObservedRun{
		Initial: "idle",
		Steps:   []ObservedStep{{Label: req, To: "b"}},
	}, nil)
	if err == nil {
		t.Fatal("conflicting successor accepted")
	}
}

func TestLearnAppliesLabeler(t *testing.T) {
	m := NewIncomplete(New("model", EmptySet, EmptySet))
	labeler := func(state string) []Proposition {
		return []Proposition{Proposition("model." + state)}
	}
	if _, err := m.Learn(ObservedRun{Initial: "s"}, labeler); err != nil {
		t.Fatal(err)
	}
	if !m.Automaton().HasLabel(m.Automaton().State("s"), "model.s") {
		t.Fatal("labeler not applied")
	}
}

func TestObservedRunStates(t *testing.T) {
	r := ObservedRun{
		Initial: "a",
		Steps:   []ObservedStep{{To: "b"}, {To: "c"}},
	}
	got := r.States()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("States() = %v", got)
	}
}

func TestObservationConformingDetectsViolations(t *testing.T) {
	impl := New("impl", NewSignalSet("x"), EmptySet)
	s0 := impl.MustAddState("s0")
	s1 := impl.MustAddState("s1")
	x := Interact([]Signal{"x"}, nil)
	impl.MustAddTransition(s0, x, s1)
	impl.MarkInitial(s0)

	// Conforming model.
	m := NewIncomplete(New("model", impl.Inputs(), impl.Outputs()))
	if _, err := m.Learn(ObservedRun{Initial: "s0", Steps: []ObservedStep{{Label: x, To: "s1"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.ObservationConforming(impl); err != nil {
		t.Fatalf("conforming model rejected: %v", err)
	}

	// Unknown state name.
	bad := NewIncomplete(New("model", impl.Inputs(), impl.Outputs()))
	if _, err := bad.Learn(ObservedRun{Initial: "ghost"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := bad.ObservationConforming(impl); err == nil {
		t.Fatal("model with unknown state accepted")
	}

	// Transition the implementation lacks.
	bad2 := NewIncomplete(New("model", impl.Inputs(), impl.Outputs()))
	if _, err := bad2.Learn(ObservedRun{Initial: "s0", Steps: []ObservedStep{{Label: x, To: "s0"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := bad2.ObservationConforming(impl); err == nil {
		t.Fatal("model with phantom transition accepted")
	}

	// Refusal the implementation does not have.
	bad3 := NewIncomplete(New("model", impl.Inputs(), impl.Outputs()))
	blocked := x
	if _, err := bad3.Learn(ObservedRun{Initial: "s0", Blocked: &blocked}, nil); err != nil {
		t.Fatal(err)
	}
	if err := bad3.ObservationConforming(impl); err == nil {
		t.Fatal("model with phantom refusal accepted")
	}

	// Wrong initial state.
	bad4 := NewIncomplete(New("model", impl.Inputs(), impl.Outputs()))
	if _, err := bad4.Learn(ObservedRun{Initial: "s1"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := bad4.ObservationConforming(impl); err == nil {
		t.Fatal("model with non-initial start accepted")
	}
}

// TestLemma7 checks Lemma 7 on random instances: learning any real
// observation of the implementation keeps the chaotic closure a safe
// abstraction (M_r ⊑ chaos(learn(M, π))) — the inductive step of the
// iterative synthesis correctness argument.
func TestLemma7LearnPreservesSafeAbstraction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	u := Universe(UniverseSingleton)
	for i := 0; i < 60; i++ {
		impl := randomDeterministicAutomaton(rng, "impl", 4, 2)
		m := NewIncomplete(New("model", impl.Inputs(), impl.Outputs()))
		for step := 0; step < 5; step++ {
			run := randomWalkObservation(rng, impl, 3)
			if _, err := m.Learn(run, nil); err != nil {
				t.Fatalf("iteration %d: learn: %v", i, err)
			}
			closure := ChaoticClosure(m, u)
			ok, cex, err := Refines(impl, closure)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("iteration %d step %d: Lemma 7 violated; cex=%v", i, step, cex)
			}
		}
	}
}
