package automata

import "fmt"

// This file implements input-output conformance (ioco, Tretmans) with
// explicit quiescence over the synchronous interaction model, following
// the compositional ioco treatment of Daca & Henzinger. It is the
// conformance relation the nondeterministic synthesis path rests on
// (DESIGN.md §13): unlike the refinement preorder of Definition 4, ioco
// constrains only the *outputs* an implementation may produce after a
// suspension trace of the specification — input refusals and behavior on
// inputs the specification never accepts are unconstrained.
//
// Quiescence δ is encoded inside the interaction alphabet rather than as
// an extra symbol: a period in which the component consumes nothing and
// produces nothing is the interaction ∅/∅. A state is *quiescent* when it
// has no transition consuming the empty input — it can neither emit
// spontaneously nor advance silently, so an idle period observes δ and
// leaves it unchanged. SaturateQuiescence materializes that observation as
// an ∅/∅ self-loop, making suspension traces ordinary traces.

// DeltaInteraction is the quiescence observation δ: a period with no
// input consumed and no output produced.
var DeltaInteraction = Interaction{In: EmptySet, Out: EmptySet}

// Quiescent reports whether the state is quiescent: it has no transition
// consuming the empty input, so in an idle period it produces nothing and
// stays where it is. States with a spontaneous output (∅/B, B ≠ ∅) or a
// silent step (∅/∅ to anywhere) are not quiescent — their idle-period
// behavior is already explicit.
func (a *Automaton) Quiescent(s StateID) bool {
	for _, t := range a.TransitionsFrom(s) {
		if t.Label.In.IsEmpty() {
			return false
		}
	}
	return true
}

// SaturateQuiescence returns a copy of the automaton in which every
// quiescent state carries an explicit δ self-loop (∅/∅), plus the number
// of loops added. Saturation makes quiescence observable and repeatable —
// δ·δ·… extends any suspension trace — and is idempotent: saturating a
// saturated automaton adds nothing (a law checked by internal/mbt).
func SaturateQuiescence(a *Automaton, name string) (*Automaton, int) {
	b := a.Clone(name)
	added := 0
	for i := 0; i < b.NumStates(); i++ {
		s := StateID(i)
		if b.Quiescent(s) {
			b.MustAddTransition(s, DeltaInteraction, s)
			added++
		}
	}
	return b, added
}

// IocoRefines decides impl ioco spec over the δ-saturated automata:
// for every suspension trace σ of spec and every input A the spec accepts
// after σ, the outputs impl can produce under A after σ must be outputs
// spec allows —
//
//	out_A(impl after σ) ⊆ out_A(spec after σ)  whenever out_A(spec after σ) ≠ ∅.
//
// Quiescence participates as the δ interaction ∅/∅, so a quiescent
// implementation state conforms only where the specification can also be
// quiescent (or step silently). Asymmetries inherited from ioco: impl may
// *refuse* inputs the spec accepts, and behaves arbitrarily on inputs the
// spec refuses after σ — only produced outputs on spec-accepted inputs are
// constrained. State labels play no role (contrast Refines).
//
// The check mirrors Refines: a subset construction over the specification
// tracks, for every implementation state reachable by a suspension trace,
// the set of specification states reachable by the same trace. On failure
// the offending suspension trace (ending in the escaping interaction) is
// returned.
func IocoRefines(impl, spec *Automaton) (bool, []Interaction, error) {
	if impl.NumStates() == 0 || spec.NumStates() == 0 {
		return false, nil, fmt.Errorf("automata: ioco over empty automaton")
	}
	si, _ := SaturateQuiescence(impl, impl.name)
	ss, _ := SaturateQuiescence(spec, spec.name)

	type node struct {
		s StateID
		u string // canonical key of spec-state subset
	}
	type item struct {
		s      StateID
		states []StateID
		trace  []Interaction
	}
	visited := make(map[node]struct{})
	queue := make([]item, 0, len(si.Initial()))
	specInit := normalizeStates(ss.Initial())
	for _, q := range si.Initial() {
		queue = append(queue, item{s: q, states: specInit})
	}

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		key := node{cur.s, stateSetKey(cur.states)}
		if _, ok := visited[key]; ok {
			continue
		}
		visited[key] = struct{}{}

		// Per input accepted by the spec set: the allowed out-set.
		allowed := make(map[string]map[string]struct{})
		for _, sp := range cur.states {
			for _, t := range ss.TransitionsFrom(sp) {
				ik := t.Label.In.Key()
				set, ok := allowed[ik]
				if !ok {
					set = make(map[string]struct{})
					allowed[ik] = set
				}
				set[t.Label.Out.Key()] = struct{}{}
			}
		}

		for _, t := range si.TransitionsFrom(cur.s) {
			outs, inAccepted := allowed[t.Label.In.Key()]
			if !inAccepted {
				// The spec never accepts this input after the trace: the
				// suspension trace leaves Straces(spec) and ioco imposes
				// nothing on the branch.
				continue
			}
			trace := append(append([]Interaction(nil), cur.trace...), t.Label)
			if _, ok := outs[t.Label.Out.Key()]; !ok {
				return false, trace, nil // out-set escape
			}
			var next []StateID
			for _, sp := range cur.states {
				next = append(next, ss.Successors(sp, t.Label)...)
			}
			queue = append(queue, item{s: t.To, states: normalizeStates(next), trace: trace})
		}
	}
	return true, nil, nil
}

// OutSet returns the outputs the automaton can produce under the given
// input at any of the states — out_A over a subset-construction cell. The
// result is keyed by SignalSet.Key with the concrete sets as values.
func OutSet(a *Automaton, states []StateID, in SignalSet) map[string]SignalSet {
	outs := make(map[string]SignalSet)
	for _, s := range states {
		for _, t := range a.TransitionsFrom(s) {
			if t.Label.In.Equal(in) {
				outs[t.Label.Out.Key()] = t.Label.Out
			}
		}
	}
	return outs
}

// AllowsObservation reports whether observing the interaction at the named
// state is consistent with the learned fragment: true unless the fragment
// explicitly blocks the interaction there. Unknown states and unknown
// interactions are allowed — they are merge candidates, not escapes. The
// replay layer uses this to classify divergences in nondeterministic mode.
func (m *Incomplete) AllowsObservation(state string, x Interaction) bool {
	id := m.auto.State(state)
	if id == NoState {
		return true
	}
	return !m.IsBlocked(id, x)
}
