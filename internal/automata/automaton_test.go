package automata

import (
	"strings"
	"testing"
)

// pingPong builds a tiny two-state automaton used across the tests:
// idle --ping?/pong!--> busy --/done!--> idle.
func pingPong(t *testing.T) *Automaton {
	t.Helper()
	a := New("pp", NewSignalSet("ping"), NewSignalSet("pong", "done"))
	idle := a.MustAddState("idle", "pp.idle")
	busy := a.MustAddState("busy", "pp.busy")
	a.MustAddTransition(idle, Interact([]Signal{"ping"}, []Signal{"pong"}), busy)
	a.MustAddTransition(busy, Interact(nil, []Signal{"done"}), idle)
	a.MarkInitial(idle)
	return a
}

func TestAutomatonBasics(t *testing.T) {
	a := pingPong(t)
	if got, want := a.NumStates(), 2; got != want {
		t.Fatalf("NumStates = %d, want %d", got, want)
	}
	if got, want := a.NumTransitions(), 2; got != want {
		t.Fatalf("NumTransitions = %d, want %d", got, want)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.State("idle") == NoState || a.State("nope") != NoState {
		t.Fatal("State lookup broken")
	}
	if !a.Deterministic() {
		t.Fatal("pingPong should be deterministic")
	}
	if got := a.StateName(a.State("busy")); got != "busy" {
		t.Fatalf("StateName = %q", got)
	}
}

func TestAddStateDuplicate(t *testing.T) {
	a := New("a", EmptySet, EmptySet)
	if _, err := a.AddState("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddState("s"); err == nil {
		t.Fatal("expected error for duplicate state")
	}
}

func TestAddTransitionValidation(t *testing.T) {
	a := New("a", NewSignalSet("in"), NewSignalSet("out"))
	s := a.MustAddState("s")
	if err := a.AddTransition(s, Interact([]Signal{"bogus"}, nil), s); err == nil {
		t.Fatal("expected error for input outside alphabet")
	}
	if err := a.AddTransition(s, Interact(nil, []Signal{"bogus"}), s); err == nil {
		t.Fatal("expected error for output outside alphabet")
	}
	if err := a.AddTransition(s, Interact([]Signal{"in"}, nil), s); err != nil {
		t.Fatal(err)
	}
	if err := a.AddTransition(s, Interact([]Signal{"in"}, nil), s); err == nil {
		t.Fatal("expected error for duplicate transition")
	}
	if err := a.AddTransition(StateID(99), Interaction{}, s); err == nil {
		t.Fatal("expected error for out-of-range state")
	}
}

func TestValidateRejectsOverlappingAlphabets(t *testing.T) {
	a := New("a", NewSignalSet("x"), NewSignalSet("x"))
	s := a.MustAddState("s")
	a.MarkInitial(s)
	if err := a.Validate(); err == nil {
		t.Fatal("expected error for I ∩ O ≠ ∅")
	}
}

func TestValidateRequiresInitial(t *testing.T) {
	a := New("a", EmptySet, EmptySet)
	a.MustAddState("s")
	if err := a.Validate(); err == nil {
		t.Fatal("expected error for missing initial state")
	}
}

func TestLabels(t *testing.T) {
	a := New("a", EmptySet, EmptySet)
	s := a.MustAddState("s", "q", "p")
	if got := a.Labels(s); len(got) != 2 || got[0] != "p" || got[1] != "q" {
		t.Fatalf("Labels not sorted/deduped: %v", got)
	}
	if !a.HasLabel(s, "p") || a.HasLabel(s, "r") {
		t.Fatal("HasLabel broken")
	}
	a.AddLabel(s, "r")
	a.AddLabel(s, "r") // idempotent
	if got := a.Labels(s); len(got) != 3 || got[2] != "r" {
		t.Fatalf("AddLabel broken: %v", got)
	}
}

func TestLabelStatesByName(t *testing.T) {
	a := pingPong(t)
	a.LabelStatesByName()
	if !a.HasLabel(a.State("idle"), "pp.idle") {
		t.Fatal("LabelStatesByName did not add pp.idle")
	}
}

func TestAllPropositions(t *testing.T) {
	a := pingPong(t)
	props := a.AllPropositions()
	if len(props) != 2 || props[0] != "pp.busy" || props[1] != "pp.idle" {
		t.Fatalf("AllPropositions = %v", props)
	}
}

func TestEnabledInteractionsAndDeterminism(t *testing.T) {
	a := New("a", NewSignalSet("x"), EmptySet)
	s := a.MustAddState("s")
	u := a.MustAddState("u")
	v := a.MustAddState("v")
	a.MarkInitial(s)
	x := Interact([]Signal{"x"}, nil)
	a.MustAddTransition(s, x, u)
	if !a.Deterministic() {
		t.Fatal("single transition should be deterministic")
	}
	a.MustAddTransition(s, x, v)
	if a.Deterministic() {
		t.Fatal("two successors on one label should be nondeterministic")
	}
	if got := len(a.EnabledInteractions(s)); got != 1 {
		t.Fatalf("EnabledInteractions = %d labels, want 1", got)
	}
}

func TestReachableAndDeadlock(t *testing.T) {
	a := New("a", NewSignalSet("x"), EmptySet)
	s := a.MustAddState("s")
	dead := a.MustAddState("dead")
	unreachableDead := a.MustAddState("island")
	a.MarkInitial(s)
	x := Interact([]Signal{"x"}, nil)
	a.MustAddTransition(s, x, dead)

	reached := a.Reachable()
	if !reached[s] || !reached[dead] || reached[unreachableDead] {
		t.Fatalf("Reachable = %v", reached)
	}
	id, ok := a.DeadlockReachable()
	if !ok || id != dead {
		t.Fatalf("DeadlockReachable = (%d, %v), want (%d, true)", id, ok, dead)
	}

	// Make the deadlock state live; only the island remains a deadlock,
	// but it is unreachable.
	a.MustAddTransition(dead, x, s)
	if _, ok := a.DeadlockReachable(); ok {
		t.Fatal("no reachable deadlock expected")
	}
}

func TestRename(t *testing.T) {
	a := pingPong(t)
	b, err := a.Rename("pp2", map[Signal]Signal{"ping": "ping2"})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Inputs().Contains("ping2") || b.Inputs().Contains("ping") {
		t.Fatalf("renamed inputs = %v", b.Inputs())
	}
	if b.NumTransitions() != a.NumTransitions() || b.NumStates() != a.NumStates() {
		t.Fatal("rename changed structure")
	}
	// Original untouched.
	if !a.Inputs().Contains("ping") {
		t.Fatal("rename mutated the original")
	}
}

func TestRenameRejectsMerging(t *testing.T) {
	a := New("a", NewSignalSet("x", "y"), EmptySet)
	s := a.MustAddState("s")
	a.MarkInitial(s)
	if _, err := a.Rename("b", map[Signal]Signal{"x": "y"}); err == nil {
		t.Fatal("expected error when renaming merges signals")
	}
}

func TestClone(t *testing.T) {
	a := pingPong(t)
	b := a.Clone("copy")
	if b.Name() != "copy" {
		t.Fatalf("clone name = %q", b.Name())
	}
	b.MustAddState("extra")
	if a.State("extra") != NoState {
		t.Fatal("clone shares state storage with original")
	}
}

func TestDotOutput(t *testing.T) {
	dot := pingPong(t).Dot()
	for _, want := range []string{"digraph", "doublecircle", "idle", "busy"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestRunValidation(t *testing.T) {
	a := pingPong(t)
	idle, busy := a.State("idle"), a.State("busy")
	ping := Interact([]Signal{"ping"}, []Signal{"pong"})
	done := Interact(nil, []Signal{"done"})

	good := Run{States: []StateID{idle, busy, idle}, Steps: []Interaction{ping, done}}
	if err := good.IsRunOf(a); err != nil {
		t.Fatalf("valid run rejected: %v", err)
	}

	badStart := Run{States: []StateID{busy, idle}, Steps: []Interaction{done}}
	if err := badStart.IsRunOf(a); err == nil {
		t.Fatal("run starting outside Q accepted")
	}

	badStep := Run{States: []StateID{idle, idle}, Steps: []Interaction{ping}}
	if err := badStep.IsRunOf(a); err == nil {
		t.Fatal("run with nonexistent transition accepted")
	}

	// Deadlock run: from idle, interaction "done" has no successor.
	dead := Run{States: []StateID{idle}, Steps: []Interaction{done}, Deadlock: true}
	if err := dead.IsRunOf(a); err != nil {
		t.Fatalf("valid deadlock run rejected: %v", err)
	}

	// Claimed deadlock where a successor exists.
	notDead := Run{States: []StateID{idle}, Steps: []Interaction{ping}, Deadlock: true}
	if err := notDead.IsRunOf(a); err == nil {
		t.Fatal("false deadlock run accepted")
	}

	malformed := Run{States: []StateID{idle}, Steps: []Interaction{ping, done}}
	if err := malformed.Validate(); err == nil {
		t.Fatal("malformed run accepted")
	}
	empty := Run{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty run accepted")
	}
}

func TestRunProjections(t *testing.T) {
	a := pingPong(t)
	idle, busy := a.State("idle"), a.State("busy")
	ping := Interact([]Signal{"ping"}, []Signal{"pong"})
	r := Run{States: []StateID{idle, busy}, Steps: []Interaction{ping}}
	if got := r.Trace(); len(got) != 1 || !got[0].Equal(ping) {
		t.Fatalf("Trace = %v", got)
	}
	if got := r.StateSequence(); len(got) != 2 || got[0] != idle {
		t.Fatalf("StateSequence = %v", got)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d", got)
	}
}
