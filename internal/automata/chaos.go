package automata

import "context"

// This file implements the chaotic automaton (Definition 8) and the chaotic
// closure (Definition 9).
//
// The chaotic automaton M_c over alphabets (I, O) has two states: s_∀,
// which supports every interaction (looping or dropping to s_δ), and s_δ,
// which blocks every interaction. It is the ⊑-maximal behaviour: every
// automaton over (I, O) refines it.
//
// The chaotic closure chaos(M) of an incomplete automaton M doubles every
// state s into (s,0) and (s,1) and embeds the chaotic automaton:
//
//   - (s,0) carries only the learned transitions (to both copies of the
//     target) — it represents the hypothesis that no unlearned behaviour
//     exists, so unlearned interactions deadlock there;
//   - (s,1) additionally moves to s_∀ and s_δ on every interaction not
//     excluded by T̄ — it represents the hypothesis that arbitrary further
//     behaviour exists.
//
// Both copies of each initial state are initial. By Theorem 1, if M is
// observation conforming to a deterministic implementation M_r, then
// M_r ⊑ chaos(M).

// Conventional state names used by the chaotic construction, matching the
// paper's figures ("s_all" and "s_delta", Footnote 5).
const (
	ChaosAllState   = "s_all"
	ChaosDeltaState = "s_delta"
)

// ChaoticAutomaton builds M_c of Definition 8 over the given alphabets,
// with the interaction labels drawn from the given universe. Both s_∀ and
// s_δ are initial and carry the chaos proposition χ.
func ChaoticAutomaton(name string, inputs, outputs SignalSet, universe InteractionUniverse) *Automaton {
	a := New(name, inputs, outputs)
	sAll := a.MustAddState(ChaosAllState, ChaosProposition)
	sDelta := a.MustAddState(ChaosDeltaState, ChaosProposition)
	for _, x := range universe.Enumerate(inputs, outputs) {
		a.MustAddTransition(sAll, x, sAll)
		a.MustAddTransition(sAll, x, sDelta)
	}
	a.MarkInitial(sAll)
	a.MarkInitial(sDelta)
	return a
}

// ChaosSuffix distinguishes the two copies of each state in a chaotic
// closure: "(s,0)" becomes s+ChaosClosedSuffix, "(s,1)" becomes
// s+ChaosOpenSuffix.
const (
	ChaosClosedSuffix = "·0" // (s,0): no further extension assumed
	ChaosOpenSuffix   = "·1" // (s,1): arbitrary further extension assumed
)

// ChaoticClosure builds chaos(M) of Definition 9 for the incomplete
// automaton m, using the given interaction universe for the "all possible
// interactions" quantification. The result is an ordinary automaton that is
// a safe ⊑-abstraction of every deterministic implementation to which m is
// observation conforming (Theorem 1).
//
// State copies (s,0) and (s,1) keep the labels of s; the embedded chaos
// states s_all and s_delta are labeled with the chaos proposition χ only
// (see ChaosProposition for how formulas are weakened accordingly).
func ChaoticClosure(m *Incomplete, universe InteractionUniverse) *Automaton {
	c, err := ChaoticClosureCtx(context.Background(), m, universe, nil)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return c
}

// ChaoticClosureCtx is ChaoticClosure under a context and an optional
// memoization cache. Construction polls the context between states and
// aborts with its error once it is done. When a cache is given, the model
// and the universe's enumeration over its alphabets are fingerprinted and
// an identical prior closure is answered with a private clone of the
// cached result. Both features are zero-cost when disabled (background
// context, nil cache).
func ChaoticClosureCtx(ctx context.Context, m *Incomplete, universe InteractionUniverse, memo *MemoCache) (*Automaton, error) {
	var fpM, fpU uint64
	if memo != nil {
		fpM = m.Fingerprint()
		fpU = UniverseFingerprint(universe, m.auto.inputs, m.auto.outputs)
		if hit, ok := memo.lookup(memoClosure, fpM, fpU, m.auto.name); ok {
			return hit, nil
		}
	}
	c, err := chaoticClosure(m, universe, newCtxPoll(ctx), false)
	if err != nil {
		return nil, err
	}
	memo.store(memoClosure, fpM, fpU, c)
	return c, nil
}

// ChaoticClosureNondetCtx builds the closure variant that stays a safe
// abstraction of a *nondeterministic* implementation. The deterministic
// construction suppresses chaos escapes on learned labels, which rests on
// the assumption that one learned transition is the whole behaviour of its
// label; with duplicate successors under an identical label that assumption
// fails — learning one successor of (s, A, B) would hide its unlearned
// siblings and the closure would under-approximate. Here a learned label
// keeps its chaos escapes from the open copy until the loop certifies its
// successor set complete via Incomplete.SettleLabel (the fair-visit budget
// of the nondeterministic test path). Blocked labels suppress escapes as
// before. Results are not memoized: nondet models are rebuilt from scratch
// every iteration anyway.
func ChaoticClosureNondetCtx(ctx context.Context, m *Incomplete, universe InteractionUniverse) (*Automaton, error) {
	return chaoticClosure(m, universe, newCtxPoll(ctx), true)
}

// chaoticClosure is the construction shared by ChaoticClosure,
// ChaoticClosureCtx and ChaoticClosureNondetCtx; a stopped poller aborts it
// with the context's error. With nondet set, a learned label counts as
// known (escape-suppressing) only once it is settled.
func chaoticClosure(m *Incomplete, universe InteractionUniverse, p *ctxPoll, nondet bool) (*Automaton, error) {
	obsClosureBuilds.Add(1)
	src := m.auto
	labels := universe.Enumerate(src.inputs, src.outputs)
	c := New(src.name, src.inputs, src.outputs)

	closed := make([]StateID, src.NumStates())
	open := make([]StateID, src.NumStates())
	for id, st := range src.states {
		closed[id] = c.MustAddState(st.name+ChaosClosedSuffix, st.labels...)
		c.states[closed[id]].parts = []string{st.name}
		open[id] = c.MustAddState(st.name+ChaosOpenSuffix, st.labels...)
		c.states[open[id]].parts = []string{st.name}
	}
	sAll := c.MustAddState(ChaosAllState, ChaosProposition)
	sDelta := c.MustAddState(ChaosDeltaState, ChaosProposition)

	// The construction below never emits a duplicate (from, label, to) —
	// src has no duplicate transitions and the universe enumerates each
	// interaction once — and every label is within the alphabets, so
	// transitions are appended directly, skipping AddTransition's
	// validation and linear duplicate scan (quadratic on the high-degree
	// chaos states).

	// Learned transitions go from both copies to both copies.
	for from, ts := range src.adj {
		if p.stop() {
			return nil, p.err
		}
		for _, t := range ts {
			appendTransitions(c, closed[from],
				Transition{Label: t.Label, To: closed[t.To]},
				Transition{Label: t.Label, To: open[t.To]})
			appendTransitions(c, open[from],
				Transition{Label: t.Label, To: closed[t.To]},
				Transition{Label: t.Label, To: open[t.To]})
		}
	}

	// Every *unknown* interaction (neither learned in T nor excluded by
	// T̄) leads from the open copy into chaos.
	//
	// Note on fidelity: the literal text of Definition 9 quantifies only
	// over (s,A,B) ∉ T̄, which would add chaos transitions even for
	// learned interactions. Under that reading s_δ stays reachable no
	// matter how much is learned, the check φ ∧ ¬δ of Section 4.1 could
	// never succeed, and the successful termination of the paper's own
	// example (Fig. 7, "we have indeed proven ...") would be impossible.
	// For a deterministic implementation the learned transition is the
	// only behaviour on a learned label (observation conformance +
	// determinism), so restricting chaos to unknown interactions keeps
	// Theorem 1 intact while making the fixpoint reachable. We therefore
	// implement the evident intent.
	//
	// Known (learned or blocked) labels are collected per state into an
	// interned key set, so the per-label membership test is a single map
	// hit instead of a Successors scan plus a string-key allocation.
	emitChaos := func(s StateID, unknown func(i int) bool) {
		for i, x := range labels {
			if !unknown(i) {
				continue
			}
			appendTransitions(c, open[s],
				Transition{Label: x, To: sAll},
				Transition{Label: x, To: sDelta})
		}
	}
	if in, ok := NewInterner(src.inputs, src.outputs); ok {
		keys := make([]InternKey, len(labels))
		for i, x := range labels {
			keys[i], _ = in.Key(x)
		}
		known := make(map[InternKey]struct{})
		for id := range src.states {
			if p.stop() {
				return nil, p.err
			}
			s := StateID(id)
			clear(known)
			for _, t := range src.adj[s] {
				if nondet && !m.IsSettled(s, t.Label) {
					continue
				}
				k, _ := in.Key(t.Label)
				known[k] = struct{}{}
			}
			for _, x := range m.blocked[s] {
				k, _ := in.Key(x)
				known[k] = struct{}{}
			}
			emitChaos(s, func(i int) bool {
				_, ok := known[keys[i]]
				return !ok
			})
		}
	} else {
		keys := make([]string, len(labels))
		for i, x := range labels {
			keys[i] = x.Key()
		}
		known := make(map[string]struct{})
		for id := range src.states {
			if p.stop() {
				return nil, p.err
			}
			s := StateID(id)
			clear(known)
			for _, t := range src.adj[s] {
				if nondet && !m.IsSettled(s, t.Label) {
					continue
				}
				known[t.Label.Key()] = struct{}{}
			}
			for k := range m.blocked[s] {
				known[k] = struct{}{}
			}
			emitChaos(s, func(i int) bool {
				_, ok := known[keys[i]]
				return !ok
			})
		}
	}

	// The embedded chaotic automaton T_c.
	for _, x := range labels {
		appendTransitions(c, sAll,
			Transition{Label: x, To: sAll},
			Transition{Label: x, To: sDelta})
	}

	for _, q := range src.initial {
		c.MarkInitial(closed[q])
		c.MarkInitial(open[q])
	}
	return c, nil
}

// appendTransitions appends pre-validated transitions to a state's adjacency
// list, fixing up the From field. Callers guarantee labels are within the
// alphabets and no duplicates are produced.
func appendTransitions(c *Automaton, from StateID, ts ...Transition) {
	for _, t := range ts {
		t.From = from
		c.adj[from] = append(c.adj[from], t)
	}
}

// ChaoticClosureLiteral builds chaos(M) with the *literal* quantification
// of Definition 9: chaos transitions from the open copies for every
// interaction not in T̄, including already-learned ones. Provided only for
// the fidelity ablation: under this reading s_δ remains reachable no
// matter how much has been learned, so the check φ ∧ ¬δ of Section 4.1
// can never succeed once any behaviour exists (see the discussion in
// ChaoticClosure).
func ChaoticClosureLiteral(m *Incomplete, universe InteractionUniverse) *Automaton {
	src := m.auto
	c := New(src.name, src.inputs, src.outputs)
	closed := make([]StateID, src.NumStates())
	open := make([]StateID, src.NumStates())
	for id, st := range src.states {
		closed[id] = c.MustAddState(st.name+ChaosClosedSuffix, st.labels...)
		c.states[closed[id]].parts = []string{st.name}
		open[id] = c.MustAddState(st.name+ChaosOpenSuffix, st.labels...)
		c.states[open[id]].parts = []string{st.name}
	}
	sAll := c.MustAddState(ChaosAllState, ChaosProposition)
	sDelta := c.MustAddState(ChaosDeltaState, ChaosProposition)
	for _, t := range src.TransitionsSnapshot() {
		c.MustAddTransition(closed[t.From], t.Label, closed[t.To])
		c.MustAddTransition(closed[t.From], t.Label, open[t.To])
		c.MustAddTransition(open[t.From], t.Label, closed[t.To])
		c.MustAddTransition(open[t.From], t.Label, open[t.To])
	}
	for id := range src.states {
		s := StateID(id)
		for _, x := range universe.Enumerate(src.inputs, src.outputs) {
			if m.IsBlocked(s, x) {
				continue
			}
			c.MustAddTransition(open[s], x, sAll)
			c.MustAddTransition(open[s], x, sDelta)
		}
	}
	for _, x := range universe.Enumerate(src.inputs, src.outputs) {
		c.MustAddTransition(sAll, x, sAll)
		c.MustAddTransition(sAll, x, sDelta)
	}
	for _, q := range src.initial {
		c.MarkInitial(closed[q])
		c.MarkInitial(open[q])
	}
	return c
}

// IsChaosState reports whether the composed or plain state involves a
// chaotic state (s_all or s_delta) of a chaotic closure. For composed
// automata every leaf part is inspected.
func IsChaosState(a *Automaton, s StateID) bool {
	for _, part := range a.states[s].parts {
		if part == ChaosAllState || part == ChaosDeltaState {
			return true
		}
	}
	return false
}
