package automata

import (
	"math/rand"
	"testing"
)

// threeParty builds a relay: a → b → c, where a emits m1 consumed by b,
// and b emits m2 consumed by c, while the third party idles in each step.
func threeParty(t *testing.T) (*Automaton, *Automaton, *Automaton) {
	t.Helper()
	a := New("a", EmptySet, NewSignalSet("m1"))
	a0 := a.MustAddState("a0")
	a1 := a.MustAddState("a1")
	a.MustAddTransition(a0, Interact(nil, []Signal{"m1"}), a1)
	a.MustAddTransition(a1, Interaction{}, a1)
	a.MarkInitial(a0)

	b := New("b", NewSignalSet("m1"), NewSignalSet("m2"))
	b0 := b.MustAddState("b0")
	b1 := b.MustAddState("b1")
	b2 := b.MustAddState("b2")
	b.MustAddTransition(b0, Interact([]Signal{"m1"}, nil), b1)
	b.MustAddTransition(b1, Interact(nil, []Signal{"m2"}), b2)
	b.MustAddTransition(b2, Interaction{}, b2)
	b.MarkInitial(b0)

	c := New("c", NewSignalSet("m2"), EmptySet)
	c0 := c.MustAddState("c0")
	c1 := c.MustAddState("c1")
	c.MustAddTransition(c0, Interaction{}, c0)
	c.MustAddTransition(c0, Interact([]Signal{"m2"}, nil), c1)
	c.MustAddTransition(c1, Interaction{}, c1)
	c.MarkInitial(c0)
	return a, b, c
}

func TestComposeAllThreeParties(t *testing.T) {
	a, b, c := threeParty(t)
	sys, err := ComposeAll("sys", a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// The relay proceeds: (a0,b0,c0) -> (a1,b1,c0) -> (a1,b2,c1) -> loop.
	if got := sys.NumStates(); got != 3 {
		t.Fatalf("NumStates = %d, want 3:\n%s", got, sys.Dot())
	}
	if _, dead := sys.DeadlockReachable(); dead {
		t.Fatal("relay should be deadlock-free")
	}
	if got := len(sys.Leaves()); got != 3 {
		t.Fatalf("leaves = %v", sys.Leaves())
	}
	// First joint step: a sends m1, b consumes it, c idles.
	init := sys.Initial()[0]
	ts := sys.TransitionsFrom(init)
	if len(ts) != 1 {
		t.Fatalf("initial joint steps = %d", len(ts))
	}
	if !ts[0].Label.Out.Contains("m1") || !ts[0].Label.In.Contains("m1") {
		t.Fatalf("joint label = %v", ts[0].Label)
	}
}

func TestComposeAllRejectsFoldSemantics(t *testing.T) {
	// The binary fold would be wrong here: composing a with b first leaves
	// m1 "unconsumed" for c. The n-ary product must still find the joint
	// step; the fold must produce an immediate deadlock instead. This test
	// documents the difference.
	a, b, c := threeParty(t)
	ab, err := Compose("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	fold, err := Compose("fold", ab, c)
	if err != nil {
		t.Fatal(err)
	}
	// In the fold, the first step (m1 exchange inside ab, Out={m1}) needs
	// c to consume m1, which it cannot: the fold deadlocks at once.
	if _, dead := fold.DeadlockReachable(); !dead {
		t.Fatal("fold unexpectedly behaves like the n-ary product")
	}
	nary, err := ComposeAll("nary", a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, dead := nary.DeadlockReachable(); dead {
		t.Fatal("n-ary product deadlocked")
	}
}

func TestComposeAllMatchesBinaryForTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		left := randomAutomaton(rng, "left", 3, 2)
		rightBase := randomAutomaton(rng, "rightbase", 3, 2)
		right, err := rightBase.Rename("right", map[Signal]Signal{"a": "p", "b": "q"})
		if err != nil {
			t.Fatal(err)
		}
		bin, errB := Compose("sys", left, right)
		nary, errN := ComposeAll("sys", left, right)
		if (errB == nil) != (errN == nil) {
			t.Fatalf("iteration %d: error mismatch %v vs %v", i, errB, errN)
		}
		if errB != nil {
			continue
		}
		if bin.NumStates() != nary.NumStates() || bin.NumTransitions() != nary.NumTransitions() {
			t.Fatalf("iteration %d: binary (%d/%d) vs n-ary (%d/%d)", i,
				bin.NumStates(), bin.NumTransitions(), nary.NumStates(), nary.NumTransitions())
		}
	}
}

func TestComposeAllValidation(t *testing.T) {
	a, b, c := threeParty(t)
	if _, err := ComposeAll("sys", a, b, b.Clone("b2")); err == nil {
		t.Fatal("shared alphabets accepted")
	}
	noInit := New("ni", EmptySet, EmptySet)
	noInit.MustAddState("s")
	if _, err := ComposeAll("sys", a, b, noInit); err == nil {
		t.Fatal("missing initial state accepted")
	}
	_ = c
}

func TestComposeAllSingleClones(t *testing.T) {
	a, _, _ := threeParty(t)
	solo, err := ComposeAll("solo", a)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Name() != "solo" || solo.NumStates() != a.NumStates() {
		t.Fatal("single-part ComposeAll should clone")
	}
	solo.MustAddState("extra")
	if a.State("extra") != NoState {
		t.Fatal("clone shares storage")
	}
}

func TestComposeAllProjection(t *testing.T) {
	a, b, c := threeParty(t)
	sys, err := ComposeAll("sys", a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	init := sys.Initial()[0]
	tr := sys.TransitionsFrom(init)[0]
	run := Run{States: []StateID{init, tr.To}, Steps: []Interaction{tr.Label}}
	proj, err := sys.ProjectRun(run, "b")
	if err != nil {
		t.Fatal(err)
	}
	if proj.StateNames[0] != "b0" || proj.StateNames[1] != "b1" {
		t.Fatalf("projection = %v", proj.StateNames)
	}
	if !proj.Steps[0].In.Contains("m1") {
		t.Fatalf("projected step = %v", proj.Steps[0])
	}
}
