package automata

import (
	"fmt"
	"sort"
)

// This file implements the refinement preorder ⊑ of Definition 4:
// M ⊑ M' iff
//
//	(1) every run of M has a run of M' with the same observable trace and
//	    the same labeling on the final state, and
//	(2) every deadlock run of M (a run ending in an interaction refused by
//	    the final state) is matched by a deadlock run of M' with the same
//	    trace refusing the same interaction.
//
// Refinement implies simulation and additionally preserves deadlock
// freedom (Lemma 1) and compositional constraints (Section 2.4).
//
// Two checks are provided:
//
//   - Simulates: a polynomial-time greatest-fixpoint check computing a
//     ready-simulation-style relation. It is sound (Simulates ⇒ ⊑) but
//     incomplete for nondeterministic specifications.
//   - Refines: an exact decision procedure via subset construction over
//     the specification, tracking for every implementation state reachable
//     by a trace the full set of specification states reachable by the
//     same trace. Worst-case exponential in |S'|, fine for model sizes in
//     this domain.

// Simulates reports whether a relation R ⊆ S×S' exists such that related
// states have equal labels, every transition of impl is matched by spec
// from a related state, refusals of impl states are included in the
// refusals of the related spec state, and every initial state of impl is
// related to an initial state of spec. This is sufficient for impl ⊑ spec.
func Simulates(impl, spec *Automaton) bool {
	n, m := impl.NumStates(), spec.NumStates()
	rel := make([]bool, n*m)
	// Initialize with label equality and refusal inclusion. Refusal
	// inclusion relative to a shared interaction universe is equivalent to
	// enabled(spec) ⊆ enabled(impl).
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			rel[i*m+j] = labelsMatch(impl.Labels(StateID(i)), spec.Labels(StateID(j))) &&
				enabledSubset(spec, StateID(j), impl, StateID(i))
		}
	}
	// Greatest fixpoint: remove pairs whose transitions cannot be matched.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if !rel[i*m+j] {
					continue
				}
				if !matchesAllTransitions(impl, StateID(i), spec, StateID(j), rel, m) {
					rel[i*m+j] = false
					changed = true
				}
			}
		}
	}
	for _, qi := range impl.Initial() {
		found := false
		for _, qj := range spec.Initial() {
			if rel[int(qi)*m+int(qj)] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func matchesAllTransitions(impl *Automaton, i StateID, spec *Automaton, j StateID, rel []bool, m int) bool {
	for _, t := range impl.TransitionsFrom(i) {
		matched := false
		for _, u := range spec.TransitionsFrom(j) {
			if u.Label.Equal(t.Label) && rel[int(t.To)*m+int(u.To)] {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// enabledSubset reports whether every interaction enabled at (a, sa) is
// enabled at (b, sb).
func enabledSubset(a *Automaton, sa StateID, b *Automaton, sb StateID) bool {
	enabled := make(map[string]struct{})
	for _, t := range b.TransitionsFrom(sb) {
		enabled[t.Label.Key()] = struct{}{}
	}
	for _, t := range a.TransitionsFrom(sa) {
		if _, ok := enabled[t.Label.Key()]; !ok {
			return false
		}
	}
	return true
}

// Refines decides impl ⊑ spec exactly. It explores pairs (s, U) where s is
// an implementation state reachable by some trace w and U is the set of
// specification states reachable by the same trace. For every such pair:
//
//   - condition (1) requires some s' ∈ U with L(s) = L'(s');
//   - condition (2) requires every interaction refused by s to be refused
//     by some s' ∈ U, which (per-interaction witnesses may differ) is
//     equivalent to ⋂_{s'∈U} enabled(s') ⊆ enabled(s).
//
// If the check fails, a counterexample trace is returned.
func Refines(impl, spec *Automaton) (bool, []Interaction, error) {
	if impl.NumStates() == 0 || spec.NumStates() == 0 {
		return false, nil, fmt.Errorf("automata: refinement over empty automaton")
	}
	type node struct {
		s StateID
		u string // canonical key of spec-state subset
	}
	type entry struct {
		states []StateID
		trace  []Interaction
	}
	specInit := normalizeStates(spec.Initial())
	visited := make(map[node]struct{})
	queue := make([]struct {
		s StateID
		e entry
	}, 0, len(impl.Initial()))
	for _, q := range impl.Initial() {
		queue = append(queue, struct {
			s StateID
			e entry
		}{q, entry{states: specInit}})
	}

	// Enabled-set comparisons run on interned label keys when the combined
	// alphabet fits an interner; identical semantics via string keys
	// otherwise.
	intern, useIntern := NewInterner(impl.inputs, impl.outputs, spec.inputs, spec.outputs)
	enabledOK := func(s StateID, u []StateID) bool {
		if useIntern {
			return refusalInclusion(impl, spec, s, u, func(x Interaction) InternKey {
				k, _ := intern.Key(x)
				return k
			})
		}
		return refusalInclusion(impl, spec, s, u, Interaction.Key)
	}

	check := func(s StateID, u []StateID, trace []Interaction) (bool, []Interaction) {
		if len(u) == 0 {
			return false, trace
		}
		labelOK := false
		for _, sp := range u {
			if labelsMatch(impl.Labels(s), spec.Labels(sp)) {
				labelOK = true
				break
			}
		}
		if !labelOK {
			return false, trace
		}
		if !enabledOK(s, u) {
			return false, trace
		}
		return true, nil
	}

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		key := node{cur.s, stateSetKey(cur.e.states)}
		if _, ok := visited[key]; ok {
			continue
		}
		visited[key] = struct{}{}
		if ok, cex := check(cur.s, cur.e.states, cur.e.trace); !ok {
			return false, cex, nil
		}
		for _, t := range impl.TransitionsFrom(cur.s) {
			var next []StateID
			for _, sp := range cur.e.states {
				next = append(next, spec.Successors(sp, t.Label)...)
			}
			next = normalizeStates(next)
			trace := append(append([]Interaction(nil), cur.e.trace...), t.Label)
			if len(next) == 0 {
				return false, trace, nil
			}
			queue = append(queue, struct {
				s StateID
				e entry
			}{t.To, entry{states: next, trace: trace}})
		}
	}
	return true, nil, nil
}

// refusalInclusion checks condition (2) at pair (s, U): the intersection
// ⋂_{s'∈U} enabled(s') must be within enabled(s). Generic over the label key
// type so it runs on interned keys when available and string keys otherwise.
func refusalInclusion[K comparable](impl, spec *Automaton, s StateID, u []StateID, key func(Interaction) K) bool {
	common := enabledKeySet(spec, u[0], key)
	for _, sp := range u[1:] {
		if len(common) == 0 {
			break
		}
		next := enabledKeySet(spec, sp, key)
		for k := range common {
			if _, ok := next[k]; !ok {
				delete(common, k)
			}
		}
	}
	mine := enabledKeySet(impl, s, key)
	for k := range common {
		if _, ok := mine[k]; !ok {
			return false
		}
	}
	return true
}

func enabledKeySet[K comparable](a *Automaton, s StateID, key func(Interaction) K) map[K]struct{} {
	keys := make(map[K]struct{}, len(a.adj[s]))
	for _, t := range a.adj[s] {
		keys[key(t.Label)] = struct{}{}
	}
	return keys
}

func normalizeStates(states []StateID) []StateID {
	if len(states) == 0 {
		return nil
	}
	sorted := make([]StateID, len(states))
	copy(sorted, states)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:1]
	for _, s := range sorted[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func stateSetKey(states []StateID) string {
	b := make([]byte, 0, len(states)*3)
	for _, s := range states {
		b = append(b, byte(s), byte(s>>8), byte(s>>16))
	}
	return string(b)
}

// labelsMatch reports whether an implementation state labeled implLabels
// matches a specification state labeled specLabels for condition (1) of
// Definition 4. A specification state carrying the chaos proposition χ
// matches any labeling: per Theorem 1 the chaotic states s_∀ and s_δ are
// considered to fulfil all positive and negative propositions (the formula
// weakening of Section 2.7 realizes this on the logic side).
func labelsMatch(implLabels, specLabels []Proposition) bool {
	for _, p := range specLabels {
		if p == ChaosProposition {
			return true
		}
	}
	return labelsEqual(implLabels, specLabels)
}

func labelsEqual(a, b []Proposition) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
