package automata

import (
	"encoding/json"
	"fmt"
)

// This file is the serialization codec behind the persistent memo store
// (internal/memostore): a full-fidelity interchange format for memoized
// construction results. It differs from the public EncodeJSON format in
// that it preserves everything cloneDeep preserves — composed-state
// provenance (parts) and the leaf decomposition — because a warm-started
// closure or product must behave exactly like a freshly built one:
// counterexample classification (IsChaosState) and run projection read
// that provenance.
//
// The payload is versioned so a decoder never misinterprets records
// written by an older or newer layout; a version mismatch is an error the
// caller treats as a cache miss (and evicts the on-disk record).

// memoCodecVersion is bumped whenever the serialized layout changes
// incompatibly. Decoding any other version fails.
const memoCodecVersion = 1

type memoDocJSON struct {
	V       int            `json:"v"`
	Name    string         `json:"name"`
	Inputs  []Signal       `json:"in,omitempty"`
	Outputs []Signal       `json:"out,omitempty"`
	Leaves  []memoLeafJSON `json:"leaves,omitempty"`
	States  []memoStatJSON `json:"states,omitempty"`
	Initial []int          `json:"initial,omitempty"`
	// Adj holds one row per state, index-aligned with States.
	Adj [][]memoEdgeJSON `json:"adj,omitempty"`
}

type memoLeafJSON struct {
	Name    string   `json:"name"`
	Inputs  []Signal `json:"in,omitempty"`
	Outputs []Signal `json:"out,omitempty"`
}

type memoStatJSON struct {
	Name   string        `json:"name"`
	Labels []Proposition `json:"labels,omitempty"`
	Parts  []string      `json:"parts,omitempty"`
}

type memoEdgeJSON struct {
	In  []Signal `json:"in,omitempty"`
	Out []Signal `json:"out,omitempty"`
	To  int      `json:"to"`
}

// MarshalMemo serializes the automaton with full fidelity (provenance
// parts and leaf decomposition included) for the persistent memo store.
func MarshalMemo(a *Automaton) ([]byte, error) {
	doc := memoDocJSON{
		V:       memoCodecVersion,
		Name:    a.name,
		Inputs:  a.inputs.Signals(),
		Outputs: a.outputs.Signals(),
	}
	for _, l := range a.leaves {
		doc.Leaves = append(doc.Leaves, memoLeafJSON{
			Name: l.name, Inputs: l.inputs.Signals(), Outputs: l.outputs.Signals(),
		})
	}
	for _, st := range a.states {
		doc.States = append(doc.States, memoStatJSON{
			Name: st.name, Labels: st.labels, Parts: st.parts,
		})
	}
	for _, q := range a.initial {
		doc.Initial = append(doc.Initial, int(q))
	}
	doc.Adj = make([][]memoEdgeJSON, len(a.adj))
	for i, row := range a.adj {
		edges := make([]memoEdgeJSON, len(row))
		for k, t := range row {
			edges[k] = memoEdgeJSON{In: t.Label.In.Signals(), Out: t.Label.Out.Signals(), To: int(t.To)}
		}
		doc.Adj[i] = edges
	}
	return json.Marshal(doc)
}

// UnmarshalMemo reconstructs a MarshalMemo payload. It validates the codec
// version and every state reference, so a payload from a different layout
// or a partially damaged record yields an error instead of a malformed
// automaton.
func UnmarshalMemo(data []byte) (*Automaton, error) {
	var doc memoDocJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("automata: memo decode: %w", err)
	}
	if doc.V != memoCodecVersion {
		return nil, fmt.Errorf("automata: memo decode: codec version %d, want %d", doc.V, memoCodecVersion)
	}
	if doc.Name == "" {
		return nil, fmt.Errorf("automata: memo decode: missing automaton name")
	}
	if len(doc.Adj) != len(doc.States) {
		return nil, fmt.Errorf("automata: memo decode: %d adjacency rows for %d states", len(doc.Adj), len(doc.States))
	}
	a := New(doc.Name, NewSignalSet(doc.Inputs...), NewSignalSet(doc.Outputs...))
	if len(doc.Leaves) > 0 {
		a.leaves = a.leaves[:0]
		for _, l := range doc.Leaves {
			a.leaves = append(a.leaves, leafInfo{
				name: l.Name, inputs: NewSignalSet(l.Inputs...), outputs: NewSignalSet(l.Outputs...),
			})
		}
	}
	for i, st := range doc.States {
		if st.Name == "" {
			return nil, fmt.Errorf("automata: memo decode: state %d has no name", i)
		}
		if _, dup := a.index[st.Name]; dup {
			return nil, fmt.Errorf("automata: memo decode: duplicate state %q", st.Name)
		}
		a.states = append(a.states, stateInfo{
			name:   st.Name,
			labels: append([]Proposition(nil), st.Labels...),
			parts:  append([]string(nil), st.Parts...),
		})
		a.index[st.Name] = StateID(i)
	}
	a.adj = make([][]Transition, len(doc.States))
	for i, row := range doc.Adj {
		ts := make([]Transition, len(row))
		for k, e := range row {
			if e.To < 0 || e.To >= len(doc.States) {
				return nil, fmt.Errorf("automata: memo decode: state %d edge %d targets unknown state %d", i, k, e.To)
			}
			ts[k] = Transition{
				From:  StateID(i),
				Label: Interaction{In: NewSignalSet(e.In...), Out: NewSignalSet(e.Out...)},
				To:    StateID(e.To),
			}
		}
		a.adj[i] = ts
	}
	for _, q := range doc.Initial {
		if q < 0 || q >= len(doc.States) {
			return nil, fmt.Errorf("automata: memo decode: unknown initial state %d", q)
		}
		a.initial = append(a.initial, StateID(q))
	}
	return a, nil
}
