package automata

import (
	"context"
	"testing"
)

func fpTestAutomaton(t *testing.T) *Automaton {
	t.Helper()
	a := New("m", NewSignalSet("go"), NewSignalSet("done"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MarkInitial(s0)
	a.MustAddTransition(s0, Interaction{In: NewSignalSet("go")}, s1)
	a.MustAddTransition(s1, Interaction{Out: NewSignalSet("done")}, s0)
	return a
}

func TestFingerprintDeterministic(t *testing.T) {
	if got, want := fpTestAutomaton(t).Fingerprint(), fpTestAutomaton(t).Fingerprint(); got != want {
		t.Fatalf("identical builds fingerprint differently: %x vs %x", got, want)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpTestAutomaton(t).Fingerprint()
	for name, mutate := range map[string]func(a *Automaton) *Automaton{
		"rename": func(a *Automaton) *Automaton {
			renamed, err := a.Rename("other", nil)
			if err != nil {
				t.Fatal(err)
			}
			return renamed
		},
		"extra state": func(a *Automaton) *Automaton {
			a.MustAddState("s2")
			return a
		},
		"extra transition": func(a *Automaton) *Automaton {
			a.MustAddTransition(StateID(1), Interaction{}, StateID(1))
			return a
		},
		"different initial": func(a *Automaton) *Automaton {
			a.MarkInitial(StateID(1))
			return a
		},
		"extra label": func(a *Automaton) *Automaton {
			a.AddLabel(StateID(0), "p")
			return a
		},
	} {
		a := mutate(fpTestAutomaton(t))
		if a.Fingerprint() == base {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}

	// Alphabet matters even with identical structure.
	b := New("m", NewSignalSet("go", "extra"), NewSignalSet("done"))
	s0 := b.MustAddState("s0")
	s1 := b.MustAddState("s1")
	b.MarkInitial(s0)
	b.MustAddTransition(s0, Interaction{In: NewSignalSet("go")}, s1)
	b.MustAddTransition(s1, Interaction{Out: NewSignalSet("done")}, s0)
	if b.Fingerprint() == base {
		t.Error("alphabet change: fingerprint unchanged")
	}
}

func TestIncompleteFingerprintSeesRefusals(t *testing.T) {
	m1 := NewIncomplete(fpTestAutomaton(t))
	m2 := NewIncomplete(fpTestAutomaton(t))
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("identical incomplete models fingerprint differently")
	}
	blocked := Interaction{In: NewSignalSet("go"), Out: NewSignalSet("done")}
	if _, err := m2.Learn(ObservedRun{Initial: "s0", Blocked: &blocked}, nil); err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint() == m2.Fingerprint() {
		t.Fatal("recorded refusal did not change the fingerprint")
	}
}

func TestUniverseFingerprint(t *testing.T) {
	in, out := NewSignalSet("a"), NewSignalSet("b")
	u := Universe(UniverseSingleton)
	if UniverseFingerprint(u, in, out) != UniverseFingerprint(u, in, out) {
		t.Fatal("universe fingerprint not deterministic")
	}
	if UniverseFingerprint(u, in, out) == UniverseFingerprint(u, NewSignalSet("a", "c"), out) {
		t.Fatal("universe fingerprint ignores the alphabet")
	}
}

// TestMemoComposeRoundTrip checks that a memoized composition is
// indistinguishable from a fresh build — including the state-part
// provenance that plain Clone would drop — and that the cache masters stay
// immutable under mutation of handed-out results.
func TestMemoComposeRoundTrip(t *testing.T) {
	build := func() (*Automaton, *Automaton) {
		s := New("sender", EmptySet, NewSignalSet("msg"))
		s0 := s.MustAddState("ready")
		s1 := s.MustAddState("sent")
		s.MustAddTransition(s0, Interact(nil, []Signal{"msg"}), s1)
		s.MustAddTransition(s1, Interaction{}, s1)
		s.MarkInitial(s0)
		r := New("receiver", NewSignalSet("msg"), EmptySet)
		r0 := r.MustAddState("waiting")
		r1 := r.MustAddState("got")
		r.MustAddTransition(r0, Interact([]Signal{"msg"}, nil), r1)
		r.MustAddTransition(r1, Interaction{}, r1)
		r.MarkInitial(r0)
		return s, r
	}

	memo := NewMemoCache(nil)
	ctx := context.Background()

	s, r := build()
	fresh, err := ComposeCtx(ctx, "sys", s, r, memo)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, entries := memo.Stats(); hits != 0 || misses != 1 || entries != 1 {
		t.Fatalf("after first compose: hits=%d misses=%d entries=%d", hits, misses, entries)
	}

	s2, r2 := build()
	cached, err := ComposeCtx(ctx, "sys", s2, r2, memo)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := memo.Stats(); hits != 1 {
		t.Fatalf("second compose of identical operands missed the cache")
	}
	if err := EquivalentReachable(cached, fresh); err != nil {
		t.Fatalf("memoized composition differs from fresh build: %v", err)
	}
	init := cached.Initial()[0]
	if got := cached.StateParts(init); len(got) != 2 || got[0] != "ready" || got[1] != "waiting" {
		t.Fatalf("memoized result lost part provenance: %v", got)
	}

	// Mutating a handed-out result must not poison later hits.
	cached.MustAddState("scribble")
	again, err := ComposeCtx(ctx, "sys", s, r, memo)
	if err != nil {
		t.Fatal(err)
	}
	if err := EquivalentReachable(again, fresh); err != nil {
		t.Fatalf("cache master was mutated through a handout: %v", err)
	}
}

func TestMemoClosureRoundTrip(t *testing.T) {
	buildModel := func() *Incomplete {
		a := New("comp", NewSignalSet("go"), NewSignalSet("done"))
		s0 := a.MustAddState("s0")
		a.MarkInitial(s0)
		return NewIncomplete(a)
	}
	u := Universe(UniverseSingleton)
	memo := NewMemoCache(nil)
	ctx := context.Background()

	fresh, err := ChaoticClosureCtx(ctx, buildModel(), u, memo)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := ChaoticClosureCtx(ctx, buildModel(), u, memo)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := memo.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("closure memo: hits=%d misses=%d", hits, misses)
	}
	if err := EquivalentReachable(cached, fresh); err != nil {
		t.Fatalf("memoized closure differs from fresh build: %v", err)
	}
	// Chaos marking must survive memoization: without it the analysis
	// could not tell learned behavior from chaotic over-approximation.
	foundChaos := false
	for id := StateID(0); int(id) < cached.NumStates(); id++ {
		if IsChaosState(cached, id) {
			foundChaos = true
		}
	}
	if !foundChaos {
		t.Fatal("memoized closure lost its chaos-state marking")
	}
}

func TestMemoNilSafe(t *testing.T) {
	var memo *MemoCache
	hits, misses, entries := memo.Stats()
	if hits != 0 || misses != 0 || entries != 0 {
		t.Fatalf("nil cache stats: %d/%d/%d", hits, misses, entries)
	}
	s := New("s", EmptySet, EmptySet)
	s.MarkInitial(s.MustAddState("x"))
	r := New("r", EmptySet, EmptySet)
	r.MarkInitial(r.MustAddState("y"))
	if _, err := ComposeCtx(context.Background(), "sys", s, r, nil); err != nil {
		t.Fatalf("ComposeCtx with nil memo: %v", err)
	}
}
