package automata

import (
	"math/rand"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	a := New("proto", NewSignalSet("req"), NewSignalSet("ack"))
	idle := a.MustAddState("idle", "proto.idle")
	busy := a.MustAddState("busy", "proto.busy")
	a.MustAddTransition(idle, Interact([]Signal{"req"}, []Signal{"ack"}), busy)
	a.MustAddTransition(busy, Interaction{}, idle)
	a.MarkInitial(idle)

	data, err := EncodeJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "proto" || back.NumStates() != 2 || back.NumTransitions() != 2 {
		t.Fatalf("round trip changed structure: %s", back)
	}
	if !back.HasLabel(back.State("idle"), "proto.idle") {
		t.Fatal("labels lost")
	}
	eq, _, err := Refines(a, back)
	if err != nil || !eq {
		t.Fatalf("round trip not equivalent: %v %v", eq, err)
	}
}

func TestJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		a := randomDeterministicAutomaton(rng, "m", 5, 2)
		data, err := EncodeJSON(a)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeJSON(data)
		if err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, data)
		}
		if back.NumStates() != a.NumStates() || back.NumTransitions() != a.NumTransitions() {
			t.Fatalf("iteration %d: structure changed", i)
		}
		ok, cex, err := Refines(a, back)
		if err != nil || !ok {
			t.Fatalf("iteration %d: not equivalent (%v, cex=%v)", i, err, cex)
		}
	}
}

func TestDecodeJSONValidation(t *testing.T) {
	bad := []string{
		`{`,
		`{"name":""}`,
		`{"name":"a","states":[{"name":"s"}],"transitions":[{"from":"s","to":"ghost"}],"initial":["s"]}`,
		`{"name":"a","states":[{"name":"s"}],"initial":["ghost"]}`,
		`{"name":"a","states":[{"name":"s"}]}`, // no initial state
		`{"name":"a","inputs":["x"],"outputs":["x"],"states":[{"name":"s"}],"initial":["s"]}`,
	}
	for _, in := range bad {
		if _, err := DecodeJSON([]byte(in)); err == nil {
			t.Errorf("DecodeJSON(%q) unexpectedly succeeded", in)
		}
	}
}

func TestIncompleteJSONRoundTrip(t *testing.T) {
	a := New("m", NewSignalSet("x"), NewSignalSet("y"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MustAddTransition(s0, Interact([]Signal{"x"}, []Signal{"y"}), s1)
	a.MarkInitial(s0)
	m := NewIncomplete(a)
	if err := m.Block(s1, Interact([]Signal{"x"}, nil)); err != nil {
		t.Fatal(err)
	}

	data, err := EncodeIncompleteJSON(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeIncompleteJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumBlocked() != 1 {
		t.Fatalf("blocked entries = %d", back.NumBlocked())
	}
	if !back.IsBlocked(back.Automaton().State("s1"), Interact([]Signal{"x"}, nil)) {
		t.Fatal("blocked entry lost")
	}
	if err := back.Consistent(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeIncompleteJSONRejectsInconsistent(t *testing.T) {
	// Blocked entry duplicating a transition violates Definition 6.
	in := `{
	  "automaton": {
	    "name": "m", "inputs": ["x"], "outputs": [],
	    "states": [{"name": "s"}],
	    "transitions": [{"from": "s", "in": ["x"], "to": "s"}],
	    "initial": ["s"]
	  },
	  "blocked": [{"from": "s", "in": ["x"]}]
	}`
	if _, err := DecodeIncompleteJSON([]byte(in)); err == nil {
		t.Fatal("inconsistent incomplete automaton accepted")
	}
	if _, err := DecodeIncompleteJSON([]byte(`{"automaton":{"name":"m","states":[{"name":"s"}],"initial":["s"]},"blocked":[{"from":"ghost"}]}`)); err == nil {
		t.Fatal("blocked entry with unknown state accepted")
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	// s1 and s2 are behaviorally identical (they alternate between each
	// other), while s0 is distinct (it refuses x). Expect 2 states.
	a := New("m", NewSignalSet("x"), NewSignalSet("y"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	s2 := a.MustAddState("s2")
	x := Interact([]Signal{"x"}, []Signal{"y"})
	loop := Interact(nil, nil)
	a.MustAddTransition(s0, loop, s1)
	a.MustAddTransition(s1, x, s1)
	a.MustAddTransition(s1, loop, s2)
	a.MustAddTransition(s2, x, s2)
	a.MustAddTransition(s2, loop, s1)
	a.MarkInitial(s0)

	min, err := MinimizeDeterministic(a)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 2 {
		t.Fatalf("minimized to %d states, want 2:\n%s", min.NumStates(), min.Dot())
	}
	// Equivalence preserved.
	ok, cex, err := Refines(a, min)
	if err != nil || !ok {
		t.Fatalf("minimization changed behavior: %v %v", cex, err)
	}
}

func TestMinimizeKeepsDistinctLabels(t *testing.T) {
	a := New("m", EmptySet, EmptySet)
	s0 := a.MustAddState("s0", "p")
	s1 := a.MustAddState("s1", "q")
	loop := Interaction{}
	a.MustAddTransition(s0, loop, s1)
	a.MustAddTransition(s1, loop, s0)
	a.MarkInitial(s0)
	min, err := MinimizeDeterministic(a)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 2 {
		t.Fatalf("label-distinct states merged: %d", min.NumStates())
	}
}

func TestMinimizeDropsUnreachable(t *testing.T) {
	a := New("m", EmptySet, EmptySet)
	s0 := a.MustAddState("s0")
	a.MustAddState("island")
	a.MustAddTransition(s0, Interaction{}, s0)
	a.MarkInitial(s0)
	min, err := MinimizeDeterministic(a)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 1 {
		t.Fatalf("unreachable state kept: %d", min.NumStates())
	}
}

func TestMinimizeRejectsNondeterministic(t *testing.T) {
	a := New("m", NewSignalSet("x"), NewSignalSet("y"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MustAddTransition(s0, Interact([]Signal{"x"}, nil), s0)
	a.MustAddTransition(s0, Interact([]Signal{"x"}, []Signal{"y"}), s1)
	a.MarkInitial(s0)
	if _, err := MinimizeDeterministic(a); err == nil {
		t.Fatal("nondeterministic machine accepted")
	}
}

func TestTrimPreservesProvenance(t *testing.T) {
	left := New("l", EmptySet, NewSignalSet("m"))
	l0 := left.MustAddState("a")
	left.MustAddTransition(l0, Interact(nil, []Signal{"m"}), l0)
	left.MarkInitial(l0)
	right := New("r", NewSignalSet("m"), EmptySet)
	r0 := right.MustAddState("b")
	right.MustAddTransition(r0, Interact([]Signal{"m"}, nil), r0)
	right.MarkInitial(r0)
	sys := MustCompose("sys", left, right)
	trimmed := sys.Trim("sys")
	if len(trimmed.Leaves()) != 2 {
		t.Fatalf("leaves = %v", trimmed.Leaves())
	}
	if got := trimmed.StateParts(trimmed.Initial()[0]); len(got) != 2 || got[0] != "a" {
		t.Fatalf("parts = %v", got)
	}
}
