package automata_test

import (
	"fmt"

	"muml/internal/automata"
)

// ExampleCompose demonstrates the synchronous parallel composition of
// Definition 3: sending and receiving happen in the same time step.
func ExampleCompose() {
	sender := automata.New("sender", automata.EmptySet, automata.NewSignalSet("msg"))
	ready := sender.MustAddState("ready")
	done := sender.MustAddState("done")
	sender.MustAddTransition(ready, automata.Interact(nil, []automata.Signal{"msg"}), done)
	sender.MustAddTransition(done, automata.Interaction{}, done)
	sender.MarkInitial(ready)

	receiver := automata.New("receiver", automata.NewSignalSet("msg"), automata.EmptySet)
	waiting := receiver.MustAddState("waiting")
	got := receiver.MustAddState("got")
	receiver.MustAddTransition(waiting, automata.Interact([]automata.Signal{"msg"}, nil), got)
	receiver.MustAddTransition(got, automata.Interaction{}, got)
	receiver.MarkInitial(waiting)

	sys, err := automata.Compose("system", sender, receiver)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("states: %d, deadlock-free: %v\n", sys.NumStates(), !deadlocks(sys))
	// Output:
	// states: 2, deadlock-free: true
}

func deadlocks(a *automata.Automaton) bool {
	_, dead := a.DeadlockReachable()
	return dead
}

// ExampleChaoticClosure shows the safe over-approximation of Definition 9:
// the closure of an empty model admits every behavior, including refusing
// everything.
func ExampleChaoticClosure() {
	a := automata.New("legacy", automata.NewSignalSet("ping"), automata.NewSignalSet("pong"))
	s0 := a.MustAddState("init")
	a.MarkInitial(s0)
	model := automata.NewIncomplete(a)

	closure := automata.ChaoticClosure(model, automata.Universe(automata.UniverseSingleton))
	fmt.Printf("states: %d (two copies of init, s_all, s_delta)\n", closure.NumStates())
	fmt.Printf("initial states: %d\n", len(closure.Initial()))
	// Output:
	// states: 4 (two copies of init, s_all, s_delta)
	// initial states: 2
}

// ExampleIncomplete_Learn merges a monitored observation into an
// incomplete automaton (Definition 11).
func ExampleIncomplete_Learn() {
	a := automata.New("legacy", automata.NewSignalSet("ping"), automata.NewSignalSet("pong"))
	s0 := a.MustAddState("idle")
	a.MarkInitial(s0)
	model := automata.NewIncomplete(a)

	delta, err := model.Learn(automata.ObservedRun{
		Initial: "idle",
		Steps: []automata.ObservedStep{{
			Label: automata.Interact([]automata.Signal{"ping"}, []automata.Signal{"pong"}),
			To:    "answered",
		}},
	}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("learned %d state(s) and %d transition(s)\n", delta.States, delta.Transitions)
	// Output:
	// learned 1 state(s) and 1 transition(s)
}
