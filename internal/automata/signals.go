// Package automata implements the finite I/O automaton model that underlies
// Mechatronic UML real-time statecharts, as defined in Giese, Henkler, and
// Hirsch, "Combining Formal Verification and Testing for Correct Legacy
// Component Integration in Mechatronic UML" (Architecting Dependable
// Systems V, LNCS 5135, 2008), Section 2.
//
// An automaton is a 5-tuple M = (S, I, O, T, Q) with finite states S, input
// signals I, output signals O, transitions T ⊆ S × ℘(I) × ℘(O) × S, and
// initial states Q. Time is discrete: every transition takes exactly one
// time unit. The package additionally provides the paper's parallel
// composition (Definition 3), refinement preorder (Definition 4), incomplete
// automata (Definitions 6-7), the chaotic automaton and chaotic closure
// (Definitions 8-9), observation conformance (Definition 10), and the learn
// operations (Definitions 11-12).
package automata

import (
	"sort"
	"strings"
)

// Signal is a named message or event exchanged between components. Within
// one automaton a signal belongs either to the input alphabet I or to the
// output alphabet O, never both.
type Signal string

// SignalSet is an immutable, canonically ordered set of signals. It models
// the elements of ℘(I) and ℘(O) that annotate transitions. The zero value
// is the empty set and is ready to use.
type SignalSet struct {
	signals []Signal // sorted ascending, no duplicates
}

// NewSignalSet returns the set containing exactly the given signals.
// Duplicates are removed.
func NewSignalSet(signals ...Signal) SignalSet {
	if len(signals) == 0 {
		return SignalSet{}
	}
	sorted := make([]Signal, len(signals))
	copy(sorted, signals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	deduped := sorted[:1]
	for _, s := range sorted[1:] {
		if s != deduped[len(deduped)-1] {
			deduped = append(deduped, s)
		}
	}
	return SignalSet{signals: deduped}
}

// EmptySet is the empty signal set. It annotates transitions that neither
// consume nor produce a message (a pure time step).
var EmptySet = SignalSet{}

// Len reports the number of signals in the set.
func (s SignalSet) Len() int { return len(s.signals) }

// IsEmpty reports whether the set contains no signals.
func (s SignalSet) IsEmpty() bool { return len(s.signals) == 0 }

// Signals returns the signals in canonical (ascending) order. The returned
// slice is a copy; mutating it does not affect the set.
func (s SignalSet) Signals() []Signal {
	if len(s.signals) == 0 {
		return nil
	}
	out := make([]Signal, len(s.signals))
	copy(out, s.signals)
	return out
}

// Contains reports whether sig is a member of the set.
func (s SignalSet) Contains(sig Signal) bool {
	i := sort.Search(len(s.signals), func(i int) bool { return s.signals[i] >= sig })
	return i < len(s.signals) && s.signals[i] == sig
}

// Equal reports whether both sets contain exactly the same signals.
func (s SignalSet) Equal(other SignalSet) bool {
	if len(s.signals) != len(other.signals) {
		return false
	}
	for i, sig := range s.signals {
		if other.signals[i] != sig {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every signal of s is also in other.
func (s SignalSet) SubsetOf(other SignalSet) bool {
	i := 0
	for _, sig := range s.signals {
		for i < len(other.signals) && other.signals[i] < sig {
			i++
		}
		if i >= len(other.signals) || other.signals[i] != sig {
			return false
		}
	}
	return true
}

// Union returns the set of signals occurring in s or other.
func (s SignalSet) Union(other SignalSet) SignalSet {
	if s.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return s
	}
	merged := make([]Signal, 0, len(s.signals)+len(other.signals))
	i, j := 0, 0
	for i < len(s.signals) && j < len(other.signals) {
		switch {
		case s.signals[i] < other.signals[j]:
			merged = append(merged, s.signals[i])
			i++
		case s.signals[i] > other.signals[j]:
			merged = append(merged, other.signals[j])
			j++
		default:
			merged = append(merged, s.signals[i])
			i++
			j++
		}
	}
	merged = append(merged, s.signals[i:]...)
	merged = append(merged, other.signals[j:]...)
	return SignalSet{signals: merged}
}

// Intersect returns the set of signals occurring in both s and other.
func (s SignalSet) Intersect(other SignalSet) SignalSet {
	var common []Signal
	i, j := 0, 0
	for i < len(s.signals) && j < len(other.signals) {
		switch {
		case s.signals[i] < other.signals[j]:
			i++
		case s.signals[i] > other.signals[j]:
			j++
		default:
			common = append(common, s.signals[i])
			i++
			j++
		}
	}
	return SignalSet{signals: common}
}

// Minus returns the set of signals in s that are not in other.
func (s SignalSet) Minus(other SignalSet) SignalSet {
	var rest []Signal
	j := 0
	for _, sig := range s.signals {
		for j < len(other.signals) && other.signals[j] < sig {
			j++
		}
		if j < len(other.signals) && other.signals[j] == sig {
			continue
		}
		rest = append(rest, sig)
	}
	return SignalSet{signals: rest}
}

// Disjoint reports whether s and other share no signal.
func (s SignalSet) Disjoint(other SignalSet) bool {
	return s.Intersect(other).IsEmpty()
}

// Key returns a canonical string representation suitable as a map key.
// Distinct sets have distinct keys.
func (s SignalSet) Key() string {
	if len(s.signals) == 0 {
		return ""
	}
	parts := make([]string, len(s.signals))
	for i, sig := range s.signals {
		parts[i] = string(sig)
	}
	return strings.Join(parts, ",")
}

// String renders the set in mathematical notation, e.g. "{a,b}".
func (s SignalSet) String() string {
	if len(s.signals) == 0 {
		return "{}"
	}
	return "{" + s.Key() + "}"
}

// Interaction is one transition label (A, B) with A a set of consumed input
// signals and B a set of produced output signals. A transition
// (s, A, B, s') ∈ T carries exactly one interaction.
type Interaction struct {
	In  SignalSet
	Out SignalSet
}

// Interact is shorthand for constructing an Interaction from signal lists.
func Interact(in []Signal, out []Signal) Interaction {
	return Interaction{In: NewSignalSet(in...), Out: NewSignalSet(out...)}
}

// Key returns a canonical map key identifying the interaction.
func (x Interaction) Key() string { return x.In.Key() + "/" + x.Out.Key() }

// Equal reports whether both interactions have identical input and output
// sets.
func (x Interaction) Equal(other Interaction) bool {
	return x.In.Equal(other.In) && x.Out.Equal(other.Out)
}

// String renders the interaction as "A/B", e.g. "{ping}/{pong}".
func (x Interaction) String() string { return x.In.String() + "/" + x.Out.String() }

// InteractionUniverse enumerates the interaction labels considered possible
// for a component. Definitions 8 and 9 of the paper quantify over the full
// power sets ℘(I) × ℘(O); for larger alphabets this is intractable, and the
// statechart semantics of Mechatronic UML only ever produces steps carrying
// at most one message per direction. The universe therefore is a parameter
// of the chaotic closure construction; see Universe.
type InteractionUniverse interface {
	// Enumerate returns every interaction in the universe over the given
	// alphabets, in a deterministic order.
	Enumerate(inputs, outputs SignalSet) []Interaction
}

// UniverseKind selects a predefined interaction universe.
type UniverseKind int

const (
	// UniverseSingleton admits interactions with at most one input and at
	// most one output signal (including the empty step). This matches the
	// step semantics of real-time statecharts and is the default.
	UniverseSingleton UniverseKind = iota + 1
	// UniversePowerSet admits the full ℘(I) × ℘(O) as in Definition 8.
	// Exponential in the alphabet size; only sensible for small alphabets.
	UniversePowerSet
)

// Universe returns a predefined interaction universe.
func Universe(kind UniverseKind) InteractionUniverse {
	return universeKind(kind)
}

type universeKind UniverseKind

func (k universeKind) Enumerate(inputs, outputs SignalSet) []Interaction {
	switch UniverseKind(k) {
	case UniversePowerSet:
		ins := powerSet(inputs)
		outs := powerSet(outputs)
		labels := make([]Interaction, 0, len(ins)*len(outs))
		for _, a := range ins {
			for _, b := range outs {
				labels = append(labels, Interaction{In: a, Out: b})
			}
		}
		return labels
	default: // UniverseSingleton
		ins := []SignalSet{EmptySet}
		for _, sig := range inputs.Signals() {
			ins = append(ins, NewSignalSet(sig))
		}
		outs := []SignalSet{EmptySet}
		for _, sig := range outputs.Signals() {
			outs = append(outs, NewSignalSet(sig))
		}
		labels := make([]Interaction, 0, len(ins)*len(outs))
		for _, a := range ins {
			for _, b := range outs {
				labels = append(labels, Interaction{In: a, Out: b})
			}
		}
		return labels
	}
}

// FixedUniverse is an explicit, caller-supplied interaction universe.
type FixedUniverse []Interaction

// Enumerate returns the interactions of the fixed universe whose signals
// fall within the given alphabets.
func (u FixedUniverse) Enumerate(inputs, outputs SignalSet) []Interaction {
	labels := make([]Interaction, 0, len(u))
	for _, x := range u {
		if x.In.SubsetOf(inputs) && x.Out.SubsetOf(outputs) {
			labels = append(labels, x)
		}
	}
	return labels
}

func powerSet(set SignalSet) []SignalSet {
	signals := set.Signals()
	if len(signals) > 16 {
		// ℘ over more than 16 signals would exceed 65536 subsets; callers
		// needing this must supply a FixedUniverse instead.
		panic("automata: power set universe over more than 16 signals")
	}
	n := 1 << len(signals)
	subsets := make([]SignalSet, 0, n)
	for mask := 0; mask < n; mask++ {
		var members []Signal
		for i, sig := range signals {
			if mask&(1<<i) != 0 {
				members = append(members, sig)
			}
		}
		subsets = append(subsets, NewSignalSet(members...))
	}
	return subsets
}
