package automata

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Proposition is an atomic proposition used by the labeling function
// L : S → ℘(P) of Section 2.1. Constraints and invariants are interpreted
// over propositions.
type Proposition string

// ChaosProposition is the fresh proposition p' attached to the chaotic
// states s_∀ and s_δ by the chaotic closure. Per Section 2.7, rather than
// duplicating the chaos states for every proposition subset, formulas are
// weakened by replacing p with (p ∨ p') and ¬p with (¬p ∨ p').
const ChaosProposition Proposition = "χ"

// StateID identifies a state within one automaton. IDs are dense indices
// starting at 0 and are not stable across automata.
type StateID int

// NoState is returned by lookups that find no state.
const NoState StateID = -1

// Transition is one element (from, A, B, to) of the transition relation T.
type Transition struct {
	From  StateID
	Label Interaction
	To    StateID
}

// stateInfo stores per-state bookkeeping.
type stateInfo struct {
	name   string
	labels []Proposition // sorted
	// parts holds, for composed automata, the leaf state name of each
	// constituent leaf automaton; for leaf automata it is [name].
	parts []string
}

// leafInfo records the alphabet of one leaf automaton inside a composition,
// so that runs of a composed system can be attributed back to components.
type leafInfo struct {
	name    string
	inputs  SignalSet
	outputs SignalSet
}

// Automaton is a finite I/O automaton M = (S, I, O, T, L, Q) per
// Definitions 1 and Section 2.1 (labeling). Construct with New, then add
// states and transitions; the zero value is not usable.
//
// Automata are mutable while being built and should be treated as immutable
// once shared; none of the analysis functions in this package mutate their
// arguments.
type Automaton struct {
	name    string
	inputs  SignalSet
	outputs SignalSet
	states  []stateInfo
	index   map[string]StateID
	adj     [][]Transition
	initial []StateID
	leaves  []leafInfo
	// nameSeq tracks, per base name, the next "#n" suffix to try when
	// uniqueName must disambiguate a collision; avoids quadratic re-probing.
	nameSeq map[string]int
	// derived caches the CSR and flat-transition snapshots (csr.go);
	// structural mutations invalidate it.
	derived derivedViews
}

// New creates an empty automaton with the given name and alphabets. The
// name identifies the component in rendered runs (e.g. "shuttle1").
func New(name string, inputs, outputs SignalSet) *Automaton {
	a := &Automaton{
		name:    name,
		inputs:  inputs,
		outputs: outputs,
		index:   make(map[string]StateID),
	}
	a.leaves = []leafInfo{{name: name, inputs: inputs, outputs: outputs}}
	return a
}

// Name returns the component name of the automaton.
func (a *Automaton) Name() string { return a.name }

// Inputs returns the input alphabet I.
func (a *Automaton) Inputs() SignalSet { return a.inputs }

// Outputs returns the output alphabet O.
func (a *Automaton) Outputs() SignalSet { return a.outputs }

// NumStates returns |S|.
func (a *Automaton) NumStates() int { return len(a.states) }

// NumTransitions returns |T|.
func (a *Automaton) NumTransitions() int {
	n := 0
	for _, ts := range a.adj {
		n += len(ts)
	}
	return n
}

// AddState adds a state with the given name and labels and returns its ID.
// Adding a name twice returns an error.
func (a *Automaton) AddState(name string, labels ...Proposition) (StateID, error) {
	if _, ok := a.index[name]; ok {
		return NoState, fmt.Errorf("automata: duplicate state %q in %q", name, a.name)
	}
	id := StateID(len(a.states))
	sorted := make([]Proposition, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	a.states = append(a.states, stateInfo{name: name, labels: dedupeProps(sorted), parts: []string{name}})
	a.index[name] = id
	a.adj = append(a.adj, nil)
	a.invalidateDerived()
	return id, nil
}

// MustAddState is AddState but panics on error; intended for static model
// construction where a duplicate name is a programming error.
func (a *Automaton) MustAddState(name string, labels ...Proposition) StateID {
	id, err := a.AddState(name, labels...)
	if err != nil {
		panic(err)
	}
	return id
}

// State returns the ID of the named state, or NoState if absent.
func (a *Automaton) State(name string) StateID {
	if id, ok := a.index[name]; ok {
		return id
	}
	return NoState
}

// StateName returns the name of the given state.
func (a *Automaton) StateName(id StateID) string {
	return a.states[id].name
}

// StateParts returns, for a composed automaton, the leaf-state names of the
// given state in leaf order; for a leaf automaton, the single state name.
func (a *Automaton) StateParts(id StateID) []string {
	parts := make([]string, len(a.states[id].parts))
	copy(parts, a.states[id].parts)
	return parts
}

// StateByParts returns the state whose leaf-state provenance equals the
// given parts, or NoState. For leaf automata this is a lookup by name.
func (a *Automaton) StateByParts(parts []string) StateID {
	for id := range a.states {
		got := a.states[id].parts
		if len(got) != len(parts) {
			continue
		}
		match := true
		for i := range got {
			if got[i] != parts[i] {
				match = false
				break
			}
		}
		if match {
			return StateID(id)
		}
	}
	return NoState
}

// Labels returns the propositions labeling the given state, sorted.
func (a *Automaton) Labels(id StateID) []Proposition {
	labels := make([]Proposition, len(a.states[id].labels))
	copy(labels, a.states[id].labels)
	return labels
}

// HasLabel reports whether the state is labeled with the proposition.
func (a *Automaton) HasLabel(id StateID, p Proposition) bool {
	labels := a.states[id].labels
	i := sort.Search(len(labels), func(i int) bool { return labels[i] >= p })
	return i < len(labels) && labels[i] == p
}

// AddLabel attaches a proposition to a state.
func (a *Automaton) AddLabel(id StateID, p Proposition) {
	if a.HasLabel(id, p) {
		return
	}
	labels := append(a.states[id].labels, p)
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	a.states[id].labels = labels
}

// LabelStatesByName labels every state s with the proposition "name.s"
// where name is the automaton's component name. This is the convention used
// by pattern constraints such as "rearRole.convoy".
func (a *Automaton) LabelStatesByName() {
	for id := range a.states {
		a.AddLabel(StateID(id), Proposition(a.name+"."+a.states[id].name))
	}
}

// AllPropositions returns the sorted union of all propositions used in the
// labeling (the label set ℒ(M)).
func (a *Automaton) AllPropositions() []Proposition {
	seen := make(map[Proposition]struct{})
	for _, st := range a.states {
		for _, p := range st.labels {
			seen[p] = struct{}{}
		}
	}
	props := make([]Proposition, 0, len(seen))
	for p := range seen {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
	return props
}

// AddTransition adds (from, A, B, to) to T. The input set must be within I
// and the output set within O. Duplicate transitions are rejected.
func (a *Automaton) AddTransition(from StateID, label Interaction, to StateID) error {
	if err := a.checkState(from); err != nil {
		return err
	}
	if err := a.checkState(to); err != nil {
		return err
	}
	if !label.In.SubsetOf(a.inputs) {
		return fmt.Errorf("automata: %q: input set %v not within alphabet %v", a.name, label.In, a.inputs)
	}
	if !label.Out.SubsetOf(a.outputs) {
		return fmt.Errorf("automata: %q: output set %v not within alphabet %v", a.name, label.Out, a.outputs)
	}
	for _, t := range a.adj[from] {
		if t.To == to && t.Label.Equal(label) {
			return fmt.Errorf("automata: %q: duplicate transition %s -%s-> %s",
				a.name, a.states[from].name, label, a.states[to].name)
		}
	}
	a.adj[from] = append(a.adj[from], Transition{From: from, Label: label, To: to})
	a.invalidateDerived()
	return nil
}

// MustAddTransition is AddTransition but panics on error.
func (a *Automaton) MustAddTransition(from StateID, label Interaction, to StateID) {
	if err := a.AddTransition(from, label, to); err != nil {
		panic(err)
	}
}

// MarkInitial adds the state to the initial state set Q.
func (a *Automaton) MarkInitial(id StateID) {
	for _, q := range a.initial {
		if q == id {
			return
		}
	}
	a.initial = append(a.initial, id)
}

// Initial returns the initial state set Q.
func (a *Automaton) Initial() []StateID {
	out := make([]StateID, len(a.initial))
	copy(out, a.initial)
	return out
}

// TransitionsFrom returns the outgoing transitions of the state. The
// returned slice must not be mutated.
func (a *Automaton) TransitionsFrom(id StateID) []Transition {
	return a.adj[id]
}

// Transitions returns all transitions in a deterministic order. The
// returned slice is a fresh copy; iteration-only hot loops should use
// TransitionsSnapshot instead.
func (a *Automaton) Transitions() []Transition {
	snap := a.TransitionsSnapshot()
	all := make([]Transition, len(snap))
	copy(all, snap)
	return all
}

// Successors returns the target states reachable from the state under the
// given interaction.
func (a *Automaton) Successors(id StateID, label Interaction) []StateID {
	var succ []StateID
	for _, t := range a.adj[id] {
		if t.Label.Equal(label) {
			succ = append(succ, t.To)
		}
	}
	return succ
}

// EnabledInteractions returns the distinct interaction labels with at least
// one outgoing transition from the state, in a deterministic order.
func (a *Automaton) EnabledInteractions(id StateID) []Interaction {
	seen := make(map[string]struct{})
	var labels []Interaction
	for _, t := range a.adj[id] {
		key := t.Label.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		labels = append(labels, t.Label)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key() < labels[j].Key() })
	return labels
}

// IsDeadlock reports whether the state has no outgoing transitions (the δ
// condition of Section 2.1).
func (a *Automaton) IsDeadlock(id StateID) bool { return len(a.adj[id]) == 0 }

// Deterministic reports whether for every state and interaction (A, B)
// there is at most one successor (the determinism notion of Section 2.6).
func (a *Automaton) Deterministic() bool {
	for id := range a.states {
		seen := make(map[string]struct{}, len(a.adj[id]))
		for _, t := range a.adj[id] {
			key := t.Label.Key()
			if _, ok := seen[key]; ok {
				return false
			}
			seen[key] = struct{}{}
		}
	}
	return true
}

// Reachable returns the set of states reachable from Q, as a boolean slice
// indexed by StateID.
func (a *Automaton) Reachable() []bool {
	reached := make([]bool, len(a.states))
	queue := make([]StateID, 0, len(a.initial))
	for _, q := range a.initial {
		if !reached[q] {
			reached[q] = true
			queue = append(queue, q)
		}
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		for _, t := range a.adj[s] {
			if !reached[t.To] {
				reached[t.To] = true
				queue = append(queue, t.To)
			}
		}
	}
	return reached
}

// DeadlockReachable reports whether a deadlock state is reachable from Q
// (the M ⊨ δ condition), returning one reachable deadlock state if so.
func (a *Automaton) DeadlockReachable() (StateID, bool) {
	reached := a.Reachable()
	for id := range a.states {
		if reached[id] && a.IsDeadlock(StateID(id)) {
			return StateID(id), true
		}
	}
	return NoState, false
}

// Validate performs structural sanity checks: alphabets disjoint, at least
// one initial state, all transitions within bounds.
func (a *Automaton) Validate() error {
	if !a.inputs.Disjoint(a.outputs) {
		return fmt.Errorf("automata: %q: input and output alphabets overlap: %v",
			a.name, a.inputs.Intersect(a.outputs))
	}
	if len(a.initial) == 0 {
		return fmt.Errorf("automata: %q: no initial state", a.name)
	}
	return nil
}

// Trim returns a copy of the automaton restricted to the states reachable
// from its initial states.
func (a *Automaton) Trim(name string) *Automaton {
	reached := a.Reachable()
	b := New(name, a.inputs, a.outputs)
	b.leaves = append([]leafInfo(nil), a.leaves...)
	mapping := make([]StateID, len(a.states))
	for id, st := range a.states {
		if !reached[id] {
			mapping[id] = NoState
			continue
		}
		nid := b.MustAddState(st.name, st.labels...)
		b.states[nid].parts = append([]string(nil), st.parts...)
		mapping[id] = nid
	}
	for _, t := range a.TransitionsSnapshot() {
		if mapping[t.From] == NoState || mapping[t.To] == NoState {
			continue
		}
		b.MustAddTransition(mapping[t.From], t.Label, mapping[t.To])
	}
	for _, q := range a.initial {
		if mapping[q] != NoState {
			b.MarkInitial(mapping[q])
		}
	}
	return b
}

// Rename returns a copy of the automaton with signals renamed according to
// the mapping. Signals absent from the mapping are kept. Renaming must not
// merge distinct signals.
func (a *Automaton) Rename(name string, mapping map[Signal]Signal) (*Automaton, error) {
	ren := func(set SignalSet) SignalSet {
		signals := set.Signals()
		for i, sig := range signals {
			if to, ok := mapping[sig]; ok {
				signals[i] = to
			}
		}
		return NewSignalSet(signals...)
	}
	newIn, newOut := ren(a.inputs), ren(a.outputs)
	if newIn.Len() != a.inputs.Len() || newOut.Len() != a.outputs.Len() {
		return nil, errors.New("automata: rename merges distinct signals")
	}
	b := New(name, newIn, newOut)
	for id, st := range a.states {
		sid := b.MustAddState(st.name, st.labels...)
		if sid != StateID(id) {
			return nil, errors.New("automata: rename produced inconsistent state ids")
		}
	}
	for _, t := range a.TransitionsSnapshot() {
		label := Interaction{In: ren(t.Label.In), Out: ren(t.Label.Out)}
		if err := b.AddTransition(t.From, label, t.To); err != nil {
			return nil, err
		}
	}
	for _, q := range a.initial {
		b.MarkInitial(q)
	}
	return b, nil
}

// Clone returns a deep copy of the automaton under a new name.
func (a *Automaton) Clone(name string) *Automaton {
	b, err := a.Rename(name, nil)
	if err != nil {
		// Rename with a nil mapping cannot fail.
		panic(err)
	}
	return b
}

// String renders a compact summary.
func (a *Automaton) String() string {
	return fmt.Sprintf("%s(|S|=%d |T|=%d |I|=%d |O|=%d)",
		a.name, a.NumStates(), a.NumTransitions(), a.inputs.Len(), a.outputs.Len())
}

// Dot renders the automaton in Graphviz DOT format for inspection.
func (a *Automaton) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", a.name)
	initials := make(map[StateID]bool, len(a.initial))
	for _, q := range a.initial {
		initials[q] = true
	}
	for id, st := range a.states {
		shape := "circle"
		if initials[StateID(id)] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %d [label=%q shape=%s];\n", id, st.name, shape)
	}
	for _, t := range a.TransitionsSnapshot() {
		fmt.Fprintf(&b, "  %d -> %d [label=%q];\n", t.From, t.To, t.Label.String())
	}
	b.WriteString("}\n")
	return b.String()
}

func (a *Automaton) checkState(id StateID) error {
	if id < 0 || int(id) >= len(a.states) {
		return fmt.Errorf("automata: %q: state id %d out of range", a.name, id)
	}
	return nil
}

func dedupeProps(sorted []Proposition) []Proposition {
	if len(sorted) < 2 {
		return sorted
	}
	out := sorted[:1]
	for _, p := range sorted[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
