package automata

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestMemoCodecRoundTrip(t *testing.T) {
	s, r := senderReceiver(t)
	want := MustCompose("sys", s, r)

	data, err := MarshalMemo(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMemo(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := EquivalentReachable(got, want); err != nil {
		t.Fatalf("decoded automaton diverged: %v", err)
	}
	// EquivalentReachable already checks names, labels, parts, initial
	// order, and adjacency; the rest of the full-fidelity contract is the
	// leaf decomposition and the alphabets feeding the fingerprint.
	if len(got.leaves) != len(want.leaves) {
		t.Fatalf("leaves = %d, want %d", len(got.leaves), len(want.leaves))
	}
	for i := range want.leaves {
		w, g := want.leaves[i], got.leaves[i]
		if g.name != w.name || !g.inputs.Equal(w.inputs) || !g.outputs.Equal(w.outputs) {
			t.Fatalf("leaf %d = %q(%v,%v), want %q(%v,%v)",
				i, g.name, g.inputs, g.outputs, w.name, w.inputs, w.outputs)
		}
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint changed across the codec: %x vs %x", got.Fingerprint(), want.Fingerprint())
	}
}

func TestMemoCodecRejectsVersionMismatch(t *testing.T) {
	s, r := senderReceiver(t)
	data, err := MarshalMemo(MustCompose("sys", s, r))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["v"] = memoCodecVersion + 1
	bad, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalMemo(bad); err == nil || !strings.Contains(err.Error(), "codec version") {
		t.Fatalf("UnmarshalMemo(version+1) = %v, want codec version error", err)
	}
}

func TestMemoCodecRejectsMalformedDocs(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"not json", `{`},
		{"missing name", `{"v":1}`},
		{"row count mismatch", `{"v":1,"name":"x","states":[{"name":"a"}]}`},
		{"edge target out of range", `{"v":1,"name":"x","states":[{"name":"a"}],"adj":[[{"to":5}]]}`},
		{"duplicate state", `{"v":1,"name":"x","states":[{"name":"a"},{"name":"a"}],"adj":[[],[]]}`},
		{"empty state name", `{"v":1,"name":"x","states":[{"name":""}],"adj":[[]]}`},
		{"initial out of range", `{"v":1,"name":"x","states":[{"name":"a"}],"adj":[[]],"initial":[3]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalMemo([]byte(tc.doc)); err == nil {
				t.Fatalf("UnmarshalMemo(%s) succeeded, want error", tc.doc)
			}
		})
	}
}

// mapBackend is an in-memory MemoBackend double recording traffic.
type mapBackend struct {
	mu           sync.Mutex
	m            map[string][]byte
	loads, saves int
}

func newMapBackend() *mapBackend { return &mapBackend{m: make(map[string][]byte)} }

func (b *mapBackend) key(op string, x, y uint64) string {
	return fmt.Sprintf("%s/%x/%x", op, x, y)
}

func (b *mapBackend) Load(op string, x, y uint64) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	p, ok := b.m[b.key(op, x, y)]
	return p, ok
}

func (b *mapBackend) Save(op string, x, y uint64, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.saves++
	b.m[b.key(op, x, y)] = append([]byte(nil), payload...)
}

func TestMemoCacheBackendWriteThroughAndWarmStart(t *testing.T) {
	s, r := senderReceiver(t)
	want := MustCompose("sys", s, r)
	be := newMapBackend()

	// First process: cold cache, cold backend — miss, then write-through.
	memo1 := NewMemoCache(nil)
	memo1.SetBackend(be)
	if _, err := ComposeCtx(context.Background(), "sys", s, r, memo1); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := memo1.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("cold cache stats = %d hits / %d misses, want 0/1", hits, misses)
	}
	if be.saves != 1 {
		t.Fatalf("backend saves = %d, want 1 (write-through)", be.saves)
	}

	// Second process: fresh cache, warm backend — the memory miss falls
	// through, decodes, and counts as a cache hit.
	memo2 := NewMemoCache(nil)
	memo2.SetBackend(be)
	got, err := ComposeCtx(context.Background(), "sys", s, r, memo2)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := memo2.Stats(); hits != 1 || misses != 0 {
		t.Fatalf("warm-start stats = %d hits / %d misses, want 1/0", hits, misses)
	}
	if err := EquivalentReachable(got, want); err != nil {
		t.Fatalf("warm-started composition diverged from a fresh build: %v", err)
	}

	// The promoted entry serves later lookups from memory: no second load.
	loadsAfterWarmStart := be.loads
	if _, err := ComposeCtx(context.Background(), "sys", s, r, memo2); err != nil {
		t.Fatal(err)
	}
	if be.loads != loadsAfterWarmStart {
		t.Fatalf("backend loads grew %d -> %d after promotion; want in-memory hit", loadsAfterWarmStart, be.loads)
	}
}

func TestMemoCacheBackendUndecodablePayloadIsAMiss(t *testing.T) {
	s, r := senderReceiver(t)
	be := newMapBackend()
	be.Save("compose", s.Fingerprint(), r.Fingerprint(), []byte("not a codec payload"))

	memo := NewMemoCache(nil)
	memo.SetBackend(be)
	got, err := ComposeCtx(context.Background(), "sys", s, r, memo)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := memo.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 0/1 (bad payload must not hit)", hits, misses)
	}
	if err := EquivalentReachable(got, MustCompose("sys", s, r)); err != nil {
		t.Fatalf("recomputed composition diverged: %v", err)
	}
}
