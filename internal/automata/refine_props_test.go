package automata

import (
	"math/rand"
	"testing"
)

// TestRefinementReflexive: every automaton refines itself.
func TestRefinementReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 80; i++ {
		a := randomAutomaton(rng, "a", 4, 2)
		ok, cex, err := Refines(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("iteration %d: not reflexive; cex=%v", i, cex)
		}
	}
}

// TestRefinementTransitive: a ⊑ b ∧ b ⊑ c ⇒ a ⊑ c, on random chains of
// sub-automata.
func TestRefinementTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	checked := 0
	for i := 0; i < 200 && checked < 40; i++ {
		c := randomAutomaton(rng, "c", 4, 2)
		b := randomSubAutomaton(rng, "b", c)
		a := randomSubAutomaton(rng, "a", b)
		ab, _, err := Refines(a, b)
		if err != nil {
			t.Fatal(err)
		}
		bc, _, err := Refines(b, c)
		if err != nil {
			t.Fatal(err)
		}
		if !ab || !bc {
			continue
		}
		checked++
		ac, cex, err := Refines(a, c)
		if err != nil {
			t.Fatal(err)
		}
		if !ac {
			t.Fatalf("iteration %d: transitivity violated; cex=%v\na:\n%s\nb:\n%s\nc:\n%s",
				i, cex, a.Dot(), b.Dot(), c.Dot())
		}
	}
	if checked == 0 {
		t.Fatal("no refining chains generated")
	}
}

// TestLemma1RefinementPreservesDeadlockFreedom: M ⊑ M' ∧ M' ⊨ ¬δ ⇒ M ⊨ ¬δ.
func TestLemma1RefinementPreservesDeadlockFreedom(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	checked := 0
	for i := 0; i < 300 && checked < 50; i++ {
		spec := randomAutomaton(rng, "spec", 4, 2)
		if _, dead := spec.DeadlockReachable(); dead {
			continue
		}
		impl := randomSubAutomaton(rng, "impl", spec)
		ok, _, err := Refines(impl, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		checked++
		if _, dead := impl.DeadlockReachable(); dead {
			t.Fatalf("iteration %d: Lemma 1 violated: refinement of a deadlock-free spec deadlocks", i)
		}
	}
	if checked == 0 {
		t.Skip("no deadlock-free refining pairs generated")
	}
}

// TestMinimizePreservesEquivalenceRandom: minimization is behavior-
// preserving and idempotent on random deterministic machines.
func TestMinimizePreservesEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for i := 0; i < 60; i++ {
		a := randomDeterministicAutomaton(rng, "m", 5, 2)
		min, err := MinimizeDeterministic(a)
		if err != nil {
			t.Fatal(err)
		}
		trimmed := a.Trim("m")
		ok, cex, err := Refines(trimmed, min)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("iteration %d: minimized machine lost behavior: %v", i, cex)
		}
		ok, cex, err = Refines(min, trimmed)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("iteration %d: minimized machine gained behavior: %v", i, cex)
		}
		again, err := MinimizeDeterministic(min)
		if err != nil {
			t.Fatal(err)
		}
		if again.NumStates() != min.NumStates() {
			t.Fatalf("iteration %d: minimization not idempotent: %d -> %d",
				i, min.NumStates(), again.NumStates())
		}
	}
}
