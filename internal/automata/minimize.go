package automata

import (
	"fmt"
	"sort"
	"strings"
)

// MinimizeDeterministic computes the minimal function-deterministic
// machine equivalent to a (same outputs and same refusals on every input
// word from the initial state), via partition refinement. Unreachable
// states are dropped first. State labels participate in the initial
// partition, so observationally equal states with different labels are
// kept apart.
//
// Used to compare learned models (which carry implementation state names)
// against behavioral minima, and by the evaluation harness.
func MinimizeDeterministic(a *Automaton) (*Automaton, error) {
	if len(a.Initial()) != 1 {
		return nil, fmt.Errorf("automata: minimize: %q must have exactly one initial state", a.name)
	}
	trimmed := a.Trim(a.name)
	n := trimmed.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("automata: minimize: no reachable states")
	}
	// Function-determinism check.
	for i := 0; i < n; i++ {
		seen := make(map[string]struct{})
		for _, t := range trimmed.TransitionsFrom(StateID(i)) {
			key := t.Label.In.Key()
			if _, dup := seen[key]; dup {
				return nil, fmt.Errorf("automata: minimize: %q not function-deterministic at %q",
					trimmed.name, trimmed.StateName(StateID(i)))
			}
			seen[key] = struct{}{}
		}
	}

	// Initial partition: by local signature (labels + input→output map).
	block := make([]int, n)
	assign := func(sig func(StateID) string) int {
		classes := make(map[string]int)
		next := 0
		for i := 0; i < n; i++ {
			key := sig(StateID(i))
			id, ok := classes[key]
			if !ok {
				id = next
				next++
				classes[key] = id
			}
			block[i] = id
		}
		return next
	}

	count := assign(func(s StateID) string {
		var parts []string
		for _, p := range trimmed.Labels(s) {
			parts = append(parts, "L:"+string(p))
		}
		for _, t := range trimmed.TransitionsFrom(s) {
			parts = append(parts, "T:"+t.Label.In.Key()+"/"+t.Label.Out.Key())
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	})

	// Refine by successor blocks until stable.
	for {
		prev := make([]int, n)
		copy(prev, block)
		newCount := assign(func(s StateID) string {
			var parts []string
			parts = append(parts, fmt.Sprintf("B:%d", prev[s]))
			for _, t := range trimmed.TransitionsFrom(s) {
				parts = append(parts, fmt.Sprintf("S:%s->%d", t.Label.In.Key(), prev[t.To]))
			}
			sort.Strings(parts)
			return strings.Join(parts, ";")
		})
		if newCount == count {
			break
		}
		count = newCount
	}

	// Build the quotient: representative = lowest state id per block.
	repr := make([]StateID, count)
	for i := range repr {
		repr[i] = NoState
	}
	for i := 0; i < n; i++ {
		if repr[block[i]] == NoState {
			repr[block[i]] = StateID(i)
		}
	}
	min := New(trimmed.name, trimmed.inputs, trimmed.outputs)
	ids := make([]StateID, count)
	for b := 0; b < count; b++ {
		r := repr[b]
		ids[b] = min.MustAddState(trimmed.StateName(r), trimmed.Labels(r)...)
	}
	min.MarkInitial(ids[block[trimmed.Initial()[0]]])
	for b := 0; b < count; b++ {
		for _, t := range trimmed.TransitionsFrom(repr[b]) {
			// Quotient transitions may coincide; ignore duplicates.
			_ = min.AddTransition(ids[b], t.Label, ids[block[t.To]])
		}
	}
	return min, nil
}
