package automata

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSignalSetDedupes(t *testing.T) {
	s := NewSignalSet("b", "a", "b", "a", "c")
	if got, want := s.Len(), 3; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	if got, want := s.Key(), "a,b,c"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}

func TestSignalSetZeroValue(t *testing.T) {
	var s SignalSet
	if !s.IsEmpty() {
		t.Fatal("zero SignalSet should be empty")
	}
	if s.Contains("x") {
		t.Fatal("zero SignalSet should contain nothing")
	}
	if !s.Equal(EmptySet) {
		t.Fatal("zero SignalSet should equal EmptySet")
	}
	if got := s.String(); got != "{}" {
		t.Fatalf("String() = %q, want {}", got)
	}
}

func TestSignalSetOps(t *testing.T) {
	ab := NewSignalSet("a", "b")
	bc := NewSignalSet("b", "c")

	tests := []struct {
		name string
		got  SignalSet
		want SignalSet
	}{
		{"union", ab.Union(bc), NewSignalSet("a", "b", "c")},
		{"intersect", ab.Intersect(bc), NewSignalSet("b")},
		{"minus", ab.Minus(bc), NewSignalSet("a")},
		{"minus-reverse", bc.Minus(ab), NewSignalSet("c")},
		{"union-empty", ab.Union(EmptySet), ab},
		{"intersect-empty", ab.Intersect(EmptySet), EmptySet},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Equal(tt.want) {
				t.Fatalf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestSignalSetSubsetOf(t *testing.T) {
	tests := []struct {
		name string
		a, b SignalSet
		want bool
	}{
		{"empty-of-empty", EmptySet, EmptySet, true},
		{"empty-of-any", EmptySet, NewSignalSet("x"), true},
		{"proper", NewSignalSet("a"), NewSignalSet("a", "b"), true},
		{"equal", NewSignalSet("a", "b"), NewSignalSet("a", "b"), true},
		{"not", NewSignalSet("a", "c"), NewSignalSet("a", "b"), false},
		{"super", NewSignalSet("a", "b"), NewSignalSet("a"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.SubsetOf(tt.b); got != tt.want {
				t.Fatalf("SubsetOf = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignalSetDisjoint(t *testing.T) {
	if !NewSignalSet("a").Disjoint(NewSignalSet("b")) {
		t.Fatal("disjoint sets reported overlapping")
	}
	if NewSignalSet("a", "b").Disjoint(NewSignalSet("b", "c")) {
		t.Fatal("overlapping sets reported disjoint")
	}
}

func TestSignalSetSignalsIsCopy(t *testing.T) {
	s := NewSignalSet("a", "b")
	sigs := s.Signals()
	sigs[0] = "zzz"
	if !s.Contains("a") {
		t.Fatal("mutating Signals() result affected the set")
	}
}

// genSet is a helper generating random small signal sets for quick checks.
func genSet(r *rand.Rand) SignalSet {
	alphabet := []Signal{"a", "b", "c", "d", "e"}
	var members []Signal
	for _, s := range alphabet {
		if r.Intn(2) == 1 {
			members = append(members, s)
		}
	}
	return NewSignalSet(members...)
}

type setPair struct{ A, B SignalSet }

// Generate implements quick.Generator.
func (setPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(setPair{A: genSet(r), B: genSet(r)})
}

func TestSignalSetAlgebraicProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	t.Run("union-commutative", func(t *testing.T) {
		if err := quick.Check(func(p setPair) bool {
			return p.A.Union(p.B).Equal(p.B.Union(p.A))
		}, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("intersect-commutative", func(t *testing.T) {
		if err := quick.Check(func(p setPair) bool {
			return p.A.Intersect(p.B).Equal(p.B.Intersect(p.A))
		}, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("union-contains-both", func(t *testing.T) {
		if err := quick.Check(func(p setPair) bool {
			u := p.A.Union(p.B)
			return p.A.SubsetOf(u) && p.B.SubsetOf(u)
		}, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("intersect-within-both", func(t *testing.T) {
		if err := quick.Check(func(p setPair) bool {
			i := p.A.Intersect(p.B)
			return i.SubsetOf(p.A) && i.SubsetOf(p.B)
		}, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("minus-disjoint-from-subtrahend", func(t *testing.T) {
		if err := quick.Check(func(p setPair) bool {
			return p.A.Minus(p.B).Disjoint(p.B)
		}, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("partition", func(t *testing.T) {
		if err := quick.Check(func(p setPair) bool {
			// A = (A∖B) ∪ (A∩B)
			return p.A.Minus(p.B).Union(p.A.Intersect(p.B)).Equal(p.A)
		}, cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("key-injective", func(t *testing.T) {
		if err := quick.Check(func(p setPair) bool {
			return (p.A.Key() == p.B.Key()) == p.A.Equal(p.B)
		}, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInteractionKey(t *testing.T) {
	x := Interact([]Signal{"a"}, []Signal{"b"})
	y := Interact(nil, []Signal{"a", "b"})
	if x.Key() == y.Key() {
		t.Fatalf("distinct interactions share key %q", x.Key())
	}
	if !x.Equal(Interact([]Signal{"a"}, []Signal{"b"})) {
		t.Fatal("equal interactions reported unequal")
	}
}

func TestSingletonUniverse(t *testing.T) {
	u := Universe(UniverseSingleton)
	labels := u.Enumerate(NewSignalSet("i1", "i2"), NewSignalSet("o1"))
	// (∅, i1, i2) × (∅, o1) = 6 labels.
	if got, want := len(labels), 6; got != want {
		t.Fatalf("singleton universe size = %d, want %d", got, want)
	}
	for _, x := range labels {
		if x.In.Len() > 1 || x.Out.Len() > 1 {
			t.Fatalf("singleton universe produced %v", x)
		}
	}
}

func TestPowerSetUniverse(t *testing.T) {
	u := Universe(UniversePowerSet)
	labels := u.Enumerate(NewSignalSet("i1", "i2"), NewSignalSet("o1"))
	// 2^2 × 2^1 = 8 labels.
	if got, want := len(labels), 8; got != want {
		t.Fatalf("power set universe size = %d, want %d", got, want)
	}
	seen := make(map[string]bool)
	for _, x := range labels {
		if seen[x.Key()] {
			t.Fatalf("duplicate label %v", x)
		}
		seen[x.Key()] = true
	}
}

func TestFixedUniverseFiltersAlphabet(t *testing.T) {
	u := FixedUniverse{
		Interact([]Signal{"in"}, nil),
		Interact([]Signal{"other"}, nil),
		Interact(nil, []Signal{"out"}),
	}
	labels := u.Enumerate(NewSignalSet("in"), NewSignalSet("out"))
	if got, want := len(labels), 2; got != want {
		t.Fatalf("fixed universe size = %d, want %d", got, want)
	}
}
