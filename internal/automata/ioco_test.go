package automata

import (
	"context"
	"testing"
)

// buildIoco constructs a small machine over inputs {a,b} outputs {x,y}
// from a transition table.
type iocoTr struct {
	from, to string
	in, out  Signal // "" means the empty set
}

func buildIoco(t *testing.T, name string, init string, trs []iocoTr) *Automaton {
	t.Helper()
	a := New(name, NewSignalSet("a", "b"), NewSignalSet("x", "y"))
	ensure := func(n string) StateID {
		if id := a.State(n); id != NoState {
			return id
		}
		return a.MustAddState(n)
	}
	set := func(s Signal) SignalSet {
		if s == "" {
			return EmptySet
		}
		return NewSignalSet(s)
	}
	a.MarkInitial(ensure(init))
	for _, tr := range trs {
		a.MustAddTransition(ensure(tr.from), Interaction{In: set(tr.in), Out: set(tr.out)}, ensure(tr.to))
	}
	return a
}

func TestQuiescentAndSaturation(t *testing.T) {
	a := buildIoco(t, "m", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"}, // s0: input-waiting → quiescent
		{from: "s1", to: "s2", in: "", out: "y"},  // s1: spontaneous output → not quiescent
		{from: "s2", to: "s0", in: "", out: ""},   // s2: silent step → not quiescent
	})
	if !a.Quiescent(a.State("s0")) {
		t.Fatal("s0 should be quiescent (only input-consuming transitions)")
	}
	if a.Quiescent(a.State("s1")) {
		t.Fatal("s1 emits spontaneously; not quiescent")
	}
	if a.Quiescent(a.State("s2")) {
		t.Fatal("s2 has a silent step; not quiescent")
	}

	sat, added := SaturateQuiescence(a, "sat")
	if added != 1 {
		t.Fatalf("expected 1 δ loop added (s0), got %d", added)
	}
	if got := sat.Successors(sat.State("s0"), DeltaInteraction); len(got) != 1 || got[0] != sat.State("s0") {
		t.Fatalf("δ self-loop missing at s0: %v", got)
	}
	// Idempotence: a second saturation adds nothing.
	if _, again := SaturateQuiescence(sat, "sat2"); again != 0 {
		t.Fatalf("saturation not idempotent: second pass added %d loops", again)
	}
	// The original automaton is untouched.
	if len(a.Successors(a.State("s0"), DeltaInteraction)) != 0 {
		t.Fatal("SaturateQuiescence mutated its argument")
	}
}

func TestIocoRefinesReflexiveAndSubset(t *testing.T) {
	spec := buildIoco(t, "spec", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
		{from: "s0", to: "s2", in: "a", out: "y"}, // output race: out(s0, a) = {x, y}
		{from: "s1", to: "s0", in: "b", out: ""},
	})
	if ok, cex, err := IocoRefines(spec, spec); err != nil || !ok {
		t.Fatalf("ioco not reflexive: cex=%v err=%v", cex, err)
	}
	// An implementation resolving the race one way still conforms.
	impl := buildIoco(t, "impl", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
		{from: "s1", to: "s0", in: "b", out: ""},
	})
	if ok, cex, err := IocoRefines(impl, spec); err != nil || !ok {
		t.Fatalf("race-resolving impl should conform: cex=%v err=%v", cex, err)
	}
	// The converse fails: spec produces y where impl's out-set is {x}.
	if ok, cex, err := IocoRefines(spec, impl); err != nil || ok {
		t.Fatalf("spec ioco impl should fail (out-set escape), cex=%v err=%v", cex, err)
	} else if len(cex) == 0 {
		t.Fatal("expected a counterexample suspension trace")
	}
}

func TestIocoOutSetEscape(t *testing.T) {
	spec := buildIoco(t, "spec", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
	})
	bad := buildIoco(t, "bad", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "y"}, // y ∉ out(spec after ε under a)
	})
	ok, cex, err := IocoRefines(bad, spec)
	if err != nil || ok {
		t.Fatalf("escape not detected: ok=%v err=%v", ok, err)
	}
	want := Interaction{In: NewSignalSet("a"), Out: NewSignalSet("y")}
	if len(cex) != 1 || !cex[0].Equal(want) {
		t.Fatalf("counterexample = %v, want [%s]", cex, want)
	}
}

func TestIocoQuiescenceDistinguishes(t *testing.T) {
	// spec always answers a with x; impl may also drop the message
	// (lossy branch with empty output). The empty output after a is an
	// out-set escape even though no wrong message is ever sent.
	spec := buildIoco(t, "spec", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
	})
	lossy := buildIoco(t, "lossy", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
		{from: "s0", to: "s1", in: "a", out: ""},
	})
	if ok, _, err := IocoRefines(lossy, spec); err != nil || ok {
		t.Fatalf("lossy impl must not conform to a lossless spec (ok=%v err=%v)", ok, err)
	}
	// A spec that allows the loss accepts the impl.
	specLossy := buildIoco(t, "spec2", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
		{from: "s0", to: "s1", in: "a", out: ""},
	})
	if ok, cex, err := IocoRefines(lossy, specLossy); err != nil || !ok {
		t.Fatalf("lossy impl should conform to lossy spec: cex=%v err=%v", cex, err)
	}
	// Quiescence escape: spec emits spontaneously, impl stays silent.
	// After δ-saturation the impl's idle loop ∅/∅ is not in out(spec).
	chatty := buildIoco(t, "chatty", "s0", []iocoTr{
		{from: "s0", to: "s0", in: "", out: "x"},
	})
	quiet := buildIoco(t, "quiet", "s0", nil)
	if ok, cex, err := IocoRefines(quiet, chatty); err != nil || ok {
		t.Fatalf("quiescent impl vs always-emitting spec must fail (ok=%v cex=%v err=%v)", ok, cex, err)
	}
	// ...and input refusals stay unconstrained: a spec accepting b does
	// not force the impl to.
	specB := buildIoco(t, "specb", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
		{from: "s0", to: "s1", in: "b", out: "x"},
	})
	implA := buildIoco(t, "impla", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
	})
	if ok, cex, err := IocoRefines(implA, specB); err != nil || !ok {
		t.Fatalf("input refusal must be unconstrained by ioco: cex=%v err=%v", cex, err)
	}
}

func TestRefinesImpliesIocoOnDeterministic(t *testing.T) {
	// For deterministic impl/spec pairs, ⊑ (Definition 4) is strictly
	// stronger than ioco.
	m := buildIoco(t, "m", "s0", []iocoTr{
		{from: "s0", to: "s1", in: "a", out: "x"},
		{from: "s1", to: "s0", in: "b", out: "y"},
	})
	clone := m.Clone("m2")
	if !m.Deterministic() || !clone.Deterministic() {
		t.Fatal("test pair must be deterministic")
	}
	if ok, _, err := Refines(m, clone); err != nil || !ok {
		t.Fatalf("m ⊑ m failed: %v", err)
	}
	if ok, cex, err := IocoRefines(m, clone); err != nil || !ok {
		t.Fatalf("Refines ⇒ IocoRefines violated: cex=%v err=%v", cex, err)
	}
}

func TestLearnNondetMergesBranches(t *testing.T) {
	a := New("impl", NewSignalSet("a"), NewSignalSet("x", "y"))
	init := a.MustAddState("s0")
	a.MarkInitial(init)
	m := NewIncomplete(a)

	step := func(out Signal, to string) ObservedRun {
		return ObservedRun{Initial: "s0", Steps: []ObservedStep{{
			Label: Interaction{In: NewSignalSet("a"), Out: NewSignalSet(out)},
			To:    to,
		}}}
	}
	if _, err := m.LearnNondet(step("x", "s1"), nil); err != nil {
		t.Fatal(err)
	}
	// Learn would reject this second observation; LearnNondet merges it.
	// (Learn ensures the target state before detecting the conflict, so use
	// a distinct name for the merged branch to keep the delta assertion
	// about what *LearnNondet* added.)
	if _, err := m.Learn(step("x", "s2"), nil); err == nil {
		t.Fatal("Learn accepted a conflicting successor; determinism check lost")
	}
	delta, err := m.LearnNondet(step("x", "s9"), nil)
	if err != nil {
		t.Fatalf("LearnNondet rejected a divergent-but-allowed branch: %v", err)
	}
	if delta.States != 1 || delta.Transitions != 1 {
		t.Fatalf("merge delta = %+v, want 1 state + 1 transition", delta)
	}
	// Re-observing a merged branch adds nothing.
	delta, err = m.LearnNondet(step("x", "s1"), nil)
	if err != nil || !delta.Empty() {
		t.Fatalf("re-observation should be absorbed: delta=%+v err=%v", delta, err)
	}
	// Observations contradicting a refutation stay hard errors.
	blocked := Interaction{In: NewSignalSet("a"), Out: NewSignalSet("y")}
	if err := m.Block(init, blocked); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LearnNondet(step("y", "s3"), nil); err == nil {
		t.Fatal("observed interaction contradicting T̄ must fail")
	}
	if m.AllowsObservation("s0", blocked) {
		t.Fatal("AllowsObservation must reject a blocked interaction")
	}
	if !m.AllowsObservation("s0", Interaction{In: NewSignalSet("a"), Out: EmptySet}) {
		t.Fatal("unknown interactions are merge candidates, not escapes")
	}
	if !m.AllowsObservation("never-seen", blocked) {
		t.Fatal("unknown states are merge candidates")
	}
}

// The nondeterministic closure must keep chaos escapes on learned labels
// until they are settled: one observed successor of a duplicated label does
// not cover its unlearned siblings.
func TestChaoticClosureNondetSettling(t *testing.T) {
	a := New("m", NewSignalSet("a"), NewSignalSet("x"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MarkInitial(s0)
	label := Interaction{In: NewSignalSet("a"), Out: NewSignalSet("x")}
	a.MustAddTransition(s0, label, s1)
	m := NewIncomplete(a)

	escapes := func(c *Automaton) int {
		open := c.State("s0" + ChaosOpenSuffix)
		n := 0
		for _, tr := range c.TransitionsFrom(open) {
			if c.StateName(tr.To) == ChaosAllState {
				n++
			}
		}
		return n
	}

	det := ChaoticClosure(m, Universe(UniverseSingleton))
	if got := escapes(det); got != 3 {
		t.Fatalf("det closure: %d chaos escapes from s0·1, want 3 (label a/x is known)", got)
	}
	nd, err := ChaoticClosureNondetCtx(context.Background(), m, Universe(UniverseSingleton))
	if err != nil {
		t.Fatal(err)
	}
	if got := escapes(nd); got != 4 {
		t.Fatalf("nondet closure: %d chaos escapes from s0·1, want 4 (a/x learned but unsettled)", got)
	}

	if err := m.SettleLabel(s0, label); err != nil {
		t.Fatal(err)
	}
	if !m.IsSettled(s0, label) || m.NumSettled() != 1 {
		t.Fatal("settle not recorded")
	}
	nd2, err := ChaoticClosureNondetCtx(context.Background(), m, Universe(UniverseSingleton))
	if err != nil {
		t.Fatal(err)
	}
	if got := escapes(nd2); got != 3 {
		t.Fatalf("settled nondet closure: %d chaos escapes, want 3", got)
	}
	// Settling an unlearned label is a hard error, and the settled set is
	// part of the fingerprint (memo safety) and survives Clone.
	if err := m.SettleLabel(s1, label); err == nil {
		t.Fatal("settling an unlearned label must fail")
	}
	plain := NewIncomplete(a.Clone("m"))
	if plain.Fingerprint() == m.Fingerprint() {
		t.Fatal("settled set must distinguish fingerprints")
	}
	if c := m.Clone(); !c.IsSettled(c.Automaton().State("s0"), label) {
		t.Fatal("Clone must carry the settled set")
	}
}
