package automata

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// This file implements the incremental synthesis system: the chaotic
// closure chaos(M_l) and the product M_a^c ‖ chaos(M_l) maintained across
// learn steps by *patching* instead of rebuilding.
//
// The synthesis loop only ever grows the learned model — Learn adds
// states, transitions, and refusals, and never removes or retargets
// anything (learned initial states are fixed after the first state, and
// labels are assigned at state creation). Consequently the closure changes
// in a delta-local way:
//
//   - a new model state s adds the two copies (s,0) and (s,1);
//   - a new transition or refusal at model state f changes only the
//     adjacency of (f,0) and (f,1): the learned prefix grows, and chaos
//     edges for now-known interactions disappear from (f,1);
//   - the embedded chaos states s_∀, s_δ never change.
//
// The product is patched by recomputing, wholesale, the adjacency of every
// product pair whose closure part changed, discovering (and recursively
// processing) pairs that become newly reachable. Pairs that lose their last
// incoming edge become garbage: they are kept (CTL satisfaction at a state
// depends only on the states reachable *from* it, and verdicts and
// counterexamples are computed from initial states only, so stale
// unreachable states are invisible) and their adjacency stays current
// because every pair with a changed closure part is recomputed whether
// reachable or not. When garbage accumulates past a threshold the system
// is rebuilt from scratch.
//
// Invariant (checked by Verify and the differential tests): after every
// Apply, the reachable part of the patched closure and product is
// label-, name-, and adjacency-order-identical to a from-scratch
// ChaoticClosure / Compose, so synthesis trajectories — which depend on
// BFS tie-breaking over adjacency order — are unchanged.

// ErrIncrementalUnsupported is returned by NewIncrementalSystem when the
// combined alphabet exceeds the interner width; callers fall back to
// from-scratch construction.
var ErrIncrementalUnsupported = errors.New("automata: incremental system requires an internable alphabet (≤64 signals)")

// IncrementalSystem carries the chaotic closure of a learned model and its
// composition with a fixed context automaton across learn steps.
type IncrementalSystem struct {
	context  *Automaton
	model    *Incomplete
	universe InteractionUniverse

	// runCtx, when non-nil, bounds every construction the system performs
	// (initial build, rebuilds, patches): BFS loops poll it and abort with
	// its error. memo, when non-nil, memoizes closure rebuilds across
	// instances.
	runCtx context.Context
	memo   *MemoCache

	in        *Interner
	labels    []Interaction // universe enumeration over the model alphabets
	labelKeys []InternKey

	closure      *Automaton
	closed, open []StateID // model state -> closure copy IDs
	sAll, sDelta StateID

	ctxMask          [][]maskedTransition
	closMask         [][]maskedTransition
	ctxOut, closOut  SetMask
	numModelInitials int

	product   *Automaton
	pairs     [][2]StateID // product id -> (context state, closure state)
	pairID    map[[2]StateID]StateID
	byClosure [][]StateID // closure state -> product ids with that closure part
	reachable int         // reachable product states after the last build/patch

	patches, rebuilds int
	// lastPatched / lastReason record how the most recent Apply (or the
	// initial construction) obtained the system, for observability.
	lastPatched bool
	lastReason  string
}

// NewIncrementalSystem builds the closure and product from scratch and
// prepares the patching indexes. The context must be composable with the
// model's closure (same requirements as Compose). Returns
// ErrIncrementalUnsupported when the combined alphabet cannot be interned.
func NewIncrementalSystem(context *Automaton, model *Incomplete, universe InteractionUniverse) (*IncrementalSystem, error) {
	return NewIncrementalSystemWith(nil, context, model, universe, nil)
}

// NewIncrementalSystemWith is NewIncrementalSystem under a context and an
// optional memoization cache. The context (when non-nil) bounds the initial
// build and every later Apply; the cache memoizes closure rebuilds, which
// across a batch of instances sharing an initial model turns all but the
// first iteration-0 closure into a clone.
func NewIncrementalSystemWith(ctx context.Context, ctxAuto *Automaton, model *Incomplete, universe InteractionUniverse, memo *MemoCache) (*IncrementalSystem, error) {
	src := model.Automaton()
	if !ctxAuto.inputs.Disjoint(src.inputs) || !ctxAuto.outputs.Disjoint(src.outputs) {
		return nil, fmt.Errorf("automata: incremental system: context and model alphabets must be composable")
	}
	in, ok := NewInterner(ctxAuto.inputs, ctxAuto.outputs, src.inputs, src.outputs)
	if !ok {
		return nil, ErrIncrementalUnsupported
	}
	if ctx == context.Background() || ctx == context.TODO() {
		ctx = nil
	}
	ic := &IncrementalSystem{
		context:  ctxAuto,
		model:    model,
		universe: universe,
		runCtx:   ctx,
		memo:     memo,
		in:       in,
		labels:   universe.Enumerate(src.inputs, src.outputs),
	}
	ic.labelKeys = make([]InternKey, len(ic.labels))
	for i, x := range ic.labels {
		k, ok := in.Key(x)
		if !ok {
			return nil, ErrIncrementalUnsupported
		}
		ic.labelKeys[i] = k
	}
	ic.ctxMask, ok = maskAdjacency(ctxAuto, in)
	if !ok {
		return nil, ErrIncrementalUnsupported
	}
	ic.ctxOut, _ = in.Mask(ctxAuto.outputs)
	ic.closOut, _ = in.Mask(src.outputs)
	ic.lastReason = "initial-build"
	if err := ic.rebuild(); err != nil {
		return nil, err
	}
	return ic, nil
}

// LastDecision reports how the most recent Apply (or the initial
// construction) produced the system: whether it was patched in place, and
// the reason — "delta-patch" or "empty-delta" for patches; for rebuilds
// "initial-build", "initial-states-changed", "delta-state-mismatch",
// "non-dense-state-ids", or "garbage-threshold" (why patching was not
// possible).
func (ic *IncrementalSystem) LastDecision() (patched bool, reason string) {
	return ic.lastPatched, ic.lastReason
}

// System returns the maintained product automaton. It is mutated in place
// by Apply; callers must treat it as read-only and must not retain
// adjacency slices across Apply calls.
func (ic *IncrementalSystem) System() *Automaton { return ic.product }

// Closure returns the maintained chaotic closure (same caveats as System).
func (ic *IncrementalSystem) Closure() *Automaton { return ic.closure }

// ReachableStates returns the number of product states reachable from the
// initial states — the size a from-scratch composition would have.
func (ic *IncrementalSystem) ReachableStates() int { return ic.reachable }

// Counts returns how many Apply calls were served by patching and how many
// fell back to a full rebuild (the initial construction counts as one
// rebuild).
func (ic *IncrementalSystem) Counts() (patches, rebuilds int) {
	return ic.patches, ic.rebuilds
}

// rebuild constructs closure and product from scratch and reindexes.
func (ic *IncrementalSystem) rebuild() error {
	src := ic.model.Automaton()
	ctx := ic.runCtx
	if ctx == nil {
		ctx = context.Background()
	}
	closure, err := ChaoticClosureCtx(ctx, ic.model, ic.universe, ic.memo)
	if err != nil {
		return err
	}
	ic.closure = closure
	ic.closed = make([]StateID, src.NumStates())
	ic.open = make([]StateID, src.NumStates())
	for id, st := range src.states {
		ic.closed[id] = ic.closure.State(st.name + ChaosClosedSuffix)
		ic.open[id] = ic.closure.State(st.name + ChaosOpenSuffix)
		if ic.closed[id] == NoState || ic.open[id] == NoState {
			return fmt.Errorf("automata: incremental system: closure copy of %q not found", st.name)
		}
	}
	ic.sAll = ic.closure.State(ChaosAllState)
	ic.sDelta = ic.closure.State(ChaosDeltaState)
	ic.numModelInitials = len(src.initial)

	var ok bool
	ic.closMask, ok = maskAdjacency(ic.closure, ic.in)
	if !ok {
		return ErrIncrementalUnsupported
	}

	// Product BFS, replicating Compose's interned fast path while
	// recording the (context, closure) pair of every product state.
	ic.product = New("system", ic.context.inputs.Union(ic.closure.inputs),
		ic.context.outputs.Union(ic.closure.outputs))
	ic.product.leaves = append(append([]leafInfo(nil), ic.context.leaves...), ic.closure.leaves...)
	ic.pairs = ic.pairs[:0]
	ic.pairID = make(map[[2]StateID]StateID)
	ic.byClosure = make([][]StateID, ic.closure.NumStates())

	var queue []StateID
	for _, ql := range ic.context.initial {
		for _, qr := range ic.closure.initial {
			id, created := ic.pairFor(ql, qr)
			ic.product.MarkInitial(id)
			if created {
				queue = append(queue, id)
			}
		}
	}
	seen := make(map[pairDupKey]struct{})
	p := newCtxPoll(ic.runCtx)
	for head := 0; head < len(queue); head++ {
		if p.stop() {
			return p.err
		}
		queue = ic.computePairAdjacency(queue[head], queue, seen)
	}
	ic.reachable = ic.product.NumStates()
	ic.rebuilds++
	ic.lastPatched = false
	obsProductRebuilds.Add(1)
	return nil
}

// pairDupKey dedupes product transitions per source pair (keep-first, like
// AddTransition).
type pairDupKey struct {
	k  InternKey
	to StateID
}

// pairFor returns the product state for (c, z), creating it if absent.
func (ic *IncrementalSystem) pairFor(c, z StateID) (StateID, bool) {
	key := [2]StateID{c, z}
	if id, ok := ic.pairID[key]; ok {
		return id, false
	}
	id := addComposedPairState(ic.product, ic.context, ic.closure, c, z)
	ic.pairID[key] = id
	ic.pairs = append(ic.pairs, key)
	ic.byClosure[z] = append(ic.byClosure[z], id)
	return id, true
}

// computePairAdjacency recomputes the full adjacency of one product pair
// from the current context and closure adjacency, enqueueing pairs created
// along the way onto queue (returned possibly grown). The construction is
// the same double loop as Compose's fast path, so per-state transition
// order matches a from-scratch composition exactly.
func (ic *IncrementalSystem) computePairAdjacency(pid StateID, queue []StateID, seen map[pairDupKey]struct{}) []StateID {
	c, z := ic.pairs[pid][0], ic.pairs[pid][1]
	adj := ic.product.adj[pid][:0]
	clear(seen)
	for _, tl := range ic.ctxMask[c] {
		for _, tr := range ic.closMask[z] {
			if tl.in&ic.closOut != tr.out {
				continue
			}
			if tr.in&ic.ctxOut != tl.out {
				continue
			}
			k := InternKey{In: tl.in | tr.in, Out: tl.out | tr.out}
			to, created := ic.pairFor(tl.to, tr.to)
			if created {
				queue = append(queue, to)
			}
			dk := pairDupKey{k: k, to: to}
			if _, dup := seen[dk]; dup {
				continue
			}
			seen[dk] = struct{}{}
			adj = append(adj, Transition{From: pid, Label: ic.in.Label(k), To: to})
		}
	}
	ic.product.adj[pid] = adj
	return queue
}

// garbageRebuildSlack bounds retraction garbage: a from-scratch rebuild
// triggers when the product holds more than 2× its reachable size plus
// this slack in unreachable states.
const garbageRebuildSlack = 512

// Apply incorporates a learn delta into the closure and product. It
// returns true when the system was patched in place and false when the
// delta forced a from-scratch rebuild (the result is equivalent either
// way). The delta must describe exactly the model mutations since the
// previous Apply (or since construction).
func (ic *IncrementalSystem) Apply(delta LearnDelta) (bool, error) {
	if delta.Empty() {
		ic.lastPatched = true
		ic.lastReason = "empty-delta"
		return true, nil
	}
	src := ic.model.Automaton()
	// Patching relies on the loop's growth-only discipline; anything else
	// (initial-state changes, non-dense state additions, oversized garbage)
	// falls back to a rebuild. The named reason is surfaced via
	// LastDecision for the journal's product_rebuilt events.
	var rebuildReason string
	switch {
	case delta.Settled != 0:
		// Settled labels change which chaos escapes exist without adding
		// transitions; the patcher has no retraction for that. (The nondet
		// loop never builds an IncrementalSystem — this is a guard.)
		rebuildReason = "settled-labels"
	case len(src.initial) != ic.numModelInitials:
		rebuildReason = "initial-states-changed"
	case len(ic.closed)+len(delta.NewStates) != src.NumStates():
		rebuildReason = "delta-state-mismatch"
	case len(ic.pairs) > 2*ic.reachable+garbageRebuildSlack:
		rebuildReason = "garbage-threshold"
	default:
		for i, s := range delta.NewStates {
			if int(s) != len(ic.closed)+i {
				rebuildReason = "non-dense-state-ids"
				break
			}
		}
	}
	if rebuildReason != "" {
		ic.lastReason = rebuildReason
		err := ic.rebuild()
		return false, err
	}

	// 1. Closure copies for new model states. A from-scratch closure
	// orders them before s_∀/s_δ; appending changes only the internal IDs,
	// which no consumer depends on (names and adjacency order are what
	// determine trajectories).
	for _, s := range delta.NewStates {
		st := src.states[s]
		c0 := ic.closure.MustAddState(st.name+ChaosClosedSuffix, st.labels...)
		ic.closure.states[c0].parts = []string{st.name}
		c1 := ic.closure.MustAddState(st.name+ChaosOpenSuffix, st.labels...)
		ic.closure.states[c1].parts = []string{st.name}
		ic.closed = append(ic.closed, c0)
		ic.open = append(ic.open, c1)
		ic.closMask = append(ic.closMask, nil, nil)
		ic.byClosure = append(ic.byClosure, nil, nil)
	}

	// 2. Model states whose closure adjacency changed.
	changed := make(map[StateID]struct{})
	for _, s := range delta.NewStates {
		changed[s] = struct{}{}
	}
	for _, t := range delta.NewTransitions {
		changed[t.From] = struct{}{}
	}
	for _, b := range delta.NewBlocked {
		changed[b.State] = struct{}{}
	}
	order := make([]StateID, 0, len(changed))
	for s := range changed {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// 3. Recompute the closure adjacency of both copies of every changed
	// state, following ChaoticClosure's emission order exactly: the learned
	// prefix in model adjacency order, then (open copy only) chaos edges
	// for still-unknown interactions in universe order.
	known := make(map[InternKey]struct{})
	for _, f := range order {
		if err := ic.recomputeClosureState(f, known); err != nil {
			return false, err
		}
	}

	// 4. Recompute every product pair whose closure part changed, in
	// product ID order; newly discovered pairs are processed FIFO with the
	// same procedure, mirroring the from-scratch BFS.
	var affected []StateID
	for _, f := range order {
		affected = append(affected, ic.byClosure[ic.closed[f]]...)
		affected = append(affected, ic.byClosure[ic.open[f]]...)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	seen := make(map[pairDupKey]struct{})
	p := newCtxPoll(ic.runCtx)
	var queue []StateID
	var prev StateID = NoState
	for _, pid := range affected {
		if p.stop() {
			// The product is partially patched and unusable; the caller
			// aborts the whole run on a context error.
			return false, p.err
		}
		if pid == prev { // byClosure lists are disjoint per closure state, but be safe
			continue
		}
		prev = pid
		queue = ic.computePairAdjacency(pid, queue, seen)
	}
	for head := 0; head < len(queue); head++ {
		if p.stop() {
			return false, p.err
		}
		queue = ic.computePairAdjacency(queue[head], queue, seen)
	}

	// The closure and product adjacencies were rewritten in place above,
	// bypassing AddTransition; drop their cached CSR/flat snapshots.
	ic.closure.invalidateDerived()
	ic.product.invalidateDerived()

	ic.reachable = countReachable(ic.product)
	ic.patches++
	ic.lastPatched = true
	ic.lastReason = "delta-patch"
	obsProductPatches.Add(1)
	return true, nil
}

// recomputeClosureState rewrites the adjacency of (f,0) and (f,1) from the
// model's current state, and refreshes the masked rows.
func (ic *IncrementalSystem) recomputeClosureState(f StateID, known map[InternKey]struct{}) error {
	src := ic.model.Automaton()
	c0, c1 := ic.closed[f], ic.open[f]

	closedAdj := ic.closure.adj[c0][:0]
	openAdj := ic.closure.adj[c1][:0]
	clear(known)
	for _, t := range src.adj[f] {
		k, ok := ic.in.Key(t.Label)
		if !ok {
			return ErrIncrementalUnsupported
		}
		known[k] = struct{}{}
		closedAdj = append(closedAdj,
			Transition{From: c0, Label: t.Label, To: ic.closed[t.To]},
			Transition{From: c0, Label: t.Label, To: ic.open[t.To]})
		openAdj = append(openAdj,
			Transition{From: c1, Label: t.Label, To: ic.closed[t.To]},
			Transition{From: c1, Label: t.Label, To: ic.open[t.To]})
	}
	for _, b := range ic.model.blocked[f] {
		k, ok := ic.in.Key(b)
		if !ok {
			return ErrIncrementalUnsupported
		}
		known[k] = struct{}{}
	}
	for i, x := range ic.labels {
		if _, ok := known[ic.labelKeys[i]]; ok {
			continue
		}
		openAdj = append(openAdj,
			Transition{From: c1, Label: x, To: ic.sAll},
			Transition{From: c1, Label: x, To: ic.sDelta})
	}
	ic.closure.adj[c0] = closedAdj
	ic.closure.adj[c1] = openAdj

	for _, z := range [2]StateID{c0, c1} {
		row := make([]maskedTransition, len(ic.closure.adj[z]))
		for i, t := range ic.closure.adj[z] {
			k, ok := ic.in.Key(t.Label)
			if !ok {
				return ErrIncrementalUnsupported
			}
			row[i] = maskedTransition{in: k.In, out: k.Out, to: t.To}
		}
		ic.closMask[z] = row
	}
	return nil
}

// countReachable returns the number of states reachable from the initial
// states.
func countReachable(a *Automaton) int {
	reached := a.Reachable()
	n := 0
	for _, r := range reached {
		if r {
			n++
		}
	}
	return n
}

// Verify checks the patch invariant: the maintained closure and product
// must be reachable-equivalent to a from-scratch rebuild. Intended for
// differential tests and the synthesis loop's CheckIncremental mode.
func (ic *IncrementalSystem) Verify() error {
	closure := ChaoticClosure(ic.model, ic.universe)
	if got, want := ic.closure.NumStates(), closure.NumStates(); got != want {
		return fmt.Errorf("automata: incremental closure has %d states, rebuild has %d", got, want)
	}
	if err := EquivalentReachable(ic.closure, closure); err != nil {
		return fmt.Errorf("automata: incremental closure diverged from rebuild: %w", err)
	}
	sys, err := Compose(ic.product.name, ic.context, closure)
	if err != nil {
		return fmt.Errorf("automata: verify rebuild: %w", err)
	}
	if got, want := ic.reachable, sys.NumStates(); got != want {
		return fmt.Errorf("automata: incremental product has %d reachable states, rebuild has %d", got, want)
	}
	if err := EquivalentReachable(ic.product, sys); err != nil {
		return fmt.Errorf("automata: incremental product diverged from rebuild: %w", err)
	}
	return nil
}

// EquivalentReachable checks that the reachable parts of two automata are
// identical in every respect that analysis can observe: state names,
// labels, provenance parts, initial order, and per-state adjacency as an
// ordered sequence of (label, target) — i.e. an order-preserving
// isomorphism keyed by the initial states. Unreachable states (e.g.
// retraction garbage in a patched product) are ignored.
func EquivalentReachable(got, want *Automaton) error {
	if !got.inputs.Equal(want.inputs) || !got.outputs.Equal(want.outputs) {
		return fmt.Errorf("alphabets differ: (%v,%v) vs (%v,%v)", got.inputs, got.outputs, want.inputs, want.outputs)
	}
	if len(got.initial) != len(want.initial) {
		return fmt.Errorf("initial state counts differ: %d vs %d", len(got.initial), len(want.initial))
	}
	// corr maps want-state -> got-state; inv guards injectivity.
	corr := make(map[StateID]StateID)
	inv := make(map[StateID]StateID)
	var queue [][2]StateID // (want, got)
	match := func(w, g StateID) error {
		if mapped, ok := corr[w]; ok {
			if mapped != g {
				return fmt.Errorf("state %q corresponds to both %q and %q",
					want.states[w].name, got.states[mapped].name, got.states[g].name)
			}
			return nil
		}
		if back, ok := inv[g]; ok && back != w {
			return fmt.Errorf("state %q matched twice (by %q and %q)",
				got.states[g].name, want.states[back].name, want.states[w].name)
		}
		ws, gs := want.states[w], got.states[g]
		if ws.name != gs.name {
			return fmt.Errorf("state name mismatch: %q vs %q", gs.name, ws.name)
		}
		if !labelsEqual(ws.labels, gs.labels) {
			return fmt.Errorf("state %q labels differ: %v vs %v", ws.name, gs.labels, ws.labels)
		}
		if len(ws.parts) != len(gs.parts) {
			return fmt.Errorf("state %q parts differ: %v vs %v", ws.name, gs.parts, ws.parts)
		}
		for i := range ws.parts {
			if ws.parts[i] != gs.parts[i] {
				return fmt.Errorf("state %q parts differ: %v vs %v", ws.name, gs.parts, ws.parts)
			}
		}
		corr[w] = g
		inv[g] = w
		queue = append(queue, [2]StateID{w, g})
		return nil
	}
	for i := range want.initial {
		if err := match(want.initial[i], got.initial[i]); err != nil {
			return fmt.Errorf("initial %d: %w", i, err)
		}
	}
	for head := 0; head < len(queue); head++ {
		w, g := queue[head][0], queue[head][1]
		wa, ga := want.adj[w], got.adj[g]
		if len(wa) != len(ga) {
			return fmt.Errorf("state %q: %d vs %d outgoing transitions",
				want.states[w].name, len(ga), len(wa))
		}
		for i := range wa {
			if !wa[i].Label.Equal(ga[i].Label) {
				return fmt.Errorf("state %q transition %d: label %s vs %s",
					want.states[w].name, i, ga[i].Label, wa[i].Label)
			}
			if err := match(wa[i].To, ga[i].To); err != nil {
				return fmt.Errorf("state %q transition %d: %w", want.states[w].name, i, err)
			}
		}
	}
	return nil
}
