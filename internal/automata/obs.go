package automata

import "muml/internal/obs"

// Observability hooks for the hot algorithms of this package. The
// instruments live in package-level nil pointers so that the uninstrumented
// default costs a single predictable nil-check branch per update and
// allocates nothing (obs counters are nil-safe). EnableObservability is
// called once, before any composition or synthesis runs, from the cmd
// binaries and benchmarks; concurrent enable/disable during a run is not
// supported.
var (
	// Interner label-cache behaviour: a hit reuses a canonical SignalSet /
	// Interaction, a miss materializes one.
	obsInternHits   *obs.Counter
	obsInternMisses *obs.Counter

	// Closure and product construction effort.
	obsClosureBuilds  *obs.Counter
	obsComposedStates *obs.Counter

	// n-ary composition BFS frontier: level count, how many levels ran on
	// the parallel worker pool, and the peak frontier width.
	obsComposeLevels         *obs.Counter
	obsComposeParallelLevels *obs.Counter
	obsComposeFrontierPeak   *obs.MaxGauge

	// Incremental-system accounting (see IncrementalSystem.LastDecision for
	// the per-call reason).
	obsProductPatches  *obs.Counter
	obsProductRebuilds *obs.Counter

	// obsJournal, when set, receives compose_level events from ComposeAll.
	obsJournal *obs.Journal
)

// EnableObservability registers this package's counters in the registry
// and routes composition-frontier events to the journal. Either argument
// may be nil to enable only the other half. Call before running
// compositions; the hooks stay enabled until DisableObservability.
func EnableObservability(j *obs.Journal, r *obs.Registry) {
	obsInternHits = r.Counter("automata.intern_hits")
	obsInternMisses = r.Counter("automata.intern_misses")
	obsClosureBuilds = r.Counter("automata.closure_builds")
	obsComposedStates = r.Counter("automata.composed_states")
	obsComposeLevels = r.Counter("automata.compose_levels")
	obsComposeParallelLevels = r.Counter("automata.compose_parallel_levels")
	obsComposeFrontierPeak = r.MaxGauge("automata.compose_frontier_peak")
	obsProductPatches = r.Counter("automata.product_patches")
	obsProductRebuilds = r.Counter("automata.product_rebuilds")
	obsJournal = j
}

// DisableObservability detaches all hooks (the default state).
func DisableObservability() {
	obsInternHits = nil
	obsInternMisses = nil
	obsClosureBuilds = nil
	obsComposedStates = nil
	obsComposeLevels = nil
	obsComposeParallelLevels = nil
	obsComposeFrontierPeak = nil
	obsProductPatches = nil
	obsProductRebuilds = nil
	obsJournal = nil
}
