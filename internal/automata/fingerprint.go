package automata

import "sort"

// This file computes structural fingerprints of automata: 64-bit FNV-1a
// hashes over a canonical encoding of everything analysis can observe —
// name, alphabets, state names/labels/provenance, leaf decomposition,
// initial order, and per-state adjacency as an ordered (label, target)
// sequence. Two automata with equal fingerprints are, up to hash collision,
// interchangeable inputs for composition and closure construction, which is
// what makes them usable as memoization keys (see MemoCache): the
// constructions are deterministic functions of exactly the fingerprinted
// structure.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64 is an incremental FNV-1a hasher. Fields are length-prefixed (via
// sep markers) so that concatenation ambiguities cannot alias two distinct
// encodings.
type fnv64 uint64

func newFNV() fnv64 { return fnvOffset64 }

func (h *fnv64) byte(b byte) {
	*h = (*h ^ fnv64(b)) * fnvPrime64
}

func (h *fnv64) str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(0xFF) // field terminator; 0xFF never starts a UTF-8 rune in our keys
}

func (h *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v))
		v >>= 8
	}
}

func (h *fnv64) sum() uint64 { return uint64(*h) }

// Fingerprint returns a structural hash of the automaton covering name,
// alphabets, leaf decomposition, states (names, labels, provenance parts),
// initial states in order, and adjacency in order. It is stable across
// processes (no map iteration feeds the hash) and changes whenever any
// observable aspect of the automaton changes.
func (a *Automaton) Fingerprint() uint64 {
	h := newFNV()
	h.str(a.name)
	h.str(a.inputs.Key())
	h.str(a.outputs.Key())
	h.u64(uint64(len(a.leaves)))
	for _, l := range a.leaves {
		h.str(l.name)
		h.str(l.inputs.Key())
		h.str(l.outputs.Key())
	}
	h.u64(uint64(len(a.states)))
	for _, st := range a.states {
		h.str(st.name)
		h.u64(uint64(len(st.labels)))
		for _, p := range st.labels {
			h.str(string(p))
		}
		h.u64(uint64(len(st.parts)))
		for _, p := range st.parts {
			h.str(p)
		}
	}
	h.u64(uint64(len(a.initial)))
	for _, q := range a.initial {
		h.u64(uint64(q))
	}
	for _, row := range a.adj {
		h.u64(uint64(len(row)))
		for _, t := range row {
			h.str(t.Label.In.Key())
			h.str(t.Label.Out.Key())
			h.u64(uint64(t.To))
		}
	}
	return h.sum()
}

// Fingerprint returns a structural hash of the incomplete automaton: the
// underlying automaton's fingerprint extended with the blocked set T̄ and
// the settled-label set, each in canonical (state, interaction-key) order.
func (m *Incomplete) Fingerprint() uint64 {
	h := newFNV()
	h.u64(m.auto.Fingerprint())
	h.u64(uint64(m.NumBlocked()))
	for id := range m.auto.states {
		s := StateID(id)
		blocked := m.BlockedAt(s)
		if len(blocked) == 0 {
			continue
		}
		h.u64(uint64(s))
		for _, x := range blocked {
			h.str(x.Key())
		}
	}
	h.u64(uint64(m.NumSettled()))
	for id := range m.auto.states {
		set := m.settled[StateID(id)]
		if len(set) == 0 {
			continue
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h.u64(uint64(id))
		for _, k := range keys {
			h.str(k)
		}
	}
	return h.sum()
}

// UniverseFingerprint hashes the interaction labels the universe enumerates
// over the given alphabets, in enumeration order. Together with an
// Incomplete fingerprint it pins down a chaotic closure exactly (the
// closure is a deterministic function of the model and the enumerated
// labels).
func UniverseFingerprint(u InteractionUniverse, inputs, outputs SignalSet) uint64 {
	h := newFNV()
	labels := u.Enumerate(inputs, outputs)
	h.u64(uint64(len(labels)))
	for _, x := range labels {
		h.str(x.Key())
	}
	return h.sum()
}
