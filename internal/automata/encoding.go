package automata

import (
	"encoding/json"
	"fmt"
)

// This file provides a stable JSON interchange format for automata and
// incomplete automata, so that models can be stored, exchanged with other
// tools, and fed to the command-line frontends.

// automatonJSON is the serialized form of an Automaton.
type automatonJSON struct {
	Name        string           `json:"name"`
	Inputs      []Signal         `json:"inputs"`
	Outputs     []Signal         `json:"outputs"`
	States      []stateJSON      `json:"states"`
	Transitions []transitionJSON `json:"transitions"`
	Initial     []string         `json:"initial"`
}

type stateJSON struct {
	Name   string        `json:"name"`
	Labels []Proposition `json:"labels,omitempty"`
}

type transitionJSON struct {
	From string   `json:"from"`
	In   []Signal `json:"in,omitempty"`
	Out  []Signal `json:"out,omitempty"`
	To   string   `json:"to"`
}

type incompleteJSON struct {
	Automaton automatonJSON    `json:"automaton"`
	Blocked   []transitionJSON `json:"blocked,omitempty"` // To field unused
}

// EncodeJSON serializes the automaton. Leaf provenance of composed
// automata is not preserved; encode the parts individually if needed.
func EncodeJSON(a *Automaton) ([]byte, error) {
	return json.MarshalIndent(toJSON(a), "", "  ")
}

func toJSON(a *Automaton) automatonJSON {
	out := automatonJSON{
		Name:    a.name,
		Inputs:  a.inputs.Signals(),
		Outputs: a.outputs.Signals(),
	}
	for i := 0; i < a.NumStates(); i++ {
		s := StateID(i)
		out.States = append(out.States, stateJSON{Name: a.StateName(s), Labels: a.Labels(s)})
	}
	for _, t := range a.TransitionsSnapshot() {
		out.Transitions = append(out.Transitions, transitionJSON{
			From: a.StateName(t.From),
			In:   t.Label.In.Signals(),
			Out:  t.Label.Out.Signals(),
			To:   a.StateName(t.To),
		})
	}
	for _, q := range a.Initial() {
		out.Initial = append(out.Initial, a.StateName(q))
	}
	return out
}

// DecodeJSON deserializes an automaton and validates it.
func DecodeJSON(data []byte) (*Automaton, error) {
	var spec automatonJSON
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("automata: decode: %w", err)
	}
	return fromJSON(spec)
}

func fromJSON(spec automatonJSON) (*Automaton, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("automata: decode: missing automaton name")
	}
	a := New(spec.Name, NewSignalSet(spec.Inputs...), NewSignalSet(spec.Outputs...))
	for _, st := range spec.States {
		if _, err := a.AddState(st.Name, st.Labels...); err != nil {
			return nil, err
		}
	}
	for _, t := range spec.Transitions {
		from := a.State(t.From)
		to := a.State(t.To)
		if from == NoState || to == NoState {
			return nil, fmt.Errorf("automata: decode: transition references unknown state %q or %q", t.From, t.To)
		}
		label := Interaction{In: NewSignalSet(t.In...), Out: NewSignalSet(t.Out...)}
		if err := a.AddTransition(from, label, to); err != nil {
			return nil, err
		}
	}
	for _, name := range spec.Initial {
		id := a.State(name)
		if id == NoState {
			return nil, fmt.Errorf("automata: decode: unknown initial state %q", name)
		}
		a.MarkInitial(id)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// EncodeIncompleteJSON serializes an incomplete automaton including its
// blocked set T̄.
func EncodeIncompleteJSON(m *Incomplete) ([]byte, error) {
	spec := incompleteJSON{Automaton: toJSON(m.auto)}
	for i := 0; i < m.auto.NumStates(); i++ {
		s := StateID(i)
		for _, x := range m.BlockedAt(s) {
			spec.Blocked = append(spec.Blocked, transitionJSON{
				From: m.auto.StateName(s),
				In:   x.In.Signals(),
				Out:  x.Out.Signals(),
			})
		}
	}
	return json.MarshalIndent(spec, "", "  ")
}

// DecodeIncompleteJSON deserializes an incomplete automaton.
func DecodeIncompleteJSON(data []byte) (*Incomplete, error) {
	var spec incompleteJSON
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("automata: decode: %w", err)
	}
	a, err := fromJSON(spec.Automaton)
	if err != nil {
		return nil, err
	}
	m := NewIncomplete(a)
	for _, b := range spec.Blocked {
		s := a.State(b.From)
		if s == NoState {
			return nil, fmt.Errorf("automata: decode: blocked entry references unknown state %q", b.From)
		}
		label := Interaction{In: NewSignalSet(b.In...), Out: NewSignalSet(b.Out...)}
		if err := m.Block(s, label); err != nil {
			return nil, err
		}
	}
	return m, nil
}
