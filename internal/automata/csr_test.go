package automata

import (
	"math/rand"
	"testing"
)

// randomCSRAutomaton builds a random multi-edge automaton (parallel edges
// and deadlock states included) for cross-checking the CSR view against
// the adjacency lists.
func randomCSRAutomaton(t *testing.T, rng *rand.Rand, n int) *Automaton {
	t.Helper()
	a := New("csr", NewSignalSet("x"), NewSignalSet("y"))
	for i := 0; i < n; i++ {
		a.MustAddState(stateName(i))
	}
	labels := []Interaction{
		Interact([]Signal{"x"}, nil),
		Interact(nil, []Signal{"y"}),
		Interact([]Signal{"x"}, []Signal{"y"}),
	}
	for s := 0; s < n; s++ {
		if rng.Intn(5) == 0 {
			continue // deadlock state
		}
		deg := rng.Intn(4) + 1
		for i := 0; i < deg; i++ {
			// Duplicate (from,label,to) triples are rejected; skip them.
			_ = a.AddTransition(StateID(s), labels[rng.Intn(len(labels))], StateID(rng.Intn(n)))
		}
	}
	a.MarkInitial(0)
	return a
}

func stateName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}

func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randomCSRAutomaton(t, rng, 1+rng.Intn(40))
		c := a.CSR()
		if c.NumStates() != a.NumStates() {
			t.Fatalf("NumStates = %d, want %d", c.NumStates(), a.NumStates())
		}
		if c.NumEdges() != a.NumTransitions() {
			t.Fatalf("NumEdges = %d, want %d", c.NumEdges(), a.NumTransitions())
		}
		// Forward rows match adjacency order exactly.
		preds := make(map[int32][]int32)
		for s := 0; s < a.NumStates(); s++ {
			row := a.TransitionsFrom(StateID(s))
			if c.OutDegree(s) != len(row) {
				t.Fatalf("OutDegree(%d) = %d, want %d", s, c.OutDegree(s), len(row))
			}
			succ := c.Succ(s)
			for i, tr := range row {
				if succ[i] != int32(tr.To) {
					t.Fatalf("Succ(%d)[%d] = %d, want %d", s, i, succ[i], tr.To)
				}
				preds[int32(tr.To)] = append(preds[int32(tr.To)], int32(s))
			}
		}
		// Reverse rows hold each edge's source, grouped by target in
		// source-then-adjacency order (which is exactly the order the
		// forward sweep above appended them).
		for s := 0; s < a.NumStates(); s++ {
			got, want := c.Pred(s), preds[int32(s)]
			if len(got) != len(want) {
				t.Fatalf("len(Pred(%d)) = %d, want %d", s, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Pred(%d)[%d] = %d, want %d", s, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCSRCachedAndInvalidated(t *testing.T) {
	a := pingPong(t)
	c1 := a.CSR()
	if c2 := a.CSR(); c2 != c1 {
		t.Fatal("CSR not cached across calls")
	}
	s1 := a.TransitionsSnapshot()
	if s2 := a.TransitionsSnapshot(); &s2[0] != &s1[0] {
		t.Fatal("TransitionsSnapshot not cached across calls")
	}

	// A structural mutation must drop both snapshots.
	extra := a.MustAddState("extra")
	c3 := a.CSR()
	if c3 == c1 {
		t.Fatal("CSR not invalidated by AddState")
	}
	if c3.NumStates() != a.NumStates() {
		t.Fatalf("rebuilt CSR has %d states, want %d", c3.NumStates(), a.NumStates())
	}
	a.MustAddTransition(extra, Interact([]Signal{"ping"}, nil), extra)
	c4 := a.CSR()
	if c4 == c3 {
		t.Fatal("CSR not invalidated by AddTransition")
	}
	if got := c4.OutDegree(int(extra)); got != 1 {
		t.Fatalf("OutDegree(extra) = %d, want 1", got)
	}
	if len(a.TransitionsSnapshot()) != a.NumTransitions() {
		t.Fatal("TransitionsSnapshot stale after mutation")
	}
}

func TestCSRDoesNotPerturbFingerprintOrTransitions(t *testing.T) {
	a := pingPong(t)
	before := a.Fingerprint()
	wantTrans := a.Transitions()
	_ = a.CSR()
	_ = a.TransitionsSnapshot()
	if got := a.Fingerprint(); got != before {
		t.Fatalf("Fingerprint changed by CSR build: %x != %x", got, before)
	}
	gotTrans := a.Transitions()
	if len(gotTrans) != len(wantTrans) {
		t.Fatalf("Transitions length changed: %d != %d", len(gotTrans), len(wantTrans))
	}
	for i := range gotTrans {
		g, w := gotTrans[i], wantTrans[i]
		if g.From != w.From || g.To != w.To || !g.Label.Equal(w.Label) {
			t.Fatalf("Transitions[%d] changed: %+v != %+v", i, g, w)
		}
	}
	// Transitions must keep returning a fresh copy: callers historically
	// mutate the returned slice.
	gotTrans[0].To = NoState
	if a.TransitionsSnapshot()[0].To == NoState {
		t.Fatal("Transitions aliases the cached snapshot")
	}
}

func TestIncrementalApplyInvalidatesDerived(t *testing.T) {
	// The incremental system patches closure/product adjacency in place;
	// Apply must drop the cached CSR so later checks see the new edges.
	// Exercised indirectly: the differential CTL suite and incremental
	// tests run checkers over patched systems. Here we just confirm the
	// plumbing compiles against a trivial automaton.
	a := pingPong(t)
	c := a.CSR()
	a.invalidateDerived()
	if a.CSR() == c {
		t.Fatal("invalidateDerived did not drop the cached CSR")
	}
}
