package automata

import (
	"math/rand"
	"testing"
)

// chain builds a linear automaton s0 -x-> s1 -x-> ... over one input.
func chain(name string, n int, label Interaction) *Automaton {
	a := New(name, label.In, label.Out)
	prev := a.MustAddState("s0")
	a.MarkInitial(prev)
	for i := 1; i <= n; i++ {
		next := a.MustAddState("s" + string(rune('0'+i)))
		a.MustAddTransition(prev, label, next)
		prev = next
	}
	return a
}

func TestRefinesIdentity(t *testing.T) {
	x := Interact([]Signal{"x"}, nil)
	a := chain("a", 3, x)
	ok, cex, err := Refines(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("automaton does not refine itself; cex=%v", cex)
	}
	if !Simulates(a, a) {
		t.Fatal("automaton does not simulate itself")
	}
}

func TestRefinesPrefixFailsDeadlockCondition(t *testing.T) {
	// impl: shorter chain (stops earlier) — its end state refuses x, but
	// the spec at the corresponding point still offers x, so the refusal
	// cannot be matched: condition (2) fails.
	x := Interact([]Signal{"x"}, nil)
	impl := chain("impl", 1, x)
	spec := chain("spec", 3, x)
	ok, _, err := Refines(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("premature-stop implementation must not refine a longer spec (deadlock condition)")
	}
}

func TestRefinesExtraTraceFails(t *testing.T) {
	// impl has a trace (y) the spec lacks.
	x := Interact([]Signal{"x"}, nil)
	spec := chain("spec", 2, x)
	impl := New("impl", NewSignalSet("x", "y"), EmptySet)
	s0 := impl.MustAddState("s0")
	s1 := impl.MustAddState("s1")
	impl.MustAddTransition(s0, x, s1)
	impl.MustAddTransition(s0, Interact([]Signal{"y"}, nil), s1)
	impl.MarkInitial(s0)
	ok, cex, err := Refines(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("implementation with extra trace must not refine")
	}
	if len(cex) == 0 {
		t.Fatal("expected a counterexample trace")
	}
}

func TestRefinesLabelMismatchFails(t *testing.T) {
	x := Interact([]Signal{"x"}, nil)
	spec := chain("spec", 1, x)
	spec.AddLabel(spec.State("s1"), "safe")
	impl := chain("impl", 1, x)
	impl.AddLabel(impl.State("s1"), "unsafe")
	ok, _, err := Refines(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("label mismatch must break refinement")
	}
}

func TestRefinesChaosLabelWildcard(t *testing.T) {
	x := Interact([]Signal{"x"}, nil)
	impl := chain("impl", 1, x)
	impl.AddLabel(impl.State("s1"), "anything")
	spec := chain("spec", 1, x)
	spec.AddLabel(spec.State("s1"), ChaosProposition)
	// Spec's s1 must also absorb the refusal condition: give it a
	// self-blocking shape identical to impl's end (both refuse x) — they
	// do, since both chains end.
	ok, cex, err := Refines(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("χ-labeled spec state should match any labels; cex=%v", cex)
	}
}

func TestRefinesNondeterministicSpecNeedsSubsets(t *testing.T) {
	// Spec: s0 -x-> a (label p, continues with y), s0 -x-> b (label q, stops).
	// Impl: s0 -x-> m (label q, stops). The simulation check pairs m with
	// either a or b; b works here, so both checks succeed. Then make impl
	// continue with y from a q-labeled state: now only the *set* view shows
	// the trace x·y exists in spec (via a) while the label q after x exists
	// (via b) — but condition (1) after x·y requires a p-labeled... this
	// distinguishes exact refinement from naive per-state simulation.
	x := Interact([]Signal{"x"}, nil)
	y := Interact([]Signal{"y"}, nil)

	spec := New("spec", NewSignalSet("x", "y"), EmptySet)
	s0 := spec.MustAddState("s0")
	sa := spec.MustAddState("a", "p")
	sb := spec.MustAddState("b", "q")
	sc := spec.MustAddState("c", "p")
	spec.MustAddTransition(s0, x, sa)
	spec.MustAddTransition(s0, x, sb)
	spec.MustAddTransition(sa, y, sc)
	spec.MarkInitial(s0)

	impl := New("impl", NewSignalSet("x", "y"), EmptySet)
	i0 := impl.MustAddState("s0")
	im := impl.MustAddState("m", "q")
	impl.MustAddTransition(i0, x, im)
	impl.MarkInitial(i0)

	ok, _, err := Refines(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("impl stopping at q-labeled state refines (b matches labels and refusals)")
	}

	// Now impl continues from the q-labeled state with y, reaching a
	// q-labeled state. Trace x·y exists in the spec but only ends in a
	// p-labeled state, so refinement must fail.
	in := impl.MustAddState("n", "q")
	impl.MustAddTransition(im, y, in)
	ok, _, err = Refines(impl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("trace x·y ends q-labeled in impl but only p-labeled in spec; refinement must fail")
	}
}

func TestSimulatesSoundness(t *testing.T) {
	// Whenever Simulates holds on random automata, Refines must hold too.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		spec := randomAutomaton(rng, "spec", 4, 2)
		impl := randomSubAutomaton(rng, "impl", spec)
		if Simulates(impl, spec) {
			ok, cex, err := Refines(impl, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("iteration %d: Simulates=true but Refines=false (unsound); cex=%v\nimpl:\n%s\nspec:\n%s",
					i, cex, impl.Dot(), spec.Dot())
			}
		}
	}
}

func TestRefinesEmptyAutomatonErrors(t *testing.T) {
	a := New("a", EmptySet, EmptySet)
	if _, _, err := Refines(a, a); err == nil {
		t.Fatal("expected error for empty automata")
	}
}

// randomAutomaton generates a connected-ish random automaton over a small
// alphabet for property tests.
func randomAutomaton(rng *rand.Rand, name string, states, signals int) *Automaton {
	inputs := make([]Signal, 0, signals)
	for i := 0; i < signals; i++ {
		inputs = append(inputs, Signal(rune('a'+i)))
	}
	a := New(name, NewSignalSet(inputs...), EmptySet)
	for i := 0; i < states; i++ {
		a.MustAddState("q" + string(rune('0'+i)))
	}
	a.MarkInitial(0)
	labels := Universe(UniverseSingleton).Enumerate(a.Inputs(), a.Outputs())
	for s := 0; s < states; s++ {
		for _, x := range labels {
			if rng.Intn(3) == 0 {
				to := StateID(rng.Intn(states))
				_ = a.AddTransition(StateID(s), x, to)
			}
		}
	}
	return a
}

// randomSubAutomaton picks a random sub-structure of spec (same states,
// subset of transitions): any such automaton refines spec whenever its
// end states' refusals are matched, making Simulates plausible often
// enough to exercise the soundness property.
func randomSubAutomaton(rng *rand.Rand, name string, spec *Automaton) *Automaton {
	a := New(name, spec.Inputs(), spec.Outputs())
	for i := 0; i < spec.NumStates(); i++ {
		a.MustAddState(spec.StateName(StateID(i)), spec.Labels(StateID(i))...)
	}
	for _, q := range spec.Initial() {
		a.MarkInitial(q)
	}
	for _, t := range spec.Transitions() {
		if rng.Intn(4) != 0 {
			_ = a.AddTransition(t.From, t.Label, t.To)
		}
	}
	return a
}
