package automata

import (
	"fmt"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in, ok := NewInterner(NewSignalSet("a", "c"), NewSignalSet("b", "d"))
	if !ok {
		t.Fatal("interner refused a 4-signal alphabet")
	}
	sets := []SignalSet{
		EmptySet,
		NewSignalSet("a"),
		NewSignalSet("b", "c"),
		NewSignalSet("a", "b", "c", "d"),
	}
	for _, s := range sets {
		m, ok := in.Mask(s)
		if !ok {
			t.Fatalf("Mask(%v) rejected", s)
		}
		if got := in.Set(m); !got.Equal(s) {
			t.Fatalf("Set(Mask(%v)) = %v", s, got)
		}
	}
	// Decoded sets are canonical: repeated decodes share one value.
	m, _ := in.Mask(NewSignalSet("b", "c"))
	s1, s2 := in.Set(m), in.Set(m)
	if &s1.signals[0] != &s2.signals[0] {
		t.Fatal("repeated Set decode did not share the cached slice")
	}
}

func TestInternerMaskOperationsMatchSetOperations(t *testing.T) {
	a := NewSignalSet("x", "y")
	b := NewSignalSet("y", "z")
	in, ok := NewInterner(a, b)
	if !ok {
		t.Fatal("interner refused")
	}
	ma, _ := in.Mask(a)
	mb, _ := in.Mask(b)
	if got := in.Set(ma | mb); !got.Equal(a.Union(b)) {
		t.Fatalf("union mask = %v, want %v", got, a.Union(b))
	}
	if got := in.Set(ma & mb); !got.Equal(a.Intersect(b)) {
		t.Fatalf("intersect mask = %v, want %v", got, a.Intersect(b))
	}
	if got := in.Set(ma &^ mb); !got.Equal(a.Minus(b)) {
		t.Fatalf("minus mask = %v, want %v", got, a.Minus(b))
	}
}

func TestInternerRejectsForeignSignalsAndWideAlphabets(t *testing.T) {
	in, ok := NewInterner(NewSignalSet("a"))
	if !ok {
		t.Fatal("interner refused singleton alphabet")
	}
	if _, ok := in.Mask(NewSignalSet("zz")); ok {
		t.Fatal("Mask accepted a signal outside the alphabet")
	}
	if _, ok := in.Key(Interaction{In: NewSignalSet("zz")}); ok {
		t.Fatal("Key accepted a signal outside the alphabet")
	}

	var wide []Signal
	for i := 0; i < maxInternSignals+1; i++ {
		wide = append(wide, Signal(fmt.Sprintf("s%03d", i)))
	}
	if _, ok := NewInterner(NewSignalSet(wide...)); ok {
		t.Fatal("interner accepted a 65-signal alphabet")
	}
}

func TestInternerLabelCaching(t *testing.T) {
	in, _ := NewInterner(NewSignalSet("a"), NewSignalSet("b"))
	x := Interaction{In: NewSignalSet("a"), Out: NewSignalSet("b")}
	k, ok := in.Key(x)
	if !ok {
		t.Fatal("Key rejected in-alphabet interaction")
	}
	got := in.Label(k)
	if got.Key() != x.Key() {
		t.Fatalf("Label(Key(%v)) = %v", x, got)
	}
	// Distinct keys for distinct interactions.
	k2, _ := in.Key(Interaction{Out: NewSignalSet("b")})
	if k == k2 {
		t.Fatal("distinct interactions share an intern key")
	}
}

func TestMaskAdjacencyPreservesOrder(t *testing.T) {
	a := New("m", NewSignalSet("i"), NewSignalSet("o"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MarkInitial(s0)
	a.MustAddTransition(s0, Interaction{In: NewSignalSet("i")}, s1)
	a.MustAddTransition(s0, Interaction{Out: NewSignalSet("o")}, s0)
	a.MustAddTransition(s1, Interaction{In: NewSignalSet("i"), Out: NewSignalSet("o")}, s0)

	in, ok := NewInterner(a.Inputs(), a.Outputs())
	if !ok {
		t.Fatal("interner refused")
	}
	adj, ok := maskAdjacency(a, in)
	if !ok {
		t.Fatal("maskAdjacency rejected in-alphabet labels")
	}
	for s, ts := range adj {
		want := a.TransitionsFrom(StateID(s))
		if len(ts) != len(want) {
			t.Fatalf("state %d: %d masked transitions, want %d", s, len(ts), len(want))
		}
		for i, mt := range ts {
			k, _ := in.Key(want[i].Label)
			if mt.in != k.In || mt.out != k.Out || mt.to != want[i].To {
				t.Fatalf("state %d transition %d: masked %v, want %v", s, i, mt, want[i])
			}
		}
	}
}
