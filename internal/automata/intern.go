package automata

import "math/bits"

// This file implements interaction interning: a dense integer encoding of
// SignalSet and Interaction values over a fixed, small alphabet. The hot
// algorithms of this package (parallel composition, chaotic closure,
// refinement) spend most of their time in Union/Intersect/Equal over sorted
// []Signal slices; with interning those become single machine-word bitwise
// operations, and each distinct label is materialized as a SignalSet or
// Interaction at most once per interner.
//
// Interning is internal to the algorithms: the public API keeps the sorted
// immutable SignalSet as its boundary type, and every algorithm retains a
// slice-based fallback for alphabets wider than an interner supports.

// SetMask is the bitset encoding of a SignalSet under an Interner: bit i is
// set iff the i-th alphabet signal (in canonical sorted order) is a member.
type SetMask uint64

// maxInternSignals bounds the alphabet an Interner can encode. One machine
// word keeps every hot-path operation a single instruction; alphabets in
// this domain (ports of Mechatronic UML roles) have a handful of signals.
const maxInternSignals = 64

// InternKey identifies an Interaction under an Interner: the input and
// output set masks. Distinct interactions have distinct keys, so InternKey
// is a valid (and allocation-free) map key.
type InternKey struct {
	In, Out SetMask
}

// Interner maps signals of one fixed alphabet to bit positions, and caches
// the canonical SignalSet / Interaction value for every mask it has seen,
// so decoding a mask back to the boundary types costs one map hit after
// first use.
type Interner struct {
	signals []Signal       // canonical (sorted) alphabet; index = bit
	index   map[Signal]int // signal -> bit
	sets    map[SetMask]SignalSet
	labels  map[InternKey]Interaction
}

// NewInterner builds an interner over the union of the given alphabets.
// The second result is false when the union exceeds the supported width
// (64 signals); callers must then use the slice-based fallback paths.
func NewInterner(alphabets ...SignalSet) (*Interner, bool) {
	union := EmptySet
	for _, a := range alphabets {
		union = union.Union(a)
	}
	if union.Len() > maxInternSignals {
		return nil, false
	}
	in := &Interner{
		signals: union.signals,
		index:   make(map[Signal]int, union.Len()),
		sets:    make(map[SetMask]SignalSet),
		labels:  make(map[InternKey]Interaction),
	}
	for i, sig := range in.signals {
		in.index[sig] = i
	}
	// The empty set is by far the most common label component.
	in.sets[0] = EmptySet
	return in, true
}

// Mask encodes the set as a bitset. The second result is false when the set
// contains a signal outside the interner's alphabet.
func (in *Interner) Mask(s SignalSet) (SetMask, bool) {
	var m SetMask
	for _, sig := range s.signals {
		i, ok := in.index[sig]
		if !ok {
			return 0, false
		}
		m |= 1 << uint(i)
	}
	return m, true
}

// Key encodes the interaction. The second result is false when a signal
// falls outside the interner's alphabet.
func (in *Interner) Key(x Interaction) (InternKey, bool) {
	a, ok := in.Mask(x.In)
	if !ok {
		return InternKey{}, false
	}
	b, ok := in.Mask(x.Out)
	if !ok {
		return InternKey{}, false
	}
	return InternKey{In: a, Out: b}, true
}

// Set decodes a mask into its canonical SignalSet. Decoded sets are cached,
// so repeated decodes of the same mask share one allocation.
func (in *Interner) Set(m SetMask) SignalSet {
	if s, ok := in.sets[m]; ok {
		obsInternHits.Add(1)
		return s
	}
	obsInternMisses.Add(1)
	signals := make([]Signal, 0, bits.OnesCount64(uint64(m)))
	for rest := m; rest != 0; rest &= rest - 1 {
		signals = append(signals, in.signals[bits.TrailingZeros64(uint64(rest))])
	}
	s := SignalSet{signals: signals}
	in.sets[m] = s
	return s
}

// Label decodes a key into its canonical Interaction, cached like Set.
func (in *Interner) Label(k InternKey) Interaction {
	if x, ok := in.labels[k]; ok {
		obsInternHits.Add(1)
		return x
	}
	obsInternMisses.Add(1)
	x := Interaction{In: in.Set(k.In), Out: in.Set(k.Out)}
	in.labels[k] = x
	return x
}

// maskedTransition is a transition with its label pre-encoded, so BFS inner
// loops compare and combine labels with word operations only.
type maskedTransition struct {
	in, out SetMask
	to      StateID
}

// maskAdjacency encodes the automaton's adjacency lists under the interner.
// The per-state transition order of the result matches TransitionsFrom
// exactly, so algorithms switching between the fast and slow paths produce
// identical outputs. Returns false if any label falls outside the alphabet.
func maskAdjacency(a *Automaton, in *Interner) ([][]maskedTransition, bool) {
	adj := make([][]maskedTransition, len(a.adj))
	for s, ts := range a.adj {
		if len(ts) == 0 {
			continue
		}
		row := make([]maskedTransition, len(ts))
		for i, t := range ts {
			k, ok := in.Key(t.Label)
			if !ok {
				return nil, false
			}
			row[i] = maskedTransition{in: k.In, out: k.Out, to: t.To}
		}
		adj[s] = row
	}
	return adj, true
}
