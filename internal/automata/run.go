package automata

import (
	"fmt"
	"strings"
)

// Run is an execution sequence per Definition 2. A regular run alternates
// states and interactions s₁, A₁/B₁, s₂, …; a deadlock run ends with an
// interaction Aₙ/Bₙ that has no successor from the final state (for
// incomplete automata: that is explicitly blocked by T̄).
//
// Representation: States holds the visited states in order. For a regular
// run len(Steps) == len(States)-1; for a deadlock run the final step is the
// blocked interaction and len(Steps) == len(States).
type Run struct {
	States   []StateID
	Steps    []Interaction
	Deadlock bool
}

// Len returns the number of interactions in the run.
func (r Run) Len() int { return len(r.Steps) }

// Validate checks the structural invariant between States, Steps, and
// Deadlock.
func (r Run) Validate() error {
	want := len(r.States) - 1
	if r.Deadlock {
		want = len(r.States)
	}
	if len(r.Steps) != want {
		return fmt.Errorf("automata: malformed run: %d states, %d steps, deadlock=%v",
			len(r.States), len(r.Steps), r.Deadlock)
	}
	if len(r.States) == 0 {
		return fmt.Errorf("automata: empty run")
	}
	return nil
}

// Trace returns the observable projection π|I/O: the interaction sequence
// without states.
func (r Run) Trace() []Interaction {
	out := make([]Interaction, len(r.Steps))
	copy(out, r.Steps)
	return out
}

// StateSequence returns π|S: the visited states.
func (r Run) StateSequence() []StateID {
	out := make([]StateID, len(r.States))
	copy(out, r.States)
	return out
}

// RenderStates renders the run's states using the automaton's state names,
// one state (or composed state tuple) per line, with the interaction taken
// between consecutive states. This is the layout of Listing 1.1 in the
// paper.
func (r Run) RenderStates(a *Automaton) string {
	var b strings.Builder
	for i, s := range r.States {
		parts := a.StateParts(s)
		names := make([]string, len(parts))
		for j, p := range parts {
			prefix := a.name
			if len(a.leaves) == len(parts) {
				prefix = a.leaves[j].name
			}
			names[j] = prefix + "." + p
		}
		b.WriteString(strings.Join(names, ", "))
		b.WriteByte('\n')
		if i < len(r.Steps) {
			b.WriteString("  " + r.Steps[i].String() + "\n")
		}
	}
	if r.Deadlock {
		b.WriteString("  " + r.Steps[len(r.Steps)-1].String() + "\n")
		b.WriteString("  <deadlock>\n")
	}
	return b.String()
}

// IsRunOf verifies that the run is a regular or deadlock run of the
// automaton: consecutive states connected by transitions carrying the given
// interactions, starting in an initial state, and — for deadlock runs —
// the final interaction having no successor.
func (r Run) IsRunOf(a *Automaton) error {
	if err := r.Validate(); err != nil {
		return err
	}
	isInitial := false
	for _, q := range a.Initial() {
		if q == r.States[0] {
			isInitial = true
			break
		}
	}
	if !isInitial {
		return fmt.Errorf("automata: run does not start in an initial state of %q", a.name)
	}
	regular := len(r.States) - 1
	for i := 0; i < regular; i++ {
		if !hasTransition(a, r.States[i], r.Steps[i], r.States[i+1]) {
			return fmt.Errorf("automata: run step %d: no transition %s -%s-> %s in %q",
				i, a.StateName(r.States[i]), r.Steps[i], a.StateName(r.States[i+1]), a.name)
		}
	}
	if r.Deadlock {
		last := r.States[len(r.States)-1]
		blocked := r.Steps[len(r.Steps)-1]
		if len(a.Successors(last, blocked)) > 0 {
			return fmt.Errorf("automata: run claims deadlock at %s on %s, but a successor exists",
				a.StateName(last), blocked)
		}
	}
	return nil
}

func hasTransition(a *Automaton, from StateID, label Interaction, to StateID) bool {
	for _, t := range a.TransitionsFrom(from) {
		if t.To == to && t.Label.Equal(label) {
			return true
		}
	}
	return false
}
