package automata

import (
	"fmt"
	"sort"
	"strings"
)

// Incomplete is an incomplete automaton M = (S, I, O, T, T̄, Q) per
// Definition 6: an automaton plus the set T̄ ⊆ S × ℘(I) × ℘(O) of known
// *not supported* interactions. T and T̄ must be consistent: no interaction
// is both enabled by T and blocked by T̄.
//
// In an incomplete automaton a deadlock run is only assumed when the final
// interaction is explicitly in T̄ (Definition 7) — absence of a transition
// leaves the interaction's status unknown.
type Incomplete struct {
	auto    *Automaton
	blocked map[StateID]map[string]Interaction // state -> interaction key -> interaction
	// settled marks learned labels whose successor set at the state is
	// certified complete (state -> interaction key). Only the
	// nondeterministic loop populates it: for a deterministic
	// implementation one learned transition per label is already the whole
	// story, while a nondeterministic one may hide duplicate successors
	// behind a label until the fair-visit budget has cycled them all.
	settled map[StateID]map[string]struct{}
}

// NewIncomplete wraps an automaton as an incomplete automaton with an empty
// blocked set T̄.
func NewIncomplete(a *Automaton) *Incomplete {
	return &Incomplete{
		auto:    a,
		blocked: make(map[StateID]map[string]Interaction),
		settled: make(map[StateID]map[string]struct{}),
	}
}

// Automaton returns the underlying (S, I, O, T, Q) part. Callers must not
// mutate it in ways that violate consistency with T̄.
func (m *Incomplete) Automaton() *Automaton { return m.auto }

// Block adds (s, A, B) to T̄. It is an error if T already enables the
// interaction at s (consistency requirement of Definition 6).
func (m *Incomplete) Block(s StateID, label Interaction) error {
	if err := m.auto.checkState(s); err != nil {
		return err
	}
	if len(m.auto.Successors(s, label)) > 0 {
		return fmt.Errorf("automata: cannot block %s at %q: transition exists",
			label, m.auto.StateName(s))
	}
	set, ok := m.blocked[s]
	if !ok {
		set = make(map[string]Interaction)
		m.blocked[s] = set
	}
	set[label.Key()] = label
	return nil
}

// IsBlocked reports whether (s, A, B) ∈ T̄.
func (m *Incomplete) IsBlocked(s StateID, label Interaction) bool {
	set, ok := m.blocked[s]
	if !ok {
		return false
	}
	_, ok = set[label.Key()]
	return ok
}

// BlockedAt returns the interactions blocked at the state, in canonical
// order.
func (m *Incomplete) BlockedAt(s StateID) []Interaction {
	set := m.blocked[s]
	labels := make([]Interaction, 0, len(set))
	for _, x := range set {
		labels = append(labels, x)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key() < labels[j].Key() })
	return labels
}

// NumBlocked returns |T̄|.
func (m *Incomplete) NumBlocked() int {
	n := 0
	for _, set := range m.blocked {
		n += len(set)
	}
	return n
}

// SettleLabel certifies that the successor set of (s, A, B) is complete:
// every transition the implementation can take at s under the interaction
// is already in T. It is an error to settle a label with no learned
// transition — completeness of an empty successor set is a refusal and
// belongs in T̄ via Block.
func (m *Incomplete) SettleLabel(s StateID, label Interaction) error {
	if err := m.auto.checkState(s); err != nil {
		return err
	}
	if len(m.auto.Successors(s, label)) == 0 {
		return fmt.Errorf("automata: cannot settle %s at %q: no transition learned",
			label, m.auto.StateName(s))
	}
	set, ok := m.settled[s]
	if !ok {
		set = make(map[string]struct{})
		m.settled[s] = set
	}
	set[label.Key()] = struct{}{}
	return nil
}

// IsSettled reports whether the successor set of (s, A, B) has been
// certified complete via SettleLabel.
func (m *Incomplete) IsSettled(s StateID, label Interaction) bool {
	set, ok := m.settled[s]
	if !ok {
		return false
	}
	_, ok = set[label.Key()]
	return ok
}

// NumSettled returns the number of settled (state, interaction) pairs.
func (m *Incomplete) NumSettled() int {
	n := 0
	for _, set := range m.settled {
		n += len(set)
	}
	return n
}

// Consistent verifies the Definition 6 requirement that no interaction is
// both in T and T̄.
func (m *Incomplete) Consistent() error {
	for s, set := range m.blocked {
		for _, x := range set {
			if len(m.auto.Successors(s, x)) > 0 {
				return fmt.Errorf("automata: inconsistent incomplete automaton: %s enabled and blocked at %q",
					x, m.auto.StateName(s))
			}
		}
	}
	return nil
}

// Deterministic reports determinism per Section 2.6: for any s, A, B at
// most one element in T ∪ T̄.
func (m *Incomplete) Deterministic() bool {
	if !m.auto.Deterministic() {
		return false
	}
	// T and T̄ are disjoint by consistency, so determinism of T plus
	// uniqueness of map keys in T̄ suffices.
	return m.Consistent() == nil
}

// Complete reports whether the automaton is complete with respect to the
// given interaction universe: every interaction at every state is either in
// T or in T̄ (Section 2.6).
func (m *Incomplete) Complete(universe InteractionUniverse) bool {
	labels := universe.Enumerate(m.auto.inputs, m.auto.outputs)
	for id := range m.auto.states {
		s := StateID(id)
		for _, x := range labels {
			if len(m.auto.Successors(s, x)) == 0 && !m.IsBlocked(s, x) {
				return false
			}
		}
	}
	return true
}

// Unknown returns the interactions at the state that are neither enabled
// nor blocked — the frontier that the chaotic closure over-approximates.
func (m *Incomplete) Unknown(s StateID, universe InteractionUniverse) []Interaction {
	var unknown []Interaction
	for _, x := range universe.Enumerate(m.auto.inputs, m.auto.outputs) {
		if len(m.auto.Successors(s, x)) == 0 && !m.IsBlocked(s, x) {
			unknown = append(unknown, x)
		}
	}
	return unknown
}

// Clone returns a deep copy of the incomplete automaton.
func (m *Incomplete) Clone() *Incomplete {
	c := NewIncomplete(m.auto.Clone(m.auto.name))
	for s, set := range m.blocked {
		dst := make(map[string]Interaction, len(set))
		for k, v := range set {
			dst[k] = v
		}
		c.blocked[s] = dst
	}
	for s, set := range m.settled {
		dst := make(map[string]struct{}, len(set))
		for k := range set {
			dst[k] = struct{}{}
		}
		c.settled[s] = dst
	}
	return c
}

// Dot renders the incomplete automaton in Graphviz DOT format: learned
// transitions as solid edges and each blocked interaction of T̄ as a
// dashed edge into a shared refusal node.
func (m *Incomplete) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", m.auto.name)
	initials := make(map[StateID]bool)
	for _, q := range m.auto.Initial() {
		initials[q] = true
	}
	for id, st := range m.auto.states {
		shape := "circle"
		if initials[StateID(id)] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %d [label=%q shape=%s];\n", id, st.name, shape)
	}
	if m.NumBlocked() > 0 {
		b.WriteString("  refused [label=\"T̄\" shape=box style=dashed];\n")
	}
	for _, t := range m.auto.TransitionsSnapshot() {
		fmt.Fprintf(&b, "  %d -> %d [label=%q];\n", t.From, t.To, t.Label.String())
	}
	for id := range m.auto.states {
		for _, x := range m.BlockedAt(StateID(id)) {
			fmt.Fprintf(&b, "  %d -> refused [label=%q style=dashed];\n", id, x.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// IsRunOf verifies a run against the incomplete automaton: regular steps
// must follow T; a deadlock run's final interaction must be in T̄
// (Definition 7).
func (m *Incomplete) IsRunOf(r Run) error {
	if !r.Deadlock {
		return r.IsRunOf(m.auto)
	}
	regular := Run{States: r.States, Steps: r.Steps[:len(r.Steps)-1]}
	if err := regular.IsRunOf(m.auto); err != nil {
		return err
	}
	last := r.States[len(r.States)-1]
	blockedLabel := r.Steps[len(r.Steps)-1]
	if !m.IsBlocked(last, blockedLabel) {
		return fmt.Errorf("automata: deadlock run's final interaction %s not in T̄ at %q",
			blockedLabel, m.auto.StateName(last))
	}
	return nil
}
