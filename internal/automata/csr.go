package automata

// This file provides the struct-of-arrays CSR (compressed sparse row) view
// of an automaton's transition structure that the bitset CTL core walks.
// The per-state [][]Transition adjacency is pointer-chasing-hostile in
// fixpoint loops: every state visit loads a slice header and every edge a
// 3-word Transition. The CSR snapshot packs the same structure into four
// flat int32 arrays — forward and reverse adjacency as offset+target
// arrays — so pre-image scans walk contiguous memory and out-degrees are
// O(1) subtractions.
//
// The snapshot (and the flat transition snapshot next to it) is built
// lazily on first use and cached on the automaton; any structural
// mutation (AddState, AddTransition, or the in-place adjacency rewrites
// of the incremental system) invalidates it. Building the view is
// read-only: it never changes the automaton's fingerprint.

import "sync"

// CSR is an immutable struct-of-arrays snapshot of the transition relation:
// forward adjacency (targets grouped by source, in adjacency order) and
// reverse adjacency (sources grouped by target, in source-then-adjacency
// order). State IDs are int32 — automata here are bounded far below 2³¹
// states — which halves the cache traffic of fixpoint scans.
type CSR struct {
	n       int
	fwdOff  []int32 // len n+1; forward row s is fwdTo[fwdOff[s]:fwdOff[s+1]]
	fwdTo   []int32 // len m; transition targets
	revOff  []int32 // len n+1; reverse row s is revFrom[revOff[s]:revOff[s+1]]
	revFrom []int32 // len m; transition sources
}

// NumStates returns the number of states the snapshot was built over.
func (c *CSR) NumStates() int { return c.n }

// NumEdges returns the number of transitions in the snapshot.
func (c *CSR) NumEdges() int { return len(c.fwdTo) }

// OutDegree returns the number of outgoing transitions of the state.
func (c *CSR) OutDegree(s int) int { return int(c.fwdOff[s+1] - c.fwdOff[s]) }

// Succ returns the successor states of s in adjacency order (shared
// backing array; must not be mutated). Parallel edges appear once per
// transition.
func (c *CSR) Succ(s int) []int32 { return c.fwdTo[c.fwdOff[s]:c.fwdOff[s+1]] }

// Pred returns the predecessor states of s (shared backing array; must
// not be mutated). A predecessor appears once per transition into s.
func (c *CSR) Pred(s int) []int32 { return c.revFrom[c.revOff[s]:c.revOff[s+1]] }

// derivedViews holds the lazily built read-only snapshots of an
// automaton's structure. The mutex only guards cache construction;
// mutating an automaton concurrently with readers is already unsupported.
type derivedViews struct {
	mu   sync.Mutex
	csr  *CSR
	flat []Transition
}

// invalidateDerived drops the cached CSR and flat-transition snapshots.
// Every structural mutation path must call it (AddState/AddTransition do;
// the incremental system calls it after its in-place adjacency rewrites).
func (a *Automaton) invalidateDerived() {
	a.derived.mu.Lock()
	a.derived.csr, a.derived.flat = nil, nil
	a.derived.mu.Unlock()
}

// CSR returns the struct-of-arrays transition snapshot, building and
// caching it on first use. The returned view is shared: it must be
// treated as immutable, and it is only valid until the automaton's next
// structural mutation.
func (a *Automaton) CSR() *CSR {
	a.derived.mu.Lock()
	defer a.derived.mu.Unlock()
	if a.derived.csr == nil {
		a.derived.csr = buildCSR(a)
	}
	return a.derived.csr
}

func buildCSR(a *Automaton) *CSR {
	n := len(a.states)
	m := 0
	for _, row := range a.adj {
		m += len(row)
	}
	c := &CSR{
		n:       n,
		fwdOff:  make([]int32, n+1),
		fwdTo:   make([]int32, m),
		revOff:  make([]int32, n+1),
		revFrom: make([]int32, m),
	}
	pos := int32(0)
	for s := 0; s < n; s++ {
		c.fwdOff[s] = pos
		for _, t := range a.adj[s] {
			c.fwdTo[pos] = int32(t.To)
			c.revOff[t.To+1]++
			pos++
		}
	}
	c.fwdOff[n] = pos
	for s := 0; s < n; s++ {
		c.revOff[s+1] += c.revOff[s]
	}
	// Fill reverse rows using the offsets as cursors, then restore them.
	cursor := make([]int32, n)
	copy(cursor, c.revOff[:n])
	for s := 0; s < n; s++ {
		for _, t := range a.adj[s] {
			c.revFrom[cursor[t.To]] = int32(s)
			cursor[t.To]++
		}
	}
	return c
}

// TransitionsSnapshot returns all transitions in the same deterministic
// order as Transitions, but as a cached slice shared across calls: hot
// loops that only iterate should use this instead of Transitions, which
// copies. The snapshot must not be mutated and is only valid until the
// automaton's next structural mutation.
func (a *Automaton) TransitionsSnapshot() []Transition {
	a.derived.mu.Lock()
	defer a.derived.mu.Unlock()
	if a.derived.flat == nil {
		flat := make([]Transition, 0, a.NumTransitions())
		for _, ts := range a.adj {
			flat = append(flat, ts...)
		}
		a.derived.flat = flat
	}
	return a.derived.flat
}
