package automata

import (
	"strings"
	"testing"
)

// incTestContext builds a small two-state context that alternates sending
// "go" and receiving "done".
func incTestContext(t *testing.T) *Automaton {
	t.Helper()
	ctx := New("ctx", NewSignalSet("done"), NewSignalSet("go"))
	idle := ctx.MustAddState("idle")
	wait := ctx.MustAddState("wait")
	ctx.MarkInitial(idle)
	ctx.MustAddTransition(idle, Interaction{Out: NewSignalSet("go")}, wait)
	ctx.MustAddTransition(wait, Interaction{In: NewSignalSet("done")}, idle)
	ctx.MustAddTransition(wait, Interaction{}, wait)
	return ctx
}

func incTestModel(t *testing.T) *Incomplete {
	t.Helper()
	a := New("comp", NewSignalSet("go"), NewSignalSet("done"))
	s0 := a.MustAddState("s0")
	a.MarkInitial(s0)
	return NewIncomplete(a)
}

// applyRun learns a run into the model and applies the delta, asserting it
// was patched (not rebuilt) and that the patch invariant holds.
func applyRun(t *testing.T, ic *IncrementalSystem, m *Incomplete, run ObservedRun) {
	t.Helper()
	delta, err := m.Learn(run, nil)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := ic.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	if !patched {
		t.Fatal("growth-only delta fell back to a rebuild")
	}
	if err := ic.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalSystemPatchesAcrossLearnSteps(t *testing.T) {
	ctx := incTestContext(t)
	model := incTestModel(t)
	universe := Universe(UniverseSingleton)
	ic, err := NewIncrementalSystem(ctx, model, universe)
	if err != nil {
		t.Fatal(err)
	}
	if err := ic.Verify(); err != nil {
		t.Fatalf("initial build: %v", err)
	}

	// Learn a new state + transition, then a refusal, then both at once.
	applyRun(t, ic, model, ObservedRun{
		Initial: "s0",
		Steps: []ObservedStep{{
			Label: Interaction{In: NewSignalSet("go")}, To: "s1",
		}},
	})
	blocked := Interaction{In: NewSignalSet("go"), Out: NewSignalSet("done")}
	applyRun(t, ic, model, ObservedRun{
		Initial: "s0",
		Steps: []ObservedStep{{
			Label: Interaction{In: NewSignalSet("go")}, To: "s1",
		}},
		Blocked: &blocked,
	})
	applyRun(t, ic, model, ObservedRun{
		Initial: "s0",
		Steps: []ObservedStep{
			{Label: Interaction{In: NewSignalSet("go")}, To: "s1"},
			{Label: Interaction{Out: NewSignalSet("done")}, To: "s2"},
		},
	})

	patches, rebuilds := ic.Counts()
	if patches != 3 || rebuilds != 1 {
		t.Fatalf("patches=%d rebuilds=%d, want 3 and 1", patches, rebuilds)
	}
	if ic.ReachableStates() > ic.System().NumStates() {
		t.Fatal("reachable count exceeds total product states")
	}
}

func TestIncrementalSystemEmptyDeltaIsNoOp(t *testing.T) {
	ctx := incTestContext(t)
	model := incTestModel(t)
	ic, err := NewIncrementalSystem(ctx, model, Universe(UniverseSingleton))
	if err != nil {
		t.Fatal(err)
	}
	before := ic.System().NumTransitions()
	patched, err := ic.Apply(LearnDelta{})
	if err != nil || !patched {
		t.Fatalf("Apply(empty) = %v, %v", patched, err)
	}
	if ic.System().NumTransitions() != before {
		t.Fatal("empty delta changed the product")
	}
}

func TestIncrementalSystemRebuildFallbackOnForeignDelta(t *testing.T) {
	ctx := incTestContext(t)
	model := incTestModel(t)
	ic, err := NewIncrementalSystem(ctx, model, Universe(UniverseSingleton))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the model *without* telling the system, then hand it a delta
	// whose state IDs do not line up: Apply must detect the inconsistency
	// and rebuild rather than patch garbage.
	if _, err := model.Learn(ObservedRun{
		Initial: "s0",
		Steps:   []ObservedStep{{Label: Interaction{In: NewSignalSet("go")}, To: "sX"}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	patched, err := ic.Apply(LearnDelta{States: 1, NewStates: []StateID{7}})
	if err != nil {
		t.Fatal(err)
	}
	if patched {
		t.Fatal("inconsistent delta was patched instead of rebuilt")
	}
	if err := ic.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentReachableDetectsDivergence(t *testing.T) {
	build := func(extra bool) *Automaton {
		a := New("m", NewSignalSet("i"), NewSignalSet("o"))
		s0 := a.MustAddState("s0")
		s1 := a.MustAddState("s1")
		a.MarkInitial(s0)
		a.MustAddTransition(s0, Interaction{In: NewSignalSet("i")}, s1)
		if extra {
			a.MustAddTransition(s1, Interaction{Out: NewSignalSet("o")}, s0)
		}
		return a
	}
	if err := EquivalentReachable(build(false), build(false)); err != nil {
		t.Fatalf("identical automata reported different: %v", err)
	}
	err := EquivalentReachable(build(false), build(true))
	if err == nil || !strings.Contains(err.Error(), "outgoing transitions") {
		t.Fatalf("missing transition not detected: %v", err)
	}

	// Unreachable garbage on the got side is ignored.
	withGarbage := build(true)
	g := withGarbage.MustAddState("garbage")
	withGarbage.MustAddTransition(g, Interaction{In: NewSignalSet("i")}, g)
	if err := EquivalentReachable(withGarbage, build(true)); err != nil {
		t.Fatalf("unreachable garbage affected equivalence: %v", err)
	}

	// But extra reachable structure is an error.
	reordered := build(true)
	if err := EquivalentReachable(reordered, build(false)); err == nil {
		t.Fatal("extra reachable transition not detected")
	}
}
