package automata

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"muml/internal/obs"
)

// ctxPollInterval rate-limits context polling inside construction BFS
// loops: one Err() call per this many dequeued states bounds cancellation
// latency without a per-state syscall-adjacent check.
const ctxPollInterval = 256

// ctxPoll polls a context at a bounded rate. The zero poll happens on the
// first stop() call, so an already-expired deadline aborts before any
// work. A nil *ctxPoll (or one over a background context) never stops.
type ctxPoll struct {
	ctx   context.Context
	err   error
	count int
}

func newCtxPoll(ctx context.Context) *ctxPoll {
	if ctx == nil || ctx == context.Background() || ctx == context.TODO() {
		return nil
	}
	return &ctxPoll{ctx: ctx, count: 1}
}

func (p *ctxPoll) stop() bool {
	if p == nil {
		return false
	}
	if p.err != nil {
		return true
	}
	if p.count--; p.count > 0 {
		return false
	}
	p.count = ctxPollInterval
	if err := p.ctx.Err(); err != nil {
		p.err = err
		return true
	}
	return false
}

// Compose builds the parallel composition M‖M' of Definition 3. The two
// automata must be composable: I ∩ I' = ∅ and O ∩ O' = ∅.
//
// The composed automaton has state set S × S' restricted to the states
// reachable from Q × Q', inputs I ∪ I', outputs O ∪ O'. A joint transition
// on (A”, B”) exists iff component transitions on (A, B) and (A', B')
// exist with A” = A ∪ A', B” = B ∪ B', and the cross conditions
// (A ∩ O') = B' and (A' ∩ O) = B hold, i.e. every input one side expects
// from the other is exactly what the other outputs in the same step
// (synchronous communication).
//
// Composed state labels are the union L(s) ∪ L'(s'). Composed states keep
// per-leaf provenance so that runs render as in the paper's listings
// ("shuttle1.noConvoy, shuttle2.s_all").
//
// When the combined alphabet fits an Interner (≤64 signals) the BFS inner
// loop runs on interned bitset labels; the result is identical to the
// slice-based fallback, including state and transition order.
func Compose(name string, left, right *Automaton) (*Automaton, error) {
	return ComposeCtx(context.Background(), name, left, right, nil)
}

// ComposeCtx is Compose under a context and an optional memoization cache.
// The product BFS polls the context and aborts with its error once it is
// done. When a cache is given, the operands are fingerprinted and an
// identical prior composition is answered with a private clone of the
// cached result; misses are stored for future calls. Both features are
// zero-cost when disabled (background context, nil cache).
func ComposeCtx(ctx context.Context, name string, left, right *Automaton, memo *MemoCache) (*Automaton, error) {
	if !left.inputs.Disjoint(right.inputs) {
		return nil, fmt.Errorf("automata: compose %q‖%q: shared inputs %v",
			left.name, right.name, left.inputs.Intersect(right.inputs))
	}
	if !left.outputs.Disjoint(right.outputs) {
		return nil, fmt.Errorf("automata: compose %q‖%q: shared outputs %v",
			left.name, right.name, left.outputs.Intersect(right.outputs))
	}
	if len(left.initial) == 0 || len(right.initial) == 0 {
		return nil, fmt.Errorf("automata: compose %q‖%q: missing initial states", left.name, right.name)
	}

	var fpL, fpR uint64
	if memo != nil {
		fpL, fpR = left.Fingerprint(), right.Fingerprint()
		if hit, ok := memo.lookup(memoCompose, fpL, fpR, name); ok {
			return hit, nil
		}
	}

	c := New(name, left.inputs.Union(right.inputs), left.outputs.Union(right.outputs))
	c.leaves = append(append([]leafInfo(nil), left.leaves...), right.leaves...)

	p := newCtxPoll(ctx)
	built := false
	if in, ok := NewInterner(c.inputs, c.outputs); ok {
		built = composeFast(c, left, right, in, p)
	}
	if !built {
		composeSlow(c, left, right, p)
	}
	if p != nil && p.err != nil {
		return nil, p.err
	}
	memo.store(memoCompose, fpL, fpR, c)
	return c, nil
}

// composeFast runs the product BFS on interned labels. It reports false
// (leaving c's states untouched) only if a label unexpectedly falls outside
// the interner's alphabet, in which case the caller falls back to the
// slice-based path. A stopped poller aborts the BFS; the caller surfaces
// the context error.
func composeFast(c, left, right *Automaton, in *Interner, p *ctxPoll) bool {
	leftAdj, ok := maskAdjacency(left, in)
	if !ok {
		return false
	}
	rightAdj, ok := maskAdjacency(right, in)
	if !ok {
		return false
	}
	leftOut, _ := in.Mask(left.outputs)
	rightOut, _ := in.Mask(right.outputs)

	type pair struct{ l, r StateID }
	ids := make(map[pair]StateID)
	var queue []pair

	addPair := func(p pair) StateID {
		if id, ok := ids[p]; ok {
			return id
		}
		id := addComposedPairState(c, left, right, p.l, p.r)
		ids[p] = id
		queue = append(queue, p)
		return id
	}

	for _, ql := range left.initial {
		for _, qr := range right.initial {
			c.MarkInitial(addPair(pair{ql, qr}))
		}
	}

	type dupKey struct {
		k  InternKey
		to StateID
	}
	seen := make(map[dupKey]struct{})
	for head := 0; head < len(queue) && !p.stop(); head++ {
		pr := queue[head]
		from := ids[pr]
		clear(seen)
		for _, tl := range leftAdj[pr.l] {
			for _, tr := range rightAdj[pr.r] {
				if tl.in&rightOut != tr.out {
					continue
				}
				if tr.in&leftOut != tl.out {
					continue
				}
				k := InternKey{In: tl.in | tr.in, Out: tl.out | tr.out}
				to := addPair(pair{tl.to, tr.to})
				// Parallel nondeterminism can produce the same joint
				// transition twice; keep the first occurrence.
				dk := dupKey{k: k, to: to}
				if _, dup := seen[dk]; dup {
					continue
				}
				seen[dk] = struct{}{}
				c.adj[from] = append(c.adj[from], Transition{From: from, Label: in.Label(k), To: to})
			}
		}
	}
	return true
}

// addComposedPairState adds the product state (l, r) to c with the joined
// name, labels, and leaf provenance.
func addComposedPairState(c, left, right *Automaton, l, r StateID) StateID {
	obsComposedStates.Add(1)
	name := left.states[l].name + "|" + right.states[r].name
	labels := append(append([]Proposition(nil), left.states[l].labels...), right.states[r].labels...)
	id := c.MustAddState(uniqueName(c, name), labels...)
	c.states[id].parts = append(append([]string(nil), left.states[l].parts...), right.states[r].parts...)
	return id
}

// composeSlow is the slice-based product BFS, used when the combined
// alphabet exceeds the interner width. A stopped poller aborts the BFS;
// the caller surfaces the context error.
func composeSlow(c, left, right *Automaton, p *ctxPoll) {
	type pair struct{ l, r StateID }
	ids := make(map[pair]StateID)
	var queue []pair

	addPair := func(p pair) StateID {
		if id, ok := ids[p]; ok {
			return id
		}
		id := addComposedPairState(c, left, right, p.l, p.r)
		ids[p] = id
		queue = append(queue, p)
		return id
	}

	for _, ql := range left.initial {
		for _, qr := range right.initial {
			c.MarkInitial(addPair(pair{ql, qr}))
		}
	}

	for head := 0; head < len(queue) && !p.stop(); head++ {
		pr := queue[head]
		from := ids[pr]
		for _, tl := range left.adj[pr.l] {
			for _, tr := range right.adj[pr.r] {
				if !tl.Label.In.Intersect(right.outputs).Equal(tr.Label.Out) {
					continue
				}
				if !tr.Label.In.Intersect(left.outputs).Equal(tl.Label.Out) {
					continue
				}
				label := Interaction{
					In:  tl.Label.In.Union(tr.Label.In),
					Out: tl.Label.Out.Union(tr.Label.Out),
				}
				to := addPair(pair{tl.To, tr.To})
				// Parallel nondeterminism can produce the same joint
				// transition twice; ignore duplicates.
				_ = c.AddTransition(from, label, to)
			}
		}
	}
}

// MustCompose is Compose but panics on error.
func MustCompose(name string, left, right *Automaton) *Automaton {
	c, err := Compose(name, left, right)
	if err != nil {
		panic(err)
	}
	return c
}

// parallelComposeLevelThreshold is the BFS level size above which the n-ary
// composition enumerates joint transitions with a worker pool. Below it the
// goroutine handoff costs more than the enumeration.
const parallelComposeLevelThreshold = 8

// ComposeAll builds the simultaneous parallel composition of several
// automata. For two automata it coincides with Compose; for more it is the
// n-ary generalization of Definition 3: in every joint step each automaton
// takes exactly one transition, and for every participant i the inputs it
// draws from the other participants' output alphabets must equal exactly
// the signals the others produce for it:
//
//	Aᵢ ∩ (⋃_{j≠i} Oⱼ)  =  (⋃_{j≠i} Bⱼ) ∩ Iᵢ
//
// Note that folding the binary Compose is *not* equivalent for three or
// more parts: Definition 3 requires every output to be consumed by the
// partner in the same step, so a fold would force the third automaton to
// consume signals that were already matched inside the first pair.
//
// The BFS frontier is processed level by level; when a level is large
// enough, joint-transition enumeration for its states runs on a bounded
// worker pool (GOMAXPROCS-capped). States and transitions are merged in
// frontier order, so the result is deterministic and identical to the
// sequential construction.
func ComposeAll(name string, parts ...*Automaton) (*Automaton, error) {
	switch len(parts) {
	case 0:
		return nil, fmt.Errorf("automata: compose: no automata given")
	case 1:
		return parts[0].Clone(name), nil
	case 2:
		return Compose(name, parts[0], parts[1])
	}

	for i := range parts {
		if len(parts[i].initial) == 0 {
			return nil, fmt.Errorf("automata: compose %q: %q has no initial state", name, parts[i].name)
		}
		for j := i + 1; j < len(parts); j++ {
			if !parts[i].inputs.Disjoint(parts[j].inputs) {
				return nil, fmt.Errorf("automata: compose %q: %q and %q share inputs",
					name, parts[i].name, parts[j].name)
			}
			if !parts[i].outputs.Disjoint(parts[j].outputs) {
				return nil, fmt.Errorf("automata: compose %q: %q and %q share outputs",
					name, parts[i].name, parts[j].name)
			}
		}
	}

	allIn, allOut := EmptySet, EmptySet
	var leaves []leafInfo
	for _, p := range parts {
		allIn = allIn.Union(p.inputs)
		allOut = allOut.Union(p.outputs)
		leaves = append(leaves, p.leaves...)
	}
	c := New(name, allIn, allOut)
	c.leaves = leaves

	if in, ok := NewInterner(allIn, allOut); ok {
		if composeAllFast(c, parts, in) {
			return c, nil
		}
	}
	composeAllSlow(c, parts)
	return c, nil
}

// jointEdge is one joint transition candidate produced by enumerating a
// product tuple: the interned label plus the successor tuple. The next
// slice is owned by the edge.
type jointEdge struct {
	key  InternKey
	next []StateID
}

// composeAllFast is the interned n-ary product BFS with level-parallel
// joint-transition enumeration.
func composeAllFast(c *Automaton, parts []*Automaton, in *Interner) bool {
	ptAdj := make([][][]maskedTransition, len(parts))
	for i, p := range parts {
		adj, ok := maskAdjacency(p, in)
		if !ok {
			return false
		}
		ptAdj[i] = adj
	}
	// othersOut[i] = union of output alphabets of all parts except i;
	// inMask[i] = input alphabet of part i.
	othersOut := make([]SetMask, len(parts))
	inMask := make([]SetMask, len(parts))
	for i := range parts {
		var o SetMask
		for j := range parts {
			if j != i {
				m, _ := in.Mask(parts[j].outputs)
				o |= m
			}
		}
		othersOut[i] = o
		inMask[i], _ = in.Mask(parts[i].inputs)
	}

	enumerate := func(cur []StateID) []jointEdge {
		var edges []jointEdge
		chosen := make([]maskedTransition, len(parts))
		var choose func(i int, produced SetMask)
		choose = func(i int, produced SetMask) {
			if i == len(parts) {
				var consumed SetMask
				for idx := range chosen {
					internal := chosen[idx].in & othersOut[idx]
					delivered := produced & inMask[idx]
					if internal != delivered {
						return
					}
					consumed |= chosen[idx].in
				}
				next := make([]StateID, len(parts))
				for idx := range chosen {
					next[idx] = chosen[idx].to
				}
				edges = append(edges, jointEdge{key: InternKey{In: consumed, Out: produced}, next: next})
				return
			}
			for _, t := range ptAdj[i][cur[i]] {
				chosen[i] = t
				choose(i+1, produced|t.out)
			}
		}
		choose(0, 0)
		return edges
	}

	ids := make(map[string]StateID)
	var queue [][]StateID

	addTuple := func(states []StateID) StateID {
		k := stateSetKey(states)
		if id, ok := ids[k]; ok {
			return id
		}
		id := addComposedTupleState(c, parts, states)
		ids[k] = id
		queue = append(queue, states)
		return id
	}

	for _, t := range initialTuples(parts) {
		c.MarkInitial(addTuple(t))
	}

	workers := runtime.GOMAXPROCS(0)
	type dupKey struct {
		k  InternKey
		to StateID
	}
	seen := make(map[dupKey]struct{})
	levelIndex := 0
	for head := 0; head < len(queue); {
		level := queue[head:]
		head = len(queue)
		results := make([][]jointEdge, len(level))
		parallel := len(level) >= parallelComposeLevelThreshold && workers > 1
		obsComposeLevels.Add(1)
		obsComposeFrontierPeak.Observe(int64(len(level)))
		if parallel {
			obsComposeParallelLevels.Add(1)
		}
		if obsJournal.Enabled() {
			par := int64(0)
			if parallel {
				par = 1
			}
			obsJournal.Emit(obs.Event{Kind: obs.KindComposeLevel, Iter: -1, N: map[string]int64{
				"level":    int64(levelIndex),
				"frontier": int64(len(level)),
				"parallel": par,
			}})
		}
		levelIndex++
		if parallel {
			// Enumerate the level on a bounded worker pool. Enumeration
			// only reads the immutable masked adjacency, so workers are
			// race-free; the merge below is sequential and in level order,
			// keeping the construction deterministic.
			var wg sync.WaitGroup
			chunk := (len(level) + workers - 1) / workers
			for lo := 0; lo < len(level); lo += chunk {
				hi := lo + chunk
				if hi > len(level) {
					hi = len(level)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						results[i] = enumerate(level[i])
					}
				}(lo, hi)
			}
			wg.Wait()
		} else {
			for i := range level {
				results[i] = enumerate(level[i])
			}
		}
		for i := range level {
			from := ids[stateSetKey(level[i])]
			clear(seen)
			for _, e := range results[i] {
				to := addTuple(e.next)
				dk := dupKey{k: e.key, to: to}
				if _, dup := seen[dk]; dup {
					continue
				}
				seen[dk] = struct{}{}
				c.adj[from] = append(c.adj[from], Transition{From: from, Label: in.Label(e.key), To: to})
			}
		}
	}
	return true
}

// composeAllSlow is the slice-based n-ary product BFS.
func composeAllSlow(c *Automaton, parts []*Automaton) {
	// othersOut[i] = union of output alphabets of all parts except i.
	othersOut := make([]SignalSet, len(parts))
	for i := range parts {
		o := EmptySet
		for j := range parts {
			if j != i {
				o = o.Union(parts[j].outputs)
			}
		}
		othersOut[i] = o
	}

	ids := make(map[string]StateID)
	var queue [][]StateID

	addTuple := func(states []StateID) StateID {
		k := stateSetKey(states)
		if id, ok := ids[k]; ok {
			return id
		}
		id := addComposedTupleState(c, parts, states)
		ids[k] = id
		queue = append(queue, append([]StateID(nil), states...))
		return id
	}

	for _, t := range initialTuples(parts) {
		c.MarkInitial(addTuple(t))
	}

	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		from := ids[stateSetKey(cur)]
		// Enumerate joint transitions: one transition per part.
		var choose func(i int, chosen []Transition)
		choose = func(i int, chosen []Transition) {
			if i == len(parts) {
				produced := EmptySet
				for _, t := range chosen {
					produced = produced.Union(t.Label.Out)
				}
				label := Interaction{Out: produced}
				for idx, t := range chosen {
					internal := t.Label.In.Intersect(othersOut[idx])
					delivered := produced.Intersect(parts[idx].inputs)
					if !internal.Equal(delivered) {
						return
					}
					label.In = label.In.Union(t.Label.In)
				}
				next := make([]StateID, len(parts))
				for idx, t := range chosen {
					next[idx] = t.To
				}
				_ = c.AddTransition(from, label, addTuple(next))
				return
			}
			for _, t := range parts[i].adj[cur[i]] {
				choose(i+1, append(chosen, t))
			}
		}
		choose(0, nil)
	}
}

// addComposedTupleState adds the n-ary product state for the given leaf
// state tuple with joined name, labels, and provenance.
func addComposedTupleState(c *Automaton, parts []*Automaton, states []StateID) StateID {
	obsComposedStates.Add(1)
	names := make([]string, len(states))
	var labels []Proposition
	var partNames []string
	for i, s := range states {
		names[i] = parts[i].states[s].name
		labels = append(labels, parts[i].states[s].labels...)
		partNames = append(partNames, parts[i].states[s].parts...)
	}
	id := c.MustAddState(uniqueName(c, strings.Join(names, "|")), labels...)
	c.states[id].parts = partNames
	return id
}

// initialTuples returns the cartesian product of the parts' initial state
// sets, in deterministic order.
func initialTuples(parts []*Automaton) [][]StateID {
	tuples := [][]StateID{nil}
	for _, p := range parts {
		var next [][]StateID
		for _, t := range tuples {
			for _, q := range p.initial {
				next = append(next, append(append([]StateID(nil), t...), q))
			}
		}
		tuples = next
	}
	return tuples
}

// Leaves returns the names of the leaf automata of a (possibly composed)
// automaton in composition order.
func (a *Automaton) Leaves() []string {
	names := make([]string, len(a.leaves))
	for i, l := range a.leaves {
		names[i] = l.name
	}
	return names
}

// LeafAlphabet returns the input and output alphabet of the named leaf, for
// attributing signals of a composed run back to components.
func (a *Automaton) LeafAlphabet(name string) (inputs, outputs SignalSet, ok bool) {
	for _, l := range a.leaves {
		if l.name == name {
			return l.inputs, l.outputs, true
		}
	}
	return SignalSet{}, SignalSet{}, false
}

// ProjectRun restricts a run of a composed automaton to the named leaf:
// states become the leaf's state names and interactions are intersected
// with the leaf's alphabet. Steps where the leaf neither consumes nor
// produces a signal are kept (they are the leaf's idle time steps, which
// exist because composition is fully synchronous).
func (a *Automaton) ProjectRun(r Run, leaf string) (ProjectedRun, error) {
	idx := -1
	for i, l := range a.leaves {
		if l.name == leaf {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ProjectedRun{}, fmt.Errorf("automata: no leaf %q in %q", leaf, a.name)
	}
	in, out := a.leaves[idx].inputs, a.leaves[idx].outputs
	p := ProjectedRun{Leaf: leaf, Deadlock: r.Deadlock}
	for _, s := range r.States {
		parts := a.states[s].parts
		if len(parts) != len(a.leaves) {
			return ProjectedRun{}, fmt.Errorf("automata: state %q lacks provenance for projection", a.states[s].name)
		}
		p.StateNames = append(p.StateNames, parts[idx])
	}
	for _, step := range r.Steps {
		p.Steps = append(p.Steps, Interaction{
			In:  step.In.Intersect(in),
			Out: step.Out.Intersect(out),
		})
	}
	return p, nil
}

// ProjectedRun is the restriction of a composed run to one leaf component.
// State names refer to the leaf's own state space.
type ProjectedRun struct {
	Leaf       string
	StateNames []string
	Steps      []Interaction
	Deadlock   bool
}

// String renders the projected run compactly.
func (p ProjectedRun) String() string {
	var b strings.Builder
	for i, s := range p.StateNames {
		fmt.Fprintf(&b, "%s.%s", p.Leaf, s)
		if i < len(p.Steps) {
			fmt.Fprintf(&b, " -%s-> ", p.Steps[i])
		}
	}
	if p.Deadlock {
		fmt.Fprintf(&b, " -%s-> <blocked>", p.Steps[len(p.Steps)-1])
	}
	return b.String()
}

// uniqueName returns base, or base with the first free "#n" suffix when the
// base name is taken. A per-automaton next-suffix counter per base avoids
// re-probing "#2, #3, …" from scratch on every collision.
func uniqueName(a *Automaton, base string) string {
	if _, ok := a.index[base]; !ok {
		return base
	}
	if a.nameSeq == nil {
		a.nameSeq = make(map[string]int)
	}
	i := a.nameSeq[base]
	if i < 2 {
		i = 2
	}
	for {
		candidate := fmt.Sprintf("%s#%d", base, i)
		i++
		if _, ok := a.index[candidate]; !ok {
			a.nameSeq[base] = i
			return candidate
		}
	}
}
