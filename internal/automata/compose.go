package automata

import (
	"fmt"
	"strings"
)

// Compose builds the parallel composition M‖M' of Definition 3. The two
// automata must be composable: I ∩ I' = ∅ and O ∩ O' = ∅.
//
// The composed automaton has state set S × S' restricted to the states
// reachable from Q × Q', inputs I ∪ I', outputs O ∪ O'. A joint transition
// on (A”, B”) exists iff component transitions on (A, B) and (A', B')
// exist with A” = A ∪ A', B” = B ∪ B', and the cross conditions
// (A ∩ O') = B' and (A' ∩ O) = B hold, i.e. every input one side expects
// from the other is exactly what the other outputs in the same step
// (synchronous communication).
//
// Composed state labels are the union L(s) ∪ L'(s'). Composed states keep
// per-leaf provenance so that runs render as in the paper's listings
// ("shuttle1.noConvoy, shuttle2.s_all").
func Compose(name string, left, right *Automaton) (*Automaton, error) {
	if !left.inputs.Disjoint(right.inputs) {
		return nil, fmt.Errorf("automata: compose %q‖%q: shared inputs %v",
			left.name, right.name, left.inputs.Intersect(right.inputs))
	}
	if !left.outputs.Disjoint(right.outputs) {
		return nil, fmt.Errorf("automata: compose %q‖%q: shared outputs %v",
			left.name, right.name, left.outputs.Intersect(right.outputs))
	}
	if len(left.initial) == 0 || len(right.initial) == 0 {
		return nil, fmt.Errorf("automata: compose %q‖%q: missing initial states", left.name, right.name)
	}

	c := New(name, left.inputs.Union(right.inputs), left.outputs.Union(right.outputs))
	c.leaves = append(append([]leafInfo(nil), left.leaves...), right.leaves...)

	type pair struct{ l, r StateID }
	ids := make(map[pair]StateID)
	var queue []pair

	addPair := func(p pair) StateID {
		if id, ok := ids[p]; ok {
			return id
		}
		name := left.states[p.l].name + "|" + right.states[p.r].name
		labels := append(append([]Proposition(nil), left.states[p.l].labels...), right.states[p.r].labels...)
		id := c.MustAddState(uniqueName(c, name), labels...)
		c.states[id].parts = append(append([]string(nil), left.states[p.l].parts...), right.states[p.r].parts...)
		ids[p] = id
		queue = append(queue, p)
		return id
	}

	for _, ql := range left.initial {
		for _, qr := range right.initial {
			c.MarkInitial(addPair(pair{ql, qr}))
		}
	}

	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		from := ids[p]
		for _, tl := range left.adj[p.l] {
			for _, tr := range right.adj[p.r] {
				if !tl.Label.In.Intersect(right.outputs).Equal(tr.Label.Out) {
					continue
				}
				if !tr.Label.In.Intersect(left.outputs).Equal(tl.Label.Out) {
					continue
				}
				label := Interaction{
					In:  tl.Label.In.Union(tr.Label.In),
					Out: tl.Label.Out.Union(tr.Label.Out),
				}
				to := addPair(pair{tl.To, tr.To})
				// Parallel nondeterminism can produce the same joint
				// transition twice; ignore duplicates.
				_ = c.AddTransition(from, label, to)
			}
		}
	}
	return c, nil
}

// MustCompose is Compose but panics on error.
func MustCompose(name string, left, right *Automaton) *Automaton {
	c, err := Compose(name, left, right)
	if err != nil {
		panic(err)
	}
	return c
}

// ComposeAll builds the simultaneous parallel composition of several
// automata. For two automata it coincides with Compose; for more it is the
// n-ary generalization of Definition 3: in every joint step each automaton
// takes exactly one transition, and for every participant i the inputs it
// draws from the other participants' output alphabets must equal exactly
// the signals the others produce for it:
//
//	Aᵢ ∩ (⋃_{j≠i} Oⱼ)  =  (⋃_{j≠i} Bⱼ) ∩ Iᵢ
//
// Note that folding the binary Compose is *not* equivalent for three or
// more parts: Definition 3 requires every output to be consumed by the
// partner in the same step, so a fold would force the third automaton to
// consume signals that were already matched inside the first pair.
func ComposeAll(name string, parts ...*Automaton) (*Automaton, error) {
	switch len(parts) {
	case 0:
		return nil, fmt.Errorf("automata: compose: no automata given")
	case 1:
		return parts[0].Clone(name), nil
	case 2:
		return Compose(name, parts[0], parts[1])
	}

	for i := range parts {
		if len(parts[i].initial) == 0 {
			return nil, fmt.Errorf("automata: compose %q: %q has no initial state", name, parts[i].name)
		}
		for j := i + 1; j < len(parts); j++ {
			if !parts[i].inputs.Disjoint(parts[j].inputs) {
				return nil, fmt.Errorf("automata: compose %q: %q and %q share inputs",
					name, parts[i].name, parts[j].name)
			}
			if !parts[i].outputs.Disjoint(parts[j].outputs) {
				return nil, fmt.Errorf("automata: compose %q: %q and %q share outputs",
					name, parts[i].name, parts[j].name)
			}
		}
	}

	allIn, allOut := EmptySet, EmptySet
	var leaves []leafInfo
	for _, p := range parts {
		allIn = allIn.Union(p.inputs)
		allOut = allOut.Union(p.outputs)
		leaves = append(leaves, p.leaves...)
	}
	c := New(name, allIn, allOut)
	c.leaves = leaves

	// othersOut[i] = union of output alphabets of all parts except i.
	othersOut := make([]SignalSet, len(parts))
	for i := range parts {
		o := EmptySet
		for j := range parts {
			if j != i {
				o = o.Union(parts[j].outputs)
			}
		}
		othersOut[i] = o
	}

	type tuple string
	key := func(states []StateID) tuple {
		b := make([]byte, 0, len(states)*3)
		for _, s := range states {
			b = append(b, byte(s), byte(s>>8), byte(s>>16))
		}
		return tuple(b)
	}
	ids := make(map[tuple]StateID)
	var queue [][]StateID

	addTuple := func(states []StateID) StateID {
		k := key(states)
		if id, ok := ids[k]; ok {
			return id
		}
		names := make([]string, len(states))
		var labels []Proposition
		var partNames []string
		for i, s := range states {
			names[i] = parts[i].states[s].name
			labels = append(labels, parts[i].states[s].labels...)
			partNames = append(partNames, parts[i].states[s].parts...)
		}
		id := c.MustAddState(uniqueName(c, strings.Join(names, "|")), labels...)
		c.states[id].parts = partNames
		ids[k] = id
		queue = append(queue, append([]StateID(nil), states...))
		return id
	}

	// Initial tuples: cartesian product of initial state sets.
	var initTuples [][]StateID
	initTuples = append(initTuples, nil)
	for _, p := range parts {
		var next [][]StateID
		for _, t := range initTuples {
			for _, q := range p.initial {
				next = append(next, append(append([]StateID(nil), t...), q))
			}
		}
		initTuples = next
	}
	for _, t := range initTuples {
		c.MarkInitial(addTuple(t))
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		from := ids[key(cur)]
		// Enumerate joint transitions: one transition per part.
		var choose func(i int, chosen []Transition)
		choose = func(i int, chosen []Transition) {
			if i == len(parts) {
				produced := EmptySet
				for _, t := range chosen {
					produced = produced.Union(t.Label.Out)
				}
				label := Interaction{Out: produced}
				for idx, t := range chosen {
					internal := t.Label.In.Intersect(othersOut[idx])
					delivered := produced.Intersect(parts[idx].inputs)
					if !internal.Equal(delivered) {
						return
					}
					label.In = label.In.Union(t.Label.In)
				}
				next := make([]StateID, len(parts))
				for idx, t := range chosen {
					next[idx] = t.To
				}
				_ = c.AddTransition(from, label, addTuple(next))
				return
			}
			for _, t := range parts[i].adj[cur[i]] {
				choose(i+1, append(chosen, t))
			}
		}
		choose(0, nil)
	}
	return c, nil
}

// Leaves returns the names of the leaf automata of a (possibly composed)
// automaton in composition order.
func (a *Automaton) Leaves() []string {
	names := make([]string, len(a.leaves))
	for i, l := range a.leaves {
		names[i] = l.name
	}
	return names
}

// LeafAlphabet returns the input and output alphabet of the named leaf, for
// attributing signals of a composed run back to components.
func (a *Automaton) LeafAlphabet(name string) (inputs, outputs SignalSet, ok bool) {
	for _, l := range a.leaves {
		if l.name == name {
			return l.inputs, l.outputs, true
		}
	}
	return SignalSet{}, SignalSet{}, false
}

// ProjectRun restricts a run of a composed automaton to the named leaf:
// states become the leaf's state names and interactions are intersected
// with the leaf's alphabet. Steps where the leaf neither consumes nor
// produces a signal are kept (they are the leaf's idle time steps, which
// exist because composition is fully synchronous).
func (a *Automaton) ProjectRun(r Run, leaf string) (ProjectedRun, error) {
	idx := -1
	for i, l := range a.leaves {
		if l.name == leaf {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ProjectedRun{}, fmt.Errorf("automata: no leaf %q in %q", leaf, a.name)
	}
	in, out := a.leaves[idx].inputs, a.leaves[idx].outputs
	p := ProjectedRun{Leaf: leaf, Deadlock: r.Deadlock}
	for _, s := range r.States {
		parts := a.states[s].parts
		if len(parts) != len(a.leaves) {
			return ProjectedRun{}, fmt.Errorf("automata: state %q lacks provenance for projection", a.states[s].name)
		}
		p.StateNames = append(p.StateNames, parts[idx])
	}
	for _, step := range r.Steps {
		p.Steps = append(p.Steps, Interaction{
			In:  step.In.Intersect(in),
			Out: step.Out.Intersect(out),
		})
	}
	return p, nil
}

// ProjectedRun is the restriction of a composed run to one leaf component.
// State names refer to the leaf's own state space.
type ProjectedRun struct {
	Leaf       string
	StateNames []string
	Steps      []Interaction
	Deadlock   bool
}

// String renders the projected run compactly.
func (p ProjectedRun) String() string {
	var b strings.Builder
	for i, s := range p.StateNames {
		fmt.Fprintf(&b, "%s.%s", p.Leaf, s)
		if i < len(p.Steps) {
			fmt.Fprintf(&b, " -%s-> ", p.Steps[i])
		}
	}
	if p.Deadlock {
		fmt.Fprintf(&b, " -%s-> <blocked>", p.Steps[len(p.Steps)-1])
	}
	return b.String()
}

func uniqueName(a *Automaton, base string) string {
	if _, ok := a.index[base]; !ok {
		return base
	}
	for i := 2; ; i++ {
		candidate := fmt.Sprintf("%s#%d", base, i)
		if _, ok := a.index[candidate]; !ok {
			return candidate
		}
	}
}
