package automata

import "fmt"

// This file implements the learn operations of Definitions 11 and 12 and
// observation conformance per Definition 10.
//
// Learning consumes *observed* runs: sequences of interactions together
// with the implementation's state names as reported by monitoring during
// deterministic replay (Section 5). Because observed states are identified
// by name, learning can merge new observations into the already-learned
// state space.

// ObservedStep is one monitored interaction with the state reached after
// it.
type ObservedStep struct {
	Label Interaction
	To    string // state name reached after the interaction
}

// ObservedRun is a monitored execution of the implementation: the initial
// state, the regular steps taken, and — if the run ended with the
// implementation refusing an interaction — the blocked interaction.
type ObservedRun struct {
	Initial string
	Steps   []ObservedStep
	Blocked *Interaction // non-nil iff the run ended blocked (deadlock run)
}

// States returns all state names visited by the run in order, starting
// with the initial state.
func (r ObservedRun) States() []string {
	names := make([]string, 0, len(r.Steps)+1)
	names = append(names, r.Initial)
	for _, s := range r.Steps {
		names = append(names, s.To)
	}
	return names
}

// Learn merges an observed run into the incomplete automaton, implementing
// learn(M, π) of Definition 11 for the regular part and Definition 12 for
// a blocked final interaction:
//
//   - every state name not yet in S is added (labels per the supplied
//     labeler, which may be nil);
//   - every step (s, A, B, s') not yet in T is added;
//   - if the run's first state is unknown it becomes initial;
//   - a blocked final interaction is added to T̄.
//
// Learn reports how many states, transitions, and blocked entries were new,
// so callers can detect progress (the termination argument of Theorem 2 is
// that this count is strictly positive whenever a counterexample is not
// confirmed).
func (m *Incomplete) Learn(run ObservedRun, labeler func(state string) []Proposition) (LearnDelta, error) {
	var delta LearnDelta
	a := m.auto

	ensure := func(name string) (StateID, error) {
		if id := a.State(name); id != NoState {
			return id, nil
		}
		var labels []Proposition
		if labeler != nil {
			labels = labeler(name)
		}
		id, err := a.AddState(name, labels...)
		if err != nil {
			return NoState, err
		}
		delta.States++
		delta.NewStates = append(delta.NewStates, id)
		return id, nil
	}

	cur, err := ensure(run.Initial)
	if err != nil {
		return delta, err
	}
	if len(a.initial) == 0 {
		a.MarkInitial(cur)
	}

	for i, step := range run.Steps {
		next, err := ensure(step.To)
		if err != nil {
			return delta, err
		}
		if len(a.Successors(cur, step.Label)) == 0 {
			if m.IsBlocked(cur, step.Label) {
				return delta, fmt.Errorf("automata: learn step %d: %s observed at %q but recorded as blocked",
					i, step.Label, a.StateName(cur))
			}
			if err := a.AddTransition(cur, step.Label, next); err != nil {
				return delta, err
			}
			delta.Transitions++
			delta.NewTransitions = append(delta.NewTransitions, Transition{From: cur, Label: step.Label, To: next})
		} else if succ := a.Successors(cur, step.Label); len(succ) != 1 || succ[0] != next {
			return delta, fmt.Errorf("automata: learn step %d: %s at %q leads to %q, conflicting with earlier observation",
				i, step.Label, a.StateName(cur), step.To)
		}
		cur = next
	}

	if run.Blocked != nil {
		if !m.IsBlocked(cur, *run.Blocked) {
			if err := m.Block(cur, *run.Blocked); err != nil {
				return delta, err
			}
			delta.Blocked++
			delta.NewBlocked = append(delta.NewBlocked, BlockedEntry{State: cur, Label: *run.Blocked})
		}
	}
	return delta, nil
}

// LearnNondet merges an observed run of a possibly *nondeterministic*
// implementation into the incomplete automaton. It differs from Learn in
// exactly one way: a step whose (state, interaction) already has learned
// successors is not required to agree with them — a different successor is
// recorded as an additional branch (the ioco merge of DESIGN.md §13)
// instead of failing with a conflict. Observing an interaction recorded as
// blocked remains an error: T̄ entries are refutations, and an observation
// contradicting one means the refutation (or the fairness assumption it
// rested on) was wrong.
func (m *Incomplete) LearnNondet(run ObservedRun, labeler func(state string) []Proposition) (LearnDelta, error) {
	var delta LearnDelta
	a := m.auto

	ensure := func(name string) (StateID, error) {
		if id := a.State(name); id != NoState {
			return id, nil
		}
		var labels []Proposition
		if labeler != nil {
			labels = labeler(name)
		}
		id, err := a.AddState(name, labels...)
		if err != nil {
			return NoState, err
		}
		delta.States++
		delta.NewStates = append(delta.NewStates, id)
		return id, nil
	}

	cur, err := ensure(run.Initial)
	if err != nil {
		return delta, err
	}
	if len(a.initial) == 0 {
		a.MarkInitial(cur)
	}

	for i, step := range run.Steps {
		next, err := ensure(step.To)
		if err != nil {
			return delta, err
		}
		if m.IsBlocked(cur, step.Label) {
			return delta, fmt.Errorf("automata: learn step %d: %s observed at %q but recorded as blocked",
				i, step.Label, a.StateName(cur))
		}
		if !containsStateID(a.Successors(cur, step.Label), next) {
			if err := a.AddTransition(cur, step.Label, next); err != nil {
				return delta, err
			}
			delta.Transitions++
			delta.NewTransitions = append(delta.NewTransitions, Transition{From: cur, Label: step.Label, To: next})
		}
		cur = next
	}

	if run.Blocked != nil {
		if len(a.Successors(cur, *run.Blocked)) > 0 {
			return delta, fmt.Errorf("automata: learn: %s refused at %q but previously observed",
				*run.Blocked, a.StateName(cur))
		}
		if !m.IsBlocked(cur, *run.Blocked) {
			if err := m.Block(cur, *run.Blocked); err != nil {
				return delta, err
			}
			delta.Blocked++
			delta.NewBlocked = append(delta.NewBlocked, BlockedEntry{State: cur, Label: *run.Blocked})
		}
	}
	return delta, nil
}

func containsStateID(states []StateID, id StateID) bool {
	for _, s := range states {
		if s == id {
			return true
		}
	}
	return false
}

// BlockedEntry is one element of T̄ added by learning: the interaction the
// implementation refused at the state.
type BlockedEntry struct {
	State StateID
	Label Interaction
}

// LearnDelta quantifies and enumerates what a Learn call added to the
// model. The New* slices carry the concrete additions so that incremental
// consumers (IncrementalSystem) can patch derived structures instead of
// rebuilding them.
type LearnDelta struct {
	States      int
	Transitions int
	Blocked     int
	// Settled counts labels newly certified successor-complete
	// (Incomplete.SettleLabel) — nondeterministic mode only. A settle
	// changes the chaotic closure without adding transitions, so it counts
	// as learning progress but cannot be delta-patched.
	Settled int

	NewStates      []StateID
	NewTransitions []Transition
	NewBlocked     []BlockedEntry
}

// Empty reports whether the learn step added nothing — i.e. the
// observation was already fully contained in the model.
func (d LearnDelta) Empty() bool {
	return d.States == 0 && d.Transitions == 0 && d.Blocked == 0 && d.Settled == 0
}

// Merge accumulates another delta into d.
func (d *LearnDelta) Merge(o LearnDelta) {
	d.States += o.States
	d.Transitions += o.Transitions
	d.Blocked += o.Blocked
	d.Settled += o.Settled
	d.NewStates = append(d.NewStates, o.NewStates...)
	d.NewTransitions = append(d.NewTransitions, o.NewTransitions...)
	d.NewBlocked = append(d.NewBlocked, o.NewBlocked...)
}

// ObservationConforming checks Definition 10 against a reference
// implementation automaton: every run of the incomplete automaton m must be
// a run of impl. States are identified by name (observed state names come
// from monitoring the implementation, so they live in impl's namespace).
//
// The check is structural and complete for deterministic impl: every state
// of m must exist in impl, every transition of m must exist in impl, every
// initial state of m must be initial in impl, and every blocked entry of m
// must be refused by impl.
func (m *Incomplete) ObservationConforming(impl *Automaton) error {
	a := m.auto
	toImpl := make([]StateID, a.NumStates())
	for id, st := range a.states {
		ref := impl.State(st.name)
		if ref == NoState {
			return fmt.Errorf("automata: learned state %q not present in implementation", st.name)
		}
		toImpl[id] = ref
	}
	for _, q := range a.initial {
		found := false
		for _, qr := range impl.Initial() {
			if qr == toImpl[q] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("automata: learned initial state %q not initial in implementation", a.StateName(q))
		}
	}
	for _, t := range a.TransitionsSnapshot() {
		ok := false
		for _, u := range impl.TransitionsFrom(toImpl[t.From]) {
			if u.Label.Equal(t.Label) && u.To == toImpl[t.To] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("automata: learned transition %s -%s-> %s not present in implementation",
				a.StateName(t.From), t.Label, a.StateName(t.To))
		}
	}
	for s, set := range m.blocked {
		for _, x := range set {
			if len(impl.Successors(toImpl[s], x)) > 0 {
				return fmt.Errorf("automata: learned refusal of %s at %q contradicts implementation",
					x, a.StateName(s))
			}
		}
	}
	return nil
}
