package automata

import (
	"strings"
	"testing"
)

// senderReceiver builds a pair of automata communicating over "msg":
// sender outputs msg, receiver consumes it.
func senderReceiver(t *testing.T) (*Automaton, *Automaton) {
	t.Helper()
	s := New("sender", EmptySet, NewSignalSet("msg"))
	s0 := s.MustAddState("ready")
	s1 := s.MustAddState("sent")
	s.MustAddTransition(s0, Interact(nil, []Signal{"msg"}), s1)
	s.MustAddTransition(s1, Interaction{}, s1) // idle forever after
	s.MarkInitial(s0)

	r := New("receiver", NewSignalSet("msg"), EmptySet)
	r0 := r.MustAddState("waiting")
	r1 := r.MustAddState("got")
	r.MustAddTransition(r0, Interact([]Signal{"msg"}, nil), r1)
	r.MustAddTransition(r1, Interaction{}, r1)
	r.MarkInitial(r0)
	return s, r
}

func TestComposeSynchronizes(t *testing.T) {
	s, r := senderReceiver(t)
	c, err := Compose("sys", s, r)
	if err != nil {
		t.Fatal(err)
	}
	// Reachable: (ready,waiting) -> (sent,got) -> (sent,got).
	if got, want := c.NumStates(), 2; got != want {
		t.Fatalf("NumStates = %d, want %d", got, want)
	}
	init := c.Initial()
	if len(init) != 1 {
		t.Fatalf("Initial = %v", init)
	}
	trans := c.TransitionsFrom(init[0])
	if len(trans) != 1 {
		t.Fatalf("expected one joint transition, got %d", len(trans))
	}
	// Joint label: A'' = ∅∪{msg}, B'' = {msg}∪∅.
	if !trans[0].Label.In.Equal(NewSignalSet("msg")) || !trans[0].Label.Out.Equal(NewSignalSet("msg")) {
		t.Fatalf("joint label = %v", trans[0].Label)
	}
}

func TestComposeBlocksUnmatchedCommunication(t *testing.T) {
	// Sender wants to emit msg but the receiver only has an idle loop:
	// no joint step for the send exists; only the idle pair step.
	s := New("sender", EmptySet, NewSignalSet("msg"))
	s0 := s.MustAddState("ready")
	s.MustAddTransition(s0, Interact(nil, []Signal{"msg"}), s0)
	s.MarkInitial(s0)

	r := New("receiver", NewSignalSet("msg"), EmptySet)
	r0 := r.MustAddState("deaf")
	r.MustAddTransition(r0, Interaction{}, r0)
	r.MarkInitial(r0)

	c := MustCompose("sys", s, r)
	// The only reachable composed state is the initial one, and it has no
	// outgoing transition: sender's send needs the receiver to take it in
	// the same step ((A'∩O)=B fails), receiver's idle step needs the
	// sender not to send.
	if got := c.NumStates(); got != 1 {
		t.Fatalf("NumStates = %d, want 1", got)
	}
	if _, deadlocked := c.DeadlockReachable(); !deadlocked {
		t.Fatal("expected composed deadlock for unmatched communication")
	}
}

func TestComposeRejectsSharedAlphabets(t *testing.T) {
	a := New("a", NewSignalSet("x"), EmptySet)
	sa := a.MustAddState("s")
	a.MarkInitial(sa)
	b := New("b", NewSignalSet("x"), EmptySet)
	sb := b.MustAddState("s")
	b.MarkInitial(sb)
	if _, err := Compose("c", a, b); err == nil {
		t.Fatal("expected error for shared inputs")
	}

	c := New("c", EmptySet, NewSignalSet("y"))
	sc := c.MustAddState("s")
	c.MarkInitial(sc)
	d := New("d", EmptySet, NewSignalSet("y"))
	sd := d.MustAddState("s")
	d.MarkInitial(sd)
	if _, err := Compose("e", c, d); err == nil {
		t.Fatal("expected error for shared outputs")
	}
}

func TestComposeRequiresInitialStates(t *testing.T) {
	a := New("a", EmptySet, EmptySet)
	a.MustAddState("s")
	b := New("b", EmptySet, EmptySet)
	sb := b.MustAddState("s")
	b.MarkInitial(sb)
	if _, err := Compose("c", a, b); err == nil {
		t.Fatal("expected error for missing initial state")
	}
}

func TestComposeLabelsAreUnion(t *testing.T) {
	s, r := senderReceiver(t)
	s.LabelStatesByName()
	r.LabelStatesByName()
	c := MustCompose("sys", s, r)
	init := c.Initial()[0]
	if !c.HasLabel(init, "sender.ready") || !c.HasLabel(init, "receiver.waiting") {
		t.Fatalf("composed labels = %v", c.Labels(init))
	}
}

func TestComposeProvenanceAndProjection(t *testing.T) {
	s, r := senderReceiver(t)
	c := MustCompose("sys", s, r)
	leaves := c.Leaves()
	if len(leaves) != 2 || leaves[0] != "sender" || leaves[1] != "receiver" {
		t.Fatalf("Leaves = %v", leaves)
	}
	in, out, ok := c.LeafAlphabet("receiver")
	if !ok || !in.Contains("msg") || !out.IsEmpty() {
		t.Fatalf("LeafAlphabet(receiver) = %v/%v/%v", in, out, ok)
	}
	if _, _, ok := c.LeafAlphabet("nope"); ok {
		t.Fatal("LeafAlphabet should fail for unknown leaf")
	}

	init := c.Initial()[0]
	next := c.TransitionsFrom(init)[0]
	run := Run{States: []StateID{init, next.To}, Steps: []Interaction{next.Label}}

	proj, err := c.ProjectRun(run, "sender")
	if err != nil {
		t.Fatal(err)
	}
	if proj.StateNames[0] != "ready" || proj.StateNames[1] != "sent" {
		t.Fatalf("projected states = %v", proj.StateNames)
	}
	// Sender's share of the joint step: no input, output msg.
	if !proj.Steps[0].In.IsEmpty() || !proj.Steps[0].Out.Contains("msg") {
		t.Fatalf("projected step = %v", proj.Steps[0])
	}

	if _, err := c.ProjectRun(run, "nope"); err == nil {
		t.Fatal("projection onto unknown leaf accepted")
	}
}

func TestComposeAll(t *testing.T) {
	s, r := senderReceiver(t)
	c, err := ComposeAll("sys", s, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 2 {
		t.Fatalf("NumStates = %d", c.NumStates())
	}
	single, err := ComposeAll("solo", s)
	if err != nil {
		t.Fatal(err)
	}
	if single.Name() != "solo" || single.NumStates() != s.NumStates() {
		t.Fatal("single-automaton ComposeAll should clone")
	}
	if _, err := ComposeAll("none"); err == nil {
		t.Fatal("empty ComposeAll accepted")
	}
}

func TestRenderStatesListingFormat(t *testing.T) {
	s, r := senderReceiver(t)
	c := MustCompose("sys", s, r)
	init := c.Initial()[0]
	tr := c.TransitionsFrom(init)[0]
	run := Run{States: []StateID{init, tr.To}, Steps: []Interaction{tr.Label}}
	text := run.RenderStates(c)
	if !strings.Contains(text, "sender.ready, receiver.waiting") {
		t.Fatalf("RenderStates missing composed state line:\n%s", text)
	}
	if !strings.Contains(text, "sender.sent, receiver.got") {
		t.Fatalf("RenderStates missing successor line:\n%s", text)
	}
}

func TestUniqueNameDisambiguates(t *testing.T) {
	a := New("a", EmptySet, EmptySet)
	a.MustAddState("x")
	if got := uniqueName(a, "x"); got == "x" {
		t.Fatal("uniqueName returned a colliding name")
	}
	if got := uniqueName(a, "fresh"); got != "fresh" {
		t.Fatalf("uniqueName altered a fresh name: %q", got)
	}
}
