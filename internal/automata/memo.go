package automata

import (
	"sync"
	"sync/atomic"

	"muml/internal/obs"
)

// MemoCache memoizes the two expensive deterministic constructions of the
// synthesis loop — chaotic closures and binary compositions — across
// independent synthesis instances. Keys are structural fingerprints of the
// operands (see Fingerprint); since ChaoticClosure and Compose are pure
// functions of exactly the fingerprinted structure, a hit may substitute
// the cached result for a rebuild.
//
// Coherence: masters stored in the cache are deep private copies and are
// never handed out directly — Lookup returns a fresh deep clone per hit.
// Callers (notably IncrementalSystem) mutate their automata in place, so
// sharing a single instance across workers would race; clone-on-handout
// keeps the cache sound at the cost of one copy per hit, which is still far
// cheaper than the product BFS it replaces.
//
// The cache is sharded by key hash: concurrent batch workers hit different
// shard mutexes, and each shard's critical section is a single map
// operation (cloning happens outside the lock).
//
// A nil *MemoCache is a valid disabled cache: Lookup always misses and
// Store is a no-op, so construction sites thread an optional cache without
// branching.
type MemoCache struct {
	shards  [memoShardCount]memoShard
	hits    atomic.Int64
	misses  atomic.Int64
	journal *obs.Journal // set at construction; may be nil
}

const memoShardCount = 16

type memoShard struct {
	mu sync.Mutex
	m  map[memoKey]*Automaton
}

// memoOp distinguishes the memoized constructions so closure and compose
// results with coincidentally equal operand hashes cannot alias.
type memoOp uint8

const (
	memoCompose memoOp = iota + 1
	memoClosure
)

func (op memoOp) String() string {
	switch op {
	case memoCompose:
		return "compose"
	case memoClosure:
		return "closure"
	}
	return "unknown"
}

type memoKey struct {
	op   memoOp
	a, b uint64
}

// NewMemoCache creates an empty cache. The journal, when non-nil, receives
// one cache_hit event per Lookup hit (s: op; n: key_a, key_b, hits); pass
// nil for an unobserved cache.
func NewMemoCache(journal *obs.Journal) *MemoCache {
	c := &MemoCache{journal: journal}
	for i := range c.shards {
		c.shards[i].m = make(map[memoKey]*Automaton)
	}
	return c
}

func (c *MemoCache) shard(k memoKey) *memoShard {
	return &c.shards[(k.a^k.b^uint64(k.op))%memoShardCount]
}

// lookup returns a private deep clone of the cached result under the given
// name, or (nil, false) on a miss. Safe on a nil cache and from concurrent
// goroutines.
func (c *MemoCache) lookup(op memoOp, a, b uint64, name string) (*Automaton, bool) {
	if c == nil {
		return nil, false
	}
	k := memoKey{op: op, a: a, b: b}
	sh := c.shard(k)
	sh.mu.Lock()
	master := sh.m[k]
	sh.mu.Unlock()
	if master == nil {
		c.misses.Add(1)
		return nil, false
	}
	hits := c.hits.Add(1)
	if c.journal.Enabled() {
		c.journal.Emit(obs.Event{Kind: obs.KindCacheHit, Iter: -1,
			S: map[string]string{"op": op.String()},
			N: map[string]int64{"key_a": int64(a), "key_b": int64(b), "hits": hits},
		})
	}
	return master.cloneDeep(name), true
}

// store records the construction result. The cache keeps its own deep copy
// as the master, so the caller remains free to mutate the original. The
// first store for a key wins; concurrent duplicate stores are identical by
// construction, so dropping the loser is sound.
func (c *MemoCache) store(op memoOp, a, b uint64, auto *Automaton) {
	if c == nil {
		return
	}
	k := memoKey{op: op, a: a, b: b}
	master := auto.cloneDeep(auto.name)
	sh := c.shard(k)
	sh.mu.Lock()
	if _, dup := sh.m[k]; !dup {
		sh.m[k] = master
	}
	sh.mu.Unlock()
}

// Stats returns the hit and miss counts and the number of cached entries.
func (c *MemoCache) Stats() (hits, misses, entries int64) {
	if c == nil {
		return 0, 0, 0
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += int64(len(sh.m))
		sh.mu.Unlock()
	}
	return c.hits.Load(), c.misses.Load(), entries
}

// cloneDeep returns a deep copy of the automaton preserving composed-state
// provenance (parts) and the leaf decomposition, which Clone/Rename do not
// carry over. Memoized results must keep provenance: counterexample
// classification (IsChaosState) and run projection read it.
func (a *Automaton) cloneDeep(name string) *Automaton {
	b := New(name, a.inputs, a.outputs)
	b.leaves = append([]leafInfo(nil), a.leaves...)
	b.states = make([]stateInfo, len(a.states))
	for i, st := range a.states {
		b.states[i] = stateInfo{
			name:   st.name,
			labels: append([]Proposition(nil), st.labels...),
			parts:  append([]string(nil), st.parts...),
		}
		b.index[st.name] = StateID(i)
	}
	b.adj = make([][]Transition, len(a.adj))
	for i, row := range a.adj {
		b.adj[i] = append([]Transition(nil), row...)
	}
	b.initial = append([]StateID(nil), a.initial...)
	return b
}
