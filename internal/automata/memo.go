package automata

import (
	"sync"
	"sync/atomic"

	"muml/internal/obs"
)

// MemoCache memoizes the two expensive deterministic constructions of the
// synthesis loop — chaotic closures and binary compositions — across
// independent synthesis instances. Keys are structural fingerprints of the
// operands (see Fingerprint); since ChaoticClosure and Compose are pure
// functions of exactly the fingerprinted structure, a hit may substitute
// the cached result for a rebuild.
//
// Coherence: masters stored in the cache are deep private copies and are
// never handed out directly — Lookup returns a fresh deep clone per hit.
// Callers (notably IncrementalSystem) mutate their automata in place, so
// sharing a single instance across workers would race; clone-on-handout
// keeps the cache sound at the cost of one copy per hit, which is still far
// cheaper than the product BFS it replaces.
//
// The cache is sharded by key hash: concurrent batch workers hit different
// shard mutexes, and each shard's critical section is a single map
// operation (cloning happens outside the lock).
//
// A nil *MemoCache is a valid disabled cache: Lookup always misses and
// Store is a no-op, so construction sites thread an optional cache without
// branching.
type MemoCache struct {
	shards  [memoShardCount]memoShard
	hits    atomic.Int64
	misses  atomic.Int64
	journal *obs.Journal // set at construction; may be nil
	// backend, when non-nil, is the second-level persistent store: memory
	// misses fall through to it, and stores write through so a later
	// process warm-starts from disk (see SetBackend).
	backend MemoBackend
}

// MemoBackend is a second-level store layered under the in-memory cache —
// typically the content-addressed on-disk store of internal/memostore.
// The cache consults it on an in-memory miss and writes every freshly
// stored construction through to it, so overlapping jobs in other
// processes and restarts of this one warm-start instead of recomputing.
//
// Payloads are opaque to the backend: the cache serializes automata with
// MarshalMemo/UnmarshalMemo, and the backend is only responsible for
// durable, integrity-checked storage of the bytes. Implementations must
// be safe for concurrent use.
type MemoBackend interface {
	// Load returns the payload stored under the key, or false. A backend
	// must never return bytes that fail its integrity check — corrupt
	// records are evicted and reported as misses.
	Load(op string, a, b uint64) ([]byte, bool)
	// Save persists the payload under the key. The first save for a key
	// wins; duplicate saves are identical by construction and may be
	// dropped.
	Save(op string, a, b uint64, payload []byte)
}

const memoShardCount = 16

type memoShard struct {
	mu sync.Mutex
	m  map[memoKey]*Automaton
}

// memoOp distinguishes the memoized constructions so closure and compose
// results with coincidentally equal operand hashes cannot alias.
type memoOp uint8

const (
	memoCompose memoOp = iota + 1
	memoClosure
)

func (op memoOp) String() string {
	switch op {
	case memoCompose:
		return "compose"
	case memoClosure:
		return "closure"
	}
	return "unknown"
}

type memoKey struct {
	op   memoOp
	a, b uint64
}

// NewMemoCache creates an empty cache. The journal, when non-nil, receives
// one cache_hit event per Lookup hit (s: op; n: key_a, key_b, hits); pass
// nil for an unobserved cache.
func NewMemoCache(journal *obs.Journal) *MemoCache {
	c := &MemoCache{journal: journal}
	for i := range c.shards {
		c.shards[i].m = make(map[memoKey]*Automaton)
	}
	return c
}

// SetBackend attaches the persistent second-level store. Call it once,
// before the cache is shared across goroutines; a nil backend leaves the
// cache memory-only.
func (c *MemoCache) SetBackend(b MemoBackend) {
	if c == nil {
		return
	}
	c.backend = b
}

func (c *MemoCache) shard(k memoKey) *memoShard {
	return &c.shards[(k.a^k.b^uint64(k.op))%memoShardCount]
}

// lookup returns a private deep clone of the cached result under the given
// name, or (nil, false) on a miss. Safe on a nil cache and from concurrent
// goroutines.
func (c *MemoCache) lookup(op memoOp, a, b uint64, name string) (*Automaton, bool) {
	if c == nil {
		return nil, false
	}
	k := memoKey{op: op, a: a, b: b}
	sh := c.shard(k)
	sh.mu.Lock()
	master := sh.m[k]
	sh.mu.Unlock()
	if master == nil && c.backend != nil {
		// Memory miss: fall through to the persistent store. A decodable
		// payload is promoted into the shard so later lookups in this
		// process stay in memory; a stale-codec payload is a plain miss.
		if payload, ok := c.backend.Load(op.String(), a, b); ok {
			if loaded, err := UnmarshalMemo(payload); err == nil {
				sh.mu.Lock()
				if cur := sh.m[k]; cur != nil {
					master = cur // a concurrent store/promotion won; identical by construction
				} else {
					sh.m[k] = loaded
					master = loaded
				}
				sh.mu.Unlock()
			}
		}
	}
	if master == nil {
		c.misses.Add(1)
		return nil, false
	}
	hits := c.hits.Add(1)
	if c.journal.Enabled() {
		c.journal.Emit(obs.Event{Kind: obs.KindCacheHit, Iter: -1,
			S: map[string]string{"op": op.String()},
			N: map[string]int64{"key_a": int64(a), "key_b": int64(b), "hits": hits},
		})
	}
	return master.cloneDeep(name), true
}

// store records the construction result. The cache keeps its own deep copy
// as the master, so the caller remains free to mutate the original. The
// first store for a key wins; concurrent duplicate stores are identical by
// construction, so dropping the loser is sound.
func (c *MemoCache) store(op memoOp, a, b uint64, auto *Automaton) {
	if c == nil {
		return
	}
	k := memoKey{op: op, a: a, b: b}
	master := auto.cloneDeep(auto.name)
	sh := c.shard(k)
	sh.mu.Lock()
	_, dup := sh.m[k]
	if !dup {
		sh.m[k] = master
	}
	sh.mu.Unlock()
	if !dup && c.backend != nil {
		// Write through (outside the shard lock) so other processes and a
		// restarted one find the result; Save itself drops duplicates.
		if payload, err := MarshalMemo(master); err == nil {
			c.backend.Save(op.String(), a, b, payload)
		}
	}
}

// Stats returns the hit and miss counts and the number of cached entries.
func (c *MemoCache) Stats() (hits, misses, entries int64) {
	if c == nil {
		return 0, 0, 0
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += int64(len(sh.m))
		sh.mu.Unlock()
	}
	return c.hits.Load(), c.misses.Load(), entries
}

// cloneDeep returns a deep copy of the automaton preserving composed-state
// provenance (parts) and the leaf decomposition, which Clone/Rename do not
// carry over. Memoized results must keep provenance: counterexample
// classification (IsChaosState) and run projection read it.
func (a *Automaton) cloneDeep(name string) *Automaton {
	b := New(name, a.inputs, a.outputs)
	b.leaves = append([]leafInfo(nil), a.leaves...)
	b.states = make([]stateInfo, len(a.states))
	for i, st := range a.states {
		b.states[i] = stateInfo{
			name:   st.name,
			labels: append([]Proposition(nil), st.labels...),
			parts:  append([]string(nil), st.parts...),
		}
		b.index[st.name] = StateID(i)
	}
	b.adj = make([][]Transition, len(a.adj))
	for i, row := range a.adj {
		b.adj[i] = append([]Transition(nil), row...)
	}
	b.initial = append([]StateID(nil), a.initial...)
	return b
}
