package automata

import (
	"fmt"
	"testing"

	"muml/internal/obs"
)

// branchy builds an automaton with a wide internal branch: the initial
// state steps (on the empty interaction) to each of n children, which
// then self-loop. Composing several of these yields BFS levels wide
// enough to cross the parallel-composition threshold.
func branchy(name string, n int) *Automaton {
	a := New(name, EmptySet, EmptySet)
	s0 := a.MustAddState(name + "0")
	a.MarkInitial(s0)
	for i := 0; i < n; i++ {
		c := a.MustAddState(fmt.Sprintf("%s_c%d", name, i))
		a.MustAddTransition(s0, Interaction{}, c)
		a.MustAddTransition(c, Interaction{}, c)
	}
	return a
}

func TestComposeAllJournalsMonotonicLevels(t *testing.T) {
	var sink obs.MemorySink
	reg := obs.NewRegistry()
	EnableObservability(obs.NewJournal(&sink), reg)
	defer DisableObservability()

	sys, err := ComposeAll("sys", branchy("x", 4), branchy("y", 4), branchy("z", 4))
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 is the single initial tuple; level 1 holds the 4^3 joint
	// branch combinations.
	if got := sys.NumStates(); got != 1+64 {
		t.Fatalf("NumStates = %d, want 65", got)
	}

	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("no compose_level events journaled")
	}
	var lastSeq uint64
	level := int64(0)
	var peak int64
	for _, e := range events {
		if e.Kind != obs.KindComposeLevel {
			t.Fatalf("unexpected event kind %q", e.Kind)
		}
		if e.Seq <= lastSeq {
			t.Fatalf("sequence not strictly increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.N["level"] != level {
			t.Fatalf("level %d out of order (want %d)", e.N["level"], level)
		}
		level++
		if e.N["frontier"] > peak {
			peak = e.N["frontier"]
		}
	}
	if peak != 64 {
		t.Fatalf("peak frontier = %d, want 64", peak)
	}
	if got := reg.MaxGauge("automata.compose_frontier_peak").Value(); got != peak {
		t.Fatalf("frontier-peak gauge = %d, want %d", got, peak)
	}
	if reg.Counter("automata.compose_levels").Value() != level {
		t.Fatalf("compose_levels counter = %d, want %d",
			reg.Counter("automata.compose_levels").Value(), level)
	}
}

func TestIncrementalSystemLastDecision(t *testing.T) {
	ic, err := NewIncrementalSystem(incTestContext(t), incTestModel(t), Universe(UniverseSingleton))
	if err != nil {
		t.Fatal(err)
	}
	if patched, reason := ic.LastDecision(); patched || reason != "initial-build" {
		t.Fatalf("after build: patched=%v reason=%q", patched, reason)
	}
	if _, err := ic.Apply(LearnDelta{}); err != nil {
		t.Fatal(err)
	}
	if patched, reason := ic.LastDecision(); !patched || reason != "empty-delta" {
		t.Fatalf("after empty delta: patched=%v reason=%q", patched, reason)
	}
}
