package automata

import (
	"math/rand"
	"strings"
	"testing"
)

func newIncompletePingPong(t *testing.T) *Incomplete {
	t.Helper()
	return NewIncomplete(pingPong(t))
}

func TestIncompleteBlockAndConsistency(t *testing.T) {
	m := newIncompletePingPong(t)
	a := m.Automaton()
	idle := a.State("idle")
	ping := Interact([]Signal{"ping"}, []Signal{"pong"})
	done := Interact(nil, []Signal{"done"})

	// Blocking an enabled interaction violates Definition 6.
	if err := m.Block(idle, ping); err == nil {
		t.Fatal("blocking an enabled interaction accepted")
	}
	if err := m.Block(idle, done); err != nil {
		t.Fatal(err)
	}
	if !m.IsBlocked(idle, done) {
		t.Fatal("IsBlocked lost the entry")
	}
	if m.IsBlocked(idle, ping) {
		t.Fatal("IsBlocked invented an entry")
	}
	if got := m.NumBlocked(); got != 1 {
		t.Fatalf("NumBlocked = %d", got)
	}
	if err := m.Consistent(); err != nil {
		t.Fatal(err)
	}
	if got := m.BlockedAt(idle); len(got) != 1 || !got[0].Equal(done) {
		t.Fatalf("BlockedAt = %v", got)
	}
	if err := m.Block(StateID(99), done); err == nil {
		t.Fatal("blocking at out-of-range state accepted")
	}
}

func TestIncompleteDeterministic(t *testing.T) {
	m := newIncompletePingPong(t)
	if !m.Deterministic() {
		t.Fatal("deterministic incomplete automaton misreported")
	}
	a := m.Automaton()
	idle := a.State("idle")
	ping := Interact([]Signal{"ping"}, []Signal{"pong"})
	a.MustAddTransition(idle, ping, idle) // second successor for same label
	if m.Deterministic() {
		t.Fatal("nondeterministic T not detected")
	}
}

func TestIncompleteCompleteAndUnknown(t *testing.T) {
	u := Universe(UniverseSingleton)
	a := New("tiny", NewSignalSet("x"), EmptySet)
	s := a.MustAddState("s")
	a.MarkInitial(s)
	m := NewIncomplete(a)

	// Universe: {}/{} and {x}/{} — both unknown initially.
	if m.Complete(u) {
		t.Fatal("empty model reported complete")
	}
	unknown := m.Unknown(s, u)
	if len(unknown) != 2 {
		t.Fatalf("Unknown = %v", unknown)
	}

	a.MustAddTransition(s, Interact([]Signal{"x"}, nil), s)
	if err := m.Block(s, Interaction{}); err != nil {
		t.Fatal(err)
	}
	if !m.Complete(u) {
		t.Fatal("fully determined model reported incomplete")
	}
	if got := m.Unknown(s, u); len(got) != 0 {
		t.Fatalf("Unknown after completion = %v", got)
	}
}

func TestIncompleteRunChecking(t *testing.T) {
	m := newIncompletePingPong(t)
	a := m.Automaton()
	idle, busy := a.State("idle"), a.State("busy")
	ping := Interact([]Signal{"ping"}, []Signal{"pong"})
	done := Interact(nil, []Signal{"done"})

	regular := Run{States: []StateID{idle, busy}, Steps: []Interaction{ping}}
	if err := m.IsRunOf(regular); err != nil {
		t.Fatal(err)
	}

	// Deadlock run needs the final interaction in T̄ (Definition 7) — not
	// merely missing from T.
	dead := Run{States: []StateID{idle}, Steps: []Interaction{done}, Deadlock: true}
	if err := m.IsRunOf(dead); err == nil {
		t.Fatal("deadlock run without T̄ entry accepted for incomplete automaton")
	}
	if err := m.Block(idle, done); err != nil {
		t.Fatal(err)
	}
	if err := m.IsRunOf(dead); err != nil {
		t.Fatalf("deadlock run with T̄ entry rejected: %v", err)
	}
}

func TestIncompleteClone(t *testing.T) {
	m := newIncompletePingPong(t)
	idle := m.Automaton().State("idle")
	done := Interact(nil, []Signal{"done"})
	if err := m.Block(idle, done); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if !c.IsBlocked(idle, done) {
		t.Fatal("clone lost blocked set")
	}
	// Mutating the clone must not affect the original.
	c.Automaton().MustAddState("fresh")
	if m.Automaton().State("fresh") != NoState {
		t.Fatal("clone shares automaton with original")
	}
}

func TestChaoticAutomatonShape(t *testing.T) {
	u := Universe(UniverseSingleton)
	in, out := NewSignalSet("i"), NewSignalSet("o")
	c := ChaoticAutomaton("chaos", in, out, u)
	if got := c.NumStates(); got != 2 {
		t.Fatalf("NumStates = %d", got)
	}
	labels := u.Enumerate(in, out)
	// s_all has 2 transitions per label (to s_all and s_delta); s_delta none.
	if got, want := c.NumTransitions(), 2*len(labels); got != want {
		t.Fatalf("NumTransitions = %d, want %d", got, want)
	}
	sDelta := c.State(ChaosDeltaState)
	if !c.IsDeadlock(sDelta) {
		t.Fatal("s_delta must block everything")
	}
	if len(c.Initial()) != 2 {
		t.Fatal("both chaos states must be initial (Definition 8)")
	}
	if !c.HasLabel(sDelta, ChaosProposition) {
		t.Fatal("chaos states must carry χ")
	}
}

func TestChaoticClosureShape(t *testing.T) {
	// Reproduces the structure of Fig. 4(b): closure of the trivial
	// single-state model.
	u := Universe(UniverseSingleton)
	a := New("shuttle2", NewSignalSet("in"), NewSignalSet("out"))
	s0 := a.MustAddState("noConvoy")
	a.MarkInitial(s0)
	m := NewIncomplete(a)
	c := ChaoticClosure(m, u)

	// States: (noConvoy,0), (noConvoy,1), s_all, s_delta.
	if got, want := c.NumStates(), 4; got != want {
		t.Fatalf("NumStates = %d, want %d", got, want)
	}
	if got, want := len(c.Initial()), 2; got != want {
		t.Fatalf("len(Initial) = %d, want %d", got, want)
	}
	closed := c.State("noConvoy" + ChaosClosedSuffix)
	open := c.State("noConvoy" + ChaosOpenSuffix)
	if closed == NoState || open == NoState {
		t.Fatal("closure lost the doubled states")
	}
	// The closed copy refuses everything (T empty); the open copy reaches
	// both chaos states under every universe label.
	if !c.IsDeadlock(closed) {
		t.Fatal("(s,0) with empty T must deadlock")
	}
	labels := u.Enumerate(a.Inputs(), a.Outputs())
	if got, want := len(c.TransitionsFrom(open)), 2*len(labels); got != want {
		t.Fatalf("open copy has %d transitions, want %d", got, want)
	}
	if !IsChaosState(c, c.State(ChaosAllState)) || IsChaosState(c, closed) {
		t.Fatal("IsChaosState misclassifies")
	}
}

func TestChaoticClosureRespectsBlocked(t *testing.T) {
	u := Universe(UniverseSingleton)
	a := New("m", NewSignalSet("x"), EmptySet)
	s0 := a.MustAddState("s0")
	a.MarkInitial(s0)
	m := NewIncomplete(a)
	x := Interact([]Signal{"x"}, nil)
	if err := m.Block(s0, x); err != nil {
		t.Fatal(err)
	}
	c := ChaoticClosure(m, u)
	open := c.State("s0" + ChaosOpenSuffix)
	for _, tr := range c.TransitionsFrom(open) {
		if tr.Label.Equal(x) {
			t.Fatal("closure added chaos transition for a blocked interaction")
		}
	}
}

// TestTheorem1 checks Theorem 1 on random instances: if M (incomplete) is
// observation conforming to a deterministic implementation M_r, then
// M_r ⊑ chaos(M).
func TestTheorem1ChaoticClosureIsSafeAbstraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := Universe(UniverseSingleton)
	for i := 0; i < 100; i++ {
		impl := randomDeterministicAutomaton(rng, "impl", 4, 2)
		// Learn a random sub-behaviour of impl: random walk observations.
		m := NewIncomplete(New("model", impl.Inputs(), impl.Outputs()))
		for w := 0; w < 3; w++ {
			run := randomWalkObservation(rng, impl, 4)
			if _, err := m.Learn(run, nil); err != nil {
				t.Fatalf("iteration %d: learn: %v", i, err)
			}
		}
		if err := m.ObservationConforming(impl); err != nil {
			t.Fatalf("iteration %d: learned model not conforming: %v", i, err)
		}
		closure := ChaoticClosure(m, u)
		ok, cex, err := Refines(impl, closure)
		if err != nil {
			t.Fatalf("iteration %d: refines: %v", i, err)
		}
		if !ok {
			t.Fatalf("iteration %d: Theorem 1 violated; cex=%v\nimpl:\n%s\nclosure:\n%s",
				i, cex, impl.Dot(), closure.Dot())
		}
	}
}

// TestLemma2 checks that composition preserves refinement on random
// instances: M2 ⊑ M2' ⇒ M1‖M2 ⊑ M1‖M2'.
func TestLemma2CompositionPreservesRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		spec := randomAutomaton(rng, "spec", 3, 2)
		impl := randomSubAutomaton(rng, "impl", spec)
		ok, _, err := Refines(impl, spec)
		if err != nil || !ok {
			continue // only test pairs that refine
		}
		// Environment automaton with disjoint alphabet (orthogonal).
		env := randomAutomaton(rng, "env", 3, 1)
		envRen, err := env.Rename("env", map[Signal]Signal{"a": "z"})
		if err != nil {
			t.Fatal(err)
		}
		left, err := Compose("l", envRen, impl)
		if err != nil {
			t.Fatal(err)
		}
		right, err := Compose("r", envRen, spec)
		if err != nil {
			t.Fatal(err)
		}
		if left.NumStates() == 0 || right.NumStates() == 0 {
			continue
		}
		ok, cex, err := Refines(left, right)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("iteration %d: Lemma 2 violated; cex=%v", i, cex)
		}
	}
}

// randomDeterministicAutomaton builds a random deterministic automaton
// where every state has at least one outgoing transition.
func randomDeterministicAutomaton(rng *rand.Rand, name string, states, signals int) *Automaton {
	inputs := make([]Signal, 0, signals)
	for i := 0; i < signals; i++ {
		inputs = append(inputs, Signal(rune('a'+i)))
	}
	a := New(name, NewSignalSet(inputs...), EmptySet)
	for i := 0; i < states; i++ {
		a.MustAddState("q" + string(rune('0'+i)))
	}
	a.MarkInitial(0)
	labels := Universe(UniverseSingleton).Enumerate(a.Inputs(), a.Outputs())
	for s := 0; s < states; s++ {
		n := 1 + rng.Intn(len(labels))
		perm := rng.Perm(len(labels))
		for _, li := range perm[:n] {
			to := StateID(rng.Intn(states))
			_ = a.AddTransition(StateID(s), labels[li], to)
		}
	}
	return a
}

// randomWalkObservation produces an observed run by walking impl randomly.
func randomWalkObservation(rng *rand.Rand, impl *Automaton, steps int) ObservedRun {
	cur := impl.Initial()[rng.Intn(len(impl.Initial()))]
	run := ObservedRun{Initial: impl.StateName(cur)}
	for i := 0; i < steps; i++ {
		ts := impl.TransitionsFrom(cur)
		if len(ts) == 0 {
			break
		}
		tr := ts[rng.Intn(len(ts))]
		run.Steps = append(run.Steps, ObservedStep{Label: tr.Label, To: impl.StateName(tr.To)})
		cur = tr.To
	}
	return run
}

func TestIncompleteDot(t *testing.T) {
	m := newIncompletePingPong(t)
	idle := m.Automaton().State("idle")
	if err := m.Block(idle, Interact(nil, []Signal{"done"})); err != nil {
		t.Fatal(err)
	}
	dot := m.Dot()
	for _, want := range []string{"digraph", "style=dashed", "refused", "doublecircle"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("Dot missing %q:\n%s", want, dot)
		}
	}
}
