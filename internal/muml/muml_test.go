package muml

import (
	"strings"
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
)

// tinyProtocol builds a requester/responder pattern for the unit tests.
func tinyProtocol(t *testing.T, responderAcks bool) *Pattern {
	t.Helper()
	req := automata.New("requester", automata.NewSignalSet("ack"), automata.NewSignalSet("req"))
	r0 := req.MustAddState("idle")
	r1 := req.MustAddState("waiting")
	req.MustAddTransition(r0, automata.Interact(nil, []automata.Signal{"req"}), r1)
	req.MustAddTransition(r1, automata.Interact([]automata.Signal{"ack"}, nil), r0)
	req.MarkInitial(r0)
	req.LabelStatesByName()

	resp := automata.New("responder", automata.NewSignalSet("req"), automata.NewSignalSet("ack"))
	s0 := resp.MustAddState("ready")
	s1 := resp.MustAddState("handling")
	resp.MustAddTransition(s0, automata.Interact([]automata.Signal{"req"}, nil), s1)
	if responderAcks {
		resp.MustAddTransition(s1, automata.Interact(nil, []automata.Signal{"ack"}), s0)
	}
	resp.MarkInitial(s0)
	resp.LabelStatesByName()

	return &Pattern{
		Name: "ReqAck",
		Roles: []Role{
			{Name: "requester", Behavior: req, Invariant: ctl.MustParse("A[] (requester.idle or requester.waiting)")},
			{Name: "responder", Behavior: resp},
		},
		Constraint: ctl.MustParse("A[] not (requester.idle and responder.handling)"),
	}
}

func TestPatternVerifySatisfied(t *testing.T) {
	v, err := tinyProtocol(t, true).Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfied {
		for _, f := range v.Failures {
			t.Logf("failure: %s", f)
		}
		t.Fatal("pattern should verify")
	}
	if v.System == nil || v.System.NumStates() == 0 {
		t.Fatal("missing composed system")
	}
}

func TestPatternVerifyFindsDeadlock(t *testing.T) {
	v, err := tinyProtocol(t, false).Verify()
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfied {
		t.Fatal("deadlocking pattern verified")
	}
	found := false
	for _, f := range v.Failures {
		if strings.Contains(f.Description, "deadlock") {
			found = true
			if f.Result.Counterexample == nil {
				t.Fatal("deadlock failure without counterexample")
			}
		}
	}
	if !found {
		t.Fatalf("no deadlock failure among %v", v.Failures)
	}
}

func TestPatternVerifyFindsConstraintViolation(t *testing.T) {
	p := tinyProtocol(t, true)
	// An impossible constraint.
	p.Constraint = ctl.MustParse("A[] requester.idle")
	v, err := p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfied {
		t.Fatal("violated constraint reported satisfied")
	}
}

func TestPatternVerifyChecksRoleInvariants(t *testing.T) {
	p := tinyProtocol(t, true)
	p.Roles[0].Invariant = ctl.MustParse("A[] requester.idle")
	v, err := p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfied {
		t.Fatal("violated role invariant reported satisfied")
	}
	if !strings.Contains(v.Failures[0].Description, "role invariant") {
		t.Fatalf("failure = %v", v.Failures[0])
	}
}

func TestPatternRejectsNonACTL(t *testing.T) {
	p := tinyProtocol(t, true)
	p.Constraint = ctl.EF(ctl.Atom("x"))
	if _, err := p.Verify(); err == nil {
		t.Fatal("non-ACTL constraint accepted")
	}
	p = tinyProtocol(t, true)
	p.Roles[0].Invariant = ctl.EF(ctl.Atom("x"))
	if _, err := p.Verify(); err == nil {
		t.Fatal("non-ACTL invariant accepted")
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := (&Pattern{Name: "empty"}).Verify(); err == nil {
		t.Fatal("pattern without roles accepted")
	}
	p := tinyProtocol(t, true)
	p.Roles[0].Behavior = nil
	if _, err := p.Verify(); err == nil {
		t.Fatal("role without behavior accepted")
	}
}

func TestComponentRefinementCheck(t *testing.T) {
	p := tinyProtocol(t, true)

	// A port that exactly matches the role refines it.
	okPort := p.Roles[1].Behavior.Clone("responderImpl")
	comp := &Component{Name: "impl", Ports: []Port{{Role: "responder", Behavior: okPort}}}
	if err := comp.VerifyAgainst(p); err != nil {
		t.Fatalf("conforming component rejected: %v", err)
	}

	// A port with extra behavior does not refine.
	bad := p.Roles[1].Behavior.Clone("bad")
	s0 := bad.State("ready")
	bad.MustAddTransition(s0, automata.Interaction{}, s0) // added idle loop
	comp = &Component{Name: "impl", Ports: []Port{{Role: "responder", Behavior: bad}}}
	if err := comp.VerifyAgainst(p); err == nil {
		t.Fatal("non-refining component accepted")
	}

	// Unknown role.
	comp = &Component{Name: "impl", Ports: []Port{{Role: "ghost", Behavior: okPort}}}
	if err := comp.VerifyAgainst(p); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestComponentBehaviorComposesPorts(t *testing.T) {
	p := tinyProtocol(t, true)
	comp := &Component{
		Name: "impl",
		Ports: []Port{
			{Role: "requester", Behavior: p.Roles[0].Behavior},
			{Role: "responder", Behavior: p.Roles[1].Behavior},
		},
	}
	b, err := comp.Behavior()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumStates() == 0 {
		t.Fatal("empty composed behavior")
	}
	if _, err := (&Component{Name: "none"}).Behavior(); err == nil {
		t.Fatal("component without ports accepted")
	}
}
