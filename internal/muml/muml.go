// Package muml implements the Mechatronic UML architectural layer of the
// paper: reusable coordination patterns made of roles and connectors, with
// pattern constraints and role invariants, and components whose ports
// refine the roles of the patterns they participate in.
//
// A pattern (Section "Modeling", Fig. 1) consists of roles whose behavior
// is given by real-time statecharts (flattened to I/O automata), a
// connector modeling channel delay and reliability, a pattern constraint
// restricting the overall behavior, and per-role invariants. Verification
// composes the role and connector automata and model checks the constraint
// together with deadlock freedom; role invariants are checked on the role
// automata in isolation (they are compositional ACTL properties, Section
// 2.4).
package muml

import (
	"errors"
	"fmt"

	"muml/internal/automata"
	"muml/internal/ctl"
)

// Role is one communication partner of a coordination pattern.
type Role struct {
	// Name of the role, e.g. "frontRole".
	Name string
	// Behavior is the role protocol automaton (a flattened RTSC). Its
	// states should be labeled (LabelStatesByName or WithStateLabels) so
	// constraints can refer to "role.state" propositions.
	Behavior *automata.Automaton
	// Invariant is the role invariant (timed ACTL), or nil.
	Invariant ctl.Formula
}

// Pattern is a reusable coordination pattern.
type Pattern struct {
	// Name of the pattern, e.g. "DistanceCoordination".
	Name string
	// Roles of the pattern, in a fixed order.
	Roles []Role
	// Connectors are optional channel automata composed between the
	// roles. An empty list means the roles communicate synchronously
	// (shared signals, zero delay).
	Connectors []*automata.Automaton
	// Constraint is the pattern constraint (timed ACTL), e.g.
	// "A[] not (rearRole.convoy and frontRole.noConvoy)".
	Constraint ctl.Formula
}

// Verification reports the outcome of a pattern or integration check.
type Verification struct {
	// Satisfied reports whether every checked property held.
	Satisfied bool
	// Failures lists the violated properties with witnesses.
	Failures []PropertyFailure
	// System is the composed automaton that was analyzed.
	System *automata.Automaton
}

// PropertyFailure is one violated property with its counterexample.
type PropertyFailure struct {
	Property    ctl.Formula
	Description string
	Result      ctl.Result
}

func (f PropertyFailure) String() string {
	return fmt.Sprintf("%s: %s violated: %s", f.Description, f.Property, f.Result.Explanation)
}

// Compose builds the pattern's closed system: all role behaviors and
// connectors in parallel.
func (p *Pattern) Compose() (*automata.Automaton, error) {
	if len(p.Roles) == 0 {
		return nil, fmt.Errorf("muml: pattern %q has no roles", p.Name)
	}
	parts := make([]*automata.Automaton, 0, len(p.Roles)+len(p.Connectors))
	for _, r := range p.Roles {
		if r.Behavior == nil {
			return nil, fmt.Errorf("muml: role %q has no behavior", r.Name)
		}
		parts = append(parts, r.Behavior)
	}
	parts = append(parts, p.Connectors...)
	return automata.ComposeAll(p.Name, parts...)
}

// Verify checks the pattern: every role invariant on its role automaton,
// then the pattern constraint and deadlock freedom on the composition.
// Non-ACTL constraints are rejected because only ACTL survives refinement
// and composition (Section 2.4).
func (p *Pattern) Verify() (*Verification, error) {
	if len(p.Roles) == 0 {
		return nil, fmt.Errorf("muml: pattern %q has no roles", p.Name)
	}
	for _, r := range p.Roles {
		if r.Behavior == nil {
			return nil, fmt.Errorf("muml: role %q has no behavior", r.Name)
		}
		if r.Invariant != nil && !ctl.IsACTL(r.Invariant) {
			return nil, fmt.Errorf("muml: role %q invariant %s is not ACTL", r.Name, r.Invariant)
		}
	}
	if p.Constraint != nil && !ctl.IsACTL(p.Constraint) {
		return nil, fmt.Errorf("muml: pattern constraint %s is not ACTL", p.Constraint)
	}

	v := &Verification{Satisfied: true}

	// Role invariants are verified per role; by compositionality they
	// carry over to every deadlock-free composition and refinement.
	for _, r := range p.Roles {
		if r.Invariant == nil {
			continue
		}
		res := ctl.Check(r.Behavior, r.Invariant)
		if !res.Holds {
			v.Satisfied = false
			v.Failures = append(v.Failures, PropertyFailure{
				Property:    r.Invariant,
				Description: fmt.Sprintf("role invariant of %q", r.Name),
				Result:      res,
			})
		}
	}

	sys, err := p.Compose()
	if err != nil {
		return nil, err
	}
	v.System = sys
	checker := ctl.NewChecker(sys)

	deadlock := checker.Check(ctl.NoDeadlock())
	if !deadlock.Holds {
		v.Satisfied = false
		v.Failures = append(v.Failures, PropertyFailure{
			Property:    ctl.NoDeadlock(),
			Description: "deadlock freedom",
			Result:      deadlock,
		})
	}
	if p.Constraint != nil {
		res := checker.Check(p.Constraint)
		if !res.Holds {
			v.Satisfied = false
			v.Failures = append(v.Failures, PropertyFailure{
				Property:    p.Constraint,
				Description: "pattern constraint",
				Result:      res,
			})
		}
	}
	return v, nil
}

// Port is a component port: the refinement of one pattern role.
type Port struct {
	// Role names the refined role.
	Role string
	// Behavior is the port's automaton. It must refine the role behavior
	// (Definition 4): no added observable behavior, no new refusals.
	Behavior *automata.Automaton
}

// Component is a concrete software component participating in patterns
// through its ports.
type Component struct {
	Name  string
	Ports []Port
	// Internal is an optional internal synchronization automaton composed
	// with the ports (the "additional internal RTSC for coordination").
	Internal *automata.Automaton
}

// Behavior composes the component's ports and internal automaton.
func (c *Component) Behavior() (*automata.Automaton, error) {
	if len(c.Ports) == 0 {
		return nil, fmt.Errorf("muml: component %q has no ports", c.Name)
	}
	parts := make([]*automata.Automaton, 0, len(c.Ports)+1)
	for _, p := range c.Ports {
		parts = append(parts, p.Behavior)
	}
	if c.Internal != nil {
		parts = append(parts, c.Internal)
	}
	return automata.ComposeAll(c.Name, parts...)
}

// VerifyAgainst checks that the component conforms to the pattern: every
// port refines its role behavior (exact check, Definition 4) and satisfies
// the role's invariant.
func (c *Component) VerifyAgainst(p *Pattern) error {
	var errs []error
	for _, port := range c.Ports {
		role, ok := findRole(p, port.Role)
		if !ok {
			errs = append(errs, fmt.Errorf("muml: component %q port refines unknown role %q", c.Name, port.Role))
			continue
		}
		ok, cex, err := automata.Refines(port.Behavior, role.Behavior)
		if err != nil {
			errs = append(errs, fmt.Errorf("muml: refinement check for port %q: %w", port.Role, err))
			continue
		}
		if !ok {
			errs = append(errs, fmt.Errorf("muml: port %q does not refine role %q (trace %v)",
				port.Role, role.Name, cex))
			continue
		}
		if role.Invariant != nil {
			res := ctl.Check(port.Behavior, role.Invariant)
			if !res.Holds {
				errs = append(errs, fmt.Errorf("muml: port %q violates role invariant %s: %s",
					port.Role, role.Invariant, res.Explanation))
			}
		}
	}
	return errors.Join(errs...)
}

func findRole(p *Pattern, name string) (Role, bool) {
	for _, r := range p.Roles {
		if r.Name == name {
			return r, true
		}
	}
	return Role{}, false
}
