package mbt

import (
	"os"
	"path/filepath"
	"testing"

	"muml/internal/automata"
	"muml/internal/gen"
	"muml/internal/legacy"
)

// TestCheckInstanceDeterministicSeeds is the deterministic slice of the
// soak: every seed must come out of the full oracle battery clean.
func TestCheckInstanceDeterministicSeeds(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		inst, err := gen.New(seed, gen.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f := CheckInstance(inst, Options{}); f != nil {
			t.Fatalf("seed %d: %v", seed, f)
		}
	}
}

// TestCheckInstanceWideAlphabet pushes the alphabet past the interner's
// 64-signal capacity so composition, chaotic closure, and refinement all
// take their slice fallback paths under the oracle.
func TestCheckInstanceWideAlphabet(t *testing.T) {
	if testing.Short() {
		t.Skip("wide alphabets are slow in -short mode")
	}
	for seed := int64(1); seed <= 3; seed++ {
		inst, err := gen.New(seed, gen.WideConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if total := inst.Legacy.Inputs().Len() + inst.Legacy.Outputs().Len(); total <= 64 {
			t.Fatalf("seed %d: wide config produced only %d signals", seed, total)
		}
		if f := CheckInstance(inst, Options{}); f != nil {
			t.Fatalf("seed %d: %v", seed, f)
		}
	}
}

// TestCorpusReplays replays every regression repro under testdata/. The
// corpus records once-failing minimized instances; after the fixes they
// must pass the full oracle battery.
func TestCorpusReplays(t *testing.T) {
	files, err := CorpusFiles("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty regression corpus: expected pinned repros under testdata/")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			inst, check, err := LoadRepro(file)
			if err != nil {
				t.Fatal(err)
			}
			if f := CheckInstance(inst, Options{}); f != nil {
				t.Fatalf("corpus entry (pinned for %s) fails again: %v", check, f)
			}
		})
	}
}

// mutedComponent wraps the true component but swallows every output —
// a deterministic stand-in for a buggy learner/implementation pair whose
// observed behavior diverges from the recorded ground truth.
type mutedComponent struct {
	inner legacy.Component
}

func (c *mutedComponent) Reset() { c.inner.Reset() }

func (c *mutedComponent) Step(in automata.SignalSet) (automata.SignalSet, bool) {
	_, ok := c.inner.Step(in)
	return automata.NewSignalSet(), ok
}

// TestOracleCatchesDivergentComponent proves the harness has teeth: when
// the component under test diverges from the ground truth the generator
// recorded, some oracle check must fire, and Shrink must hand back a
// no-larger instance failing the same check.
func TestOracleCatchesDivergentComponent(t *testing.T) {
	var caught *Failure
	var seed int64
	for seed = 1; seed <= 60; seed++ {
		inst, err := gen.New(seed, gen.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Only seeds whose truth actually emits output can expose the
		// muted fault.
		emits := false
		for _, tr := range inst.Legacy.Transitions() {
			if tr.Label.Out.Len() > 0 {
				emits = true
				break
			}
		}
		if !emits {
			continue
		}
		comp, err := inst.Component()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if f := CheckInstance(inst, Options{Component: &mutedComponent{inner: comp}}); f != nil {
			caught = f
			break
		}
	}
	if caught == nil {
		t.Fatal("oracle never caught the muted component over 60 seeds")
	}
	t.Logf("seed %d caught: %s — %s", seed, caught.Check, caught.Detail)

	orig := caught.Instance
	comp, err := orig.Component()
	if err != nil {
		t.Fatal(err)
	}
	shrunk := Shrink(caught, Options{Component: &mutedComponent{inner: comp}})
	if shrunk == nil {
		t.Fatal("Shrink lost the failure")
	}
	if shrunk.Check != caught.Check {
		t.Fatalf("Shrink changed the check: %s -> %s", caught.Check, shrunk.Check)
	}
	if s, o := shrunk.Instance.Legacy.NumStates(), orig.Legacy.NumStates(); s > o {
		t.Fatalf("shrunk legacy grew: %d -> %d states", o, s)
	}
	if s, o := shrunk.Instance.Context.NumStates(), orig.Context.NumStates(); s > o {
		t.Fatalf("shrunk context grew: %d -> %d states", o, s)
	}
	t.Logf("shrunk to %s", shrunk.Instance.Summary())
}

// TestReproRoundTrip checks that a failure written as a corpus entry
// loads back structurally identical.
func TestReproRoundTrip(t *testing.T) {
	inst, err := gen.New(9, gen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := &Failure{Check: "round-trip", Detail: "synthetic", Instance: inst}
	path := filepath.Join(t.TempDir(), ReproName(f))
	if err := WriteRepro(path, f); err != nil {
		t.Fatal(err)
	}
	loaded, check, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if check != "round-trip" {
		t.Fatalf("check = %q", check)
	}
	if loaded.Seed != inst.Seed {
		t.Fatalf("seed = %d, want %d", loaded.Seed, inst.Seed)
	}
	wantCtx, _ := automata.EncodeJSON(inst.Context)
	gotCtx, _ := automata.EncodeJSON(loaded.Context)
	if string(wantCtx) != string(gotCtx) {
		t.Fatal("context automaton changed across the round trip")
	}
	wantLeg, _ := automata.EncodeJSON(inst.Legacy)
	gotLeg, _ := automata.EncodeJSON(loaded.Legacy)
	if string(wantLeg) != string(gotLeg) {
		t.Fatal("legacy automaton changed across the round trip")
	}
	wantProp, gotProp := "", ""
	if inst.Property != nil {
		wantProp = inst.Property.String()
	}
	if loaded.Property != nil {
		gotProp = loaded.Property.String()
	}
	if wantProp != gotProp {
		t.Fatalf("property changed: %q -> %q", wantProp, gotProp)
	}
}

// TestLoadReproRejectsCorruptEntries pins the error paths the corpus
// loader must survive.
func TestLoadReproRejectsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRepro(bad); err == nil {
		t.Fatal("corrupt JSON loaded without error")
	}
	if _, _, err := LoadRepro(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file loaded without error")
	}
}
