package mbt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"muml/internal/automata"
	"muml/internal/ctl"
	"muml/internal/gen"
)

// reproFile is the on-disk form of a minimized failing instance. The
// automata use the package automata JSON interchange format; the property
// is stored as CCTL text (generated properties round-trip through the
// parser — see gen's round-trip test).
type reproFile struct {
	Check    string          `json:"check"`
	Detail   string          `json:"detail,omitempty"`
	Seed     int64           `json:"seed,omitempty"`
	Property string          `json:"property,omitempty"`
	Context  json.RawMessage `json:"context"`
	Legacy   json.RawMessage `json:"legacy"`
}

// WriteRepro stores a (typically shrunk) failure as a regression-corpus
// entry at the given path.
func WriteRepro(path string, f *Failure) error {
	ctx, err := automata.EncodeJSON(f.Instance.Context)
	if err != nil {
		return fmt.Errorf("mbt: encode context: %w", err)
	}
	leg, err := automata.EncodeJSON(f.Instance.Legacy)
	if err != nil {
		return fmt.Errorf("mbt: encode legacy: %w", err)
	}
	spec := reproFile{
		Check:   f.Check,
		Detail:  f.Detail,
		Seed:    f.Instance.Seed,
		Context: ctx,
		Legacy:  leg,
	}
	if f.Instance.Property != nil {
		spec.Property = f.Instance.Property.String()
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReproName derives a corpus file name from a failure.
func ReproName(f *Failure) string {
	return fmt.Sprintf("%s-seed%d.json", f.Check, f.Instance.Seed)
}

// LoadRepro reads a corpus entry back into an instance and the name of the
// check it once failed.
func LoadRepro(path string) (*gen.Instance, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var spec reproFile
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, "", fmt.Errorf("mbt: %s: %w", path, err)
	}
	ctx, err := automata.DecodeJSON(spec.Context)
	if err != nil {
		return nil, "", fmt.Errorf("mbt: %s: context: %w", path, err)
	}
	leg, err := automata.DecodeJSON(spec.Legacy)
	if err != nil {
		return nil, "", fmt.Errorf("mbt: %s: legacy: %w", path, err)
	}
	inst := &gen.Instance{Seed: spec.Seed, Cfg: gen.DefaultConfig(), Context: ctx, Legacy: leg}
	if spec.Property != "" {
		prop, err := ctl.Parse(spec.Property)
		if err != nil {
			return nil, "", fmt.Errorf("mbt: %s: property: %w", path, err)
		}
		inst.Property = prop
	}
	if err := inst.Validate(); err != nil {
		return nil, "", fmt.Errorf("mbt: %s: %w", path, err)
	}
	return inst, spec.Check, nil
}

// CorpusFiles lists the repro entries under a corpus directory.
func CorpusFiles(dir string) ([]string, error) {
	return filepath.Glob(filepath.Join(dir, "*.json"))
}
