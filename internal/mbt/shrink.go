package mbt

import (
	"muml/internal/automata"
	"muml/internal/gen"
)

// shrinkBudget caps the number of oracle invocations one Shrink call may
// spend; greedy minimization stops early rather than stalling a soak run
// on a pathological instance.
const shrinkBudget = 400

// Shrink greedily minimizes a failing instance: it repeatedly tries to
// drop the property, a state, a transition, or a signal, keeping any
// reduction under which the *same* check still fails, until no single
// removal reproduces (a local minimum) or the budget is exhausted. The
// returned failure carries the minimized instance; its Seed is cleared
// because the instance no longer corresponds to a generator seed.
func Shrink(f *Failure, opts Options) *Failure {
	if f == nil {
		return nil
	}
	cur := f
	budget := shrinkBudget
	reproduces := func(cand *gen.Instance) *Failure {
		if budget <= 0 {
			return nil
		}
		budget--
		if err := cand.Validate(); err != nil {
			return nil
		}
		got := CheckInstance(cand, opts)
		if got != nil && got.Check == f.Check {
			return got
		}
		return nil
	}
	for budget > 0 {
		next := shrinkStep(cur.Instance, reproduces)
		if next == nil {
			break
		}
		cur = next
	}
	return cur
}

// shrinkStep tries every single-removal candidate in order of expected
// payoff and returns the first failure that reproduces, or nil at a local
// minimum. Untouched automata are shared between the original and the
// candidate — nothing in the oracle mutates them.
func shrinkStep(inst *gen.Instance, reproduces func(*gen.Instance) *Failure) *Failure {
	derive := func(mutate func(*gen.Instance)) *Failure {
		cand := &gen.Instance{Cfg: inst.Cfg, Context: inst.Context, Legacy: inst.Legacy, Property: inst.Property}
		mutate(cand)
		if cand.Context == nil || cand.Legacy == nil {
			return nil
		}
		return reproduces(cand)
	}

	if inst.Property != nil {
		if got := derive(func(c *gen.Instance) { c.Property = nil }); got != nil {
			return got
		}
	}
	// States, highest ID first: generated automata mark state 0 initial,
	// so this order leaves the initial state for last (where DropState
	// refuses it anyway).
	for id := inst.Legacy.NumStates() - 1; id >= 0; id-- {
		victim := automata.StateID(id)
		if got := derive(func(c *gen.Instance) { c.Legacy = gen.DropState(inst.Legacy, victim) }); got != nil {
			return got
		}
	}
	for id := inst.Context.NumStates() - 1; id >= 0; id-- {
		victim := automata.StateID(id)
		if got := derive(func(c *gen.Instance) { c.Context = gen.DropState(inst.Context, victim) }); got != nil {
			return got
		}
	}
	for i := inst.Legacy.NumTransitions() - 1; i >= 0; i-- {
		idx := i
		if got := derive(func(c *gen.Instance) { c.Legacy = gen.DropTransition(inst.Legacy, idx) }); got != nil {
			return got
		}
	}
	for i := inst.Context.NumTransitions() - 1; i >= 0; i-- {
		idx := i
		if got := derive(func(c *gen.Instance) { c.Context = gen.DropTransition(inst.Context, idx) }); got != nil {
			return got
		}
	}
	signals := append(inst.Legacy.Inputs().Signals(), inst.Legacy.Outputs().Signals()...)
	for _, sig := range signals {
		victim := sig
		if got := derive(func(c *gen.Instance) {
			c.Legacy = gen.DropSignal(inst.Legacy, victim)
			c.Context = gen.DropSignal(inst.Context, victim)
		}); got != nil {
			return got
		}
	}
	return nil
}
