package mbt

import (
	"context"
	"testing"
	"time"

	"muml/internal/automata"
	"muml/internal/gen"
)

// fuzzExecDeadline bounds one oracle execution during fuzzing. A mutated
// seed occasionally lands on a pathologically slow instance; without a
// bound one such input stalls the whole campaign. Deadline hits are
// skipped, not failed — slowness is not unsoundness.
const fuzzExecDeadline = 30 * time.Second

// FuzzSynthesisSoundness drives the full oracle battery from a fuzzed
// seed. Go's fuzzer mutates the seed; the generator turns it into a
// reproducible instance, so any crash is replayable from the corpus
// entry alone.
func FuzzSynthesisSoundness(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		inst, err := gen.New(seed, gen.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: generator failed: %v", seed, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), fuzzExecDeadline)
		defer cancel()
		if fail := CheckInstance(inst, Options{Context: ctx}); fail != nil {
			if fail.Canceled() {
				t.Skipf("seed %d: exceeded the %v per-exec deadline", seed, fuzzExecDeadline)
			}
			shrunk := Shrink(fail, Options{})
			t.Fatalf("seed %d: %v\nshrunk: %v", seed, fail, shrunk)
		}
	})
}

// FuzzIocoSoundness drives the nondeterministic synthesis path from a
// fuzzed seed: the generator's nondet knobs plant output races, duplicate
// successors, and lossy outputs, and the oracle battery (including the
// ioco laws and the state-set witness check) validates every verdict
// against the known ground truth. Deterministic seeds still exercise the
// forced-nondet routing, checking that the ioco path agrees with the
// deterministic one where they overlap.
func FuzzIocoSoundness(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		inst, err := gen.New(seed, gen.NondetConfig())
		if err != nil {
			t.Fatalf("seed %d: generator failed: %v", seed, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), fuzzExecDeadline)
		defer cancel()
		if fail := CheckInstance(inst, Options{Context: ctx, Nondet: true}); fail != nil {
			if fail.Canceled() {
				t.Skipf("seed %d: exceeded the %v per-exec deadline", seed, fuzzExecDeadline)
			}
			shrunk := Shrink(fail, Options{Nondet: true})
			t.Fatalf("seed %d: %v\nshrunk: %v", seed, fail, shrunk)
		}
	})
}

// FuzzRefinementLaws checks the refinement-preorder laws on generated
// automata without running the synthesis loop: reflexivity, the chaotic
// automaton as ⊑-top, and Simulates ⇒ Refines on pairs where refinement
// genuinely can go either way.
func FuzzRefinementLaws(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	universe := automata.Universe(automata.UniverseSingleton)
	f.Fuzz(func(t *testing.T, seed int64) {
		inst, err := gen.New(seed, gen.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: generator failed: %v", seed, err)
		}
		truth, err := inst.Truth()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chaotic := automata.ChaoticAutomaton("chaos", truth.Inputs(), truth.Outputs(), universe)
		for _, a := range []*automata.Automaton{truth, inst.Context, chaotic} {
			if ok, cex, err := automata.Refines(a, a); err != nil || !ok {
				t.Fatalf("seed %d: %s ⊑ %s (reflexivity) failed: cex=%v err=%v",
					seed, a.Name(), a.Name(), cex, err)
			}
		}
		if ok, cex, err := automata.Refines(truth, chaotic); err != nil || !ok {
			t.Fatalf("seed %d: truth ⊑ chaotic failed: cex=%v err=%v", seed, cex, err)
		}
		pairs := [][2]*automata.Automaton{
			{truth, chaotic},
			{chaotic, truth},
			{inst.Context, inst.Context},
		}
		for _, p := range pairs {
			if automata.Simulates(p[0], p[1]) {
				ok, _, err := automata.Refines(p[0], p[1])
				if err != nil {
					t.Fatalf("seed %d: Refines(%s, %s): %v", seed, p[0].Name(), p[1].Name(), err)
				}
				if !ok {
					t.Fatalf("seed %d: Simulates(%s, %s) accepted but Refines rejected",
						seed, p[0].Name(), p[1].Name())
				}
			}
		}
	})
}
