// Package mbt is the model-based soundness harness for the synthesis loop:
// it runs the full core.Synthesizer against generated instances
// (internal/gen) and checks every verdict against the generator's ground
// truth, plus the algebraic laws the construction rests on.
//
// The checks encode the paper's guarantees directly:
//
//   - VerdictProven (Lemma 5): model checking the *true* composition
//     M_a^c ‖ M_r must confirm both the property and deadlock freedom.
//   - VerdictViolation (Lemma 6): the true composition must really violate
//     the claimed kind, and the reported witness must replay step-for-step
//     on the ground-truth component; a deadlock witness must additionally
//     end in a state where no context offer forms a joint step.
//   - Theorem 1: the explored ground truth refines the chaotic closure of
//     the learned model, which must be observation conforming.
//   - Refinement preorder laws: reflexivity, the chaotic automaton as
//     ⊑-top, and Simulates ⇒ Refines.
//   - Incremental-vs-rebuild equivalence: the delta-patched pipeline must
//     be observationally identical to the from-scratch one
//     (core.EquivalentReports).
//
// On failure, Shrink greedily minimizes the instance while the same check
// keeps failing, and WriteRepro stores it under testdata/ as a regression
// corpus replayed by the package tests.
package mbt

import (
	"context"
	"errors"
	"fmt"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/gen"
	"muml/internal/legacy"
	"muml/internal/obs"
)

// Check names reported in Failure.Check. Shrinking reproduces by exact
// check name, so these are part of the harness's stable surface.
const (
	CheckRunError               = "run-error"
	CheckProvenUnsound          = "proven-unsound"
	CheckViolationUnsound       = "violation-unsound"
	CheckWitnessMissing         = "witness-missing"
	CheckWitnessReplay          = "witness-replay"
	CheckWitnessDeadlock        = "witness-deadlock-unconfirmed"
	CheckLawChaosOverapprox     = "law-chaos-overapprox"
	CheckLawConformance         = "law-observation-conformance"
	CheckLawRefinesReflexive    = "law-refines-reflexive"
	CheckLawChaoticTop          = "law-chaotic-top"
	CheckLawSimulatesRefines    = "law-simulates-implies-refines"
	CheckLawIocoReflexive       = "law-ioco-reflexive"
	CheckLawRefinesIoco         = "law-refines-implies-ioco"
	CheckLawDeltaSaturation     = "law-delta-saturation-idempotent"
	CheckIncrementalEquivalence = "incremental-equivalence"
	// CheckCanceled is reported when Options.Context expired mid-run. It is
	// a scheduling outcome, not a soundness violation: callers running
	// under a deadline (cmd/mbt -deadline, the fuzz harness) detect it via
	// Failure.Canceled() and stop instead of reporting a failure.
	CheckCanceled = "canceled"
)

// Failure describes one soundness violation found on an instance.
type Failure struct {
	// Check is the stable name of the violated oracle check.
	Check string
	// Detail is a human-readable account of the violation.
	Detail string
	// Instance is the instance the check failed on (the original or, after
	// Shrink, a minimized one).
	Instance *gen.Instance
}

func (f *Failure) Error() string {
	return fmt.Sprintf("mbt: %s: %s (%s)", f.Check, f.Detail, f.Instance.Summary())
}

// Canceled reports whether the failure is a deadline/cancellation outcome
// rather than a soundness violation.
func (f *Failure) Canceled() bool { return f != nil && f.Check == CheckCanceled }

func fail(inst *gen.Instance, check, format string, args ...any) *Failure {
	return &Failure{Check: check, Detail: fmt.Sprintf(format, args...), Instance: inst}
}

// Options configure one oracle run.
type Options struct {
	// Journal, when non-nil, receives the synthesis loop's structured
	// event stream (passed through to core.Options.Journal).
	Journal *obs.Journal
	// Component overrides the component under test. By default the
	// ground-truth automaton is wrapped; tests of the harness itself
	// inject a component that deliberately diverges from the recorded
	// ground truth to prove the oracle catches it.
	Component legacy.Component
	// SkipLaws disables the algebraic-law checks, leaving only the
	// verdict-soundness oracles (for cheaper soak configurations).
	SkipLaws bool
	// Nondet forces the nondeterministic (ioco) synthesis path even for a
	// deterministic ground truth. Instances whose ground truth is
	// function-nondeterministic take that path regardless.
	Nondet bool
	// Context, when non-nil, bounds the oracle run: synthesis aborts when
	// it expires and CheckInstance returns a CheckCanceled failure.
	Context context.Context
}

// ctx returns the effective context (never nil).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// CheckInstance runs the full synthesis loop on the instance and checks
// every soundness property against the ground truth. It returns nil when
// all checks pass.
func CheckInstance(inst *gen.Instance, opts Options) *Failure {
	iface := inst.Interface()
	universe := automata.Universe(automata.UniverseSingleton)

	newComponent := func() (legacy.Component, error) {
		if opts.Component != nil {
			opts.Component.Reset()
			return opts.Component, nil
		}
		return inst.Component()
	}

	runOnce := func(coreOpts core.Options) (*core.Report, *Failure) {
		comp, err := newComponent()
		if err != nil {
			return nil, fail(inst, CheckRunError, "wrap component: %v", err)
		}
		coreOpts.Context = opts.Context
		synth, err := core.New(inst.Context, comp, iface, coreOpts)
		if err != nil {
			return nil, fail(inst, CheckRunError, "core.New: %v", err)
		}
		report, err := synth.Run()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil, fail(inst, CheckCanceled, "synthesis: %v", err)
			}
			return nil, fail(inst, CheckRunError, "synthesis: %v", err)
		}
		return report, nil
	}

	if err := opts.ctx().Err(); err != nil {
		return fail(inst, CheckCanceled, "%v", err)
	}
	useNondet := opts.Nondet || inst.Nondet()
	report, f := runOnce(core.Options{Property: inst.Property, Journal: opts.Journal, Nondet: useNondet})
	if f != nil {
		return f
	}

	// Ground truth: the real integrated system, model checked directly.
	truth, err := inst.Truth()
	if err != nil {
		return fail(inst, CheckRunError, "explore ground truth: %v", err)
	}
	sys, err := automata.Compose("truth", inst.Context, truth)
	if err != nil {
		return fail(inst, CheckRunError, "compose ground truth: %v", err)
	}
	checker := ctl.NewChecker(sys)
	propHolds := inst.Property == nil || checker.Holds(inst.Property)
	deadlockFree := checker.Holds(ctl.NoDeadlock())

	switch report.Verdict {
	case core.VerdictProven:
		if !propHolds || !deadlockFree {
			return fail(inst, CheckProvenUnsound,
				"verdict proven but ground truth has property=%v deadlock-free=%v", propHolds, deadlockFree)
		}
	case core.VerdictViolation:
		if propHolds && deadlockFree {
			return fail(inst, CheckViolationUnsound,
				"verdict violation (%v) but ground truth satisfies property and deadlock freedom", report.Kind)
		}
		switch report.Kind {
		case core.ViolationConstraint:
			if propHolds {
				return fail(inst, CheckViolationUnsound,
					"constraint violation reported but the property holds on the ground truth")
			}
		case core.ViolationDeadlock:
			if deadlockFree {
				return fail(inst, CheckViolationUnsound,
					"deadlock reported but the ground truth composition is deadlock free")
			}
		}
		if useNondet {
			if f := checkWitnessNondet(inst, report, sys); f != nil {
				return f
			}
		} else if f := checkWitness(inst, iface, report, newComponent); f != nil {
			return f
		}
	default:
		return fail(inst, CheckRunError, "unknown verdict %d", report.Verdict)
	}

	if !opts.SkipLaws {
		if f := checkLaws(inst, truth, report, universe, useNondet); f != nil {
			return f
		}
	}

	if useNondet {
		// The nondeterministic path always rebuilds from scratch (merged
		// branches defeat delta patching), so the incremental-equivalence
		// oracle degenerates to running the same pipeline twice.
		return nil
	}

	// Incremental-vs-rebuild equivalence: the delta-patched pipeline must
	// follow the exact same trajectory as a from-scratch rebuild.
	rebuilt, f := runOnce(core.Options{Property: inst.Property, DisableIncremental: true})
	if f != nil {
		return f
	}
	if err := core.EquivalentReports(report, rebuilt); err != nil {
		return fail(inst, CheckIncrementalEquivalence, "%v", err)
	}
	return nil
}

// checkWitnessNondet validates a violation witness against the *true
// composition* instead of replaying it on the component: replaying a
// specific path against a fairly-scheduled nondeterministic component
// would require aligning its schedule, so the witness's label sequence is
// walked as a state set over M_a^c ‖ M_r. A deadlock witness must be able
// to end in a real composed deadlock state.
func checkWitnessNondet(inst *gen.Instance, report *core.Report, sys *automata.Automaton) *Failure {
	if report.Witness == nil || report.WitnessSystem == nil {
		return fail(inst, CheckWitnessMissing, "violation verdict without witness run")
	}
	steps := report.Witness.Steps
	if report.Witness.Deadlock {
		// The final interaction of a deadlock run is the refused offer, not
		// an executed step.
		steps = steps[:len(steps)-1]
	}
	cur := make(map[automata.StateID]bool)
	for _, q := range sys.Initial() {
		cur[q] = true
	}
	for i, label := range steps {
		next := make(map[automata.StateID]bool)
		for s := range cur {
			for _, to := range sys.Successors(s, label) {
				next[to] = true
			}
		}
		if len(next) == 0 {
			return fail(inst, CheckWitnessReplay,
				"witness step %d (%s) is not executable in the true composition", i, label)
		}
		cur = next
	}
	if report.Kind != core.ViolationDeadlock {
		return nil
	}
	final := report.Witness.States[len(report.Witness.States)-1]
	if !report.WitnessSystem.IsDeadlock(final) {
		return nil
	}
	for s := range cur {
		if sys.IsDeadlock(s) {
			return nil
		}
	}
	return fail(inst, CheckWitnessDeadlock,
		"witness claims a deadlock but no resolution of its trace deadlocks the true composition")
}

// checkWitness validates a violation witness against the ground-truth
// component: every step must replay, and a witness ending in a composed
// deadlock must end in a state where no context offer can form a joint
// step with the component's deterministic reaction.
func checkWitness(inst *gen.Instance, iface legacy.Interface, report *core.Report, newComponent func() (legacy.Component, error)) *Failure {
	if report.Witness == nil || report.WitnessSystem == nil {
		return fail(inst, CheckWitnessMissing, "violation verdict without witness run")
	}
	proj, err := report.WitnessSystem.ProjectRun(*report.Witness, iface.Name)
	if err != nil {
		return fail(inst, CheckWitnessReplay, "project witness: %v", err)
	}

	replayPrefix := func(steps int) (legacy.Component, *Failure) {
		comp, err := newComponent()
		if err != nil {
			return nil, fail(inst, CheckRunError, "wrap component: %v", err)
		}
		comp.Reset()
		for i := 0; i < steps; i++ {
			out, ok := comp.Step(proj.Steps[i].In)
			if !ok {
				return nil, fail(inst, CheckWitnessReplay,
					"witness step %d refused by the implementation (input %v)", i, proj.Steps[i].In)
			}
			if !out.Equal(proj.Steps[i].Out) {
				return nil, fail(inst, CheckWitnessReplay,
					"witness step %d diverges: implementation produced %v, witness claims %v",
					i, out, proj.Steps[i].Out)
			}
		}
		return comp, nil
	}
	if _, f := replayPrefix(len(proj.Steps)); f != nil {
		return f
	}

	// Only a deadlock verdict claims the run is inextensible in the real
	// system; confirm no context offer forms a joint step there. (A
	// constraint witness may end in a state the *partial* learned system
	// considers deadlocked simply because learning stopped — that is not
	// a claim about the ground truth.)
	if report.Kind != core.ViolationDeadlock {
		return nil
	}
	final := report.Witness.States[len(report.Witness.States)-1]
	if !report.WitnessSystem.IsDeadlock(final) {
		return nil
	}
	ctxState, err := core.ContextStateAt(inst.Context, report.WitnessSystem, final)
	if err != nil {
		return fail(inst, CheckWitnessDeadlock, "resolve context state: %v", err)
	}
	for _, offer := range inst.Context.TransitionsFrom(ctxState) {
		if !offer.Label.Out.SubsetOf(iface.Inputs) {
			continue // the offer cannot reach the component
		}
		comp, f := replayPrefix(len(proj.Steps))
		if f != nil {
			return f
		}
		out, ok := comp.Step(offer.Label.Out)
		if ok && offer.Label.In.Intersect(iface.Outputs).Equal(out) {
			return fail(inst, CheckWitnessDeadlock,
				"witness claims a deadlock but context offer %v forms a joint step (implementation answered %v)",
				offer.Label, out)
		}
	}
	return nil
}

// checkLaws asserts the algebraic and metamorphic laws the construction
// rests on, over the explored ground truth and the final learned model.
// nondet selects the closure variant the loop actually used, so the
// over-approximation law exercises the settled-label machinery.
func checkLaws(inst *gen.Instance, truth *automata.Automaton, report *core.Report, universe automata.InteractionUniverse, nondet bool) *Failure {
	// Reflexivity of the refinement preorder.
	if ok, cex, err := automata.Refines(truth, truth); err != nil || !ok {
		return fail(inst, CheckLawRefinesReflexive, "truth ⊑ truth failed: cex=%v err=%v", cex, err)
	}
	// The chaotic automaton is ⊑-maximal: everything refines it.
	chaotic := automata.ChaoticAutomaton("chaos", truth.Inputs(), truth.Outputs(), universe)
	if ok, cex, err := automata.Refines(truth, chaotic); err != nil || !ok {
		return fail(inst, CheckLawChaoticTop, "truth ⊑ M_c failed: cex=%v err=%v", cex, err)
	}
	// Observation conformance of the final learned model (Definition 10)
	// and Theorem 1: M_r ⊑ chaos(M_l^n). For nondeterministic ground
	// truths the nondet closure must be used — the deterministic one
	// suppresses chaos escapes on learned-but-unsettled labels and is not
	// a safe abstraction there.
	if err := report.Model.ObservationConforming(truth); err != nil {
		return fail(inst, CheckLawConformance, "%v", err)
	}
	var closure *automata.Automaton
	if nondet {
		var err error
		closure, err = automata.ChaoticClosureNondetCtx(context.Background(), report.Model, universe)
		if err != nil {
			return fail(inst, CheckRunError, "nondet closure: %v", err)
		}
	} else {
		closure = automata.ChaoticClosure(report.Model, universe)
	}
	if ok, cex, err := automata.Refines(truth, closure); err != nil || !ok {
		return fail(inst, CheckLawChaosOverapprox, "M_r ⊑ chaos(M_l) failed: cex=%v err=%v", cex, err)
	}
	// ioco is reflexive: every machine conforms to itself under
	// suspension-trace out-set inclusion.
	if ok, trace, err := automata.IocoRefines(truth, truth); err != nil || !ok {
		return fail(inst, CheckLawIocoReflexive, "truth ioco truth failed: trace=%v err=%v", trace, err)
	}
	// δ-saturation is idempotent: a second saturation finds every
	// quiescent state already carrying its δ self-loop.
	saturated, added := automata.SaturateQuiescence(truth, "truth·δ")
	if _, again := automata.SaturateQuiescence(saturated, "truth·δδ"); again != 0 {
		return fail(inst, CheckLawDeltaSaturation,
			"second saturation added %d loops (first added %d)", again, added)
	}
	// Refines ⇒ IocoRefines on deterministic machines: trace refinement
	// implies suspension-trace out-set inclusion when neither side races.
	// The learned fragment against the ground truth is the natural pair
	// that can genuinely fail either way.
	if la := report.Model.Automaton(); la.Deterministic() && truth.Deterministic() {
		if ok, _, err := automata.Refines(la, truth); err == nil && ok {
			if iok, trace, ierr := automata.IocoRefines(la, truth); ierr != nil || !iok {
				return fail(inst, CheckLawRefinesIoco,
					"Refines(M_l, M_r) holds but ioco fails: trace=%v err=%v", trace, ierr)
			}
		}
	}
	// Simulates is sound for ⊑ (Simulates ⇒ Refines). Exercise the
	// implication on a pair that genuinely can fail: the closure against
	// the ground truth — an over-approximation rarely refines its
	// implementation, so a Simulates acceptance here would expose an
	// unsound simulation check.
	if automata.Simulates(closure, truth) {
		if ok, _, err := automata.Refines(closure, truth); err == nil && !ok {
			return fail(inst, CheckLawSimulatesRefines, "Simulates(chaos(M_l), truth) accepted but Refines rejected")
		}
	}
	return nil
}
