package mbt

import (
	"context"
	"testing"

	"muml/internal/gen"
)

// TestCheckInstanceCanceled: an expired context must surface as a
// CheckCanceled failure, distinguishable from a soundness violation.
func TestCheckInstanceCanceled(t *testing.T) {
	inst, err := gen.New(1, gen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := CheckInstance(inst, Options{Context: ctx})
	if f == nil {
		t.Fatal("expired context: CheckInstance returned nil")
	}
	if !f.Canceled() || f.Check != CheckCanceled {
		t.Fatalf("want CheckCanceled, got %v", f)
	}
	// And without a context the same instance passes — proving the
	// cancellation path, not the instance, caused the failure above.
	if f := CheckInstance(inst, Options{}); f != nil {
		t.Fatalf("baseline run failed: %v", f)
	}
}
