package batch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"muml/internal/crossing"
	"muml/internal/ctl"
	"muml/internal/gen"
	"muml/internal/legacy"
)

// GenItems returns n seeded generator instances (seeds seed, seed+1, …)
// drawn from cfg, named "gen-<seed>". Generation happens inside Build, on
// the running worker.
func GenItems(seed int64, n int, cfg gen.Config) []Item {
	items := make([]Item, n)
	for k := 0; k < n; k++ {
		s := seed + int64(k)
		items[k] = Item{
			Name:  fmt.Sprintf("gen-%d", s),
			Build: genBuild(s, cfg),
		}
	}
	return items
}

func genBuild(seed int64, cfg gen.Config) func() (Problem, error) {
	return func() (Problem, error) {
		inst, err := gen.New(seed, cfg)
		if err != nil {
			return Problem{}, err
		}
		comp, err := inst.Component()
		if err != nil {
			return Problem{}, err
		}
		return Problem{
			Context:   inst.Context,
			Component: comp,
			Interface: inst.Interface(),
			Property:  inst.Property,
		}, nil
	}
}

// ScenarioItems returns the railroad-crossing example scenarios (the
// paper's running example): each gate-controller variant against the train
// role, for both the safety constraint and the closure-deadline property.
func ScenarioItems() []Item {
	return []Item{
		{Name: "crossing-swift-constraint", Build: crossingBuild(crossing.SwiftGate, crossing.Constraint)},
		{Name: "crossing-sluggish-constraint", Build: crossingBuild(crossing.SluggishGate, crossing.Constraint)},
		{Name: "crossing-stuck-constraint", Build: crossingBuild(crossing.StuckGate, crossing.Constraint)},
		{Name: "crossing-swift-deadline", Build: crossingBuild(crossing.SwiftGate, crossing.ClosureDeadline)},
	}
}

func crossingBuild(gate func() legacy.Component, prop func() ctl.Formula) func() (Problem, error) {
	return func() (Problem, error) {
		return Problem{
			Context:   crossing.TrainRole(),
			Component: gate(),
			Interface: crossing.GateInterface(),
			Property:  prop(),
		}, nil
	}
}

// manifestEntry is one line of a JSONL batch manifest: a seeded generator
// instance with an optional config selection and name.
type manifestEntry struct {
	// Name defaults to "gen-<seed>" ("gen-<seed>-wide" for wide entries).
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed"`
	// Config selects the generator distribution: "default" (or empty) or
	// "wide" (alphabet beyond the 64-signal interner capacity).
	Config string `json:"config,omitempty"`
	// MaxStates, when positive, overrides the legacy-automaton size bound.
	MaxStates int `json:"max_states,omitempty"`
}

// ManifestItems parses a JSONL manifest (one entry per line; blank lines
// and #-comments skipped) into batch items. Example line:
//
//	{"seed": 42, "config": "wide", "max_states": 5}
func ManifestItems(r io.Reader) ([]Item, error) {
	var items []Item
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		trimmed := 0
		for trimmed < len(raw) && (raw[trimmed] == ' ' || raw[trimmed] == '\t') {
			trimmed++
		}
		raw = raw[trimmed:]
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		var e manifestEntry
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("batch: manifest line %d: %w", line, err)
		}
		var cfg gen.Config
		suffix := ""
		switch e.Config {
		case "", "default":
			cfg = gen.DefaultConfig()
		case "wide":
			cfg = gen.WideConfig()
			suffix = "-wide"
		default:
			return nil, fmt.Errorf("batch: manifest line %d: unknown config %q", line, e.Config)
		}
		if e.MaxStates > 0 {
			cfg.MaxLegacyStates = e.MaxStates
		}
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("gen-%d%s", e.Seed, suffix)
		}
		items = append(items, Item{Name: name, Build: genBuild(e.Seed, cfg)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: manifest: %w", err)
	}
	return items, nil
}
