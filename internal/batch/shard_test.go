package batch

import (
	"testing"

	"muml/internal/gen"
)

func TestShardItemsPartition(t *testing.T) {
	items := GenItems(1, 50, gen.DefaultConfig())
	for _, count := range []int{1, 2, 3, 7} {
		seen := make(map[string]int)
		total := 0
		for index := 0; index < count; index++ {
			shard, err := ShardItems(items, index, count)
			if err != nil {
				t.Fatalf("ShardItems(%d/%d): %v", index, count, err)
			}
			total += len(shard)
			prev := -1
			for _, it := range shard {
				if owner, dup := seen[it.Name]; dup {
					t.Fatalf("count %d: %q landed in shards %d and %d", count, it.Name, owner, index)
				}
				seen[it.Name] = index
				// Order within a shard follows the original item order.
				pos := itemIndex(t, items, it.Name)
				if pos <= prev {
					t.Fatalf("count %d shard %d: %q out of order (pos %d after %d)", count, index, it.Name, pos, prev)
				}
				prev = pos
			}
		}
		if total != len(items) {
			t.Fatalf("count %d: shards cover %d of %d items", count, total, len(items))
		}
	}
}

func itemIndex(t *testing.T, items []Item, name string) int {
	t.Helper()
	for i, it := range items {
		if it.Name == name {
			return i
		}
	}
	t.Fatalf("item %q not in the original batch", name)
	return -1
}

func TestShardItemsDeterministic(t *testing.T) {
	items := GenItems(7, 30, gen.DefaultConfig())
	a, err := ShardItems(items, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShardItems(items, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("shard sizes differ across calls: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("shard item %d differs across calls: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
}

func TestShardItemsIdentity(t *testing.T) {
	items := GenItems(1, 10, gen.DefaultConfig())
	shard, err := ShardItems(items, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shard) != len(items) {
		t.Fatalf("single-shard partition dropped items: %d of %d", len(shard), len(items))
	}
}

func TestShardItemsErrors(t *testing.T) {
	items := GenItems(1, 4, gen.DefaultConfig())
	for _, tc := range []struct{ index, count int }{
		{0, 0}, {0, -1}, {-1, 2}, {2, 2}, {5, 3},
	} {
		if _, err := ShardItems(items, tc.index, tc.count); err == nil {
			t.Errorf("ShardItems(index=%d, count=%d) succeeded, want error", tc.index, tc.count)
		}
	}
}
