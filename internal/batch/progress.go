package batch

import (
	"sort"
	"sync"
	"time"

	"muml/internal/automata"
	"muml/internal/core"
)

// Progress is a shared live view of a running batch: the worker pool
// reports instance starts and finishes into it, and the HTTP /progress
// endpoint (internal/obs/httpd) snapshots it concurrently. A nil
// *Progress discards all updates, so batch.Verify threads it
// unconditionally.
type Progress struct {
	mu      sync.Mutex
	total   int
	workers int
	start   time.Time
	running map[int]string // item index -> name
	memo    *automata.MemoCache

	done, proven, violations, errored, timedOut, panicked int
	durs                                                  []int64 // completed instance durations (ns)
}

// NewProgress returns an empty tracker, ready to hand to batch.Options.
func NewProgress() *Progress { return &Progress{} }

// begin records the batch dimensions; called once by Verify.
func (p *Progress) begin(total, workers int, memo *automata.MemoCache) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.workers = workers
	p.memo = memo
	p.start = time.Now()
	p.running = make(map[int]string, workers)
}

// starting marks one instance as running on a worker.
func (p *Progress) starting(idx int, name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running[idx] = name
}

// finished folds one result into the tallies, mirroring the
// classification Verify uses for its Summary so a post-completion
// snapshot agrees with the final batch report.
func (p *Progress) finished(res Result) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.running, res.Index)
	p.done++
	p.durs = append(p.durs, int64(res.Duration))
	switch {
	case res.Panicked:
		p.panicked++
		p.errored++
	case res.TimedOut:
		p.timedOut++
		p.errored++
	case res.Err != nil:
		p.errored++
	case res.Verdict == core.VerdictProven:
		p.proven++
	case res.Verdict == core.VerdictViolation:
		p.violations++
	}
}

// ProgressSnapshot is one consistent point-in-time view of a batch,
// serialized as the /progress JSON payload.
type ProgressSnapshot struct {
	Instances int `json:"instances"`
	Workers   int `json:"workers"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`

	Proven     int `json:"proven"`
	Violations int `json:"violations"`
	Errored    int `json:"errored"`
	TimedOut   int `json:"timed_out"`
	Panicked   int `json:"panicked"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// ElapsedNS is wall-clock time since the batch started; MedianNS is
	// the running median over completed instance durations; ETANS
	// extrapolates the remaining work from that median across the
	// worker count (0 until the first instance completes).
	ElapsedNS int64 `json:"elapsed_ns"`
	MedianNS  int64 `json:"median_instance_ns"`
	ETANS     int64 `json:"eta_ns"`

	// RunningInstances names the instances currently on a worker,
	// sorted by item index.
	RunningInstances []string `json:"running_instances,omitempty"`
}

// Snapshot returns a consistent view of the batch. Safe on a nil or
// not-yet-begun tracker (all zeros) and concurrently with pool updates.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Instances:  p.total,
		Workers:    p.workers,
		Running:    len(p.running),
		Done:       p.done,
		Queued:     p.total - p.done - len(p.running),
		Proven:     p.proven,
		Violations: p.violations,
		Errored:    p.errored,
		TimedOut:   p.timedOut,
		Panicked:   p.panicked,
	}
	if !p.start.IsZero() {
		s.ElapsedNS = time.Since(p.start).Nanoseconds()
	}
	if hits, misses, _ := p.memo.Stats(); hits+misses > 0 {
		s.CacheHits, s.CacheMisses = hits, misses
		s.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	if len(p.durs) > 0 {
		sorted := append([]int64(nil), p.durs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.MedianNS = sorted[len(sorted)/2]
		if remaining := s.Queued + s.Running; remaining > 0 && p.workers > 0 {
			s.ETANS = int64(remaining) * s.MedianNS / int64(p.workers)
		}
	}
	if len(p.running) > 0 {
		idxs := make([]int, 0, len(p.running))
		for idx := range p.running {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			s.RunningInstances = append(s.RunningInstances, p.running[idx])
		}
	}
	return s
}
