package batch

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"muml/internal/automata"
	"muml/internal/gen"
)

// TestProgressSnapshotConsistencyUnderLoad polls Snapshot concurrently
// with a running batch (run with -race): every observed snapshot must be
// internally consistent, and the final one must agree exactly with the
// batch Summary.
func TestProgressSnapshotConsistencyUnderLoad(t *testing.T) {
	const n = 48
	progress := NewProgress()
	memo := automata.NewMemoCache(nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := progress.Snapshot()
				if s.Instances != 0 && s.Instances != n {
					t.Errorf("snapshot instances = %d, want 0 or %d", s.Instances, n)
					return
				}
				if s.Queued < 0 || s.Queued+s.Running+s.Done != s.Instances {
					t.Errorf("unbalanced snapshot: queued %d + running %d + done %d != %d",
						s.Queued, s.Running, s.Done, s.Instances)
					return
				}
				if s.Proven+s.Violations+s.Errored > s.Done {
					t.Errorf("more verdicts than completions: %+v", s)
					return
				}
				if len(s.RunningInstances) != s.Running {
					t.Errorf("running names %d != running count %d", len(s.RunningInstances), s.Running)
					return
				}
			}
		}()
	}

	sum, err := Verify(GenItems(1, n, gen.DefaultConfig()), Options{
		Workers:  4,
		Memo:     memo,
		Progress: progress,
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}

	final := progress.Snapshot()
	if final.Done != n || final.Queued != 0 || final.Running != 0 {
		t.Fatalf("final snapshot not drained: %+v", final)
	}
	if final.Proven != sum.Proven || final.Violations != sum.Violations ||
		final.Errored != sum.Errored || final.TimedOut != sum.TimedOut ||
		final.Panicked != sum.Panicked {
		t.Fatalf("final snapshot %+v disagrees with summary proven=%d violations=%d errored=%d timedOut=%d panicked=%d",
			final, sum.Proven, sum.Violations, sum.Errored, sum.TimedOut, sum.Panicked)
	}
	if hits, misses, _ := memo.Stats(); final.CacheHits != hits || final.CacheMisses != misses {
		t.Fatalf("cache stats %d/%d, want %d/%d", final.CacheHits, final.CacheMisses, hits, misses)
	}
	if final.MedianNS <= 0 || final.ElapsedNS <= 0 {
		t.Fatalf("timing fields not populated: %+v", final)
	}
	if final.ETANS != 0 {
		t.Fatalf("ETA %d after completion, want 0", final.ETANS)
	}
}

func TestProgressETAFromRunningMedian(t *testing.T) {
	p := NewProgress()
	p.begin(10, 2, nil)
	for i := 0; i < 4; i++ {
		p.starting(i, "x")
		p.finished(Result{Index: i, Duration: time.Duration(i+1) * 100 * time.Millisecond})
	}
	s := p.Snapshot()
	// Durations 100..400ms → median (upper) 300ms; 6 remaining on 2
	// workers → ETA 3×300ms.
	if want := (300 * time.Millisecond).Nanoseconds(); s.MedianNS != want {
		t.Fatalf("median %v, want %v", s.MedianNS, want)
	}
	if want := (900 * time.Millisecond).Nanoseconds(); s.ETANS != want {
		t.Fatalf("eta %v, want %v", s.ETANS, want)
	}
	if s.Queued != 6 || s.Done != 4 || s.Running != 0 {
		t.Fatalf("counts %+v", s)
	}
}

func TestProgressNilIsInert(t *testing.T) {
	var p *Progress
	p.begin(5, 2, nil)
	p.starting(0, "x")
	p.finished(Result{Index: 0})
	if s := p.Snapshot(); !reflect.DeepEqual(s, ProgressSnapshot{}) {
		t.Fatalf("nil progress snapshot %+v", s)
	}
}
