package batch

import "fmt"

// This file splits a batch across cooperating verifyd processes: each
// process runs only the items whose name-hash lands in its shard, so N
// processes pointed at the same manifest (and, via the shared on-disk
// memo store, the same warm-start state) partition one job without any
// coordination beyond agreeing on (index, count). Hashing the stable
// instance name — with the same FNV-1a the structural fingerprints use —
// keeps the partition deterministic across processes and runs: the union
// of all shards' results is exactly the unsharded batch, instance by
// instance.

// HashName returns the 64-bit FNV-1a hash of an instance name.
func HashName(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return h
}

// ShardItems returns the items of shard index out of count, preserving
// item order. Count 1 is the identity partition; items with equal names
// land in the same shard by construction.
func ShardItems(items []Item, index, count int) ([]Item, error) {
	if count <= 0 {
		return nil, fmt.Errorf("batch: shard count %d must be positive", count)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("batch: shard index %d out of range [0,%d)", index, count)
	}
	if count == 1 {
		return items, nil
	}
	var out []Item
	for _, it := range items {
		if HashName(it.Name)%uint64(count) == uint64(index) {
			out = append(out, it)
		}
	}
	return out, nil
}
