// Package batch runs many independent synthesis instances concurrently on
// a work-stealing worker pool, with per-instance deadlines, panic
// isolation, and a shared memoization cache for identical closure/product
// sub-problems (DESIGN.md §9). It is the engine behind cmd/batchverify and
// the concurrent lane the CI race detector exercises.
package batch

import "sync"

// span is a half-open range [lo, hi) of still-unstarted item indices.
type span struct{ lo, hi int }

func (s span) len() int { return s.hi - s.lo }

// pool hands out item indices [0, n) to workers. Each worker owns a
// contiguous range and drains it front to back; a worker whose range is
// empty steals the upper half of the largest remaining range. Ranges hold
// only unstarted indices (taking an index advances lo under the mutex), so
// stealing never duplicates or drops work. Index granularity is one whole
// synthesis instance — milliseconds to seconds of work — so a single mutex
// around the steal logic is nowhere near contention.
type pool struct {
	mu     sync.Mutex
	spans  []span
	steals int
}

// newPool splits [0, n) into one contiguous range per worker.
func newPool(n, workers int) *pool {
	p := &pool{spans: make([]span, workers)}
	chunk, rem := n/workers, n%workers
	lo := 0
	for w := range p.spans {
		size := chunk
		if w < rem {
			size++
		}
		p.spans[w] = span{lo: lo, hi: lo + size}
		lo += size
	}
	return p
}

// next returns the next index for worker w, stealing if its own range is
// drained. The second result is false when no work remains anywhere.
func (p *pool) next(w int) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := &p.spans[w]; s.lo < s.hi {
		idx := s.lo
		s.lo++
		return idx, true
	}
	victim, best := -1, 0
	for v := range p.spans {
		if v == w {
			continue
		}
		if r := p.spans[v].len(); r > best {
			victim, best = v, r
		}
	}
	if victim < 0 {
		return 0, false
	}
	// Take the upper half (rounded up, so a single remaining index moves);
	// the victim keeps the lower half it is already walking toward.
	vs := &p.spans[victim]
	mid := vs.hi - (best+1)/2
	p.spans[w] = span{lo: mid, hi: vs.hi}
	vs.hi = mid
	p.steals++
	s := &p.spans[w]
	idx := s.lo
	s.lo++
	return idx, true
}

// stolen reports how many steal operations occurred.
func (p *pool) stolen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.steals
}
