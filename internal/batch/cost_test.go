package batch

import (
	"bytes"
	"testing"

	"muml/internal/automata"
	"muml/internal/gen"
	"muml/internal/obs"
)

// TestCostSumsToSummary is the aggregation contract of the cost ledger:
// the batch-level Cost is the exact sum of the per-instance ledgers, and
// every successful instance carries the effort figures.
func TestCostSumsToSummary(t *testing.T) {
	sum, err := Verify(GenItems(1, 12, gen.DefaultConfig()), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want Cost
	for _, res := range sum.Results {
		want.Add(res.Cost)
		if res.Err != nil {
			continue
		}
		if res.Cost.CPUNS <= 0 {
			t.Errorf("%s: cpu_ns = %d, want > 0", res.Name, res.Cost.CPUNS)
		}
		if res.Cost.PeakStates <= 0 {
			t.Errorf("%s: peak_states = %d, want > 0", res.Name, res.Cost.PeakStates)
		}
		// ctl_words can be 0 for an instance decided without a model-check
		// pass (e.g. a deadlock found structurally), so only the batch-level
		// figure is asserted positive below.
		if res.Cost.CTLWords < 0 || res.Cost.AllocBytes < 0 {
			t.Errorf("%s: negative ledger figures: %+v", res.Name, res.Cost)
		}
	}
	if sum.Cost != want {
		t.Errorf("Summary.Cost = %+v, want exact instance sum %+v", sum.Cost, want)
	}
	if sum.Cost.CTLWords <= 0 {
		t.Errorf("batch ctl_words = %d, want > 0", sum.Cost.CTLWords)
	}
}

// TestCostDeterministicFiguresAcrossWorkers pins the determinism split of
// DESIGN.md §15: peak_states and ctl_words are byte-identity-safe, so
// they must match instance-for-instance across worker counts and memo
// warm-starts, while the measured figures may differ.
func TestCostDeterministicFiguresAcrossWorkers(t *testing.T) {
	const n = 16
	run := func(workers int, memo *automata.MemoCache) *Summary {
		t.Helper()
		sum, err := Verify(GenItems(3, n, gen.DefaultConfig()), Options{Workers: workers, Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	seq := run(1, nil)
	par := run(4, automata.NewMemoCache(nil))
	for i := range seq.Results {
		s, p := seq.Results[i], par.Results[i]
		if s.Err != nil || p.Err != nil {
			continue
		}
		if s.Cost.PeakStates != p.Cost.PeakStates {
			t.Errorf("%s: peak_states %d (1 worker) vs %d (4 workers, memo)", s.Name, s.Cost.PeakStates, p.Cost.PeakStates)
		}
		if s.Cost.CTLWords != p.Cost.CTLWords {
			t.Errorf("%s: ctl_words %d (1 worker) vs %d (4 workers, memo)", s.Name, s.Cost.CTLWords, p.Cost.CTLWords)
		}
	}
}

// TestCostJournalEvents checks that instance_done events carry the cost_*
// fields, the batch emits one matching cost_report, and the journal still
// validates.
func TestCostJournalEvents(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(obs.NewJSONLSink(&buf))
	sum, err := Verify(GenItems(1, 4, gen.DefaultConfig()), Options{Workers: 2, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("journal does not validate: %v", err)
	}
	events, err := obs.DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var instCPU int64
	instances := 0
	var report *obs.Event
	for i, e := range events {
		switch e.Kind {
		case obs.KindInstanceDone:
			instances++
			if _, ok := e.N["cost_cpu_ns"]; !ok {
				t.Errorf("instance_done without cost_cpu_ns: %+v", e)
			}
			instCPU += e.N["cost_cpu_ns"]
		case obs.KindCostReport:
			if report != nil {
				t.Fatal("more than one cost_report")
			}
			report = &events[i]
		}
	}
	if instances != 4 {
		t.Fatalf("%d instance_done events, want 4", instances)
	}
	if report == nil {
		t.Fatal("no cost_report event")
	}
	if got := report.N["instances"]; got != 4 {
		t.Errorf("cost_report instances = %d, want 4", got)
	}
	if got := report.N["cpu_ns"]; got != instCPU || got != sum.Cost.CPUNS {
		t.Errorf("cost_report cpu_ns = %d, want instance sum %d = summary %d", got, instCPU, sum.Cost.CPUNS)
	}
}
