package batch

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/gen"
)

// TestPoolCoversAllIndices checks that every index is handed out exactly
// once regardless of which workers ask, including through steals.
func TestPoolCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{1, 1}, {7, 3}, {64, 8}, {5, 8}, {100, 4},
	} {
		p := newPool(tc.n, tc.workers)
		seen := make([]int, tc.n)
		// Drain adversarially: worker 0 takes everything, forcing steals.
		for {
			idx, ok := p.next(0)
			if !ok {
				break
			}
			seen[idx]++
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d handed out %d times", tc.n, tc.workers, i, c)
			}
		}
		if tc.workers > 1 && tc.n > tc.workers && p.stolen() == 0 {
			t.Fatalf("n=%d workers=%d: single-worker drain should have stolen", tc.n, tc.workers)
		}
	}
}

// TestVerifyDeterministicAcrossWorkerCounts is the soundness contract of
// the batch engine: the same 64-instance batch must produce identical
// per-instance verdicts whether it runs sequentially or on 8 workers with
// a shared memo cache.
func TestVerifyDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	run := func(workers int, memo *automata.MemoCache) *Summary {
		t.Helper()
		sum, err := Verify(GenItems(1, n, gen.DefaultConfig()), Options{
			Workers: workers,
			Memo:    memo,
		})
		if err != nil {
			t.Fatalf("Verify(workers=%d): %v", workers, err)
		}
		if len(sum.Results) != n {
			t.Fatalf("Verify(workers=%d): %d results, want %d", workers, len(sum.Results), n)
		}
		return sum
	}

	seq := run(1, nil)
	par := run(8, automata.NewMemoCache(nil))

	for i := range seq.Results {
		s, p := seq.Results[i], par.Results[i]
		if s.Index != i || p.Index != i {
			t.Fatalf("result %d out of order: seq index %d, par index %d", i, s.Index, p.Index)
		}
		if s.Name != p.Name {
			t.Fatalf("result %d: name %q vs %q", i, s.Name, p.Name)
		}
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("result %d (%s): error mismatch: seq=%v par=%v", i, s.Name, s.Err, p.Err)
		}
		if s.Err != nil {
			continue
		}
		if s.Verdict != p.Verdict || s.Kind != p.Kind {
			t.Fatalf("result %d (%s): verdict %v/%v (seq) vs %v/%v (par)",
				i, s.Name, s.Verdict, s.Kind, p.Verdict, p.Kind)
		}
	}

	if seq.Proven+seq.Violations == 0 {
		t.Fatalf("degenerate batch: no instance reached a verdict (errored=%d)", seq.Errored)
	}
	if seq.Proven == 0 || seq.Violations == 0 {
		t.Logf("note: batch not mixed: proven=%d violations=%d", seq.Proven, seq.Violations)
	}
}

// TestVerifyScenarios runs the paper's crossing scenarios through the
// batch engine and checks the expected verdicts.
func TestVerifyScenarios(t *testing.T) {
	sum, err := Verify(ScenarioItems(), Options{Workers: 2})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	want := map[string]core.Verdict{
		"crossing-swift-constraint":    core.VerdictProven,
		"crossing-sluggish-constraint": core.VerdictViolation,
		"crossing-stuck-constraint":    core.VerdictViolation,
		"crossing-swift-deadline":      core.VerdictProven,
	}
	for _, res := range sum.Results {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Name, res.Err)
		}
		if w, ok := want[res.Name]; ok && res.Verdict != w {
			t.Errorf("%s: verdict %v, want %v", res.Name, res.Verdict, w)
		}
	}
}

// TestVerifyDeadlineCancellation checks the satellite requirement: an
// exploding wide-alphabet instance under a tiny per-instance deadline must
// come back as context.DeadlineExceeded — and must not leak goroutines.
func TestVerifyDeadlineCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := gen.WideConfig()
	cfg.MaxLegacyStates = 6
	cfg.MaxContextStates = 6
	sum, err := Verify(GenItems(7, 4, cfg), Options{
		Workers:  2,
		Deadline: 1 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for _, res := range sum.Results {
		if res.Err == nil {
			// A tiny instance can legitimately finish inside 1ms; that is
			// fine as long as the ones that do not are cleanly timed out.
			continue
		}
		if !res.TimedOut {
			t.Errorf("%s: error without TimedOut: %v", res.Name, res.Err)
		}
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Errorf("%s: error does not wrap context.DeadlineExceeded: %v", res.Name, res.Err)
		}
	}
	if sum.TimedOut == 0 {
		t.Logf("note: all wide instances finished inside the deadline")
	}

	// No goroutine may outlive Verify: the workers exit via wg.Wait and the
	// synthesis loop runs on the worker itself. Allow the runtime a few
	// polls to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVerifyBatchContextAbort checks that canceling the batch-level
// context stops handing out work and marks unstarted items.
func TestVerifyBatchContextAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := Verify(GenItems(1, 8, gen.DefaultConfig()), Options{
		Workers: 2,
		Context: ctx,
	})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for _, res := range sum.Results {
		if res.Err == nil {
			t.Fatalf("%s: completed under a canceled batch context", res.Name)
		}
		if !res.TimedOut {
			t.Errorf("%s: canceled instance not marked TimedOut: %v", res.Name, res.Err)
		}
	}
	if sum.TimedOut != len(sum.Results) {
		t.Errorf("TimedOut=%d, want %d", sum.TimedOut, len(sum.Results))
	}
}

// TestVerifyPanicIsolation checks that a panicking instance is converted
// into its own Result without taking down the batch.
func TestVerifyPanicIsolation(t *testing.T) {
	items := GenItems(1, 3, gen.DefaultConfig())
	items = append(items, Item{Name: "boom", Build: func() (Problem, error) {
		panic("deliberate test panic")
	}})
	sum, err := Verify(items, Options{Workers: 2})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	var boom *Result
	for i := range sum.Results {
		if sum.Results[i].Name == "boom" {
			boom = &sum.Results[i]
		} else if sum.Results[i].Err != nil {
			t.Errorf("%s: infected by sibling panic: %v", sum.Results[i].Name, sum.Results[i].Err)
		}
	}
	if boom == nil {
		t.Fatal("panicking item missing from results")
	}
	if !boom.Panicked || boom.Err == nil || !strings.Contains(boom.Err.Error(), "deliberate test panic") {
		t.Fatalf("panic not isolated: panicked=%v err=%v", boom.Panicked, boom.Err)
	}
	if sum.Panicked != 1 {
		t.Errorf("Summary.Panicked=%d, want 1", sum.Panicked)
	}
}

// TestManifestItems checks JSONL parsing: names, defaults, comments, and
// error positions.
func TestManifestItems(t *testing.T) {
	manifest := strings.Join([]string{
		`# comment line`,
		`{"seed": 3}`,
		``,
		`  {"seed": 4, "config": "wide", "max_states": 2}`,
		`{"seed": 5, "name": "custom", "config": "default"}`,
	}, "\n")
	items, err := ManifestItems(strings.NewReader(manifest))
	if err != nil {
		t.Fatalf("ManifestItems: %v", err)
	}
	wantNames := []string{"gen-3", "gen-4-wide", "custom"}
	if len(items) != len(wantNames) {
		t.Fatalf("%d items, want %d", len(items), len(wantNames))
	}
	for i, w := range wantNames {
		if items[i].Name != w {
			t.Errorf("item %d: name %q, want %q", i, items[i].Name, w)
		}
		if _, err := items[i].Build(); err != nil {
			t.Errorf("item %d (%s): build: %v", i, items[i].Name, err)
		}
	}

	if _, err := ManifestItems(strings.NewReader(`{"seed": 1, "config": "bogus"}`)); err == nil ||
		!strings.Contains(err.Error(), "line 1") {
		t.Errorf("unknown config: err = %v, want line-1 error", err)
	}
	if _, err := ManifestItems(strings.NewReader("{\"seed\": 1}\nnot json")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("bad JSON: err = %v, want line-2 error", err)
	}
	if _, err := ManifestItems(strings.NewReader(`{"seed": 1, "sneed": 2}`)); err == nil {
		t.Errorf("unknown field accepted")
	}
}

// TestVerifyEmptyAndDefaults covers the trivial edges.
func TestVerifyEmptyAndDefaults(t *testing.T) {
	sum, err := Verify(nil, Options{})
	if err != nil || len(sum.Results) != 0 {
		t.Fatalf("empty batch: sum=%+v err=%v", sum, err)
	}
	if sum.Throughput() != 0 {
		t.Errorf("empty Throughput=%v, want 0", sum.Throughput())
	}
	// More workers than items must clamp, not spin idle goroutines.
	sum, err = Verify(GenItems(1, 2, gen.DefaultConfig()), Options{Workers: 16})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if sum.Workers != 2 {
		t.Errorf("Workers=%d, want clamped 2", sum.Workers)
	}
}
