package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/legacy"
	"muml/internal/obs"
)

// Problem is one fully materialized synthesis input: the verification
// question M_a^c ‖ chaos(M_l) ⊨ φ ∧ ¬δ over one black-box component.
type Problem struct {
	Context   *automata.Automaton
	Component legacy.Component
	Interface legacy.Interface
	// Property may be nil to check deadlock freedom only.
	Property ctl.Formula
	// MaxIterations bounds the loop (0 = core's default).
	MaxIterations int
}

// Item is one independent synthesis instance of a batch. Build is called
// exactly once, on the worker that runs the instance, so construction cost
// parallelizes and the stateful component it returns is confined to a
// single goroutine for its whole life.
type Item struct {
	Name  string
	Build func() (Problem, error)
}

// Cost is the resource ledger of one instance — or, summed, of a whole
// batch or job. It splits into two classes (DESIGN.md §15):
//
// Deterministic effort figures, identical across worker counts, memo
// warm-starts, and process restarts: PeakStates (largest composed system
// the instance built) and CTLWords (bitset words produced by the model
// checker). These are safe to embed in byte-identity-contracted outputs
// like verifyd's verdict NDJSON.
//
// Measured figures, machine- and schedule-dependent: CPUNS (wall time of
// the instance — each instance occupies exactly one pool worker, so wall
// time is worker-seconds of attribution), AllocBytes (the process-global
// allocation delta over the instance's window divided by the pool width,
// exact at one worker and a documented approximation otherwise), and the
// memo hit/miss deltas observed on the instance's worker (attribution is
// approximate when concurrent instances interleave cache traffic; the
// batch-level sums remain exact).
type Cost struct {
	CPUNS      int64 `json:"cpu_ns"`
	AllocBytes int64 `json:"alloc_bytes"`
	PeakStates int64 `json:"peak_states"`
	CTLWords   int64 `json:"ctl_words"`
	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`
}

// Add folds another ledger into c (the batch/job aggregation step). The
// job-level report is defined as the exact sum of its instance ledgers.
func (c *Cost) Add(o Cost) {
	c.CPUNS += o.CPUNS
	c.AllocBytes += o.AllocBytes
	c.PeakStates += o.PeakStates
	c.CTLWords += o.CTLWords
	c.MemoHits += o.MemoHits
	c.MemoMisses += o.MemoMisses
}

// Result is the outcome of one instance. Results are reported in item
// order, independent of worker scheduling, so batches are comparable
// across worker counts.
type Result struct {
	Index  int
	Name   string
	Worker int
	// Verdict and Kind are valid only when Err is nil.
	Verdict    core.Verdict
	Kind       core.ViolationKind
	Iterations int
	Err        error
	// TimedOut reports that Err wraps a context deadline/cancellation.
	TimedOut bool
	// Panicked reports that the instance panicked; the panic was recovered
	// and converted into Err without taking down the batch.
	Panicked bool
	Duration time.Duration
	// Cost is the instance's resource ledger.
	Cost Cost
}

// Options configure a batch run.
type Options struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// Deadline bounds each instance individually (0 = unbounded). An
	// instance exceeding it yields a Result with TimedOut set; the batch
	// continues.
	Deadline time.Duration
	// Context, when non-nil, bounds the whole batch: once done, running
	// instances abort and no further instances start.
	Context context.Context
	// Memo, when non-nil, is shared across all instances so identical
	// closure/product sub-problems are solved once (pass
	// automata.NewMemoCache; nil disables memoization).
	Memo *automata.MemoCache
	// Journal receives batch_start, one instance_done per item, and — when
	// the memo cache was built over the same journal — cache_hit events.
	// Per-instance synthesis events are NOT forwarded: interleaved
	// iteration streams from concurrent runs would be unreadable and are
	// available by re-running a single instance.
	Journal *obs.Journal
	// Metrics, when non-nil, receives batch.instances, batch.timeouts,
	// batch.panics, batch.steals counters plus the batch.instance timer
	// and latency histogram.
	Metrics *obs.Registry
	// Progress, when non-nil, receives live per-instance start/finish
	// updates; the HTTP /progress endpoint snapshots it while the batch
	// runs (see Progress).
	Progress *Progress
}

// Summary aggregates a batch run.
type Summary struct {
	Results  []Result
	Duration time.Duration
	Workers  int
	// Steals counts work-stealing events in the pool.
	Steals                                          int
	Proven, Violations, Errored, TimedOut, Panicked int
	// CacheHits/CacheMisses are the shared memo cache's counters (0/0
	// without a cache).
	CacheHits, CacheMisses int64
	// Cost is the exact sum of the per-instance ledgers, journaled as the
	// batch's cost_report event.
	Cost Cost
}

// Throughput returns completed instances per second of wall-clock time.
func (s Summary) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(len(s.Results)) / s.Duration.Seconds()
}

// Verify runs all items to completion and returns the per-instance results
// in item order. Instance failures — synthesis errors, per-instance
// deadline hits, even panics — are isolated into their Result; Verify
// itself fails only on invalid options. The batch-level context (when
// given) aborts remaining work but still returns the results gathered so
// far, with unstarted items marked as canceled.
func Verify(items []Item, opts Options) (*Summary, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(items) == 0 {
		return &Summary{Workers: workers}, nil
	}
	if workers > len(items) {
		workers = len(items)
	}
	batchCtx := opts.Context
	if batchCtx == nil {
		batchCtx = context.Background()
	}

	mInstances := opts.Metrics.Counter("batch.instances")
	mTimeouts := opts.Metrics.Counter("batch.timeouts")
	mPanics := opts.Metrics.Counter("batch.panics")
	mSteals := opts.Metrics.Counter("batch.steals")
	tInstance := opts.Metrics.Timer("batch.instance")
	hInstance := opts.Metrics.Histogram("batch.instance")

	// batchSpan groups the batch_start and instance_done events into one
	// span tree under the "batch" trace.
	var batchSpan uint64
	if j := opts.Journal; j.Enabled() {
		batchSpan = j.NewSpan()
		j.Emit(obs.Event{Kind: obs.KindBatchStart, Iter: -1,
			Trace: "batch", Span: batchSpan,
			N: map[string]int64{
				"instances":   int64(len(items)),
				"workers":     int64(workers),
				"deadline_ns": int64(opts.Deadline),
			}})
	}
	opts.Progress.begin(len(items), workers, opts.Memo)

	start := time.Now()
	results := make([]Result, len(items))
	p := newPool(len(items), workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx, ok := p.next(w)
				if !ok {
					return
				}
				if err := batchCtx.Err(); err != nil {
					res := Result{Index: idx, Name: items[idx].Name, Worker: w,
						Err: fmt.Errorf("batch: not started: %w", err), TimedOut: true}
					results[idx] = res
					opts.Progress.finished(res)
					continue
				}
				opts.Progress.starting(idx, items[idx].Name)
				res := runOne(batchCtx, items[idx], idx, w, workers, opts)
				mInstances.Add(1)
				tInstance.Observe(res.Duration)
				hInstance.Observe(res.Duration)
				if res.TimedOut {
					mTimeouts.Add(1)
				}
				if res.Panicked {
					mPanics.Add(1)
				}
				if j := opts.Journal; j.Enabled() {
					j.Emit(obs.Event{Kind: obs.KindInstanceDone, Iter: -1,
						DurNS: int64(res.Duration),
						Trace: "batch", Parent: batchSpan,
						N: map[string]int64{
							"index":            int64(res.Index),
							"worker":           int64(res.Worker),
							"timed_out":        b2i(res.TimedOut),
							"panicked":         b2i(res.Panicked),
							"iterations":       int64(res.Iterations),
							"cost_cpu_ns":      res.Cost.CPUNS,
							"cost_alloc_bytes": res.Cost.AllocBytes,
							"cost_peak_states": res.Cost.PeakStates,
							"cost_ctl_words":   res.Cost.CTLWords,
							"cost_memo_hits":   res.Cost.MemoHits,
							"cost_memo_misses": res.Cost.MemoMisses,
						},
						S: instanceDoneStrings(res),
					})
				}
				results[idx] = res
				opts.Progress.finished(res)
			}
		}(w)
	}
	wg.Wait()

	sum := &Summary{Results: results, Duration: time.Since(start), Workers: workers, Steals: p.stolen()}
	mSteals.Add(int64(sum.Steals))
	for i := range results {
		switch {
		case results[i].Panicked:
			sum.Panicked++
			sum.Errored++
		case results[i].TimedOut:
			sum.TimedOut++
			sum.Errored++
		case results[i].Err != nil:
			sum.Errored++
		case results[i].Verdict == core.VerdictProven:
			sum.Proven++
		case results[i].Verdict == core.VerdictViolation:
			sum.Violations++
		}
	}
	sum.CacheHits, sum.CacheMisses, _ = opts.Memo.Stats()
	for i := range results {
		sum.Cost.Add(results[i].Cost)
	}
	if j := opts.Journal; j.Enabled() {
		j.Emit(obs.Event{Kind: obs.KindCostReport, Iter: -1,
			DurNS: int64(sum.Duration),
			Trace: "batch", Parent: batchSpan,
			N: map[string]int64{
				"instances":   int64(len(results)),
				"cpu_ns":      sum.Cost.CPUNS,
				"alloc_bytes": sum.Cost.AllocBytes,
				"peak_states": sum.Cost.PeakStates,
				"ctl_words":   sum.Cost.CTLWords,
				"memo_hits":   sum.Cost.MemoHits,
				"memo_misses": sum.Cost.MemoMisses,
			}})
	}
	return sum, nil
}

func instanceDoneStrings(res Result) map[string]string {
	s := map[string]string{"name": res.Name, "verdict": ""}
	if res.Err != nil {
		s["error"] = res.Err.Error()
	} else {
		s["verdict"] = res.Verdict.String()
	}
	return s
}

// runOne executes one instance with panic isolation and its own deadline.
// workers is the pool width, the divisor of the instance's share of the
// process-global allocation delta (see Cost).
func runOne(batchCtx context.Context, item Item, idx, worker, workers int, opts Options) (res Result) {
	res = Result{Index: idx, Name: item.Name, Worker: worker}
	start := time.Now()
	alloc0 := obs.ReadAllocBytes()
	memoHits0, memoMisses0, _ := opts.Memo.Stats()
	defer func() {
		res.Duration = time.Since(start)
		res.Cost.CPUNS = res.Duration.Nanoseconds()
		if d := obs.ReadAllocBytes() - alloc0; d > 0 && workers > 0 {
			res.Cost.AllocBytes = d / int64(workers)
		}
		hits, misses, _ := opts.Memo.Stats()
		res.Cost.MemoHits = hits - memoHits0
		res.Cost.MemoMisses = misses - memoMisses0
		if r := recover(); r != nil {
			res.Panicked = true
			res.Err = fmt.Errorf("batch: instance %q panicked: %v", item.Name, r)
		}
		if res.Err != nil && (errors.Is(res.Err, context.DeadlineExceeded) || errors.Is(res.Err, context.Canceled)) {
			res.TimedOut = true
		}
	}()

	problem, err := item.Build()
	if err != nil {
		res.Err = fmt.Errorf("batch: build %q: %w", item.Name, err)
		return res
	}

	ctx := batchCtx
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(batchCtx, opts.Deadline)
		defer cancel()
	}

	synth, err := core.New(problem.Context, problem.Component, problem.Interface, core.Options{
		Property:      problem.Property,
		MaxIterations: problem.MaxIterations,
		Context:       ctx,
		Memo:          opts.Memo,
		// The registry is shared across workers; counters are atomic, so
		// the ctl.* and core.* instruments aggregate over the whole batch.
		Metrics: opts.Metrics,
	})
	if err != nil {
		res.Err = fmt.Errorf("batch: %q: %w", item.Name, err)
		return res
	}
	report, err := synth.Run()
	if err != nil {
		res.Err = fmt.Errorf("batch: %q: %w", item.Name, err)
		return res
	}
	res.Verdict = report.Verdict
	res.Kind = report.Kind
	res.Iterations = report.Stats.Iterations
	res.Cost.PeakStates = int64(report.Stats.PeakSystemStates)
	res.Cost.CTLWords = report.Stats.CTLWordsScanned
	return res
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
