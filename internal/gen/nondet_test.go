package gen

import (
	"fmt"
	"testing"

	"muml/internal/automata"
	"muml/internal/legacy"
)

// dupMachine builds the canonical nondeterministic troublemaker: input a is
// duplicated under an identical label (a/x to s0 and s1) and raced on its
// output (a/y), input b is deterministic.
func dupMachine() *automata.Automaton {
	a := automata.New(LegacyName, automata.NewSignalSet("a", "b"), automata.NewSignalSet("x", "y"))
	s0 := a.MustAddState("s0")
	s1 := a.MustAddState("s1")
	a.MarkInitial(s0)
	in := func(s string) automata.SignalSet { return automata.NewSignalSet(automata.Signal(s)) }
	a.MustAddTransition(s0, automata.Interaction{In: in("a"), Out: in("x")}, s0) // index 0
	a.MustAddTransition(s0, automata.Interaction{In: in("a"), Out: in("x")}, s1) // index 1: duplicate label
	a.MustAddTransition(s0, automata.Interaction{In: in("a"), Out: in("y")}, s0) // index 2: output race
	a.MustAddTransition(s1, automata.Interaction{In: in("b"), Out: in("y")}, s0) // index 3: deterministic
	return a
}

// Satellite: surgery on machines with duplicated transitions must flip the
// ground-truth nondeterminism classification exactly when the last source
// of branching under some (state, input) disappears — and never create
// branching that was not there.
func TestNondetSurgeryGroundTruthFlips(t *testing.T) {
	base := dupMachine()
	if legacy.FunctionDeterministic(base) {
		t.Fatal("dupMachine must be function-nondeterministic")
	}
	cases := []struct {
		name       string
		op         func() *automata.Automaton
		wantNondet bool
	}{
		// Snapshot order is by source state, so indices follow construction.
		{"drop one duplicate keeps the race", func() *automata.Automaton { return DropTransition(base, 1) }, true},
		{"drop the race keeps the duplicate", func() *automata.Automaton { return DropTransition(base, 2) }, true},
		{"drop duplicate then race is deterministic", func() *automata.Automaton {
			return DropTransition(DropTransition(base, 1), 1) // race shifts to index 1 after the first drop
		}, false},
		{"drop signal x removes both duplicates", func() *automata.Automaton { return DropSignal(base, "x") }, false},
		{"drop signal y keeps the duplicate pair", func() *automata.Automaton { return DropSignal(base, "y") }, true},
		{"drop signal a removes all branching", func() *automata.Automaton { return DropSignal(base, "a") }, false},
		{"drop state s1 keeps same-state branching", func() *automata.Automaton { return DropState(base, 1) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.op()
			if b == nil {
				t.Fatal("surgery returned nil")
			}
			if got := !legacy.FunctionDeterministic(b); got != tc.wantNondet {
				t.Fatalf("nondet = %v, want %v\n%s", got, tc.wantNondet, b.Dot())
			}
			// Whatever the flip, the result must wrap as the matching
			// component kind.
			if tc.wantNondet {
				if _, err := legacy.WrapNondet(b); err != nil {
					t.Fatalf("WrapNondet: %v", err)
				}
			} else if _, err := legacy.WrapAutomaton(b); err != nil {
				t.Fatalf("WrapAutomaton: %v", err)
			}
		})
	}
}

// Seeded sweep: every single-transition and single-signal removal on a
// generated nondeterministic instance must keep the instance valid, must
// never create nondeterminism, and must keep the recomputed ground truth
// internally consistent (every truth transition exists in the surgered
// automaton). At least one removal across the sweep must flip an instance
// to deterministic.
func TestNondetSurgerySeededSweep(t *testing.T) {
	flips := 0
	checked := 0
	for seed := int64(1); seed <= 10; seed++ {
		inst, err := New(seed, NondetConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !inst.Nondet() {
			continue
		}
		variants := make(map[string]*Instance)
		for i := 0; i < inst.Legacy.NumTransitions(); i++ {
			v := inst.Clone()
			v.Legacy = DropTransition(inst.Legacy, i)
			variants[fmt.Sprintf("droptr-%d", i)] = v
		}
		for _, sig := range append(inst.Legacy.Inputs().Signals(), inst.Legacy.Outputs().Signals()...) {
			v := inst.Clone()
			v.Legacy = DropSignal(inst.Legacy, sig)
			v.Context = DropSignal(inst.Context, sig)
			variants[fmt.Sprintf("dropsig-%s", sig)] = v
		}
		for name, v := range variants {
			if v.Legacy == nil {
				continue
			}
			v.Property = nil // atoms may reference dropped structure
			if err := v.Validate(); err != nil {
				t.Fatalf("seed %d %s: surgered instance invalid: %v", seed, name, err)
			}
			checked++
			if v.Nondet() && !inst.Nondet() {
				t.Fatalf("seed %d %s: surgery created nondeterminism", seed, name)
			}
			if !v.Nondet() {
				flips++
			}
			truth, err := v.Truth()
			if err != nil {
				t.Fatalf("seed %d %s: truth: %v", seed, name, err)
			}
			for _, tr := range truth.TransitionsSnapshot() {
				from := v.Legacy.State(truth.StateName(tr.From))
				to := v.Legacy.State(truth.StateName(tr.To))
				if from == automata.NoState || to == automata.NoState ||
					!containsState(v.Legacy.Successors(from, tr.Label), to) {
					t.Fatalf("seed %d %s: truth transition %v not in surgered automaton", seed, name, tr)
				}
			}
			if _, err := v.TrueComposition(); err != nil {
				t.Fatalf("seed %d %s: true composition: %v", seed, name, err)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no nondet instances generated in sweep")
	}
	if flips == 0 {
		t.Fatal("no removal flipped an instance to deterministic")
	}
	t.Logf("checked %d surgered variants, %d deterministic flips", checked, flips)
}

// NondetConfig must actually produce nondeterministic ground truths, and
// the zero-value / default configs must never do so (the knobs default to
// zero and withDefaults leaves them there).
func TestNondetConfigClassification(t *testing.T) {
	nondet := 0
	for seed := int64(1); seed <= 30; seed++ {
		inst, err := New(seed, NondetConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if inst.Nondet() {
			nondet++
			if _, err := legacy.WrapAutomaton(inst.Legacy); err == nil {
				t.Fatalf("seed %d: nondet instance wraps as deterministic component", seed)
			}
		}
	}
	if nondet < 10 {
		t.Fatalf("only %d/30 nondet instances; distribution too tame", nondet)
	}
	for seed := int64(1); seed <= 30; seed++ {
		inst, err := New(seed, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if inst.Nondet() {
			t.Fatalf("seed %d: default config produced a nondet instance", seed)
		}
	}
}
