package gen

import (
	"math/rand"
	"testing"

	"muml/internal/automata"
	"muml/internal/ctl"
)

func TestGenerateIsReproducible(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, err := New(seed, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := New(seed, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		aj, _ := automata.EncodeJSON(a.Legacy)
		bj, _ := automata.EncodeJSON(b.Legacy)
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: legacy automata differ", seed)
		}
		aj, _ = automata.EncodeJSON(a.Context)
		bj, _ = automata.EncodeJSON(b.Context)
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: context automata differ", seed)
		}
		ap, bp := "", ""
		if a.Property != nil {
			ap = a.Property.String()
		}
		if b.Property != nil {
			bp = b.Property.String()
		}
		if ap != bp {
			t.Fatalf("seed %d: properties differ: %q vs %q", seed, ap, bp)
		}
	}
}

func TestGeneratedInstancesAreValid(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		inst, err := New(seed, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !inst.Context.Inputs().Disjoint(inst.Legacy.Inputs()) ||
			!inst.Context.Outputs().Disjoint(inst.Legacy.Outputs()) {
			t.Fatalf("seed %d: alphabets not composable", seed)
		}
		if _, err := inst.TrueComposition(); err != nil {
			t.Fatalf("seed %d: true composition: %v", seed, err)
		}
	}
}

func TestGeneratedPropertiesRoundTripThroughParser(t *testing.T) {
	// Repro files store properties as text; every generated property must
	// survive String → Parse → String unchanged.
	for seed := int64(1); seed <= 50; seed++ {
		inst, err := New(seed, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if inst.Property == nil {
			continue
		}
		text := inst.Property.String()
		parsed, err := ctl.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: property %q does not parse: %v", seed, text, err)
		}
		if parsed.String() != text {
			t.Fatalf("seed %d: property round-trip changed: %q -> %q", seed, text, parsed.String())
		}
	}
}

func TestGeneratorCoversBothPropertyOutcomes(t *testing.T) {
	var held, violated, deadlocked, free int
	for seed := int64(1); seed <= 60; seed++ {
		inst, err := New(seed, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if inst.Property != nil {
			if inst.TruePropertyHolds {
				held++
			} else {
				violated++
			}
		}
		if inst.TrueDeadlockFree {
			free++
		} else {
			deadlocked++
		}
	}
	if held == 0 || violated == 0 {
		t.Fatalf("property bias broken: %d held, %d violated", held, violated)
	}
	if deadlocked == 0 || free == 0 {
		t.Fatalf("deadlock coverage broken: %d deadlocked, %d free", deadlocked, free)
	}
}

func TestWideConfigExceedsInternerCapacity(t *testing.T) {
	inst, err := New(1, WideConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := inst.Legacy.Inputs().Len() + inst.Legacy.Outputs().Len()
	if total <= 64 {
		t.Fatalf("wide alphabet has %d signals, want > 64 to force the intern fallback", total)
	}
	if _, ok := automata.NewInterner(inst.Legacy.Inputs(), inst.Legacy.Outputs()); ok {
		t.Fatal("wide alphabet unexpectedly fits an interner")
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateThreadsPRNGExplicitly(t *testing.T) {
	// Two generators seeded identically must agree even when a third,
	// differently-seeded generation is interleaved — i.e. no hidden
	// global randomness.
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	a, err := Generate(r1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(rand.New(rand.NewSource(99)), DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	b, err := Generate(r2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := automata.EncodeJSON(a.Legacy)
	bj, _ := automata.EncodeJSON(b.Legacy)
	if string(aj) != string(bj) {
		t.Fatal("interleaved generation changed the outcome: hidden shared state")
	}
}

func TestDropState(t *testing.T) {
	inst, err := New(3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := inst.Legacy
	if a.NumStates() < 2 {
		t.Skip("instance too small for state surgery")
	}
	victim := automata.StateID(a.NumStates() - 1)
	b := DropState(a, victim)
	if b == nil {
		t.Fatal("DropState returned nil for a droppable state")
	}
	if b.NumStates() != a.NumStates()-1 {
		t.Fatalf("states = %d, want %d", b.NumStates(), a.NumStates()-1)
	}
	for _, tr := range b.Transitions() {
		if b.StateName(tr.From) == a.StateName(victim) || b.StateName(tr.To) == a.StateName(victim) {
			t.Fatal("transition still touches the dropped state")
		}
	}
	// Dropping the sole initial state is refused.
	if got := DropState(a, a.Initial()[0]); got != nil {
		t.Fatal("DropState removed the only initial state")
	}
}

func TestDropTransitionAndSignal(t *testing.T) {
	inst, err := New(5, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := inst.Legacy
	if a.NumTransitions() == 0 {
		t.Skip("instance has no transitions")
	}
	b := DropTransition(a, 0)
	if b.NumTransitions() != a.NumTransitions()-1 {
		t.Fatalf("transitions = %d, want %d", b.NumTransitions(), a.NumTransitions()-1)
	}
	if b.NumStates() != a.NumStates() {
		t.Fatal("DropTransition changed the state count")
	}

	sig := a.Inputs().Signals()[0]
	c := DropSignal(a, sig)
	if c.Inputs().Contains(sig) {
		t.Fatal("signal still in alphabet after DropSignal")
	}
	for _, tr := range c.Transitions() {
		if tr.Label.In.Contains(sig) || tr.Label.Out.Contains(sig) {
			t.Fatal("transition still uses the dropped signal")
		}
	}
}
