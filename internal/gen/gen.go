// Package gen generates random-but-reproducible legacy-integration
// instances for the model-based soundness harness (internal/mbt).
//
// An instance is one complete input to the synthesis loop of package core:
// a context automaton M_a^c, a ground-truth legacy automaton M_r (kept
// function-deterministic so it wraps as a legacy.Component), and an
// optional ACTL property φ. Because the generator knows the full M_r, the
// harness can decide every verdict independently — model checking the true
// composition M_a^c ‖ M_r directly — and check the loop's answers against
// that ground truth.
//
// Randomness is threaded explicitly: every generation function takes a
// *rand.Rand and no package-level PRNG state exists, so the same seed
// always produces the same instance regardless of call order or
// parallelism.
//
// The distributions are deliberately adversarial for the synthesis loop:
//
//   - dead legacy states (no outgoing transitions) and refused inputs
//     (blocked regions) make real deadlocks and refusal learning common;
//   - unreachable legacy states exercise the "learn only what the context
//     needs" behavior and keep ground-truth exploration honest;
//   - nondeterministic contexts exercise the product construction beyond
//     what a deterministic specification would;
//   - wide alphabets (WideConfig, >64 signals) push SignalSet unions past
//     the interner's single-word capacity so the slice fallbacks of
//     Compose/ChaoticClosure/Refines run under test;
//   - properties are drawn from the ACTL pattern helpers and biased, by
//     checking candidates against the true composition, so that both
//     provable and violated outcomes occur regularly.
package gen

import (
	"fmt"
	"math/rand"

	"muml/internal/automata"
	"muml/internal/core"
	"muml/internal/ctl"
	"muml/internal/legacy"
)

// ContextName and LegacyName are the component names used for every
// generated instance; properties reference state labels "ctx.cK" and
// "impl.sK" under these names.
const (
	ContextName = "ctx"
	LegacyName  = "impl"
)

// Config tunes the instance distribution. The zero value selects the
// defaults documented per field.
type Config struct {
	// MaxLegacyStates bounds the legacy automaton size; the actual count
	// is uniform in [1, MaxLegacyStates]. Default 6.
	MaxLegacyStates int
	// MaxContextStates bounds the context automaton size. Default 5.
	MaxContextStates int
	// Inputs and Outputs size the legacy alphabet: Inputs signals flow
	// context→legacy ("i00", "i01", ...), Outputs flow legacy→context
	// ("o00", ...). Defaults 3 and 2. Values whose sum exceeds 64 push
	// every interning algorithm onto its slice fallback.
	Inputs, Outputs int
	// RefuseBias is the probability that a live legacy state refuses a
	// given input entirely (a blocked region). Default 0.35.
	RefuseBias float64
	// DeadStateBias is the probability that a non-initial legacy state is
	// dead: it refuses every input, so reaching it deadlocks the
	// component. Default 0.15.
	DeadStateBias float64
	// ContextStopBias is the probability that a non-initial context state
	// has no outgoing transitions. Default 0.10.
	ContextStopBias float64
	// ContextNondet is the probability that a context state receives a
	// second transition under an already-used interaction label
	// (nondeterminism). Default 0.25.
	ContextNondet float64
	// OutputRace is the probability that a live (state, input) gains a
	// second transition with a different output — a racing out-set, the
	// canonical ioco-visible nondeterminism. Default 0: deterministic
	// instances. (withDefaults never assigns the nondet knobs, so zero
	// configs stay function-deterministic.)
	OutputRace float64
	// DupSuccessor is the probability that a transition gains a duplicate
	// under the *same* interaction label to a different successor —
	// invisible to a single observation, the hard case for closure
	// soundness. Default 0.
	DupSuccessor float64
	// LossyOutput is the probability that a transition with a non-empty
	// output gains a sibling that consumes the same input silently
	// (message loss), making quiescence observations meaningful. Default 0.
	LossyOutput float64
	// PropertyCandidates is how many candidate formulas are drawn and
	// classified against the true composition before one is selected.
	// Default 8.
	PropertyCandidates int
	// NoPropertyBias is the probability that the instance checks deadlock
	// freedom only (Property == nil). Default 0.15.
	NoPropertyBias float64
}

// DefaultConfig returns the default small-instance distribution.
func DefaultConfig() Config { return Config{}.withDefaults() }

// WideConfig returns a distribution whose combined alphabet (70 signals)
// exceeds the 64-signal interner capacity, forcing the slice fallbacks of
// every interned algorithm. Refusals are raised so the ground-truth
// behavior stays small despite the wide alphabet.
func WideConfig() Config {
	c := Config{Inputs: 40, Outputs: 30, RefuseBias: 0.9, MaxLegacyStates: 4, MaxContextStates: 4}
	return c.withDefaults()
}

// NondetConfig returns the default distribution over function-
// nondeterministic legacy components: output races, duplicated successors
// and lossy outputs are all switched on, sized so that per-(state, input)
// branching stays well under the core loop's completeness budget.
func NondetConfig() Config {
	c := Config{
		MaxLegacyStates: 5,
		OutputRace:      0.35,
		DupSuccessor:    0.30,
		LossyOutput:     0.20,
	}
	return c.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.MaxLegacyStates <= 0 {
		c.MaxLegacyStates = 6
	}
	if c.MaxContextStates <= 0 {
		c.MaxContextStates = 5
	}
	if c.Inputs <= 0 {
		c.Inputs = 3
	}
	if c.Outputs <= 0 {
		c.Outputs = 2
	}
	if c.RefuseBias == 0 {
		c.RefuseBias = 0.35
	}
	if c.DeadStateBias == 0 {
		c.DeadStateBias = 0.15
	}
	if c.ContextStopBias == 0 {
		c.ContextStopBias = 0.10
	}
	if c.ContextNondet == 0 {
		c.ContextNondet = 0.25
	}
	if c.PropertyCandidates <= 0 {
		c.PropertyCandidates = 8
	}
	if c.NoPropertyBias == 0 {
		c.NoPropertyBias = 0.15
	}
	return c
}

// Instance is one generated (or shrunk) input to the synthesis loop plus
// the generation-time ground truth.
type Instance struct {
	// Seed reproduces the instance via New(Seed, Cfg); 0 for instances
	// that were shrunk or loaded from a repro file.
	Seed int64
	// Cfg is the distribution the instance was drawn from.
	Cfg Config

	// Context is the abstract context model M_a^c (possibly
	// nondeterministic), with states labeled "ctx.cK".
	Context *automata.Automaton
	// Legacy is the full ground-truth automaton M_r of the component
	// under integration. It is function-deterministic, so it wraps as a
	// legacy.Component; the synthesis loop only ever sees it through that
	// black-box interface.
	Legacy *automata.Automaton
	// Property is the constraint φ to establish; nil checks deadlock
	// freedom only.
	Property ctl.Formula

	// TruePropertyHolds and TrueDeadlockFree record the generation-time
	// model-check of the true composition (informational; the oracle
	// recomputes both, which matters after shrinking).
	TruePropertyHolds bool
	TrueDeadlockFree  bool
}

// New generates the instance identified by (seed, cfg).
func New(seed int64, cfg Config) (*Instance, error) {
	inst, err := Generate(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	inst.Seed = seed
	return inst, nil
}

// Generate draws one instance from the distribution using the given PRNG.
func Generate(r *rand.Rand, cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()
	ins := makeSignals("i", cfg.Inputs)
	outs := makeSignals("o", cfg.Outputs)

	inst := &Instance{
		Cfg:     cfg,
		Legacy:  genLegacy(r, cfg, ins, outs),
		Context: genContext(r, cfg, ins, outs),
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated invalid instance: %w", err)
	}
	if err := genProperty(r, cfg, inst); err != nil {
		return nil, err
	}
	return inst, nil
}

func makeSignals(prefix string, n int) automata.SignalSet {
	signals := make([]automata.Signal, n)
	for i := range signals {
		signals[i] = automata.Signal(fmt.Sprintf("%s%02d", prefix, i))
	}
	return automata.NewSignalSet(signals...)
}

// singletonSteps returns the step alphabet of the singleton universe over
// one direction: the empty set plus each single signal.
func singletonSteps(set automata.SignalSet) []automata.SignalSet {
	steps := []automata.SignalSet{automata.EmptySet}
	for _, sig := range set.Signals() {
		steps = append(steps, automata.NewSignalSet(sig))
	}
	return steps
}

// genLegacy builds a function-deterministic ground-truth automaton: per
// (state, input) at most one transition, so legacy.WrapAutomaton accepts
// it. Dead states refuse everything; live states refuse each input with
// RefuseBias and otherwise react with a uniformly chosen output and
// successor.
func genLegacy(r *rand.Rand, cfg Config, ins, outs automata.SignalSet) *automata.Automaton {
	n := 1 + r.Intn(cfg.MaxLegacyStates)
	a := automata.New(LegacyName, ins, outs)
	ids := make([]automata.StateID, n)
	for i := range ids {
		ids[i] = a.MustAddState(fmt.Sprintf("s%d", i))
	}
	a.MarkInitial(ids[0])

	inputs := singletonSteps(ins)
	outputs := singletonSteps(outs)
	for i, from := range ids {
		if i != 0 && r.Float64() < cfg.DeadStateBias {
			continue // dead region: every input refused
		}
		for _, in := range inputs {
			if r.Float64() < cfg.RefuseBias {
				continue // blocked region: this input refused here
			}
			label := automata.Interaction{In: in, Out: outputs[r.Intn(len(outputs))]}
			a.MustAddTransition(from, label, ids[r.Intn(n)])
		}
	}

	// Nondeterministic augmentation: each base transition may sprout
	// siblings under the same input. The pass runs over a snapshot so new
	// siblings do not themselves sprout, which keeps per-(state, input)
	// branching at ≤ 4 — comfortably inside the core loop's default
	// completeness budget.
	if cfg.OutputRace > 0 || cfg.DupSuccessor > 0 || cfg.LossyOutput > 0 {
		addDistinct := func(from automata.StateID, label automata.Interaction, to automata.StateID) {
			if !containsState(a.Successors(from, label), to) {
				a.MustAddTransition(from, label, to)
			}
		}
		for _, t := range a.TransitionsSnapshot() {
			if cfg.OutputRace > 0 && r.Float64() < cfg.OutputRace {
				if out := outputs[r.Intn(len(outputs))]; !out.Equal(t.Label.Out) {
					addDistinct(t.From, automata.Interaction{In: t.Label.In, Out: out}, ids[r.Intn(n)])
				}
			}
			if cfg.DupSuccessor > 0 && r.Float64() < cfg.DupSuccessor {
				addDistinct(t.From, t.Label, ids[r.Intn(n)])
			}
			if cfg.LossyOutput > 0 && !t.Label.Out.IsEmpty() && r.Float64() < cfg.LossyOutput {
				addDistinct(t.From, automata.Interaction{In: t.Label.In, Out: automata.EmptySet}, ids[r.Intn(n)])
			}
		}
	}
	return a
}

// genContext builds the (possibly nondeterministic) context. Its inputs
// are the legacy outputs and vice versa, so the pair is composable. The
// empty set is over-weighted on both directions of a label: joint steps
// require the legacy's simultaneous outputs to match the context's
// expectation exactly, and all-singleton labels would make live
// compositions too rare to exercise the Proven path.
func genContext(r *rand.Rand, cfg Config, ins, outs automata.SignalSet) *automata.Automaton {
	m := 1 + r.Intn(cfg.MaxContextStates)
	ctx := automata.New(ContextName, outs, ins)
	ids := make([]automata.StateID, m)
	for i := range ids {
		ids[i] = ctx.MustAddState(fmt.Sprintf("c%d", i))
	}
	ctx.MarkInitial(ids[0])

	expects := singletonSteps(outs) // what the legacy must send back
	sends := singletonSteps(ins)    // what the context hands over
	pick := func(steps []automata.SignalSet) automata.SignalSet {
		if r.Float64() < 0.5 {
			return automata.EmptySet
		}
		return steps[r.Intn(len(steps))]
	}
	for i, from := range ids {
		if i != 0 && r.Float64() < cfg.ContextStopBias {
			continue // context stops offering anything here
		}
		k := 1 + r.Intn(3)
		for j := 0; j < k; j++ {
			label := automata.Interaction{In: pick(expects), Out: pick(sends)}
			to := ids[r.Intn(m)]
			if used := ctx.Successors(from, label); len(used) > 0 {
				// Reusing a label makes the context nondeterministic;
				// only do so when the nondeterminism roll says to, and
				// never duplicate an existing (label, target) pair.
				if r.Float64() >= cfg.ContextNondet || containsState(used, to) {
					continue
				}
			}
			ctx.MustAddTransition(from, label, to)
		}
	}
	ctx.LabelStatesByName()
	return ctx
}

func containsState(states []automata.StateID, id automata.StateID) bool {
	for _, s := range states {
		if s == id {
			return true
		}
	}
	return false
}

// genProperty draws PropertyCandidates ACTL formulas from the pattern
// helpers, classifies each against the true composition, and selects one
// so that provable and violated outcomes both occur regularly.
func genProperty(r *rand.Rand, cfg Config, inst *Instance) error {
	sys, err := inst.TrueComposition()
	if err != nil {
		return err
	}
	checker := ctl.NewChecker(sys)
	inst.TrueDeadlockFree = checker.Holds(ctl.NoDeadlock())

	implProp := func() ctl.Formula {
		return ctl.Atom(automata.Proposition(fmt.Sprintf("%s.s%d", LegacyName, r.Intn(inst.Legacy.NumStates()))))
	}
	ctxProp := func() ctl.Formula {
		return ctl.Atom(automata.Proposition(fmt.Sprintf("%s.c%d", ContextName, r.Intn(inst.Context.NumStates()))))
	}
	draw := func() ctl.Formula {
		switch r.Intn(4) {
		case 0:
			return ctl.AG(ctl.Not(ctl.And(ctxProp(), implProp()))) // mutual exclusion
		case 1:
			return ctl.Absence(implProp())
		case 2:
			return ctl.Response(ctxProp(), implProp(), 1, 1+r.Intn(3))
		default:
			return ctl.Universality(ctl.Or(implProp(), implProp(), ctxProp()))
		}
	}

	if r.Float64() < cfg.NoPropertyBias {
		inst.Property = nil
		inst.TruePropertyHolds = true
		return nil
	}
	var held, violated []ctl.Formula
	for i := 0; i < cfg.PropertyCandidates; i++ {
		f := draw()
		if !ctl.IsACTL(f) {
			continue // defensive: every pattern above is ACTL
		}
		if checker.Holds(f) {
			held = append(held, f)
		} else {
			violated = append(violated, f)
		}
	}
	pools := [2][]ctl.Formula{held, violated}
	first := r.Intn(2) // 0: prefer provable, 1: prefer violated
	for _, pool := range [2][]ctl.Formula{pools[first], pools[1-first]} {
		if len(pool) > 0 {
			inst.Property = pool[r.Intn(len(pool))]
			inst.TruePropertyHolds = checker.Holds(inst.Property)
			return nil
		}
	}
	inst.Property = nil
	inst.TruePropertyHolds = true
	return nil
}

// Interface returns the structural interface of the legacy component — the
// only information the synthesis loop gets up front.
func (inst *Instance) Interface() legacy.Interface {
	return legacy.Interface{
		Name:    inst.Legacy.Name(),
		Inputs:  inst.Legacy.Inputs(),
		Outputs: inst.Legacy.Outputs(),
	}
}

// Nondet reports whether the ground-truth automaton is function-
// nondeterministic — the instance then requires the ioco-based synthesis
// path (core.Options.Nondet) and a fair-scheduled component wrapper.
func (inst *Instance) Nondet() bool {
	return !legacy.FunctionDeterministic(inst.Legacy)
}

// Component wraps the ground-truth automaton as a fresh, stateful
// black-box component. Each call returns an independent instance so
// repeated synthesis runs do not share replay state. Nondeterministic
// ground truths wrap as fair round-robin components.
func (inst *Instance) Component() (legacy.Component, error) {
	if inst.Nondet() {
		return legacy.WrapNondet(inst.Legacy)
	}
	return legacy.WrapAutomaton(inst.Legacy)
}

// Truth explores the component exhaustively into its reachable behavior
// automaton, labeled with the same qualified scheme the synthesis loop
// uses ("impl.sK"), so learned models and ground truth are comparable.
// For a nondeterministic ground truth the black-box exploration is
// replaced by trimming the known automaton to its reachable part — the
// generator owns M_r, and single-run exploration cannot enumerate
// out-sets.
func (inst *Instance) Truth() (*automata.Automaton, error) {
	if inst.Nondet() {
		truth := inst.Legacy.Trim(LegacyName)
		labeler := core.QualifiedLabeler(LegacyName)
		for i := 0; i < truth.NumStates(); i++ {
			id := automata.StateID(i)
			for _, p := range labeler(truth.StateName(id)) {
				truth.AddLabel(id, p)
			}
		}
		return truth, nil
	}
	comp, err := inst.Component()
	if err != nil {
		return nil, err
	}
	return core.ExploreComponent(comp, inst.Interface(),
		automata.Universe(automata.UniverseSingleton),
		core.QualifiedLabeler(LegacyName), inst.Legacy.NumStates()+1), nil
}

// TrueComposition composes the context with the explored ground truth:
// the real integrated system M_a^c ‖ M_r that every verdict is about.
func (inst *Instance) TrueComposition() (*automata.Automaton, error) {
	truth, err := inst.Truth()
	if err != nil {
		return nil, err
	}
	return automata.Compose("truth", inst.Context, truth)
}

// Validate checks the structural invariants every instance must satisfy:
// composable disjoint alphabets, valid automata, and a legacy automaton
// that wraps as a component — deterministic or fair-scheduled
// nondeterministic, matching what Component returns.
func (inst *Instance) Validate() error {
	if inst.Context == nil || inst.Legacy == nil {
		return fmt.Errorf("gen: instance missing context or legacy automaton")
	}
	if err := inst.Context.Validate(); err != nil {
		return err
	}
	if err := inst.Legacy.Validate(); err != nil {
		return err
	}
	if _, err := inst.Component(); err != nil {
		return err
	}
	if inst.Property != nil && !ctl.IsACTL(inst.Property) {
		return fmt.Errorf("gen: property %s is not ACTL", inst.Property)
	}
	return nil
}

// Clone returns a deep copy sharing no mutable state with the original.
func (inst *Instance) Clone() *Instance {
	out := *inst
	out.Context = inst.Context.Clone(inst.Context.Name())
	out.Legacy = inst.Legacy.Clone(inst.Legacy.Name())
	return &out
}

// Summary renders the instance sizes for log lines.
func (inst *Instance) Summary() string {
	prop := "¬δ only"
	if inst.Property != nil {
		prop = inst.Property.String()
	}
	return fmt.Sprintf("ctx |S|=%d |T|=%d, impl |S|=%d |T|=%d, |I|=%d |O|=%d, φ: %s",
		inst.Context.NumStates(), inst.Context.NumTransitions(),
		inst.Legacy.NumStates(), inst.Legacy.NumTransitions(),
		inst.Legacy.Inputs().Len(), inst.Legacy.Outputs().Len(), prop)
}
